// Custom policy: register an expression-DSL power policy, prove it through
// the admission harness, and sweep it against the paper's characterized
// baseline on the tabular backend.
//
//   $ ./custom_policy
//
// The registry makes the policy set open: anything that can compute a
// per-node cap from the fitted T = A·P² + B·P + C model terms and the
// budgeting context can ride the same two-backend engine as the four
// paper policies — once it passes the same gates they are held to.
#include <iostream>

#include "core/anor.hpp"

int main() {
  using namespace anor;

  // 1. Register the policy.  "Fair share": every node gets an equal slice
  //    of the cluster budget, clamped into the job's achievable cap range.
  //    (This is close to, but not the same as, the uniform policy — the
  //    slice ignores each job's power sensitivity entirely.)
  core::PolicyRegistry::global().register_expression_policy(
      "dsl-fairshare", "clamp(budget_w / total_nodes, p_min, p_max)",
      "equal per-node budget slice, clamped to the envelope");

  // 2. Admit it.  Non-built-in policies must pass the admission harness —
  //    budget-envelope sanity, tabular determinism, cross-backend parity,
  //    chaos determinism — before run_scenario will dispatch them.
  engine::AdmissionOptions options;
  options.duration_s = 360.0;
  options.node_count = 4;
  options.chaos_duration_s = 120.0;
  options.chaos_node_count = 4;
  const engine::AdmissionReport report =
      core::admit_policy(core::PolicyRef("dsl-fairshare"), options);
  std::cout << report.describe();
  if (!report.passed()) {
    std::cerr << "dsl-fairshare failed admission\n";
    return 1;
  }

  // 3. Compare it against the characterized baseline on one generated
  //    scenario: same schedule, same budget, both backends' cheap one.
  workload::PoissonScheduleConfig schedule_config;
  schedule_config.duration_s = 900.0;
  schedule_config.utilization = 0.8;
  schedule_config.cluster_nodes = 8;
  const workload::Schedule schedule = workload::generate_poisson_schedule(
      workload::nas_long_job_types(), schedule_config, util::Rng(7));

  util::TextTable table({"policy", "mean slowdown", "p90 tracking", "qos"});
  for (const std::string name : {"characterized", "dsl-fairshare"}) {
    engine::ScenarioSpec spec;
    spec.name = name;
    spec.backend = engine::Backend::kTabular;
    spec.schedule = schedule;
    spec.policy = core::PolicyRef(name);
    spec.static_budget_w = 8 * 165.0;
    spec.tracking_reserve_w = *spec.static_budget_w;
    spec.node_count = 8;
    spec.seed = 7;
    const engine::RunResult result = engine::run_scenario(spec);
    util::RunningStats slowdowns;
    for (const auto& job : result.completed) slowdowns.add(job.slowdown());
    table.add_row({name, util::TextTable::format_percent(slowdowns.mean()),
                   util::TextTable::format_percent(result.tracking.p90_error),
                   result.qos.satisfied() ? "ok" : "violated"});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nthe model-aware characterized policy should slow jobs less for "
               "the same budget.\n";
  return 0;
}
