// Capacity planning with the tabular simulator: train AQA queue weights
// and search a demand-response bid for a 200-node cluster, including an
// unknown user job type synthesized per the paper's Sec. 4.4.2 mechanism.
//
//   $ ./capacity_planning
#include <iostream>

#include "core/anor.hpp"

int main() {
  using namespace anor;
  std::cout << "planning a 200-node cluster's demand-response participation\n\n";

  // --- cluster and workload description ---
  sim::SimConfig base;
  base.node_count = 200;
  base.duration_s = 1800.0;
  base.job_types = sim::standard_sim_types(/*long_types_only=*/true, /*node_scale=*/1);
  base.tracking_warmup_s = 300.0;

  // One user queue holds a job type we have never characterized; the user
  // only provided its typical runtime and size.  Synthesize its power
  // properties from the known types (paper Sec. 4.4.2).
  util::Rng rng(7);
  const sched::TrainingJobType unknown = sched::synthesize_unknown_type(
      "user.app", /*min_exec_time_s=*/240.0, /*nodes=*/2, workload::nas_long_job_types(),
      rng);
  base.job_types.push_back(sim::SimJobType::from_job_type(unknown.type));
  std::cout << "synthesized unknown type 'user.app': max slowdown "
            << util::TextTable::format_percent(unknown.type.max_slowdown())
            << ", power range [" << unknown.type.min_power_w << ", "
            << unknown.type.max_power_w << "] W/node (sampled from known types)\n\n";

  // --- train queue weights against the simulator ---
  sim::EvaluatorConfig eval_config;
  eval_config.base = base;
  eval_config.base.bid.average_power_w = 200 * 150.0;
  eval_config.base.bid.reserve_w = 200 * 15.0;
  eval_config.utilization = 0.75;
  eval_config.seed = 11;

  std::vector<std::string> type_names;
  for (const auto& t : base.job_types) type_names.push_back(t.name);

  sched::WeightTrainerConfig trainer_config;
  trainer_config.iterations = 24;  // keep the example quick
  const auto training = sched::train_queue_weights(
      type_names, sim::make_weight_evaluator(eval_config), trainer_config, util::Rng(3));
  std::cout << "trained queue weights (score " << training.score << ", "
            << training.evaluations << " simulations):\n";
  for (const auto& [name, weight] : training.weights) {
    std::cout << "  " << name << "  " << util::TextTable::format_double(weight, 2) << "\n";
  }

  // --- search the bid ---
  sched::BidderConfig bidder_config;
  bidder_config.min_mean_w = 200 * 120.0;
  bidder_config.max_mean_w = 200 * 180.0;
  bidder_config.mean_steps = 5;
  bidder_config.reserve_steps = 3;
  sim::EvaluatorConfig bid_eval = eval_config;
  bid_eval.base.queue_weights = training.weights;
  const sched::DemandResponseBidder bidder(bidder_config);
  const auto best = bidder.search(sim::make_bid_evaluator(bid_eval, bidder_config));

  if (!best) {
    std::cout << "\nno feasible bid found -- the cluster should not enroll.\n";
    return 1;
  }
  std::cout << "\nchosen bid (from " << best->candidates_tried << " candidates, "
            << best->candidates_feasible << " feasible):\n"
            << "  mean power " << best->bid.average_power_w / 1000.0 << " kW\n"
            << "  reserve    " << best->bid.reserve_w / 1000.0 << " kW\n"
            << "  energy cost $" << util::TextTable::format_double(best->evaluation.energy_cost, 2)
            << ", reserve credit $"
            << util::TextTable::format_double(best->evaluation.reserve_credit, 2)
            << " -> net $"
            << util::TextTable::format_double(best->evaluation.net_cost(), 2) << "/run\n"
            << "  QoS constraint satisfied, tracking within 30% of reserve >=90% of time\n";
  return 0;
}
