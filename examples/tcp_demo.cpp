// The tier protocol over a real TCP socket: a cluster-tier manager thread
// on a loopback listener, and a job-tier client that says hello, receives
// power budgets, and publishes a model update — the same message flow the
// in-process experiments use, over an actual network transport.
//
//   $ ./tcp_demo
#include <chrono>
#include <iostream>
#include <thread>

#include "cluster/cluster_manager.hpp"
#include "cluster/tcp_transport.hpp"
#include "model/default_models.hpp"
#include "util/table.hpp"

int main() {
  using namespace anor;
  cluster::TcpListener listener;
  std::cout << "cluster manager listening on 127.0.0.1:" << listener.port() << "\n";

  // --- head node: the cluster manager serves budgets over TCP ---
  std::thread head_node([&listener] {
    cluster::ClusterManagerConfig config;
    config.cluster_nodes = 4;
    config.control_period_s = 0.0;  // rebudget every step for the demo
    cluster::ClusterManager manager(config);
    util::TimeSeries targets;
    targets.add(0.0, 4 * 200.0);  // 800 W static target
    manager.set_power_targets(std::move(targets));

    double now = 0.0;
    for (int iteration = 0; iteration < 400; ++iteration) {
      if (auto channel = listener.accept()) {
        manager.attach_channel(std::move(channel));
      }
      manager.step(now);
      now += 0.01;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // --- compute node: a job-tier endpoint connects and talks ---
  auto channel = cluster::tcp_connect(listener.port());
  cluster::JobHelloMsg hello;
  hello.job_id = 1;
  hello.job_name = "bt.D.x#1";
  hello.classified_as = "is.D.x";  // wrong on purpose
  hello.nodes = 2;
  if (!channel->send(hello)) {
    std::cerr << "job tier: hello send failed\n";
    return 1;
  }
  std::cout << "job tier: sent hello (classified as is.D.x)\n";

  const auto wait_for_budget = [&channel]() -> double {
    for (int i = 0; i < 500; ++i) {
      if (auto msg = channel->receive()) {
        if (const auto* budget = std::get_if<cluster::PowerBudgetMsg>(&*msg)) {
          return budget->node_cap_w;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return -1.0;
  };

  const double before = wait_for_budget();
  std::cout << "job tier: received budget " << before << " W/node under the IS model\n";

  // Publish the true BT model, as the feedback loop would.
  const auto bt = model::model_for_class("bt.D.x");
  cluster::ModelUpdateMsg update;
  update.job_id = 1;
  update.a = bt.a();
  update.b = bt.b();
  update.c = bt.c();
  update.p_min_w = bt.p_min_w();
  update.p_max_w = bt.p_max_w();
  update.r2 = bt.r2();
  update.from_feedback = true;
  if (!channel->send(update)) {
    std::cerr << "job tier: model update send failed\n";
    return 1;
  }
  std::cout << "job tier: published corrected BT model over TCP\n";

  const double after = wait_for_budget();
  std::cout << "job tier: received budget " << after << " W/node under the BT model\n";

  cluster::JobGoodbyeMsg bye;
  bye.job_id = 1;
  if (!channel->send(bye)) std::cerr << "job tier: goodbye send failed\n";
  head_node.join();

  if (after > before) {
    std::cout << "\nfeedback over TCP raised the sensitive job's budget by "
              << util::TextTable::format_double(after - before, 1) << " W/node. OK\n";
    return 0;
  }
  std::cout << "\nunexpected: budget did not increase\n";
  return 1;
}
