// Quickstart: run two NPB-like jobs on an emulated 4-node cluster under a
// static cluster power budget with the performance-aware policy, and print
// their GEOPM-style reports.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the ANOR framework: build a
// schedule, pick a policy and a power objective, run, inspect results.
#include <iostream>

#include "core/anor.hpp"

int main() {
  using namespace anor;

  // 1. Describe the work: one BT (power-sensitive) and one SP (not) job,
  //    both submitted at t=0, two nodes each.
  core::Experiment experiment;
  experiment.node_count = 4;
  experiment.schedule.jobs = {
      {0, "bt.D.x", 0.0, 2, ""},
      {1, "sp.D.x", 0.0, 2, ""},
  };
  experiment.schedule.duration_s = 1.0;

  // 2. Pick the power objective: a static cluster budget at 75 % of TDP.
  experiment.static_budget_w = 4 * 0.75 * workload::kNodeTdpW;

  // 3. Pick the policy: the performance-aware even-slowdown budgeter with
  //    correct precharacterized models.
  experiment.policy = core::PolicyRef("characterized");

  // 4. Run.  The full two-tier stack executes: a cluster manager budgets
  //    power, per-job endpoints model performance, GEOPM-like agents
  //    enforce caps through emulated RAPL registers.
  const cluster::EmulationResult result = core::run_experiment(experiment);

  // 5. Inspect.
  std::cout << "completed " << result.completed.size() << " jobs in "
            << result.end_time_s << " virtual seconds\n\n";
  for (const auto& job : result.completed) {
    std::cout << job.report.to_text() << "    slowdown vs uncapped: "
              << util::TextTable::format_percent(job.slowdown()) << "\n\n";
  }
  std::cout << "cluster energy: " << result.power_w.mean() * result.end_time_s / 1000.0
            << " kJ (mean power " << result.power_w.mean() << " W)\n";
  return 0;
}
