// Carbon- and tariff-aware operation — the paper's other two motivating
// grid scenarios (Sec. 3): the cluster follows power targets derived from
// grid carbon intensity (run hard when clean, throttle when dirty) or a
// time-of-use tariff, and we compare emissions/cost against running flat.
//
//   $ ./carbon_aware
#include <iostream>

#include "core/anor.hpp"
#include "workload/grid_signals.hpp"

namespace {

using namespace anor;

cluster::EmulationResult run_with_targets(const util::TimeSeries& targets,
                                          const workload::Schedule& schedule) {
  core::Experiment experiment;
  experiment.node_count = 8;
  experiment.policy = core::PolicyRef("characterized");
  experiment.base.scheduler.power_aware_admission = true;
  experiment.base.manager.control_period_s = 0.5;
  experiment.base.endpoint.period_s = 0.5;
  experiment.schedule = schedule;
  experiment.targets = targets;
  return core::run_experiment(experiment);
}

}  // namespace

int main() {
  using namespace anor;
  constexpr double kHorizon = 4.0 * 3600.0;  // a 4-hour afternoon window

  // A steady stream of work for 8 nodes.
  workload::PoissonScheduleConfig schedule_config;
  schedule_config.duration_s = kHorizon;
  schedule_config.utilization = 0.7;
  schedule_config.cluster_nodes = 8;
  const workload::Schedule schedule = workload::generate_poisson_schedule(
      workload::nas_long_job_types(), schedule_config, util::Rng(11).child("schedule"));

  const double p_low = 8 * 170.0;
  const double p_high = 8 * 250.0;

  // --- carbon-aware run ---
  const workload::CarbonIntensityProfile carbon(util::Rng(11).child("carbon"),
                                                kHorizon + 60.0);
  const auto carbon_targets =
      workload::targets_from_carbon(carbon, p_low, p_high, kHorizon, 60.0);
  const auto carbon_run = run_with_targets(carbon_targets, schedule);

  // --- flat baseline at the same mean power budget ---
  const auto flat_targets =
      core::constant_targets(carbon_targets.mean(), kHorizon, 60.0);
  const auto flat_run = run_with_targets(flat_targets, schedule);

  const double carbon_aware_g = workload::carbon_emitted_g(carbon_run.power_w, carbon);
  const double carbon_flat_g = workload::carbon_emitted_g(flat_run.power_w, carbon);
  std::cout << "carbon-aware targets:  " << carbon_aware_g / 1000.0 << " kgCO2, "
            << carbon_run.completed.size() << " jobs finished\n"
            << "flat targets:          " << carbon_flat_g / 1000.0 << " kgCO2, "
            << flat_run.completed.size() << " jobs finished\n"
            << "emission change:       "
            << util::TextTable::format_percent(carbon_aware_g / carbon_flat_g - 1.0)
            << " at the same mean power budget\n\n";

  // --- tariff-aware run over the same window ---
  const workload::TouTariff tariff = workload::TouTariff::standard();
  // Shift the window onto the evening peak (15:00-19:00).
  const double window_start = 15.0 * 3600.0;
  util::TimeSeries tariff_targets;
  for (double t = 0.0; t <= kHorizon + 1e-9; t += 60.0) {
    const double price = tariff.price_at(window_start + t);
    const double frac = (price - 0.08) / (0.24 - 0.08);
    tariff_targets.add(t, p_high - frac * (p_high - p_low));
  }
  const auto tariff_run = run_with_targets(tariff_targets, schedule);

  const auto shifted = [&](const util::TimeSeries& series) {
    util::TimeSeries out;
    for (std::size_t i = 0; i < series.size(); ++i) {
      out.add(window_start + series.times()[i], series.values()[i]);
    }
    return out;
  };
  const double tariff_cost = tariff.cost_of(shifted(tariff_run.power_w));
  const double flat_cost = tariff.cost_of(shifted(flat_run.power_w));
  std::cout << "tariff-aware targets:  $" << util::TextTable::format_double(tariff_cost, 2)
            << " for the window (" << tariff_run.completed.size() << " jobs)\n"
            << "flat targets:          $" << util::TextTable::format_double(flat_cost, 2)
            << "\ncost change:           "
            << util::TextTable::format_percent(tariff_cost / flat_cost - 1.0) << "\n";
  return 0;
}
