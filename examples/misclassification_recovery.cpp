// Misclassification and recovery, narrated: a power-sensitive BT job is
// submitted with the wrong job type (IS).  Watch what each policy does to
// it under a shared budget, and how the online feedback loop detects the
// lie and recovers the lost performance.
//
//   $ ./misclassification_recovery
#include <iostream>

#include "core/anor.hpp"

namespace {

using namespace anor;

double run(core::PolicyRef policy, bool lie) {
  core::Experiment experiment;
  experiment.node_count = 4;
  experiment.policy = policy;
  experiment.schedule.jobs = {
      {0, "bt.D.x", 0.0, 2, lie ? "is.D.x" : ""},
      {1, "sp.D.x", 0.0, 2, ""},
  };
  experiment.schedule.duration_s = 1.0;
  experiment.static_budget_w = 4 * 0.75 * workload::kNodeTdpW;
  const auto result = core::run_experiment(experiment);
  for (const auto& job : result.completed) {
    if (job.request.type_name == "bt.D.x") return job.slowdown();
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace anor;
  std::cout <<
      "Scenario: BT (high power sensitivity) and SP (low) share a 4-node\n"
      "cluster capped at 75% of TDP.  The batch system believes BT is an IS\n"
      "job -- a type whose performance barely reacts to power.\n\n";

  const double honest = run(core::PolicyRef("characterized"), false);
  std::cout << "1. correctly classified, performance-aware budgeter:\n"
            << "   BT slowdown " << util::TextTable::format_percent(honest) << "\n\n";

  const double lied = run(core::PolicyRef("misclassified"), true);
  std::cout << "2. misclassified as IS, no feedback:\n"
            << "   the budgeter starves BT of power (IS 'wouldn't care')\n"
            << "   BT slowdown " << util::TextTable::format_percent(lied) << "\n\n";

  const double recovered = run(core::PolicyRef("adjusted"), true);
  std::cout << "3. misclassified as IS, with the ANOR feedback loop:\n"
            << "   the job-tier modeler sees epochs arriving ~5x slower than the\n"
            << "   IS curve predicts, reclassifies against the precharacterized\n"
            << "   curves, and publishes the corrected model to the cluster tier\n"
            << "   BT slowdown " << util::TextTable::format_percent(recovered) << "\n\n";

  const double lost = lied - honest;
  const double regained = lied - recovered;
  std::cout << "misclassification cost " << util::TextTable::format_percent(lost)
            << " of runtime; feedback recovered "
            << util::TextTable::format_percent(lost > 0 ? regained / lost : 0.0)
            << " of that loss.\n";
  return 0;
}
