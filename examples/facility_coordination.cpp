// Facility-level power coordination (paper Sec. 8 future work): two
// clusters — an established production cluster and a next-generation
// cluster being brought up — share one facility power envelope that
// cannot feed both at peak simultaneously.  The coordinator re-splits the
// facility target as load shifts between them.
//
//   $ ./facility_coordination
#include <iostream>

#include "core/anor.hpp"

namespace {

using namespace anor;

cluster::EmulationConfig cluster_config(int nodes) {
  cluster::EmulationConfig config;
  config.node_count = nodes;
  config.step_s = 0.25;
  config.manager.control_period_s = 0.5;
  config.endpoint.period_s = 0.5;
  config.scheduler.power_aware_admission = false;
  return config;
}

workload::Schedule schedule_for(std::initializer_list<std::pair<const char*, double>> jobs) {
  workload::Schedule schedule;
  int id = 0;
  for (const auto& [type, submit] : jobs) {
    workload::JobRequest request;
    request.job_id = id++;
    request.type_name = type;
    request.submit_time_s = submit;
    request.nodes = workload::find_job_type(type).nodes;
    schedule.jobs.push_back(request);
  }
  return schedule;
}

}  // namespace

int main() {
  using namespace anor;
  std::cout <<
      "Facility: 8-node production cluster + 4-node bring-up cluster under a\n"
      "shared 2.6 kW envelope (not enough for both at peak).\n\n";

  // Production runs a steady mix; bring-up fires a burst of test jobs
  // mid-way through.
  cluster::EmulatedCluster production(
      cluster_config(8),
      schedule_for({{"bt.D.x", 0.0}, {"sp.D.x", 0.0}, {"lu.D.x", 5.0}, {"cg.D.x", 10.0}}));
  cluster::EmulatedCluster bringup(
      cluster_config(4), schedule_for({{"ft.D.x", 60.0}, {"mg.D.x", 70.0}}));

  cluster::FacilityCoordinator facility;
  facility.add_cluster(production);
  facility.add_cluster(bringup);

  const double facility_target_w = 2600.0;
  std::cout << "t_s   production_target  bringup_target  facility_measured\n";
  double next_print = 0.0;
  while (facility.step(facility_target_w, 0.5)) {
    if (facility.now_s() >= next_print) {
      next_print += 30.0;
      const auto p = production.manager().target_at(production.clock().now());
      const auto b = bringup.manager().target_at(bringup.clock().now());
      std::cout << util::TextTable::format_double(facility.now_s(), 0) << "     "
                << util::TextTable::format_double(p.value_or(0.0), 0) << "              "
                << util::TextTable::format_double(b.value_or(0.0), 0) << "            "
                << util::TextTable::format_double(facility.total_power_w(), 0) << "\n";
    }
    if (facility.now_s() > 1800.0) break;
  }

  std::cout << "\nWatch the bring-up cluster's share jump when its burst arrives at\n"
               "t=60-70 s, pulled from the production cluster's headroom — the\n"
               "paper's shared-infrastructure bring-up scenario.\n";
  return 0;
}
