// Demand response end to end, the file-driven way the paper's cluster ran:
// generate an hour-long job schedule and a time-varying power-target file,
// hand both to the framework, and report tracking quality and per-type
// slowdown.
//
//   $ ./demand_response [seed]
#include <cstdlib>
#include <iostream>

#include "core/anor.hpp"

int main(int argc, char** argv) {
  using namespace anor;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // --- the cluster offers flexibility for the next hour ---
  const workload::DemandResponseBid bid = core::fig9_bid();
  std::cout << "bidding mean " << bid.average_power_w / 1000.0 << " kW, reserve "
            << bid.reserve_w / 1000.0 << " kW for the hour\n";

  // --- the grid sends targets; the batch system takes submissions ---
  // Both are written to files and read back, as the paper's head-node
  // process does (Sec. 4.1: "reads power targets and a job submission
  // schedule from files").
  const std::string dir = "/tmp";
  const util::TimeSeries targets = core::fig9_targets(seed);
  util::save_json_file(dir + "/anor_targets.json", cluster::power_targets_to_json(targets));

  workload::PoissonScheduleConfig schedule_config;
  schedule_config.duration_s = 3600.0;
  schedule_config.utilization = 0.95;
  schedule_config.cluster_nodes = 16;
  const workload::Schedule schedule = workload::generate_poisson_schedule(
      workload::nas_long_job_types(), schedule_config, util::Rng(seed).child("schedule"));
  schedule.save(dir + "/anor_schedule.json");

  // --- run the hour ---
  core::Experiment experiment;
  experiment.node_count = 16;
  experiment.policy = core::PolicyRef("characterized");
  experiment.seed = seed;
  experiment.base.scheduler.power_aware_admission = true;
  experiment.schedule = workload::Schedule::load(dir + "/anor_schedule.json");
  experiment.targets =
      cluster::power_targets_from_json(util::load_json_file(dir + "/anor_targets.json"));

  std::cout << "running " << experiment.schedule.jobs.size()
            << " job arrivals over one hour on 16 nodes...\n";
  const cluster::EmulationResult result = core::run_experiment(experiment);

  // --- report ---
  util::TimeSeries steady;
  for (std::size_t i = 0; i < result.power_w.size(); ++i) {
    const double t = result.power_w.times()[i];
    if (t >= 300.0 && t <= 3600.0) steady.add(t, result.power_w.values()[i]);
  }
  const auto tracking = util::tracking_error(steady, result.target_w, bid.reserve_w);
  std::cout << "\npower tracking (after 300 s warmup):\n"
            << "  mean error  " << util::TextTable::format_percent(tracking.mean_error)
            << " of reserve\n"
            << "  p90 error   " << util::TextTable::format_percent(tracking.p90_error) << "\n"
            << "  within 30%  " << util::TextTable::format_percent(tracking.fraction_within_30)
            << " of the time (constraint: >=90%)\n";

  std::cout << "\nper-type mean slowdown (" << result.completed.size() << " jobs):\n";
  for (const auto& [type, stats] : result.slowdown_by_type()) {
    std::cout << "  " << type << "  " << util::TextTable::format_percent(stats.mean())
              << "  (n=" << stats.count() << ")\n";
  }
  std::cout << "\nQoS: worst 90th-percentile degradation "
            << util::TextTable::format_double(result.qos.worst_quantile(), 2)
            << " (target <= 5): " << (result.qos.satisfied() ? "OK" : "VIOLATED") << "\n";
  if (!result.qos.satisfied()) {
    std::cout << "(95% utilization with untrained uniform queue weights queues jobs\n"
                 " deeply; see examples/capacity_planning for the AQA weight-training\n"
                 " loop that trades utilization against QoS.)\n";
  }
  return 0;
}
