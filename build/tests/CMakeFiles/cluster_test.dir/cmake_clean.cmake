file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/cluster/cluster_manager_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/cluster_manager_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/emulation_invariants_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/emulation_invariants_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/emulation_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/emulation_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/facility_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/facility_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/job_endpoint_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/job_endpoint_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/messages_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/messages_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/tcp_integration_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/tcp_integration_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/tcp_transport_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/tcp_transport_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/transport_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/transport_test.cpp.o.d"
  "cluster_test"
  "cluster_test.pdb"
  "cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
