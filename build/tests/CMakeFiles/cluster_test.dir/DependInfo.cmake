
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/cluster_manager_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_manager_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_manager_test.cpp.o.d"
  "/root/repo/tests/cluster/emulation_invariants_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/emulation_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/emulation_invariants_test.cpp.o.d"
  "/root/repo/tests/cluster/emulation_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/emulation_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/emulation_test.cpp.o.d"
  "/root/repo/tests/cluster/facility_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/facility_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/facility_test.cpp.o.d"
  "/root/repo/tests/cluster/failure_injection_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cpp.o.d"
  "/root/repo/tests/cluster/job_endpoint_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/job_endpoint_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/job_endpoint_test.cpp.o.d"
  "/root/repo/tests/cluster/messages_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/messages_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/messages_test.cpp.o.d"
  "/root/repo/tests/cluster/tcp_integration_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/tcp_integration_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/tcp_integration_test.cpp.o.d"
  "/root/repo/tests/cluster/tcp_transport_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/tcp_transport_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/tcp_transport_test.cpp.o.d"
  "/root/repo/tests/cluster/transport_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/transport_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/transport_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/anor_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geopm/CMakeFiles/anor_geopm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/anor_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/budget/CMakeFiles/anor_budget.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/anor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
