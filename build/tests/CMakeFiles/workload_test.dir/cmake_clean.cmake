file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/grid_signals_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload/grid_signals_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload/job_type_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload/job_type_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload/phased_kernel_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload/phased_kernel_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload/queue_trace_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload/queue_trace_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload/regulation_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload/regulation_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload/schedule_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload/schedule_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload/synthetic_kernel_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload/synthetic_kernel_test.cpp.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
