file(REMOVE_RECURSE
  "CMakeFiles/budget_test.dir/budget/budgeter_property_test.cpp.o"
  "CMakeFiles/budget_test.dir/budget/budgeter_property_test.cpp.o.d"
  "CMakeFiles/budget_test.dir/budget/even_power_test.cpp.o"
  "CMakeFiles/budget_test.dir/budget/even_power_test.cpp.o.d"
  "CMakeFiles/budget_test.dir/budget/even_slowdown_test.cpp.o"
  "CMakeFiles/budget_test.dir/budget/even_slowdown_test.cpp.o.d"
  "budget_test"
  "budget_test.pdb"
  "budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
