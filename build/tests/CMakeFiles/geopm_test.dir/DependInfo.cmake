
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geopm/comm_tree_test.cpp" "tests/CMakeFiles/geopm_test.dir/geopm/comm_tree_test.cpp.o" "gcc" "tests/CMakeFiles/geopm_test.dir/geopm/comm_tree_test.cpp.o.d"
  "/root/repo/tests/geopm/controller_test.cpp" "tests/CMakeFiles/geopm_test.dir/geopm/controller_test.cpp.o" "gcc" "tests/CMakeFiles/geopm_test.dir/geopm/controller_test.cpp.o.d"
  "/root/repo/tests/geopm/endpoint_test.cpp" "tests/CMakeFiles/geopm_test.dir/geopm/endpoint_test.cpp.o" "gcc" "tests/CMakeFiles/geopm_test.dir/geopm/endpoint_test.cpp.o.d"
  "/root/repo/tests/geopm/platform_io_test.cpp" "tests/CMakeFiles/geopm_test.dir/geopm/platform_io_test.cpp.o" "gcc" "tests/CMakeFiles/geopm_test.dir/geopm/platform_io_test.cpp.o.d"
  "/root/repo/tests/geopm/power_balancer_test.cpp" "tests/CMakeFiles/geopm_test.dir/geopm/power_balancer_test.cpp.o" "gcc" "tests/CMakeFiles/geopm_test.dir/geopm/power_balancer_test.cpp.o.d"
  "/root/repo/tests/geopm/power_governor_test.cpp" "tests/CMakeFiles/geopm_test.dir/geopm/power_governor_test.cpp.o" "gcc" "tests/CMakeFiles/geopm_test.dir/geopm/power_governor_test.cpp.o.d"
  "/root/repo/tests/geopm/report_test.cpp" "tests/CMakeFiles/geopm_test.dir/geopm/report_test.cpp.o" "gcc" "tests/CMakeFiles/geopm_test.dir/geopm/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/anor_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geopm/CMakeFiles/anor_geopm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/anor_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/budget/CMakeFiles/anor_budget.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/anor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
