file(REMOVE_RECURSE
  "CMakeFiles/geopm_test.dir/geopm/comm_tree_test.cpp.o"
  "CMakeFiles/geopm_test.dir/geopm/comm_tree_test.cpp.o.d"
  "CMakeFiles/geopm_test.dir/geopm/controller_test.cpp.o"
  "CMakeFiles/geopm_test.dir/geopm/controller_test.cpp.o.d"
  "CMakeFiles/geopm_test.dir/geopm/endpoint_test.cpp.o"
  "CMakeFiles/geopm_test.dir/geopm/endpoint_test.cpp.o.d"
  "CMakeFiles/geopm_test.dir/geopm/platform_io_test.cpp.o"
  "CMakeFiles/geopm_test.dir/geopm/platform_io_test.cpp.o.d"
  "CMakeFiles/geopm_test.dir/geopm/power_balancer_test.cpp.o"
  "CMakeFiles/geopm_test.dir/geopm/power_balancer_test.cpp.o.d"
  "CMakeFiles/geopm_test.dir/geopm/power_governor_test.cpp.o"
  "CMakeFiles/geopm_test.dir/geopm/power_governor_test.cpp.o.d"
  "CMakeFiles/geopm_test.dir/geopm/report_test.cpp.o"
  "CMakeFiles/geopm_test.dir/geopm/report_test.cpp.o.d"
  "geopm_test"
  "geopm_test.pdb"
  "geopm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geopm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
