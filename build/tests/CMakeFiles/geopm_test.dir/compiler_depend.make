# Empty compiler generated dependencies file for geopm_test.
# This may be replaced when dependencies are built.
