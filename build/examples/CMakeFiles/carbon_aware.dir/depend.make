# Empty dependencies file for carbon_aware.
# This may be replaced when dependencies are built.
