file(REMOVE_RECURSE
  "CMakeFiles/carbon_aware.dir/carbon_aware.cpp.o"
  "CMakeFiles/carbon_aware.dir/carbon_aware.cpp.o.d"
  "carbon_aware"
  "carbon_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carbon_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
