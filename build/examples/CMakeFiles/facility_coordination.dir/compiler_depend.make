# Empty compiler generated dependencies file for facility_coordination.
# This may be replaced when dependencies are built.
