file(REMOVE_RECURSE
  "CMakeFiles/facility_coordination.dir/facility_coordination.cpp.o"
  "CMakeFiles/facility_coordination.dir/facility_coordination.cpp.o.d"
  "facility_coordination"
  "facility_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
