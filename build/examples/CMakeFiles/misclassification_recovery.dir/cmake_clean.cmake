file(REMOVE_RECURSE
  "CMakeFiles/misclassification_recovery.dir/misclassification_recovery.cpp.o"
  "CMakeFiles/misclassification_recovery.dir/misclassification_recovery.cpp.o.d"
  "misclassification_recovery"
  "misclassification_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misclassification_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
