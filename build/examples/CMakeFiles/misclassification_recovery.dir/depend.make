# Empty dependencies file for misclassification_recovery.
# This may be replaced when dependencies are built.
