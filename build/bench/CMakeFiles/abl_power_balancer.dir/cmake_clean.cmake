file(REMOVE_RECURSE
  "CMakeFiles/abl_power_balancer.dir/abl_power_balancer.cpp.o"
  "CMakeFiles/abl_power_balancer.dir/abl_power_balancer.cpp.o.d"
  "abl_power_balancer"
  "abl_power_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_power_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
