# Empty dependencies file for abl_power_balancer.
# This may be replaced when dependencies are built.
