# Empty compiler generated dependencies file for fig06_bt_sp_shared_cap.
# This may be replaced when dependencies are built.
