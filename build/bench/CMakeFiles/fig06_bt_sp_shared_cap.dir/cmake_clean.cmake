file(REMOVE_RECURSE
  "CMakeFiles/fig06_bt_sp_shared_cap.dir/fig06_bt_sp_shared_cap.cpp.o"
  "CMakeFiles/fig06_bt_sp_shared_cap.dir/fig06_bt_sp_shared_cap.cpp.o.d"
  "fig06_bt_sp_shared_cap"
  "fig06_bt_sp_shared_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bt_sp_shared_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
