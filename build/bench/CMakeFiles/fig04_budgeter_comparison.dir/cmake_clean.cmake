file(REMOVE_RECURSE
  "CMakeFiles/fig04_budgeter_comparison.dir/fig04_budgeter_comparison.cpp.o"
  "CMakeFiles/fig04_budgeter_comparison.dir/fig04_budgeter_comparison.cpp.o.d"
  "fig04_budgeter_comparison"
  "fig04_budgeter_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_budgeter_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
