
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig04_budgeter_comparison.cpp" "bench/CMakeFiles/fig04_budgeter_comparison.dir/fig04_budgeter_comparison.cpp.o" "gcc" "bench/CMakeFiles/fig04_budgeter_comparison.dir/fig04_budgeter_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/anor_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geopm/CMakeFiles/anor_geopm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/anor_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/budget/CMakeFiles/anor_budget.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/anor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
