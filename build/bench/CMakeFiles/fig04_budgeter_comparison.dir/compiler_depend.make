# Empty compiler generated dependencies file for fig04_budgeter_comparison.
# This may be replaced when dependencies are built.
