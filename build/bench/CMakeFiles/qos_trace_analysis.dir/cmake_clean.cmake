file(REMOVE_RECURSE
  "CMakeFiles/qos_trace_analysis.dir/qos_trace_analysis.cpp.o"
  "CMakeFiles/qos_trace_analysis.dir/qos_trace_analysis.cpp.o.d"
  "qos_trace_analysis"
  "qos_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
