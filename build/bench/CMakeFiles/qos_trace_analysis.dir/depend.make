# Empty dependencies file for qos_trace_analysis.
# This may be replaced when dependencies are built.
