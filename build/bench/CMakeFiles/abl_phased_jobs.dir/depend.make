# Empty dependencies file for abl_phased_jobs.
# This may be replaced when dependencies are built.
