file(REMOVE_RECURSE
  "CMakeFiles/abl_phased_jobs.dir/abl_phased_jobs.cpp.o"
  "CMakeFiles/abl_phased_jobs.dir/abl_phased_jobs.cpp.o.d"
  "abl_phased_jobs"
  "abl_phased_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_phased_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
