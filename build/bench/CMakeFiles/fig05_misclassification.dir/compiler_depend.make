# Empty compiler generated dependencies file for fig05_misclassification.
# This may be replaced when dependencies are built.
