file(REMOVE_RECURSE
  "CMakeFiles/fig05_misclassification.dir/fig05_misclassification.cpp.o"
  "CMakeFiles/fig05_misclassification.dir/fig05_misclassification.cpp.o.d"
  "fig05_misclassification"
  "fig05_misclassification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_misclassification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
