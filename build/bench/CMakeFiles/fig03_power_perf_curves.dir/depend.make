# Empty dependencies file for fig03_power_perf_curves.
# This may be replaced when dependencies are built.
