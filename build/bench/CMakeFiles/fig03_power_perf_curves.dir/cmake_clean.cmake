file(REMOVE_RECURSE
  "CMakeFiles/fig03_power_perf_curves.dir/fig03_power_perf_curves.cpp.o"
  "CMakeFiles/fig03_power_perf_curves.dir/fig03_power_perf_curves.cpp.o.d"
  "fig03_power_perf_curves"
  "fig03_power_perf_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_power_perf_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
