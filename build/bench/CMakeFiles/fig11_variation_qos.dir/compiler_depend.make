# Empty compiler generated dependencies file for fig11_variation_qos.
# This may be replaced when dependencies are built.
