file(REMOVE_RECURSE
  "CMakeFiles/abl_feedback_threshold.dir/abl_feedback_threshold.cpp.o"
  "CMakeFiles/abl_feedback_threshold.dir/abl_feedback_threshold.cpp.o.d"
  "abl_feedback_threshold"
  "abl_feedback_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_feedback_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
