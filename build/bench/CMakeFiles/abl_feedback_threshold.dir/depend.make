# Empty dependencies file for abl_feedback_threshold.
# This may be replaced when dependencies are built.
