file(REMOVE_RECURSE
  "CMakeFiles/abl_backfill.dir/abl_backfill.cpp.o"
  "CMakeFiles/abl_backfill.dir/abl_backfill.cpp.o.d"
  "abl_backfill"
  "abl_backfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
