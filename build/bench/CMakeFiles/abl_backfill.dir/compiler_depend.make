# Empty compiler generated dependencies file for abl_backfill.
# This may be replaced when dependencies are built.
