# Empty compiler generated dependencies file for fig07_bt_bt_misclass.
# This may be replaced when dependencies are built.
