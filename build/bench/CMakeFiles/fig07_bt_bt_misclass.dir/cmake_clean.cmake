file(REMOVE_RECURSE
  "CMakeFiles/fig07_bt_bt_misclass.dir/fig07_bt_bt_misclass.cpp.o"
  "CMakeFiles/fig07_bt_bt_misclass.dir/fig07_bt_bt_misclass.cpp.o.d"
  "fig07_bt_bt_misclass"
  "fig07_bt_bt_misclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bt_bt_misclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
