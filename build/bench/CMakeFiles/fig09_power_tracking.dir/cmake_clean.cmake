file(REMOVE_RECURSE
  "CMakeFiles/fig09_power_tracking.dir/fig09_power_tracking.cpp.o"
  "CMakeFiles/fig09_power_tracking.dir/fig09_power_tracking.cpp.o.d"
  "fig09_power_tracking"
  "fig09_power_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_power_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
