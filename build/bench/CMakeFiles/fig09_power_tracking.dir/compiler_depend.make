# Empty compiler generated dependencies file for fig09_power_tracking.
# This may be replaced when dependencies are built.
