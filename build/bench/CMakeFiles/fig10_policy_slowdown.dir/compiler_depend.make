# Empty compiler generated dependencies file for fig10_policy_slowdown.
# This may be replaced when dependencies are built.
