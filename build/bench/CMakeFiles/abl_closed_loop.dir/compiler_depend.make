# Empty compiler generated dependencies file for abl_closed_loop.
# This may be replaced when dependencies are built.
