file(REMOVE_RECURSE
  "CMakeFiles/abl_closed_loop.dir/abl_closed_loop.cpp.o"
  "CMakeFiles/abl_closed_loop.dir/abl_closed_loop.cpp.o.d"
  "abl_closed_loop"
  "abl_closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
