# Empty compiler generated dependencies file for fig08_sp_sp_misclass.
# This may be replaced when dependencies are built.
