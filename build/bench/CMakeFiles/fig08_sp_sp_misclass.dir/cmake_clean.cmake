file(REMOVE_RECURSE
  "CMakeFiles/fig08_sp_sp_misclass.dir/fig08_sp_sp_misclass.cpp.o"
  "CMakeFiles/fig08_sp_sp_misclass.dir/fig08_sp_sp_misclass.cpp.o.d"
  "fig08_sp_sp_misclass"
  "fig08_sp_sp_misclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sp_sp_misclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
