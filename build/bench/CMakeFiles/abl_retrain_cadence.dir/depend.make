# Empty dependencies file for abl_retrain_cadence.
# This may be replaced when dependencies are built.
