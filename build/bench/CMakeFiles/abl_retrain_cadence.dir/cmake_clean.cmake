file(REMOVE_RECURSE
  "CMakeFiles/abl_retrain_cadence.dir/abl_retrain_cadence.cpp.o"
  "CMakeFiles/abl_retrain_cadence.dir/abl_retrain_cadence.cpp.o.d"
  "abl_retrain_cadence"
  "abl_retrain_cadence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_retrain_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
