# Empty dependencies file for anorctl.
# This may be replaced when dependencies are built.
