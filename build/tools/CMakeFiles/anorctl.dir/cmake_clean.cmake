file(REMOVE_RECURSE
  "CMakeFiles/anorctl.dir/anorctl.cpp.o"
  "CMakeFiles/anorctl.dir/anorctl.cpp.o.d"
  "anorctl"
  "anorctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anorctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
