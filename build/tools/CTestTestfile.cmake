# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(anorctl_selftest "/root/repo/build/tools/anorctl" "selftest")
set_tests_properties(anorctl_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(anorctl_types "/root/repo/build/tools/anorctl" "types")
set_tests_properties(anorctl_types PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
