file(REMOVE_RECURSE
  "libanor_budget.a"
)
