file(REMOVE_RECURSE
  "CMakeFiles/anor_budget.dir/budgeter.cpp.o"
  "CMakeFiles/anor_budget.dir/budgeter.cpp.o.d"
  "CMakeFiles/anor_budget.dir/even_power.cpp.o"
  "CMakeFiles/anor_budget.dir/even_power.cpp.o.d"
  "CMakeFiles/anor_budget.dir/even_slowdown.cpp.o"
  "CMakeFiles/anor_budget.dir/even_slowdown.cpp.o.d"
  "libanor_budget.a"
  "libanor_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
