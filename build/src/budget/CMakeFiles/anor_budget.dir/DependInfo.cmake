
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/budget/budgeter.cpp" "src/budget/CMakeFiles/anor_budget.dir/budgeter.cpp.o" "gcc" "src/budget/CMakeFiles/anor_budget.dir/budgeter.cpp.o.d"
  "/root/repo/src/budget/even_power.cpp" "src/budget/CMakeFiles/anor_budget.dir/even_power.cpp.o" "gcc" "src/budget/CMakeFiles/anor_budget.dir/even_power.cpp.o.d"
  "/root/repo/src/budget/even_slowdown.cpp" "src/budget/CMakeFiles/anor_budget.dir/even_slowdown.cpp.o" "gcc" "src/budget/CMakeFiles/anor_budget.dir/even_slowdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/anor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
