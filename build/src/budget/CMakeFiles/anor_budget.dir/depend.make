# Empty dependencies file for anor_budget.
# This may be replaced when dependencies are built.
