# Empty dependencies file for anor_sim.
# This may be replaced when dependencies are built.
