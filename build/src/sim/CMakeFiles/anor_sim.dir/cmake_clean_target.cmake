file(REMOVE_RECURSE
  "libanor_sim.a"
)
