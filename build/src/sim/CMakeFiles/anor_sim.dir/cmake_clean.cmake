file(REMOVE_RECURSE
  "CMakeFiles/anor_sim.dir/evaluators.cpp.o"
  "CMakeFiles/anor_sim.dir/evaluators.cpp.o.d"
  "CMakeFiles/anor_sim.dir/sim_config.cpp.o"
  "CMakeFiles/anor_sim.dir/sim_config.cpp.o.d"
  "CMakeFiles/anor_sim.dir/simulator.cpp.o"
  "CMakeFiles/anor_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/anor_sim.dir/tables.cpp.o"
  "CMakeFiles/anor_sim.dir/tables.cpp.o.d"
  "libanor_sim.a"
  "libanor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
