
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/evaluators.cpp" "src/sim/CMakeFiles/anor_sim.dir/evaluators.cpp.o" "gcc" "src/sim/CMakeFiles/anor_sim.dir/evaluators.cpp.o.d"
  "/root/repo/src/sim/sim_config.cpp" "src/sim/CMakeFiles/anor_sim.dir/sim_config.cpp.o" "gcc" "src/sim/CMakeFiles/anor_sim.dir/sim_config.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/anor_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/anor_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/tables.cpp" "src/sim/CMakeFiles/anor_sim.dir/tables.cpp.o" "gcc" "src/sim/CMakeFiles/anor_sim.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/anor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/budget/CMakeFiles/anor_budget.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/anor_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
