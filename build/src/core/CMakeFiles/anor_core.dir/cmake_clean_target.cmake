file(REMOVE_RECURSE
  "libanor_core.a"
)
