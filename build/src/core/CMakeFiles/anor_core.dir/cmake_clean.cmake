file(REMOVE_RECURSE
  "CMakeFiles/anor_core.dir/framework.cpp.o"
  "CMakeFiles/anor_core.dir/framework.cpp.o.d"
  "CMakeFiles/anor_core.dir/policies.cpp.o"
  "CMakeFiles/anor_core.dir/policies.cpp.o.d"
  "libanor_core.a"
  "libanor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
