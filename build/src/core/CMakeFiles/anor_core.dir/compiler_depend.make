# Empty compiler generated dependencies file for anor_core.
# This may be replaced when dependencies are built.
