# Empty dependencies file for anor_workload.
# This may be replaced when dependencies are built.
