file(REMOVE_RECURSE
  "libanor_workload.a"
)
