file(REMOVE_RECURSE
  "CMakeFiles/anor_workload.dir/grid_signals.cpp.o"
  "CMakeFiles/anor_workload.dir/grid_signals.cpp.o.d"
  "CMakeFiles/anor_workload.dir/job_type.cpp.o"
  "CMakeFiles/anor_workload.dir/job_type.cpp.o.d"
  "CMakeFiles/anor_workload.dir/phased_kernel.cpp.o"
  "CMakeFiles/anor_workload.dir/phased_kernel.cpp.o.d"
  "CMakeFiles/anor_workload.dir/queue_trace.cpp.o"
  "CMakeFiles/anor_workload.dir/queue_trace.cpp.o.d"
  "CMakeFiles/anor_workload.dir/regulation.cpp.o"
  "CMakeFiles/anor_workload.dir/regulation.cpp.o.d"
  "CMakeFiles/anor_workload.dir/schedule.cpp.o"
  "CMakeFiles/anor_workload.dir/schedule.cpp.o.d"
  "CMakeFiles/anor_workload.dir/synthetic_kernel.cpp.o"
  "CMakeFiles/anor_workload.dir/synthetic_kernel.cpp.o.d"
  "libanor_workload.a"
  "libanor_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
