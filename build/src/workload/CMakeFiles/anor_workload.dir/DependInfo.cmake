
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/grid_signals.cpp" "src/workload/CMakeFiles/anor_workload.dir/grid_signals.cpp.o" "gcc" "src/workload/CMakeFiles/anor_workload.dir/grid_signals.cpp.o.d"
  "/root/repo/src/workload/job_type.cpp" "src/workload/CMakeFiles/anor_workload.dir/job_type.cpp.o" "gcc" "src/workload/CMakeFiles/anor_workload.dir/job_type.cpp.o.d"
  "/root/repo/src/workload/phased_kernel.cpp" "src/workload/CMakeFiles/anor_workload.dir/phased_kernel.cpp.o" "gcc" "src/workload/CMakeFiles/anor_workload.dir/phased_kernel.cpp.o.d"
  "/root/repo/src/workload/queue_trace.cpp" "src/workload/CMakeFiles/anor_workload.dir/queue_trace.cpp.o" "gcc" "src/workload/CMakeFiles/anor_workload.dir/queue_trace.cpp.o.d"
  "/root/repo/src/workload/regulation.cpp" "src/workload/CMakeFiles/anor_workload.dir/regulation.cpp.o" "gcc" "src/workload/CMakeFiles/anor_workload.dir/regulation.cpp.o.d"
  "/root/repo/src/workload/schedule.cpp" "src/workload/CMakeFiles/anor_workload.dir/schedule.cpp.o" "gcc" "src/workload/CMakeFiles/anor_workload.dir/schedule.cpp.o.d"
  "/root/repo/src/workload/synthetic_kernel.cpp" "src/workload/CMakeFiles/anor_workload.dir/synthetic_kernel.cpp.o" "gcc" "src/workload/CMakeFiles/anor_workload.dir/synthetic_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
