file(REMOVE_RECURSE
  "CMakeFiles/anor_platform.dir/cluster_hw.cpp.o"
  "CMakeFiles/anor_platform.dir/cluster_hw.cpp.o.d"
  "CMakeFiles/anor_platform.dir/msr.cpp.o"
  "CMakeFiles/anor_platform.dir/msr.cpp.o.d"
  "CMakeFiles/anor_platform.dir/node.cpp.o"
  "CMakeFiles/anor_platform.dir/node.cpp.o.d"
  "CMakeFiles/anor_platform.dir/package.cpp.o"
  "CMakeFiles/anor_platform.dir/package.cpp.o.d"
  "libanor_platform.a"
  "libanor_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
