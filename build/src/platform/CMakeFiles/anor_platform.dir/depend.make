# Empty dependencies file for anor_platform.
# This may be replaced when dependencies are built.
