file(REMOVE_RECURSE
  "libanor_platform.a"
)
