
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cluster_hw.cpp" "src/platform/CMakeFiles/anor_platform.dir/cluster_hw.cpp.o" "gcc" "src/platform/CMakeFiles/anor_platform.dir/cluster_hw.cpp.o.d"
  "/root/repo/src/platform/msr.cpp" "src/platform/CMakeFiles/anor_platform.dir/msr.cpp.o" "gcc" "src/platform/CMakeFiles/anor_platform.dir/msr.cpp.o.d"
  "/root/repo/src/platform/node.cpp" "src/platform/CMakeFiles/anor_platform.dir/node.cpp.o" "gcc" "src/platform/CMakeFiles/anor_platform.dir/node.cpp.o.d"
  "/root/repo/src/platform/package.cpp" "src/platform/CMakeFiles/anor_platform.dir/package.cpp.o" "gcc" "src/platform/CMakeFiles/anor_platform.dir/package.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
