# Empty compiler generated dependencies file for anor_geopm.
# This may be replaced when dependencies are built.
