file(REMOVE_RECURSE
  "libanor_geopm.a"
)
