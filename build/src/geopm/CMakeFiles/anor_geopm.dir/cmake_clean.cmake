file(REMOVE_RECURSE
  "CMakeFiles/anor_geopm.dir/comm_tree.cpp.o"
  "CMakeFiles/anor_geopm.dir/comm_tree.cpp.o.d"
  "CMakeFiles/anor_geopm.dir/controller.cpp.o"
  "CMakeFiles/anor_geopm.dir/controller.cpp.o.d"
  "CMakeFiles/anor_geopm.dir/endpoint.cpp.o"
  "CMakeFiles/anor_geopm.dir/endpoint.cpp.o.d"
  "CMakeFiles/anor_geopm.dir/platform_io.cpp.o"
  "CMakeFiles/anor_geopm.dir/platform_io.cpp.o.d"
  "CMakeFiles/anor_geopm.dir/power_balancer.cpp.o"
  "CMakeFiles/anor_geopm.dir/power_balancer.cpp.o.d"
  "CMakeFiles/anor_geopm.dir/power_governor.cpp.o"
  "CMakeFiles/anor_geopm.dir/power_governor.cpp.o.d"
  "CMakeFiles/anor_geopm.dir/report.cpp.o"
  "CMakeFiles/anor_geopm.dir/report.cpp.o.d"
  "libanor_geopm.a"
  "libanor_geopm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_geopm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
