
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geopm/comm_tree.cpp" "src/geopm/CMakeFiles/anor_geopm.dir/comm_tree.cpp.o" "gcc" "src/geopm/CMakeFiles/anor_geopm.dir/comm_tree.cpp.o.d"
  "/root/repo/src/geopm/controller.cpp" "src/geopm/CMakeFiles/anor_geopm.dir/controller.cpp.o" "gcc" "src/geopm/CMakeFiles/anor_geopm.dir/controller.cpp.o.d"
  "/root/repo/src/geopm/endpoint.cpp" "src/geopm/CMakeFiles/anor_geopm.dir/endpoint.cpp.o" "gcc" "src/geopm/CMakeFiles/anor_geopm.dir/endpoint.cpp.o.d"
  "/root/repo/src/geopm/platform_io.cpp" "src/geopm/CMakeFiles/anor_geopm.dir/platform_io.cpp.o" "gcc" "src/geopm/CMakeFiles/anor_geopm.dir/platform_io.cpp.o.d"
  "/root/repo/src/geopm/power_balancer.cpp" "src/geopm/CMakeFiles/anor_geopm.dir/power_balancer.cpp.o" "gcc" "src/geopm/CMakeFiles/anor_geopm.dir/power_balancer.cpp.o.d"
  "/root/repo/src/geopm/power_governor.cpp" "src/geopm/CMakeFiles/anor_geopm.dir/power_governor.cpp.o" "gcc" "src/geopm/CMakeFiles/anor_geopm.dir/power_governor.cpp.o.d"
  "/root/repo/src/geopm/report.cpp" "src/geopm/CMakeFiles/anor_geopm.dir/report.cpp.o" "gcc" "src/geopm/CMakeFiles/anor_geopm.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
