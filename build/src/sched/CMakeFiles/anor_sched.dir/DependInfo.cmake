
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/aqa_scheduler.cpp" "src/sched/CMakeFiles/anor_sched.dir/aqa_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/anor_sched.dir/aqa_scheduler.cpp.o.d"
  "/root/repo/src/sched/bidder.cpp" "src/sched/CMakeFiles/anor_sched.dir/bidder.cpp.o" "gcc" "src/sched/CMakeFiles/anor_sched.dir/bidder.cpp.o.d"
  "/root/repo/src/sched/qos.cpp" "src/sched/CMakeFiles/anor_sched.dir/qos.cpp.o" "gcc" "src/sched/CMakeFiles/anor_sched.dir/qos.cpp.o.d"
  "/root/repo/src/sched/weight_trainer.cpp" "src/sched/CMakeFiles/anor_sched.dir/weight_trainer.cpp.o" "gcc" "src/sched/CMakeFiles/anor_sched.dir/weight_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/anor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/budget/CMakeFiles/anor_budget.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
