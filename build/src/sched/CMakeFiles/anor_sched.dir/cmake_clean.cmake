file(REMOVE_RECURSE
  "CMakeFiles/anor_sched.dir/aqa_scheduler.cpp.o"
  "CMakeFiles/anor_sched.dir/aqa_scheduler.cpp.o.d"
  "CMakeFiles/anor_sched.dir/bidder.cpp.o"
  "CMakeFiles/anor_sched.dir/bidder.cpp.o.d"
  "CMakeFiles/anor_sched.dir/qos.cpp.o"
  "CMakeFiles/anor_sched.dir/qos.cpp.o.d"
  "CMakeFiles/anor_sched.dir/weight_trainer.cpp.o"
  "CMakeFiles/anor_sched.dir/weight_trainer.cpp.o.d"
  "libanor_sched.a"
  "libanor_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
