# Empty compiler generated dependencies file for anor_sched.
# This may be replaced when dependencies are built.
