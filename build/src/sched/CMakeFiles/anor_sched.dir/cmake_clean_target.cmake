file(REMOVE_RECURSE
  "libanor_sched.a"
)
