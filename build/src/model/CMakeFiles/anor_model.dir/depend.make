# Empty dependencies file for anor_model.
# This may be replaced when dependencies are built.
