file(REMOVE_RECURSE
  "CMakeFiles/anor_model.dir/default_models.cpp.o"
  "CMakeFiles/anor_model.dir/default_models.cpp.o.d"
  "CMakeFiles/anor_model.dir/modeler.cpp.o"
  "CMakeFiles/anor_model.dir/modeler.cpp.o.d"
  "CMakeFiles/anor_model.dir/perf_model.cpp.o"
  "CMakeFiles/anor_model.dir/perf_model.cpp.o.d"
  "CMakeFiles/anor_model.dir/reclassify.cpp.o"
  "CMakeFiles/anor_model.dir/reclassify.cpp.o.d"
  "libanor_model.a"
  "libanor_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
