file(REMOVE_RECURSE
  "libanor_model.a"
)
