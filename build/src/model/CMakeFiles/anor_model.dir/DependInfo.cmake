
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/default_models.cpp" "src/model/CMakeFiles/anor_model.dir/default_models.cpp.o" "gcc" "src/model/CMakeFiles/anor_model.dir/default_models.cpp.o.d"
  "/root/repo/src/model/modeler.cpp" "src/model/CMakeFiles/anor_model.dir/modeler.cpp.o" "gcc" "src/model/CMakeFiles/anor_model.dir/modeler.cpp.o.d"
  "/root/repo/src/model/perf_model.cpp" "src/model/CMakeFiles/anor_model.dir/perf_model.cpp.o" "gcc" "src/model/CMakeFiles/anor_model.dir/perf_model.cpp.o.d"
  "/root/repo/src/model/reclassify.cpp" "src/model/CMakeFiles/anor_model.dir/reclassify.cpp.o" "gcc" "src/model/CMakeFiles/anor_model.dir/reclassify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
