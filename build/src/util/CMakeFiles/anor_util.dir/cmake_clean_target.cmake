file(REMOVE_RECURSE
  "libanor_util.a"
)
