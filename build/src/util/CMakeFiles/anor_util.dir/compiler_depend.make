# Empty compiler generated dependencies file for anor_util.
# This may be replaced when dependencies are built.
