file(REMOVE_RECURSE
  "CMakeFiles/anor_util.dir/csv.cpp.o"
  "CMakeFiles/anor_util.dir/csv.cpp.o.d"
  "CMakeFiles/anor_util.dir/json.cpp.o"
  "CMakeFiles/anor_util.dir/json.cpp.o.d"
  "CMakeFiles/anor_util.dir/logging.cpp.o"
  "CMakeFiles/anor_util.dir/logging.cpp.o.d"
  "CMakeFiles/anor_util.dir/poly_fit.cpp.o"
  "CMakeFiles/anor_util.dir/poly_fit.cpp.o.d"
  "CMakeFiles/anor_util.dir/rng.cpp.o"
  "CMakeFiles/anor_util.dir/rng.cpp.o.d"
  "CMakeFiles/anor_util.dir/stats.cpp.o"
  "CMakeFiles/anor_util.dir/stats.cpp.o.d"
  "CMakeFiles/anor_util.dir/table.cpp.o"
  "CMakeFiles/anor_util.dir/table.cpp.o.d"
  "CMakeFiles/anor_util.dir/thread_pool.cpp.o"
  "CMakeFiles/anor_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/anor_util.dir/time_series.cpp.o"
  "CMakeFiles/anor_util.dir/time_series.cpp.o.d"
  "libanor_util.a"
  "libanor_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
