file(REMOVE_RECURSE
  "libanor_cluster.a"
)
