file(REMOVE_RECURSE
  "CMakeFiles/anor_cluster.dir/cluster_manager.cpp.o"
  "CMakeFiles/anor_cluster.dir/cluster_manager.cpp.o.d"
  "CMakeFiles/anor_cluster.dir/emulation.cpp.o"
  "CMakeFiles/anor_cluster.dir/emulation.cpp.o.d"
  "CMakeFiles/anor_cluster.dir/facility.cpp.o"
  "CMakeFiles/anor_cluster.dir/facility.cpp.o.d"
  "CMakeFiles/anor_cluster.dir/job_endpoint.cpp.o"
  "CMakeFiles/anor_cluster.dir/job_endpoint.cpp.o.d"
  "CMakeFiles/anor_cluster.dir/messages.cpp.o"
  "CMakeFiles/anor_cluster.dir/messages.cpp.o.d"
  "CMakeFiles/anor_cluster.dir/tcp_transport.cpp.o"
  "CMakeFiles/anor_cluster.dir/tcp_transport.cpp.o.d"
  "CMakeFiles/anor_cluster.dir/transport.cpp.o"
  "CMakeFiles/anor_cluster.dir/transport.cpp.o.d"
  "libanor_cluster.a"
  "libanor_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anor_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
