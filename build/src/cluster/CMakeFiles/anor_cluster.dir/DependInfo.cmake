
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_manager.cpp" "src/cluster/CMakeFiles/anor_cluster.dir/cluster_manager.cpp.o" "gcc" "src/cluster/CMakeFiles/anor_cluster.dir/cluster_manager.cpp.o.d"
  "/root/repo/src/cluster/emulation.cpp" "src/cluster/CMakeFiles/anor_cluster.dir/emulation.cpp.o" "gcc" "src/cluster/CMakeFiles/anor_cluster.dir/emulation.cpp.o.d"
  "/root/repo/src/cluster/facility.cpp" "src/cluster/CMakeFiles/anor_cluster.dir/facility.cpp.o" "gcc" "src/cluster/CMakeFiles/anor_cluster.dir/facility.cpp.o.d"
  "/root/repo/src/cluster/job_endpoint.cpp" "src/cluster/CMakeFiles/anor_cluster.dir/job_endpoint.cpp.o" "gcc" "src/cluster/CMakeFiles/anor_cluster.dir/job_endpoint.cpp.o.d"
  "/root/repo/src/cluster/messages.cpp" "src/cluster/CMakeFiles/anor_cluster.dir/messages.cpp.o" "gcc" "src/cluster/CMakeFiles/anor_cluster.dir/messages.cpp.o.d"
  "/root/repo/src/cluster/tcp_transport.cpp" "src/cluster/CMakeFiles/anor_cluster.dir/tcp_transport.cpp.o" "gcc" "src/cluster/CMakeFiles/anor_cluster.dir/tcp_transport.cpp.o.d"
  "/root/repo/src/cluster/transport.cpp" "src/cluster/CMakeFiles/anor_cluster.dir/transport.cpp.o" "gcc" "src/cluster/CMakeFiles/anor_cluster.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/anor_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/geopm/CMakeFiles/anor_geopm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/anor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/budget/CMakeFiles/anor_budget.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/anor_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
