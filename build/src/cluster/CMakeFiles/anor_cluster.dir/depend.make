# Empty dependencies file for anor_cluster.
# This may be replaced when dependencies are built.
