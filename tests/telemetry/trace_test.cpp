#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/json.hpp"

namespace anor::telemetry {
namespace {

TEST(TraceRecorder, RecordsEventsInOrder) {
  TraceRecorder recorder(16);
  recorder.begin("job#1", "job", 1.0);
  recorder.instant("cap_change", "job", 2.0, 250.0);
  recorder.counter("power_w", "cluster", 3.0, 4200.0);
  recorder.complete("job#2", "job", 0.5, 4.5);
  recorder.end("job#1", "job", 5.0);

  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(events[1].phase, TracePhase::kInstant);
  EXPECT_DOUBLE_EQ(events[1].value, 250.0);
  EXPECT_EQ(events[2].phase, TracePhase::kCounter);
  EXPECT_DOUBLE_EQ(events[2].value, 4200.0);
  EXPECT_EQ(events[3].phase, TracePhase::kComplete);
  EXPECT_DOUBLE_EQ(events[3].dur_s, 4.5);
  EXPECT_EQ(events[4].phase, TracePhase::kEnd);
  EXPECT_EQ(recorder.total_recorded(), 5u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceRecorder, RingOverwritesOldestFirst) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 6; ++i) {
    recorder.instant("e" + std::to_string(i), "test", static_cast<double>(i));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // e0 and e1 were overwritten; the survivors come back oldest first.
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
  EXPECT_EQ(events[3].name, "e5");
}

TEST(TraceRecorder, SetCapacityShrinkKeepsNewestEvents) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 6; ++i) {
    recorder.instant("e" + std::to_string(i), "test", static_cast<double>(i));
  }
  recorder.set_capacity(2);
  EXPECT_EQ(recorder.capacity(), 2u);
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.total_recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 4u);
  auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "e4");
  EXPECT_EQ(events[1].name, "e5");
  // The rebound ring keeps overwriting oldest-first.
  recorder.instant("e6", "test", 6.0);
  events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "e5");
  EXPECT_EQ(events[1].name, "e6");
  EXPECT_EQ(recorder.dropped(), 5u);
}

TEST(TraceRecorder, SetCapacityGrowRetainsEventsAndStopsDropping) {
  TraceRecorder recorder(2);
  recorder.instant("a", "t", 0.0);
  recorder.instant("b", "t", 1.0);
  recorder.instant("c", "t", 2.0);  // overwrites "a"
  recorder.set_capacity(8);
  EXPECT_EQ(recorder.capacity(), 8u);
  recorder.instant("d", "t", 3.0);
  recorder.instant("e", "t", 4.0);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "b");
  EXPECT_EQ(events[1].name, "c");
  EXPECT_EQ(events[2].name, "d");
  EXPECT_EQ(events[3].name, "e");
  EXPECT_EQ(recorder.dropped(), 1u);  // only "a", from before the resize
}

TEST(TraceRecorder, ClocklessOverloadsUseBoundClock) {
  TraceRecorder recorder(8);
  util::VirtualClock clock;
  EXPECT_DOUBLE_EQ(recorder.clock_now(), 0.0);  // no clock bound
  recorder.bind_clock(&clock);
  clock.advance(7.5);
  EXPECT_DOUBLE_EQ(recorder.clock_now(), 7.5);
  recorder.instant("moment", "test");
  recorder.counter("series", "test", 42.0);
  recorder.bind_clock(nullptr);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t_s, 7.5);
  EXPECT_DOUBLE_EQ(events[1].t_s, 7.5);
  EXPECT_DOUBLE_EQ(events[1].value, 42.0);
}

TEST(TraceRecorder, DisabledRecorderDropsEvents) {
  TraceRecorder recorder(8);
  recorder.set_enabled(false);
  recorder.instant("ignored", "test", 1.0);
  EXPECT_EQ(recorder.size(), 0u);
  recorder.set_enabled(true);
  recorder.instant("kept", "test", 2.0);
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(TraceRecorder, ClearResetsRingAndTotals) {
  TraceRecorder recorder(2);
  recorder.instant("a", "t", 0.0);
  recorder.instant("b", "t", 1.0);
  recorder.instant("c", "t", 2.0);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  recorder.instant("d", "t", 3.0);
  ASSERT_EQ(recorder.events().size(), 1u);
  EXPECT_EQ(recorder.events()[0].name, "d");
}

// Golden-format check: the Chrome exporter must emit exactly the
// trace_event fields chrome://tracing and Perfetto expect.
TEST(TraceRecorder, ChromeExportMatchesTraceEventFormat) {
  TraceRecorder recorder(8);
  recorder.complete("bt.D.x#0", "job", 1.0, 2.5);
  recorder.instant("rebudget", "cluster", 2.0, 3.0);
  recorder.counter("cluster.power_w", "cluster", 4.0, 4200.0);

  std::ostringstream out;
  recorder.export_chrome_json(out);
  const util::Json root = util::Json::parse(out.str());
  const auto& events = root.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");

  const auto& span = events[0].as_object();
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_EQ(span.at("name").as_string(), "bt.D.x#0");
  EXPECT_EQ(span.at("cat").as_string(), "job");
  EXPECT_DOUBLE_EQ(span.at("ts").as_number(), 1.0e6);   // microseconds
  EXPECT_DOUBLE_EQ(span.at("dur").as_number(), 2.5e6);  // microseconds
  EXPECT_DOUBLE_EQ(span.at("pid").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(span.at("tid").as_number(), 0.0);

  const auto& instant = events[1].as_object();
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_EQ(instant.at("s").as_string(), "g");
  EXPECT_DOUBLE_EQ(instant.at("args").at("value").as_number(), 3.0);

  const auto& counter = events[2].as_object();
  EXPECT_EQ(counter.at("ph").as_string(), "C");
  EXPECT_DOUBLE_EQ(counter.at("args").at("value").as_number(), 4200.0);
}

TEST(TraceRecorder, JsonlExportIsOneObjectPerLine) {
  TraceRecorder recorder(8);
  recorder.begin("job#1", "job", 1.0);
  recorder.counter("power_w", "cluster", 2.0, 300.0);
  recorder.end("job#1", "job", 3.0);

  std::ostringstream out;
  recorder.export_jsonl(out);
  std::istringstream lines(out.str());
  std::vector<util::Json> parsed;
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) parsed.push_back(util::Json::parse(line));
  }
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].at("ph").as_string(), "B");
  EXPECT_DOUBLE_EQ(parsed[0].at("t_s").as_number(), 1.0);
  EXPECT_EQ(parsed[1].at("ph").as_string(), "C");
  EXPECT_DOUBLE_EQ(parsed[1].at("value").as_number(), 300.0);
  EXPECT_EQ(parsed[2].at("ph").as_string(), "E");
  EXPECT_EQ(parsed[2].at("name").as_string(), "job#1");
}

TEST(TraceSpan, RaiiEmitsBeginAndEnd) {
  TraceRecorder recorder(8);
  util::VirtualClock clock;
  recorder.bind_clock(&clock);
  {
    TraceSpan span(recorder, "scope", "test", clock.now());
    clock.advance(2.0);
  }
  recorder.bind_clock(nullptr);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_DOUBLE_EQ(events[0].t_s, 0.0);
  EXPECT_EQ(events[1].phase, TracePhase::kEnd);
  EXPECT_DOUBLE_EQ(events[1].t_s, 2.0);
}

TEST(TraceSpan, ExplicitEndWinsOverDestructor) {
  TraceRecorder recorder(8);
  {
    TraceSpan span(recorder, "scope", "test", 0.0);
    span.end(1.5);
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[1].t_s, 1.5);
}

}  // namespace
}  // namespace anor::telemetry
