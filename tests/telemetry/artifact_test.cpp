#include "telemetry/artifact.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

namespace anor::telemetry {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "anor_artifact_test/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(RunArtifactWriter, EmptyDirIsRejected) {
  MetricsRegistry registry;
  EXPECT_THROW(RunArtifactWriter({}, registry), util::ConfigError);
}

// Golden-file check: the long-format time series downstream tooling
// parses (`t_s,metric,type,value`, one row per scalar metric per tick).
TEST(RunArtifactWriter, MetricsCsvGolden) {
  const std::string dir = fresh_dir("csv_golden");
  MetricsRegistry registry;
  Counter& counter = registry.counter("c.events");
  Gauge& gauge = registry.gauge("g.power_w");
  registry.histogram("h.skipped", {1.0}).observe(0.5);  // excluded from the series

  {
    RunArtifactWriter writer({dir, 1.0, "golden"}, registry);
    counter.inc(3);
    gauge.set(245.5);
    writer.sample(0.0);
    counter.inc(2);
    gauge.set(250.0);
    writer.sample(2.0);
    writer.finalize();
  }

  const std::vector<std::string> expected = {
      "t_s,metric,type,value",
      "0,c.events,counter,3",
      "0,g.power_w,gauge,245.5",
      "2,c.events,counter,5",
      "2,g.power_w,gauge,250",
  };
  EXPECT_EQ(lines_of(slurp(dir + "/metrics.csv")), expected);
}

TEST(RunArtifactWriter, MaybeSampleHonoursCadence) {
  const std::string dir = fresh_dir("cadence");
  MetricsRegistry registry;
  registry.counter("c");
  RunArtifactWriter writer({dir, 1.0, "cadence"}, registry);
  writer.maybe_sample(0.0);   // taken (first sample)
  writer.maybe_sample(0.25);  // too soon
  writer.maybe_sample(0.5);   // too soon
  writer.maybe_sample(1.0);   // taken
  writer.maybe_sample(1.5);   // too soon
  writer.maybe_sample(2.5);   // taken
  writer.finalize();
  // header + 3 samples x 1 metric
  EXPECT_EQ(lines_of(slurp(dir + "/metrics.csv")).size(), 4u);
}

TEST(RunArtifactWriter, FinalizeWritesSnapshotTraceAndManifest) {
  const std::string dir = fresh_dir("finalize");
  MetricsRegistry registry;
  registry.counter("c").inc(7);
  TraceRecorder recorder(8);
  recorder.instant("moment", "test", 1.0);
  {
    RunArtifactWriter writer({dir, 1.0, "my_run"}, registry, &recorder);
    writer.sample(0.0);
  }  // destructor finalizes

  const util::Json metrics = util::Json::parse(slurp(dir + "/metrics.json"));
  EXPECT_DOUBLE_EQ(metrics.at("c").at("value").as_number(), 7.0);

  const std::string final_csv = slurp(dir + "/metrics_final.csv");
  EXPECT_NE(final_csv.find("metric,type,value,sum"), std::string::npos);
  EXPECT_NE(final_csv.find("c,counter,7"), std::string::npos);

  const util::Json trace = util::Json::parse(slurp(dir + "/trace.json"));
  ASSERT_EQ(trace.at("traceEvents").as_array().size(), 1u);
  EXPECT_EQ(lines_of(slurp(dir + "/trace.jsonl")).size(), 1u);

  const util::Json manifest = util::Json::parse(slurp(dir + "/manifest.json"));
  EXPECT_EQ(manifest.at("run").as_string(), "my_run");
  EXPECT_DOUBLE_EQ(manifest.at("cadence_s").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(manifest.at("metric_count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(manifest.at("trace_events").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(manifest.at("trace_dropped").as_number(), 0.0);
  const auto& files = manifest.at("files").as_array();
  std::vector<std::string> names;
  for (const auto& f : files) names.push_back(f.as_string());
  EXPECT_EQ(names, (std::vector<std::string>{"metrics.json", "metrics_final.csv", "metrics.csv",
                                             "trace.json", "trace.jsonl"}));
}

TEST(RunArtifactWriter, NoSeriesFileWithoutSamples) {
  const std::string dir = fresh_dir("no_series");
  MetricsRegistry registry;
  registry.counter("c");
  {
    RunArtifactWriter writer({dir, 1.0, "snap_only"}, registry);
  }
  EXPECT_FALSE(fs::exists(dir + "/metrics.csv"));
  EXPECT_TRUE(fs::exists(dir + "/metrics.json"));
  const util::Json manifest = util::Json::parse(slurp(dir + "/manifest.json"));
  for (const auto& f : manifest.at("files").as_array()) {
    EXPECT_NE(f.as_string(), "metrics.csv");
  }
}

TEST(RunArtifactWriter, FinalizeIsIdempotent) {
  const std::string dir = fresh_dir("idempotent");
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  counter.inc(1);
  RunArtifactWriter writer({dir, 1.0, "idem"}, registry);
  writer.finalize();
  counter.inc(100);
  writer.finalize();  // no-op: snapshot not rewritten
  const util::Json metrics = util::Json::parse(slurp(dir + "/metrics.json"));
  EXPECT_DOUBLE_EQ(metrics.at("c").at("value").as_number(), 1.0);
}

}  // namespace
}  // namespace anor::telemetry
