#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace anor::telemetry {
namespace {

TEST(MetricKey, CanonicalFormSortsLabels) {
  EXPECT_EQ(metric_key("node.msr.reads", {}), "node.msr.reads");
  EXPECT_EQ(metric_key("job.power_w", {{"job", "bt.D.x#4"}}), "job.power_w{job=bt.D.x#4}");
  EXPECT_EQ(metric_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
  EXPECT_EQ(metric_key("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
}

TEST(Counter, IncAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  gauge.set(10.0);
  gauge.add(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 12.5);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.observe(0.5);                 // bucket 0 (<= 1.0)
  histogram.observe(1.0);                 // bucket 0: edge lands in the lower bucket
  histogram.observe(1.0000001);           // bucket 1
  histogram.observe(4.0);                 // bucket 2
  histogram.observe(100.0);               // overflow bucket
  EXPECT_EQ(histogram.bucket_size(), 4u);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.0000001 + 4.0 + 100.0, 1e-9);
  EXPECT_NEAR(histogram.mean(), histogram.sum() / 5.0, 1e-12);
}

TEST(Histogram, BoundHelpers) {
  EXPECT_EQ(linear_bounds(0.0, 4.0, 3), (std::vector<double>{0.0, 4.0, 8.0}));
  EXPECT_EQ(exponential_bounds(1.0, 2.0, 4), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

TEST(MetricsRegistry, FindOrCreateReturnsSameCell) {
  MetricsRegistry registry;
  Counter& a = registry.counter("c", {{"k", "v"}});
  Counter& b = registry.counter("c", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.counter("c", {{"k", "w"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("m");
  EXPECT_THROW(registry.gauge("m"), util::ConfigError);
  EXPECT_THROW(registry.histogram("m", {1.0}), util::ConfigError);
}

TEST(MetricsRegistry, ResetValuesKeepsHandlesValid) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& histogram = registry.histogram("h", {1.0, 2.0});
  counter.inc(7);
  gauge.set(3.0);
  histogram.observe(1.5);
  registry.reset_values();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.bucket_count(1), 0u);
  counter.inc();  // handle still live after reset
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(registry.size(), 3u);
}

// The registry backs instrumentation on concurrently running control
// loops (TCP transport threads, thread-pooled trials): totals must be
// exact, not approximate.
TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hot.counter");
  Gauge& gauge = registry.gauge("hot.gauge");
  // Bounds {0,1,...,7}: task i's observations land exactly in bucket i.
  Histogram& histogram = registry.histogram("hot.histogram", linear_bounds(0.0, 1.0, 8));

  constexpr std::size_t kTasks = 8;
  constexpr int kPerTask = 20000;
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (int i = 0; i < kPerTask; ++i) {
      counter.inc();
      gauge.add(1.0);
      histogram.observe(static_cast<double>(task));
    }
  });

  EXPECT_EQ(counter.value(), kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kTasks * kPerTask));
  EXPECT_EQ(histogram.count(), kTasks * kPerTask);
  for (std::size_t task = 0; task < kTasks; ++task) {
    EXPECT_EQ(histogram.bucket_count(task), static_cast<std::uint64_t>(kPerTask))
        << "bucket " << task;
  }
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  util::ThreadPool pool(4);
  pool.parallel_for(16, [&](std::size_t task) {
    // All tasks race to register the same handful of keys.
    registry.counter("shared.counter", {{"i", std::to_string(task % 4)}}).inc();
  });
  EXPECT_EQ(registry.size(), 4u);
  std::uint64_t total = 0;
  for (const MetricSnapshot& snap : registry.snapshot()) {
    total += static_cast<std::uint64_t>(snap.value);
  }
  EXPECT_EQ(total, 16u);
}

TEST(MetricsRegistry, SnapshotIsKeySorted) {
  MetricsRegistry registry;
  registry.counter("z.last");
  registry.gauge("a.first");
  registry.histogram("m.mid", {1.0});
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].key, "a.first");
  EXPECT_EQ(snaps[1].key, "m.mid");
  EXPECT_EQ(snaps[2].key, "z.last");
  EXPECT_EQ(snaps[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snaps[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(snaps[2].kind, MetricKind::kCounter);
}

TEST(MetricsRegistry, JsonAndCsvExports) {
  MetricsRegistry registry;
  registry.counter("c").inc(3);
  registry.gauge("g").set(1.5);
  Histogram& histogram = registry.histogram("h", {1.0, 2.0});
  histogram.observe(0.5);
  histogram.observe(1.5);

  const util::Json json = registry.to_json();
  const auto& obj = json.as_object();
  EXPECT_DOUBLE_EQ(obj.at("c").at("value").as_number(), 3.0);
  EXPECT_EQ(obj.at("c").at("type").as_string(), "counter");
  EXPECT_DOUBLE_EQ(obj.at("g").at("value").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(obj.at("h").at("value").as_number(), 2.0);  // histogram value = count
  EXPECT_DOUBLE_EQ(obj.at("h").at("sum").as_number(), 2.0);
  EXPECT_EQ(obj.at("h").at("buckets").as_array().size(), 3u);

  std::ostringstream csv;
  registry.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("metric,type,value,sum"), std::string::npos);
  EXPECT_NE(text.find("c,counter,3"), std::string::npos);
  EXPECT_NE(text.find("g,gauge,1.5"), std::string::npos);
  EXPECT_NE(text.find("h,histogram,2"), std::string::npos);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace anor::telemetry
