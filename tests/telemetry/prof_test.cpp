#include "telemetry/prof/prof.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/prof_export.hpp"
#include "util/json.hpp"

namespace anor::telemetry::prof {
namespace {

// The profiler is process-global; every test that enables it restores the
// disabled/empty state so later tests (and the rest of the binary) see a
// clean slate.
class ProfilerGuard {
 public:
  ProfilerGuard() {
    Profiler::global().reset();
    Profiler::global().set_enabled(true);
  }
  ~ProfilerGuard() {
    Profiler::global().set_enabled(false);
    Profiler::global().reset();
  }
};

TEST(LogHistogram, BucketBoundariesTileTheValueRange) {
  // Values below kSub land in identity buckets of width 1.
  for (std::uint64_t v = 0; v < LogHistogram::kSub; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_floor(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(LogHistogram::bucket_ceil(static_cast<std::uint32_t>(v)), v + 1);
  }
  // Every probed value falls inside its bucket's [floor, ceil) and the
  // bucket is at most 1/8 of the value wide (the 12.5% error contract).
  for (std::uint64_t v : std::vector<std::uint64_t>{8, 9, 15, 16, 17, 100, 255, 256, 1000,
                                                    4096, 123456789, 1ull << 40,
                                                    (1ull << 60) + 12345}) {
    const std::uint32_t index = LogHistogram::bucket_index(v);
    ASSERT_LT(index, LogHistogram::kBucketCount);
    const std::uint64_t lo = LogHistogram::bucket_floor(index);
    const std::uint64_t hi = LogHistogram::bucket_ceil(index);
    EXPECT_LE(lo, v) << v;
    EXPECT_LT(v, hi) << v;
    EXPECT_LE(hi - lo, std::max<std::uint64_t>(1, v / LogHistogram::kSub)) << v;
  }
  // Buckets tile without gaps: each bucket's ceil is the next one's floor.
  for (std::uint32_t i = 0; i + 1 < 200; ++i) {
    EXPECT_EQ(LogHistogram::bucket_ceil(i), LogHistogram::bucket_floor(i + 1));
  }
}

TEST(LogHistogram, QuantilesOnKnownUniformDistribution) {
  LogHistogram hist;
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v);
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_EQ(hist.sum(), 500500u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 1000u);
  // Bucketed quantiles return the holding bucket's midpoint: within the
  // 12.5% relative-error contract of the exact order statistic.
  EXPECT_NEAR(static_cast<double>(hist.quantile(0.50)), 500.0, 500.0 * 0.125 + 1);
  EXPECT_NEAR(static_cast<double>(hist.quantile(0.95)), 950.0, 950.0 * 0.125 + 1);
  EXPECT_NEAR(static_cast<double>(hist.quantile(0.99)), 990.0, 990.0 * 0.125 + 1);
  EXPECT_EQ(hist.quantile(0.0), 1u);
  EXPECT_LE(hist.quantile(1.0), 1000u);
  EXPECT_GE(hist.quantile(1.0), 875u);  // within one bucket of the max
}

TEST(LogHistogram, QuantileOfPointMassIsExactWithinBucket) {
  LogHistogram hist;
  for (int i = 0; i < 100; ++i) hist.record(42);
  for (double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(hist.quantile(q), 42u) << q;  // clamped to observed min == max
  }
  LogHistogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.min(), 0u);
}

TEST(LogHistogram, MergeMatchesRecordingEverythingInOne) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a.record(v * 3);
    all.record(v * 3);
  }
  for (std::uint64_t v = 1; v <= 300; ++v) {
    b.record(v * 7 + 1);
    all.record(v * 7 + 1);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (std::uint32_t i = 0; i < LogHistogram::kBucketCount; ++i) {
    ASSERT_EQ(a.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << q;
  }
  // Merging an empty histogram must not disturb min/max.
  LogHistogram empty;
  const std::uint64_t min_before = a.min();
  a.merge(empty);
  EXPECT_EQ(a.min(), min_before);
}

TEST(Profiler, DisabledScopesRecordNothing) {
  Profiler& profiler = Profiler::global();
  profiler.set_enabled(false);
  profiler.reset();
  const std::uint64_t before = profiler.total_spans();
  for (int i = 0; i < 100; ++i) {
    ANOR_PROF_SCOPE("prof_test.disabled");
  }
  EXPECT_EQ(profiler.total_spans(), before);
}

TEST(Profiler, MergesThreadLocalBuffersAcrossThreads) {
  ProfilerGuard guard;
  Profiler& profiler = Profiler::global();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Profiler::set_thread_name("prof-test-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        ANOR_PROF_SCOPE("prof_test.merge");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Collection after join is the quiescence contract: the merged report
  // must see every thread's spans.
  const std::vector<PhaseReport> report = profiler.phase_report();
  const auto it = std::find_if(report.begin(), report.end(), [](const PhaseReport& p) {
    return p.name == "prof_test.merge";
  });
  ASSERT_NE(it, report.end());
  EXPECT_EQ(it->count, static_cast<std::uint64_t>(kThreads * kSpansPerThread));
  EXPECT_GT(it->total_ns, 0.0);
  EXPECT_LE(it->min_ns, it->p50_ns);
  EXPECT_LE(it->p50_ns, it->p95_ns + 1e-9);
  EXPECT_LE(it->p95_ns, it->p99_ns + 1e-9);
  EXPECT_LE(it->p99_ns, it->max_ns + 1e-9);
  // The report is name-sorted for deterministic output.
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_LT(report[i - 1].name, report[i].name);
  }
}

TEST(Profiler, NestedScopesCarryDepth) {
  ProfilerGuard guard;
  Profiler& profiler = Profiler::global();
  {
    ANOR_PROF_SCOPE("prof_test.outer");
    ANOR_PROF_SCOPE("prof_test.inner");
  }
  const std::vector<LaneSnapshot> lanes = profiler.lanes();
  ASSERT_FALSE(lanes.empty());
  std::map<std::string, std::uint16_t> depth_by_phase;
  const std::vector<std::string> names = profiler.phase_names();
  for (const LaneSnapshot& lane : lanes) {
    for (const SpanEvent& event : lane.events) {
      depth_by_phase[names[event.phase]] = event.depth;
    }
  }
  EXPECT_EQ(depth_by_phase.at("prof_test.outer"), 0);
  EXPECT_EQ(depth_by_phase.at("prof_test.inner"), 1);
}

TEST(Profiler, RingDropsOldestAndCounts) {
  ProfilerGuard guard;
  Profiler& profiler = Profiler::global();
  profiler.set_trace_capacity(8);
  for (int i = 0; i < 20; ++i) {
    ANOR_PROF_SCOPE("prof_test.ring");
  }
  const std::vector<LaneSnapshot> lanes = profiler.lanes();
  ASSERT_FALSE(lanes.empty());
  std::uint64_t retained = 0;
  for (const LaneSnapshot& lane : lanes) retained += lane.events.size();
  EXPECT_LE(retained, 8u);
  EXPECT_EQ(profiler.total_spans(), 20u);
  EXPECT_EQ(profiler.dropped_spans(), 20u - retained);
  profiler.set_trace_capacity(1 << 16);
}

TEST(ProfExport, ChromeTraceRoundTripsWithMonotonicLanes) {
  ProfilerGuard guard;
  Profiler& profiler = Profiler::global();
  Profiler::set_thread_name("main");
  for (int i = 0; i < 10; ++i) {
    ANOR_PROF_SCOPE("prof_test.main_phase");
  }
  std::thread worker([] {
    Profiler::set_thread_name("prof-test-worker");
    for (int i = 0; i < 10; ++i) {
      ANOR_PROF_SCOPE("prof_test.worker_phase");
    }
  });
  worker.join();

  std::ostringstream out;
  write_prof_chrome_trace(out, profiler);
  const util::Json trace = util::Json::parse(out.str());
  const auto& events = trace.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 0u);

  std::set<std::int64_t> lanes_with_events;
  std::set<std::string> thread_names;
  std::map<std::int64_t, double> last_ts;
  for (const util::Json& event : events) {
    const std::string ph = event.at("ph").as_string();
    const auto tid = static_cast<std::int64_t>(event.at("tid").as_number());
    if (ph == "M") {
      EXPECT_EQ(event.at("name").as_string(), "thread_name");
      thread_names.insert(event.at("args").at("name").as_string());
      continue;
    }
    ASSERT_EQ(ph, "X");
    const double ts = event.at("ts").as_number();
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second - 1e-9) << "timestamps regress in lane " << tid;
    }
    last_ts[tid] = ts;
    lanes_with_events.insert(tid);
  }
  EXPECT_GE(lanes_with_events.size(), 2u);  // main + worker
  EXPECT_TRUE(thread_names.count("main") == 1);
  EXPECT_TRUE(thread_names.count("prof-test-worker") == 1);
}

TEST(ProfExport, PrometheusExpositionIsSortedAndStable) {
  MetricsRegistry registry;
  // Insert in non-alphabetical order; exposition must sort families.
  registry.counter("zulu.count").inc(3);
  registry.gauge("alpha.gauge").set(1.5);
  registry.histogram("mid.hist", linear_bounds(0.0, 10.0, 3)).observe(15.0);

  const std::string text = prometheus_exposition(registry);
  const std::string again = prometheus_exposition(registry);
  EXPECT_EQ(text, again);

  const std::size_t alpha = text.find("alpha_gauge");
  const std::size_t mid = text.find("mid_hist");
  const std::size_t zulu = text.find("zulu_count");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zulu, std::string::npos);
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zulu);
  // Histogram exposition carries cumulative buckets and the +Inf bound.
  EXPECT_NE(text.find("mid_hist_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("mid_hist_count 1"), std::string::npos);
}

TEST(ProfExport, PhaseSummariesRideTheExposition) {
  ProfilerGuard guard;
  {
    ANOR_PROF_SCOPE("prof_test.expo_phase");
  }
  MetricsRegistry registry;
  const std::string text = prometheus_exposition(registry, Profiler::global());
  EXPECT_NE(text.find("anor_prof_span_ns{phase=\"prof_test.expo_phase\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anor_prof_span_ns_count{phase=\"prof_test.expo_phase\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace anor::telemetry::prof
