// Acceptance test for the telemetry tentpole: a closed-loop experiment
// must leave behind a loadable Chrome trace and a CSV/JSON time series
// carrying the control-plane's vital signs — per-package power-limit
// writes, achieved cluster power, per-job epoch counts and budgets, and
// transport message counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace anor::core {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Experiment small_experiment(const std::string& artifact_dir) {
  Experiment experiment;
  experiment.base.node.package.response_tau_s = 0.0;
  experiment.base.step_s = 0.25;
  experiment.base.controller.kernel.time_noise_sigma = 0.0;
  experiment.base.controller.kernel.power_noise_sigma_w = 0.0;
  experiment.base.scheduler.power_aware_admission = false;
  experiment.base.manager.control_period_s = 0.5;
  experiment.base.endpoint.period_s = 0.5;
  experiment.node_count = 4;

  workload::JobRequest bt;
  bt.job_id = 0;
  bt.type_name = "bt.D.x";
  bt.submit_time_s = 0.0;
  bt.nodes = 2;
  workload::JobRequest sp;
  sp.job_id = 1;
  sp.type_name = "sp.D.x";
  sp.submit_time_s = 0.0;
  sp.nodes = 2;
  experiment.schedule.jobs = {bt, sp};
  experiment.schedule.duration_s = 1.0;

  experiment.static_budget_w = 4 * 0.75 * 280.0;
  experiment.artifact_dir = artifact_dir;
  experiment.artifact_cadence_s = 1.0;
  return experiment;
}

double metric_value(const util::Json& metrics, const std::string& key) {
  return metrics.at(key).at("value").as_number();
}

/// Largest value among metrics whose key starts with `prefix`; -1 if none.
double max_value_with_prefix(const util::Json& metrics, const std::string& prefix) {
  double best = -1.0;
  for (const auto& [key, value] : metrics.as_object()) {
    if (key.rfind(prefix, 0) == 0) best = std::max(best, value.at("value").as_number());
  }
  return best;
}

TEST(ArtifactIntegration, ClosedLoopRunProducesParsableArtifacts) {
  const std::string dir =
      std::string(::testing::TempDir()) + "anor_artifact_test/closed_loop";
  fs::remove_all(dir);

  // The global registry is shared with every other test in this binary:
  // start from zeroed values so the assertions see this run only.
  telemetry::MetricsRegistry::global().reset_values();
  telemetry::TraceRecorder::global().clear();

  const auto result = run_experiment(small_experiment(dir));
  ASSERT_EQ(result.completed.size(), 2u);

  // --- metrics.json: final registry snapshot with the run's vitals ---
  const util::Json metrics = util::Json::parse(slurp(dir + "/metrics.json"));
  EXPECT_GT(metric_value(metrics, "node.rapl.limit_writes"), 0.0);
  EXPECT_GT(metric_value(metrics, "cluster.power_w"), 0.0);
  EXPECT_GT(metric_value(metrics, "cluster.transport.inproc.sent"), 0.0);
  EXPECT_GT(metric_value(metrics, "cluster.transport.inproc.received"), 0.0);
  EXPECT_GT(metric_value(metrics, "cluster.manager.budget_msgs_sent"), 0.0);
  EXPECT_GT(metric_value(metrics, "cluster.budget.distributions"), 0.0);
  EXPECT_GT(max_value_with_prefix(metrics, "job.epoch_count{"), 0.0);
  EXPECT_GT(max_value_with_prefix(metrics, "cluster.manager.job_cap_w{"), 0.0);

  // --- metrics.csv: long-format time series sampled on the log cadence ---
  std::istringstream csv(slurp(dir + "/metrics.csv"));
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line, "t_s,metric,type,value");
  std::set<std::string> sample_times;
  bool power_series = false;
  bool limit_write_series = false;
  while (std::getline(csv, line)) {
    const std::size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos) << line;
    sample_times.insert(line.substr(0, comma));
    if (line.find(",cluster.power_w,gauge,") != std::string::npos) power_series = true;
    if (line.find(",node.rapl.limit_writes,counter,") != std::string::npos) {
      limit_write_series = true;
    }
  }
  EXPECT_GE(sample_times.size(), 2u) << "expected multiple sampling ticks";
  EXPECT_TRUE(power_series);
  EXPECT_TRUE(limit_write_series);

  // --- trace.json: loadable Chrome trace with job spans and series ---
  const util::Json trace = util::Json::parse(slurp(dir + "/trace.json"));
  const auto& events = trace.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  bool job_span = false;
  bool power_counter = false;
  bool cap_change = false;
  for (const auto& event : events) {
    const std::string ph = event.at("ph").as_string();
    if (ph == "X" && event.at("cat").as_string() == "job") job_span = true;
    if (ph == "C" && event.at("name").as_string() == "cluster.power_w") power_counter = true;
    if (ph == "i" && event.at("name").as_string().rfind("cap_change", 0) == 0) cap_change = true;
  }
  EXPECT_TRUE(job_span) << "no completed job span in trace";
  EXPECT_TRUE(power_counter) << "no cluster.power_w counter series in trace";
  EXPECT_TRUE(cap_change) << "no cap_change instants in trace";

  // --- manifest ties it together ---
  const util::Json manifest = util::Json::parse(slurp(dir + "/manifest.json"));
  EXPECT_EQ(manifest.at("run").as_string(), "experiment");
  EXPECT_GT(manifest.at("trace_events").as_number(), 0.0);
}

}  // namespace
}  // namespace anor::core
