#include "platform/node.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace anor::platform {
namespace {

/// Constant-demand load that tracks how much time it received.
class FakeLoad final : public ComputeLoad {
 public:
  explicit FakeLoad(double demand_w, double work_s = 100.0)
      : demand_w_(demand_w), remaining_s_(work_s) {}

  double power_demand_w(double cap_w) const override { return std::min(demand_w_, cap_w); }
  void advance(double dt_s, double cap_w) override {
    last_cap_w = cap_w;
    received_s += dt_s;
    remaining_s_ -= dt_s;
  }
  bool complete() const override { return remaining_s_ <= 0.0; }
  double progress() const override { return 1.0 - remaining_s_ / 100.0; }

  double last_cap_w = 0.0;
  double received_s = 0.0;

 private:
  double demand_w_;
  double remaining_s_;
};

TEST(Node, DualPackageCapRange) {
  Node node(0);
  EXPECT_EQ(node.package_count(), 2);
  EXPECT_DOUBLE_EQ(node.min_cap_w(), 140.0);
  EXPECT_DOUBLE_EQ(node.max_cap_w(), 280.0);
  EXPECT_DOUBLE_EQ(node.tdp_w(), 280.0);
}

TEST(Node, RejectsZeroPackages) {
  NodeConfig config;
  config.package_count = 0;
  EXPECT_THROW(Node(0, config), std::invalid_argument);
}

TEST(Node, CapSplitsEvenlyAcrossPackages) {
  Node node(0);
  node.set_power_cap(200.0);
  EXPECT_DOUBLE_EQ(node.package(0).effective_cap_w(), 100.0);
  EXPECT_DOUBLE_EQ(node.package(1).effective_cap_w(), 100.0);
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 200.0);
}

TEST(Node, CapClampsAtNodeLevel) {
  Node node(0);
  node.set_power_cap(50.0);
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 140.0);
  node.set_power_cap(1000.0);
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 280.0);
}

TEST(Node, LoadReceivesEffectiveCap) {
  Node node(0);
  auto load = std::make_shared<FakeLoad>(250.0);
  node.attach_load(load);
  node.set_power_cap(180.0);
  node.step(1.0);
  EXPECT_DOUBLE_EQ(load->last_cap_w, 180.0);
}

TEST(Node, PerfMultiplierSlowsLoadTime) {
  NodeConfig config;
  config.perf_multiplier = 2.0;  // node is 2x slower
  Node node(0, config);
  auto load = std::make_shared<FakeLoad>(250.0);
  node.attach_load(load);
  node.step(1.0);
  EXPECT_DOUBLE_EQ(load->received_s, 0.5);
}

TEST(Node, PowerTracksLoadDemandUnderCap) {
  NodeConfig config;
  config.package.response_tau_s = 0.0;
  Node node(0, config);
  auto load = std::make_shared<FakeLoad>(240.0);
  node.attach_load(load);
  node.set_power_cap(280.0);
  node.step(1.0);
  EXPECT_NEAR(node.power_w(), 240.0, 1.0);
}

TEST(Node, IdleNodePowerIsPackageIdle) {
  NodeConfig config;
  config.package.response_tau_s = 0.0;
  Node node(0, config);
  node.step(1.0);
  EXPECT_NEAR(node.power_w(), 2 * config.package.idle_power_w, 1e-9);
}

TEST(Node, DetachStopsLoadProgress) {
  Node node(0);
  auto load = std::make_shared<FakeLoad>(240.0);
  node.attach_load(load);
  EXPECT_TRUE(node.busy());
  node.step(1.0);
  node.detach_load();
  EXPECT_FALSE(node.busy());
  const double before = load->received_s;
  node.step(1.0);
  EXPECT_DOUBLE_EQ(load->received_s, before);
}

TEST(Node, EnergyAccumulates) {
  NodeConfig config;
  config.package.response_tau_s = 0.0;
  Node node(0, config);
  auto load = std::make_shared<FakeLoad>(280.0);
  node.attach_load(load);
  node.set_power_cap(280.0);
  for (int i = 0; i < 10; ++i) node.step(1.0);
  EXPECT_NEAR(node.total_energy_j(), 2800.0, 5.0);
}

}  // namespace
}  // namespace anor::platform
