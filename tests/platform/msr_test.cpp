#include "platform/msr.hpp"

#include <gtest/gtest.h>

namespace anor::platform {
namespace {

TEST(RaplUnits, DefaultsMatchCommonSilicon) {
  RaplUnits units;
  EXPECT_DOUBLE_EQ(units.power_unit_w(), 0.125);
  EXPECT_NEAR(units.energy_unit_j(), 6.1035e-5, 1e-8);
  EXPECT_NEAR(units.time_unit_s(), 9.7656e-4, 1e-7);
}

TEST(RaplUnits, EncodeDecodeRoundTrip) {
  RaplUnits units;
  units.power_unit_bits = 2;
  units.energy_unit_bits = 16;
  units.time_unit_bits = 8;
  const RaplUnits decoded = RaplUnits::decode(units.encode());
  EXPECT_EQ(decoded.power_unit_bits, 2u);
  EXPECT_EQ(decoded.energy_unit_bits, 16u);
  EXPECT_EQ(decoded.time_unit_bits, 8u);
}

TEST(PkgPowerLimit, RoundTripQuantizesToUnits) {
  const RaplUnits units;
  PkgPowerLimit limit;
  limit.power_limit_w = 112.4;  // not a multiple of 1/8 W
  limit.enabled = true;
  limit.clamp = false;
  const PkgPowerLimit decoded = PkgPowerLimit::decode(limit.encode(units), units);
  EXPECT_NEAR(decoded.power_limit_w, 112.375, 1e-9);  // quantized
  EXPECT_TRUE(decoded.enabled);
  EXPECT_FALSE(decoded.clamp);
}

TEST(PkgPowerLimit, DisabledBitSurvives) {
  const RaplUnits units;
  PkgPowerLimit limit;
  limit.power_limit_w = 100.0;
  limit.enabled = false;
  const PkgPowerLimit decoded = PkgPowerLimit::decode(limit.encode(units), units);
  EXPECT_FALSE(decoded.enabled);
}

TEST(PkgPowerLimit, NegativeClampsToZero) {
  const RaplUnits units;
  PkgPowerLimit limit;
  limit.power_limit_w = -5.0;
  const PkgPowerLimit decoded = PkgPowerLimit::decode(limit.encode(units), units);
  EXPECT_DOUBLE_EQ(decoded.power_limit_w, 0.0);
}

TEST(PkgPowerInfo, RoundTrip) {
  const RaplUnits units;
  const PkgPowerInfo info{140.0, 70.0, 140.0};
  const PkgPowerInfo decoded = PkgPowerInfo::decode(info.encode(units), units);
  EXPECT_DOUBLE_EQ(decoded.tdp_w, 140.0);
  EXPECT_DOUBLE_EQ(decoded.min_power_w, 70.0);
  EXPECT_DOUBLE_EQ(decoded.max_power_w, 140.0);
}

TEST(MsrFile, DefaultAllowlistMatchesMsrSafeUsage) {
  MsrFile msr;
  EXPECT_TRUE(msr.read_allowed(kMsrPkgEnergyStatus));
  EXPECT_TRUE(msr.read_allowed(kMsrPkgPowerLimit));
  EXPECT_TRUE(msr.read_allowed(kMsrRaplPowerUnit));
  EXPECT_TRUE(msr.read_allowed(kMsrPkgPowerInfo));
  EXPECT_TRUE(msr.write_allowed(kMsrPkgPowerLimit));
  EXPECT_FALSE(msr.write_allowed(kMsrPkgEnergyStatus));
  EXPECT_FALSE(msr.write_allowed(kMsrRaplPowerUnit));
}

TEST(MsrFile, GatedWriteToReadOnlyRegisterThrows) {
  MsrFile msr;
  EXPECT_THROW(msr.write(kMsrPkgEnergyStatus, 1), util::MsrAccessError);
  EXPECT_NO_THROW(msr.write(kMsrPkgPowerLimit, 0x1234));
  EXPECT_EQ(msr.read(kMsrPkgPowerLimit), 0x1234u);
}

TEST(MsrFile, DenyAllBlocksEverything) {
  MsrFile msr;
  msr.deny_all();
  EXPECT_THROW(msr.read(kMsrPkgEnergyStatus), util::MsrAccessError);
  EXPECT_THROW(msr.write(kMsrPkgPowerLimit, 0), util::MsrAccessError);
  // Hardware still works underneath.
  EXPECT_NO_THROW(msr.raw_write(kMsrPkgEnergyStatus, 99));
  EXPECT_EQ(msr.raw_read(kMsrPkgEnergyStatus), 99u);
}

TEST(MsrFile, ReAllowRestoresAccess) {
  MsrFile msr;
  msr.deny_all();
  msr.allow_read(kMsrPkgEnergyStatus);
  EXPECT_NO_THROW(msr.read(kMsrPkgEnergyStatus));
  EXPECT_THROW(msr.write(kMsrPkgPowerLimit, 0), util::MsrAccessError);
  msr.allow_write(kMsrPkgPowerLimit);
  EXPECT_NO_THROW(msr.write(kMsrPkgPowerLimit, 0));
}

TEST(MsrFile, UnknownRegisterThrows) {
  MsrFile msr;
  msr.allow_read(0xDEAD);
  EXPECT_THROW(msr.read(0xDEAD), util::MsrAccessError);
  EXPECT_THROW(msr.raw_read(0xBEEF), util::MsrAccessError);
}

}  // namespace
}  // namespace anor::platform
