#include "platform/cluster_hw.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "platform/compute_load.hpp"
#include "util/stats.hpp"

namespace anor::platform {
namespace {

TEST(ClusterHw, BuildsRequestedNodeCount) {
  ClusterHwConfig config;
  config.node_count = 16;
  ClusterHw hw(config, util::Rng(1));
  EXPECT_EQ(hw.node_count(), 16);
  EXPECT_DOUBLE_EQ(hw.min_cap_w(), 16 * 140.0);
  EXPECT_DOUBLE_EQ(hw.max_cap_w(), 16 * 280.0);
}

TEST(ClusterHw, NoVariationMeansUnitMultipliers) {
  ClusterHwConfig config;
  config.node_count = 8;
  config.perf_variation_sigma = 0.0;
  ClusterHw hw(config, util::Rng(1));
  for (int n = 0; n < hw.node_count(); ++n) {
    EXPECT_DOUBLE_EQ(hw.node(n).perf_multiplier(), 1.0);
  }
}

TEST(ClusterHw, VariationDrawsDistinctBoundedMultipliers) {
  ClusterHwConfig config;
  config.node_count = 200;
  config.perf_variation_sigma = 0.1;
  ClusterHw hw(config, util::Rng(7));
  util::RunningStats stats;
  for (int n = 0; n < hw.node_count(); ++n) {
    const double m = hw.node(n).perf_multiplier();
    EXPECT_GE(m, 0.5);
    EXPECT_LE(m, 1.5);
    stats.add(m);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 0.1, 0.03);
}

TEST(ClusterHw, VariationIsSeedDeterministic) {
  ClusterHwConfig config;
  config.node_count = 10;
  config.perf_variation_sigma = 0.15;
  ClusterHw a(config, util::Rng(3));
  ClusterHw b(config, util::Rng(3));
  for (int n = 0; n < 10; ++n) {
    EXPECT_DOUBLE_EQ(a.node(n).perf_multiplier(), b.node(n).perf_multiplier());
  }
}

TEST(ClusterHw, TotalPowerSumsNodes) {
  ClusterHwConfig config;
  config.node_count = 4;
  config.node.package.response_tau_s = 0.0;
  ClusterHw hw(config, util::Rng(1));
  hw.step(1.0);
  EXPECT_NEAR(hw.total_power_w(), 4 * 2 * config.node.package.idle_power_w, 1e-6);
}

TEST(ClusterHw, IdleNodesListsUnloaded) {
  ClusterHwConfig config;
  config.node_count = 3;
  ClusterHw hw(config, util::Rng(1));
  EXPECT_EQ(hw.idle_nodes().size(), 3u);
}

// Deterministic stand-in for a job share: draws a fixed fraction of the
// cap and accumulates cap-proportional progress.
class RampLoad : public ComputeLoad {
 public:
  explicit RampLoad(double demand_frac) : demand_frac_(demand_frac) {}
  double power_demand_w(double cap_w) const override { return cap_w * demand_frac_; }
  void advance(double dt_s, double cap_w) override { progress_ += dt_s * cap_w * 1e-5; }
  bool complete() const override { return progress_ >= 1.0; }
  double progress() const override { return std::min(progress_, 1.0); }

 private:
  double demand_frac_;
  double progress_ = 0.0;
};

TEST(ClusterHw, ShardedStepMatchesSerialBitForBit) {
  // 150 nodes -> three 64-node shards (the last partial).  Nodes carry
  // distinct caps, loads, and perf multipliers; after several steps every
  // per-node observable must equal the serial sweep exactly — sharding
  // only partitions the loop, it cannot change what any node computes.
  const auto build = [](int workers) {
    ClusterHwConfig config;
    config.node_count = 150;
    config.perf_variation_sigma = 0.1;
    config.step_workers = workers;
    auto hw = std::make_unique<ClusterHw>(config, util::Rng(11));
    for (int n = 0; n < hw->node_count(); ++n) {
      hw->node(n).attach_load(std::make_shared<RampLoad>(0.5 + 0.003 * n));
      hw->node(n).set_power_cap(160.0 + (n % 7) * 15.0);
    }
    return hw;
  };
  auto serial = build(0);
  auto sharded = build(4);
  for (int step = 0; step < 5; ++step) {
    serial->step(1.0);
    sharded->step(1.0);
  }
  for (int n = 0; n < serial->node_count(); ++n) {
    EXPECT_EQ(serial->node(n).power_w(), sharded->node(n).power_w()) << "node " << n;
    EXPECT_EQ(serial->node(n).total_energy_j(), sharded->node(n).total_energy_j());
    EXPECT_EQ(serial->node(n).load()->progress(), sharded->node(n).load()->progress());
  }
  EXPECT_EQ(serial->total_power_w(), sharded->total_power_w());
}

TEST(SigmaFromBand99, InvertsTheQuantile) {
  EXPECT_DOUBLE_EQ(sigma_from_band99(0.0), 0.0);
  EXPECT_NEAR(sigma_from_band99(0.15), 0.15 / 2.5758293035489004, 1e-12);
  // 99 % of N(0, sigma) lies within 2.576 sigma: inverse relationship.
  EXPECT_NEAR(sigma_from_band99(0.30) * 2.5758293035489004, 0.30, 1e-12);
}

}  // namespace
}  // namespace anor::platform
