#include "platform/cluster_hw.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace anor::platform {
namespace {

TEST(ClusterHw, BuildsRequestedNodeCount) {
  ClusterHwConfig config;
  config.node_count = 16;
  ClusterHw hw(config, util::Rng(1));
  EXPECT_EQ(hw.node_count(), 16);
  EXPECT_DOUBLE_EQ(hw.min_cap_w(), 16 * 140.0);
  EXPECT_DOUBLE_EQ(hw.max_cap_w(), 16 * 280.0);
}

TEST(ClusterHw, NoVariationMeansUnitMultipliers) {
  ClusterHwConfig config;
  config.node_count = 8;
  config.perf_variation_sigma = 0.0;
  ClusterHw hw(config, util::Rng(1));
  for (int n = 0; n < hw.node_count(); ++n) {
    EXPECT_DOUBLE_EQ(hw.node(n).perf_multiplier(), 1.0);
  }
}

TEST(ClusterHw, VariationDrawsDistinctBoundedMultipliers) {
  ClusterHwConfig config;
  config.node_count = 200;
  config.perf_variation_sigma = 0.1;
  ClusterHw hw(config, util::Rng(7));
  util::RunningStats stats;
  for (int n = 0; n < hw.node_count(); ++n) {
    const double m = hw.node(n).perf_multiplier();
    EXPECT_GE(m, 0.5);
    EXPECT_LE(m, 1.5);
    stats.add(m);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 0.1, 0.03);
}

TEST(ClusterHw, VariationIsSeedDeterministic) {
  ClusterHwConfig config;
  config.node_count = 10;
  config.perf_variation_sigma = 0.15;
  ClusterHw a(config, util::Rng(3));
  ClusterHw b(config, util::Rng(3));
  for (int n = 0; n < 10; ++n) {
    EXPECT_DOUBLE_EQ(a.node(n).perf_multiplier(), b.node(n).perf_multiplier());
  }
}

TEST(ClusterHw, TotalPowerSumsNodes) {
  ClusterHwConfig config;
  config.node_count = 4;
  config.node.package.response_tau_s = 0.0;
  ClusterHw hw(config, util::Rng(1));
  hw.step(1.0);
  EXPECT_NEAR(hw.total_power_w(), 4 * 2 * config.node.package.idle_power_w, 1e-6);
}

TEST(ClusterHw, IdleNodesListsUnloaded) {
  ClusterHwConfig config;
  config.node_count = 3;
  ClusterHw hw(config, util::Rng(1));
  EXPECT_EQ(hw.idle_nodes().size(), 3u);
}

TEST(SigmaFromBand99, InvertsTheQuantile) {
  EXPECT_DOUBLE_EQ(sigma_from_band99(0.0), 0.0);
  EXPECT_NEAR(sigma_from_band99(0.15), 0.15 / 2.5758293035489004, 1e-12);
  // 99 % of N(0, sigma) lies within 2.576 sigma: inverse relationship.
  EXPECT_NEAR(sigma_from_band99(0.30) * 2.5758293035489004, 0.30, 1e-12);
}

}  // namespace
}  // namespace anor::platform
