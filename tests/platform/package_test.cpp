#include "platform/package.hpp"

#include <gtest/gtest.h>

namespace anor::platform {
namespace {

TEST(CpuPackage, PowersUpAtTdpLimit) {
  CpuPackage pkg;
  EXPECT_DOUBLE_EQ(pkg.effective_cap_w(), 140.0);
  EXPECT_DOUBLE_EQ(pkg.power_w(), pkg.config().idle_power_w);
}

TEST(CpuPackage, PowerInfoRegisterReflectsConfig) {
  CpuPackage pkg;
  const auto raw = pkg.msr().read(kMsrPkgPowerInfo);
  const PkgPowerInfo info = PkgPowerInfo::decode(raw, pkg.units());
  EXPECT_DOUBLE_EQ(info.tdp_w, 140.0);
  EXPECT_DOUBLE_EQ(info.min_power_w, 70.0);
  EXPECT_DOUBLE_EQ(info.max_power_w, 140.0);
}

TEST(CpuPackage, CapClampsToHardwareRange) {
  CpuPackage pkg;
  const PkgPowerLimit low{30.0, 1.0, true, true};
  pkg.msr().write(kMsrPkgPowerLimit, low.encode(pkg.units()));
  EXPECT_DOUBLE_EQ(pkg.effective_cap_w(), 70.0);  // clamped up to min cap

  const PkgPowerLimit high{500.0, 1.0, true, true};
  pkg.msr().write(kMsrPkgPowerLimit, high.encode(pkg.units()));
  EXPECT_DOUBLE_EQ(pkg.effective_cap_w(), 140.0);  // clamped down
}

TEST(CpuPackage, DisabledLimitMeansMaxCap) {
  CpuPackage pkg;
  const PkgPowerLimit limit{80.0, 1.0, /*enabled=*/false, true};
  pkg.msr().write(kMsrPkgPowerLimit, limit.encode(pkg.units()));
  EXPECT_DOUBLE_EQ(pkg.effective_cap_w(), 140.0);
}

TEST(CpuPackage, PowerSettlesTowardCappedDemand) {
  PackageConfig config;
  config.response_tau_s = 0.2;
  CpuPackage pkg(config);
  const PkgPowerLimit limit{100.0, 1.0, true, true};
  pkg.msr().write(kMsrPkgPowerLimit, limit.encode(pkg.units()));
  // Demand exceeds the cap; after several time constants power ~= cap.
  for (int i = 0; i < 100; ++i) pkg.step(0.1, 140.0);
  EXPECT_NEAR(pkg.power_w(), 100.0, 0.5);
}

TEST(CpuPackage, PowerNeverBelowIdle) {
  CpuPackage pkg;
  for (int i = 0; i < 100; ++i) pkg.step(0.1, 0.0);
  EXPECT_GE(pkg.power_w(), pkg.config().idle_power_w - 1e-9);
}

TEST(CpuPackage, InstantResponseWithZeroTau) {
  PackageConfig config;
  config.response_tau_s = 0.0;
  CpuPackage pkg(config);
  pkg.step(0.1, 120.0);
  EXPECT_DOUBLE_EQ(pkg.power_w(), 120.0);
}

TEST(CpuPackage, EnergyCounterAccumulatesAtPower) {
  PackageConfig config;
  config.response_tau_s = 0.0;
  CpuPackage pkg(config);
  const std::uint64_t before = pkg.msr().read(kMsrPkgEnergyStatus);
  for (int i = 0; i < 10; ++i) pkg.step(1.0, 100.0);
  const std::uint64_t after = pkg.msr().read(kMsrPkgEnergyStatus);
  const double joules = static_cast<double>(after - before) * pkg.units().energy_unit_j();
  EXPECT_NEAR(joules, 1000.0, 1.0);  // 100 W x 10 s
  EXPECT_NEAR(pkg.total_energy_j(), 1000.0, 1.0);
}

TEST(CpuPackage, EnergyCounterWrapsAt32Bits) {
  PackageConfig config;
  config.response_tau_s = 0.0;
  CpuPackage pkg(config);
  // Pre-position the counter near the wrap point.
  pkg.msr().raw_write(kMsrPkgEnergyStatus, 0xFFFFFF00ULL);
  pkg.step(10.0, 140.0);  // adds far more than 0x100 ticks
  const std::uint64_t raw = pkg.msr().read(kMsrPkgEnergyStatus);
  EXPECT_LE(raw, 0xFFFFFFFFULL);
  // Wrapped: the counter is now far below the starting point.
  EXPECT_LT(raw, 0xFFFFFF00ULL);
}

TEST(CpuPackage, SubUnitEnergyRemainderIsNotLost) {
  PackageConfig config;
  config.response_tau_s = 0.0;
  config.idle_power_w = 1.0;
  CpuPackage pkg(config);
  // Tiny steps at low power: each step adds a fraction of many units;
  // after many steps the total must match the integral.
  for (int i = 0; i < 10000; ++i) pkg.step(1e-4, 1.0);
  EXPECT_NEAR(pkg.total_energy_j(), 1.0, 1e-6);
  const double counted =
      static_cast<double>(pkg.msr().read(kMsrPkgEnergyStatus)) * pkg.units().energy_unit_j();
  EXPECT_NEAR(counted, 1.0, 1e-3);
}

TEST(CpuPackage, ZeroOrNegativeDtIsNoOp) {
  CpuPackage pkg;
  const double before = pkg.total_energy_j();
  pkg.step(0.0, 100.0);
  pkg.step(-1.0, 100.0);
  EXPECT_DOUBLE_EQ(pkg.total_energy_j(), before);
}

}  // namespace
}  // namespace anor::platform
