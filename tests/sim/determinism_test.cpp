// Golden determinism regression for the optimized simulator hot path.
//
// The SoA caches, incremental aggregates, and sharded stepping are only
// admissible because they reproduce the reference trace bit-for-bit; these
// tests pin a seeded 1000-node run to a recorded hash and assert the hash
// is invariant under worker count and telemetry instrumentation.  The
// parallel-trials test doubles as the TSan target for the shared metrics
// registry (see tools/check_tier1.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <vector>

#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"
#include "workload/schedule.hpp"

namespace anor::sim {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t trace_hash(const SimResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(r.power_w.values().data(), r.power_w.size() * sizeof(double), h);
  for (const auto& q : r.qos.records()) {
    h = fnv1a(&q.job_id, sizeof(q.job_id), h);
    h = fnv1a(&q.submit_s, sizeof(q.submit_s), h);
    h = fnv1a(&q.start_s, sizeof(q.start_s), h);
    h = fnv1a(&q.end_s, sizeof(q.end_s), h);
  }
  return h;
}

std::uint64_t run_seeded(int nodes, double duration_s, int step_workers, bool telemetry,
                         int step_shard_nodes = 256) {
  SimConfig config;
  config.node_count = nodes;
  config.duration_s = duration_s;
  config.job_types = standard_sim_types(true, std::max(1, nodes / 40));
  config.bid.average_power_w = nodes * 150.0;
  config.bid.reserve_w = nodes * 18.0;
  config.telemetry_enabled = telemetry;
  config.step_workers = step_workers;
  config.step_shard_nodes = step_shard_nodes;

  util::Rng rng(42);
  std::vector<workload::JobType> gen_types;
  for (const SimJobType& t : config.job_types) {
    workload::JobType gt;
    gt.name = t.name;
    gt.nodes = t.nodes;
    gt.base_epoch_s = t.time_at_pmax_s / 100.0;
    gt.epochs = 100;
    gen_types.push_back(std::move(gt));
  }
  workload::PoissonScheduleConfig sched_config;
  sched_config.duration_s = config.duration_s;
  sched_config.utilization = 0.75;
  sched_config.cluster_nodes = config.node_count;
  const workload::Schedule schedule =
      workload::generate_poisson_schedule(gen_types, sched_config, rng.child("schedule"));

  TabularSimulator simulator(config, schedule, rng.child("sim"));
  return trace_hash(simulator.run());
}

// Recorded from the seed run (power trace + QoS records, FNV-1a).  Any
// change to this value means the simulator's numerics changed — an
// optimization that moves it is a bug, not a tolerance issue.
constexpr std::uint64_t kGolden1000Node600s = 0xb3a442b79219c7d9ULL;

TEST(SimDeterminism, GoldenTraceHash1000Nodes) {
  EXPECT_EQ(run_seeded(1000, 600.0, 0, false), kGolden1000Node600s);
}

TEST(SimDeterminism, WorkerCountCannotChangeTheTrace) {
  for (int workers : {1, 2, 4, 8}) {
    EXPECT_EQ(run_seeded(1000, 600.0, workers, false), kGolden1000Node600s)
        << "step_workers=" << workers;
  }
}

TEST(SimDeterminism, TelemetryCannotChangeTheTrace) {
  EXPECT_EQ(run_seeded(1000, 600.0, 0, true), kGolden1000Node600s);
  EXPECT_EQ(run_seeded(1000, 600.0, 4, true), kGolden1000Node600s);
}

TEST(SimDeterminism, WorkerAndShardSizeMatrixAtOddNodeCount) {
  // 777 nodes: odd, non-power-of-two, not a multiple of any shard size
  // below — ragged final shards and ragged lane slices everywhere.  The
  // trace must be invariant across the full (workers x shard size) matrix,
  // including shard size 0 (auto-sized from nodes and workers, so the
  // shard boundaries themselves differ per column) and a shard size larger
  // than the node count (one shard, all workers but one idle).
  const std::uint64_t reference = run_seeded(777, 300.0, 0, false, 256);
  ASSERT_NE(reference, 0u);
  for (int workers : {0, 2, 4, 8}) {
    for (int shard : {0, 64, 257, 1000}) {
      EXPECT_EQ(run_seeded(777, 300.0, workers, false, shard), reference)
          << "step_workers=" << workers << " step_shard_nodes=" << shard;
    }
  }
}

TEST(SimDeterminism, AutoShardSizeResolution) {
  // step_shard_nodes = 0 auto-sizes to ~4 shards per worker, floored at 64
  // nodes per shard so tiny clusters do not shatter into dispatch overhead.
  EXPECT_EQ(resolve_step_shard_nodes(1'000'000, 8, 0), 31250);
  EXPECT_EQ(resolve_step_shard_nodes(10'000, 4, 0), 625);
  EXPECT_EQ(resolve_step_shard_nodes(1000, 8, 0), 64);    // floor engaged
  EXPECT_EQ(resolve_step_shard_nodes(777, 0, 0), 195);    // serial treated as 1 worker
  EXPECT_EQ(resolve_step_shard_nodes(1000, 4, 256), 256); // explicit wins
  EXPECT_EQ(resolve_step_shard_nodes(1000, 4, 7), 64);    // explicit but floored
}

TEST(SimDeterminism, ParallelSeededTrialsShareRegistrySafely) {
  // Four identical seeded trials run concurrently with telemetry on: they
  // hammer the same global MetricsRegistry from four threads (the TSan
  // target) and must still each produce the reference trace.
  util::ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  std::vector<std::uint64_t> hashes(4, 0);
  for (int t = 0; t < 4; ++t) {
    futures.push_back(pool.submit([&hashes, t] {
      hashes[static_cast<std::size_t>(t)] = run_seeded(200, 300.0, 0, true);
    }));
  }
  for (auto& f : futures) f.get();
  for (int t = 1; t < 4; ++t) EXPECT_EQ(hashes[static_cast<std::size_t>(t)], hashes[0]);
  EXPECT_NE(hashes[0], 0u);
}

}  // namespace
}  // namespace anor::sim
