#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace anor::sim {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.node_count = 40;
  config.duration_s = 1200.0;
  config.job_types = standard_sim_types(/*long_types_only=*/true, /*node_scale=*/1);
  return config;
}

workload::Schedule one_job_schedule(const char* type, double submit = 0.0) {
  workload::Schedule schedule;
  schedule.duration_s = 100.0;
  workload::JobRequest request;
  request.job_id = 0;
  request.type_name = type;
  request.submit_time_s = submit;
  schedule.jobs.push_back(request);
  return schedule;
}

TEST(SimJobType, FromJobTypePreservesEndpoints) {
  const auto& bt = workload::find_job_type("bt.D.x");
  const SimJobType sim_type = SimJobType::from_job_type(bt);
  EXPECT_EQ(sim_type.nodes, bt.nodes);
  EXPECT_DOUBLE_EQ(sim_type.time_at_pmax_s, bt.min_exec_time_s());
  EXPECT_NEAR(sim_type.time_at_pmin_s / sim_type.time_at_pmax_s, 1.70, 0.01);
}

TEST(SimJobType, ProgressRateLinearBetweenEndpoints) {
  const SimJobType t = SimJobType::from_job_type(workload::find_job_type("lu.D.x"));
  const double rate_min = t.progress_rate(t.p_min_w);
  const double rate_max = t.progress_rate(t.p_max_w);
  const double rate_mid = t.progress_rate(0.5 * (t.p_min_w + t.p_max_w));
  EXPECT_NEAR(rate_mid, 0.5 * (rate_min + rate_max), 1e-12);
  // Clamping outside the range.
  EXPECT_DOUBLE_EQ(t.progress_rate(10.0), rate_min);
  EXPECT_DOUBLE_EQ(t.progress_rate(1000.0), rate_max);
}

TEST(SimJobType, BudgetModelApproximatesInverseRate) {
  const SimJobType t = SimJobType::from_job_type(workload::find_job_type("ft.D.x"));
  const auto model = t.budget_model();
  for (double cap = t.p_min_w; cap <= t.p_max_w; cap += 15.0) {
    EXPECT_NEAR(model.time_at(cap), 1.0 / t.progress_rate(cap),
                0.02 / t.progress_rate(cap));
  }
}

TEST(StandardSimTypes, ScaleMultipliesNodes) {
  const auto scaled = standard_sim_types(true, 25);
  const auto base = standard_sim_types(true, 1);
  ASSERT_EQ(scaled.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(scaled[i].nodes, base[i].nodes * 25);
  }
}

TEST(TabularSimulator, RejectsEmptyTypesAndUnknownNames) {
  SimConfig config = small_config();
  config.job_types.clear();
  EXPECT_THROW(TabularSimulator(config, {}, util::Rng(1)), util::ConfigError);

  TabularSimulator sim(small_config(), one_job_schedule("bt.D.x"), util::Rng(1));
  EXPECT_NO_THROW(sim.step());
  TabularSimulator bad(small_config(), one_job_schedule("nope"), util::Rng(1));
  EXPECT_THROW(bad.run(), util::ConfigError);
}

TEST(TabularSimulator, SingleJobRunsToCompletionUncapped) {
  const SimConfig config = small_config();  // no bid -> no capping
  TabularSimulator sim(config, one_job_schedule("bt.D.x"), util::Rng(1));
  const SimResult result = sim.run();
  EXPECT_EQ(result.jobs_completed, 1);
  ASSERT_EQ(result.qos.records().size(), 1u);
  const auto& record = result.qos.records()[0];
  // Uncapped: completes in ~T_min (+ at most a couple of control periods).
  EXPECT_NEAR(record.end_s - record.start_s,
              workload::find_job_type("bt.D.x").min_exec_time_s(), 10.0);
  EXPECT_LT(record.qos_degradation(), 0.1);
}

TEST(TabularSimulator, PowerSeriesCoversIdleAndBusy) {
  const SimConfig config = small_config();
  TabularSimulator sim(config, one_job_schedule("cg.D.x", 10.0), util::Rng(1));
  const SimResult result = sim.run();
  ASSERT_FALSE(result.power_w.empty());
  // At t=0 everything idles.
  EXPECT_NEAR(result.power_w.values().front(), config.node_count * config.idle_power_w,
              1.0);
  // While the job runs, power is higher.
  double max_power = 0.0;
  for (double v : result.power_w.values()) max_power = std::max(max_power, v);
  EXPECT_GT(max_power, config.node_count * config.idle_power_w + 50.0);
}

TEST(TabularSimulator, TrackingFollowsTarget) {
  SimConfig config = small_config();
  config.node_count = 100;
  config.duration_s = 1500.0;
  // All 6 types at 75 % utilization.  The bid must keep the whole target
  // band inside the cluster's feasible envelope: busy nodes can move in
  // [140, ~p_max], idle nodes are pinned at idle power, so mean ~172 W and
  // reserve ~20 W per node stay trackable.
  config.bid.average_power_w = 100 * 150.0;
  config.bid.reserve_w = 100 * 18.0;
  config.tracking_warmup_s = 300.0;
  const SimResult result = run_simulation(config, 0.75, 42);
  ASSERT_GT(result.tracking.samples, 0u);
  // Paper constraint: error <= 30 % of reserve at least 90 % of the time.
  EXPECT_GE(result.tracking.fraction_within_30, 0.90)
      << "p90 error: " << result.tracking.p90_error;
}

TEST(TabularSimulator, PerfVariationSlowsSomeJobs) {
  SimConfig config = small_config();
  config.duration_s = 800.0;
  config.perf_variation_sigma = 0.3;
  TabularSimulator slow_sim(config, one_job_schedule("mg.D.x"), util::Rng(77));
  const SimResult varied = slow_sim.run();
  ASSERT_EQ(varied.jobs_completed, 1);
  // With sigma=0.3 the drawn multiplier is almost surely != 1; runtime
  // differs from nominal.
  const double runtime =
      varied.qos.records()[0].end_s - varied.qos.records()[0].start_s;
  const double nominal = workload::find_job_type("mg.D.x").min_exec_time_s();
  EXPECT_GT(std::abs(runtime - nominal), 1.0);
}

TEST(TabularSimulator, DeterministicPerSeed) {
  SimConfig config = small_config();
  config.duration_s = 600.0;
  const SimResult a = run_simulation(config, 0.5, 9);
  const SimResult b = run_simulation(config, 0.5, 9);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  ASSERT_EQ(a.power_w.size(), b.power_w.size());
  for (std::size_t i = 0; i < a.power_w.size(); i += 37) {
    EXPECT_DOUBLE_EQ(a.power_w.values()[i], b.power_w.values()[i]);
  }
}

TEST(TabularSimulator, MultiNodeJobNeedsAllNodesDone) {
  SimConfig config = small_config();
  config.perf_variation_sigma = 0.4;  // nodes progress at different rates
  TabularSimulator sim(config, one_job_schedule("bt.D.x"), util::Rng(3));
  // Step until the job starts.
  while (sim.job_table().size() == 0 || !sim.job_table().row(0).started()) {
    ASSERT_TRUE(sim.step());
  }
  const auto& row = sim.job_table().row(0);
  ASSERT_EQ(row.nodes.size(), 2u);
  // Run until one node reaches 100 %: the job must not be finished if the
  // other lags.
  bool saw_partial = false;
  while (!sim.job_table().row(0).finished()) {
    ASSERT_TRUE(sim.step());
    const auto& r = sim.job_table().row(0);
    if (r.finished()) break;
    int done_nodes = 0;
    for (int n : r.nodes) {
      if (sim.node_table().progress(n) >= 1.0) ++done_nodes;
    }
    if (done_nodes == 1) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial);
}

TEST(TabularSimulator, TableLogAppendsPerStep) {
  SimConfig config = small_config();
  config.duration_s = 60.0;
  std::ostringstream log;
  TabularSimulator sim(config, one_job_schedule("cg.D.x"), util::Rng(1));
  sim.set_table_log(&log, /*every_n_steps=*/10);
  for (int i = 0; i < 30; ++i) sim.step();
  const std::string text = log.str();
  // 3 logged steps x 40 node rows, plus job rows once the job exists.
  int node_rows = 0;
  int job_rows = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("N,", 0) == 0) ++node_rows;
    if (line.rfind("J,", 0) == 0) ++job_rows;
  }
  EXPECT_EQ(node_rows, 3 * config.node_count);
  EXPECT_GE(job_rows, 1);
  // Node rows carry the schema fields.
  EXPECT_NE(text.find("N,0,0,"), std::string::npos);
  // Logging can be detached safely.
  sim.set_table_log(nullptr);
  EXPECT_TRUE(sim.step());
}

TEST(TabularSimulator, ProtectAtRiskJobsLiftsTheirCaps) {
  // One job submitted long ago (deep queue delay already accrued): its
  // projected QoS breaches the limit, so with protection enabled the
  // policy must exempt it from capping even under a tight target.
  SimConfig config = small_config();
  config.node_count = 10;
  config.duration_s = 1500.0;
  config.protect_at_risk_jobs = true;
  config.at_risk_fraction = 0.0;  // protect anything at risk at all
  // Tight target: after the 9 idle nodes' 90 W each, the running job's
  // budget pins at the floor cap unless it is protected.
  config.bid.average_power_w = 9 * 90.0 + 145.0;
  config.bid.reserve_w = 10 * 2.0;

  // Give the job an artificial 20-minute-old submission: T_min ~ 120 s,
  // so projected Q is already far beyond any threshold at start.
  workload::Schedule schedule;
  workload::JobRequest request;
  request.job_id = 0;
  request.type_name = "cg.D.x";
  request.submit_time_s = 0.0;
  schedule.jobs.push_back(request);
  schedule.duration_s = 10.0;

  // Sample the job's cap mid-execution (it is released on completion).
  const auto mid_run_cap = [&schedule](SimConfig cfg) {
    TabularSimulator sim(cfg, schedule, util::Rng(3));
    for (int i = 0; i < 2000; ++i) {
      sim.step();
      if (sim.job_table().size() == 0) continue;
      const auto& row = sim.job_table().by_job_id(0);
      if (row.started() && !row.finished() &&
          sim.node_table().progress(row.nodes[0]) > 0.2) {
        return sim.node_table().cap_w(row.nodes[0]);
      }
    }
    ADD_FAILURE() << "job never reached mid-execution";
    return 0.0;
  };

  const double protected_cap = mid_run_cap(config);
  config.protect_at_risk_jobs = false;
  const double capped_cap = mid_run_cap(config);

  EXPECT_GT(protected_cap, capped_cap + 30.0);
  // Protected job sits at its type's max power.
  EXPECT_NEAR(protected_cap, config.job_types[1].p_max_w, 30.0);
}

TEST(TabularSimulator, BackfillShortensQueueDelayBehindBigJob) {
  // 6 nodes.  A long 4-node SP job runs; the cg queue holds a 4-node
  // instance (blocked: only 2 nodes free) and a 1-node quickie behind it
  // with a tight walltime hint.  With EASY backfill the quickie uses the
  // idle nodes during the blockage; without, it waits for the head.
  SimConfig config = small_config();
  config.node_count = 6;
  config.duration_s = 3000.0;
  config.power_aware_admission = false;

  workload::Schedule schedule;
  workload::JobRequest filler{0, "sp.D.x", 0.0, 4, ""};  // 200 s on 4 nodes
  workload::JobRequest head{1, "cg.D.x", 5.0, 4, ""};    // blocked behind it
  workload::JobRequest quickie{2, "cg.D.x", 10.0, 1, ""};
  quickie.walltime_hint_s = 130.0;  // fits the ~190 s gap
  schedule.jobs = {filler, head, quickie};

  const auto wait_of = [&](bool backfill) {
    SimConfig c = config;
    c.backfill = backfill;
    TabularSimulator sim(c, schedule, util::Rng(5));
    const SimResult result = sim.run();
    for (const auto& record : result.qos.records()) {
      if (record.job_id == 2) return record.start_s - record.submit_s;
    }
    return -1.0;
  };
  const double wait_backfill = wait_of(true);
  const double wait_fifo = wait_of(false);
  ASSERT_GE(wait_backfill, 0.0);
  ASSERT_GE(wait_fifo, 0.0);
  // FIFO: the quickie waits for the filler to release nodes (~190 s).
  // Backfill: it starts nearly immediately.
  EXPECT_LT(wait_backfill, 30.0) << "fifo wait was " << wait_fifo;
  EXPECT_GT(wait_fifo, 100.0);
}

TEST(TabularSimulator, UtilizationReported) {
  SimConfig config = small_config();
  config.duration_s = 2000.0;
  const SimResult result = run_simulation(config, 0.5, 21);
  EXPECT_GT(result.mean_utilization, 0.2);
  EXPECT_LT(result.mean_utilization, 0.9);
}

}  // namespace
}  // namespace anor::sim
