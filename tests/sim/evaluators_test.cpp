#include "sim/evaluators.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/simulator.hpp"

namespace anor::sim {
namespace {

EvaluatorConfig small_eval_config() {
  // A 100-node cluster keeps lull-induced infeasibility rare; smaller
  // clusters see deep empty-queue troughs no budgeter can track through.
  EvaluatorConfig config;
  config.base.node_count = 100;
  config.base.duration_s = 1500.0;
  config.base.job_types = standard_sim_types(true, 1);
  config.base.tracking_warmup_s = 300.0;
  config.utilization = 0.75;
  config.seed = 5;
  return config;
}

TEST(BidEvaluator, ReasonableBidIsFeasible) {
  const EvaluatorConfig config = small_eval_config();
  sched::BidderConfig prices;
  const auto evaluate = make_bid_evaluator(config, prices);

  workload::DemandResponseBid bid;
  bid.average_power_w = 100 * 150.0;
  bid.reserve_w = 100 * 18.0;
  const auto eval = evaluate(bid);
  EXPECT_TRUE(eval.tracking_ok);
  EXPECT_TRUE(eval.qos_ok);
  EXPECT_GT(eval.energy_cost, 0.0);
  EXPECT_GT(eval.reserve_credit, 0.0);
}

TEST(BidEvaluator, AbsurdlyLowMeanFailsSomething) {
  const EvaluatorConfig config = small_eval_config();
  sched::BidderConfig prices;
  const auto evaluate = make_bid_evaluator(config, prices);
  workload::DemandResponseBid bid;
  bid.average_power_w = 100 * 60.0;  // below even idle+floor feasibility
  bid.reserve_w = 100 * 5.0;
  const auto eval = evaluate(bid);
  EXPECT_FALSE(eval.tracking_ok && eval.qos_ok);
}

TEST(BidEvaluator, CostsScaleWithPrices) {
  const EvaluatorConfig config = small_eval_config();
  sched::BidderConfig cheap;
  cheap.energy_price_per_kwh = 0.10;
  sched::BidderConfig expensive;
  expensive.energy_price_per_kwh = 0.20;
  workload::DemandResponseBid bid;
  bid.average_power_w = 8000.0;
  bid.reserve_w = 1000.0;
  const auto low = make_bid_evaluator(config, cheap)(bid);
  const auto high = make_bid_evaluator(config, expensive)(bid);
  EXPECT_NEAR(high.energy_cost, 2.0 * low.energy_cost, 1e-9);
}

TEST(WeightEvaluator, ReturnsFiniteScoreForUniformWeights) {
  const EvaluatorConfig config = small_eval_config();
  const auto evaluate = make_weight_evaluator(config);
  std::map<std::string, double> weights;
  for (const auto& t : config.base.job_types) weights[t.name] = 1.0;
  const double score = evaluate(weights);
  EXPECT_TRUE(std::isfinite(score));
  EXPECT_LE(score, 0.0);  // score = -worst quantile
}

TEST(WeightEvaluator, InfeasibleTrackingIsMinusInfinity) {
  EvaluatorConfig config = small_eval_config();
  config.base.bid.average_power_w = 60 * 50.0;  // untrackable
  config.base.bid.reserve_w = 60 * 2.0;
  const auto evaluate = make_weight_evaluator(config);
  std::map<std::string, double> weights;
  for (const auto& t : config.base.job_types) weights[t.name] = 1.0;
  EXPECT_EQ(evaluate(weights), -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace anor::sim
