// Warm-start run reuse (sim::WarmStart + engine::run_scenario_warm).
//
// Warm-start is a pure allocation-reuse optimization: a pooled NodeTable,
// worker team, and fitted model tables may be handed to the next run ONLY
// because the observable results are bit-identical to a cold run.  These
// tests pin that contract, including across step-worker counts and job-set
// changes (which must invalidate the model reuse, not corrupt it).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "engine/runner.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep/result_cache.hpp"
#include "sim/simulator.hpp"
#include "sim/tables.hpp"
#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::sim {
namespace {

engine::ScenarioSpec warm_spec(std::uint64_t seed, int nodes = 12,
                               double duration_s = 240.0) {
  engine::ScenarioSpec spec;
  spec.name = "warm-test";
  spec.backend = engine::Backend::kTabular;
  spec.policy = engine::PolicyRef("characterized");
  spec.node_count = nodes;
  spec.seed = seed;

  workload::PoissonScheduleConfig config;
  config.duration_s = duration_s;
  config.utilization = 0.85;
  config.cluster_nodes = nodes;
  spec.schedule = workload::generate_poisson_schedule(
      workload::nas_long_job_types(), config, util::Rng(seed).child("schedule"));
  spec.static_budget_w = 150.0 * nodes;
  return spec;
}

std::string fingerprint(const engine::RunResult& result) {
  return engine::sweep::run_result_to_cache_json(result).dump();
}

TEST(NodeTableReset, ResetEqualsFreshConstruction) {
  NodeTable used(16);
  // Dirty every column.
  for (int n = 0; n < 16; ++n) {
    used.assign(n, n + 100, 7);
    used.set_cap(n, 120.0);
    used.set_power(n, 115.0);
    used.set_perf_multiplier(n, 0.9);
    used.add_progress(n, 42.0);
    used.set_rate(n, 1.5);
  }
  used.release(3);

  used.reset(16);
  const NodeTable fresh(16);
  ASSERT_EQ(used.size(), fresh.size());
  EXPECT_EQ(used.idle_count(), fresh.idle_count());
  for (int n = 0; n < 16; ++n) {
    EXPECT_EQ(used.job_id(n), fresh.job_id(n)) << n;
    EXPECT_EQ(used.cap_w(n), fresh.cap_w(n)) << n;
    EXPECT_EQ(used.power_w(n), fresh.power_w(n)) << n;
    EXPECT_EQ(used.progress(n), fresh.progress(n)) << n;
    EXPECT_EQ(used.perf_multiplier(n), fresh.perf_multiplier(n)) << n;
    EXPECT_EQ(used.inv_perf_multiplier(n), fresh.inv_perf_multiplier(n)) << n;
    EXPECT_EQ(used.rate(n), fresh.rate(n)) << n;
  }
  EXPECT_EQ(used.total_power_w(), fresh.total_power_w());
}

TEST(NodeTableReset, ResetCanResize) {
  NodeTable table(8);
  table.reset(20);
  EXPECT_EQ(table.size(), 20);
  EXPECT_EQ(table.idle_count(), 20);
  table.reset(4);
  EXPECT_EQ(table.size(), 4);
  EXPECT_EQ(table.idle_count(), 4);
  EXPECT_THROW(table.reset(0), std::invalid_argument);
}

TEST(WarmStart, WarmRunIsBitIdenticalToCold) {
  const engine::ScenarioSpec spec = warm_spec(3);
  const engine::RunResult cold = engine::run_scenario(spec);

  WarmStart warm;
  const engine::RunResult first = engine::run_scenario_warm(spec, warm);
  EXPECT_EQ(fingerprint(first), fingerprint(cold));
  // The pool now holds used state; the next warm run must still match.
  const engine::RunResult second = engine::run_scenario_warm(spec, warm);
  EXPECT_EQ(fingerprint(second), fingerprint(cold));
  EXPECT_NE(warm.nodes, nullptr) << "recycle must return the table to the pool";
}

TEST(WarmStart, ReuseAcrossDifferentSpecsCannotLeakState) {
  // Interleave three different scenarios through ONE warm pool and check
  // each against its own cold run: nothing from run N may bleed into N+1.
  const engine::ScenarioSpec a = warm_spec(3);
  const engine::ScenarioSpec b = warm_spec(9, 16, 300.0);  // resize + new jobs
  const engine::ScenarioSpec c = warm_spec(4, 6);          // shrink
  const std::string cold_a = fingerprint(engine::run_scenario(a));
  const std::string cold_b = fingerprint(engine::run_scenario(b));
  const std::string cold_c = fingerprint(engine::run_scenario(c));

  WarmStart warm;
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(a, warm)), cold_a);
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(b, warm)), cold_b);
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(c, warm)), cold_c);
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(a, warm)), cold_a);
}

TEST(WarmStart, PerfVariationColumnIsPooledWithoutChangingResults) {
  // With perf_variation_sigma > 0 the first warm run records the drawn
  // multiplier column; later same-(seed, sigma, nodes) runs replay it.
  engine::ScenarioSpec spec = warm_spec(3);
  spec.perf_variation_sigma = 0.08;
  const std::string cold = fingerprint(engine::run_scenario(spec));

  WarmStart warm;
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(spec, warm)), cold);
  EXPECT_EQ(warm.perf_multipliers.size(), static_cast<std::size_t>(spec.node_count));
  EXPECT_EQ(warm.perf_sigma, spec.perf_variation_sigma);
  // Replayed column: still bit-identical.
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(spec, warm)), cold);

  // A different sigma, seed, or node count must invalidate the pooled
  // column, not replay it.
  engine::ScenarioSpec wider = spec;
  wider.perf_variation_sigma = 0.2;
  const std::string cold_wider = fingerprint(engine::run_scenario(wider));
  EXPECT_NE(cold_wider, cold);
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(wider, warm)), cold_wider);

  const engine::ScenarioSpec reseeded = [&] {
    engine::ScenarioSpec s = warm_spec(11);
    s.perf_variation_sigma = 0.2;
    return s;
  }();
  const std::string cold_reseeded = fingerprint(engine::run_scenario(reseeded));
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(reseeded, warm)), cold_reseeded);
  // And back to the original: the pool re-draws, never serves stale rows.
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(spec, warm)), cold);
}

TEST(WarmStart, WarmRunIsBitIdenticalAcrossStepWorkerCounts) {
  const engine::ScenarioSpec base = warm_spec(5, 24, 300.0);
  const std::string cold = fingerprint(engine::run_scenario(base));
  for (int workers : {0, 1, 2, 4}) {
    engine::ScenarioSpec spec = base;
    spec.step_workers = workers;
    spec.step_shard_nodes = 64;
    WarmStart warm;
    EXPECT_EQ(fingerprint(engine::run_scenario_warm(spec, warm)), cold)
        << "step_workers=" << workers;
    // Second pass reuses the pooled worker team (or lack of one).
    EXPECT_EQ(fingerprint(engine::run_scenario_warm(spec, warm)), cold)
        << "step_workers=" << workers << " (warm pass 2)";
  }
}

TEST(WarmStart, ModelTablesAreReusedOnlyForIdenticalJobTypes) {
  const engine::ScenarioSpec spec = warm_spec(3);
  WarmStart warm;
  (void)engine::run_scenario_warm(spec, warm);
  ASSERT_FALSE(warm.job_types.empty());
  const std::size_t models = warm.type_models.size();
  EXPECT_EQ(models, warm.job_types.size());

  // Same spec again: the recorded job-type set stays (reuse path).
  (void)engine::run_scenario_warm(spec, warm);
  EXPECT_EQ(warm.type_models.size(), models);
  EXPECT_EQ(warm.job_types, warm.job_types);

  // SimJobType equality is the reuse gate.
  SimJobType x = warm.job_types.front();
  SimJobType y = x;
  EXPECT_TRUE(x == y);
  y.p_max_w += 1.0;
  EXPECT_TRUE(x != y);
}

TEST(WarmStart, EmulatedBackendFallsBackToColdPath) {
  engine::ScenarioSpec spec = warm_spec(3, 8, 180.0);
  spec.backend = engine::Backend::kEmulated;
  const std::string cold = fingerprint(engine::run_scenario(spec));
  WarmStart warm;
  EXPECT_EQ(fingerprint(engine::run_scenario_warm(spec, warm)), cold);
  EXPECT_EQ(warm.nodes, nullptr) << "emulated runs must not touch the pool";
}

}  // namespace
}  // namespace anor::sim
