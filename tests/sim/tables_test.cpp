#include "sim/tables.hpp"

#include <gtest/gtest.h>

namespace anor::sim {
namespace {

TEST(NodeTable, InitiallyAllIdle) {
  NodeTable table(10);
  EXPECT_EQ(table.size(), 10);
  EXPECT_EQ(table.idle_count(), 10);
  EXPECT_EQ(table.idle_nodes().size(), 10u);
  for (int n = 0; n < 10; ++n) {
    EXPECT_TRUE(table.idle(n));
    EXPECT_DOUBLE_EQ(table.perf_multiplier(n), 1.0);
  }
}

TEST(NodeTable, RejectsEmpty) {
  EXPECT_THROW(NodeTable(0), std::invalid_argument);
}

TEST(NodeTable, AssignReleaseLifecycle) {
  NodeTable table(4);
  table.assign(2, 17);
  EXPECT_FALSE(table.idle(2));
  EXPECT_EQ(table.job_id(2), 17);
  EXPECT_EQ(table.idle_count(), 3);
  table.add_progress(2, 0.4);
  EXPECT_DOUBLE_EQ(table.progress(2), 0.4);
  table.release(2);
  EXPECT_TRUE(table.idle(2));
  EXPECT_DOUBLE_EQ(table.progress(2), 0.0);
  EXPECT_DOUBLE_EQ(table.cap_w(2), 0.0);
}

TEST(NodeTable, AssignResetsProgress) {
  NodeTable table(2);
  table.assign(0, 1);
  table.add_progress(0, 0.9);
  table.release(0);
  table.assign(0, 2);
  EXPECT_DOUBLE_EQ(table.progress(0), 0.0);
}

TEST(NodeTable, TotalPowerSums) {
  NodeTable table(3);
  table.set_power(0, 100.0);
  table.set_power(1, 150.0);
  table.set_power(2, 50.0);
  EXPECT_DOUBLE_EQ(table.total_power_w(), 300.0);
}

TEST(NodeTable, SetCapQueuesPendingRefreshOnce) {
  NodeTable table(4);
  table.set_cap(1, 100.0);
  table.set_cap(1, 120.0);  // second change: still queued only once
  table.set_cap(2, 90.0);
  EXPECT_EQ(table.pending_refresh(), (std::vector<int>{1, 2}));
  table.clear_pending_refresh();
  EXPECT_TRUE(table.pending_refresh().empty());
  // Re-writing the current value is a no-op: caps are rewritten every
  // control period even when the budget did not move.
  table.set_cap(1, 120.0);
  EXPECT_TRUE(table.pending_refresh().empty());
  table.set_cap(1, 130.0);
  EXPECT_EQ(table.pending_refresh(), (std::vector<int>{1}));
}

TEST(NodeTable, AssignAndReleaseQueuePendingRefresh) {
  NodeTable table(3);
  table.assign(0, 7, 4);
  EXPECT_EQ(table.job_row(0), 4);
  EXPECT_EQ(table.pending_refresh(), (std::vector<int>{0}));
  table.clear_pending_refresh();
  table.set_rate(0, 0.5);
  table.release(0);
  EXPECT_EQ(table.job_row(0), -1);
  EXPECT_DOUBLE_EQ(table.rate(0), 0.0);  // idle nodes advance at rate 0
  EXPECT_DOUBLE_EQ(table.cap_w(0), 0.0);
  EXPECT_EQ(table.pending_refresh(), (std::vector<int>{0}));
}

TEST(NodeTable, AdvanceProgressUsesCachedRatesOverRanges) {
  NodeTable table(4);
  table.assign(1, 10);
  table.assign(3, 11);
  table.set_rate(1, 0.25);
  table.set_rate(3, 0.5);
  table.advance_progress(0, 2, 2.0);  // first shard: nodes 0-1
  table.advance_progress(2, 4, 2.0);  // second shard: nodes 2-3
  EXPECT_DOUBLE_EQ(table.progress(0), 0.0);
  EXPECT_DOUBLE_EQ(table.progress(1), 0.5);
  EXPECT_DOUBLE_EQ(table.progress(2), 0.0);
  EXPECT_DOUBLE_EQ(table.progress(3), 1.0);
}

TEST(NodeTable, TotalPowerCacheInvalidatedByWrites) {
  NodeTable table(3);
  table.set_power(0, 100.0);
  table.set_power(1, 150.0);
  EXPECT_DOUBLE_EQ(table.total_power_w(), 250.0);
  EXPECT_DOUBLE_EQ(table.total_power_w(), 250.0);  // cached re-read
  table.set_power(2, 50.0);
  EXPECT_DOUBLE_EQ(table.total_power_w(), 300.0);
}

TEST(JobTable, AddAndLookupById) {
  JobTable table;
  JobRow row;
  row.job_id = 42;
  row.type_index = 1;
  row.submit_s = 3.0;
  table.add(row);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.by_job_id(42).type_index, 1);
  EXPECT_THROW(table.by_job_id(99), std::out_of_range);
}

TEST(JobTable, LifecyclePredicates) {
  JobRow row;
  EXPECT_FALSE(row.started());
  EXPECT_FALSE(row.finished());
  row.start_s = 5.0;
  EXPECT_TRUE(row.started());
  EXPECT_FALSE(row.finished());
  row.end_s = 10.0;
  EXPECT_TRUE(row.finished());
}

TEST(JobTable, RunningFiltersCorrectly) {
  JobTable table;
  JobRow queued;
  queued.job_id = 0;
  table.add(queued);
  JobRow running;
  running.job_id = 1;
  running.start_s = 1.0;
  table.add(running);
  JobRow done;
  done.job_id = 2;
  done.start_s = 1.0;
  done.end_s = 2.0;
  table.add(done);
  const auto active = table.running();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(table.row(active[0]).job_id, 1);
}

TEST(JobTable, IndexOfMatchesRowOrder) {
  JobTable table;
  for (int id : {5, 3, 9}) {
    JobRow row;
    row.job_id = id;
    table.add(row);
  }
  EXPECT_EQ(table.index_of(5), 0u);
  EXPECT_EQ(table.index_of(3), 1u);
  EXPECT_EQ(table.index_of(9), 2u);
  EXPECT_THROW(table.index_of(4), std::out_of_range);
}

TEST(JobTable, RunningSetMaintainedIncrementally) {
  JobTable table;
  for (int id = 0; id < 4; ++id) {
    JobRow row;
    row.job_id = id;
    table.add(row);
  }
  // Start out of row order: the running set stays ascending.
  table.mark_started(2, 1.0);
  table.mark_started(0, 2.0);
  table.mark_started(3, 3.0);
  EXPECT_EQ(table.running(), (std::vector<std::size_t>{0, 2, 3}));
  table.mark_finished(2, 4.0);
  EXPECT_EQ(table.running(), (std::vector<std::size_t>{0, 3}));
  // Idempotent transitions do not corrupt the set.
  table.mark_started(0, 5.0);
  table.mark_finished(2, 6.0);
  EXPECT_EQ(table.running(), (std::vector<std::size_t>{0, 3}));
  EXPECT_DOUBLE_EQ(table.row(0).start_s, 2.0);
}

TEST(JobTable, NonContiguousIds) {
  JobTable table;
  JobRow row;
  row.job_id = 1000;
  table.add(row);
  EXPECT_EQ(table.by_job_id(1000).job_id, 1000);
  EXPECT_THROW(table.by_job_id(500), std::out_of_range);
}

}  // namespace
}  // namespace anor::sim
