#include "sim/tables.hpp"

#include <gtest/gtest.h>

namespace anor::sim {
namespace {

TEST(NodeTable, InitiallyAllIdle) {
  NodeTable table(10);
  EXPECT_EQ(table.size(), 10);
  EXPECT_EQ(table.idle_count(), 10);
  EXPECT_EQ(table.idle_nodes().size(), 10u);
  for (int n = 0; n < 10; ++n) {
    EXPECT_TRUE(table.idle(n));
    EXPECT_DOUBLE_EQ(table.perf_multiplier(n), 1.0);
  }
}

TEST(NodeTable, RejectsEmpty) {
  EXPECT_THROW(NodeTable(0), std::invalid_argument);
}

TEST(NodeTable, AssignReleaseLifecycle) {
  NodeTable table(4);
  table.assign(2, 17);
  EXPECT_FALSE(table.idle(2));
  EXPECT_EQ(table.job_id(2), 17);
  EXPECT_EQ(table.idle_count(), 3);
  table.add_progress(2, 0.4);
  EXPECT_DOUBLE_EQ(table.progress(2), 0.4);
  table.release(2);
  EXPECT_TRUE(table.idle(2));
  EXPECT_DOUBLE_EQ(table.progress(2), 0.0);
  EXPECT_DOUBLE_EQ(table.cap_w(2), 0.0);
}

TEST(NodeTable, AssignResetsProgress) {
  NodeTable table(2);
  table.assign(0, 1);
  table.add_progress(0, 0.9);
  table.release(0);
  table.assign(0, 2);
  EXPECT_DOUBLE_EQ(table.progress(0), 0.0);
}

TEST(NodeTable, TotalPowerSums) {
  NodeTable table(3);
  table.set_power(0, 100.0);
  table.set_power(1, 150.0);
  table.set_power(2, 50.0);
  EXPECT_DOUBLE_EQ(table.total_power_w(), 300.0);
}

TEST(JobTable, AddAndLookupById) {
  JobTable table;
  JobRow row;
  row.job_id = 42;
  row.type_index = 1;
  row.submit_s = 3.0;
  table.add(row);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.by_job_id(42).type_index, 1);
  EXPECT_THROW(table.by_job_id(99), std::out_of_range);
}

TEST(JobTable, LifecyclePredicates) {
  JobRow row;
  EXPECT_FALSE(row.started());
  EXPECT_FALSE(row.finished());
  row.start_s = 5.0;
  EXPECT_TRUE(row.started());
  EXPECT_FALSE(row.finished());
  row.end_s = 10.0;
  EXPECT_TRUE(row.finished());
}

TEST(JobTable, RunningFiltersCorrectly) {
  JobTable table;
  JobRow queued;
  queued.job_id = 0;
  table.add(queued);
  JobRow running;
  running.job_id = 1;
  running.start_s = 1.0;
  table.add(running);
  JobRow done;
  done.job_id = 2;
  done.start_s = 1.0;
  done.end_s = 2.0;
  table.add(done);
  const auto active = table.running();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(table.row(active[0]).job_id, 1);
}

TEST(JobTable, NonContiguousIds) {
  JobTable table;
  JobRow row;
  row.job_id = 1000;
  table.add(row);
  EXPECT_EQ(table.by_job_id(1000).job_id, 1000);
  EXPECT_THROW(table.by_job_id(500), std::out_of_range);
}

}  // namespace
}  // namespace anor::sim
