#include <gtest/gtest.h>

#include "sim/sim_config.hpp"
#include "sim/simulator.hpp"

namespace anor::sim {
namespace {

TEST(SimConfigJson, RoundTripPreservesEverything) {
  SimConfig original;
  original.node_count = 250;
  original.idle_power_w = 85.0;
  original.duration_s = 1800.0;
  original.perf_variation_sigma = 0.07;
  original.budgeter = budget::BudgeterKind::kEvenPower;
  original.power_aware_admission = false;
  original.backfill = true;
  original.single_queue = true;
  original.protect_at_risk_jobs = true;
  original.at_risk_fraction = 0.6;
  original.bid.average_power_w = 40000.0;
  original.bid.reserve_w = 5000.0;
  original.tracking_warmup_s = 250.0;
  original.step_workers = 6;
  original.step_shard_nodes = 512;
  original.job_types = standard_sim_types(true, 2);
  original.queue_weights["bt.D.x"] = 2.5;

  const SimConfig parsed = sim_config_from_json(sim_config_to_json(original));
  EXPECT_EQ(parsed.node_count, 250);
  EXPECT_DOUBLE_EQ(parsed.idle_power_w, 85.0);
  EXPECT_DOUBLE_EQ(parsed.duration_s, 1800.0);
  EXPECT_DOUBLE_EQ(parsed.perf_variation_sigma, 0.07);
  EXPECT_EQ(parsed.budgeter, budget::BudgeterKind::kEvenPower);
  EXPECT_FALSE(parsed.power_aware_admission);
  EXPECT_TRUE(parsed.backfill);
  EXPECT_TRUE(parsed.single_queue);
  EXPECT_TRUE(parsed.protect_at_risk_jobs);
  EXPECT_DOUBLE_EQ(parsed.at_risk_fraction, 0.6);
  EXPECT_DOUBLE_EQ(parsed.bid.average_power_w, 40000.0);
  EXPECT_DOUBLE_EQ(parsed.bid.reserve_w, 5000.0);
  EXPECT_EQ(parsed.step_workers, 6);
  EXPECT_EQ(parsed.step_shard_nodes, 512);
  ASSERT_EQ(parsed.job_types.size(), original.job_types.size());
  EXPECT_EQ(parsed.job_types[0].name, original.job_types[0].name);
  EXPECT_EQ(parsed.job_types[0].nodes, original.job_types[0].nodes);
  EXPECT_DOUBLE_EQ(parsed.job_types[0].time_at_pmin_s, original.job_types[0].time_at_pmin_s);
  EXPECT_DOUBLE_EQ(parsed.queue_weights.at("bt.D.x"), 2.5);
}

TEST(SimConfigJson, StandardTypesShortcut) {
  const util::Json json = util::Json::parse(
      R"({"node_count": 80, "standard_types": {"long_only": false, "node_scale": 3}})");
  const SimConfig config = sim_config_from_json(json);
  EXPECT_EQ(config.node_count, 80);
  EXPECT_EQ(config.job_types.size(), workload::nas_job_types().size());
  EXPECT_EQ(config.job_types[0].nodes, workload::nas_job_types()[0].nodes * 3);
}

TEST(SimConfigJson, DefaultsApplyForMissingKeys) {
  const SimConfig config = sim_config_from_json(util::Json::parse("{}"));
  const SimConfig defaults;
  EXPECT_EQ(config.node_count, defaults.node_count);
  EXPECT_EQ(config.budgeter, defaults.budgeter);
  EXPECT_EQ(config.step_workers, defaults.step_workers);
  EXPECT_EQ(config.step_shard_nodes, defaults.step_shard_nodes);
  EXPECT_TRUE(config.job_types.empty());
}

TEST(SimConfigJson, ParsedConfigRuns) {
  const util::Json json = util::Json::parse(R"({
    "node_count": 40, "duration_s": 600,
    "standard_types": {"long_only": true, "node_scale": 1},
    "bid_mean_w": 6000, "bid_reserve_w": 600, "tracking_warmup_s": 200
  })");
  const SimConfig config = sim_config_from_json(json);
  const SimResult result = run_simulation(config, 0.6, 3);
  EXPECT_GT(result.jobs_completed, 0);
}

}  // namespace
}  // namespace anor::sim
