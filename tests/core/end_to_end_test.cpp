// End-to-end integration tests: the full two-tier stack reproducing the
// paper's qualitative claims at miniature scale.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "core/policies.hpp"
#include "platform/cluster_hw.hpp"
#include "sim/simulator.hpp"

namespace anor::core {
namespace {

cluster::EmulationConfig fast_base() {
  cluster::EmulationConfig config;
  config.node.package.response_tau_s = 0.0;
  config.step_s = 0.25;
  config.controller.kernel.time_noise_sigma = 0.0;
  config.controller.kernel.power_noise_sigma_w = 0.0;
  config.scheduler.power_aware_admission = false;
  // Track 4 s target steps promptly, as the benches configure it.
  config.manager.control_period_s = 0.5;
  config.endpoint.period_s = 0.5;
  return config;
}

workload::Schedule bt_sp_schedule() {
  workload::Schedule schedule;
  workload::JobRequest bt;
  bt.job_id = 0;
  bt.type_name = "bt.D.x";
  bt.submit_time_s = 0.0;
  bt.nodes = 2;
  workload::JobRequest sp;
  sp.job_id = 1;
  sp.type_name = "sp.D.x";
  sp.submit_time_s = 0.0;
  sp.nodes = 2;
  schedule.jobs = {bt, sp};
  schedule.duration_s = 1.0;
  return schedule;
}

double slowdown_of(const cluster::EmulationResult& result, const std::string& type) {
  for (const auto& job : result.completed) {
    if (job.request.type_name == type) return job.slowdown();
  }
  ADD_FAILURE() << "job type not found: " << type;
  return 0.0;
}

/// The Fig. 6 budget: 75 % of TDP over 4 nodes, plus idle headroom.
double fig6_budget(const cluster::EmulationConfig& config, int total_nodes,
                   int busy_nodes) {
  return busy_nodes * 0.75 * 280.0 +
         (total_nodes - busy_nodes) * config.manager.idle_node_power_w;
}

TEST(EndToEnd, PerformanceAwareBeatsAgnosticForSensitiveJob) {
  // Paper Fig. 6: under a shared 75 %-of-TDP budget, the characterized
  // even-slowdown policy slows BT less than the performance-agnostic one.
  Experiment agnostic;
  agnostic.base = fast_base();
  agnostic.node_count = 4;
  agnostic.schedule = bt_sp_schedule();
  agnostic.policy = PolicyRef("uniform");
  agnostic.static_budget_w = fig6_budget(agnostic.base, 4, 4);

  Experiment aware = agnostic;
  aware.policy = PolicyRef("characterized");

  const auto agnostic_result = run_experiment(agnostic);
  const auto aware_result = run_experiment(aware);
  ASSERT_EQ(agnostic_result.completed.size(), 2u);
  ASSERT_EQ(aware_result.completed.size(), 2u);

  const double bt_agnostic = slowdown_of(agnostic_result, "bt.D.x");
  const double bt_aware = slowdown_of(aware_result, "bt.D.x");
  EXPECT_LT(bt_aware, bt_agnostic - 0.01);
  // And the worst-case job improves.
  const double worst_agnostic =
      std::max(bt_agnostic, slowdown_of(agnostic_result, "sp.D.x"));
  const double worst_aware =
      std::max(bt_aware, slowdown_of(aware_result, "sp.D.x"));
  EXPECT_LT(worst_aware, worst_agnostic);
}

TEST(EndToEnd, MisclassificationHurtsAndFeedbackRecovers) {
  // Paper Fig. 6/7: BT misclassified as IS slows BT down; the adjusted
  // policy (feedback on) recovers most of the loss.
  Experiment characterized;
  characterized.base = fast_base();
  characterized.node_count = 4;
  characterized.schedule = bt_sp_schedule();
  characterized.policy = PolicyRef("characterized");
  characterized.static_budget_w = fig6_budget(characterized.base, 4, 4);

  Experiment misclassified = characterized;
  misclassified.policy = PolicyRef("misclassified");
  workload::misclassify(misclassified.schedule, "bt.D.x", "is.D.x");

  Experiment adjusted = misclassified;
  adjusted.policy = PolicyRef("adjusted");

  const double bt_good = slowdown_of(run_experiment(characterized), "bt.D.x");
  const double bt_bad = slowdown_of(run_experiment(misclassified), "bt.D.x");
  const double bt_fixed = slowdown_of(run_experiment(adjusted), "bt.D.x");

  EXPECT_GT(bt_bad, bt_good + 0.02);   // misclassification hurts
  EXPECT_LT(bt_fixed, bt_bad - 0.01);  // feedback recovers
}

TEST(EndToEnd, TimeVaryingTargetTrackedWithinReserveBand) {
  // Paper Fig. 9 in miniature: a few-minute schedule under moving targets;
  // tracking error (normalized by reserve) within 30 % at least 90 % of
  // the time once load is present.
  Experiment experiment;
  experiment.base = fast_base();
  experiment.node_count = 4;
  experiment.base.scheduler.power_aware_admission = true;

  // Saturate the 4 nodes for the whole window with staggered arrivals.
  workload::Schedule schedule;
  int id = 0;
  for (double t = 0.0; t < 240.0; t += 30.0) {
    for (const char* type : {"bt.D.x", "sp.D.x"}) {
      workload::JobRequest request;
      request.job_id = id++;
      request.type_name = type;
      request.submit_time_s = t;
      request.nodes = 2;
      schedule.jobs.push_back(request);
    }
  }
  schedule.duration_s = 240.0;
  experiment.schedule = schedule;
  experiment.policy = PolicyRef("characterized");

  // Targets: 4-node bid scaled from the paper's 16-node range.
  const workload::DemandResponseBid bid{4 * 195.0 + 0.0, 4 * 40.0};
  const workload::RandomWalkRegulation regulation(util::Rng(11), 400.0, 4.0, 0.15);
  experiment.targets = workload::make_power_target_series(bid, regulation, 360.0, 4.0);

  const auto result = run_experiment(experiment);
  ASSERT_GT(result.completed.size(), 4u);

  // Evaluate tracking on the saturated window only (after warmup).
  util::TimeSeries measured;
  for (std::size_t i = 0; i < result.power_w.size(); ++i) {
    const double t = result.power_w.times()[i];
    if (t > 30.0 && t < 240.0) measured.add(t, result.power_w.values()[i]);
  }
  const auto stats = util::tracking_error(measured, result.target_w, bid.reserve_w);
  EXPECT_GE(stats.fraction_within_30, 0.90) << "p90=" << stats.p90_error;
}

TEST(EndToEnd, VariationDegradesQosInSimulation) {
  // Paper Fig. 11 in miniature: higher node-to-node variation produces
  // higher 90th-percentile QoS degradation.
  sim::SimConfig config;
  config.node_count = 60;
  config.duration_s = 1500.0;
  config.job_types = sim::standard_sim_types(true, 1);
  config.bid.average_power_w = 60 * 150.0;
  config.bid.reserve_w = 60 * 30.0;

  auto worst_q = [&](double sigma) {
    sim::SimConfig c = config;
    c.perf_variation_sigma = sigma;
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      total += sim::run_simulation(c, 0.75, seed).qos.worst_quantile();
    }
    return total / 3.0;
  };

  const double q_none = worst_q(0.0);
  const double q_heavy = worst_q(platform::sigma_from_band99(0.30));
  EXPECT_GT(q_heavy, q_none);
}

}  // namespace
}  // namespace anor::core
