#include "core/policies.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace anor::core {
namespace {

TEST(Policies, Names) {
  EXPECT_EQ(to_string(PolicyRef("uniform")), "uniform");
  EXPECT_EQ(to_string(PolicyRef("characterized")), "characterized");
  EXPECT_EQ(to_string(PolicyRef("misclassified")), "misclassified");
  EXPECT_EQ(to_string(PolicyRef("adjusted")), "adjusted");
  EXPECT_EQ(policy_from_string("adjusted"), PolicyRef("adjusted"));
  EXPECT_THROW(policy_from_string("not-a-policy"), util::ConfigError);
}

TEST(Policies, UniformUsesEvenPowerNoFeedback) {
  cluster::EmulationConfig config;
  apply_policy(config, PolicyRef("uniform"));
  EXPECT_EQ(config.manager.budgeter, budget::BudgeterKind::kEvenPower);
  EXPECT_FALSE(config.manager.accept_model_updates);
  EXPECT_FALSE(config.endpoint.feedback_enabled);
  // Built-ins keep the legacy enum dispatch: no factory override.
  EXPECT_FALSE(static_cast<bool>(config.manager.budgeter_factory));
}

TEST(Policies, CharacterizedUsesEvenSlowdownNoFeedback) {
  cluster::EmulationConfig config;
  apply_policy(config, PolicyRef("characterized"));
  EXPECT_EQ(config.manager.budgeter, budget::BudgeterKind::kEvenSlowdown);
  EXPECT_FALSE(config.endpoint.feedback_enabled);
}

TEST(Policies, AdjustedEnablesFullFeedbackPath) {
  cluster::EmulationConfig config;
  apply_policy(config, PolicyRef("adjusted"));
  EXPECT_EQ(config.manager.budgeter, budget::BudgeterKind::kEvenSlowdown);
  EXPECT_TRUE(config.manager.accept_model_updates);
  EXPECT_TRUE(config.endpoint.feedback_enabled);
}

TEST(Policies, MisclassificationExpectation) {
  EXPECT_FALSE(expects_misclassification(PolicyRef("uniform")));
  EXPECT_FALSE(expects_misclassification(PolicyRef("characterized")));
  EXPECT_TRUE(expects_misclassification(PolicyRef("misclassified")));
  EXPECT_TRUE(expects_misclassification(PolicyRef("adjusted")));
}

TEST(Policies, ExpressionPolicyGetsACustomBudgeterFactory) {
  PolicyRegistry::global().register_expression_policy(
      "core-test-expr", "clamp(budget_w / total_nodes, p_min, p_max)");
  cluster::EmulationConfig config;
  apply_policy(config, PolicyRef("core-test-expr"));
  EXPECT_TRUE(static_cast<bool>(config.manager.budgeter_factory));
  EXPECT_FALSE(config.endpoint.feedback_enabled);
  PolicyRegistry::global().unregister("core-test-expr");
}

}  // namespace
}  // namespace anor::core
