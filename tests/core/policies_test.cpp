#include "core/policies.hpp"

#include <gtest/gtest.h>

namespace anor::core {
namespace {

TEST(Policies, Names) {
  EXPECT_EQ(to_string(PolicyKind::kUniform), "uniform");
  EXPECT_EQ(to_string(PolicyKind::kCharacterized), "characterized");
  EXPECT_EQ(to_string(PolicyKind::kMisclassified), "misclassified");
  EXPECT_EQ(to_string(PolicyKind::kAdjusted), "adjusted");
}

TEST(Policies, UniformUsesEvenPowerNoFeedback) {
  cluster::EmulationConfig config;
  apply_policy(config, PolicyKind::kUniform);
  EXPECT_EQ(config.manager.budgeter, budget::BudgeterKind::kEvenPower);
  EXPECT_FALSE(config.manager.accept_model_updates);
  EXPECT_FALSE(config.endpoint.feedback_enabled);
}

TEST(Policies, CharacterizedUsesEvenSlowdownNoFeedback) {
  cluster::EmulationConfig config;
  apply_policy(config, PolicyKind::kCharacterized);
  EXPECT_EQ(config.manager.budgeter, budget::BudgeterKind::kEvenSlowdown);
  EXPECT_FALSE(config.endpoint.feedback_enabled);
}

TEST(Policies, AdjustedEnablesFullFeedbackPath) {
  cluster::EmulationConfig config;
  apply_policy(config, PolicyKind::kAdjusted);
  EXPECT_EQ(config.manager.budgeter, budget::BudgeterKind::kEvenSlowdown);
  EXPECT_TRUE(config.manager.accept_model_updates);
  EXPECT_TRUE(config.endpoint.feedback_enabled);
}

TEST(Policies, MisclassificationExpectation) {
  EXPECT_FALSE(expects_misclassification(PolicyKind::kUniform));
  EXPECT_FALSE(expects_misclassification(PolicyKind::kCharacterized));
  EXPECT_TRUE(expects_misclassification(PolicyKind::kMisclassified));
  EXPECT_TRUE(expects_misclassification(PolicyKind::kAdjusted));
}

}  // namespace
}  // namespace anor::core
