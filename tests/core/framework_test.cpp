#include "core/framework.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace anor::core {
namespace {

workload::Schedule tiny_schedule() {
  workload::Schedule schedule;
  workload::JobRequest request;
  request.job_id = 0;
  request.type_name = "is.D.x";
  request.submit_time_s = 0.0;
  request.nodes = 1;
  schedule.jobs.push_back(request);
  schedule.duration_s = 1.0;
  return schedule;
}

TEST(ConstantTargets, UniformGrid) {
  const auto targets = constant_targets(1000.0, 20.0, 4.0);
  EXPECT_EQ(targets.size(), 6u);
  for (double v : targets.values()) EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(Fig9Targets, RangeMatchesCommittedFlexibility) {
  const auto bid = fig9_bid();
  const auto targets = fig9_targets(3);
  ASSERT_GT(targets.size(), 800u);  // one per 4 s over an hour
  for (double v : targets.values()) {
    EXPECT_GE(v, bid.average_power_w - bid.reserve_w - 1e-9);
    EXPECT_LE(v, bid.average_power_w + bid.reserve_w + 1e-9);
  }
  // Lower edge matches the paper's 2.3 kW floor; the ceiling reflects the
  // calibrated job types' achievable draw (see fig9_bid's comment).
  EXPECT_DOUBLE_EQ(bid.average_power_w - bid.reserve_w, 2300.0);
  EXPECT_GE(bid.average_power_w + bid.reserve_w, 4200.0);
}

TEST(Fig9Targets, SeedDeterminism) {
  const auto a = fig9_targets(3);
  const auto b = fig9_targets(3);
  const auto c = fig9_targets(4);
  ASSERT_EQ(a.size(), b.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.values()[i], b.values()[i]);
    differs |= a.values()[i] != c.values()[i];
  }
  EXPECT_TRUE(differs);
}

TEST(Experiment, RejectsBothBudgetAndTargets) {
  Experiment experiment;
  experiment.schedule = tiny_schedule();
  experiment.static_budget_w = 1000.0;
  experiment.targets = constant_targets(1000.0, 10.0);
  EXPECT_THROW(make_cluster(experiment), util::ConfigError);
}

TEST(Experiment, RunsUnconstrained) {
  Experiment experiment;
  experiment.schedule = tiny_schedule();
  experiment.node_count = 2;
  experiment.base.controller.kernel.time_noise_sigma = 0.0;
  experiment.base.scheduler.power_aware_admission = false;
  const auto result = run_experiment(experiment);
  ASSERT_EQ(result.completed.size(), 1u);
  EXPECT_TRUE(result.target_w.empty());
}

TEST(Experiment, StaticBudgetBecomesConstantTargetSeries) {
  Experiment experiment;
  experiment.schedule = tiny_schedule();
  experiment.node_count = 2;
  experiment.static_budget_w = 2 * 160.0;
  experiment.base.controller.kernel.time_noise_sigma = 0.0;
  experiment.base.scheduler.power_aware_admission = false;
  const auto result = run_experiment(experiment);
  ASSERT_FALSE(result.target_w.empty());
  EXPECT_DOUBLE_EQ(result.target_w.values().front(), 320.0);
}

}  // namespace
}  // namespace anor::core
