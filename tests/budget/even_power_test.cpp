#include "budget/even_power.hpp"

#include <gtest/gtest.h>

#include "model/default_models.hpp"

namespace anor::budget {
namespace {

JobPowerProfile profile(int id, const char* type, int nodes) {
  JobPowerProfile p;
  p.job_id = id;
  p.nodes = nodes;
  p.model = model::model_for_class(type);
  return p;
}

TEST(EvenPower, EmptyJobsEmptyResult) {
  EvenPowerBudgeter budgeter;
  const BudgetResult result = budgeter.distribute({}, 1000.0);
  EXPECT_TRUE(result.node_cap_w.empty());
  EXPECT_DOUBLE_EQ(result.allocated_w, 0.0);
}

TEST(EvenPower, AllocatedMatchesBudgetInRange) {
  EvenPowerBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 2),
                                             profile(1, "sp.D.x", 2)};
  const double budget = 840.0;  // mid-range for 4 nodes
  const BudgetResult result = budgeter.distribute(jobs, budget);
  EXPECT_NEAR(result.allocated_w, budget, 2.0);
  EXPECT_GE(result.balance_point, 0.0);
  EXPECT_LE(result.balance_point, 1.0);
}

TEST(EvenPower, SameGammaForAllJobs) {
  EvenPowerBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 1),
                                             profile(1, "is.D.x", 1)};
  const BudgetResult result = budgeter.distribute(jobs, 450.0);
  const double gamma = result.balance_point;
  for (const auto& job : jobs) {
    const double expected =
        gamma * (job.model.p_max_w() - job.model.p_min_w()) + job.model.p_min_w();
    EXPECT_NEAR(result.node_cap_w.at(job.job_id), expected, 1e-9);
  }
}

TEST(EvenPower, BudgetBeyondMaxSaturatesAtPMax) {
  EvenPowerBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 2)};
  const BudgetResult result = budgeter.distribute(jobs, 10000.0);
  EXPECT_DOUBLE_EQ(result.node_cap_w.at(0), jobs[0].model.p_max_w());
  EXPECT_DOUBLE_EQ(result.balance_point, 1.0);
}

TEST(EvenPower, BudgetBelowMinPinsToPMin) {
  EvenPowerBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 2),
                                             profile(1, "lu.D.x", 2)};
  const BudgetResult result = budgeter.distribute(jobs, 100.0);
  EXPECT_DOUBLE_EQ(result.node_cap_w.at(0), jobs[0].model.p_min_w());
  EXPECT_DOUBLE_EQ(result.node_cap_w.at(1), jobs[1].model.p_min_w());
  EXPECT_DOUBLE_EQ(result.balance_point, 0.0);
}

TEST(EvenPower, NodeCountsWeightTheAllocation) {
  EvenPowerBudgeter budgeter;
  // One 4-node job and one 1-node job of the same type: same per-node
  // cap, 4x the power.
  const std::vector<JobPowerProfile> jobs = {profile(0, "cg.D.x", 4),
                                             profile(1, "cg.D.x", 1)};
  const BudgetResult result = budgeter.distribute(jobs, 5 * 200.0);
  EXPECT_NEAR(result.node_cap_w.at(0), result.node_cap_w.at(1), 1e-9);
}

TEST(EvenPower, UnevenSensitivityStillEvenPowerRatio) {
  // The defining behavior: EP (sensitive) and IS (insensitive) get caps at
  // the same fraction of their ranges, so EP suffers more slowdown.
  EvenPowerBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "ep.D.x", 1),
                                             profile(1, "is.D.x", 1)};
  const BudgetResult result = budgeter.distribute(jobs, 400.0);
  const double ep_slow = jobs[0].model.slowdown_at(result.node_cap_w.at(0));
  const double is_slow = jobs[1].model.slowdown_at(result.node_cap_w.at(1));
  EXPECT_GT(ep_slow, is_slow * 2.0);
}

}  // namespace
}  // namespace anor::budget
