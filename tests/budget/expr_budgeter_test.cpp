// Expression-DSL budgeter (budget/expr_budgeter.hpp): the envelope and
// over-commit contracts every budgeter honors, on scripted caps.
#include "budget/expr_budgeter.hpp"

#include <gtest/gtest.h>

#include "budget/budgeter.hpp"
#include "workload/job_type.hpp"

namespace anor::budget {
namespace {

std::vector<JobPowerProfile> profiles() {
  std::vector<JobPowerProfile> jobs;
  int id = 1;
  for (const workload::JobType& type : workload::nas_long_job_types()) {
    JobPowerProfile job;
    job.job_id = id++;
    job.nodes = 4;
    job.model = model::PowerPerfModel::from_job_type(type);
    jobs.push_back(job);
  }
  return jobs;
}

ExpressionBudgeter fair_share() {
  return ExpressionBudgeter("fair", DslExpr::parse("clamp(fair_w, p_min, p_max)"));
}

TEST(ExpressionBudgeter, CapsStayInsideEachJobsEnvelope) {
  const std::vector<JobPowerProfile> jobs = profiles();
  for (double budget : {total_min_power_w(jobs) * 0.5, total_min_power_w(jobs) * 1.2,
                        total_max_power_w(jobs) * 0.9, total_max_power_w(jobs) * 2.0}) {
    const BudgetResult result = fair_share().distribute(jobs, budget);
    ASSERT_EQ(result.node_cap_w.size(), jobs.size());
    for (const JobPowerProfile& job : jobs) {
      const double cap = result.node_cap_w.at(job.job_id);
      EXPECT_GE(cap, job.model.p_min_w() - 1e-9);
      EXPECT_LE(cap, job.model.p_max_w() + 1e-9);
    }
  }
}

TEST(ExpressionBudgeter, NeverOverCommitsAFeasibleBudget) {
  const std::vector<JobPowerProfile> jobs = profiles();
  const double lo = total_min_power_w(jobs);
  const double hi = total_max_power_w(jobs);
  for (double frac : {0.2, 0.5, 0.8, 1.0}) {
    const double budget = lo + frac * (hi - lo);
    // A deliberately greedy expression: ask for p_max everywhere.
    const ExpressionBudgeter greedy("greedy", DslExpr::parse("p_max"));
    const BudgetResult result = greedy.distribute(jobs, budget);
    EXPECT_LE(result.allocated_w, budget + 1e-6) << "budget " << budget;
  }
}

TEST(ExpressionBudgeter, InfeasibleBudgetSaturatesAtTheFloor) {
  const std::vector<JobPowerProfile> jobs = profiles();
  const BudgetResult result = fair_share().distribute(jobs, 1.0);
  for (const JobPowerProfile& job : jobs) {
    EXPECT_DOUBLE_EQ(result.node_cap_w.at(job.job_id), job.model.p_min_w());
  }
  EXPECT_DOUBLE_EQ(result.balance_point, 0.0);
}

TEST(ExpressionBudgeter, DegenerateExpressionDegradesToTheFloorCap) {
  const std::vector<JobPowerProfile> jobs = profiles();
  // 1/0 is totalized to 0 inside the DSL; 0 then clamps to p_min.
  const ExpressionBudgeter broken("broken", DslExpr::parse("1 / 0"));
  const BudgetResult result = broken.distribute(jobs, 1e9);
  for (const JobPowerProfile& job : jobs) {
    EXPECT_DOUBLE_EQ(result.node_cap_w.at(job.job_id), job.model.p_min_w());
  }
}

TEST(ExpressionBudgeter, RepeatedDistributionIsBitIdentical) {
  const std::vector<JobPowerProfile> jobs = profiles();
  const BudgetResult a = fair_share().distribute(jobs, 2000.0);
  const BudgetResult b = fair_share().distribute(jobs, 2000.0);
  ASSERT_EQ(a.node_cap_w.size(), b.node_cap_w.size());
  for (const auto& [id, cap] : a.node_cap_w) EXPECT_EQ(cap, b.node_cap_w.at(id));
  EXPECT_EQ(a.allocated_w, b.allocated_w);
  EXPECT_EQ(a.balance_point, b.balance_point);
}

TEST(ExpressionBudgeter, EmptyJobSetIsANoop) {
  const BudgetResult result = fair_share().distribute({}, 1000.0);
  EXPECT_TRUE(result.node_cap_w.empty());
  EXPECT_DOUBLE_EQ(result.allocated_w, 0.0);
}

}  // namespace
}  // namespace anor::budget
