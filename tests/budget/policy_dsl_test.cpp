// Expression-DSL parser/evaluator (budget/policy_dsl.hpp).
#include "budget/policy_dsl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace anor::budget {
namespace {

DslContext context() {
  DslContext ctx;
  ctx.model = nullptr;
  ctx.nodes = 4.0;
  ctx.jobs = 3.0;
  ctx.budget_w = 1200.0;
  ctx.total_nodes = 8.0;
  ctx.fair_w = 150.0;
  return ctx;
}

double eval(const std::string& source) {
  return DslExpr::parse(source).eval(context());
}

TEST(PolicyDsl, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(eval("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(eval("10 - 4 - 3"), 3.0);  // left-assoc
  EXPECT_DOUBLE_EQ(eval("2 ^ 3 ^ 2"), 512.0);  // right-assoc
  EXPECT_DOUBLE_EQ(eval("-2 ^ 2"), -4.0);      // unary minus binds looser than ^
  EXPECT_DOUBLE_EQ(eval("6 / 3 / 2"), 1.0);
}

TEST(PolicyDsl, VariablesReadTheContext) {
  EXPECT_DOUBLE_EQ(eval("nodes"), 4.0);
  EXPECT_DOUBLE_EQ(eval("jobs"), 3.0);
  EXPECT_DOUBLE_EQ(eval("budget_w / total_nodes"), 150.0);
  EXPECT_DOUBLE_EQ(eval("fair_w * nodes"), 600.0);
}

TEST(PolicyDsl, Functions) {
  EXPECT_DOUBLE_EQ(eval("min(3, 2)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("max(3, 2)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("clamp(5, 1, 3)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("clamp(0, 1, 3)"), 1.0);
  EXPECT_DOUBLE_EQ(eval("clamp(2, 1, 3)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("abs(0 - 4)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("sqrt(9)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("ceil(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("pow(2, 10)"), 1024.0);
}

TEST(PolicyDsl, DomainErrorsAreTotal) {
  // The evaluator must never produce NaN/Inf from well-formed programs:
  // division and sqrt are totalized to 0 on domain errors.
  EXPECT_DOUBLE_EQ(eval("1 / 0"), 0.0);
  EXPECT_DOUBLE_EQ(eval("sqrt(0 - 1)"), 0.0);
  EXPECT_DOUBLE_EQ(eval("pow(10, 400)"), 0.0);  // overflow totalizes to 0 too
  EXPECT_DOUBLE_EQ(eval("2 ^ -1"), 0.5);        // '-' allowed in the exponent
}

TEST(PolicyDsl, ParseErrorsNamePositionAndCandidates) {
  EXPECT_THROW(DslExpr::parse(""), util::ConfigError);
  EXPECT_THROW(DslExpr::parse("1 +"), util::ConfigError);
  EXPECT_THROW(DslExpr::parse("(1 + 2"), util::ConfigError);
  EXPECT_THROW(DslExpr::parse("min(1)"), util::ConfigError);   // arity
  EXPECT_THROW(DslExpr::parse("1 2"), util::ConfigError);      // trailing junk
  try {
    DslExpr::parse("boguses + 1");
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("boguses"), std::string::npos) << what;
    EXPECT_NE(what.find("p_min"), std::string::npos)
        << "error should list the known names: " << what;
  }
}

TEST(PolicyDsl, NoiseIsDetectedStatically) {
  EXPECT_FALSE(DslExpr::parse("p_min + 1").uses_noise());
  EXPECT_TRUE(DslExpr::parse("p_min + noise()").uses_noise());
}

TEST(PolicyDsl, NoiseActuallyVaries) {
  // noise() exists so the admission harness has something real to catch.
  const DslExpr expr = DslExpr::parse("noise()");
  const double a = expr.eval(context());
  const double b = expr.eval(context());
  EXPECT_NE(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
}

TEST(PolicyDsl, SourceHashIsStableAndSourceSensitive) {
  const std::string src = "clamp(budget_w / total_nodes, p_min, p_max)";
  EXPECT_EQ(dsl_source_hash(src), dsl_source_hash(src));
  EXPECT_NE(dsl_source_hash(src), dsl_source_hash(src + " "));
  EXPECT_NE(dsl_source_hash("p_min"), dsl_source_hash("p_max"));
}

TEST(PolicyDsl, SourceIsPreserved) {
  const std::string src = "max(p_min, fair_w)";
  EXPECT_EQ(DslExpr::parse(src).source(), src);
}

}  // namespace
}  // namespace anor::budget
