// Property sweeps over both budgeters: for arbitrary job mixes and any
// budget, an allocation must (a) keep every cap inside the job's feasible
// range, (b) sum to the budget whenever the budget is inside the mix's
// envelope, (c) saturate at the envelope edges, and (d) respond
// monotonically to budget changes.
#include <gtest/gtest.h>

#include <tuple>

#include "budget/budgeter.hpp"
#include "model/default_models.hpp"
#include "util/rng.hpp"
#include "workload/job_type.hpp"

namespace anor::budget {
namespace {

std::vector<JobPowerProfile> random_mix(util::Rng& rng, int job_count) {
  const auto& types = workload::nas_job_types();
  std::vector<JobPowerProfile> jobs;
  for (int i = 0; i < job_count; ++i) {
    JobPowerProfile profile;
    profile.job_id = i;
    profile.nodes = static_cast<int>(rng.uniform_int(1, 8));
    profile.model = model::PowerPerfModel::from_job_type(
        types[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(types.size()) - 1))]);
    jobs.push_back(std::move(profile));
  }
  return jobs;
}

using Param = std::tuple<BudgeterKind, int /*jobs*/, std::uint64_t /*seed*/>;

class BudgeterProperty : public ::testing::TestWithParam<Param> {};

TEST_P(BudgeterProperty, AllocationInvariants) {
  const auto [kind, job_count, seed] = GetParam();
  util::Rng rng(seed);
  const auto jobs = random_mix(rng, job_count);
  const auto budgeter = make_budgeter(kind);
  const double min_w = total_min_power_w(jobs);
  const double max_w = total_max_power_w(jobs);

  double previous_allocated = -1.0;
  for (double frac : {-0.2, 0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.3}) {
    const double budget = min_w + frac * (max_w - min_w);
    const BudgetResult result = budgeter->distribute(jobs, budget);

    // (a) every job got a cap inside its feasible range.
    ASSERT_EQ(result.node_cap_w.size(), jobs.size());
    for (const auto& job : jobs) {
      const double cap = result.node_cap_w.at(job.job_id);
      EXPECT_GE(cap, job.model.p_min_w() - 1e-6);
      EXPECT_LE(cap, job.model.p_max_w() + 1e-6);
    }

    // (b) inside the envelope the budget is used (within solver tolerance).
    if (frac >= 0.1 && frac <= 0.9) {
      EXPECT_NEAR(result.allocated_w, budget, std::max(2.0, budget * 0.002))
          << "frac=" << frac;
    }
    // (c) outside it the allocation saturates at the envelope.
    if (frac <= 0.0) EXPECT_NEAR(result.allocated_w, min_w, 1e-6);
    if (frac >= 1.0) EXPECT_NEAR(result.allocated_w, max_w, 1e-6);

    // (d) total allocation is monotone in the budget.
    EXPECT_GE(result.allocated_w, previous_allocated - 1e-6);
    previous_allocated = result.allocated_w;
  }
}

TEST_P(BudgeterProperty, PerJobCapsMonotoneInBudget) {
  const auto [kind, job_count, seed] = GetParam();
  util::Rng rng(seed + 1000);
  const auto jobs = random_mix(rng, job_count);
  const auto budgeter = make_budgeter(kind);
  const double min_w = total_min_power_w(jobs);
  const double max_w = total_max_power_w(jobs);

  std::map<int, double> previous;
  for (double frac = 0.0; frac <= 1.0; frac += 0.1) {
    const BudgetResult result =
        budgeter->distribute(jobs, min_w + frac * (max_w - min_w));
    for (const auto& [id, cap] : result.node_cap_w) {
      if (previous.count(id) != 0) {
        EXPECT_GE(cap, previous[id] - 0.5) << "job " << id << " frac " << frac;
      }
      previous[id] = cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BudgeterProperty,
    ::testing::Combine(::testing::Values(BudgeterKind::kEvenPower,
                                         BudgeterKind::kEvenSlowdown),
                       ::testing::Values(1, 3, 8, 20),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return to_string(std::get<0>(info.param)) == "even-power"
                 ? "even_power_j" + std::to_string(std::get<1>(info.param)) + "_s" +
                       std::to_string(std::get<2>(info.param))
                 : "even_slowdown_j" + std::to_string(std::get<1>(info.param)) + "_s" +
                       std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace anor::budget
