#include "budget/even_slowdown.hpp"

#include <gtest/gtest.h>

#include "budget/even_power.hpp"
#include "model/default_models.hpp"
#include "util/shard_workers.hpp"

namespace anor::budget {
namespace {

JobPowerProfile profile(int id, const char* type, int nodes) {
  JobPowerProfile p;
  p.job_id = id;
  p.nodes = nodes;
  p.model = model::model_for_class(type);
  return p;
}

TEST(EvenSlowdown, EmptyJobsEmptyResult) {
  EvenSlowdownBudgeter budgeter;
  EXPECT_TRUE(budgeter.distribute({}, 1000.0).node_cap_w.empty());
}

TEST(EvenSlowdown, UsesFullBudgetInRange) {
  EvenSlowdownBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 2),
                                             profile(1, "sp.D.x", 2)};
  const BudgetResult result = budgeter.distribute(jobs, 840.0);
  EXPECT_NEAR(result.allocated_w, 840.0, 3.0);
}

TEST(EvenSlowdown, EqualExpectedSlowdownAcrossJobs) {
  EvenSlowdownBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 1),
                                             profile(1, "ft.D.x", 1),
                                             profile(2, "cg.D.x", 1)};
  const BudgetResult result = budgeter.distribute(jobs, 3 * 190.0);
  const double s = result.balance_point;
  EXPECT_GT(s, 0.0);
  for (const auto& job : jobs) {
    EXPECT_NEAR(job.model.slowdown_at(result.node_cap_w.at(job.job_id)), s, 0.02)
        << job.job_id;
  }
}

TEST(EvenSlowdown, InsensitiveJobLevelsOffAtFloor) {
  // Deep budget cut: IS cannot slow down enough, so it pins at p_min and
  // the sensitive job keeps more power (the Fig. 4 level-off).
  EvenSlowdownBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "ep.D.x", 1),
                                             profile(1, "is.D.x", 1)};
  const BudgetResult result = budgeter.distribute(jobs, 330.0);
  EXPECT_NEAR(result.node_cap_w.at(1), jobs[1].model.p_min_w(), 1.0);
  EXPECT_GT(result.node_cap_w.at(0), jobs[0].model.p_min_w() + 20.0);
}

TEST(EvenSlowdown, SensitiveJobGetsMorePowerThanEvenPower) {
  // The motivating comparison: under the same budget the even-slowdown
  // policy steers power toward the power-sensitive job.
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 2),
                                             profile(1, "sp.D.x", 2)};
  const BudgetResult aware = EvenSlowdownBudgeter().distribute(jobs, 840.0);
  const BudgetResult agnostic = EvenPowerBudgeter().distribute(jobs, 840.0);
  EXPECT_GT(aware.node_cap_w.at(0), agnostic.node_cap_w.at(0));
  // And the worst-case slowdown improves.
  const double aware_worst =
      std::max(jobs[0].model.slowdown_at(aware.node_cap_w.at(0)),
               jobs[1].model.slowdown_at(aware.node_cap_w.at(1)));
  const double agnostic_worst =
      std::max(jobs[0].model.slowdown_at(agnostic.node_cap_w.at(0)),
               jobs[1].model.slowdown_at(agnostic.node_cap_w.at(1)));
  EXPECT_LT(aware_worst, agnostic_worst);
}

TEST(EvenSlowdown, BudgetAboveMaxGivesZeroSlowdown) {
  EvenSlowdownBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "lu.D.x", 2)};
  const BudgetResult result = budgeter.distribute(jobs, 5000.0);
  EXPECT_DOUBLE_EQ(result.balance_point, 0.0);
  EXPECT_DOUBLE_EQ(result.node_cap_w.at(0), jobs[0].model.p_max_w());
}

TEST(EvenSlowdown, BudgetBelowMinPinsEveryoneToFloor) {
  EvenSlowdownBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "lu.D.x", 2),
                                             profile(1, "mg.D.x", 1)};
  const BudgetResult result = budgeter.distribute(jobs, 10.0);
  EXPECT_DOUBLE_EQ(result.node_cap_w.at(0), jobs[0].model.p_min_w());
  EXPECT_DOUBLE_EQ(result.node_cap_w.at(1), jobs[1].model.p_min_w());
}

TEST(EvenSlowdown, IdenticalJobsGetIdenticalCaps) {
  EvenSlowdownBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "sp.D.x", 2),
                                             profile(1, "sp.D.x", 2)};
  const BudgetResult result = budgeter.distribute(jobs, 840.0);
  EXPECT_NEAR(result.node_cap_w.at(0), result.node_cap_w.at(1), 1e-6);
}

TEST(EvenSlowdown, MonotoneInBudget) {
  EvenSlowdownBudgeter budgeter;
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 2),
                                             profile(1, "is.D.x", 1),
                                             profile(2, "ft.D.x", 2)};
  double prev_s = 1e9;
  for (double budget = 700.0; budget <= 1400.0; budget += 100.0) {
    const BudgetResult result = budgeter.distribute(jobs, budget);
    EXPECT_LE(result.balance_point, prev_s + 1e-9) << budget;
    prev_s = result.balance_point;
  }
}

TEST(EvenSlowdown, ShardedSolveIsBitIdenticalToSerial) {
  // The parallel solve (sharded group building, concurrent memo warming,
  // speculative bisection probes) claims bit-identical results to the
  // serial path.  Hold it to that: same jobs, same budgets, one budgeter
  // with a worker team attached, one without — every cap and every balance
  // point must be EXACTLY equal, not merely close.  The job list is large
  // enough (> 4096) to cross the sharded-grouping threshold, with a
  // ragged tail block and an interleaved mix of models so block-local rep
  // tables come out permuted relative to the serial scan.
  const char* const kTypes[] = {"bt.D.x", "sp.D.x", "ft.D.x", "cg.D.x",
                                "ep.D.x", "is.D.x", "lu.D.x"};
  std::vector<JobPowerProfile> jobs;
  for (int i = 0; i < 5003; ++i) {
    jobs.push_back(profile(i, kTypes[i % std::size(kTypes)], 1 + i % 4));
  }

  EvenSlowdownBudgeter serial;
  EvenSlowdownBudgeter sharded;
  util::ShardWorkers team(4);
  sharded.set_shard_workers(&team);

  const double max_total = total_max_power_w(jobs);
  for (double frac : {0.95, 0.7, 0.5, 0.3}) {
    const double budget = frac * max_total;
    const BudgetResult a = serial.distribute(jobs, budget);
    const BudgetResult b = sharded.distribute(jobs, budget);
    EXPECT_EQ(a.balance_point, b.balance_point) << "budget fraction " << frac;
    EXPECT_EQ(a.allocated_w, b.allocated_w) << "budget fraction " << frac;
    ASSERT_EQ(a.node_cap_w.size(), b.node_cap_w.size());
    for (const auto& [job_id, cap] : a.node_cap_w) {
      EXPECT_EQ(cap, b.node_cap_w.at(job_id)) << "job " << job_id;
    }
  }
}

TEST(TotalEnvelope, Helpers) {
  const std::vector<JobPowerProfile> jobs = {profile(0, "bt.D.x", 2),
                                             profile(1, "sp.D.x", 2)};
  EXPECT_GT(total_max_power_w(jobs), total_min_power_w(jobs));
  EXPECT_NEAR(total_min_power_w(jobs),
              2 * jobs[0].model.p_min_w() + 2 * jobs[1].model.p_min_w(), 1e-9);
}

TEST(BudgeterFactory, CreatesBothKinds) {
  EXPECT_EQ(make_budgeter(BudgeterKind::kEvenPower)->name(), "even-power");
  EXPECT_EQ(make_budgeter(BudgeterKind::kEvenSlowdown)->name(), "even-slowdown");
  EXPECT_EQ(to_string(BudgeterKind::kEvenPower), "even-power");
  EXPECT_EQ(to_string(BudgeterKind::kEvenSlowdown), "even-slowdown");
}

}  // namespace
}  // namespace anor::budget
