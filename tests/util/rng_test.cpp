#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace anor::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ChildStreamsAreIndependentAndStable) {
  Rng parent(7);
  Rng c1 = parent.child("schedule");
  Rng c2 = parent.child("noise");
  Rng c1_again = Rng(7).child("schedule");
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(Rng(7).child("schedule").next_u64(), c2.next_u64());
}

TEST(Rng, IndexedChildrenDiffer) {
  Rng parent(7);
  EXPECT_NE(parent.child(std::uint64_t{0}).next_u64(),
            parent.child(std::uint64_t{1}).next_u64());
}

TEST(Rng, ChildDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.child("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalZeroSigmaReturnsMean) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.truncated_normal(1.0, 0.5, 0.5, 1.5);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 1.5);
  }
}

TEST(Rng, TruncatedNormalPathologicalBoundsClamp) {
  Rng rng(9);
  // Mean far outside the window: resampling fails, falls back to clamp.
  const double x = rng.truncated_normal(100.0, 0.001, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(x, 1.0);
  EXPECT_THROW(rng.truncated_normal(0.0, 1.0, 2.0, 1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    const std::size_t idx = rng.weighted_index(weights);
    ASSERT_LT(idx, 2u);
    if (idx == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / trials, 0.75, 0.03);
}

TEST(Rng, WeightedIndexErrors) {
  Rng rng(12);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Splitmix, IsDeterministicAndScrambles) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(HashTag, DistinguishesTags) {
  EXPECT_NE(hash_tag("alpha"), hash_tag("beta"));
  EXPECT_EQ(hash_tag("alpha"), hash_tag("alpha"));
}

}  // namespace
}  // namespace anor::util
