#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace anor::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPow2) {
  EXPECT_EQ(SpscRingBuffer<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRingBuffer<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRingBuffer<int>(8).capacity(), 8u);
}

TEST(SpscRing, PushPopFifo) {
  SpscRingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_EQ(ring.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRingBuffer<int> ring(2);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_FALSE(ring.push(3));
  EXPECT_EQ(ring.pop().value(), 1);
  EXPECT_TRUE(ring.push(3));
}

TEST(SpscRing, WrapsAround) {
  SpscRingBuffer<int> ring(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.push(i));
    EXPECT_EQ(ring.pop().value(), i);
  }
}

TEST(SpscRing, MoveOnlyFriendly) {
  SpscRingBuffer<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.push(std::make_unique<int>(42)));
  auto v = ring.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRingBuffer<int> ring(64);
  constexpr int kCount = 100000;
  std::vector<int> received;
  received.reserve(kCount);

  std::thread producer([&ring] {
    for (int i = 0; i < kCount;) {
      if (ring.push(i)) ++i;
    }
  });
  std::thread consumer([&ring, &received] {
    while (received.size() < kCount) {
      if (auto v = ring.pop()) received.push_back(*v);
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace anor::util
