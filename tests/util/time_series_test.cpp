#include "util/time_series.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace anor::util {
namespace {

TimeSeries ramp() {
  TimeSeries series;
  series.add(0.0, 10.0);
  series.add(1.0, 20.0);
  series.add(2.0, 30.0);
  return series;
}

TEST(TimeSeries, RejectsOutOfOrderTimestamps) {
  TimeSeries series;
  series.add(1.0, 1.0);
  EXPECT_THROW(series.add(0.5, 2.0), std::invalid_argument);
  EXPECT_NO_THROW(series.add(1.0, 3.0));  // equal timestamps allowed
}

TEST(TimeSeries, SampleAtZeroOrderHold) {
  const TimeSeries series = ramp();
  EXPECT_DOUBLE_EQ(series.sample_at(-1.0), 10.0);
  EXPECT_DOUBLE_EQ(series.sample_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(series.sample_at(0.5), 10.0);
  EXPECT_DOUBLE_EQ(series.sample_at(1.0), 20.0);
  EXPECT_DOUBLE_EQ(series.sample_at(1.99), 20.0);
  EXPECT_DOUBLE_EQ(series.sample_at(5.0), 30.0);
}

TEST(TimeSeries, SampleAtEmptyThrows) {
  TimeSeries series;
  EXPECT_THROW(series.sample_at(0.0), std::out_of_range);
}

TEST(TimeSeries, MeanAndClear) {
  TimeSeries series = ramp();
  EXPECT_DOUBLE_EQ(series.mean(), 20.0);
  series.clear();
  EXPECT_TRUE(series.empty());
  EXPECT_DOUBLE_EQ(series.mean(), 0.0);
}

TEST(TimeSeries, Resample) {
  const TimeSeries series = ramp();
  const TimeSeries grid = series.resample(0.0, 2.0, 0.5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.values()[0], 10.0);
  EXPECT_DOUBLE_EQ(grid.values()[1], 10.0);
  EXPECT_DOUBLE_EQ(grid.values()[2], 20.0);
  EXPECT_DOUBLE_EQ(grid.values()[4], 30.0);
  EXPECT_THROW(series.resample(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(TrackingError, PerfectTrackingIsZero) {
  TimeSeries measured = ramp();
  const auto stats = tracking_error(measured, measured, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.fraction_within_30, 1.0);
  EXPECT_EQ(stats.samples, 3u);
}

TEST(TrackingError, NormalizesByReserve) {
  TimeSeries target;
  target.add(0.0, 1000.0);
  TimeSeries measured;
  measured.add(0.0, 1010.0);  // 10 W off
  // Paper example: reserve 100 kW, 10 kW error -> 10 %.
  const auto stats = tracking_error(measured, target, 100.0);
  EXPECT_NEAR(stats.mean_error, 0.10, 1e-12);
  EXPECT_NEAR(stats.p90_error, 0.10, 1e-12);
}

TEST(TrackingError, FractionWithin30) {
  TimeSeries target;
  target.add(0.0, 0.0);
  TimeSeries measured;
  for (int i = 0; i < 10; ++i) {
    measured.add(static_cast<double>(i), i < 9 ? 10.0 : 100.0);
  }
  // Reserve 100 -> nine samples at 10 % error, one at 100 %.
  const auto stats = tracking_error(measured, target, 100.0);
  EXPECT_NEAR(stats.fraction_within_30, 0.9, 1e-12);
  EXPECT_NEAR(stats.max_error, 1.0, 1e-12);
}

TEST(TrackingError, RequiresPositiveReserve) {
  TimeSeries s = ramp();
  EXPECT_THROW(tracking_error(s, s, 0.0), std::invalid_argument);
}

TEST(TrackingError, EmptySeriesGiveZeroSamples) {
  TimeSeries empty;
  TimeSeries s = ramp();
  EXPECT_EQ(tracking_error(empty, s, 10.0).samples, 0u);
  EXPECT_EQ(tracking_error(s, empty, 10.0).samples, 0u);
}

}  // namespace
}  // namespace anor::util
