// ShardWorkers: the persistent team behind sharded stepping (DESIGN.md
// 6h).  These tests pin the rendezvous contract — every lane runs exactly
// once per dispatch, teams are reusable across many dispatches, slice()
// partitions any range exactly, and a lane's exception surfaces on the
// dispatching thread.
#include "util/shard_workers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace anor::util {
namespace {

TEST(ShardWorkers, RunsEveryLaneExactlyOnce) {
  ShardWorkers team(4);
  ASSERT_EQ(team.worker_count(), 4u);
  std::vector<std::atomic<int>> hits(4);
  team.run([&](std::size_t lane) { hits[lane].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ShardWorkers, SingleWorkerTeamStillDispatches) {
  ShardWorkers team(1);
  EXPECT_EQ(team.worker_count(), 1u);
  std::atomic<int> hits{0};
  team.run([&](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ShardWorkers, ReusableAcrossManyDispatches) {
  // The simulator dispatches thousands of times per run; the team must
  // rendezvous cleanly every time, including back-to-back dispatches that
  // race the workers' spin-then-park transition.
  ShardWorkers team(3);
  std::atomic<long> total{0};
  constexpr int kDispatches = 2000;
  for (int i = 0; i < kDispatches; ++i) {
    team.run([&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), static_cast<long>(kDispatches) * 3);
}

TEST(ShardWorkers, SliceCoversRangeDisjointlyInOrder) {
  // slice() is the determinism keystone: for every (count, parts) the
  // slices must tile [0, count) exactly, in lane order, with no overlap —
  // so a fixed-order merge of per-lane partials is independent of which
  // lane ran when.
  for (std::size_t count : {0u, 1u, 7u, 64u, 100u, 257u, 8192u}) {
    for (std::size_t parts : {1u, 2u, 3u, 4u, 8u, 13u}) {
      std::size_t expected_begin = 0;
      for (std::size_t part = 0; part < parts; ++part) {
        const ShardWorkers::Slice s = ShardWorkers::slice(count, parts, part);
        EXPECT_EQ(s.begin, expected_begin)
            << "count=" << count << " parts=" << parts << " part=" << part;
        EXPECT_GE(s.end, s.begin);
        EXPECT_LE(s.end, count);
        expected_begin = s.end;
      }
      EXPECT_EQ(expected_begin, count) << "count=" << count << " parts=" << parts;
    }
  }
}

TEST(ShardWorkers, SliceUsesCeilBlocks) {
  // slice() hands out ceil(count/parts)-sized blocks with short or empty
  // trailing slices — the same fixed boundaries parallel_for chunks by,
  // so a team and a pool partition identically.  Every slice is bounded
  // by the block length, and once a slice comes up empty all later ones
  // are empty too.
  for (std::size_t count : {100u, 101u, 1023u}) {
    for (std::size_t parts : {3u, 7u, 16u}) {
      const std::size_t block = (count + parts - 1) / parts;
      bool seen_empty = false;
      for (std::size_t part = 0; part < parts; ++part) {
        const ShardWorkers::Slice s = ShardWorkers::slice(count, parts, part);
        EXPECT_LE(s.end - s.begin, block) << "count=" << count << " parts=" << parts;
        if (seen_empty) EXPECT_TRUE(s.empty());
        seen_empty = seen_empty || s.empty();
      }
    }
  }
}

TEST(ShardWorkers, ParallelSumMatchesSerial) {
  std::vector<double> values(10001);
  std::iota(values.begin(), values.end(), 1.0);
  double serial = 0.0;
  for (double v : values) serial += v;

  ShardWorkers team(4);
  const std::size_t lanes = team.worker_count();
  std::vector<double> partial(lanes, 0.0);
  team.run([&](std::size_t lane) {
    const ShardWorkers::Slice s = ShardWorkers::slice(values.size(), lanes, lane);
    double acc = 0.0;
    for (std::size_t i = s.begin; i < s.end; ++i) acc += values[i];
    partial[lane] = acc;
  });
  // Fixed lane-order merge: bitwise equal to the serial left-to-right sum
  // because each slice is a contiguous run of the same elements.
  double merged = 0.0;
  for (double p : partial) merged += p;
  EXPECT_EQ(merged, serial);
}

TEST(ShardWorkers, ParallelForVisitsEveryIndexOnce) {
  ShardWorkers team(4);
  std::vector<std::atomic<int>> hits(1001);
  team.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Zero-count dispatch is a no-op (and must not deadlock the team).
  team.parallel_for(0, [&](std::size_t) { FAIL() << "body ran for count 0"; });
}

TEST(ShardWorkers, ParallelForAssignsLaneOwnedSlices) {
  // Index i must run on the lane whose slice(count, lanes, lane) owns it —
  // the same fixed boundaries ThreadPool::parallel_for always chunked by.
  ShardWorkers team(3);
  const std::size_t count = 101;
  std::vector<int> owner(count, -1);
  team.parallel_for(count,
                    [&](std::size_t i) { owner[i] = static_cast<int>(i); });
  for (std::size_t lane = 0; lane < team.worker_count(); ++lane) {
    const ShardWorkers::Slice s = ShardWorkers::slice(count, team.worker_count(), lane);
    for (std::size_t i = s.begin; i < s.end; ++i) {
      EXPECT_EQ(owner[i], static_cast<int>(i));
    }
  }
}

TEST(ShardWorkers, ParallelForRethrowsLowestLaneError) {
  ShardWorkers team(4);
  // Two lanes fail; the lowest lane's exception wins deterministically.
  try {
    team.parallel_for(8, [&](std::size_t i) {
      const ShardWorkers::Slice low = ShardWorkers::slice(8, 4, 1);
      const ShardWorkers::Slice high = ShardWorkers::slice(8, 4, 3);
      if (i == low.begin) throw std::runtime_error("low lane");
      if (i == high.begin) throw std::runtime_error("high lane");
    });
    FAIL() << "expected a rethrown lane error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "low lane");
  }
  // Still usable afterwards.
  std::atomic<int> hits{0};
  team.parallel_for(4, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ShardWorkers, LaneExceptionRethrownOnCaller) {
  ShardWorkers team(4);
  EXPECT_THROW(
      team.run([&](std::size_t lane) {
        if (lane == 2) throw std::runtime_error("lane 2 failed");
      }),
      std::runtime_error);
  // The team must still be usable after a failed dispatch.
  std::atomic<int> hits{0};
  team.run([&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

}  // namespace
}  // namespace anor::util
