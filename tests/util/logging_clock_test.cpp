#include <gtest/gtest.h>

#include <sstream>

#include "util/clock.hpp"
#include "util/logging.hpp"

namespace anor::util {
namespace {

struct LoggerGuard {
  ~LoggerGuard() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kWarn);
  }
};

TEST(Logger, LevelGatesOutput) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("test", "hidden");
  log_info("test", "hidden too");
  log_warn("test", "visible");
  log_error("test", "also visible");
  const std::string text = sink.str();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("[WARN] test: visible"), std::string::npos);
  EXPECT_NE(text.find("[ERROR] test: also visible"), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kOff);
  log_error("test", "nope");
  EXPECT_TRUE(sink.str().empty());
}

TEST(Logger, TraceLevelShowsAll) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kTrace);
  log_trace("t", "a");
  log_debug("t", "b");
  EXPECT_NE(sink.str().find("[TRACE]"), std::string::npos);
  EXPECT_NE(sink.str().find("[DEBUG]"), std::string::npos);
}

TEST(Logger, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST(VirtualClock, StartsAtZeroOrGivenTime) {
  EXPECT_DOUBLE_EQ(VirtualClock().now(), 0.0);
  EXPECT_DOUBLE_EQ(VirtualClock(12.5).now(), 12.5);
}

TEST(VirtualClock, AdvanceIsMonotone) {
  VirtualClock clock;
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance(-10.0);  // ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(1.0);  // backwards: ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

}  // namespace
}  // namespace anor::util
