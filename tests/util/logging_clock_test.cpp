#include <gtest/gtest.h>

#include <sstream>

#include "util/clock.hpp"
#include "util/logging.hpp"

namespace anor::util {
namespace {

struct LoggerGuard {
  ~LoggerGuard() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kWarn);
    Logger::instance().clear_component_levels();
    Logger::instance().attach_clock(nullptr);
  }
};

TEST(Logger, LevelGatesOutput) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("test", "hidden");
  log_info("test", "hidden too");
  log_warn("test", "visible");
  log_error("test", "also visible");
  const std::string text = sink.str();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("[WARN "), std::string::npos);
  EXPECT_NE(text.find("] test: visible"), std::string::npos);
  EXPECT_NE(text.find("[ERROR "), std::string::npos);
  EXPECT_NE(text.find("] test: also visible"), std::string::npos);
}

TEST(Logger, LinesCarryWallTimestamp) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);
  log_warn("ts", "stamped");
  const std::string text = sink.str();
  // "[WARN YYYY-MM-DD HH:MM:SS.mmm] ts: stamped"
  ASSERT_GE(text.size(), std::string("[WARN 2026-01-01 00:00:00.000] ").size());
  EXPECT_EQ(text.substr(0, 6), "[WARN ");
  EXPECT_EQ(text[10], '-');
  EXPECT_EQ(text[13], '-');
  EXPECT_EQ(text[16], ' ');
  EXPECT_EQ(text[19], ':');
  EXPECT_EQ(text[22], ':');
  EXPECT_EQ(text[25], '.');
  EXPECT_EQ(text.find("vt="), std::string::npos);  // no clock attached
}

TEST(Logger, VirtualTimestampAppearsWhenClockAttached) {
  LoggerGuard guard;
  std::ostringstream sink;
  VirtualClock clock;
  clock.advance(3.25);
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().attach_clock(&clock);
  log_warn("vtc", "in virtual time");
  EXPECT_NE(sink.str().find(" vt=3.250] vtc: in virtual time"), std::string::npos);

  Logger::instance().attach_clock(nullptr);
  sink.str("");
  log_warn("vtc", "back to wall time");
  EXPECT_EQ(sink.str().find("vt="), std::string::npos);
}

TEST(Logger, ComponentOverrideIsMoreVerbose) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_component_level("noisy", LogLevel::kTrace);
  log_debug("noisy", "override shows me");
  log_debug("other", "global hides me");
  const std::string text = sink.str();
  EXPECT_NE(text.find("noisy: override shows me"), std::string::npos);
  EXPECT_EQ(text.find("global hides me"), std::string::npos);

  Logger::instance().clear_component_levels();
  sink.str("");
  log_debug("noisy", "gone after clear");
  EXPECT_TRUE(sink.str().empty());
}

TEST(Logger, ComponentOverrideCanSilence) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kTrace);
  Logger::instance().set_component_level("chatty", LogLevel::kOff);
  log_error("chatty", "silenced");
  log_error("other", "still here");
  const std::string text = sink.str();
  EXPECT_EQ(text.find("silenced"), std::string::npos);
  EXPECT_NE(text.find("other: still here"), std::string::npos);
}

TEST(Logger, EnabledHonoursComponentOverrides) {
  LoggerGuard guard;
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_component_level("net", LogLevel::kDebug);
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kDebug));  // pre-filter: some component wants it
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kDebug, "net"));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug, "sim"));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kTrace));
}

TEST(Logger, ConfigureFromSpec) {
  LoggerGuard guard;
  ASSERT_TRUE(Logger::instance().configure_from_spec("debug, net=error ,sim=off"));
  EXPECT_EQ(Logger::instance().level(), LogLevel::kDebug);
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kDebug, "cluster"));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kWarn, "net"));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError, "net"));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kError, "sim"));
}

TEST(Logger, MalformedSpecIsRejectedAtomically) {
  LoggerGuard guard;
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().configure_from_spec("debug,net=bogus"));
  EXPECT_EQ(Logger::instance().level(), LogLevel::kWarn);  // global token not applied either
  EXPECT_FALSE(Logger::instance().configure_from_spec("=debug"));
  EXPECT_FALSE(Logger::instance().configure_from_spec("loud"));
}

TEST(Logger, OffSilencesEverything) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kOff);
  log_error("test", "nope");
  EXPECT_TRUE(sink.str().empty());
}

TEST(Logger, TraceLevelShowsAll) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kTrace);
  log_trace("t", "a");
  log_debug("t", "b");
  EXPECT_NE(sink.str().find("[TRACE"), std::string::npos);
  EXPECT_NE(sink.str().find("[DEBUG"), std::string::npos);
}

TEST(Logger, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Logger, ParseLevel) {
  EXPECT_EQ(parse_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_level(" Warn "), LogLevel::kWarn);
  EXPECT_EQ(parse_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_level("loud"), std::nullopt);
  EXPECT_EQ(parse_level(""), std::nullopt);
}

TEST(VirtualClock, StartsAtZeroOrGivenTime) {
  EXPECT_DOUBLE_EQ(VirtualClock().now(), 0.0);
  EXPECT_DOUBLE_EQ(VirtualClock(12.5).now(), 12.5);
}

TEST(VirtualClock, AdvanceIsMonotone) {
  VirtualClock clock;
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance(-10.0);  // ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(1.0);  // backwards: ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

}  // namespace
}  // namespace anor::util
