#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace anor::util {
namespace {

TEST(Json, ScalarTypes) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json(JsonArray{}).is_array());
  EXPECT_TRUE(Json(JsonObject{}).is_object());
}

TEST(Json, AccessorsThrowOnTypeMismatch) {
  const Json j(1.5);
  EXPECT_THROW(j.as_string(), ConfigError);
  EXPECT_THROW(j.as_bool(), ConfigError);
  EXPECT_THROW(j.as_array(), ConfigError);
  EXPECT_THROW(j.as_object(), ConfigError);
  EXPECT_THROW(Json("x").as_number(), ConfigError);
}

TEST(Json, ParsesScalars) {
  EXPECT_EQ(Json::parse("null"), Json(nullptr));
  EXPECT_EQ(Json::parse("true"), Json(true));
  EXPECT_EQ(Json::parse("false"), Json(false));
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"abc\"").as_string(), "abc");
}

TEST(Json, ParsesNested) {
  const Json j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_TRUE(j.at("a").as_array()[2].at("b").as_bool());
  EXPECT_EQ(j.at("c").as_string(), "x");
}

TEST(Json, ParsesEscapes) {
  const Json j = Json::parse(R"("line\nquote\"back\\slashA")");
  EXPECT_EQ(j.as_string(), "line\nquote\"back\\slashA");
}

TEST(Json, ParsesUnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");     // e-acute
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac"); // euro sign
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(Json::parse(""), ConfigError);
  EXPECT_THROW(Json::parse("{"), ConfigError);
  EXPECT_THROW(Json::parse("[1,]"), ConfigError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ConfigError);
  EXPECT_THROW(Json::parse("tru"), ConfigError);
  EXPECT_THROW(Json::parse("1 2"), ConfigError);
  EXPECT_THROW(Json::parse("\"unterminated"), ConfigError);
  EXPECT_THROW(Json::parse("1..2"), ConfigError);
}

TEST(Json, RoundTripCompact) {
  const std::string text = R"({"arr":[1,2.5,null],"nested":{"k":false},"s":"v"})";
  const Json j = Json::parse(text);
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(Json, RoundTripPretty) {
  JsonObject obj;
  obj["x"] = Json(1.0);
  obj["y"] = Json(JsonArray{Json("a"), Json("b")});
  const Json j(std::move(obj));
  const Json reparsed = Json::parse(j.dump(2));
  EXPECT_EQ(reparsed, j);
}

TEST(Json, IntegersDumpWithoutDecimal) {
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, ObjectHelpers) {
  const Json j = Json::parse(R"({"a": 1, "s": "x", "b": true})");
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zz"));
  EXPECT_DOUBLE_EQ(j.number_or("a", 9.0), 1.0);
  EXPECT_DOUBLE_EQ(j.number_or("zz", 9.0), 9.0);
  EXPECT_EQ(j.string_or("s", "d"), "x");
  EXPECT_EQ(j.string_or("zz", "d"), "d");
  EXPECT_TRUE(j.bool_or("b", false));
  EXPECT_FALSE(j.bool_or("zz", false));
  EXPECT_THROW(j.at("zz"), ConfigError);
}

TEST(Json, AsIntRounds) {
  EXPECT_EQ(Json(2.6).as_int(), 3);
  EXPECT_EQ(Json(-2.6).as_int(), -3);
}

TEST(Json, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/anor_json_test.json";
  JsonObject obj;
  obj["power_w"] = Json(JsonArray{Json(100.0), Json(200.0)});
  save_json_file(path, Json(obj));
  const Json loaded = load_json_file(path);
  EXPECT_EQ(loaded.at("power_w").as_array().size(), 2u);
  std::remove(path.c_str());
}

TEST(Json, MissingFileThrows) {
  EXPECT_THROW(load_json_file("/nonexistent/path/x.json"), ConfigError);
}

}  // namespace
}  // namespace anor::util
