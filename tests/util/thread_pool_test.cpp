#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace anor::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ParallelForRunsEachChunkOnOneThread) {
  // parallel_for submits one contiguous chunk per worker, not one task per
  // index: with 2 workers and 8 items, [0,4) and [4,8) must each execute
  // entirely on a single thread.
  ThreadPool pool(2);
  std::array<std::thread::id, 8> ran_on;
  pool.parallel_for(8, [&ran_on](std::size_t i) { ran_on[i] = std::this_thread::get_id(); });
  for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(ran_on[i], ran_on[0]);
  for (std::size_t i = 5; i < 8; ++i) EXPECT_EQ(ran_on[i], ran_on[4]);
}

TEST(ThreadPool, ParallelForMoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RethrowsLowestIndexChunkError) {
  // Both chunks throw; the rethrown exception is the lowest-index chunk's,
  // independent of which worker finishes first.
  ThreadPool pool(2);
  try {
    pool.parallel_for(8, [](std::size_t i) {
      if (i == 0) throw std::runtime_error("low chunk");
      if (i == 4) throw std::runtime_error("high chunk");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "low chunk");
  }
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitFuturePropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForEachIndex, Convenience) {
  std::vector<std::atomic<int>> hits(16);
  parallel_for_each_index(16, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace anor::util
