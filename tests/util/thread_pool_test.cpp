#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace anor::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitFuturePropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForEachIndex, Convenience) {
  std::vector<std::atomic<int>> hits(16);
  parallel_for_each_index(16, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace anor::util
