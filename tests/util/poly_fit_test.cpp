#include "util/poly_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace anor::util {
namespace {

TEST(SolveLinearSystem, Identity) {
  const auto x = solve_linear_system({1, 0, 0, 1}, {3, 4}, 2);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear_system({0, 1, 1, 0}, {5, 7}, 2);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1, 2}, 2), NumericalError);
}

TEST(SolveLinearSystem, ShapeMismatchThrows) {
  EXPECT_THROW(solve_linear_system({1, 0, 0, 1}, {1}, 2), std::invalid_argument);
}

TEST(Polyfit, RecoversExactQuadratic) {
  // y = 2 + 3x - 0.5x^2
  std::vector<double> x;
  std::vector<double> y;
  for (double v = -3.0; v <= 3.0; v += 0.5) {
    x.push_back(v);
    y.push_back(2.0 + 3.0 * v - 0.5 * v * v);
  }
  const auto c = polyfit(x, y, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 2.0, 1e-9);
  EXPECT_NEAR(c[1], 3.0, 1e-9);
  EXPECT_NEAR(c[2], -0.5, 1e-9);
  EXPECT_NEAR(polyfit_r2(c, x, y), 1.0, 1e-12);
}

TEST(Polyfit, RecoversLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0};
  const std::vector<double> y = {1.0, 3.0, 5.0};
  const auto c = polyfit(x, y, 1);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
}

TEST(Polyfit, ExactlyDegreePlusOnePoints) {
  // 3 points determine a quadratic uniquely.
  const std::vector<double> x = {0.0, 1.0, 2.0};
  const std::vector<double> y = {1.0, 0.0, 3.0};
  const auto c = polyfit(x, y, 2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(polyval(c, x[i]), y[i], 1e-9);
  }
}

TEST(Polyfit, TooFewPointsThrows) {
  EXPECT_THROW(polyfit(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0, 2.0}, 2),
               std::invalid_argument);
}

TEST(Polyfit, SizeMismatchThrows) {
  EXPECT_THROW(polyfit(std::vector<double>{1.0, 2.0, 3.0}, std::vector<double>{1.0}, 1),
               std::invalid_argument);
}

TEST(Polyfit, DuplicateXIsSingular) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW(polyfit(x, y, 2), NumericalError);
}

TEST(Polyfit, NoiseRobustness) {
  Rng rng(99);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.0, 10.0);
    x.push_back(v);
    y.push_back(5.0 - 0.7 * v + 0.02 * v * v + rng.normal(0.0, 0.01));
  }
  const auto c = polyfit(x, y, 2);
  EXPECT_NEAR(c[0], 5.0, 0.05);
  EXPECT_NEAR(c[1], -0.7, 0.02);
  EXPECT_NEAR(c[2], 0.02, 0.003);
  EXPECT_GT(polyfit_r2(c, x, y), 0.999);
}

TEST(PolyfitWeighted, ZeroWeightIgnoresOutlier) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0, 1.5};
  std::vector<double> y = {0.0, 1.0, 2.0, 3.0, 100.0};  // last point is garbage
  std::vector<double> w = {1.0, 1.0, 1.0, 1.0, 0.0};
  const auto c = polyfit_weighted(x, y, w, 1);
  EXPECT_NEAR(c[0], 0.0, 1e-9);
  EXPECT_NEAR(c[1], 1.0, 1e-9);
}

TEST(Polyval, HornerOrder) {
  const std::vector<double> c = {1.0, 2.0, 3.0};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(polyval(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(c, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 17.0);
  EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
}

// Property sweep: fits of random quadratics are recovered across a range
// of coefficient magnitudes.
class PolyfitRecovery : public ::testing::TestWithParam<int> {};

TEST_P(PolyfitRecovery, RandomQuadraticRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const double a = rng.uniform(-5.0, 5.0);
  const double b = rng.uniform(-5.0, 5.0);
  const double c2 = rng.uniform(-0.5, 0.5);
  std::vector<double> x;
  std::vector<double> y;
  for (double v = -2.0; v <= 2.0; v += 0.25) {
    x.push_back(v);
    y.push_back(a + b * v + c2 * v * v);
  }
  const auto c = polyfit(x, y, 2);
  EXPECT_NEAR(c[0], a, 1e-8);
  EXPECT_NEAR(c[1], b, 1e-8);
  EXPECT_NEAR(c[2], c2, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyfitRecovery, ::testing::Range(1, 21));

}  // namespace
}  // namespace anor::util
