#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace anor::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 10.0 + i * 0.01;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats few;
  RunningStats many;
  for (int i = 0; i < 4; ++i) few.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 400; ++i) many.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(few.ci_half_width(), many.ci_half_width());
}

TEST(Percentile, ThrowsOnEmptyOrBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, Endpoints) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, LinearInterpolation) {
  // Sorted {10, 20}: the 25th percentile interpolates to 12.5.
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 25.0), 12.5);
}

TEST(Percentile, P90OfUniformRamp) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_NEAR(percentile(v, 90.0), 90.0, 1e-12);
}

TEST(MeanStddev, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean_of({}), std::invalid_argument);
  EXPECT_NEAR(stddev_of({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
}

TEST(FractionWithin, CountsAbsoluteValues) {
  EXPECT_DOUBLE_EQ(fraction_within({0.1, -0.2, 0.5, -0.6}, 0.3), 0.5);
  EXPECT_DOUBLE_EQ(fraction_within({}, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(fraction_within({0.3}, 0.3), 1.0);  // boundary inclusive
}

TEST(RSquared, PerfectFitIsOne) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const std::vector<double> mean_pred = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(y, mean_pred), 0.0);
}

TEST(RSquared, WorseThanMeanIsNegative) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const std::vector<double> bad = {3.0, 2.0, 1.0};
  EXPECT_LT(r_squared(y, bad), 0.0);
}

TEST(RSquared, MismatchThrows) {
  EXPECT_THROW(r_squared({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(r_squared({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace anor::util
