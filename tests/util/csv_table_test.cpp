#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace anor::util {
namespace {

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriteRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_header({"a", "b"});
  writer.write_row({"1", "x,y"});
  writer.write_row_values({1.5, 2.0});
  EXPECT_EQ(out.str(), "a,b\n1,\"x,y\"\n1.5,2\n");
}

TEST(Csv, ParseLineBasic) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParseLineQuoted) {
  const auto fields = parse_csv_line(R"(x,"a,b","q""q")");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "a,b");
  EXPECT_EQ(fields[2], "q\"q");
}

TEST(Csv, ParseLineEmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(Csv, ParseLineStripsCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(Csv, RoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"v,1", "plain", "q\"q"});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "v,1");
  EXPECT_EQ(rows[0][1], "plain");
  EXPECT_EQ(rows[0][2], "q\"q");
}

TEST(Table, FormatsAndAligns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row("beta", {2.5}, 1);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
  // Every line has the same width.
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW(table.to_string());
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TextTable::format_double(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::format_percent(0.123, 1), "12.3%");
}

}  // namespace
}  // namespace anor::util
