#include "sched/weight_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace anor::sched {
namespace {

TEST(SynthesizeUnknown, HonorsProvidedRuntimeAndNodes) {
  util::Rng rng(1);
  const auto synthesized =
      synthesize_unknown_type("user.job", 300.0, 4, workload::nas_job_types(), rng);
  EXPECT_TRUE(synthesized.synthesized);
  EXPECT_EQ(synthesized.type.name, "user.job");
  EXPECT_EQ(synthesized.type.nodes, 4);
  EXPECT_NEAR(synthesized.type.min_exec_time_s(), 300.0, 1e-9);
}

TEST(SynthesizeUnknown, SamplesPowerPropertiesFromKnownTypes) {
  util::Rng rng(2);
  const auto& known = workload::nas_job_types();
  for (int trial = 0; trial < 20; ++trial) {
    const auto synthesized = synthesize_unknown_type("u", 100.0, 1, known, rng);
    bool power_matches = false;
    bool sensitivity_matches = false;
    for (const auto& t : known) {
      if (t.max_power_w == synthesized.type.max_power_w &&
          t.min_power_w == synthesized.type.min_power_w) {
        power_matches = true;
      }
      if (t.k1 == synthesized.type.k1 && t.k2 == synthesized.type.k2) {
        sensitivity_matches = true;
      }
    }
    EXPECT_TRUE(power_matches);
    EXPECT_TRUE(sensitivity_matches);
  }
}

TEST(SynthesizeUnknown, EmptyKnownTypesThrows) {
  util::Rng rng(3);
  EXPECT_THROW(synthesize_unknown_type("u", 100.0, 1, {}, rng), std::invalid_argument);
}

TEST(WeightTrainer, FindsBetterThanUniformWhenLandscapeIsSimple) {
  // Score peaks when "a" gets about 3x the weight of "b".
  const WeightEvaluator evaluate = [](const std::map<std::string, double>& weights) {
    const double ratio = weights.at("a") / weights.at("b");
    return -std::abs(ratio - 3.0);
  };
  WeightTrainerConfig config;
  config.iterations = 200;
  const auto result =
      train_queue_weights({"a", "b"}, evaluate, config, util::Rng(4));
  EXPECT_GT(result.score, -0.4);
  EXPECT_NEAR(result.weights.at("a") / result.weights.at("b"), 3.0, 0.6);
  EXPECT_EQ(result.evaluations, 201);
}

TEST(WeightTrainer, KeepsUniformIfNothingBeatsIt) {
  const WeightEvaluator evaluate = [](const std::map<std::string, double>& weights) {
    // Uniform is optimal: penalize spread.
    double penalty = 0.0;
    for (const auto& [name, w] : weights) penalty += std::abs(w - 1.0);
    return -penalty;
  };
  WeightTrainerConfig config;
  config.iterations = 50;
  const auto result = train_queue_weights({"a", "b", "c"}, evaluate, config, util::Rng(5));
  EXPECT_NEAR(result.score, 0.0, 1e-9);
  for (const auto& [name, w] : result.weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(WeightTrainer, RespectsBounds) {
  WeightTrainerConfig config;
  config.iterations = 100;
  config.min_weight = 0.5;
  config.max_weight = 2.0;
  const auto result = train_queue_weights(
      {"a", "b"},
      [](const std::map<std::string, double>& weights) { return weights.at("a"); }, config,
      util::Rng(6));
  for (const auto& [name, w] : result.weights) {
    EXPECT_GE(w, 0.5);
    EXPECT_LE(w, 2.0);
  }
}

TEST(WeightTrainer, DeterministicPerSeed) {
  const WeightEvaluator evaluate = [](const std::map<std::string, double>& weights) {
    return weights.at("a") - weights.at("b");
  };
  WeightTrainerConfig config;
  config.iterations = 30;
  const auto r1 = train_queue_weights({"a", "b"}, evaluate, config, util::Rng(7));
  const auto r2 = train_queue_weights({"a", "b"}, evaluate, config, util::Rng(7));
  EXPECT_EQ(r1.weights, r2.weights);
  EXPECT_DOUBLE_EQ(r1.score, r2.score);
}

TEST(WeightTrainer, EmptyTypesThrows) {
  EXPECT_THROW(train_queue_weights({}, [](const auto&) { return 0.0; },
                                   WeightTrainerConfig{}, util::Rng(8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace anor::sched
