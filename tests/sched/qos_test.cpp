#include "sched/qos.hpp"

#include <gtest/gtest.h>

namespace anor::sched {
namespace {

JobQosRecord record(const char* type, double submit, double start, double end,
                    double t_min) {
  JobQosRecord r;
  r.type_name = type;
  r.submit_s = submit;
  r.start_s = start;
  r.end_s = end;
  r.t_min_s = t_min;
  return r;
}

TEST(JobQosRecord, DegradationFormula) {
  // Sojourn 300 s with T_min 100 s -> Q = (300-100)/100 = 2.
  const JobQosRecord r = record("bt", 0.0, 50.0, 300.0, 100.0);
  EXPECT_DOUBLE_EQ(r.sojourn_s(), 300.0);
  EXPECT_DOUBLE_EQ(r.qos_degradation(), 2.0);
}

TEST(JobQosRecord, ZeroTminIsZeroQ) {
  EXPECT_DOUBLE_EQ(record("x", 0, 0, 10, 0.0).qos_degradation(), 0.0);
}

TEST(JobQosRecord, ImmediateStartNoSlowdownIsZeroQ) {
  EXPECT_DOUBLE_EQ(record("x", 0, 0, 100, 100.0).qos_degradation(), 0.0);
}

TEST(QosEvaluator, GroupsByType) {
  QosEvaluator evaluator;
  evaluator.add(record("a", 0, 0, 200, 100));  // Q=1
  evaluator.add(record("a", 0, 0, 300, 100));  // Q=2
  evaluator.add(record("b", 0, 0, 150, 100));  // Q=0.5
  const auto by_type = evaluator.degradation_by_type();
  ASSERT_EQ(by_type.size(), 2u);
  EXPECT_EQ(by_type.at("a").size(), 2u);
  EXPECT_EQ(by_type.at("b").size(), 1u);
}

TEST(QosEvaluator, PercentileByType) {
  QosEvaluator evaluator;
  for (int i = 0; i <= 10; ++i) {
    evaluator.add(record("a", 0, 0, 100.0 + i * 100.0, 100.0));  // Q = 0..10
  }
  const auto p90 = evaluator.percentile_by_type(90.0);
  EXPECT_NEAR(p90.at("a"), 9.0, 1e-9);
}

TEST(QosEvaluator, ConstraintSatisfaction) {
  QosConstraint constraint{5.0, 0.9};
  QosEvaluator good(constraint);
  for (int i = 0; i < 10; ++i) {
    good.add(record("a", 0, 0, 100.0 + (i < 9 ? 100.0 : 5000.0), 100.0));
  }
  // 9 jobs at Q=1, one at Q=49: the 90th percentile sits right at the
  // transition; with interpolation it lands between 1 and 49.
  EXPECT_GT(good.worst_quantile(), 1.0);

  QosEvaluator bad(constraint);
  for (int i = 0; i < 10; ++i) {
    bad.add(record("a", 0, 0, 100.0 + 800.0, 100.0));  // Q=8 for all
  }
  EXPECT_FALSE(bad.satisfied());
  EXPECT_NEAR(bad.worst_quantile(), 8.0, 1e-9);

  QosEvaluator fine(constraint);
  for (int i = 0; i < 10; ++i) {
    fine.add(record("a", 0, 0, 200.0, 100.0));  // Q=1
  }
  EXPECT_TRUE(fine.satisfied());
}

TEST(QosEvaluator, WorstAcrossTypes) {
  QosEvaluator evaluator;
  evaluator.add(record("a", 0, 0, 200, 100));  // Q=1
  evaluator.add(record("b", 0, 0, 700, 100));  // Q=6
  EXPECT_NEAR(evaluator.worst_quantile(), 6.0, 1e-9);
  EXPECT_FALSE(evaluator.satisfied());
}

TEST(QosEvaluator, EmptyIsTriviallySatisfied) {
  QosEvaluator evaluator;
  EXPECT_TRUE(evaluator.satisfied());
  EXPECT_DOUBLE_EQ(evaluator.worst_quantile(), 0.0);
  EXPECT_EQ(evaluator.job_count(), 0u);
}

}  // namespace
}  // namespace anor::sched
