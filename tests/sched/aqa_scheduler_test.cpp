#include "sched/aqa_scheduler.hpp"

#include <gtest/gtest.h>

namespace anor::sched {
namespace {

workload::JobRequest request(int id, const char* type, int nodes) {
  workload::JobRequest r;
  r.job_id = id;
  r.type_name = type;
  r.nodes = nodes;
  return r;
}

SchedulerConfig basic_config() {
  SchedulerConfig config;
  config.cluster_nodes = 16;
  config.power_aware_admission = false;
  return config;
}

SchedulerView view_with_free(int free_nodes) {
  SchedulerView view;
  view.free_nodes = free_nodes;
  return view;
}

TEST(AqaScheduler, StartsJobThatFits) {
  AqaScheduler scheduler(basic_config());
  scheduler.submit(request(0, "bt", 4), 0.0);
  const auto started = scheduler.schedule(view_with_free(16));
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].job_id, 0);
  EXPECT_FALSE(scheduler.has_pending());
}

TEST(AqaScheduler, QueuesWhenNoRoom) {
  AqaScheduler scheduler(basic_config());
  scheduler.submit(request(0, "bt", 8), 0.0);
  EXPECT_TRUE(scheduler.schedule(view_with_free(4)).empty());
  EXPECT_EQ(scheduler.pending_count(), 1u);
  const auto started = scheduler.schedule(view_with_free(8));
  EXPECT_EQ(started.size(), 1u);
}

TEST(AqaScheduler, StartsMultipleUntilFull) {
  AqaScheduler scheduler(basic_config());
  for (int i = 0; i < 5; ++i) scheduler.submit(request(i, "cg", 4), 0.0);
  const auto started = scheduler.schedule(view_with_free(16));
  EXPECT_EQ(started.size(), 4u);
  EXPECT_EQ(scheduler.pending_count(), 1u);
}

TEST(AqaScheduler, FifoWithinQueue) {
  AqaScheduler scheduler(basic_config());
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(request(1, "bt", 2), 1.0);
  // Head (8 nodes) does not fit into 4 free nodes; the same queue's later
  // job must NOT jump it (no intra-queue backfill in AQA's base policy).
  EXPECT_TRUE(scheduler.schedule(view_with_free(4)).empty());
}

TEST(AqaScheduler, WeightsSteerAllocation) {
  SchedulerConfig config = basic_config();
  config.queue_weights["heavy"] = 4.0;
  config.queue_weights["light"] = 1.0;
  AqaScheduler scheduler(config);
  for (int i = 0; i < 8; ++i) {
    scheduler.submit(request(i, "heavy", 2), 0.0);
    scheduler.submit(request(100 + i, "light", 2), 0.0);
  }
  (void)scheduler.schedule(view_with_free(10));
  // 10 nodes split by weighted fairness: heavy gets ~4x light's nodes.
  EXPECT_GE(scheduler.running_nodes().at("heavy"), 6);
  EXPECT_LE(scheduler.running_nodes().at("light"), 4);
}

TEST(AqaScheduler, JobFinishedReleasesQueueCount) {
  AqaScheduler scheduler(basic_config());
  scheduler.submit(request(0, "bt", 4), 0.0);
  (void)scheduler.schedule(view_with_free(16));
  EXPECT_EQ(scheduler.running_nodes().at("bt"), 4);
  scheduler.job_finished("bt", 4);
  EXPECT_EQ(scheduler.running_nodes().at("bt"), 0);
  scheduler.job_finished("bt", 4);  // over-release clamps at zero
  EXPECT_EQ(scheduler.running_nodes().at("bt"), 0);
}

TEST(AqaScheduler, PowerAwareAdmissionBlocksUnderLowTarget) {
  SchedulerConfig config = basic_config();
  config.power_aware_admission = true;
  AqaScheduler scheduler(config);
  scheduler.submit(request(0, "bt", 4), 0.0);

  SchedulerView view;
  view.free_nodes = 16;
  view.power_target_w = 2000.0;
  view.min_feasible_power_w = 1900.0;
  view.per_node_floor_increase_w = 95.0;  // 4 nodes add 380 W -> breach
  EXPECT_TRUE(scheduler.schedule(view).empty());

  view.power_target_w = 2400.0;  // enough headroom now
  EXPECT_EQ(scheduler.schedule(view).size(), 1u);
}

TEST(AqaScheduler, AdmissionIgnoredWithoutTarget) {
  SchedulerConfig config = basic_config();
  config.power_aware_admission = true;
  AqaScheduler scheduler(config);
  scheduler.submit(request(0, "bt", 4), 0.0);
  SchedulerView view;
  view.free_nodes = 16;
  view.power_target_w = 0.0;  // tracking off
  view.min_feasible_power_w = 1e9;
  EXPECT_EQ(scheduler.schedule(view).size(), 1u);
}

SchedulerConfig backfill_config() {
  SchedulerConfig config = basic_config();
  config.backfill = true;
  config.runtime_estimate = [](const std::string&) { return 300.0; };
  return config;
}

workload::JobRequest hinted(int id, const char* type, int nodes, double hint_s) {
  workload::JobRequest r = request(id, type, nodes);
  r.walltime_hint_s = hint_s;
  return r;
}

TEST(AqaSchedulerBackfill, ShortJobBehindBlockedHeadFillsTheGap) {
  // Same queue: the 8-node head is blocked; the 2-node job behind it has
  // a 30 s walltime hint and fits the 200 s gap.
  AqaScheduler scheduler(backfill_config());
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(hinted(1, "bt", 2, 30.0), 1.0);

  SchedulerView view = view_with_free(4);
  view.now_s = 100.0;
  view.projected_releases = {{300.0, 8}};  // head can start at t=300
  const auto started = scheduler.schedule(view);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].job_id, 1);
  EXPECT_EQ(scheduler.pending_count(), 1u);
}

TEST(AqaSchedulerBackfill, CandidateOverrunningShadowIsHeld) {
  AqaScheduler scheduler(backfill_config());
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(hinted(1, "bt", 2, 250.0), 1.0);  // 250 s hint > 150 s gap

  SchedulerView view = view_with_free(4);
  view.now_s = 100.0;
  view.projected_releases = {{250.0, 8}};
  EXPECT_TRUE(scheduler.schedule(view).empty());
  EXPECT_EQ(scheduler.pending_count(), 2u);
}

TEST(AqaSchedulerBackfill, TypeEstimateUsedWithoutHint) {
  // No per-job hint: the 300 s type estimate overruns the gap.
  AqaScheduler scheduler(backfill_config());
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(request(1, "bt", 2), 1.0);
  SchedulerView view = view_with_free(4);
  view.now_s = 100.0;
  view.projected_releases = {{300.0, 8}};  // gap 200 s < estimate 300 s
  EXPECT_TRUE(scheduler.schedule(view).empty());
}

TEST(AqaSchedulerBackfill, DisabledMeansStrictQueueOrder) {
  SchedulerConfig config = backfill_config();
  config.backfill = false;
  AqaScheduler scheduler(config);
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(hinted(1, "bt", 2, 30.0), 1.0);
  SchedulerView view = view_with_free(4);
  view.now_s = 100.0;
  view.projected_releases = {{300.0, 8}};
  EXPECT_TRUE(scheduler.schedule(view).empty());
}

TEST(AqaSchedulerBackfill, NoReleasesMeansNoShadowNoBackfill) {
  // Without projected releases the head's start time is unknown; EASY
  // must not let anything jump it.
  AqaScheduler scheduler(backfill_config());
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(hinted(1, "bt", 2, 30.0), 1.0);
  SchedulerView view = view_with_free(4);
  view.now_s = 100.0;
  EXPECT_TRUE(scheduler.schedule(view).empty());
}

TEST(AqaSchedulerBackfill, RespectsPowerAdmission) {
  SchedulerConfig config = backfill_config();
  config.power_aware_admission = true;
  AqaScheduler scheduler(config);
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(hinted(1, "bt", 2, 30.0), 1.0);
  SchedulerView view = view_with_free(4);
  view.now_s = 100.0;
  view.projected_releases = {{300.0, 8}};
  view.power_target_w = 1000.0;
  view.min_feasible_power_w = 950.0;
  view.per_node_floor_increase_w = 100.0;  // 2 nodes would breach the target
  EXPECT_TRUE(scheduler.schedule(view).empty());
}

TEST(AqaSchedulerBackfill, MultipleCandidatesFillUpToFreeNodes) {
  AqaScheduler scheduler(backfill_config());
  scheduler.submit(request(0, "bt", 8), 0.0);
  scheduler.submit(hinted(1, "bt", 2, 30.0), 1.0);
  scheduler.submit(hinted(2, "bt", 2, 30.0), 2.0);
  scheduler.submit(hinted(3, "bt", 2, 30.0), 3.0);  // no room for a third
  SchedulerView view = view_with_free(4);
  view.now_s = 0.0;
  view.projected_releases = {{200.0, 8}};
  const auto started = scheduler.schedule(view);
  EXPECT_EQ(started.size(), 2u);
}

TEST(AqaScheduler, AdmissionAccountsForJobsStartedThisTick) {
  SchedulerConfig config = basic_config();
  config.power_aware_admission = true;
  AqaScheduler scheduler(config);
  scheduler.submit(request(0, "a", 4), 0.0);
  scheduler.submit(request(1, "b", 4), 0.0);
  SchedulerView view;
  view.free_nodes = 16;
  view.power_target_w = 2000.0;
  view.min_feasible_power_w = 1500.0;
  view.per_node_floor_increase_w = 100.0;
  // First job lifts the floor to 1900; the second would hit 2300 > 2000.
  const auto started = scheduler.schedule(view);
  EXPECT_EQ(started.size(), 1u);
}

}  // namespace
}  // namespace anor::sched
