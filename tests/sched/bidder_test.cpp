#include "sched/bidder.hpp"

#include <gtest/gtest.h>

namespace anor::sched {
namespace {

BidderConfig search_config() {
  BidderConfig config;
  config.min_mean_w = 2000.0;
  config.max_mean_w = 4000.0;
  config.mean_steps = 5;
  config.reserve_steps = 4;
  return config;
}

TEST(Bidder, PicksCheapestFeasibleBid) {
  DemandResponseBidder bidder(search_config());
  // Feasible iff reserve <= 400; cost rises with mean, credit with reserve.
  const auto result = bidder.search([](const workload::DemandResponseBid& bid) {
    BidEvaluation eval;
    eval.qos_ok = true;
    eval.tracking_ok = bid.reserve_w <= 400.0;
    eval.energy_cost = bid.average_power_w * 0.001;
    eval.reserve_credit = bid.reserve_w * 0.002;
    return eval;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->bid.reserve_w, 400.0);
  // Cheapest = lowest mean that still admits a positive reserve (the range
  // endpoints allow no reserve, so the second grid point wins).
  EXPECT_DOUBLE_EQ(result->bid.average_power_w, 2500.0);
  EXPECT_GT(result->candidates_tried, result->candidates_feasible);
}

TEST(Bidder, NoFeasibleBidReturnsNullopt) {
  DemandResponseBidder bidder(search_config());
  const auto result = bidder.search([](const workload::DemandResponseBid&) {
    BidEvaluation eval;
    eval.qos_ok = false;
    eval.tracking_ok = true;
    return eval;
  });
  EXPECT_FALSE(result.has_value());
}

TEST(Bidder, ReserveNeverExceedsRangeDistance) {
  DemandResponseBidder bidder(search_config());
  std::vector<workload::DemandResponseBid> seen;
  (void)bidder.search([&seen](const workload::DemandResponseBid& bid) {
    seen.push_back(bid);
    BidEvaluation eval;
    eval.qos_ok = true;
    eval.tracking_ok = true;
    return eval;
  });
  for (const auto& bid : seen) {
    EXPECT_LE(bid.average_power_w - bid.reserve_w, 4000.0);
    EXPECT_GE(bid.average_power_w + bid.reserve_w, 2000.0);
    EXPECT_GT(bid.reserve_w, 0.0);
  }
}

TEST(Bidder, NetCostPrefersLargerCredit) {
  BidEvaluation cheap;
  cheap.energy_cost = 10.0;
  cheap.reserve_credit = 4.0;
  EXPECT_DOUBLE_EQ(cheap.net_cost(), 6.0);
}

TEST(HeuristicBid, MidRangeMeanAndBoundedReserve) {
  const auto bid =
      DemandResponseBidder::heuristic_bid(45.0, 140.0, 280.0, 16, 0.95);
  // Busy power around 16*0.95*210 = 3192 plus idle tail.
  EXPECT_NEAR(bid.average_power_w, 3230.0, 100.0);
  EXPECT_GT(bid.reserve_w, 0.0);
  // Reserve cannot exceed the down-flex of the busy nodes.
  EXPECT_LT(bid.reserve_w, 16 * 0.95 * 70.0);
}

TEST(HeuristicBid, ZeroUtilizationHasNoReserve) {
  const auto bid = DemandResponseBidder::heuristic_bid(45.0, 140.0, 280.0, 16, 0.0);
  EXPECT_DOUBLE_EQ(bid.reserve_w, 0.0);
  EXPECT_NEAR(bid.average_power_w, 16 * 45.0, 1e-9);
}

}  // namespace
}  // namespace anor::sched
