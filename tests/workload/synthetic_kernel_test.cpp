#include "workload/synthetic_kernel.hpp"

#include <gtest/gtest.h>

namespace anor::workload {
namespace {

KernelConfig quiet_config() {
  KernelConfig config;
  config.time_noise_sigma = 0.0;
  config.power_noise_sigma_w = 0.0;
  config.setup_s = 0.0;
  config.teardown_s = 0.0;
  return config;
}

JobType tiny_type() {
  JobType type = find_job_type("bt.D.x");
  type.epochs = 10;
  type.base_epoch_s = 1.0;
  return type;
}

TEST(SyntheticKernel, CompletesAfterExpectedTimeUncapped) {
  SyntheticKernel kernel(tiny_type(), util::Rng(1), quiet_config());
  kernel.advance(9.99, kNodeMaxCapW);
  EXPECT_FALSE(kernel.complete());
  kernel.advance(0.02, kNodeMaxCapW);
  EXPECT_TRUE(kernel.complete());
  EXPECT_EQ(kernel.epoch_count(), 10);
  EXPECT_DOUBLE_EQ(kernel.progress(), 1.0);
}

TEST(SyntheticKernel, CapSlowsEpochs) {
  SyntheticKernel capped(tiny_type(), util::Rng(1), quiet_config());
  SyntheticKernel uncapped(tiny_type(), util::Rng(1), quiet_config());
  capped.advance(5.0, kNodeMinCapW);
  uncapped.advance(5.0, kNodeMaxCapW);
  EXPECT_LT(capped.epoch_count(), uncapped.epoch_count());
}

TEST(SyntheticKernel, FloorCapMatchesCurveSlowdown) {
  const JobType type = tiny_type();
  SyntheticKernel kernel(type, util::Rng(1), quiet_config());
  const double expected_total = type.exec_time_s(kNodeMinCapW);
  kernel.advance(expected_total - 0.01, kNodeMinCapW);
  EXPECT_FALSE(kernel.complete());
  kernel.advance(0.02, kNodeMinCapW);
  EXPECT_TRUE(kernel.complete());
}

TEST(SyntheticKernel, EpochCallbackFiresPerEpoch) {
  SyntheticKernel kernel(tiny_type(), util::Rng(1), quiet_config());
  int calls = 0;
  long last = 0;
  kernel.set_epoch_callback([&](long epoch) {
    ++calls;
    last = epoch;
  });
  kernel.advance(10.5, kNodeMaxCapW);
  EXPECT_EQ(calls, 10);
  EXPECT_EQ(last, 10);
}

TEST(SyntheticKernel, SetupPhaseDelaysEpochs) {
  KernelConfig config = quiet_config();
  config.setup_s = 3.0;
  SyntheticKernel kernel(tiny_type(), util::Rng(1), config);
  kernel.advance(2.5, kNodeMaxCapW);
  EXPECT_EQ(kernel.epoch_count(), 0);
  EXPECT_FALSE(kernel.complete());
  kernel.advance(1.5, kNodeMaxCapW);  // 4.0 s total: 1 epoch done
  EXPECT_EQ(kernel.epoch_count(), 1);
}

TEST(SyntheticKernel, SetupAndTeardownUseLowPower) {
  KernelConfig config = quiet_config();
  config.setup_s = 5.0;
  SyntheticKernel kernel(tiny_type(), util::Rng(1), config);
  const double setup_power = kernel.power_demand_w(280.0);
  kernel.advance(6.0, kNodeMaxCapW);  // into compute phase
  const double compute_power = kernel.power_demand_w(280.0);
  EXPECT_LT(setup_power, compute_power * 0.6);
}

TEST(SyntheticKernel, TeardownPhaseCountsTowardElapsed) {
  KernelConfig config = quiet_config();
  config.teardown_s = 2.0;
  SyntheticKernel kernel(tiny_type(), util::Rng(1), config);
  kernel.advance(11.0, kNodeMaxCapW);  // 10 s compute + 1 s teardown
  EXPECT_FALSE(kernel.complete());
  EXPECT_EQ(kernel.epoch_count(), 10);
  kernel.advance(1.5, kNodeMaxCapW);
  EXPECT_TRUE(kernel.complete());
  EXPECT_NEAR(kernel.elapsed_s(), 12.0, 1e-6);
  EXPECT_NEAR(kernel.compute_elapsed_s(), 10.0, 1e-6);
}

TEST(SyntheticKernel, CompleteKernelDrawsNoPower) {
  SyntheticKernel kernel(tiny_type(), util::Rng(1), quiet_config());
  kernel.advance(100.0, kNodeMaxCapW);
  ASSERT_TRUE(kernel.complete());
  EXPECT_DOUBLE_EQ(kernel.power_demand_w(280.0), 0.0);
}

TEST(SyntheticKernel, DemandNeverExceedsCap) {
  KernelConfig config = quiet_config();
  config.power_noise_sigma_w = 5.0;
  SyntheticKernel kernel(tiny_type(), util::Rng(7), config);
  for (int i = 0; i < 50; ++i) {
    kernel.advance(0.1, 160.0);
    EXPECT_LE(kernel.power_demand_w(160.0), 160.0);
    EXPECT_GE(kernel.power_demand_w(160.0), 0.0);
  }
}

TEST(SyntheticKernel, NoiseMakesRunsDifferButDeterministicPerSeed) {
  KernelConfig config = quiet_config();
  config.time_noise_sigma = 0.05;
  SyntheticKernel a(tiny_type(), util::Rng(1), config);
  SyntheticKernel b(tiny_type(), util::Rng(1), config);
  SyntheticKernel c(tiny_type(), util::Rng(2), config);
  a.advance(5.0, 200.0);
  b.advance(5.0, 200.0);
  c.advance(5.0, 200.0);
  EXPECT_DOUBLE_EQ(a.progress(), b.progress());
  EXPECT_NE(a.progress(), c.progress());
}

TEST(SyntheticKernel, PerfMultiplierScalesRuntime) {
  KernelConfig slow = quiet_config();
  slow.perf_multiplier = 2.0;
  SyntheticKernel kernel(tiny_type(), util::Rng(1), slow);
  kernel.advance(19.0, kNodeMaxCapW);
  EXPECT_FALSE(kernel.complete());
  kernel.advance(1.5, kNodeMaxCapW);
  EXPECT_TRUE(kernel.complete());
}

TEST(SyntheticKernel, MidEpochCapChangePreservesFraction) {
  // Run half an epoch uncapped, then cap: the epoch continues from its
  // completed fraction rather than restarting.
  SyntheticKernel kernel(tiny_type(), util::Rng(1), quiet_config());
  kernel.advance(0.5, kNodeMaxCapW);  // half of the 1 s epoch
  EXPECT_EQ(kernel.epoch_count(), 0);
  const double slow_epoch = tiny_type().epoch_time_s(kNodeMinCapW);
  kernel.advance(0.5 * slow_epoch + 0.01, kNodeMinCapW);
  EXPECT_EQ(kernel.epoch_count(), 1);
}

TEST(SyntheticKernel, ProgressMonotone) {
  KernelConfig config = quiet_config();
  config.setup_s = 1.0;
  config.teardown_s = 1.0;
  SyntheticKernel kernel(tiny_type(), util::Rng(3), config);
  double prev = kernel.progress();
  // 10 epochs at cap 200 (~1.22 s each) + setup + teardown < 17 s.
  for (int i = 0; i < 170; ++i) {
    kernel.advance(0.1, 200.0);
    const double p = kernel.progress();
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

}  // namespace
}  // namespace anor::workload
