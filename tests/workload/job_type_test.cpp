#include "workload/job_type.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace anor::workload {
namespace {

TEST(JobTypeRegistry, HasAllEightNpbTypes) {
  const auto& types = nas_job_types();
  ASSERT_EQ(types.size(), 8u);
  for (const char* name :
       {"bt.D.x", "cg.D.x", "ep.D.x", "ft.D.x", "is.D.x", "lu.D.x", "mg.D.x", "sp.D.x"}) {
    EXPECT_NO_THROW(find_job_type(name)) << name;
  }
}

TEST(JobTypeRegistry, LongTypesOmitIsAndEp) {
  const auto& types = nas_long_job_types();
  ASSERT_EQ(types.size(), 6u);
  for (const auto& t : types) {
    EXPECT_NE(t.name, "is.D.x");
    EXPECT_NE(t.name, "ep.D.x");
  }
}

TEST(JobTypeRegistry, UnknownNameThrowsOrNullopt) {
  EXPECT_THROW(find_job_type("xx.D.x"), util::ConfigError);
  EXPECT_FALSE(try_find_job_type("xx.D.x").has_value());
  EXPECT_TRUE(try_find_job_type("bt.D.x").has_value());
}

TEST(JobType, RelativeTimeIsOneAtMaxCap) {
  for (const auto& t : nas_job_types()) {
    EXPECT_DOUBLE_EQ(t.relative_time(kNodeMaxCapW), 1.0) << t.name;
  }
}

TEST(JobType, Fig3SlowdownSpanMatchesPaper) {
  // Fig. 3's curves span ~1.0-1.8 at the floor cap, with EP steepest and
  // IS flattest.
  const JobType& ep = find_job_type("ep.D.x");
  const JobType& is = find_job_type("is.D.x");
  EXPECT_NEAR(ep.relative_time(kNodeMinCapW), 1.80, 1e-9);
  EXPECT_NEAR(is.relative_time(kNodeMinCapW), 1.12, 1e-9);
  for (const auto& t : nas_job_types()) {
    const double slowdown = t.relative_time(kNodeMinCapW);
    EXPECT_GE(slowdown, 1.10) << t.name;
    EXPECT_LE(slowdown, 1.85) << t.name;
  }
}

TEST(JobType, SensitivityOrderingMatchesPaper) {
  // EP > BT > LU > FT > CG > MG > SP > IS at the floor cap.
  const char* order[] = {"ep.D.x", "bt.D.x", "lu.D.x", "ft.D.x",
                         "cg.D.x", "mg.D.x", "sp.D.x", "is.D.x"};
  for (int i = 0; i + 1 < 8; ++i) {
    EXPECT_GT(find_job_type(order[i]).max_slowdown(),
              find_job_type(order[i + 1]).max_slowdown())
        << order[i] << " vs " << order[i + 1];
  }
}

TEST(JobType, RelativeTimeMonotoneDecreasingInCap) {
  for (const auto& t : nas_job_types()) {
    double prev = t.relative_time(kNodeMinCapW);
    for (double cap = kNodeMinCapW + 10.0; cap <= kNodeMaxCapW; cap += 10.0) {
      const double current = t.relative_time(cap);
      EXPECT_LE(current, prev + 1e-12) << t.name << " at " << cap;
      prev = current;
    }
  }
}

TEST(JobType, CapsClampOutsideRange) {
  const JobType& bt = find_job_type("bt.D.x");
  EXPECT_DOUBLE_EQ(bt.relative_time(50.0), bt.relative_time(kNodeMinCapW));
  EXPECT_DOUBLE_EQ(bt.relative_time(500.0), 1.0);
}

TEST(JobType, ShortJobsAreShort) {
  // Paper Sec. 7.2: IS and EP run in under half a minute.
  EXPECT_LT(find_job_type("is.D.x").min_exec_time_s(), 30.0);
  EXPECT_LT(find_job_type("ep.D.x").min_exec_time_s(), 30.0);
  // The others take minutes.
  EXPECT_GT(find_job_type("bt.D.x").min_exec_time_s(), 60.0);
  EXPECT_GT(find_job_type("sp.D.x").min_exec_time_s(), 60.0);
}

TEST(JobType, ExecTimeIsEpochsTimesEpochTime) {
  const JobType& lu = find_job_type("lu.D.x");
  EXPECT_DOUBLE_EQ(lu.exec_time_s(200.0), lu.epoch_time_s(200.0) * lu.epochs);
}

TEST(JobType, PowerAtCapEndpoints) {
  const JobType& is = find_job_type("is.D.x");
  EXPECT_DOUBLE_EQ(is.power_at_cap_w(kNodeMaxCapW), is.max_power_w);
  EXPECT_DOUBLE_EQ(is.power_at_cap_w(kNodeMinCapW), is.min_power_w);
  // Compute-bound jobs draw right at the cap in the middle of the range.
  const JobType& ep = find_job_type("ep.D.x");
  EXPECT_NEAR(ep.power_at_cap_w(200.0), 200.0, 3.0);
}

TEST(JobType, PowerAtCapMonotone) {
  for (const auto& t : nas_job_types()) {
    double prev = t.power_at_cap_w(kNodeMinCapW);
    for (double cap = kNodeMinCapW; cap <= kNodeMaxCapW; cap += 5.0) {
      const double p = t.power_at_cap_w(cap);
      EXPECT_GE(p, prev - 1e-9) << t.name;
      EXPECT_LE(p, cap + 1e-9) << t.name << ": power exceeds cap";
      prev = p;
    }
  }
}

TEST(JobType, CapForRelativeTimeInvertsRelativeTime) {
  // Inversion is unique only below the job's max draw (the curve is flat
  // above it).
  for (const auto& t : nas_job_types()) {
    for (double cap = kNodeMinCapW; cap < t.max_power_w - 1.0; cap += 20.0) {
      const double rel = t.relative_time(cap);
      EXPECT_NEAR(t.cap_for_relative_time(rel), cap, 0.5) << t.name;
    }
  }
}

TEST(JobType, CapForRelativeTimeSaturates) {
  const JobType& is = find_job_type("is.D.x");
  EXPECT_DOUBLE_EQ(is.cap_for_relative_time(0.9), kNodeMaxCapW);
  EXPECT_DOUBLE_EQ(is.cap_for_relative_time(5.0), kNodeMinCapW);
}

TEST(JobType, ScaledTypeMultipliesNodes) {
  const JobType& bt = find_job_type("bt.D.x");
  const JobType scaled = scaled_job_type(bt, 25);
  EXPECT_EQ(scaled.nodes, bt.nodes * 25);
  EXPECT_DOUBLE_EQ(scaled.min_exec_time_s(), bt.min_exec_time_s());
}

// Parameterized property: quadratic coefficients reproduce relative_time
// through the T = A P^2 + B P + C expansion for every type.
class JobTypeCurveProperty : public ::testing::TestWithParam<JobType> {};

TEST_P(JobTypeCurveProperty, EpochTimeIsQuadraticInCap) {
  const JobType& t = GetParam();
  // Three samples determine the quadratic; a fourth must agree.  Points
  // stay below every type's max draw (IS saturates at 225 W) so they sit
  // on one quadratic segment.
  const double p1 = 150.0;
  const double p2 = 180.0;
  const double p3 = 210.0;
  const double p4 = 195.0;
  // Lagrange interpolation at p4 from the three samples.
  const auto f = [&](double p) { return t.epoch_time_s(p); };
  const double l1 = (p4 - p2) * (p4 - p3) / ((p1 - p2) * (p1 - p3));
  const double l2 = (p4 - p1) * (p4 - p3) / ((p2 - p1) * (p2 - p3));
  const double l3 = (p4 - p1) * (p4 - p2) / ((p3 - p1) * (p3 - p2));
  const double interpolated = f(p1) * l1 + f(p2) * l2 + f(p3) * l3;
  EXPECT_NEAR(interpolated, f(p4), 1e-9) << t.name;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, JobTypeCurveProperty,
                         ::testing::ValuesIn(nas_job_types()),
                         [](const ::testing::TestParamInfo<JobType>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace anor::workload
