#include "workload/queue_trace.hpp"

#include <gtest/gtest.h>

namespace anor::workload {
namespace {

TEST(QueueTrace, GeneratesRequestedCount) {
  QueueTraceConfig config;
  config.job_count = 500;
  const auto trace = generate_queue_trace(config, util::Rng(1));
  EXPECT_EQ(trace.size(), 500u);
  for (const auto& e : trace) {
    EXPECT_GT(e.exec_time_s, 0.0);
    EXPECT_GT(e.wait_time_s, 0.0);
  }
}

TEST(QueueTrace, DeterministicPerSeed) {
  QueueTraceConfig config;
  config.job_count = 100;
  const auto a = generate_queue_trace(config, util::Rng(2));
  const auto b = generate_queue_trace(config, util::Rng(2));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].exec_time_s, b[i].exec_time_s);
    EXPECT_DOUBLE_EQ(a[i].wait_time_s, b[i].wait_time_s);
  }
}

TEST(QueueTrace, P90WaitExecExceeds22LikeTheRealTrace) {
  // Paper Sec. 5.2: the real month-long queue trace has p90(wait/exec)>22,
  // which justifies the Q=5 constraint as aggressive.  The synthetic
  // substitute must preserve that property.
  const auto trace = generate_queue_trace(QueueTraceConfig{}, util::Rng(17));
  EXPECT_GT(p90_wait_exec_ratio(trace), 22.0);
}

TEST(QueueTrace, RatioHandlesZeroExec) {
  QueueTraceEntry entry;
  entry.exec_time_s = 0.0;
  entry.wait_time_s = 100.0;
  EXPECT_DOUBLE_EQ(entry.wait_exec_ratio(), 0.0);
}

}  // namespace
}  // namespace anor::workload
