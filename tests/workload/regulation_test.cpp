#include "workload/regulation.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace anor::workload {
namespace {

TEST(RandomWalk, StaysInBounds) {
  RandomWalkRegulation reg(util::Rng(3), 3600.0, 4.0, 0.3);
  for (double t = 0.0; t <= 3600.0; t += 1.0) {
    const double y = reg.at(t);
    EXPECT_GE(y, -1.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(RandomWalk, PiecewiseConstantOverStep) {
  RandomWalkRegulation reg(util::Rng(3), 100.0, 4.0);
  EXPECT_DOUBLE_EQ(reg.at(8.0), reg.at(9.5));
  EXPECT_DOUBLE_EQ(reg.at(8.0), reg.at(11.99));
}

TEST(RandomWalk, DeterministicPerSeed) {
  RandomWalkRegulation a(util::Rng(9), 100.0);
  RandomWalkRegulation b(util::Rng(9), 100.0);
  RandomWalkRegulation c(util::Rng(10), 100.0);
  bool differs = false;
  for (double t = 0.0; t < 100.0; t += 4.0) {
    EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
    differs |= a.at(t) != c.at(t);
  }
  EXPECT_TRUE(differs);
}

TEST(RandomWalk, ActuallyMoves) {
  RandomWalkRegulation reg(util::Rng(4), 1000.0, 4.0, 0.2);
  util::RunningStats stats;
  for (double t = 0.0; t < 1000.0; t += 4.0) stats.add(reg.at(t));
  EXPECT_GT(stats.stddev(), 0.05);
}

TEST(RandomWalk, ClampsBeyondHorizonAndZero) {
  RandomWalkRegulation reg(util::Rng(5), 40.0, 4.0);
  EXPECT_DOUBLE_EQ(reg.at(-5.0), reg.at(0.0));
  EXPECT_NO_THROW(reg.at(1e6));
}

TEST(RandomWalk, RejectsBadParameters) {
  EXPECT_THROW(RandomWalkRegulation(util::Rng(1), 0.0), std::invalid_argument);
  EXPECT_THROW(RandomWalkRegulation(util::Rng(1), 10.0, 0.0), std::invalid_argument);
}

TEST(Sinusoid, PeriodAndBounds) {
  SinusoidRegulation reg(100.0);
  EXPECT_NEAR(reg.at(0.0), 0.0, 1e-12);
  EXPECT_NEAR(reg.at(25.0), 1.0, 1e-12);
  EXPECT_NEAR(reg.at(75.0), -1.0, 1e-12);
  EXPECT_THROW(SinusoidRegulation(0.0), std::invalid_argument);
}

TEST(Sinusoid, TwoToneStaysBounded) {
  SinusoidRegulation reg(100.0, 13.0, 0.5);
  for (double t = 0.0; t < 300.0; t += 0.7) {
    EXPECT_GE(reg.at(t), -1.0);
    EXPECT_LE(reg.at(t), 1.0);
  }
}

TEST(Bid, TargetFormula) {
  const DemandResponseBid bid{3400.0, 1100.0};
  SinusoidRegulation reg(100.0);
  EXPECT_NEAR(bid.target_at(reg, 25.0), 4500.0, 1e-9);
  EXPECT_NEAR(bid.target_at(reg, 75.0), 2300.0, 1e-9);
}

TEST(PowerTargetSeries, GridAndRange) {
  const DemandResponseBid bid{3400.0, 1100.0};
  RandomWalkRegulation reg(util::Rng(1), 3600.0, 4.0);
  const auto series = make_power_target_series(bid, reg, 3600.0, 4.0);
  EXPECT_EQ(series.size(), 901u);  // 0..3600 inclusive
  for (double v : series.values()) {
    EXPECT_GE(v, 2300.0 - 1e-9);
    EXPECT_LE(v, 4500.0 + 1e-9);
  }
  EXPECT_THROW(make_power_target_series(bid, reg, 100.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace anor::workload
