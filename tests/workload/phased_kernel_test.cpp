#include "workload/phased_kernel.hpp"

#include <gtest/gtest.h>

namespace anor::workload {
namespace {

KernelConfig quiet_config() {
  KernelConfig config;
  config.time_noise_sigma = 0.0;
  config.power_noise_sigma_w = 0.0;
  config.setup_s = 0.0;
  config.teardown_s = 0.0;
  return config;
}

JobType mini(const char* name, int epochs, double base_epoch_s) {
  JobType type = find_job_type(name);
  type.epochs = epochs;
  type.base_epoch_s = base_epoch_s;
  return type;
}

TEST(PhasedKernel, RejectsEmptyPhases) {
  EXPECT_THROW(PhasedKernel({}, util::Rng(1)), std::invalid_argument);
}

TEST(PhasedKernel, EpochCountContinuousAcrossPhases) {
  const std::vector<JobPhase> phases = {{mini("is.D.x", 5, 1.0)},
                                        {mini("bt.D.x", 5, 2.0)}};
  PhasedKernel kernel(phases, util::Rng(1), quiet_config());
  EXPECT_EQ(kernel.total_epochs(), 10);
  kernel.advance(5.5, kNodeMaxCapW);  // phase 0 done (5 s) + into phase 1
  EXPECT_EQ(kernel.current_phase(), 1u);
  EXPECT_GE(kernel.epoch_count(), 5);
  kernel.advance(10.0, kNodeMaxCapW);
  EXPECT_TRUE(kernel.complete());
  EXPECT_EQ(kernel.epoch_count(), 10);
}

TEST(PhasedKernel, CrossingBoundaryLosesNoTime) {
  // Phase 0: 2 epochs x 1 s; phase 1: 2 epochs x 1 s.  A single 4 s step
  // must finish both.
  const std::vector<JobPhase> phases = {{mini("is.D.x", 2, 1.0)},
                                        {mini("is.D.x", 2, 1.0)}};
  PhasedKernel kernel(phases, util::Rng(1), quiet_config());
  kernel.advance(4.01, kNodeMaxCapW);
  EXPECT_TRUE(kernel.complete());
  EXPECT_NEAR(kernel.elapsed_s(), 4.0, 0.02);
}

TEST(PhasedKernel, PowerProfileSwitchesWithPhase) {
  // Phase 0 is IS-like (draws ~252 W uncapped), phase 1 BT-like (~278 W).
  const std::vector<JobPhase> phases = {{mini("is.D.x", 3, 1.0)},
                                        {mini("bt.D.x", 3, 1.0)}};
  PhasedKernel kernel(phases, util::Rng(1), quiet_config());
  const double phase0_power = kernel.power_demand_w(280.0);
  kernel.advance(3.1, kNodeMaxCapW);
  ASSERT_EQ(kernel.current_phase(), 1u);
  const double phase1_power = kernel.power_demand_w(280.0);
  EXPECT_GT(phase1_power, phase0_power + 10.0);
}

TEST(PhasedKernel, SensitivitySwitchesWithPhase) {
  // At the floor cap the BT phase runs 1.7x slower, the IS phase only
  // 1.12x: total capped runtime = 3*1.12 + 3*1.7 = 8.46 s.
  const std::vector<JobPhase> phases = {{mini("is.D.x", 3, 1.0)},
                                        {mini("bt.D.x", 3, 1.0)}};
  PhasedKernel kernel(phases, util::Rng(1), quiet_config());
  kernel.advance(8.3, kNodeMinCapW);
  EXPECT_FALSE(kernel.complete());
  kernel.advance(0.3, kNodeMinCapW);
  EXPECT_TRUE(kernel.complete());
}

TEST(PhasedKernel, SetupOnlyBeforeFirstTeardownOnlyAfterLast) {
  KernelConfig config = quiet_config();
  config.setup_s = 2.0;
  config.teardown_s = 1.0;
  const std::vector<JobPhase> phases = {{mini("is.D.x", 2, 1.0)},
                                        {mini("is.D.x", 2, 1.0)}};
  PhasedKernel kernel(phases, util::Rng(1), config);
  // Total: 2 setup + 2 + 2 compute + 1 teardown = 7 s.
  kernel.advance(6.9, kNodeMaxCapW);
  EXPECT_FALSE(kernel.complete());
  kernel.advance(0.2, kNodeMaxCapW);
  EXPECT_TRUE(kernel.complete());
}

TEST(PhasedKernel, ProgressMonotoneAcrossBoundaries) {
  const std::vector<JobPhase> phases = {{mini("is.D.x", 3, 1.0)},
                                        {mini("bt.D.x", 4, 0.5)},
                                        {mini("sp.D.x", 2, 2.0)}};
  PhasedKernel kernel(phases, util::Rng(2), quiet_config());
  EXPECT_EQ(kernel.phase_count(), 3u);
  double prev = kernel.progress();
  while (!kernel.complete()) {
    kernel.advance(0.3, 220.0);
    EXPECT_GE(kernel.progress(), prev - 1e-12);
    prev = kernel.progress();
  }
  EXPECT_DOUBLE_EQ(kernel.progress(), 1.0);
}

TEST(TwoPhase, SplitsEpochsAcrossProfiles) {
  const auto phases = two_phase(find_job_type("is.D.x"), find_job_type("bt.D.x"));
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].profile.epochs, find_job_type("is.D.x").epochs / 2);
  EXPECT_EQ(phases[0].profile.name, "is.D.x");
  EXPECT_EQ(phases[1].profile.name, "bt.D.x");
}

}  // namespace
}  // namespace anor::workload
