#include "workload/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

namespace anor::workload {
namespace {

PoissonScheduleConfig default_config() {
  PoissonScheduleConfig config;
  config.duration_s = 3600.0;
  config.utilization = 0.95;
  config.cluster_nodes = 16;
  return config;
}

TEST(PoissonSchedule, DeterministicPerSeed) {
  const auto a = generate_poisson_schedule(nas_job_types(), default_config(), util::Rng(5));
  const auto b = generate_poisson_schedule(nas_job_types(), default_config(), util::Rng(5));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].type_name, b.jobs[i].type_name);
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time_s, b.jobs[i].submit_time_s);
  }
  const auto c = generate_poisson_schedule(nas_job_types(), default_config(), util::Rng(6));
  EXPECT_NE(a.jobs.size(), c.jobs.size());
}

TEST(PoissonSchedule, SortedWithStableIds) {
  const auto s = generate_poisson_schedule(nas_job_types(), default_config(), util::Rng(5));
  for (std::size_t i = 1; i < s.jobs.size(); ++i) {
    EXPECT_GE(s.jobs[i].submit_time_s, s.jobs[i - 1].submit_time_s);
    EXPECT_EQ(s.jobs[i].job_id, static_cast<int>(i));
  }
}

TEST(PoissonSchedule, HitsTargetNodeSeconds) {
  // Expected node-seconds submitted ~= eta * N * duration.
  PoissonScheduleConfig config = default_config();
  config.duration_s = 20000.0;
  const auto s = generate_poisson_schedule(nas_job_types(), config, util::Rng(11));
  double node_seconds = 0.0;
  for (const auto& job : s.jobs) {
    const JobType& type = find_job_type(job.type_name);
    node_seconds += type.min_exec_time_s() * job.nodes;
  }
  const double expected = config.utilization * config.cluster_nodes * config.duration_s;
  EXPECT_NEAR(node_seconds / expected, 1.0, 0.10);
}

TEST(PoissonSchedule, WeightsShiftMix) {
  PoissonScheduleConfig config = default_config();
  config.duration_s = 40000.0;
  config.type_weights.assign(nas_job_types().size(), 1.0);
  config.type_weights[0] = 8.0;  // bt gets 8x node-second share
  const auto s = generate_poisson_schedule(nas_job_types(), config, util::Rng(2));
  std::map<std::string, double> node_seconds;
  for (const auto& job : s.jobs) {
    node_seconds[job.type_name] += find_job_type(job.type_name).min_exec_time_s() * job.nodes;
  }
  EXPECT_GT(node_seconds["bt.D.x"], 4.0 * node_seconds["cg.D.x"]);
}

TEST(PoissonSchedule, DiurnalModulationShiftsLoadToPeak) {
  PoissonScheduleConfig config = default_config();
  config.duration_s = 86400.0;  // one day
  config.diurnal_amplitude = 0.8;
  const auto schedule = generate_poisson_schedule(nas_job_types(), config, util::Rng(4));
  // Peak window (mid-day, around t = period/2) vs trough (start/end).
  int peak = 0;
  int trough = 0;
  for (const auto& job : schedule.jobs) {
    const double t = job.submit_time_s;
    if (t > 0.35 * 86400.0 && t < 0.65 * 86400.0) ++peak;
    if (t < 0.15 * 86400.0 || t > 0.85 * 86400.0) ++trough;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(PoissonSchedule, ZeroAmplitudeKeepsLegacyStreams) {
  PoissonScheduleConfig plain = default_config();
  PoissonScheduleConfig zeroed = default_config();
  zeroed.diurnal_amplitude = 0.0;
  const auto a = generate_poisson_schedule(nas_job_types(), plain, util::Rng(5));
  const auto b = generate_poisson_schedule(nas_job_types(), zeroed, util::Rng(5));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time_s, b.jobs[i].submit_time_s);
  }
}

TEST(PoissonSchedule, RejectsBadAmplitude) {
  PoissonScheduleConfig config = default_config();
  config.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_poisson_schedule(nas_job_types(), config, util::Rng(1)),
               std::invalid_argument);
}

TEST(PoissonSchedule, Validation) {
  EXPECT_THROW(generate_poisson_schedule({}, default_config(), util::Rng(1)),
               std::invalid_argument);
  PoissonScheduleConfig bad = default_config();
  bad.utilization = 0.0;
  EXPECT_THROW(generate_poisson_schedule(nas_job_types(), bad, util::Rng(1)),
               std::invalid_argument);
  PoissonScheduleConfig mismatched = default_config();
  mismatched.type_weights = {1.0};
  EXPECT_THROW(generate_poisson_schedule(nas_job_types(), mismatched, util::Rng(1)),
               std::invalid_argument);
}

TEST(Schedule, JsonRoundTrip) {
  Schedule schedule;
  schedule.duration_s = 100.0;
  schedule.jobs.push_back({0, "bt.D.x", 1.5, 2, ""});
  schedule.jobs.push_back({1, "sp.D.x", 3.0, 2, "is.D.x"});
  const Schedule loaded = Schedule::from_json(schedule.to_json());
  ASSERT_EQ(loaded.jobs.size(), 2u);
  EXPECT_EQ(loaded.jobs[0].type_name, "bt.D.x");
  EXPECT_EQ(loaded.jobs[1].classified_as, "is.D.x");
  EXPECT_DOUBLE_EQ(loaded.duration_s, 100.0);
}

TEST(Schedule, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/anor_schedule_test.json";
  Schedule schedule;
  schedule.duration_s = 10.0;
  schedule.jobs.push_back({0, "lu.D.x", 0.0, 2, ""});
  schedule.save(path);
  const Schedule loaded = Schedule::load(path);
  ASSERT_EQ(loaded.jobs.size(), 1u);
  EXPECT_EQ(loaded.jobs[0].type_name, "lu.D.x");
  std::remove(path.c_str());
}

TEST(Schedule, FromJsonSortsBySubmitTime) {
  Schedule schedule;
  schedule.jobs.push_back({0, "bt.D.x", 5.0, 2, ""});
  schedule.jobs.push_back({1, "sp.D.x", 1.0, 2, ""});
  const Schedule loaded = Schedule::from_json(schedule.to_json());
  EXPECT_EQ(loaded.jobs[0].type_name, "sp.D.x");
}

TEST(Misclassify, LabelsOnlyMatchingType) {
  Schedule schedule;
  schedule.jobs.push_back({0, "bt.D.x", 0.0, 2, ""});
  schedule.jobs.push_back({1, "sp.D.x", 1.0, 2, ""});
  misclassify(schedule, "bt.D.x", "is.D.x");
  EXPECT_EQ(schedule.jobs[0].effective_class(), "is.D.x");
  EXPECT_EQ(schedule.jobs[1].effective_class(), "sp.D.x");
}

TEST(JobRequest, EffectiveClassDefaultsToTrueType) {
  JobRequest request;
  request.type_name = "ft.D.x";
  EXPECT_EQ(request.effective_class(), "ft.D.x");
  request.classified_as = "ep.D.x";
  EXPECT_EQ(request.effective_class(), "ep.D.x");
}

}  // namespace
}  // namespace anor::workload
