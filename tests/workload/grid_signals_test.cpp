#include "workload/grid_signals.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace anor::workload {
namespace {

TEST(CarbonProfile, NonNegativeAndDeterministic) {
  CarbonIntensityProfile a(util::Rng(5), 86400.0);
  CarbonIntensityProfile b(util::Rng(5), 86400.0);
  CarbonIntensityProfile c(util::Rng(6), 86400.0);
  bool differs = false;
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    EXPECT_GE(a.at(t), 0.0);
    EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
    differs |= a.at(t) != c.at(t);
  }
  EXPECT_TRUE(differs);
}

TEST(CarbonProfile, HasDiurnalSwing) {
  CarbonIntensityProfile::Config config;
  config.noise_g_per_kwh = 0.0;  // pure diurnal shape
  CarbonIntensityProfile profile(util::Rng(1), 86400.0, config);
  double lo = profile.at(0.0);
  double hi = lo;
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    lo = std::min(lo, profile.at(t));
    hi = std::max(hi, profile.at(t));
  }
  EXPECT_GT(hi - lo, config.swing_g_per_kwh);  // both humps exceed one amplitude
  // Daily periodicity.
  EXPECT_NEAR(profile.at(3600.0), profile.at(3600.0 + 86400.0), 25.0);
}

TEST(CarbonProfile, RejectsBadHorizon) {
  EXPECT_THROW(CarbonIntensityProfile(util::Rng(1), 0.0), std::invalid_argument);
}

TEST(CarbonTargets, InverseToIntensity) {
  CarbonIntensityProfile::Config config;
  config.noise_g_per_kwh = 0.0;
  CarbonIntensityProfile profile(util::Rng(1), 86400.0, config);
  const auto targets = targets_from_carbon(profile, 1000.0, 3000.0, 86400.0, 600.0);
  // Range is fully used.
  double lo = targets.values().front();
  double hi = lo;
  std::size_t argmin = 0;
  std::size_t argmax = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets.values()[i] < lo) { lo = targets.values()[i]; argmin = i; }
    if (targets.values()[i] > hi) { hi = targets.values()[i]; argmax = i; }
  }
  EXPECT_NEAR(lo, 1000.0, 1e-6);
  EXPECT_NEAR(hi, 3000.0, 1e-6);
  // The power minimum coincides with the intensity maximum and vice versa.
  EXPECT_GT(profile.at(targets.times()[argmin]), profile.at(targets.times()[argmax]));
}

TEST(CarbonTargets, Validation) {
  CarbonIntensityProfile profile(util::Rng(1), 3600.0);
  EXPECT_THROW(targets_from_carbon(profile, 3000.0, 1000.0, 3600.0), std::invalid_argument);
  EXPECT_THROW(targets_from_carbon(profile, 1000.0, 3000.0, 3600.0, 0.0),
               std::invalid_argument);
}

TEST(CarbonEmitted, IntegratesPowerTimesIntensity) {
  CarbonIntensityProfile::Config config;
  config.base_g_per_kwh = 100.0;
  config.swing_g_per_kwh = 0.0;
  config.noise_g_per_kwh = 0.0;
  CarbonIntensityProfile profile(util::Rng(1), 7200.0, config);
  util::TimeSeries power;
  power.add(0.0, 2000.0);     // 2 kW for one hour
  power.add(3600.0, 2000.0);  // terminal sample
  EXPECT_NEAR(carbon_emitted_g(power, profile), 2.0 * 100.0, 1e-6);
}

TEST(TouTariff, WindowsAndWraparound) {
  const TouTariff tariff = TouTariff::standard();
  EXPECT_DOUBLE_EQ(tariff.price_at(3.0 * 3600.0), 0.08);   // 3 am off-peak
  EXPECT_DOUBLE_EQ(tariff.price_at(8.0 * 3600.0), 0.14);   // morning shoulder
  EXPECT_DOUBLE_EQ(tariff.price_at(18.0 * 3600.0), 0.24);  // evening peak
  EXPECT_DOUBLE_EQ(tariff.price_at(23.0 * 3600.0), 0.08);
  // Next day wraps.
  EXPECT_DOUBLE_EQ(tariff.price_at(86400.0 + 18.0 * 3600.0), 0.24);
}

TEST(TouTariff, RejectsBadWindows) {
  EXPECT_THROW(TouTariff(0.1, {{5.0, 5.0, 0.2}}), std::invalid_argument);
  EXPECT_THROW(TouTariff(0.1, {{22.0, 25.0, 0.2}}), std::invalid_argument);
}

TEST(TouTariff, CostOfSeries) {
  const TouTariff tariff(0.10, {{12.0, 13.0, 0.50}});
  util::TimeSeries power;
  power.add(11.0 * 3600.0, 1000.0);  // 1 kW: one hour off-peak
  power.add(12.0 * 3600.0, 1000.0);  // then one hour at peak
  power.add(13.0 * 3600.0, 0.0);
  EXPECT_NEAR(tariff.cost_of(power), 0.10 + 0.50, 1e-9);
}

TEST(TariffTargets, ThrottlesAtPeakPrice) {
  const TouTariff tariff = TouTariff::standard();
  const auto targets = targets_from_tariff(tariff, 1000.0, 3000.0, 86400.0, 900.0);
  EXPECT_NEAR(targets.sample_at(3.0 * 3600.0), 3000.0, 1e-6);   // cheapest -> full power
  EXPECT_NEAR(targets.sample_at(18.0 * 3600.0), 1000.0, 1e-6);  // priciest -> floor
  const double shoulder = targets.sample_at(8.0 * 3600.0);
  EXPECT_GT(shoulder, 1000.0);
  EXPECT_LT(shoulder, 3000.0);
}

}  // namespace
}  // namespace anor::workload
