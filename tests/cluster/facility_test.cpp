#include "cluster/facility.hpp"

#include <gtest/gtest.h>

namespace anor::cluster {
namespace {

EmulationConfig small_config() {
  EmulationConfig config;
  config.node_count = 4;
  config.node.package.response_tau_s = 0.0;
  config.step_s = 0.25;
  config.controller.kernel.time_noise_sigma = 0.0;
  config.controller.kernel.power_noise_sigma_w = 0.0;
  config.scheduler.power_aware_admission = false;
  config.manager.control_period_s = 0.5;
  config.endpoint.period_s = 0.5;
  return config;
}

workload::Schedule schedule_of(std::vector<std::pair<const char*, double>> jobs) {
  workload::Schedule schedule;
  int id = 0;
  for (const auto& [type, submit] : jobs) {
    workload::JobRequest request;
    request.job_id = id++;
    request.type_name = type;
    request.submit_time_s = submit;
    request.nodes = workload::find_job_type(type).nodes;
    schedule.jobs.push_back(request);
  }
  return schedule;
}

TEST(FacilitySplit, FloorsAlwaysGranted) {
  const std::vector<ClusterEnvelope> envelopes = {{1000.0, 2000.0}, {500.0, 800.0}};
  // Target below the floor sum: floors still granted (cannot shed).
  const auto shares = FacilityCoordinator::split(1200.0, envelopes);
  EXPECT_DOUBLE_EQ(shares[0], 1000.0);
  EXPECT_DOUBLE_EQ(shares[1], 500.0);
}

TEST(FacilitySplit, HeadroomProportionalToFlexibility) {
  // Flex 1000 vs 300: headroom 650 splits 500/150.
  const std::vector<ClusterEnvelope> envelopes = {{1000.0, 2000.0}, {500.0, 800.0}};
  const auto shares = FacilityCoordinator::split(2150.0, envelopes);
  EXPECT_NEAR(shares[0], 1500.0, 1e-6);
  EXPECT_NEAR(shares[1], 650.0, 1e-6);
  EXPECT_NEAR(shares[0] + shares[1], 2150.0, 1e-6);
}

TEST(FacilitySplit, PartialHeadroomSplitsProportionally) {
  // Floors 1500, headroom 1300; flex 2000 vs 300 -> grants 1130.4/169.6.
  const std::vector<ClusterEnvelope> envelopes = {{1000.0, 3000.0}, {500.0, 800.0}};
  const auto shares = FacilityCoordinator::split(2800.0, envelopes);
  EXPECT_NEAR(shares[0], 1000.0 + 1300.0 * 2000.0 / 2300.0, 1e-6);
  EXPECT_NEAR(shares[1], 500.0 + 1300.0 * 300.0 / 2300.0, 1e-6);
  EXPECT_NEAR(shares[0] + shares[1], 2800.0, 1e-6);
  // No share exceeds its ceiling.
  EXPECT_LE(shares[0], 3000.0);
  EXPECT_LE(shares[1], 800.0);
}

TEST(FacilitySplit, TargetAboveTotalCeilingClampsEverywhere) {
  const std::vector<ClusterEnvelope> envelopes = {{100.0, 200.0}, {100.0, 300.0}};
  const auto shares = FacilityCoordinator::split(10000.0, envelopes);
  EXPECT_NEAR(shares[0], 200.0, 1e-6);
  EXPECT_NEAR(shares[1], 300.0, 1e-6);
}

TEST(FacilitySplit, EmptyFacility) {
  EXPECT_TRUE(FacilityCoordinator::split(1000.0, {}).empty());
}

TEST(FacilityEnvelope, ReflectsRunningJobs) {
  EmulatedCluster cluster(small_config(), schedule_of({{"bt.D.x", 0.0}}));
  // Before the job starts: all idle.
  const auto idle_env = FacilityCoordinator::envelope_of(cluster);
  EXPECT_NEAR(idle_env.floor_w, 4 * 36.0, 1e-6);
  while (cluster.running_jobs() == 0 && cluster.step()) {
  }
  const auto busy_env = FacilityCoordinator::envelope_of(cluster);
  // 2 busy nodes at [140, 278] plus 2 idle at 36.
  EXPECT_NEAR(busy_env.floor_w, 2 * 140.0 + 2 * 36.0, 1e-6);
  EXPECT_NEAR(busy_env.ceiling_w, 2 * 278.0 + 2 * 36.0, 1e-6);
}

TEST(FacilityCoordinator, TwoClustersShareAFacilityTarget) {
  // Cluster A runs a sensitive BT job; cluster B an insensitive SP job.
  // The facility target forces a shared diet; both complete and total
  // measured power stays near the facility target while both run.
  EmulatedCluster a(small_config(), schedule_of({{"bt.D.x", 0.0}}));
  EmulatedCluster b(small_config(), schedule_of({{"sp.D.x", 0.0}}));
  FacilityCoordinator facility;
  facility.add_cluster(a);
  facility.add_cluster(b);
  EXPECT_EQ(facility.cluster_count(), 2u);

  // Floors: each cluster 2 busy x 140 + 2 idle x 36 = 352 W once running.
  // Give the facility enough for ~75 % operation of both.
  const double target = 2 * (2 * 0.75 * 280.0 + 2 * 36.0);
  util::RunningStats tracking;
  while (facility.step(target, 0.5)) {
    if (facility.now_s() > 20.0 && a.running_jobs() > 0 && b.running_jobs() > 0) {
      tracking.add(facility.total_power_w());
    }
    ASSERT_LT(facility.now_s(), 3600.0);
  }
  EXPECT_GT(tracking.count(), 10u);
  EXPECT_NEAR(tracking.mean(), target, target * 0.15);
}

TEST(FacilityCoordinator, DrainingClusterDonatesPowerToBusyOne) {
  // Cluster A's job is short; once it drains, cluster B's share grows.
  workload::JobType short_type = workload::find_job_type("is.D.x");
  EmulatedCluster a(small_config(), schedule_of({{"is.D.x", 0.0}}));
  EmulatedCluster b(small_config(), schedule_of({{"bt.D.x", 0.0}}));
  FacilityCoordinator facility;
  facility.add_cluster(a);
  facility.add_cluster(b);

  const double target = 900.0;  // not enough for both at full tilt
  double b_cap_while_a_runs = -1.0;
  double b_cap_after_a_done = -1.0;
  while (facility.step(target, 0.5)) {
    const auto b_target = b.manager().target_at(b.clock().now());
    if (!b_target) continue;
    if (a.running_jobs() > 0 && b.running_jobs() > 0) {
      b_cap_while_a_runs = *b_target;
    } else if (a.finished() && b.running_jobs() > 0) {
      b_cap_after_a_done = *b_target;
    }
    ASSERT_LT(facility.now_s(), 3600.0);
  }
  ASSERT_GT(b_cap_while_a_runs, 0.0);
  ASSERT_GT(b_cap_after_a_done, 0.0);
  EXPECT_GT(b_cap_after_a_done, b_cap_while_a_runs + 50.0);
}

}  // namespace
}  // namespace anor::cluster
