#include "cluster/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace anor::cluster {
namespace {

std::optional<Message> receive_with_timeout(MessageChannel& channel, int timeout_ms = 2000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto msg = channel.receive()) return msg;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

TEST(TcpTransport, ConnectAcceptExchange) {
  TcpListener listener;
  ASSERT_GT(listener.port(), 0);
  auto client = tcp_connect(listener.port());
  std::unique_ptr<TcpChannel> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(server, nullptr);

  // Job tier -> cluster tier.
  JobHelloMsg hello;
  hello.job_id = 9;
  hello.job_name = "sp.D.x#9";
  hello.classified_as = "ep.D.x";
  hello.nodes = 2;
  ASSERT_TRUE(client->send(hello));
  const auto received = receive_with_timeout(*server);
  ASSERT_TRUE(received.has_value());
  const auto* decoded = std::get_if<JobHelloMsg>(&*received);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->classified_as, "ep.D.x");

  // Cluster tier -> job tier.
  ASSERT_TRUE(server->send(PowerBudgetMsg{9, 190.0, 1.0}));
  const auto budget = receive_with_timeout(*client);
  ASSERT_TRUE(budget.has_value());
  EXPECT_DOUBLE_EQ(std::get<PowerBudgetMsg>(*budget).node_cap_w, 190.0);
}

TEST(TcpTransport, ManyMessagesPreserveOrderAndFraming) {
  TcpListener listener;
  auto client = tcp_connect(listener.port());
  std::unique_ptr<TcpChannel> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(server, nullptr);

  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client->send(PowerBudgetMsg{i, 140.0 + i, static_cast<double>(i)}));
  }
  for (int i = 0; i < kCount; ++i) {
    const auto msg = receive_with_timeout(*server);
    ASSERT_TRUE(msg.has_value()) << "message " << i;
    EXPECT_EQ(job_id_of(*msg), i);
  }
}

TEST(TcpTransport, LargeMessageSurvivesFragmentation) {
  // A message bigger than typical socket buffers exercises the send spin
  // loop and the receiver's frame reassembly across many recv() calls.
  TcpListener listener;
  auto client = tcp_connect(listener.port());
  std::unique_ptr<TcpChannel> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(server, nullptr);

  JobHelloMsg big;
  big.job_id = 1;
  big.job_name = std::string(2 * 1024 * 1024, 'x');  // 2 MiB payload
  big.classified_as = "bt.D.x";
  big.nodes = 2;

  // Drain concurrently so the sender's spin loop cannot deadlock against
  // a full socket buffer.
  std::optional<Message> received;
  std::thread reader([&server, &received] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if ((received = server->receive())) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  ASSERT_TRUE(client->send(big));
  reader.join();
  ASSERT_TRUE(received.has_value());
  const auto* hello = std::get_if<JobHelloMsg>(&*received);
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->job_name.size(), 2u * 1024 * 1024);
  EXPECT_EQ(hello->job_name.front(), 'x');
  EXPECT_EQ(hello->classified_as, "bt.D.x");
}

TEST(TcpTransport, PeerCloseDetected) {
  TcpListener listener;
  auto client = tcp_connect(listener.port());
  std::unique_ptr<TcpChannel> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(server, nullptr);
  client.reset();
  // Receive eventually observes the close and the channel disconnects.
  for (int i = 0; i < 200 && server->connected(); ++i) {
    (void)server->receive();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(server->connected());
}

TEST(TcpTransport, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    TcpListener listener;
    dead_port = listener.port();
  }  // closed
  EXPECT_THROW(tcp_connect(dead_port), util::TransportError);
}

TEST(TcpTransport, AcceptWithoutClientReturnsNull) {
  TcpListener listener;
  EXPECT_EQ(listener.accept(), nullptr);
}

}  // namespace
}  // namespace anor::cluster
