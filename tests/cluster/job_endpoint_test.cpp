#include "cluster/job_endpoint.hpp"

#include <gtest/gtest.h>

#include "cluster/transport.hpp"
#include "geopm/signals.hpp"
#include "model/default_models.hpp"
#include "util/clock.hpp"

namespace anor::cluster {
namespace {

struct JobEndpointTest : ::testing::Test {
  JobEndpointTest() : pair(make_inproc_pair(clock, 0.0)) {}

  JobEndpointProcess make_endpoint(const std::string& classified,
                                   bool feedback = true) {
    JobEndpointConfig config;
    config.period_s = 1.0;
    config.feedback_enabled = feedback;
    // These tests drive the endpoint alone; there is no manager behind
    // pair.a, so disable quiet-manager degradation (it would otherwise
    // decay the cap mid-test and pause probing).
    config.manager_quiet_after_s = 0.0;
    return JobEndpointProcess(1, "bt.D.x#1", classified, 2,
                              model::model_for_class(classified), geopm_endpoint,
                              *pair.b, clock.now(), config);
  }

  std::optional<Message> manager_receive() { return pair.a->receive(); }

  /// Push an agent sample with the given epoch count at time t.
  void push_sample(double t, long epochs) {
    std::vector<double> sample(geopm::kSampleSize, 0.0);
    sample[geopm::kSampleEpochCount] = static_cast<double>(epochs);
    sample[geopm::kSampleTimestamp] = t;
    geopm_endpoint.write_sample(t, sample);
  }

  util::VirtualClock clock;
  geopm::Endpoint geopm_endpoint;
  InprocPair pair;
};

TEST_F(JobEndpointTest, SendsHelloOnConstruction) {
  auto endpoint = make_endpoint("is.D.x");
  const auto msg = manager_receive();
  ASSERT_TRUE(msg.has_value());
  const auto* hello = std::get_if<JobHelloMsg>(&*msg);
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->classified_as, "is.D.x");
  EXPECT_EQ(hello->nodes, 2);
}

TEST_F(JobEndpointTest, ForwardsBudgetToGeopmEndpoint) {
  auto endpoint = make_endpoint("bt.D.x");
  (void)manager_receive();
  pair.a->send(PowerBudgetMsg{1, 190.0, 0.0});
  clock.advance(1.0);
  endpoint.step(clock.now());
  const auto policy = geopm_endpoint.read_policy();
  ASSERT_TRUE(policy.has_value());
  EXPECT_DOUBLE_EQ(policy->policy[geopm::kPolicyPowerCap], 190.0);
  EXPECT_DOUBLE_EQ(endpoint.current_cap_w(), 190.0);
}

TEST_F(JobEndpointTest, StepHonorsPeriod) {
  auto endpoint = make_endpoint("bt.D.x");
  (void)manager_receive();
  clock.advance(1.0);
  endpoint.step(clock.now());
  pair.a->send(PowerBudgetMsg{1, 150.0, 0.0});
  endpoint.step(clock.now());  // same instant: skipped
  EXPECT_FALSE(geopm_endpoint.read_policy().has_value());
}

TEST_F(JobEndpointTest, MisclassifiedJobReclassifiedThroughFeedback) {
  // Endpoint believes the job is IS, but the observed epochs follow BT's
  // curve.  Observations arrive at two caps (the uncapped start plus a
  // budget), which identifies the curve's slope; with feedback on, the
  // endpoint must publish the corrected BT model.  (At a single cap
  // several type curves coincide and the endpoint rightly stays
  // ambiguous and probes instead.)
  auto endpoint = make_endpoint("is.D.x", /*feedback=*/true);
  (void)manager_receive();

  const auto& bt = workload::find_job_type("bt.D.x");
  double t = 0.0;
  long epochs = 0;
  push_sample(t, epochs);
  clock.advance(1.0);
  endpoint.step(clock.now());
  for (int i = 0; i < 14; ++i) {
    t += bt.epoch_time_s(280.0);
    ++epochs;
    push_sample(t, epochs);
    clock.advance(1.0);
    endpoint.step(clock.now());
  }
  // The cluster tier lowers the budget; epochs slow down along BT's curve.
  pair.a->send(PowerBudgetMsg{1, 200.0, clock.now()});
  clock.advance(1.0);
  endpoint.step(clock.now());
  t = std::max(t, clock.now());
  for (int i = 0; i < 20 && !endpoint.published_feedback(); ++i) {
    t += bt.epoch_time_s(200.0);
    ++epochs;
    push_sample(t, epochs);
    clock.advance(1.0);
    endpoint.step(clock.now());
  }
  ASSERT_TRUE(endpoint.published_feedback());
  std::optional<ModelUpdateMsg> update;
  while (auto msg = manager_receive()) {
    if (const auto* m = std::get_if<ModelUpdateMsg>(&*msg)) update = *m;
  }
  ASSERT_TRUE(update.has_value());
  EXPECT_TRUE(update->from_feedback);
  // The corrected model predicts BT-like epoch times, not IS-like.
  model::PowerPerfModel corrected(update->a, update->b, update->c, update->p_min_w,
                                  update->p_max_w);
  EXPECT_NEAR(corrected.time_at(280.0), bt.epoch_time_s(280.0), 0.1);
}

TEST_F(JobEndpointTest, NoFeedbackMeansNoModelUpdates) {
  auto endpoint = make_endpoint("is.D.x", /*feedback=*/false);
  (void)manager_receive();
  const auto& bt = workload::find_job_type("bt.D.x");
  double t = 0.0;
  long epochs = 0;
  push_sample(t, epochs);
  clock.advance(1.0);
  endpoint.step(clock.now());
  for (int i = 0; i < 20; ++i) {
    t += bt.epoch_time_s(280.0);
    ++epochs;
    push_sample(t, epochs);
    clock.advance(1.0);
    endpoint.step(clock.now());
  }
  EXPECT_FALSE(endpoint.published_feedback());
  while (auto msg = manager_receive()) {
    EXPECT_EQ(std::get_if<ModelUpdateMsg>(&*msg), nullptr);
  }
}

TEST_F(JobEndpointTest, CorrectClassificationStaysQuiet) {
  auto endpoint = make_endpoint("bt.D.x", /*feedback=*/true);
  (void)manager_receive();
  const auto& bt = workload::find_job_type("bt.D.x");
  double t = 0.0;
  long epochs = 0;
  push_sample(t, epochs);
  clock.advance(1.0);
  endpoint.step(clock.now());
  for (int i = 0; i < 20; ++i) {
    t += bt.epoch_time_s(280.0);
    ++epochs;
    push_sample(t, epochs);
    clock.advance(1.0);
    endpoint.step(clock.now());
  }
  EXPECT_FALSE(endpoint.published_feedback());
}

TEST_F(JobEndpointTest, AmbiguousCandidatesTriggerProbing) {
  // The served model (IS) is clearly wrong, but all observations sit at a
  // single cap where BT and FT predict identical epoch times — the
  // endpoint must start probing rather than committing a coin-flip.
  auto endpoint = make_endpoint("is.D.x", /*feedback=*/true);
  (void)manager_receive();
  const auto& bt = workload::find_job_type("bt.D.x");
  double t = 0.0;
  long epochs = 0;
  push_sample(t, epochs);
  clock.advance(1.0);
  endpoint.step(clock.now());
  for (int i = 0; i < 16; ++i) {
    t += bt.epoch_time_s(280.0);
    ++epochs;
    push_sample(t, epochs);
    clock.advance(1.0);
    endpoint.step(clock.now());
  }
  EXPECT_FALSE(endpoint.published_feedback());
  EXPECT_TRUE(endpoint.probing());
}

TEST_F(JobEndpointTest, ProbingDisabledCommitsNothingWhenAmbiguous) {
  JobEndpointConfig config;
  config.period_s = 1.0;
  config.feedback_enabled = true;
  config.probe_enabled = false;
  JobEndpointProcess endpoint(1, "bt.D.x#1", "is.D.x", 2,
                              model::model_for_class("is.D.x"), geopm_endpoint, *pair.b,
                              clock.now(), config);
  (void)manager_receive();
  const auto& bt = workload::find_job_type("bt.D.x");
  double t = 0.0;
  long epochs = 0;
  push_sample(t, epochs);
  clock.advance(1.0);
  endpoint.step(clock.now());
  for (int i = 0; i < 16; ++i) {
    t += bt.epoch_time_s(280.0);
    ++epochs;
    push_sample(t, epochs);
    clock.advance(1.0);
    endpoint.step(clock.now());
  }
  EXPECT_FALSE(endpoint.published_feedback());
  EXPECT_FALSE(endpoint.probing());
}

TEST_F(JobEndpointTest, FinishSendsGoodbye) {
  auto endpoint = make_endpoint("bt.D.x");
  (void)manager_receive();
  endpoint.finish(5.0);
  const auto msg = manager_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_NE(std::get_if<JobGoodbyeMsg>(&*msg), nullptr);
}

TEST_F(JobEndpointTest, CapChangesRecordedInModeler) {
  auto endpoint = make_endpoint("bt.D.x");
  (void)manager_receive();
  pair.a->send(PowerBudgetMsg{1, 200.0, 0.0});
  clock.advance(1.0);
  endpoint.step(clock.now());

  // Observations around the new cap attribute to ~200 W.  Feed enough
  // epochs that the modeler cuts several >= min_span_s observations (the
  // leading, setup-polluted one is skipped by design).
  const auto& bt = workload::find_job_type("bt.D.x");
  double t = clock.now();
  long epochs = 0;
  push_sample(t, epochs);
  clock.advance(1.0);
  endpoint.step(clock.now());
  for (int i = 0; i < 25; ++i) {
    t += bt.epoch_time_s(200.0);
    ++epochs;
    push_sample(t, epochs);
    clock.advance(1.0);
    endpoint.step(clock.now());
  }
  ASSERT_GT(endpoint.modeler().observation_count(), 0u);
  EXPECT_NEAR(endpoint.modeler().observations().back().avg_cap_w, 200.0, 25.0);
}

}  // namespace
}  // namespace anor::cluster
