// Liveness leases on the cluster manager: heartbeats keep a job alive, a
// silent job is declared dead and its budget reclaimed, a fresh hello
// rejoins it, stale feedback models fall back to the classified model,
// and stale power telemetry freezes the closed-loop integral.
#include <gtest/gtest.h>

#include "cluster/cluster_manager.hpp"
#include "cluster/transport.hpp"
#include "util/clock.hpp"

namespace anor::cluster {
namespace {

JobHelloMsg hello_for(int job_id, const std::string& type, int nodes) {
  JobHelloMsg hello;
  hello.job_id = job_id;
  hello.job_name = type + "#" + std::to_string(job_id);
  hello.classified_as = type;
  hello.nodes = nodes;
  return hello;
}

TEST(Liveness, HeartbeatsKeepTheLeaseFresh) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  config.lease_s = 6.0;
  ClusterManager manager(config);
  manager.attach_channel(std::move(pair.a));

  pair.b->send(hello_for(1, "bt.D.x", 2));
  manager.step(0.0);
  ASSERT_EQ(manager.active_jobs(), 1u);

  // Heartbeat every 2 s for 30 s: well past the 6 s lease, but never
  // silent long enough to expire it.
  for (int i = 1; i <= 15; ++i) {
    clock.advance(2.0);
    pair.b->send(HeartbeatMsg{1, clock.now()});
    manager.step(clock.now());
    while (pair.b->receive()) {
    }  // drain manager heartbeats/budgets
  }
  EXPECT_EQ(manager.active_jobs(), 1u);
  EXPECT_EQ(manager.leases_expired(), 0u);

  // Now go silent: the lease expires and the job is reaped.
  for (int i = 0; i < 5; ++i) {
    clock.advance(2.0);
    manager.step(clock.now());
  }
  EXPECT_EQ(manager.active_jobs(), 0u);
  EXPECT_EQ(manager.leases_expired(), 1u);
}

TEST(Liveness, DeadJobBudgetIsReclaimedForSurvivors) {
  util::VirtualClock clock;
  InprocPair pair1 = make_inproc_pair(clock, 0.0);
  InprocPair pair2 = make_inproc_pair(clock, 0.0);
  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  config.control_period_s = 1.0;
  config.lease_s = 6.0;
  config.closed_loop = false;
  ClusterManager manager(config);
  // A target low enough that two 2-node jobs cannot both run at p_max:
  // the survivor's cap must rise once the dead job's share is reclaimed.
  util::TimeSeries targets;
  targets.add(0.0, 4 * 180.0);
  manager.set_power_targets(std::move(targets));
  manager.attach_channel(std::move(pair1.a));
  manager.attach_channel(std::move(pair2.a));

  pair1.b->send(hello_for(1, "bt.D.x", 2));
  pair2.b->send(hello_for(2, "sp.D.x", 2));
  manager.step(0.0);
  ASSERT_EQ(manager.active_jobs(), 2u);

  // Both jobs heartbeat until the split settles.
  for (int i = 1; i <= 3; ++i) {
    clock.advance(1.0);
    pair1.b->send(HeartbeatMsg{1, clock.now()});
    pair2.b->send(HeartbeatMsg{2, clock.now()});
    manager.step(clock.now());
  }
  const double shared_cap = manager.jobs().at(1).last_sent_cap_w;
  ASSERT_GT(shared_cap, 0.0);

  // Job 2 goes silent; job 1 keeps heartbeating.  After the lease
  // expires, job 2's budget flows to job 1.
  for (int i = 0; i < 10; ++i) {
    clock.advance(1.0);
    pair1.b->send(HeartbeatMsg{1, clock.now()});
    manager.step(clock.now());
  }
  EXPECT_EQ(manager.active_jobs(), 1u);
  EXPECT_EQ(manager.leases_expired(), 1u);
  EXPECT_GT(manager.jobs().at(1).last_sent_cap_w, shared_cap);
}

TEST(Liveness, FreshHelloRejoinsAfterLeaseExpiry) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  config.lease_s = 4.0;
  ClusterManager manager(config);
  manager.attach_channel(std::move(pair.a));

  pair.b->send(hello_for(3, "lu.D.x", 2));
  manager.step(0.0);
  ASSERT_EQ(manager.active_jobs(), 1u);

  clock.advance(10.0);
  manager.step(clock.now());
  ASSERT_EQ(manager.active_jobs(), 0u);
  ASSERT_EQ(manager.leases_expired(), 1u);

  // The endpoint comes back (restarted node) and re-announces itself on
  // the same channel; the manager re-registers it cleanly.
  pair.b->send(hello_for(3, "lu.D.x", 2));
  clock.advance(1.0);
  manager.step(clock.now());
  EXPECT_EQ(manager.active_jobs(), 1u);
  EXPECT_EQ(manager.jobs().at(3).classified_as, "lu.D.x");
}

TEST(Liveness, StaleFeedbackModelFallsBackToClassified) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  config.lease_s = 0.0;  // isolate the model TTL from lease expiry
  config.model_ttl_s = 8.0;
  ClusterManager manager(config);
  manager.attach_channel(std::move(pair.a));

  pair.b->send(hello_for(4, "bt.D.x", 2));
  ModelUpdateMsg update;
  update.job_id = 4;
  update.a = 1e-5;
  update.b = -0.004;
  update.c = 1.5;
  update.p_min_w = 140.0;
  update.p_max_w = 280.0;
  update.r2 = 0.99;
  update.from_feedback = true;
  pair.b->send(update);
  manager.step(0.0);
  ASSERT_TRUE(manager.jobs().at(4).model_from_feedback);

  // Nobody republishes the model; past the TTL the manager stops trusting
  // it and budgets with the classified model again.
  clock.advance(10.0);
  manager.step(clock.now());
  EXPECT_FALSE(manager.jobs().at(4).model_from_feedback);
}

TEST(Liveness, StaleMeasurementFreezesTheIntegral) {
  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  config.measurement_stale_s = 6.0;
  config.lease_s = 0.0;
  ClusterManager manager(config);
  util::TimeSeries targets;
  targets.add(0.0, 600.0);
  manager.set_power_targets(std::move(targets));

  manager.report_measured_power(0.0, 500.0);
  manager.report_measured_power(2.0, 500.0);  // fresh: integral winds up
  const double wound = manager.correction_w();
  EXPECT_GT(wound, 0.0);

  // 20 s gap: telemetry went stale; the error must not integrate over
  // the blackout.
  manager.report_measured_power(22.0, 500.0);
  EXPECT_DOUBLE_EQ(manager.correction_w(), wound);

  // Fresh cadence resumes: the integral moves again.
  manager.report_measured_power(24.0, 500.0);
  EXPECT_GT(manager.correction_w(), wound);
}

TEST(Liveness, SuspectJobFreezesTheIntegral) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  config.lease_s = 10.0;
  ClusterManager manager(config);
  util::TimeSeries targets;
  targets.add(0.0, 600.0);
  manager.set_power_targets(std::move(targets));
  manager.attach_channel(std::move(pair.a));

  pair.b->send(hello_for(5, "bt.D.x", 2));
  manager.step(0.0);
  manager.report_measured_power(0.0, 500.0);
  manager.report_measured_power(2.0, 500.0);
  const double wound = manager.correction_w();
  EXPECT_GT(wound, 0.0);
  EXPECT_FALSE(manager.liveness_suspect());

  // The job has been silent past half its lease: its power contribution
  // is in doubt, so the tracking gap must not wind the integral while the
  // lease question resolves.
  clock.advance(7.0);
  manager.step(clock.now());
  EXPECT_TRUE(manager.liveness_suspect());
  manager.report_measured_power(7.0, 500.0);
  EXPECT_DOUBLE_EQ(manager.correction_w(), wound);
}

}  // namespace
}  // namespace anor::cluster
