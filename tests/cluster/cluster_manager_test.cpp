#include "cluster/cluster_manager.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "cluster/transport.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace anor::cluster {
namespace {

struct ClusterManagerTest : ::testing::Test {
  ClusterManagerTest() {
    config.control_period_s = 1.0;
    config.cluster_nodes = 16;
    config.idle_node_power_w = 45.0;
  }

  ClusterManagerConfig config;
  util::VirtualClock clock;

  /// Register a job over a fresh channel pair; returns the job-side end.
  std::unique_ptr<MessageChannel> register_job(ClusterManager& manager, int job_id,
                                               const char* classified, int nodes) {
    pairs.push_back(make_inproc_pair(clock, 0.0));
    auto& pair = pairs.back();
    manager.attach_channel(std::move(pair.a));
    JobHelloMsg hello;
    hello.job_id = job_id;
    hello.job_name = std::string(classified) + "#" + std::to_string(job_id);
    hello.classified_as = classified;
    hello.nodes = nodes;
    pair.b->send(hello);
    return std::move(pair.b);
  }

  std::vector<InprocPair> pairs;
};

util::TimeSeries flat_targets(double watts) {
  util::TimeSeries targets;
  targets.add(0.0, watts);
  return targets;
}

TEST_F(ClusterManagerTest, RegistersJobOnHello) {
  ClusterManager manager(config);
  auto job = register_job(manager, 1, "bt.D.x", 2);
  manager.step(0.0);
  EXPECT_EQ(manager.active_jobs(), 1u);
  EXPECT_EQ(manager.jobs().at(1).classified_as, "bt.D.x");
}

TEST_F(ClusterManagerTest, GoodbyeRemovesJob) {
  ClusterManager manager(config);
  auto job = register_job(manager, 1, "bt.D.x", 2);
  manager.step(0.0);
  job->send(JobGoodbyeMsg{1, 1.0});
  clock.advance(1.0);
  manager.step(clock.now());
  EXPECT_EQ(manager.active_jobs(), 0u);
}

TEST_F(ClusterManagerTest, SendsBudgetsWhenTargetsSet) {
  ClusterManager manager(config);
  manager.set_power_targets(flat_targets(16 * 45.0 + 2 * 190.0 + 14 * 45.0));
  auto job = register_job(manager, 1, "bt.D.x", 2);
  manager.step(0.0);
  clock.advance(1.0);
  manager.step(clock.now());
  std::optional<PowerBudgetMsg> budget;
  while (auto msg = job->receive()) {
    if (const auto* b = std::get_if<PowerBudgetMsg>(&*msg)) budget = *b;
  }
  ASSERT_TRUE(budget.has_value());
  EXPECT_GE(budget->node_cap_w, 140.0);
  EXPECT_LE(budget->node_cap_w, 280.0);
}

TEST_F(ClusterManagerTest, NoTargetMeansUncappedBudget) {
  ClusterManager manager(config);
  auto job = register_job(manager, 1, "bt.D.x", 2);
  manager.step(0.0);
  clock.advance(1.0);
  manager.step(clock.now());
  std::optional<PowerBudgetMsg> budget;
  while (auto msg = job->receive()) {
    if (const auto* b = std::get_if<PowerBudgetMsg>(&*msg)) budget = *b;
  }
  ASSERT_TRUE(budget.has_value());
  EXPECT_NEAR(budget->node_cap_w, model::model_for_class("bt.D.x").p_max_w(), 1.0);
}

TEST_F(ClusterManagerTest, JobBudgetSubtractsIdleNodes) {
  ClusterManager manager(config);
  auto job = register_job(manager, 1, "bt.D.x", 2);
  manager.step(0.0);
  // 14 idle nodes at 45 W reserved off the top.
  EXPECT_NEAR(manager.job_budget_at(3000.0), 3000.0 - 14 * 45.0, 1e-9);
}

TEST_F(ClusterManagerTest, ModelUpdateChangesBudgetDecision) {
  // Two jobs: BT classified as IS (wrong) plus a real IS.  Under a tight
  // budget the manager splits power evenly-ish.  After the BT job's
  // feedback reveals its true sensitivity, BT must receive a higher cap.
  ClusterManager manager(config);
  manager.set_power_targets(flat_targets(13 * 45.0 + 3 * 180.0));
  auto bt_job = register_job(manager, 1, "is.D.x", 2);   // actually BT
  auto is_job = register_job(manager, 2, "is.D.x", 1);
  manager.step(0.0);
  clock.advance(1.0);
  manager.step(clock.now());
  std::optional<PowerBudgetMsg> before;
  while (auto msg = bt_job->receive()) {
    if (const auto* b = std::get_if<PowerBudgetMsg>(&*msg)) before = *b;
  }
  ASSERT_TRUE(before.has_value());

  // Feedback: the true BT model.
  const auto bt_model = model::model_for_class("bt.D.x");
  ModelUpdateMsg update;
  update.job_id = 1;
  update.a = bt_model.a();
  update.b = bt_model.b();
  update.c = bt_model.c();
  update.p_min_w = bt_model.p_min_w();
  update.p_max_w = bt_model.p_max_w();
  update.from_feedback = true;
  bt_job->send(update);
  clock.advance(1.0);
  manager.step(clock.now());
  std::optional<PowerBudgetMsg> after;
  while (auto msg = bt_job->receive()) {
    if (const auto* b = std::get_if<PowerBudgetMsg>(&*msg)) after = *b;
  }
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->node_cap_w, before->node_cap_w + 5.0);
  EXPECT_TRUE(manager.jobs().at(1).model_from_feedback);
}

TEST_F(ClusterManagerTest, RejectsModelUpdatesWhenDisabled) {
  config.accept_model_updates = false;
  ClusterManager manager(config);
  auto job = register_job(manager, 1, "is.D.x", 2);
  manager.step(0.0);
  ModelUpdateMsg update;
  update.job_id = 1;
  update.a = 0.0;
  update.b = 0.0;
  update.c = 9.0;
  update.p_min_w = 140.0;
  update.p_max_w = 280.0;
  job->send(update);
  clock.advance(1.0);
  manager.step(clock.now());
  EXPECT_FALSE(manager.jobs().at(1).model_from_feedback);
  EXPECT_NE(manager.jobs().at(1).model.c(), 9.0);
}

TEST_F(ClusterManagerTest, UnknownClassificationUsesDefaultModel) {
  config.default_model = model::DefaultModelPolicy::kMostSensitive;
  ClusterManager manager(config);
  auto job = register_job(manager, 1, "mystery.job", 2);
  manager.step(0.0);
  const auto& model = manager.jobs().at(1).model;
  // Most-sensitive default is EP-like: max slowdown near 0.8.
  EXPECT_NEAR(model.max_slowdown(), 0.80, 0.05);
}

TEST_F(ClusterManagerTest, SuppressesNoOpCapResends) {
  ClusterManager manager(config);
  manager.set_power_targets(flat_targets(4000.0));
  auto job = register_job(manager, 1, "bt.D.x", 2);
  manager.step(0.0);
  clock.advance(1.0);
  manager.step(clock.now());
  // Count only budget messages: the manager also heartbeats endpoints.
  int first_round = 0;
  while (auto msg = job->receive()) {
    if (std::get_if<PowerBudgetMsg>(&*msg)) ++first_round;
  }
  EXPECT_GE(first_round, 1);
  clock.advance(1.0);
  manager.step(clock.now());
  int second_round = 0;
  while (auto msg = job->receive()) {
    if (std::get_if<PowerBudgetMsg>(&*msg)) ++second_round;
  }
  EXPECT_EQ(second_round, 0);  // same cap: no resend
}

TEST_F(ClusterManagerTest, PowerTargetsFileRoundTrip) {
  util::TimeSeries targets;
  targets.add(0.0, 2500.0);
  targets.add(4.0, 2600.0);
  const util::Json json = power_targets_to_json(targets);
  const util::TimeSeries loaded = power_targets_from_json(json);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.sample_at(4.0), 2600.0);

  const std::string path = testing::TempDir() + "/anor_targets_test.json";
  util::save_json_file(path, json);
  ClusterManager manager(config);
  manager.load_power_targets(path);
  EXPECT_DOUBLE_EQ(manager.target_at(5.0).value(), 2600.0);
  std::remove(path.c_str());
}

TEST_F(ClusterManagerTest, TargetAtWithoutTargetsIsNullopt) {
  ClusterManager manager(config);
  EXPECT_FALSE(manager.target_at(0.0).has_value());
}

}  // namespace
}  // namespace anor::cluster
