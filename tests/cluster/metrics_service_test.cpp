#include "cluster/metrics_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"
#include "telemetry/prof_export.hpp"

namespace anor::cluster {
namespace {

TEST(MetricsExpositionServer, ServesProviderSnapshotToScraper) {
  std::atomic<int> calls{0};
  MetricsExpositionServer server(
      [&calls] {
        ++calls;
        return std::string("# TYPE up gauge\nup 1\n");
      },
      0);
  ASSERT_GT(server.port(), 0);

  std::string body;
  std::thread scraper([&body, port = server.port()] {
    body = fetch_metrics_exposition(port);
  });
  // The server is poll-driven: answer clients until the scraper returns.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  int served = 0;
  while (served == 0 && std::chrono::steady_clock::now() < deadline) {
    served = server.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  scraper.join();

  EXPECT_EQ(served, 1);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(body, "# TYPE up gauge\nup 1\n");
}

TEST(MetricsExpositionServer, FreshSnapshotPerScrapeAndLiveRegistryBody) {
  telemetry::MetricsRegistry registry;
  registry.counter("svc.scrapes");
  MetricsExpositionServer server(
      [&registry] {
        registry.counter("svc.scrapes").inc();
        return telemetry::prometheus_exposition(registry);
      },
      0);

  for (int scrape = 1; scrape <= 2; ++scrape) {
    std::string body;
    std::thread scraper([&body, port = server.port()] {
      body = fetch_metrics_exposition(port);
    });
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.poll() == 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    scraper.join();
    EXPECT_NE(body.find("svc_scrapes " + std::to_string(scrape)), std::string::npos)
        << body;
  }
}

TEST(MetricsExpositionServer, PollWithNoClientsReturnsZero) {
  MetricsExpositionServer server([] { return std::string("x"); }, 0);
  EXPECT_EQ(server.poll(), 0);
}

}  // namespace
}  // namespace anor::cluster
