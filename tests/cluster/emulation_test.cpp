#include "cluster/emulation.hpp"

#include <gtest/gtest.h>

namespace anor::cluster {
namespace {

EmulationConfig fast_config() {
  EmulationConfig config;
  config.node_count = 4;
  config.node.package.response_tau_s = 0.0;
  config.step_s = 0.25;
  config.controller.kernel.time_noise_sigma = 0.0;
  config.controller.kernel.power_noise_sigma_w = 0.0;
  config.controller.kernel.setup_s = 1.0;
  config.controller.kernel.teardown_s = 1.0;
  config.scheduler.power_aware_admission = false;
  return config;
}

workload::Schedule schedule_of(std::vector<std::pair<const char*, double>> jobs) {
  workload::Schedule schedule;
  int id = 0;
  for (const auto& [type, submit] : jobs) {
    workload::JobRequest request;
    request.job_id = id++;
    request.type_name = type;
    request.submit_time_s = submit;
    request.nodes = workload::find_job_type(type).nodes;
    schedule.jobs.push_back(request);
    schedule.duration_s = std::max(schedule.duration_s, submit);
  }
  return schedule;
}

workload::JobType small_bt() {
  workload::JobType type = workload::find_job_type("bt.D.x");
  return type;
}

TEST(EmulatedCluster, SingleJobRunsUncappedAtExpectedRuntime) {
  EmulationConfig config = fast_config();
  // Shrink BT so the test is fast: 20 epochs x 0.9 s = 18 s compute.
  workload::Schedule schedule = schedule_of({{"is.D.x", 0.0}});
  EmulatedCluster emu(config, schedule);
  const EmulationResult result = emu.run();
  ASSERT_EQ(result.completed.size(), 1u);
  const CompletedJob& job = result.completed[0];
  const double expected = uncapped_runtime_s(workload::find_job_type("is.D.x"),
                                             config.controller.kernel);
  EXPECT_NEAR(job.end_s - job.start_s, expected, 2.0);
  EXPECT_LT(std::abs(job.slowdown()), 0.1);
  EXPECT_EQ(job.report.epoch_count, workload::find_job_type("is.D.x").epochs);
}

TEST(EmulatedCluster, StaticBudgetSlowsSensitiveJob) {
  EmulationConfig config = fast_config();
  workload::Schedule schedule = schedule_of({{"bt.D.x", 0.0}});
  EmulatedCluster capped(config, schedule);
  util::TimeSeries targets;
  // 2 busy nodes at the floor + 2 idle nodes: a deep budget.
  targets.add(0.0, 2 * 140.0 + 2 * config.manager.idle_node_power_w);
  capped.set_power_targets(std::move(targets));
  const EmulationResult result = capped.run();
  ASSERT_EQ(result.completed.size(), 1u);
  // BT at the floor cap runs ~1.7x slower.
  EXPECT_GT(result.completed[0].slowdown(), 0.4);
}

TEST(EmulatedCluster, QueuedJobWaitsForNodes) {
  EmulationConfig config = fast_config();  // 4 nodes
  // Two 2-node jobs + a third: the third must wait.
  workload::Schedule schedule =
      schedule_of({{"bt.D.x", 0.0}, {"sp.D.x", 0.0}, {"lu.D.x", 1.0}});
  EmulatedCluster emu(config, schedule);
  const EmulationResult result = emu.run();
  ASSERT_EQ(result.completed.size(), 3u);
  double lu_start = 0.0;
  double first_end = 1e9;
  for (const auto& job : result.completed) {
    if (job.request.type_name == "lu.D.x") lu_start = job.start_s;
    else first_end = std::min(first_end, job.end_s);
  }
  EXPECT_GE(lu_start, first_end - 1.0);
}

TEST(EmulatedCluster, PowerSeriesTracksTarget) {
  EmulationConfig config = fast_config();
  config.node_count = 4;
  workload::Schedule schedule =
      schedule_of({{"bt.D.x", 0.0}, {"lu.D.x", 0.0}});
  EmulatedCluster emu(config, schedule);
  util::TimeSeries targets;
  const double target = 4 * 200.0;  // mid-range for 4 busy nodes
  targets.add(0.0, target);
  emu.set_power_targets(std::move(targets));
  const EmulationResult result = emu.run();
  // Once jobs are running (say after 10 s), measured power approaches the
  // target (both jobs draw up to their caps).
  double late_power = 0.0;
  int late_samples = 0;
  for (std::size_t i = 0; i < result.power_w.size(); ++i) {
    if (result.power_w.times()[i] > 10.0 && result.power_w.times()[i] < 60.0) {
      late_power += result.power_w.values()[i];
      ++late_samples;
    }
  }
  ASSERT_GT(late_samples, 0);
  late_power /= late_samples;
  EXPECT_NEAR(late_power, target, target * 0.15);
}

TEST(EmulatedCluster, DeterministicPerSeed) {
  EmulationConfig config = fast_config();
  workload::Schedule schedule = schedule_of({{"cg.D.x", 0.0}, {"mg.D.x", 5.0}});
  EmulatedCluster a(config, schedule);
  EmulatedCluster b(config, schedule);
  const EmulationResult ra = a.run();
  const EmulationResult rb = b.run();
  ASSERT_EQ(ra.completed.size(), rb.completed.size());
  for (std::size_t i = 0; i < ra.completed.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.completed[i].end_s, rb.completed[i].end_s);
  }
}

TEST(EmulatedCluster, PerfVariationChangesRuntimes) {
  EmulationConfig config = fast_config();
  config.perf_variation_sigma = 0.2;
  workload::Schedule schedule = schedule_of({{"cg.D.x", 0.0}});
  EmulatedCluster emu(config, schedule);
  const EmulationResult result = emu.run();
  ASSERT_EQ(result.completed.size(), 1u);
  const double nominal = uncapped_runtime_s(workload::find_job_type("cg.D.x"),
                                            config.controller.kernel);
  EXPECT_GT(std::abs((result.completed[0].end_s - result.completed[0].start_s) - nominal),
            0.5);
}

TEST(EmulatedCluster, SlowdownByTypeAggregates) {
  EmulationConfig config = fast_config();
  workload::Schedule schedule =
      schedule_of({{"is.D.x", 0.0}, {"is.D.x", 0.0}, {"cg.D.x", 0.0}});
  EmulatedCluster emu(config, schedule);
  const EmulationResult result = emu.run();
  const auto by_type = result.slowdown_by_type();
  EXPECT_EQ(by_type.at("is.D.x").count(), 2u);
  EXPECT_EQ(by_type.at("cg.D.x").count(), 1u);
}

TEST(EmulatedCluster, QosRecordsIncludeQueueTime) {
  EmulationConfig config = fast_config();
  config.node_count = 1;
  workload::Schedule schedule = schedule_of({{"cg.D.x", 0.0}, {"cg.D.x", 0.0}});
  EmulatedCluster emu(config, schedule);
  const EmulationResult result = emu.run();
  ASSERT_EQ(result.qos.records().size(), 2u);
  // Second job waited for the first: its Q reflects the queue delay.
  double max_q = 0.0;
  for (const auto& r : result.qos.records()) max_q = std::max(max_q, r.qos_degradation());
  EXPECT_GT(max_q, 0.5);
}

TEST(EmulatedCluster, BalancerAgentHelpsUnderNodeVariation) {
  // Same seeded cluster with node-to-node variation; the power_balancer
  // agent shifts watts toward each job's lagging nodes and should not be
  // slower than the governor on any multi-node job.
  const auto run = [](geopm::AgentKind agent) {
    EmulationConfig config = fast_config();
    config.node_count = 8;
    config.perf_variation_sigma = 0.15;
    config.seed = 17;
    config.controller.agent = agent;
    config.controller.tree_fanout = 8;
    workload::Schedule schedule;
    workload::JobRequest job;
    job.job_id = 0;
    job.type_name = "lu.D.x";
    job.submit_time_s = 0.0;
    job.nodes = 8;  // one wide job across the varied nodes
    schedule.jobs.push_back(job);
    EmulatedCluster emu(config, schedule);
    util::TimeSeries targets;
    targets.add(0.0, 8 * 200.0);
    emu.set_power_targets(std::move(targets));
    const auto result = emu.run();
    return result.completed.at(0).end_s - result.completed.at(0).start_s;
  };
  const double governor_s = run(geopm::AgentKind::kPowerGovernor);
  const double balancer_s = run(geopm::AgentKind::kPowerBalancer);
  EXPECT_LT(balancer_s, governor_s * 1.001)
      << "governor=" << governor_s << " balancer=" << balancer_s;
}

TEST(UncappedRuntime, AddsSetupAndTeardown) {
  workload::KernelConfig kernel;
  kernel.setup_s = 2.0;
  kernel.teardown_s = 1.0;
  kernel.perf_multiplier = 1.0;
  const auto& is = workload::find_job_type("is.D.x");
  EXPECT_DOUBLE_EQ(uncapped_runtime_s(is, kernel), is.min_exec_time_s() + 3.0);
}

}  // namespace
}  // namespace anor::cluster
