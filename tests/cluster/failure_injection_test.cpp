// Failure injection on the tier link: a lossy channel decorator drops a
// fraction of messages.  The protocol must degrade gracefully — budgets
// are re-derivable at the next control period, model updates are resent
// only if a better candidate appears, and a dead peer tears the job out
// of the manager's books.
#include <gtest/gtest.h>

#include "cluster/cluster_manager.hpp"
#include "cluster/transport.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace anor::cluster {
namespace {

/// Decorator dropping a seeded fraction of sends in each direction.
class FlakyChannel final : public MessageChannel {
 public:
  FlakyChannel(std::unique_ptr<MessageChannel> inner, double drop_rate, std::uint64_t seed)
      : inner_(std::move(inner)), drop_rate_(drop_rate), rng_(seed) {}

  bool send(const Message& message) override {
    if (rng_.coin(drop_rate_)) {
      ++dropped_;
      return true;  // the sender believes it went out (as with UDP-style loss)
    }
    return inner_->send(message);
  }
  std::optional<Message> receive() override { return inner_->receive(); }
  bool connected() const override { return inner_->connected(); }

  int dropped() const { return dropped_; }

 private:
  std::unique_ptr<MessageChannel> inner_;
  double drop_rate_;
  util::Rng rng_;
  int dropped_ = 0;
};

TEST(FailureInjection, BudgetsRecoverFromDroppedSends) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  // Manager's outbound path drops 60 % of messages.
  auto flaky = std::make_unique<FlakyChannel>(std::move(pair.a), 0.6, 7);
  FlakyChannel* flaky_raw = flaky.get();

  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  config.control_period_s = 1.0;
  config.closed_loop = false;
  // The bare test peer never heartbeats; disable the liveness lease so the
  // job is not declared dead while we measure the drop behavior.
  config.lease_s = 0.0;
  ClusterManager manager(config);
  util::TimeSeries targets;
  targets.add(0.0, 2 * 180.0 + 2 * config.idle_node_power_w);
  manager.set_power_targets(std::move(targets));
  manager.attach_channel(std::move(flaky));

  JobHelloMsg hello;
  hello.job_id = 1;
  hello.job_name = "bt.D.x#1";
  hello.classified_as = "bt.D.x";
  hello.nodes = 2;
  pair.b->send(hello);

  // The manager resends whenever its last *acknowledged-as-sent* cap is
  // stale; with drops reported as successes, the suppression keeps it
  // from retrying — so the test drives target changes, each giving a new
  // chance to land.
  int received = 0;
  for (int step = 0; step < 60; ++step) {
    clock.advance(1.0);
    if (step % 5 == 0) {
      util::TimeSeries wobble;
      wobble.add(0.0, 2 * (170.0 + (step % 10)) + 2 * config.idle_node_power_w);
      manager.set_power_targets(std::move(wobble));
    }
    manager.step(clock.now());
    while (auto msg = pair.b->receive()) {
      if (std::get_if<PowerBudgetMsg>(&*msg)) ++received;
    }
  }
  EXPECT_GT(flaky_raw->dropped(), 3);
  EXPECT_GT(received, 2);  // enough budgets still landed
}

TEST(FailureInjection, DeadPeerRemovesChannelAndJobSendPath) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManagerConfig config;
  config.cluster_nodes = 4;
  ClusterManager manager(config);
  manager.attach_channel(std::move(pair.a));

  JobHelloMsg hello;
  hello.job_id = 2;
  hello.job_name = "sp.D.x#2";
  hello.classified_as = "sp.D.x";
  hello.nodes = 2;
  pair.b->send(hello);
  manager.step(0.0);
  ASSERT_EQ(manager.active_jobs(), 1u);

  // Peer dies without a goodbye (node crash).
  pair.b.reset();
  clock.advance(5.0);
  manager.step(clock.now());
  // The channel is dropped; the job record remains but loses its send
  // path (the scheduler above would reclaim its nodes out of band).
  ASSERT_EQ(manager.active_jobs(), 1u);
  EXPECT_EQ(manager.jobs().at(2).channel, nullptr);
  // Further steps are harmless.
  clock.advance(5.0);
  EXPECT_NO_THROW(manager.step(clock.now()));
}

TEST(FailureInjection, DuplicateHelloOverwritesCleanly) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManagerConfig config;
  ClusterManager manager(config);
  manager.attach_channel(std::move(pair.a));

  JobHelloMsg hello;
  hello.job_id = 3;
  hello.job_name = "bt.D.x#3";
  hello.classified_as = "is.D.x";
  hello.nodes = 2;
  pair.b->send(hello);
  hello.classified_as = "bt.D.x";  // retransmit with corrected label
  pair.b->send(hello);
  manager.step(0.0);
  ASSERT_EQ(manager.active_jobs(), 1u);
  EXPECT_EQ(manager.jobs().at(3).classified_as, "bt.D.x");
}

TEST(FailureInjection, GoodbyeForUnknownJobIgnored) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManager manager(ClusterManagerConfig{});
  manager.attach_channel(std::move(pair.a));
  pair.b->send(JobGoodbyeMsg{99, 0.0});
  EXPECT_NO_THROW(manager.step(0.0));
  EXPECT_EQ(manager.active_jobs(), 0u);
}

TEST(FailureInjection, ModelUpdateBeforeHelloIgnored) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  ClusterManager manager(ClusterManagerConfig{});
  manager.attach_channel(std::move(pair.a));
  ModelUpdateMsg update;
  update.job_id = 5;
  update.a = 0.0;
  update.b = 0.0;
  update.c = 1.0;
  update.p_min_w = 140.0;
  update.p_max_w = 280.0;
  pair.b->send(update);
  EXPECT_NO_THROW(manager.step(0.0));
  EXPECT_EQ(manager.active_jobs(), 0u);
}

}  // namespace
}  // namespace anor::cluster
