#include "cluster/transport.hpp"

#include <gtest/gtest.h>

namespace anor::cluster {
namespace {

TEST(InprocTransport, MessageDeliveredAfterLatency) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.5);
  pair.a->send(PowerBudgetMsg{1, 200.0, 0.0});
  // Not yet visible: the virtual clock has not advanced past the latency.
  EXPECT_FALSE(pair.b->receive().has_value());
  clock.advance(0.4);
  EXPECT_FALSE(pair.b->receive().has_value());
  clock.advance(0.2);
  const auto msg = pair.b->receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_NE(std::get_if<PowerBudgetMsg>(&*msg), nullptr);
}

TEST(InprocTransport, Bidirectional) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  pair.a->send(PowerBudgetMsg{1, 200.0, 0.0});
  pair.b->send(JobGoodbyeMsg{1, 0.0});
  EXPECT_TRUE(pair.b->receive().has_value());
  EXPECT_TRUE(pair.a->receive().has_value());
}

TEST(InprocTransport, FifoOrder) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  for (int i = 0; i < 5; ++i) pair.a->send(PowerBudgetMsg{i, 0.0, 0.0});
  for (int i = 0; i < 5; ++i) {
    const auto msg = pair.b->receive();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(job_id_of(*msg), i);
  }
}

TEST(InprocTransport, PeerDestructionClosesChannel) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  pair.a->send(PowerBudgetMsg{1, 100.0, 0.0});
  pair.a.reset();  // manager side goes away
  // Queued message still deliverable; then the channel reads as closed.
  EXPECT_TRUE(pair.b->receive().has_value());
  EXPECT_FALSE(pair.b->receive().has_value());
  EXPECT_FALSE(pair.b->connected());
  EXPECT_FALSE(pair.b->send(JobGoodbyeMsg{1, 0.0}));
}

TEST(InprocTransport, ConnectedWhileQueuedOrOpen) {
  util::VirtualClock clock;
  InprocPair pair = make_inproc_pair(clock, 0.0);
  EXPECT_TRUE(pair.b->connected());
}

}  // namespace
}  // namespace anor::cluster
