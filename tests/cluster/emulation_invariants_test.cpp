// Whole-system invariants of the emulated cluster, checked while the full
// two-tier stack runs: energy accounting closes, caps stay inside the
// hardware range, reports are self-consistent, and node bookkeeping never
// leaks.
#include <gtest/gtest.h>

#include "cluster/emulation.hpp"
#include "core/framework.hpp"
#include "core/policies.hpp"

namespace anor::cluster {
namespace {

EmulationConfig invariant_config() {
  EmulationConfig config;
  config.node_count = 6;
  config.node.package.response_tau_s = 0.2;
  config.step_s = 0.25;
  config.manager.control_period_s = 0.5;
  config.endpoint.period_s = 0.5;
  config.scheduler.power_aware_admission = true;
  return config;
}

workload::Schedule busy_schedule() {
  workload::Schedule schedule;
  int id = 0;
  for (double t : {0.0, 0.0, 10.0, 40.0, 80.0}) {
    for (const char* type : {"cg.D.x", "mg.D.x"}) {
      workload::JobRequest request;
      request.job_id = id++;
      request.type_name = type;
      request.submit_time_s = t;
      request.nodes = 1;
      schedule.jobs.push_back(request);
    }
  }
  schedule.duration_s = 100.0;
  return schedule;
}

TEST(EmulationInvariants, CapsAlwaysWithinHardwareRange) {
  EmulatedCluster emu(invariant_config(), busy_schedule());
  util::TimeSeries targets;
  targets.add(0.0, 6 * 180.0);
  emu.set_power_targets(std::move(targets));
  int checks = 0;
  while (emu.step()) {
    for (int n = 0; n < emu.hardware().node_count(); ++n) {
      const double cap = emu.hardware().node(n).effective_cap_w();
      ASSERT_GE(cap, 140.0 - 1e-9);
      ASSERT_LE(cap, 280.0 + 1e-9);
      ++checks;
    }
    ASSERT_LT(emu.clock().now(), 3600.0) << "schedule failed to drain";
  }
  EXPECT_GT(checks, 1000);
}

TEST(EmulationInvariants, JobEnergySumsWithinClusterEnergy) {
  EmulatedCluster emu(invariant_config(), busy_schedule());
  const auto result = emu.run();
  ASSERT_EQ(result.completed.size(), busy_schedule().jobs.size());
  double job_energy = 0.0;
  for (const auto& job : result.completed) {
    EXPECT_GT(job.report.package_energy_j, 0.0);
    job_energy += job.report.package_energy_j;
  }
  // Cluster energy = jobs + idle-node draw; jobs can never exceed it.
  const double cluster_energy = emu.hardware().total_energy_j();
  EXPECT_LE(job_energy, cluster_energy + 1.0);
  EXPECT_GT(job_energy, 0.5 * cluster_energy);  // the cluster was mostly busy
}

TEST(EmulationInvariants, ReportsSelfConsistent) {
  EmulatedCluster emu(invariant_config(), busy_schedule());
  const auto result = emu.run();
  for (const auto& job : result.completed) {
    EXPECT_NEAR(job.report.runtime_s, job.end_s - job.start_s, 1e-6);
    EXPECT_LE(job.report.compute_runtime_s, job.report.runtime_s + 1e-6);
    EXPECT_GT(job.report.epoch_count, 0);
    EXPECT_NEAR(job.report.average_power_w,
                job.report.package_energy_j / job.report.runtime_s, 1e-6);
    EXPECT_GE(job.report.average_cap_w, 140.0 - 1e-6);
    EXPECT_LE(job.report.average_cap_w, 280.0 + 1e-6);
    EXPECT_GE(job.start_s, job.submit_s - 1e-9);
    EXPECT_GT(job.end_s, job.start_s);
  }
}

TEST(EmulationInvariants, NodesNeverLeak) {
  EmulatedCluster emu(invariant_config(), busy_schedule());
  while (emu.step()) {
    int busy = 0;
    for (int n = 0; n < emu.hardware().node_count(); ++n) {
      if (emu.hardware().node(n).busy()) ++busy;
    }
    // Busy hardware nodes match the node demand of running jobs.
    int expected = 0;
    expected = static_cast<int>(emu.running_jobs());  // 1 node per job here
    ASSERT_EQ(busy, expected) << "t=" << emu.clock().now();
  }
  // Everything released at the end.
  for (int n = 0; n < emu.hardware().node_count(); ++n) {
    EXPECT_FALSE(emu.hardware().node(n).busy());
  }
}

TEST(EmulationInvariants, PowerSeriesMatchesHardwareScale) {
  EmulatedCluster emu(invariant_config(), busy_schedule());
  const auto result = emu.run();
  for (double v : result.power_w.values()) {
    EXPECT_GE(v, 6 * 2 * 10.0);          // above deep-idle floor
    EXPECT_LE(v, 6 * 280.0 + 1.0);       // below all-nodes-at-TDP
  }
}

TEST(EmulationInvariants, PoliciesAllDrainTheSameSchedule) {
  for (const core::PolicyRef policy :
       {core::PolicyRef("uniform"), core::PolicyRef("characterized"),
        core::PolicyRef("misclassified"), core::PolicyRef("adjusted")}) {
    core::Experiment experiment;
    experiment.base = invariant_config();
    experiment.node_count = 6;
    experiment.policy = policy;
    experiment.schedule = busy_schedule();
    if (core::expects_misclassification(policy)) {
      workload::misclassify(experiment.schedule, "cg.D.x", "is.D.x");
    }
    experiment.static_budget_w = 6 * 190.0;
    const auto result = core::run_experiment(experiment);
    EXPECT_EQ(result.completed.size(), busy_schedule().jobs.size())
        << core::to_string(policy);
  }
}

}  // namespace
}  // namespace anor::cluster
