// Full tier link over a real TCP socket: a ClusterManager serving budgets
// through a TcpChannel to a real JobEndpointProcess (with its modeler and
// feedback machinery) attached to a real GEOPM endpoint — the deployment
// topology of paper Fig. 2, minus only the virtual silicon behind it.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster_manager.hpp"
#include "cluster/job_endpoint.hpp"
#include "cluster/tcp_transport.hpp"
#include "geopm/endpoint.hpp"
#include "geopm/signals.hpp"
#include "model/default_models.hpp"
#include "util/clock.hpp"

namespace anor::cluster {
namespace {

std::unique_ptr<TcpChannel> accept_one(TcpListener& listener) {
  for (int i = 0; i < 500; ++i) {
    if (auto channel = listener.accept()) return channel;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return nullptr;
}

TEST(TcpIntegration, EndToEndBudgetAndFeedbackOverSocket) {
  TcpListener listener;
  auto client = tcp_connect(listener.port());
  auto server = accept_one(listener);
  ASSERT_NE(server, nullptr);

  // Head node: manager with a static target.
  ClusterManagerConfig manager_config;
  manager_config.cluster_nodes = 4;
  manager_config.control_period_s = 0.5;
  manager_config.closed_loop = false;
  ClusterManager manager(manager_config);
  util::TimeSeries targets;
  targets.add(0.0, 2 * 200.0 + 2 * manager_config.idle_node_power_w);
  manager.set_power_targets(std::move(targets));
  manager.attach_channel(std::move(server));

  // Compute node: a real endpoint process, misclassified as IS.
  util::VirtualClock clock;
  geopm::Endpoint geopm_endpoint;
  JobEndpointConfig endpoint_config;
  endpoint_config.period_s = 0.5;
  endpoint_config.feedback_enabled = true;
  JobEndpointProcess endpoint(7, "bt.D.x#7", "is.D.x", 2,
                              model::model_for_class("is.D.x"), geopm_endpoint, *client,
                              0.0, endpoint_config);

  const auto& bt = workload::find_job_type("bt.D.x");
  // Drive both sides: synthetic BT epochs flow into the GEOPM endpoint,
  // budgets flow back over the socket.  TCP delivery is asynchronous, so
  // poll both loops.
  double epoch_t = 0.0;
  long epochs = 0;
  double last_cap = workload::kNodeMaxCapW;
  bool saw_initial_budget = false;
  for (int iteration = 0; iteration < 600 && !endpoint.published_feedback(); ++iteration) {
    clock.advance(0.5);
    manager.step(clock.now());

    // Feed epochs at the currently applied cap's true BT rate.
    while (epoch_t + bt.epoch_time_s(last_cap) <= clock.now()) {
      epoch_t += bt.epoch_time_s(last_cap);
      ++epochs;
      std::vector<double> sample(geopm::kSampleSize, 0.0);
      sample[geopm::kSampleEpochCount] = static_cast<double>(epochs);
      sample[geopm::kSampleTimestamp] = epoch_t;
      sample[geopm::kSampleEpochTime] = epoch_t;
      geopm_endpoint.write_sample(epoch_t, sample);
    }
    endpoint.step(clock.now());
    if (auto policy = geopm_endpoint.read_policy()) {
      last_cap = policy->policy[geopm::kPolicyPowerCap];
      saw_initial_budget = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_TRUE(saw_initial_budget);
  EXPECT_TRUE(endpoint.published_feedback());
  // The manager's model for job 7 was corrected over the socket.
  for (int i = 0; i < 200 && !manager.jobs().empty() &&
                  !manager.jobs().begin()->second.model_from_feedback;
       ++i) {
    clock.advance(0.5);
    manager.step(clock.now());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(manager.active_jobs(), 1u);
  EXPECT_TRUE(manager.jobs().begin()->second.model_from_feedback);
  // ... and it predicts BT-like epoch times.
  EXPECT_NEAR(manager.jobs().begin()->second.model.time_at(278.0), 0.9, 0.05);

  endpoint.finish(clock.now());
  for (int i = 0; i < 200 && manager.active_jobs() != 0; ++i) {
    clock.advance(0.5);
    manager.step(clock.now());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(manager.active_jobs(), 0u);
}

}  // namespace
}  // namespace anor::cluster
