#include "cluster/messages.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace anor::cluster {
namespace {

TEST(Messages, HelloRoundTrip) {
  JobHelloMsg msg;
  msg.job_id = 7;
  msg.job_name = "bt.D.x#7";
  msg.classified_as = "is.D.x";
  msg.nodes = 2;
  msg.timestamp_s = 1.25;
  const Message decoded = decode_text(encode_text(msg));
  const auto* hello = std::get_if<JobHelloMsg>(&decoded);
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->job_id, 7);
  EXPECT_EQ(hello->job_name, "bt.D.x#7");
  EXPECT_EQ(hello->classified_as, "is.D.x");
  EXPECT_EQ(hello->nodes, 2);
  EXPECT_DOUBLE_EQ(hello->timestamp_s, 1.25);
}

TEST(Messages, BudgetRoundTrip) {
  PowerBudgetMsg msg;
  msg.job_id = 3;
  msg.node_cap_w = 187.5;
  msg.timestamp_s = 99.0;
  const Message decoded = decode_text(encode_text(msg));
  const auto* budget = std::get_if<PowerBudgetMsg>(&decoded);
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->node_cap_w, 187.5);
}

TEST(Messages, ModelRoundTripPreservesCoefficients) {
  ModelUpdateMsg msg;
  msg.job_id = 11;
  msg.a = 1.25e-5;
  msg.b = -0.00715;
  msg.c = 2.125;
  msg.p_min_w = 140.0;
  msg.p_max_w = 276.0;
  msg.r2 = 0.97;
  msg.from_feedback = true;
  msg.timestamp_s = 10.0;
  const Message decoded = decode_text(encode_text(msg));
  const auto* model = std::get_if<ModelUpdateMsg>(&decoded);
  ASSERT_NE(model, nullptr);
  EXPECT_DOUBLE_EQ(model->a, 1.25e-5);
  EXPECT_DOUBLE_EQ(model->b, -0.00715);
  EXPECT_DOUBLE_EQ(model->c, 2.125);
  EXPECT_TRUE(model->from_feedback);
}

TEST(Messages, GoodbyeRoundTrip) {
  JobGoodbyeMsg msg;
  msg.job_id = 4;
  msg.timestamp_s = 55.0;
  const Message decoded = decode_text(encode_text(msg));
  EXPECT_NE(std::get_if<JobGoodbyeMsg>(&decoded), nullptr);
}

TEST(Messages, JobIdOfEveryVariant) {
  EXPECT_EQ(job_id_of(JobHelloMsg{5}), 5);
  EXPECT_EQ(job_id_of(PowerBudgetMsg{6}), 6);
  EXPECT_EQ(job_id_of(ModelUpdateMsg{7}), 7);
  EXPECT_EQ(job_id_of(JobGoodbyeMsg{8}), 8);
}

TEST(Messages, UnknownTypeThrows) {
  EXPECT_THROW(decode_text(R"({"type": "alien"})"), util::ConfigError);
  EXPECT_THROW(decode_text(R"({"no_type": 1})"), util::ConfigError);
  EXPECT_THROW(decode_text("not json"), util::ConfigError);
}

TEST(Messages, MissingFieldThrows) {
  EXPECT_THROW(decode_text(R"({"type": "budget", "job_id": 1})"), util::ConfigError);
}

}  // namespace
}  // namespace anor::cluster
