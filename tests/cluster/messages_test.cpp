#include "cluster/messages.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace anor::cluster {
namespace {

TEST(Messages, HelloRoundTrip) {
  JobHelloMsg msg;
  msg.job_id = 7;
  msg.job_name = "bt.D.x#7";
  msg.classified_as = "is.D.x";
  msg.nodes = 2;
  msg.timestamp_s = 1.25;
  const Message decoded = decode_text(encode_text(msg));
  const auto* hello = std::get_if<JobHelloMsg>(&decoded);
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->job_id, 7);
  EXPECT_EQ(hello->job_name, "bt.D.x#7");
  EXPECT_EQ(hello->classified_as, "is.D.x");
  EXPECT_EQ(hello->nodes, 2);
  EXPECT_DOUBLE_EQ(hello->timestamp_s, 1.25);
}

TEST(Messages, BudgetRoundTrip) {
  PowerBudgetMsg msg;
  msg.job_id = 3;
  msg.node_cap_w = 187.5;
  msg.timestamp_s = 99.0;
  const Message decoded = decode_text(encode_text(msg));
  const auto* budget = std::get_if<PowerBudgetMsg>(&decoded);
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->node_cap_w, 187.5);
}

TEST(Messages, ModelRoundTripPreservesCoefficients) {
  ModelUpdateMsg msg;
  msg.job_id = 11;
  msg.a = 1.25e-5;
  msg.b = -0.00715;
  msg.c = 2.125;
  msg.p_min_w = 140.0;
  msg.p_max_w = 276.0;
  msg.r2 = 0.97;
  msg.from_feedback = true;
  msg.timestamp_s = 10.0;
  const Message decoded = decode_text(encode_text(msg));
  const auto* model = std::get_if<ModelUpdateMsg>(&decoded);
  ASSERT_NE(model, nullptr);
  EXPECT_DOUBLE_EQ(model->a, 1.25e-5);
  EXPECT_DOUBLE_EQ(model->b, -0.00715);
  EXPECT_DOUBLE_EQ(model->c, 2.125);
  EXPECT_TRUE(model->from_feedback);
}

TEST(Messages, GoodbyeRoundTrip) {
  JobGoodbyeMsg msg;
  msg.job_id = 4;
  msg.timestamp_s = 55.0;
  const Message decoded = decode_text(encode_text(msg));
  EXPECT_NE(std::get_if<JobGoodbyeMsg>(&decoded), nullptr);
}

TEST(Messages, JobIdOfEveryVariant) {
  EXPECT_EQ(job_id_of(JobHelloMsg{5}), 5);
  EXPECT_EQ(job_id_of(PowerBudgetMsg{6}), 6);
  EXPECT_EQ(job_id_of(ModelUpdateMsg{7}), 7);
  EXPECT_EQ(job_id_of(JobGoodbyeMsg{8}), 8);
}

TEST(Messages, UnknownTypeThrows) {
  EXPECT_THROW(decode_text(R"({"type": "alien"})"), util::ConfigError);
  EXPECT_THROW(decode_text(R"({"no_type": 1})"), util::ConfigError);
  EXPECT_THROW(decode_text("not json"), util::ConfigError);
}

TEST(Messages, MissingFieldThrows) {
  EXPECT_THROW(decode_text(R"({"type": "budget", "job_id": 1})"), util::ConfigError);
}

TEST(Messages, HeartbeatRoundTripKeepsSeq) {
  HeartbeatMsg beat;
  beat.job_id = 9;
  beat.timestamp_s = 33.5;
  beat.seq = 1234;
  const Message decoded = decode_text(encode_text(beat));
  const auto* out = std::get_if<HeartbeatMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->job_id, 9);
  EXPECT_DOUBLE_EQ(out->timestamp_s, 33.5);
  EXPECT_EQ(out->seq, 1234u);
}

TEST(Messages, SeqHelpersCoverEveryVariant) {
  Message messages[] = {JobHelloMsg{}, PowerBudgetMsg{}, ModelUpdateMsg{},
                        JobGoodbyeMsg{}, HeartbeatMsg{}};
  std::uint64_t next = 41;
  for (Message& message : messages) {
    EXPECT_EQ(seq_of(message), 0u);  // unstamped
    set_seq(message, ++next);
    EXPECT_EQ(seq_of(message), next);
    EXPECT_FALSE(type_name_of(message).empty());
  }
}

TEST(Messages, FramedRoundTrip) {
  PowerBudgetMsg msg;
  msg.job_id = 3;
  msg.node_cap_w = 212.5;
  msg.timestamp_s = 17.0;
  msg.seq = 99;
  const Message decoded = decode_framed_text(encode_framed_text(msg));
  const auto* budget = std::get_if<PowerBudgetMsg>(&decoded);
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->node_cap_w, 212.5);
  EXPECT_EQ(budget->seq, 99u);
}

TEST(Messages, FramedAcceptsLegacyUnframedText) {
  PowerBudgetMsg msg;
  msg.job_id = 1;
  msg.node_cap_w = 150.0;
  const Message decoded = decode_framed_text(encode_text(msg));
  EXPECT_NE(std::get_if<PowerBudgetMsg>(&decoded), nullptr);
}

TEST(Messages, FramedRejectsBitFlips) {
  PowerBudgetMsg msg;
  msg.job_id = 3;
  msg.node_cap_w = 212.5;
  const std::string frame = encode_framed_text(msg);
  // Flip one byte at every position; every corruption must be rejected
  // (never decoded into a different budget) — the CRC covers the payload
  // and the frame shape covers the envelope.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string corrupted = frame;
    corrupted[i] ^= 0x20;
    if (corrupted == frame) continue;
    try {
      const Message decoded = decode_framed_text(corrupted);
      // A flip inside the crc digits can still parse if it produces the
      // matching checksum text — astronomically unlikely; treat decode
      // success with identical content as acceptable.
      const auto* budget = std::get_if<PowerBudgetMsg>(&decoded);
      ASSERT_NE(budget, nullptr) << "corrupt frame decoded as another type";
      EXPECT_DOUBLE_EQ(budget->node_cap_w, 212.5);
    } catch (const util::TransportError&) {
      // expected: rejected
    }
  }
}

TEST(Messages, FramedRejectsHostileBytes) {
  EXPECT_THROW(decode_framed_text(""), util::TransportError);
  EXPECT_THROW(decode_framed_text("\x00\xff\xfe garbage"), util::TransportError);
  EXPECT_THROW(decode_framed_text("{\"crc\": 1, \"msg\": 7}"), util::TransportError);
  EXPECT_THROW(decode_framed_text("{\"crc\": 1}"), util::TransportError);
  // Valid JSON, valid shape, wrong checksum.
  EXPECT_THROW(
      decode_framed_text(
          R"({"crc": 12345, "msg": {"type": "goodbye", "job_id": 1, "timestamp_s": 0, "seq": 0}})"),
      util::TransportError);
  // Checksum valid but the inner message is malformed.  Build the frame
  // through util::Json so the checksum is computed over the exact dump the
  // decoder re-derives.
  util::JsonObject inner;
  inner["type"] = util::Json(std::string("alien"));
  const std::string inner_text = util::Json(inner).dump();
  util::JsonObject frame;
  frame["crc"] = util::Json(static_cast<double>(message_checksum(inner_text)));
  frame["msg"] = util::Json(inner);
  EXPECT_THROW(decode_framed_text(util::Json(std::move(frame)).dump()),
               util::TransportError);
}

TEST(Messages, ChecksumIsStableAndSensitive) {
  EXPECT_EQ(message_checksum("abc"), message_checksum("abc"));
  EXPECT_NE(message_checksum("abc"), message_checksum("abd"));
  EXPECT_NE(message_checksum(""), message_checksum(" "));
}

}  // namespace
}  // namespace anor::cluster
