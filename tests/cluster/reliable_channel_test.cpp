// ReliableChannel: sequence stamping, retry with backoff, bounded outbox,
// and receiver-side duplicate/stale rejection.  All timing is virtual
// (driven through poll), so every expectation here is deterministic.
#include "cluster/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "cluster/messages.hpp"

namespace anor::cluster {
namespace {

/// Inner channel the tests script: sends can be made to fail, delivered
/// messages are recorded, and the receive queue is hand-fed.
class ScriptedChannel final : public MessageChannel {
 public:
  bool send(const Message& message) override {
    if (fail_sends) {
      ++failed_sends;
      return false;
    }
    sent.push_back(message);
    return true;
  }
  std::optional<Message> receive() override {
    if (inbox.empty()) return std::nullopt;
    Message message = inbox.front();
    inbox.pop_front();
    return message;
  }
  bool connected() const override { return true; }

  bool fail_sends = false;
  int failed_sends = 0;
  std::vector<Message> sent;
  std::deque<Message> inbox;
};

ReliableChannelConfig no_jitter_config() {
  ReliableChannelConfig config;
  config.retry_jitter_frac = 0.0;  // exact backoff arithmetic in tests
  return config;
}

PowerBudgetMsg budget(int job_id, double cap_w) {
  PowerBudgetMsg msg;
  msg.job_id = job_id;
  msg.node_cap_w = cap_w;
  return msg;
}

TEST(ReliableChannel, StampsMonotonicSequences) {
  ScriptedChannel inner;
  ReliableChannel channel(inner, no_jitter_config());
  channel.send(budget(1, 150.0));
  channel.send(budget(1, 160.0));
  channel.send(HeartbeatMsg{1});
  ASSERT_EQ(inner.sent.size(), 3u);
  EXPECT_EQ(seq_of(inner.sent[0]), 1u);
  EXPECT_EQ(seq_of(inner.sent[1]), 2u);
  EXPECT_EQ(seq_of(inner.sent[2]), 3u);
}

TEST(ReliableChannel, FailedSendIsQueuedAndReportedAsSuccess) {
  ScriptedChannel inner;
  ReliableChannel channel(inner, no_jitter_config());
  inner.fail_sends = true;
  EXPECT_TRUE(channel.send(budget(1, 150.0)));  // queued, not lost
  EXPECT_EQ(channel.outbox_size(), 1u);
  EXPECT_TRUE(inner.sent.empty());
}

TEST(ReliableChannel, RetriesWithExponentialBackoff) {
  ScriptedChannel inner;
  ReliableChannel channel(inner, no_jitter_config());
  inner.fail_sends = true;
  channel.send(budget(1, 150.0));  // fails at t=0; first retry due at 0.5

  channel.poll(0.25);
  EXPECT_EQ(inner.failed_sends, 1);  // not due yet
  channel.poll(0.5);
  EXPECT_EQ(inner.failed_sends, 2);  // retried and failed; backoff now 1.0
  channel.poll(1.0);
  EXPECT_EQ(inner.failed_sends, 2);  // next attempt at 0.5 + 1.0 = 1.5

  inner.fail_sends = false;
  channel.poll(1.2);
  EXPECT_EQ(channel.outbox_size(), 1u);  // still waiting for 1.5
  channel.poll(1.5);
  EXPECT_EQ(channel.outbox_size(), 0u);
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(seq_of(inner.sent[0]), 1u);
}

TEST(ReliableChannel, BackoffIsCappedAtMax) {
  ScriptedChannel inner;
  ReliableChannelConfig config = no_jitter_config();
  config.retry_initial_backoff_s = 1.0;
  config.retry_max_backoff_s = 2.0;
  ReliableChannel channel(inner, config);
  inner.fail_sends = true;
  channel.send(budget(1, 150.0));
  // Failures at 1, 3 (1+2), 5 (3+2), ... — the doubling stops at 2 s.
  for (double t : {1.0, 3.0, 5.0, 7.0}) channel.poll(t);
  EXPECT_EQ(inner.failed_sends, 5);  // initial + 4 capped retries
}

TEST(ReliableChannel, NewSendsQueueBehindPendingRetries) {
  ScriptedChannel inner;
  ReliableChannel channel(inner, no_jitter_config());
  inner.fail_sends = true;
  channel.send(budget(1, 150.0));
  inner.fail_sends = false;
  // The link is healthy again but an older message is still queued; the
  // new one must not overtake it.
  channel.send(budget(1, 175.0));
  EXPECT_EQ(channel.outbox_size(), 2u);
  channel.poll(0.5);
  ASSERT_EQ(inner.sent.size(), 2u);
  EXPECT_LT(seq_of(inner.sent[0]), seq_of(inner.sent[1]));
  EXPECT_DOUBLE_EQ(std::get<PowerBudgetMsg>(inner.sent[0]).node_cap_w, 150.0);
}

TEST(ReliableChannel, OutboxOverflowDropsOldest) {
  ScriptedChannel inner;
  ReliableChannelConfig config = no_jitter_config();
  config.max_outbox = 4;
  ReliableChannel channel(inner, config);
  inner.fail_sends = true;
  for (int i = 0; i < 6; ++i) channel.send(budget(1, 100.0 + i));
  EXPECT_EQ(channel.outbox_size(), 4u);

  inner.fail_sends = false;
  channel.poll(100.0);  // everything queued is long overdue
  ASSERT_EQ(inner.sent.size(), 4u);
  // The two oldest caps (100, 101) were dropped; the newest four survive
  // in order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(std::get<PowerBudgetMsg>(inner.sent[i]).node_cap_w, 102.0 + i);
  }
}

TEST(ReliableChannel, ReceiverDropsDuplicatesAndStaleReorders) {
  ScriptedChannel inner;
  ReliableChannel channel(inner, no_jitter_config());
  auto stamped = [](Message msg, std::uint64_t seq) {
    set_seq(msg, seq);
    return msg;
  };
  inner.inbox.push_back(stamped(budget(1, 150.0), 1));
  inner.inbox.push_back(stamped(budget(1, 150.0), 1));  // duplicate
  inner.inbox.push_back(stamped(budget(1, 170.0), 3));  // gap (2 lost)
  inner.inbox.push_back(stamped(budget(1, 160.0), 2));  // stale reorder

  std::vector<double> caps;
  while (auto msg = channel.receive()) {
    caps.push_back(std::get<PowerBudgetMsg>(*msg).node_cap_w);
  }
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_DOUBLE_EQ(caps[0], 150.0);
  EXPECT_DOUBLE_EQ(caps[1], 170.0);  // the stale 160 W cap never surfaced
}

TEST(ReliableChannel, HelloResetsTheSequenceWindow) {
  ScriptedChannel inner;
  ReliableChannel channel(inner, no_jitter_config());
  auto stamped = [](Message msg, std::uint64_t seq) {
    set_seq(msg, seq);
    return msg;
  };
  inner.inbox.push_back(stamped(budget(1, 150.0), 40));
  // Peer restarts: its fresh channel starts the sequence space over.
  JobHelloMsg hello;
  hello.job_id = 1;
  inner.inbox.push_back(stamped(hello, 1));
  inner.inbox.push_back(stamped(budget(1, 180.0), 2));

  int received = 0;
  while (auto msg = channel.receive()) ++received;
  EXPECT_EQ(received, 3);  // nothing after the hello was treated as stale
}

TEST(ReliableChannel, UnstampedMessagesPassThrough) {
  ScriptedChannel inner;
  ReliableChannel channel(inner, no_jitter_config());
  inner.inbox.push_back(budget(1, 150.0));  // seq 0: legacy sender
  inner.inbox.push_back(budget(1, 150.0));
  int received = 0;
  while (auto msg = channel.receive()) ++received;
  EXPECT_EQ(received, 2);
}

}  // namespace
}  // namespace anor::cluster
