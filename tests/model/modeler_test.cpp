#include "model/modeler.hpp"

#include <gtest/gtest.h>

#include "model/default_models.hpp"

namespace anor::model {
namespace {

PowerPerfModel is_default() { return default_model(DefaultModelPolicy::kLeastSensitive); }

const workload::JobType& bt() { return workload::find_job_type("bt.D.x"); }

ModelerConfig fast_config() {
  ModelerConfig config;
  config.retrain_epochs = 10;
  config.min_span_s = 0.1;
  config.skip_observations = 0;  // tests feed exact timestamps, no setup
  return config;
}

TEST(OnlineModeler, FirstSampleOnlyInitializes) {
  OnlineModeler modeler(is_default(), fast_config());
  EXPECT_FALSE(modeler.add_epoch_sample(0.0, 0).has_value());
  EXPECT_EQ(modeler.observation_count(), 0u);
}

TEST(OnlineModeler, ObservationFromEpochDelta) {
  OnlineModeler modeler(is_default(), fast_config());
  modeler.record_cap(0.0, 200.0);
  modeler.add_epoch_sample(0.0, 0);
  const auto obs = modeler.add_epoch_sample(4.0, 4);
  ASSERT_TRUE(obs.has_value());
  EXPECT_DOUBLE_EQ(obs->sec_per_epoch, 1.0);
  EXPECT_EQ(obs->epochs, 4);
  EXPECT_DOUBLE_EQ(obs->avg_cap_w, 200.0);
}

TEST(OnlineModeler, StaleOrDuplicateEpochIgnored) {
  OnlineModeler modeler(is_default(), fast_config());
  modeler.add_epoch_sample(0.0, 5);
  EXPECT_FALSE(modeler.add_epoch_sample(1.0, 5).has_value());
  EXPECT_FALSE(modeler.add_epoch_sample(2.0, 3).has_value());
}

TEST(OnlineModeler, TooShortSpanDeferred) {
  ModelerConfig config = fast_config();
  config.min_span_s = 1.0;
  OnlineModeler modeler(is_default(), config);
  modeler.add_epoch_sample(0.0, 0);
  EXPECT_FALSE(modeler.add_epoch_sample(0.5, 1).has_value());
  // The deferred epochs are picked up by the next long-enough span.
  const auto obs = modeler.add_epoch_sample(2.0, 4);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->epochs, 4);
}

TEST(OnlineModeler, AverageCapOverSpanIsTimeWeighted) {
  OnlineModeler modeler(is_default(), fast_config());
  modeler.record_cap(0.0, 280.0);
  modeler.add_epoch_sample(0.0, 0);
  modeler.record_cap(6.0, 140.0);
  // Span [0, 10]: 6 s at 280 W + 4 s at 140 W = 224 W average.
  const auto obs = modeler.add_epoch_sample(10.0, 8);
  ASSERT_TRUE(obs.has_value());
  EXPECT_NEAR(obs->avg_cap_w, 224.0, 1e-9);
}

TEST(OnlineModeler, RetrainsAfterTenEpochsAcrossCaps) {
  // Feed the ground-truth BT curve at three caps; after >= 10 epochs the
  // modeler replaces the IS-like default with a fit near the truth.
  OnlineModeler modeler(is_default(), fast_config());
  double t = 0.0;
  long epochs = 0;
  modeler.add_epoch_sample(t, epochs);
  for (double cap : {280.0, 200.0, 140.0, 240.0}) {
    modeler.record_cap(t, cap);
    for (int i = 0; i < 4; ++i) {
      t += bt().epoch_time_s(cap);
      ++epochs;
      modeler.add_epoch_sample(t, epochs);
    }
  }
  EXPECT_TRUE(modeler.has_fitted_model());
  EXPECT_NEAR(modeler.model().time_at(200.0), bt().epoch_time_s(200.0), 0.05);
  EXPECT_NEAR(modeler.model().slowdown_at(140.0), bt().max_slowdown(), 0.08);
}

TEST(OnlineModeler, SingleCapCannotRetrain) {
  OnlineModeler modeler(is_default(), fast_config());
  modeler.record_cap(0.0, 200.0);
  double t = 0.0;
  long epochs = 0;
  modeler.add_epoch_sample(t, epochs);
  for (int i = 0; i < 40; ++i) {
    t += 1.0;
    ++epochs;
    modeler.add_epoch_sample(t, epochs);
  }
  EXPECT_FALSE(modeler.has_fitted_model());
  EXPECT_GE(modeler.observation_count(), 30u);
}

TEST(OnlineModeler, KeepsDefaultUntilRetrain) {
  const PowerPerfModel initial = is_default();
  OnlineModeler modeler(initial, fast_config());
  EXPECT_DOUBLE_EQ(modeler.model().time_at(200.0), initial.time_at(200.0));
}

TEST(OnlineModeler, SkipObservationsDiscardsSetupPollutedSpan) {
  ModelerConfig config = fast_config();
  config.skip_observations = 1;
  OnlineModeler modeler(is_default(), config);
  modeler.record_cap(0.0, 200.0);
  modeler.add_epoch_sample(0.0, 0);
  // First span (setup-polluted in real runs) is discarded...
  EXPECT_FALSE(modeler.add_epoch_sample(5.0, 2).has_value());
  EXPECT_EQ(modeler.observation_count(), 0u);
  // ...but subsequent ones are kept.
  EXPECT_TRUE(modeler.add_epoch_sample(10.0, 4).has_value());
  EXPECT_EQ(modeler.observation_count(), 1u);
}

TEST(OnlineModeler, MixedCapSpansMarkedAndExcludedFromFit) {
  ModelerConfig config = fast_config();
  OnlineModeler modeler(is_default(), config);
  modeler.record_cap(0.0, 280.0);
  modeler.add_epoch_sample(0.0, 0);
  modeler.record_cap(2.0, 200.0);  // cap changes inside the next span
  const auto obs = modeler.add_epoch_sample(4.0, 4);
  ASSERT_TRUE(obs.has_value());
  EXPECT_TRUE(obs->mixed_cap);
  const auto clean_before = modeler.clean_observations();
  EXPECT_TRUE(clean_before.empty());
  // A span entirely at one cap is clean.
  const auto obs2 = modeler.add_epoch_sample(8.0, 8);
  ASSERT_TRUE(obs2.has_value());
  EXPECT_FALSE(obs2->mixed_cap);
  EXPECT_EQ(modeler.clean_observations().size(), 1u);
}

TEST(OnlineModeler, LowR2RefitRejected) {
  // Observations at three caps but with values bearing no relation to a
  // quadratic in power: the refit must not replace the served model.
  ModelerConfig config = fast_config();
  config.min_r2 = 0.7;
  OnlineModeler modeler(is_default(), config);
  modeler.add_epoch_sample(0.0, 0);
  double t = 0.0;
  long epochs = 0;
  // Wildly different epoch times at the *same* caps: no quadratic in P
  // can explain these, so any fit has high residual variance.
  const double caps[] = {280.0, 200.0, 150.0, 280.0, 200.0, 150.0,
                         280.0, 200.0, 150.0, 280.0, 200.0, 150.0};
  const double times[] = {1.0, 0.2, 2.5, 0.1, 3.0, 0.4, 2.8, 0.15, 0.3, 0.9, 1.7, 2.2};
  for (int i = 0; i < 12; ++i) {
    modeler.record_cap(t, caps[i]);
    t += times[i] * 3.0;
    epochs += 3;
    modeler.add_epoch_sample(t, epochs);
  }
  EXPECT_FALSE(modeler.has_fitted_model());
}

TEST(OnlineModeler, ObservationWindowBounded) {
  ModelerConfig config = fast_config();
  config.max_observations = 8;
  OnlineModeler modeler(is_default(), config);
  modeler.record_cap(0.0, 200.0);
  modeler.add_epoch_sample(0.0, 0);
  for (int i = 1; i <= 50; ++i) {
    modeler.add_epoch_sample(i * 1.0, i);
  }
  EXPECT_LE(modeler.observation_count(), 8u);
}

TEST(OnlineModeler, PhaseChangeResetsObservationWindow) {
  // The job runs IS-like (0.18 s epochs) then BT-like (0.9 s epochs) at a
  // constant cap: the modeler must notice the shift, discard the stale
  // phase's observations, and drop any refit.
  ModelerConfig config = fast_config();
  config.phase_shift_threshold = 0.25;
  config.phase_window = 3;
  OnlineModeler modeler(is_default(), config);
  modeler.record_cap(0.0, 200.0);
  double t = 0.0;
  long epochs = 0;
  modeler.add_epoch_sample(t, epochs);
  for (int i = 0; i < 12; ++i) {
    t += 0.18 * 4;  // 4 epochs per observation
    epochs += 4;
    modeler.add_epoch_sample(t, epochs);
  }
  const std::size_t before = modeler.observation_count();
  ASSERT_GE(before, 10u);
  EXPECT_EQ(modeler.phase_changes_detected(), 0);

  for (int i = 0; i < 6; ++i) {
    t += 0.9 * 4;  // the BT phase
    epochs += 4;
    modeler.add_epoch_sample(t, epochs);
  }
  EXPECT_GE(modeler.phase_changes_detected(), 1);
  // Old-phase (0.18 s) observations were purged: the pool now reflects the
  // BT phase (a boundary-straddling span can drag it slightly below 0.9).
  const auto aggregates = aggregate_by_cap(modeler.clean_observations());
  ASSERT_FALSE(aggregates.empty());
  EXPECT_GT(aggregates.front().sec_per_epoch, 0.6);
  EXPECT_LT(aggregates.front().sec_per_epoch, 1.0);
}

TEST(OnlineModeler, NoPhaseChangeOnStableBehavior) {
  ModelerConfig config = fast_config();
  config.phase_shift_threshold = 0.25;
  OnlineModeler modeler(is_default(), config);
  modeler.record_cap(0.0, 200.0);
  double t = 0.0;
  long epochs = 0;
  modeler.add_epoch_sample(t, epochs);
  for (int i = 0; i < 30; ++i) {
    t += 1.0 * 4;
    epochs += 4;
    modeler.add_epoch_sample(t, epochs);
  }
  EXPECT_EQ(modeler.phase_changes_detected(), 0);
}

TEST(OnlineModeler, LateCapRecordClampedForward) {
  OnlineModeler modeler(is_default(), fast_config());
  modeler.record_cap(5.0, 200.0);
  EXPECT_NO_THROW(modeler.record_cap(3.0, 180.0));  // clamped to t=5
}

TEST(OnlineModeler, ManualRetrainReportsFailure) {
  OnlineModeler modeler(is_default(), fast_config());
  EXPECT_FALSE(modeler.retrain());  // no observations at all
}

}  // namespace
}  // namespace anor::model
