#include "model/reclassify.hpp"

#include <gtest/gtest.h>

#include "model/default_models.hpp"

namespace anor::model {
namespace {

/// Observations of a job following `type`'s true curve at a single cap.
std::vector<EpochObservation> observe(const workload::JobType& type, double cap_w,
                                      long epochs) {
  std::vector<EpochObservation> observations;
  double t = 0.0;
  for (long i = 0; i < epochs; ++i) {
    EpochObservation obs;
    obs.avg_cap_w = cap_w;
    obs.sec_per_epoch = type.epoch_time_s(cap_w);
    obs.t_start_s = t;
    obs.t_end_s = t + obs.sec_per_epoch;
    obs.epochs = 1;
    observations.push_back(obs);
    t = obs.t_end_s;
  }
  return observations;
}

TEST(Reclassifier, StandardCandidatesCoverAllTypes) {
  EXPECT_EQ(standard_candidates().size(), workload::nas_job_types().size());
}

TEST(Reclassifier, MeanRelativeErrorZeroForTruth) {
  const auto& bt = workload::find_job_type("bt.D.x");
  const PowerPerfModel truth = PowerPerfModel::from_job_type(bt);
  const auto observations = observe(bt, 180.0, 12);
  EXPECT_NEAR(Reclassifier::mean_relative_error(truth, observations), 0.0, 1e-6);
}

TEST(Reclassifier, DetectsBtMisclassifiedAsIs) {
  // The Fig. 6/7 scenario: BT (0.9 s epochs) classified as IS (0.18 s
  // epochs).  Observed epochs are ~5x the IS prediction -> reclassify.
  const Reclassifier reclassifier(standard_candidates());
  const PowerPerfModel is_model = model_for_class("is.D.x");
  const auto observations = observe(workload::find_job_type("bt.D.x"), 180.0, 12);
  const auto suggestion = reclassifier.suggest(observations, is_model);
  ASSERT_TRUE(suggestion.has_value());
  EXPECT_EQ(suggestion->name, "bt.D.x");
}

TEST(Reclassifier, DetectsSpMisclassifiedAsEp) {
  // The Fig. 8 scenario: SP classified as EP.
  const Reclassifier reclassifier(standard_candidates());
  const PowerPerfModel ep_model = model_for_class("ep.D.x");
  const auto observations = observe(workload::find_job_type("sp.D.x"), 200.0, 15);
  const auto suggestion = reclassifier.suggest(observations, ep_model);
  ASSERT_TRUE(suggestion.has_value());
  EXPECT_EQ(suggestion->name, "sp.D.x");
}

TEST(Reclassifier, CorrectClassificationLeftAlone) {
  const Reclassifier reclassifier(standard_candidates());
  const PowerPerfModel bt_model = model_for_class("bt.D.x");
  const auto observations = observe(workload::find_job_type("bt.D.x"), 180.0, 20);
  EXPECT_FALSE(reclassifier.suggest(observations, bt_model).has_value());
}

TEST(Reclassifier, NeedsEnoughEpochs) {
  ReclassifierConfig config;
  config.min_epochs = 10;
  const Reclassifier reclassifier(standard_candidates(), config);
  const PowerPerfModel is_model = model_for_class("is.D.x");
  const auto observations = observe(workload::find_job_type("bt.D.x"), 180.0, 5);
  EXPECT_FALSE(reclassifier.suggest(observations, is_model).has_value());
}

TEST(Reclassifier, EmptyObservationsNoSuggestion) {
  const Reclassifier reclassifier(standard_candidates());
  EXPECT_FALSE(reclassifier.suggest({}, model_for_class("is.D.x")).has_value());
}

TEST(Reclassifier, RequiresSubstantialImprovement) {
  // Candidates that are all equally bad must not trigger a swap: give the
  // reclassifier a single candidate identical to the current model.
  ReclassifierConfig config;
  config.improvement_factor = 0.5;
  const PowerPerfModel is_model = model_for_class("is.D.x");
  const Reclassifier reclassifier({NamedModel{"is.D.x", is_model}}, config);
  const auto observations = observe(workload::find_job_type("bt.D.x"), 180.0, 20);
  EXPECT_FALSE(reclassifier.suggest(observations, is_model).has_value());
}

TEST(Reclassifier, NoCandidatesNoSuggestion) {
  const Reclassifier reclassifier({});
  const auto observations = observe(workload::find_job_type("bt.D.x"), 180.0, 20);
  EXPECT_FALSE(
      reclassifier.suggest(observations, model_for_class("is.D.x")).has_value());
}

}  // namespace
}  // namespace anor::model
