#include "model/perf_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace anor::model {
namespace {

TEST(PowerPerfModel, DefaultIsValidFlat) {
  PowerPerfModel model;
  EXPECT_TRUE(model.valid());
  EXPECT_DOUBLE_EQ(model.slowdown_at(model.p_min_w()), 0.0);
}

TEST(PowerPerfModel, RejectsInvertedRange) {
  EXPECT_THROW(PowerPerfModel(0, 0, 1, 280.0, 140.0), util::ConfigError);
}

TEST(PowerPerfModel, FromJobTypeMatchesGroundTruth) {
  const auto& bt = workload::find_job_type("bt.D.x");
  const PowerPerfModel model = PowerPerfModel::from_job_type(bt);
  // Valid over the job's achievable power range [p_min, p_max]; outside
  // it the model clamps to the range endpoint.
  for (double cap = model.p_min_w(); cap <= model.p_max_w(); cap += 10.0) {
    EXPECT_NEAR(model.time_at(cap), bt.epoch_time_s(cap), 1e-6) << cap;
  }
  EXPECT_DOUBLE_EQ(model.time_at(280.0), model.time_at(model.p_max_w()));
  EXPECT_GT(model.r2(), 0.99999);
}

TEST(PowerPerfModel, SlowdownAtEndpoints) {
  const auto& ep = workload::find_job_type("ep.D.x");
  const PowerPerfModel model = PowerPerfModel::from_job_type(ep);
  EXPECT_NEAR(model.slowdown_at(model.p_max_w()), 0.0, 1e-9);
  // Slowdown is measured against the job's own max achievable power.
  const double expected =
      ep.relative_time(140.0) / ep.relative_time(model.p_max_w()) - 1.0;
  EXPECT_NEAR(model.slowdown_at(140.0), expected, 0.01);
}

TEST(PowerPerfModel, FitRecoversKnownQuadratic) {
  // T(P) = 2e-5 P^2 - 0.015 P + 4  (decreasing on [140, 280])
  std::vector<double> caps;
  std::vector<double> times;
  for (double p = 140.0; p <= 280.0; p += 20.0) {
    caps.push_back(p);
    times.push_back(2e-5 * p * p - 0.015 * p + 4.0);
  }
  const PowerPerfModel model = PowerPerfModel::fit(caps, times, 140.0, 280.0);
  EXPECT_NEAR(model.a(), 2e-5, 1e-9);
  EXPECT_NEAR(model.b(), -0.015, 1e-7);
  EXPECT_NEAR(model.c(), 4.0, 1e-5);
  EXPECT_NEAR(model.r2(), 1.0, 1e-9);
}

TEST(PowerPerfModel, FitRequiresThreeDistinctCaps) {
  const std::vector<double> two_caps = {140.0, 140.0, 280.0, 280.0};
  const std::vector<double> times = {2.0, 2.0, 1.0, 1.0};
  EXPECT_THROW(PowerPerfModel::fit(two_caps, times, 140.0, 280.0), util::NumericalError);
  EXPECT_THROW(PowerPerfModel::fit(std::vector<double>{1, 2}, std::vector<double>{1, 2},
                                   140.0, 280.0),
               util::NumericalError);
  EXPECT_THROW(PowerPerfModel::fit(std::vector<double>{1, 2, 3}, std::vector<double>{1, 2},
                                   140.0, 280.0),
               util::NumericalError);
}

TEST(PowerPerfModel, FitWithNoiseHasReasonableR2) {
  const auto& sp = workload::find_job_type("sp.D.x");
  util::Rng rng(5);
  std::vector<double> caps;
  std::vector<double> times;
  for (int i = 0; i < 60; ++i) {
    const double cap = rng.uniform(140.0, 280.0);
    caps.push_back(cap);
    times.push_back(sp.epoch_time_s(cap) * rng.normal(1.0, 0.02));
  }
  const PowerPerfModel model = PowerPerfModel::fit(caps, times, 140.0, 280.0);
  EXPECT_GT(model.r2(), 0.7);
  EXPECT_NEAR(model.time_at(200.0), sp.epoch_time_s(200.0), 0.05);
}

TEST(PowerPerfModel, TimeAtClampsAndNeverPredictsSpeedup) {
  const PowerPerfModel model =
      PowerPerfModel::from_job_type(workload::find_job_type("lu.D.x"));
  EXPECT_DOUBLE_EQ(model.time_at(50.0), model.time_at(model.p_min_w()));
  EXPECT_DOUBLE_EQ(model.time_at(1000.0), model.time_at(model.p_max_w()));
  for (double cap = 100.0; cap <= 400.0; cap += 25.0) {
    EXPECT_GE(model.time_at(cap), model.time_at(model.p_max_w()) - 1e-12);
  }
}

TEST(PowerPerfModel, CapForTimeInvertsTimeAt) {
  const PowerPerfModel model =
      PowerPerfModel::from_job_type(workload::find_job_type("ft.D.x"));
  for (double cap = model.p_min_w(); cap <= model.p_max_w(); cap += 10.0) {
    const double t = model.time_at(cap);
    EXPECT_NEAR(model.cap_for_time(t), cap, 0.1) << cap;
  }
}

TEST(PowerPerfModel, CapForTimeSaturates) {
  const PowerPerfModel model =
      PowerPerfModel::from_job_type(workload::find_job_type("ft.D.x"));
  EXPECT_DOUBLE_EQ(model.cap_for_time(0.0), model.p_max_w());
  EXPECT_DOUBLE_EQ(model.cap_for_time(1e9), model.p_min_w());
}

TEST(PowerPerfModel, CapForSlowdownRoundTrips) {
  const PowerPerfModel model =
      PowerPerfModel::from_job_type(workload::find_job_type("bt.D.x"));
  for (double s = 0.0; s <= model.max_slowdown(); s += 0.1) {
    const double cap = model.cap_for_slowdown(s);
    EXPECT_NEAR(model.slowdown_at(cap), s, 0.01) << s;
  }
}

TEST(PowerPerfModel, CapForSlowdownBeyondMaxPinsToFloor) {
  const PowerPerfModel model =
      PowerPerfModel::from_job_type(workload::find_job_type("is.D.x"));
  // IS maxes out around 12 % slowdown; asking for 50 % pins to p_min.
  EXPECT_DOUBLE_EQ(model.cap_for_slowdown(0.5), model.p_min_w());
}

TEST(PowerPerfModel, DescribeMentionsCoefficients) {
  const PowerPerfModel model(1e-5, -0.01, 3.0, 140.0, 280.0);
  const std::string text = model.describe();
  EXPECT_NE(text.find("T(P)"), std::string::npos);
  EXPECT_NE(text.find("R2"), std::string::npos);
}

// Property sweep: inverse consistency for every registered type.
class ModelInverseProperty : public ::testing::TestWithParam<workload::JobType> {};

TEST_P(ModelInverseProperty, CapForSlowdownIsRightInverse) {
  const PowerPerfModel model = PowerPerfModel::from_job_type(GetParam());
  for (double s = 0.0; s <= model.max_slowdown() * 0.99; s += model.max_slowdown() / 7.0) {
    EXPECT_NEAR(model.slowdown_at(model.cap_for_slowdown(s)), s, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ModelInverseProperty,
                         ::testing::ValuesIn(workload::nas_job_types()),
                         [](const ::testing::TestParamInfo<workload::JobType>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace anor::model
