#include "model/default_models.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace anor::model {
namespace {

TEST(DefaultModels, LeastSensitiveIsIsLike) {
  const PowerPerfModel model = default_model(DefaultModelPolicy::kLeastSensitive);
  const auto& is = workload::find_job_type("is.D.x");
  const double expected =
      is.relative_time(140.0) / is.relative_time(model.p_max_w()) - 1.0;
  EXPECT_NEAR(model.max_slowdown(), expected, 0.02);
}

TEST(DefaultModels, MostSensitiveIsEpLike) {
  const PowerPerfModel model = default_model(DefaultModelPolicy::kMostSensitive);
  const auto& ep = workload::find_job_type("ep.D.x");
  const double expected =
      ep.relative_time(140.0) / ep.relative_time(model.p_max_w()) - 1.0;
  EXPECT_NEAR(model.max_slowdown(), expected, 0.03);
}

TEST(DefaultModels, MedianBetweenExtremes) {
  const double least = default_model(DefaultModelPolicy::kLeastSensitive).max_slowdown();
  const double median = default_model(DefaultModelPolicy::kMedian).max_slowdown();
  const double most = default_model(DefaultModelPolicy::kMostSensitive).max_slowdown();
  EXPECT_GT(median, least);
  EXPECT_LT(median, most);
}

TEST(DefaultModels, ToStringNames) {
  EXPECT_EQ(to_string(DefaultModelPolicy::kLeastSensitive), "least-sensitive");
  EXPECT_EQ(to_string(DefaultModelPolicy::kMostSensitive), "most-sensitive");
  EXPECT_EQ(to_string(DefaultModelPolicy::kMedian), "median");
}

TEST(ModelForClass, KnownTypeMatchesGroundTruth) {
  const PowerPerfModel model = model_for_class("bt.D.x");
  const auto& bt = workload::find_job_type("bt.D.x");
  EXPECT_NEAR(model.time_at(200.0), bt.epoch_time_s(200.0), 1e-6);
}

TEST(ModelForClass, UnknownTypeThrows) {
  EXPECT_THROW(model_for_class("zz.Z.x"), util::ConfigError);
}

}  // namespace
}  // namespace anor::model
