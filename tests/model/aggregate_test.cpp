// Tests for cap-pooled observation aggregation and model prediction
// distance — the machinery that makes feedback decisions robust to
// sampling quantization.
#include <gtest/gtest.h>

#include "model/default_models.hpp"
#include "model/modeler.hpp"
#include "model/reclassify.hpp"

namespace anor::model {
namespace {

EpochObservation obs(double cap, double spe, long epochs, double t0 = 0.0) {
  EpochObservation o;
  o.avg_cap_w = cap;
  o.sec_per_epoch = spe;
  o.epochs = epochs;
  o.t_start_s = t0;
  o.t_end_s = t0 + spe * epochs;
  return o;
}

TEST(AggregateByCap, PoolsSameBucket) {
  // Quantized spans: "2 or 3 epochs per 4 s" pools back to the true rate.
  std::vector<EpochObservation> observations = {
      obs(150.0, 4.0 / 3.0, 3), obs(150.0, 2.0, 2), obs(150.0, 4.0 / 3.0, 3)};
  const auto aggregates = aggregate_by_cap(observations);
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates[0].epochs, 8);
  EXPECT_NEAR(aggregates[0].sec_per_epoch, 12.0 / 8.0, 1e-12);
  EXPECT_NEAR(aggregates[0].cap_w, 150.0, 1e-12);
}

TEST(AggregateByCap, SeparatesDistantCaps) {
  std::vector<EpochObservation> observations = {obs(150.0, 1.5, 4), obs(200.0, 1.2, 4),
                                                obs(152.0, 1.5, 4)};
  const auto aggregates = aggregate_by_cap(observations, 5.0);
  EXPECT_EQ(aggregates.size(), 2u);
}

TEST(AggregateByCap, WeightsCapByEpochs) {
  std::vector<EpochObservation> observations = {obs(148.0, 1.0, 1), obs(152.0, 1.0, 3)};
  const auto aggregates = aggregate_by_cap(observations, 5.0);
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_NEAR(aggregates[0].cap_w, (148.0 + 3 * 152.0) / 4.0, 1e-12);
}

TEST(AggregateByCap, SkipsZeroEpochObservations) {
  std::vector<EpochObservation> observations = {obs(150.0, 1.0, 0), obs(150.0, 1.0, 2)};
  const auto aggregates = aggregate_by_cap(observations);
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates[0].epochs, 2);
}

TEST(AggregateByCap, EmptyInEmptyOut) {
  EXPECT_TRUE(aggregate_by_cap({}).empty());
}

TEST(PredictionDistance, SameModelIsZero) {
  const PowerPerfModel bt = model_for_class("bt.D.x");
  const std::vector<EpochObservation> observations = {obs(200.0, 1.2, 5),
                                                      obs(160.0, 1.4, 5)};
  EXPECT_NEAR(model_prediction_distance(bt, bt, observations), 0.0, 1e-12);
}

TEST(PredictionDistance, RefitOfSameTypeIsNear) {
  const PowerPerfModel bt = model_for_class("bt.D.x");
  // A refit from the true curve is numerically near-identical.
  const PowerPerfModel refit = PowerPerfModel::from_job_type(workload::find_job_type("bt.D.x"));
  const std::vector<EpochObservation> observations = {obs(200.0, 1.2, 5),
                                                      obs(160.0, 1.4, 5)};
  EXPECT_LT(model_prediction_distance(bt, refit, observations), 0.001);
}

TEST(PredictionDistance, DifferentTypesAreFar) {
  const PowerPerfModel bt = model_for_class("bt.D.x");
  const PowerPerfModel is = model_for_class("is.D.x");
  const std::vector<EpochObservation> observations = {obs(200.0, 1.2, 5)};
  EXPECT_GT(model_prediction_distance(bt, is, observations), 0.5);
}

TEST(PredictionDistance, SimilarAtOneCapDifferentAcrossCaps) {
  // BT and SP nearly coincide around 247 W but diverge across a range —
  // the exact ambiguity probing resolves.
  const PowerPerfModel bt = model_for_class("bt.D.x");
  const PowerPerfModel sp = model_for_class("sp.D.x");
  const std::vector<EpochObservation> single = {obs(247.0, 1.01, 10)};
  const std::vector<EpochObservation> spread = {obs(230.0, 1.04, 10), obs(247.0, 1.01, 10),
                                                obs(262.0, 1.0, 10)};
  EXPECT_LT(model_prediction_distance(bt, sp, single), 0.02);
  EXPECT_GT(model_prediction_distance(bt, sp, spread), 0.02);
}

}  // namespace
}  // namespace anor::model
