// Canonical spec hashing (engine/sweep/spec_canon).
//
// The result cache is only sound if the key is a pure function of the
// *semantics* of a scenario: cosmetic differences (JSON field order,
// float spelling, defaults omitted vs spelled out, display names,
// execution knobs) must hash identically, while any change that could
// alter the RunResult must produce a different key.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

#include "engine/policy_registry.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep/spec_canon.hpp"
#include "util/json.hpp"
#include "workload/schedule.hpp"

namespace anor::engine::sweep {
namespace {

workload::Schedule tiny_schedule() {
  workload::Schedule schedule;
  schedule.duration_s = 120.0;
  workload::JobRequest a;
  a.job_id = 1;
  a.type_name = "bt.D.x";
  a.submit_time_s = 0.0;
  a.nodes = 4;
  workload::JobRequest b;
  b.job_id = 2;
  b.type_name = "lu.D.x";
  b.submit_time_s = 30.0;
  b.nodes = 4;
  schedule.jobs = {a, b};
  return schedule;
}

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.name = "canon-test";
  spec.backend = Backend::kTabular;
  spec.schedule = tiny_schedule();
  spec.policy = PolicyRef("characterized");
  spec.node_count = 8;
  spec.seed = 7;
  return spec;
}

TEST(SpecCanon, JsonFieldOrderCannotChangeTheHash) {
  // The same scenario spelled with different JSON key orders parses to
  // the same spec and must hash identically.
  const char* ordered = R"({
    "name": "x", "backend": "tabular", "policy": "uniform",
    "node_count": 8, "seed": 7,
    "schedule": {"duration_s": 60,
                 "jobs": [{"id": 1, "type": "bt.D.x", "submit_s": 0, "nodes": 4}]}
  })";
  const char* shuffled = R"({
    "seed": 7, "schedule": {"jobs": [{"nodes": 4, "submit_s": 0,
                                      "id": 1, "type": "bt.D.x"}],
                            "duration_s": 60},
    "policy": "uniform", "node_count": 8, "backend": "tabular", "name": "x"
  })";
  const ScenarioSpec a = scenario_spec_from_json(util::Json::parse(ordered));
  const ScenarioSpec b = scenario_spec_from_json(util::Json::parse(shuffled));
  EXPECT_EQ(canonical_spec_hash(a), canonical_spec_hash(b));
  EXPECT_EQ(canonical_spec_string(a), canonical_spec_string(b));
}

TEST(SpecCanon, DefaultsOmittedHashLikeDefaultsSpelledOut) {
  ScenarioSpec omitted = base_spec();
  ScenarioSpec spelled = base_spec();
  // All of these are already the defaults; spelling them out must not
  // change the canonical form.
  spelled.perf_variation_sigma = 0.0;
  spelled.tracking_warmup_s = 0.0;
  spelled.tracking_reserve_w = 0.0;
  for (auto& job : spelled.schedule.jobs) {
    job.classified_as = "";
    job.walltime_hint_s = 0.0;
  }
  EXPECT_EQ(canonical_spec_string(omitted), canonical_spec_string(spelled));
}

TEST(SpecCanon, FloatSpellingCannotChangeTheHash) {
  ScenarioSpec a = base_spec();
  ScenarioSpec b = base_spec();
  a.tracking_warmup_s = 0.0;
  b.tracking_warmup_s = -0.0;  // same value, different bits/spelling
  EXPECT_EQ(canonical_spec_hash(a), canonical_spec_hash(b));

  // An exact double stays exact: 0.1 + 0.2 != 0.3 must DIFFER (they are
  // different doubles), while algebraically-identical spellings agree.
  a.perf_variation_sigma = 0.1 + 0.2;
  b.perf_variation_sigma = 0.3;
  EXPECT_NE(canonical_spec_hash(a), canonical_spec_hash(b));
  b.perf_variation_sigma = 0.1 + 0.2;
  EXPECT_EQ(canonical_spec_hash(a), canonical_spec_hash(b));
}

TEST(SpecCanon, DisplayAndExecutionKnobsAreExcluded) {
  ScenarioSpec a = base_spec();
  ScenarioSpec b = base_spec();
  b.name = "completely-different-name";
  b.artifact_dir = "";  // empty either way; artifact runs bypass the cache
  b.step_workers = 8;
  b.step_shard_nodes = 64;
  EXPECT_EQ(canonical_spec_hash(a), canonical_spec_hash(b))
      << "step sharding is bit-invariant and must not fragment the cache";
}

TEST(SpecCanon, SemanticChangesProduceDistinctKeys) {
  const std::uint64_t reference = canonical_spec_hash(base_spec());

  ScenarioSpec changed = base_spec();
  changed.policy = PolicyRef("uniform");
  EXPECT_NE(canonical_spec_hash(changed), reference) << "policy";

  changed = base_spec();
  changed.seed = 8;
  EXPECT_NE(canonical_spec_hash(changed), reference) << "seed";

  changed = base_spec();
  changed.node_count = 9;
  EXPECT_NE(canonical_spec_hash(changed), reference) << "node_count";

  changed = base_spec();
  changed.backend = Backend::kEmulated;
  EXPECT_NE(canonical_spec_hash(changed), reference) << "backend";

  changed = base_spec();
  changed.static_budget_w = 1200.0;
  EXPECT_NE(canonical_spec_hash(changed), reference) << "static budget";

  changed = base_spec();
  changed.schedule.jobs[0].submit_time_s = 1.0;
  EXPECT_NE(canonical_spec_hash(changed), reference) << "schedule";

  changed = base_spec();
  changed.schedule.jobs[0].classified_as = "is.D.x";
  EXPECT_NE(canonical_spec_hash(changed), reference) << "misclassification";

  changed = base_spec();
  changed.targets.add(0.0, 1000.0);
  changed.targets.add(60.0, 900.0);
  EXPECT_NE(canonical_spec_hash(changed), reference) << "targets";
}

TEST(SpecCanon, ExpressionPolicyIdentityIsFoldedIntoTheKey) {
  // Regression: before the registry refactor the cache key held only the
  // policy *name*, so two custom policies sharing a name but computing
  // different caps would alias to one cache entry.
  ScenarioSpec a = base_spec();
  ScenarioSpec b = base_spec();
  a.policy = PolicyRef("custom", "p_min + 10");
  b.policy = PolicyRef("custom", "p_min + 20");
  EXPECT_NE(canonical_spec_hash(a), canonical_spec_hash(b))
      << "same policy name with different DSL sources must not alias";

  ScenarioSpec c = base_spec();
  c.policy = PolicyRef("custom", "p_min + 10");
  EXPECT_EQ(canonical_spec_hash(a), canonical_spec_hash(c))
      << "identical DSL sources must still share a key";

  // Two different registered names over the same source differ too (the
  // identity is name#hash, not hash alone).
  ScenarioSpec d = base_spec();
  d.policy = PolicyRef("custom2", "p_min + 10");
  EXPECT_NE(canonical_spec_hash(a), canonical_spec_hash(d));
}

TEST(SpecCanon, RegisteredPolicyIdentityDiffersFromUnregisteredName) {
  // A bare non-builtin name resolves through the registry at key time:
  // registering an expression under that name must move the key.
  ScenarioSpec bare = base_spec();
  bare.policy = PolicyRef("canon-reg-expr");
  const std::uint64_t unregistered = canonical_spec_hash(bare);
  PolicyRegistry::global().register_expression_policy("canon-reg-expr", "p_max - 5");
  const std::uint64_t registered = canonical_spec_hash(bare);
  PolicyRegistry::global().unregister("canon-reg-expr");
  EXPECT_NE(unregistered, registered);
}

TEST(SpecCanon, BuiltinCanonicalBytesCarryNoPolicyIdentity) {
  // The four paper policies predate the registry; their canonical form
  // (and therefore every existing on-disk cache entry) must be
  // byte-identical to the enum era.
  const std::string canon = canonical_spec_string(base_spec());
  EXPECT_EQ(canon.find("policy_identity"), std::string::npos)
      << "built-ins must keep their pre-registry canonical bytes";
  EXPECT_NE(canon.find("\"policy\":\"characterized\""), std::string::npos) << canon;

  ScenarioSpec custom = base_spec();
  custom.policy = PolicyRef("custom", "p_min");
  EXPECT_NE(canonical_spec_string(custom).find("policy_identity"), std::string::npos);
}

TEST(SpecCanon, BudgetZeroDiffersFromBudgetUnset) {
  // optional<double>{0.0} and nullopt are different scenarios (a zero
  // budget throttles everything; no budget runs unconstrained).
  ScenarioSpec unset = base_spec();
  ScenarioSpec zero = base_spec();
  zero.static_budget_w = 0.0;
  EXPECT_NE(canonical_spec_hash(unset), canonical_spec_hash(zero));
}

TEST(SpecCanon, LargeSeedsSurviveCanonicalizationExactly) {
  // Seeds above 2^53 cannot round-trip through a double; the canonical
  // form must keep full 64-bit precision.
  ScenarioSpec a = base_spec();
  ScenarioSpec b = base_spec();
  a.seed = (1ULL << 60) + 1;
  b.seed = (1ULL << 60) + 2;
  EXPECT_NE(canonical_spec_hash(a), canonical_spec_hash(b));
}

TEST(SpecCanon, KeyIsStableHexOfTheHash) {
  const ScenarioSpec spec = base_spec();
  const std::string key = canonical_spec_key(spec);
  EXPECT_EQ(key.size(), 16u);
  EXPECT_EQ(key, canonical_spec_key(spec));
  char expect[17];
  std::snprintf(expect, sizeof(expect), "%016llx",
                static_cast<unsigned long long>(canonical_spec_hash(spec)));
  EXPECT_EQ(key, expect);
}

TEST(SpecCanon, EpochIsFoldedIntoTheHash) {
  // The epoch string pins the result-schema version and the golden trace
  // hashes; it must participate in the key so stale caches self-invalidate
  // when either changes.
  const std::string epoch(kCacheEpoch);
  EXPECT_NE(epoch.find("anor.run_result.v1"), std::string::npos);
  EXPECT_NE(epoch.find("b3a442b79219c7d9"), std::string::npos);
  EXPECT_NE(epoch.find("42ce5da3ae89f65c"), std::string::npos);
}

}  // namespace
}  // namespace anor::engine::sweep
