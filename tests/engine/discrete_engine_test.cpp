#include "engine/discrete_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/prof/prof.hpp"
#include "util/error.hpp"

namespace anor::engine {
namespace {

TEST(DiscreteEngine, RejectsNonPositiveStep) {
  EXPECT_THROW(DiscreteEngine(0.0, DiscreteEngine::ClockMode::kAdvanceLast),
               util::ConfigError);
  EXPECT_THROW(DiscreteEngine(-1.0, DiscreteEngine::ClockMode::kAdvanceFirst),
               util::ConfigError);
}

TEST(DiscreteEngine, ComponentsFireInRegistrationOrderEveryTick) {
  DiscreteEngine engine(1.0, DiscreteEngine::ClockMode::kAdvanceLast);
  std::vector<std::string> calls;
  engine.add_component("a", 0.0, [&](double, double) { calls.push_back("a"); });
  engine.add_component("b", 0.0, [&](double, double) { calls.push_back("b"); });
  engine.add_component("c", 0.0, [&](double, double) { calls.push_back("c"); });
  engine.step();
  engine.step();
  EXPECT_EQ(calls, (std::vector<std::string>{"a", "b", "c", "a", "b", "c"}));
}

TEST(DiscreteEngine, AdvanceLastComponentsSeeTickStartTime) {
  DiscreteEngine engine(1.0, DiscreteEngine::ClockMode::kAdvanceLast);
  std::vector<double> times;
  engine.add_component("probe", 0.0, [&](double now, double) { times.push_back(now); });
  engine.step();
  engine.step();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(engine.now_s(), 2.0);
}

TEST(DiscreteEngine, AdvanceFirstComponentsSeePostAdvanceTime) {
  DiscreteEngine engine(0.25, DiscreteEngine::ClockMode::kAdvanceFirst);
  std::vector<double> times;
  engine.add_component("probe", 0.0, [&](double now, double) { times.push_back(now); });
  engine.step();
  engine.step();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.25);
  EXPECT_DOUBLE_EQ(times[1], 0.5);
}

TEST(DiscreteEngine, CadencedComponentFiresAtItsPeriod) {
  // The emulated cluster's log sampler: step 0.25 s, period 1 s.  The
  // hand-rolled loop fired on the first tick (next_due 0) and then once
  // per period; the engine must reproduce that exactly.
  DiscreteEngine engine(0.25, DiscreteEngine::ClockMode::kAdvanceFirst);
  std::vector<double> fires;
  engine.add_component("log", 1.0, [&](double now, double) { fires.push_back(now); });
  for (int i = 0; i < 16; ++i) engine.step();
  EXPECT_EQ(fires, (std::vector<double>{0.25, 1.25, 2.25, 3.25}));
}

TEST(DiscreteEngine, ControlCadenceMatchesSimulatorLoop) {
  // The tabular simulator's control phase: step 1 s, period 4 s,
  // advance-last — fires at t = 0, 4, 8, ...
  DiscreteEngine engine(1.0, DiscreteEngine::ClockMode::kAdvanceLast);
  std::vector<double> fires;
  engine.add_component("control", 4.0, [&](double now, double) { fires.push_back(now); });
  for (int i = 0; i < 10; ++i) engine.step();
  EXPECT_EQ(fires, (std::vector<double>{0.0, 4.0, 8.0}));
}

TEST(DiscreteEngine, StopPredicateSeesPostTickTimeAndLatches) {
  DiscreteEngine engine(1.0, DiscreteEngine::ClockMode::kAdvanceLast);
  int ticks = 0;
  engine.add_component("count", 0.0, [&](double, double) { ++ticks; });
  engine.set_stop_predicate([](double now) { return now >= 3.0; });
  engine.run();
  EXPECT_EQ(ticks, 3);
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(engine.step());  // stopped engines stay stopped
  EXPECT_EQ(ticks, 3);
}

TEST(DiscreteEngine, BoundClockTracksEngineTime) {
  util::VirtualClock clock;
  DiscreteEngine engine(0.5, DiscreteEngine::ClockMode::kAdvanceFirst);
  engine.bind_clock(&clock);
  std::vector<double> seen;
  engine.add_component("probe", 0.0, [&](double now, double) {
    // kAdvanceFirst: the external clock already advanced when components run.
    seen.push_back(clock.now() - now);
  });
  engine.step();
  engine.step();
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
  for (double delta : seen) EXPECT_DOUBLE_EQ(delta, 0.0);
}

TEST(DiscreteEngine, StepIndexIsPreIncrementDuringTheTick) {
  DiscreteEngine engine(1.0, DiscreteEngine::ClockMode::kAdvanceLast);
  std::vector<long> indices;
  engine.add_component("probe", 0.0,
                       [&](double, double) { indices.push_back(engine.step_index()); });
  engine.step();
  engine.step();
  engine.step();
  EXPECT_EQ(indices, (std::vector<long>{0, 1, 2}));
  EXPECT_EQ(engine.step_index(), 3);
}

TEST(DiscreteEngine, HousekeepingComponentsShareOneSpanPhase) {
  namespace prof = telemetry::prof;
  prof::Profiler& profiler = prof::Profiler::global();
  profiler.reset();
  profiler.set_enabled(true);

  DiscreteEngine engine(1.0, DiscreteEngine::ClockMode::kAdvanceLast);
  engine.add_component("heavy", 0.0, [](double, double) {});
  engine.add_component("cheap_a", 0.0, [](double, double) {},
                       DiscreteEngine::SpanMode::kHousekeeping);
  engine.add_component("cheap_b", 0.0, [](double, double) {},
                       DiscreteEngine::SpanMode::kHousekeeping);
  const int kSteps = 5;
  for (int i = 0; i < kSteps; ++i) engine.step();

  profiler.set_enabled(false);
  std::uint64_t tick_count = 0;
  std::uint64_t heavy_count = 0;
  std::uint64_t housekeeping_count = 0;
  bool cheap_phase_present = false;
  for (const prof::PhaseReport& phase : profiler.phase_report()) {
    if (phase.name == "engine.tick") tick_count = phase.count;
    if (phase.name == "engine.heavy") heavy_count = phase.count;
    if (phase.name == "engine.housekeeping") housekeeping_count = phase.count;
    if (phase.name == "engine.cheap_a" || phase.name == "engine.cheap_b") {
      cheap_phase_present = true;
    }
  }
  EXPECT_EQ(tick_count, static_cast<std::uint64_t>(kSteps));
  EXPECT_EQ(heavy_count, static_cast<std::uint64_t>(kSteps));
  // The consecutive cheap components fold into one housekeeping span per
  // tick instead of one span (and one clock read) each.
  EXPECT_EQ(housekeeping_count, static_cast<std::uint64_t>(kSteps));
  EXPECT_FALSE(cheap_phase_present);
  profiler.reset();
}

TEST(DiscreteEngine, ComponentTableIsIntrospectable) {
  DiscreteEngine engine(1.0, DiscreteEngine::ClockMode::kAdvanceLast);
  engine.add_component("every_tick", 0.0, [](double, double) {});
  engine.add_component("cadenced", 4.0, [](double, double) {});
  const auto components = engine.components();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].name, "every_tick");
  EXPECT_DOUBLE_EQ(components[1].period_s, 4.0);
}

}  // namespace
}  // namespace anor::engine
