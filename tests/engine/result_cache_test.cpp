// Two-tier result cache (engine/sweep/result_cache).
//
// The load-bearing property: a cache hit substitutes for a run, so the
// stored bytes must reproduce the RunResult bit-for-bit, and any doubt
// (epoch drift, spec mismatch under a colliding key, corrupt file) must
// read as a miss — never a wrong result.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "engine/runner.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep/result_cache.hpp"
#include "engine/sweep/spec_canon.hpp"
#include "util/json.hpp"
#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::engine::sweep {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch dir per test (removed on teardown).
class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "anor-result-cache-test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CacheConfig disk_config() const {
    CacheConfig config;
    config.dir = dir_.string();
    return config;
  }

  fs::path dir_;
};

ScenarioSpec small_spec(std::uint64_t seed = 11) {
  ScenarioSpec spec;
  spec.name = "cache-test";
  spec.backend = Backend::kTabular;
  spec.policy = PolicyRef("characterized");
  spec.node_count = 8;
  spec.seed = seed;

  workload::PoissonScheduleConfig config;
  config.duration_s = 240.0;
  config.utilization = 0.8;
  config.cluster_nodes = spec.node_count;
  spec.schedule = workload::generate_poisson_schedule(
      workload::nas_long_job_types(), config, util::Rng(seed).child("schedule"));
  spec.static_budget_w = 150.0 * spec.node_count;
  return spec;
}

std::string fingerprint(const RunResult& result) {
  return run_result_to_cache_json(result).dump();
}

TEST_F(ResultCacheTest, RunResultRoundTripsBitForBit) {
  const RunResult result = run_scenario(small_spec());
  ASSERT_GT(result.jobs_completed, 0);
  const util::Json encoded = run_result_to_cache_json(result);
  const RunResult decoded = run_result_from_cache_json(encoded);
  EXPECT_EQ(fingerprint(decoded), fingerprint(result));
  // Spot checks beyond the serialized fingerprint: derived accessors see
  // the same data.
  EXPECT_EQ(decoded.jobs_completed, result.jobs_completed);
  EXPECT_EQ(decoded.qos.records().size(), result.qos.records().size());
  EXPECT_EQ(decoded.qos.satisfied(), result.qos.satisfied());
  EXPECT_EQ(decoded.power_w.size(), result.power_w.size());
  EXPECT_EQ(decoded.tracking.p90_error, result.tracking.p90_error);
}

TEST_F(ResultCacheTest, MemoryTierHitsAfterStore) {
  ResultCache cache(CacheConfig{true, false, ""});
  const ScenarioSpec spec = small_spec();
  RunResult out;
  EXPECT_EQ(cache.lookup(spec, &out), CacheOutcome::kMiss);
  const RunResult result = run_scenario(spec);
  cache.store(spec, result);
  EXPECT_EQ(cache.lookup(spec, &out), CacheOutcome::kMemoryHit);
  EXPECT_EQ(fingerprint(out), fingerprint(result));
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(ResultCacheTest, DiskTierSurvivesProcessRestart) {
  const ScenarioSpec spec = small_spec();
  const RunResult result = run_scenario(spec);
  {
    ResultCache cache(disk_config());
    cache.store(spec, result);
  }
  // A fresh cache object = a fresh process as far as the memory tier is
  // concerned; the entry must come back from disk, bit-identical.
  ResultCache reopened(disk_config());
  RunResult out;
  EXPECT_EQ(reopened.lookup(spec, &out), CacheOutcome::kDiskHit);
  EXPECT_EQ(fingerprint(out), fingerprint(result));
  // Disk hits are promoted into the memory tier.
  EXPECT_EQ(reopened.lookup(spec, &out), CacheOutcome::kMemoryHit);
}

TEST_F(ResultCacheTest, OffConfigNeverStoresOrHits) {
  ResultCache cache(CacheConfig::off());
  const ScenarioSpec spec = small_spec();
  const RunResult result = run_scenario(spec);
  RunResult out;
  EXPECT_EQ(cache.lookup(spec, &out), CacheOutcome::kOff);
  cache.store(spec, result);
  EXPECT_EQ(cache.lookup(spec, &out), CacheOutcome::kOff);
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST_F(ResultCacheTest, DifferentSpecsDoNotCrossTalk) {
  ResultCache cache(disk_config());
  const ScenarioSpec a = small_spec(11);
  const ScenarioSpec b = small_spec(12);
  cache.store(a, run_scenario(a));
  RunResult out;
  EXPECT_EQ(cache.lookup(b, &out), CacheOutcome::kMiss);
}

TEST_F(ResultCacheTest, EpochMismatchInvalidatesDiskEntries) {
  const ScenarioSpec spec = small_spec();
  const RunResult result = run_scenario(spec);
  {
    ResultCache cache(disk_config());
    cache.store(spec, result);
  }
  // Rewrite the entry as a past engine version would have: same payload,
  // older epoch (as after a golden-trace change).
  const fs::path entry = dir_ / (canonical_spec_key(spec) + ".json");
  ASSERT_TRUE(fs::exists(entry));
  util::Json doc = util::load_json_file(entry.string());
  util::JsonObject obj = doc.as_object();
  obj["epoch"] = util::Json(std::string("anor.run_result.v0+golden:stale"));
  util::save_json_file(entry.string(), util::Json(std::move(obj)));

  ResultCache reopened(disk_config());
  RunResult out;
  EXPECT_EQ(reopened.lookup(spec, &out), CacheOutcome::kMiss);
  EXPECT_EQ(reopened.stats().invalidated, 1u);
}

TEST_F(ResultCacheTest, SpecMismatchUnderColludingKeyIsAMiss) {
  const ScenarioSpec spec = small_spec();
  {
    ResultCache cache(disk_config());
    cache.store(spec, run_scenario(spec));
  }
  // Simulate a key collision: the file exists under this spec's key but
  // records a different canonical spec.
  const fs::path entry = dir_ / (canonical_spec_key(spec) + ".json");
  util::Json doc = util::load_json_file(entry.string());
  util::JsonObject obj = doc.as_object();
  obj["spec_canonical"] = util::Json(std::string("{\"something\":\"else\"}"));
  util::save_json_file(entry.string(), util::Json(std::move(obj)));

  ResultCache reopened(disk_config());
  RunResult out;
  EXPECT_EQ(reopened.lookup(spec, &out), CacheOutcome::kMiss);
  EXPECT_EQ(reopened.stats().invalidated, 1u);
}

TEST_F(ResultCacheTest, CorruptDiskEntryIsAMissNotACrash) {
  const ScenarioSpec spec = small_spec();
  {
    ResultCache cache(disk_config());
    cache.store(spec, run_scenario(spec));
  }
  const fs::path entry = dir_ / (canonical_spec_key(spec) + ".json");
  std::ofstream(entry) << "{ truncated garbage";

  ResultCache reopened(disk_config());
  RunResult out;
  EXPECT_EQ(reopened.lookup(spec, &out), CacheOutcome::kMiss);
  EXPECT_EQ(reopened.stats().invalidated, 1u);
  // And a store over the bad entry repairs it.
  const RunResult result = run_scenario(spec);
  reopened.store(spec, result);
  ResultCache again(disk_config());
  EXPECT_EQ(again.lookup(spec, &out), CacheOutcome::kDiskHit);
  EXPECT_EQ(fingerprint(out), fingerprint(result));
}

}  // namespace
}  // namespace anor::engine::sweep
