// Sweep grid expansion + batch executor (engine/sweep).
//
// The executor's contract: the report lists one result per cell in grid
// order, every result is bit-identical to a plain run_scenario of the
// materialized spec, and neither the run-level worker count, warm-start
// reuse, nor the cache can change a single byte of any result.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "engine/sweep/executor.hpp"
#include "engine/sweep/result_cache.hpp"
#include "engine/sweep/spec_canon.hpp"
#include "engine/sweep/sweep.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace anor::engine::sweep {
namespace {

namespace fs = std::filesystem;

const char* kGridJson = R"({
  "schema": "anor.sweep.v1",
  "name": "grid-test",
  "base": {"backend": "tabular", "node_count": 8, "seed": 5},
  "generate": {"duration_s": 240, "utilization": 0.8, "signal": "budget",
               "budget_per_node_w": 150},
  "axes": [
    {"field": "policy", "values": ["uniform", "characterized"]},
    {"field": "utilization", "values": [0.6, 0.9]}
  ]
})";

SweepGrid test_grid() { return SweepGrid::from_json(util::Json::parse(kGridJson)); }

std::string fingerprint(const RunResult& result) {
  return run_result_to_cache_json(result).dump();
}

TEST(SweepGridTest, ExpansionIsDeterministicAndFirstAxisSlowest) {
  const SweepGrid grid = test_grid();
  EXPECT_EQ(grid.cell_count(), 4u);
  const std::vector<SweepCell> cells = grid.expand();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].name, "policy=uniform,utilization=0.6");
  EXPECT_EQ(cells[1].name, "policy=uniform,utilization=0.9");
  EXPECT_EQ(cells[2].name, "policy=characterized,utilization=0.6");
  EXPECT_EQ(cells[3].name, "policy=characterized,utilization=0.9");
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
  // Expansion is pure: a second expand yields the same cells.
  const std::vector<SweepCell> again = grid.expand();
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(again[i].name, cells[i].name);
}

TEST(SweepGridTest, RejectsUnknownAxisFieldsAndEmptyValues) {
  util::Json bad = util::Json::parse(R"({
    "schema": "anor.sweep.v1",
    "base": {"node_count": 8},
    "generate": {"duration_s": 120},
    "axes": [{"field": "frobnicate", "values": [1]}]
  })");
  EXPECT_THROW(SweepGrid::from_json(bad), util::ConfigError);

  util::Json empty = util::Json::parse(R"({
    "schema": "anor.sweep.v1",
    "base": {"node_count": 8},
    "generate": {"duration_s": 120},
    "axes": [{"field": "policy", "values": []}]
  })");
  EXPECT_THROW(SweepGrid::from_json(empty), util::ConfigError);
}

TEST(SweepGridTest, RequiresScheduleOrGenerate) {
  util::Json bare = util::Json::parse(R"({
    "schema": "anor.sweep.v1",
    "base": {"node_count": 8}
  })");
  EXPECT_THROW(SweepGrid::from_json(bare), util::ConfigError);
}

TEST(SweepGridTest, MaterializerSharesSchedulesAcrossPolicyCells) {
  // Cells that differ only in policy share the same generated workload;
  // utilization changes it.
  const SweepGrid grid = test_grid();
  const std::vector<SweepCell> cells = grid.expand();
  SweepMaterializer materializer(grid);
  const ScenarioSpec u06 = materializer.materialize(cells[0]);
  const ScenarioSpec c06 = materializer.materialize(cells[2]);
  const ScenarioSpec u09 = materializer.materialize(cells[1]);
  ASSERT_FALSE(u06.schedule.jobs.empty());
  EXPECT_EQ(u06.schedule.jobs.size(), c06.schedule.jobs.size());
  EXPECT_EQ(u06.schedule.jobs[0].submit_time_s, c06.schedule.jobs[0].submit_time_s);
  EXPECT_NE(u06.schedule.jobs.size(), u09.schedule.jobs.size());
  EXPECT_EQ(*u06.static_budget_w, 150.0 * 8);
}

TEST(SweepExecutorTest, MatchesSequentialRunScenarioBitForBit) {
  const SweepGrid grid = test_grid();
  SweepOptions options;
  options.cache = CacheConfig::off();
  const SweepReport report = run_sweep(grid, options);
  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_EQ(report.cells_computed, 4u);
  EXPECT_EQ(report.cache_hits, 0u);

  SweepMaterializer materializer(grid);
  const std::vector<SweepCell> cells = grid.expand();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScenarioSpec spec = materializer.materialize(cells[i]);
    const RunResult reference = run_scenario(spec);
    EXPECT_EQ(fingerprint(report.cells[i].result), fingerprint(reference))
        << cells[i].name;
    // Canonicalization is lazy: with the cache off no key is computed.
    EXPECT_TRUE(report.cells[i].key.empty());
  }
}

TEST(SweepExecutorTest, RunWorkerCountCannotChangeResults) {
  const SweepGrid grid = test_grid();
  SweepOptions serial;
  serial.cache = CacheConfig::off();
  const SweepReport reference = run_sweep(grid, serial);
  for (int workers : {2, 4}) {
    SweepOptions options;
    options.cache = CacheConfig::off();
    options.run_workers = workers;
    const SweepReport report = run_sweep(grid, options);
    ASSERT_EQ(report.cells.size(), reference.cells.size());
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
      EXPECT_EQ(fingerprint(report.cells[i].result),
                fingerprint(reference.cells[i].result))
          << "run_workers=" << workers << " cell " << reference.cells[i].cell.name;
    }
  }
}

TEST(SweepExecutorTest, WarmStartOffCannotChangeResults) {
  const SweepGrid grid = test_grid();
  SweepOptions warm;
  warm.cache = CacheConfig::off();
  SweepOptions cold = warm;
  cold.warm_start = false;
  const SweepReport a = run_sweep(grid, warm);
  const SweepReport b = run_sweep(grid, cold);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(fingerprint(a.cells[i].result), fingerprint(b.cells[i].result));
  }
}

TEST(SweepExecutorTest, SecondPassServesEveryCellFromTheCache) {
  const fs::path dir = fs::temp_directory_path() / "anor-sweep-exec-cache";
  fs::remove_all(dir);
  const SweepGrid grid = test_grid();
  SweepOptions options;
  options.cache.dir = dir.string();

  const SweepReport first = run_sweep(grid, options);
  EXPECT_EQ(first.cells_computed, 4u);
  EXPECT_EQ(first.cache_hits, 0u);

  const SweepReport second = run_sweep(grid, options);
  EXPECT_EQ(second.cells_computed, 0u);
  EXPECT_EQ(second.cache_hits, 4u);
  EXPECT_DOUBLE_EQ(second.cache_stats.hit_rate(), 1.0);
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(fingerprint(second.cells[i].result), fingerprint(first.cells[i].result));
    EXPECT_EQ(second.cells[i].cache, CacheOutcome::kDiskHit);
  }

  // The deterministic projection is byte-identical across the two passes
  // (what the CI smoke compares with cmp).
  EXPECT_EQ(sweep_results_deterministic_json(second).dump(),
            sweep_results_deterministic_json(first).dump());
  fs::remove_all(dir);
}

TEST(SweepExecutorTest, ProgressCallbackSeesEveryCellExactlyOnce) {
  const SweepGrid grid = test_grid();
  SweepOptions options;
  options.cache = CacheConfig::off();
  options.run_workers = 2;
  std::set<std::size_t> seen;
  std::size_t max_done = 0;
  options.on_cell_done = [&](const SweepCellResult& cell, std::size_t done,
                             std::size_t total) {
    seen.insert(cell.cell.index);
    max_done = std::max(max_done, done);
    EXPECT_EQ(total, 4u);
  };
  run_sweep(grid, options);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(max_done, 4u);
}

TEST(SweepExecutorTest, ReportJsonCarriesCacheProvenance) {
  const SweepGrid grid = test_grid();
  // Cache off: every cell reports "off" and no key is canonicalized.
  SweepOptions off;
  off.cache = CacheConfig::off();
  const util::Json off_doc = sweep_report_json(run_sweep(grid, off));
  EXPECT_EQ(off_doc.at("schema").as_string(), "anor.sweep_result.v1");
  EXPECT_EQ(off_doc.at("cells").as_array().size(), 4u);
  for (const util::Json& cell : off_doc.at("cells").as_array()) {
    EXPECT_EQ(cell.at("cache").as_string(), "off");
    EXPECT_TRUE(cell.at("key").as_string().empty());
  }

  // Memory-only cache: a first pass misses everywhere but carries the
  // canonical key for every cell.
  SweepOptions memory_only;
  memory_only.cache.memory = true;
  memory_only.cache.disk = false;
  const util::Json doc = sweep_report_json(run_sweep(grid, memory_only));
  for (const util::Json& cell : doc.at("cells").as_array()) {
    EXPECT_EQ(cell.at("cache").as_string(), "miss");
    EXPECT_EQ(cell.at("key").as_string().size(), 16u);
  }
}

}  // namespace
}  // namespace anor::engine::sweep
