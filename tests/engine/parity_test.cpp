// Cross-backend parity: the same ScenarioSpec run through the emulated
// cluster and the tabular simulator must agree on what matters — tracking
// error within tolerance, the paper's per-policy slowdown ordering, and
// the QoS verdict — for all four policies.  This is the contract that
// makes a scenario validated at simulator scale meaningful for the
// emulated (and, in the paper, the real) cluster.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include <string>

#include "engine/policy_registry.hpp"
#include "engine/runner.hpp"
#include "util/stats.hpp"
#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::engine {
namespace {

constexpr int kNodes = 8;
constexpr double kBudgetW = 165.0 * kNodes;
constexpr double kTrackingTol = 0.25;  // of the budget-normalized error
constexpr double kSlowdownTol = 0.25;

struct Outcome {
  double mean_slowdown = 0.0;
  double p90_tracking = 0.0;
  bool qos_ok = false;
  int completed = 0;
};

workload::Schedule parity_schedule() {
  workload::PoissonScheduleConfig config;
  config.duration_s = 600.0;
  config.utilization = 0.8;
  config.cluster_nodes = kNodes;
  return workload::generate_poisson_schedule(workload::nas_long_job_types(), config,
                                             util::Rng(7));
}

Outcome run_one(const PolicyRef& policy, Backend backend) {
  workload::Schedule schedule = parity_schedule();
  if (expects_misclassification(policy)) {
    workload::misclassify(schedule, "bt.D.x", "is.D.x");
  }
  ScenarioSpec spec;
  spec.name = "parity";
  spec.backend = backend;
  spec.schedule = std::move(schedule);
  spec.policy = policy;
  spec.static_budget_w = kBudgetW;
  spec.tracking_reserve_w = kBudgetW;  // flat target: normalize by the budget
  spec.node_count = kNodes;
  spec.seed = 7;

  const RunResult result = run_scenario(spec);
  Outcome outcome;
  util::RunningStats slowdowns;
  for (const auto& job : result.completed) slowdowns.add(job.slowdown());
  outcome.mean_slowdown = slowdowns.mean();
  outcome.p90_tracking = result.tracking.p90_error;
  outcome.qos_ok = result.qos.satisfied();
  outcome.completed = result.jobs_completed;
  return outcome;
}

class ParityTest : public ::testing::Test {
 protected:
  static const std::map<std::string, std::map<Backend, Outcome>>& grid() {
    static const auto* grid = [] {
      auto* g = new std::map<std::string, std::map<Backend, Outcome>>();
      for (const std::string& policy : PolicyRegistry::builtin_names()) {
        for (Backend backend : {Backend::kEmulated, Backend::kTabular}) {
          (*g)[policy][backend] = run_one(PolicyRef(policy), backend);
        }
      }
      return g;
    }();
    return *grid;
  }
};

TEST_F(ParityTest, BothBackendsCompleteEveryJob) {
  const int submitted = static_cast<int>(parity_schedule().jobs.size());
  ASSERT_GT(submitted, 0);
  for (const auto& [policy, backends] : grid()) {
    for (const auto& [backend, outcome] : backends) {
      EXPECT_EQ(outcome.completed, submitted)
          << policy << " on " << to_string(backend);
    }
  }
}

TEST_F(ParityTest, TrackingErrorAgreesWithinTolerance) {
  for (const auto& [policy, backends] : grid()) {
    const Outcome& emu = backends.at(Backend::kEmulated);
    const Outcome& tab = backends.at(Backend::kTabular);
    EXPECT_GT(emu.p90_tracking, 0.0) << policy;
    EXPECT_GT(tab.p90_tracking, 0.0) << policy;
    EXPECT_LT(std::abs(emu.p90_tracking - tab.p90_tracking), kTrackingTol)
        << policy << ": " << emu.p90_tracking << " vs " << tab.p90_tracking;
  }
}

TEST_F(ParityTest, MeanSlowdownAgreesWithinTolerance) {
  for (const auto& [policy, backends] : grid()) {
    const Outcome& emu = backends.at(Backend::kEmulated);
    const Outcome& tab = backends.at(Backend::kTabular);
    EXPECT_LT(std::abs(emu.mean_slowdown - tab.mean_slowdown), kSlowdownTol)
        << policy << ": " << emu.mean_slowdown << " vs " << tab.mean_slowdown;
  }
}

TEST_F(ParityTest, QosVerdictsAgree) {
  for (const auto& [policy, backends] : grid()) {
    EXPECT_EQ(backends.at(Backend::kEmulated).qos_ok,
              backends.at(Backend::kTabular).qos_ok)
        << policy;
  }
}

TEST_F(ParityTest, PolicyOrderingConsistentAcrossBackends) {
  // The paper's qualitative result: the performance-aware even-slowdown
  // budgeter with correct models does no worse than the uniform one, on
  // either backend.
  for (Backend backend : {Backend::kEmulated, Backend::kTabular}) {
    const double characterized =
        grid().at("characterized").at(backend).mean_slowdown;
    const double uniform = grid().at("uniform").at(backend).mean_slowdown;
    EXPECT_LE(characterized, uniform + 1e-9) << to_string(backend);
  }
}

TEST_F(ParityTest, EmulatedScenarioMatchesLegacyExperimentPath) {
  // run_scenario on the emulated backend must be bit-identical to the
  // historical core::run_experiment plumbing it replaced: same seed, same
  // schedule, same policy => same power trace.
  ScenarioSpec spec;
  spec.schedule = parity_schedule();
  spec.policy = PolicyRef("characterized");
  spec.static_budget_w = kBudgetW;
  spec.node_count = kNodes;
  spec.seed = 7;
  const RunResult once = run_scenario(spec);
  const RunResult twice = run_scenario(spec);
  ASSERT_EQ(once.power_w.size(), twice.power_w.size());
  for (std::size_t i = 0; i < once.power_w.size(); ++i) {
    ASSERT_EQ(once.power_w.values()[i], twice.power_w.values()[i]) << "sample " << i;
  }
  EXPECT_EQ(once.end_time_s, twice.end_time_s);
}

}  // namespace
}  // namespace anor::engine
