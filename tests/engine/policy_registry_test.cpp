// Policy registry (engine/policy_registry.hpp): registration semantics,
// lookup errors, identity, and race-freedom of concurrent dispatch.
#include "engine/policy_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "engine/runner.hpp"
#include "util/error.hpp"
#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::engine {
namespace {

TEST(PolicyRegistry, BuiltinsAreAlwaysPresent) {
  PolicyRegistry& registry = PolicyRegistry::global();
  for (const std::string& name : PolicyRegistry::builtin_names()) {
    ASSERT_TRUE(registry.contains(name)) << name;
    const PolicyDescriptor d = registry.get(name);
    EXPECT_TRUE(d.builtin);
    EXPECT_EQ(d.identity(), name) << "builtin identity is the bare name";
    EXPECT_FALSE(static_cast<bool>(d.budgeter_factory))
        << "builtins must keep the legacy make_budgeter path";
    EXPECT_TRUE(registry.is_admitted(name)) << "builtins bypass admission";
  }
  const std::vector<std::string> names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyRegistry, UnknownLookupNamesTheAvailableEntries) {
  try {
    PolicyRegistry::global().get("no-such-policy");
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no-such-policy"), std::string::npos) << what;
    EXPECT_NE(what.find("adjusted"), std::string::npos) << what;
    EXPECT_NE(what.find("uniform"), std::string::npos) << what;
  }
}

TEST(PolicyRegistry, ReRegistrationIsIdempotentButConflictsThrow) {
  PolicyRegistry& registry = PolicyRegistry::global();
  registry.register_expression_policy("reg-test-a", "p_min + 1");
  // Same definition again: fine (specs with inline DSL resolve repeatedly).
  EXPECT_NO_THROW(registry.register_expression_policy("reg-test-a", "p_min + 1"));
  // Different definition under the same name: refused.
  EXPECT_THROW(registry.register_expression_policy("reg-test-a", "p_min + 2"),
               util::ConfigError);
  registry.unregister("reg-test-a");
  // After unregistering, the name is free again.
  EXPECT_NO_THROW(registry.register_expression_policy("reg-test-a", "p_min + 2"));
  registry.unregister("reg-test-a");
}

TEST(PolicyRegistry, BuiltinNamesAreProtected) {
  PolicyRegistry& registry = PolicyRegistry::global();
  EXPECT_THROW(registry.register_expression_policy("uniform", "p_min"),
               util::ConfigError);
  EXPECT_THROW(registry.unregister("adjusted"), util::ConfigError);
}

TEST(PolicyRegistry, ExpressionIdentityFoldsTheSourceHash) {
  PolicyRegistry& registry = PolicyRegistry::global();
  registry.register_expression_policy("reg-test-id", "p_min + 1");
  const std::string identity = registry.get("reg-test-id").identity();
  registry.unregister("reg-test-id");
  registry.register_expression_policy("reg-test-id", "p_min + 2");
  const std::string other = registry.get("reg-test-id").identity();
  registry.unregister("reg-test-id");
  EXPECT_NE(identity, other);
  EXPECT_EQ(identity.rfind("reg-test-id#", 0), 0u) << identity;
}

TEST(PolicyRegistry, AdmissionIsPerIdentity) {
  PolicyRegistry& registry = PolicyRegistry::global();
  registry.register_expression_policy("reg-test-adm", "p_min + 1");
  EXPECT_FALSE(registry.is_admitted("reg-test-adm"));
  registry.mark_admitted("reg-test-adm");
  EXPECT_TRUE(registry.is_admitted("reg-test-adm"));
  // Re-registering a different definition resets the admission.
  registry.unregister("reg-test-adm");
  registry.register_expression_policy("reg-test-adm", "p_min + 2");
  EXPECT_FALSE(registry.is_admitted("reg-test-adm"));
  registry.unregister("reg-test-adm");
}

TEST(PolicyRegistry, InlineDslRefsResolveAndAutoRegister) {
  const PolicyRef ref("reg-test-inline", "clamp(fair_w, p_min, p_max)");
  const PolicyDescriptor d = resolve_policy(ref);
  EXPECT_EQ(d.dsl_source, ref.dsl);
  EXPECT_TRUE(static_cast<bool>(policy_budgeter_factory(d)));
  // Resolving again is the idempotent path.
  EXPECT_NO_THROW(resolve_policy(ref));
  PolicyRegistry::global().unregister("reg-test-inline");
}

ScenarioSpec tiny_spec(const std::string& policy, std::uint64_t seed) {
  workload::PoissonScheduleConfig config;
  config.duration_s = 240.0;
  config.utilization = 0.7;
  config.cluster_nodes = 4;
  ScenarioSpec spec;
  spec.name = "registry-race";
  spec.backend = Backend::kTabular;
  spec.schedule = workload::generate_poisson_schedule(workload::nas_long_job_types(),
                                                      config, util::Rng(seed));
  spec.policy = PolicyRef(policy);
  spec.static_budget_w = 165.0 * 4;
  spec.node_count = 4;
  spec.seed = seed;
  spec.step_workers = 2;  // exercise registry reads under sharded stepping
  return spec;
}

TEST(PolicyRegistry, ConcurrentDispatchUnderShardedWorkersIsRaceFree) {
  // TSan coverage target (check_tier1.sh): concurrent run_scenario calls
  // resolving built-ins while other threads mutate the registry with
  // distinct custom names must not race.
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([i] {
      const std::string policy = (i % 2 == 0) ? "characterized" : "uniform";
      const RunResult result = run_scenario(tiny_spec(policy, 11 + i));
      EXPECT_GT(result.jobs_completed, 0);
    });
  }
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([i] {
      const std::string name = "race-policy-" + std::to_string(i);
      for (int round = 0; round < 25; ++round) {
        PolicyRegistry::global().register_expression_policy(name, "p_min + 1");
        (void)PolicyRegistry::global().get(name);
        (void)PolicyRegistry::global().names();
        PolicyRegistry::global().unregister(name);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace
}  // namespace anor::engine
