// Admission harness (engine/policy_admission.hpp): well-formed expression
// policies get in, non-deterministic ones are rejected, built-ins bypass
// the harness entirely, and the gate is enforced at run_scenario.
#include "engine/policy_admission.hpp"

#include <gtest/gtest.h>

#include <string>

#include "engine/policy_registry.hpp"
#include "engine/runner.hpp"
#include "util/error.hpp"
#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::engine {
namespace {

/// Cheap options for unit tests: small scenario, no chaos stage unless a
/// test opts in.
AdmissionOptions quick_options() {
  AdmissionOptions options;
  options.duration_s = 300.0;
  options.node_count = 4;
  options.chaos_gate = false;
  return options;
}

TEST(PolicyAdmission, BuiltinsBypassTheHarness) {
  for (const std::string& name : PolicyRegistry::builtin_names()) {
    const AdmissionReport report = admit_policy(PolicyRef(name));
    EXPECT_TRUE(report.passed()) << report.describe();
    ASSERT_EQ(report.checks.size(), 1u);
    EXPECT_EQ(report.checks[0].name, "builtin");
  }
}

TEST(PolicyAdmission, NoisyPolicyIsRejectedByTheDeterminismGates) {
  PolicyRegistry::global().register_expression_policy(
      "adm-test-noisy", "clamp(fair_w + noise(), p_min, p_max)");
  const AdmissionReport report =
      run_admission(PolicyRef("adm-test-noisy"), quick_options());
  EXPECT_FALSE(report.passed()) << report.describe();
  // The cheap envelope repeat-check catches the nondeterminism first.
  ASSERT_FALSE(report.checks.empty());
  EXPECT_EQ(report.checks[0].name, "budget-envelope");
  EXPECT_FALSE(report.checks[0].passed) << report.checks[0].detail;
  EXPECT_FALSE(PolicyRegistry::global().is_admitted("adm-test-noisy"));
  PolicyRegistry::global().unregister("adm-test-noisy");
}

TEST(PolicyAdmission, RunScenarioRefusesUnadmittedPolicies) {
  PolicyRegistry::global().register_expression_policy(
      "adm-test-noisy-run", "fair_w * noise()");
  workload::PoissonScheduleConfig config;
  config.duration_s = 240.0;
  config.utilization = 0.7;
  config.cluster_nodes = 4;
  ScenarioSpec spec;
  spec.backend = Backend::kTabular;
  spec.schedule = workload::generate_poisson_schedule(workload::nas_long_job_types(),
                                                      config, util::Rng(5));
  spec.policy = PolicyRef("adm-test-noisy-run");
  spec.static_budget_w = 4 * 165.0;
  spec.node_count = 4;
  spec.seed = 5;
  try {
    run_scenario(spec);
    FAIL() << "expected ConfigError from the admission gate";
  } catch (const util::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("adm-test-noisy-run"), std::string::npos) << what;
    EXPECT_NE(what.find("admission"), std::string::npos) << what;
  }
  PolicyRegistry::global().unregister("adm-test-noisy-run");
}

TEST(PolicyAdmission, FairSharePolicyPassesTheFullHarness) {
  // The walkthrough policy (README / check_tier1.sh): per-node fair share
  // of the budget, clamped into the achievable envelope.  Runs the whole
  // harness including cross-backend parity and the chaos gate.
  PolicyRegistry::global().register_expression_policy(
      "adm-test-fairshare", "clamp(budget_w / total_nodes, p_min, p_max)");
  AdmissionOptions options;
  options.duration_s = 360.0;
  options.node_count = 4;
  options.chaos_duration_s = 120.0;
  options.chaos_node_count = 4;
  const AdmissionReport report =
      admit_policy(PolicyRef("adm-test-fairshare"), options);
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_TRUE(PolicyRegistry::global().is_admitted("adm-test-fairshare"));

  // Once admitted, run_scenario dispatches it without re-running the
  // harness (and the run completes).
  workload::PoissonScheduleConfig config;
  config.duration_s = 240.0;
  config.utilization = 0.7;
  config.cluster_nodes = 4;
  ScenarioSpec spec;
  spec.backend = Backend::kTabular;
  spec.schedule = workload::generate_poisson_schedule(workload::nas_long_job_types(),
                                                      config, util::Rng(5));
  spec.policy = PolicyRef("adm-test-fairshare");
  spec.static_budget_w = 4 * 165.0;
  spec.node_count = 4;
  spec.seed = 5;
  const RunResult result = run_scenario(spec);
  EXPECT_GT(result.jobs_completed, 0);
  PolicyRegistry::global().unregister("adm-test-fairshare");
}

TEST(PolicyAdmission, ReportListsEveryGateInOrder) {
  PolicyRegistry::global().register_expression_policy("adm-test-report", "fair_w");
  AdmissionOptions options;
  options.duration_s = 300.0;
  options.node_count = 4;
  options.chaos_duration_s = 120.0;
  options.chaos_node_count = 4;
  const AdmissionReport report = run_admission(PolicyRef("adm-test-report"), options);
  ASSERT_EQ(report.checks.size(), 4u) << report.describe();
  EXPECT_EQ(report.checks[0].name, "budget-envelope");
  EXPECT_EQ(report.checks[1].name, "tabular-determinism");
  EXPECT_EQ(report.checks[2].name, "cross-backend-parity");
  EXPECT_EQ(report.checks[3].name, "chaos-determinism");
  EXPECT_TRUE(report.passed()) << report.describe();
  // run_admission is pure measurement: no admission state was touched.
  EXPECT_FALSE(PolicyRegistry::global().is_admitted("adm-test-report"));
  PolicyRegistry::global().unregister("adm-test-report");
}

}  // namespace
}  // namespace anor::engine
