#include <gtest/gtest.h>

#include "engine/scenario.hpp"
#include "util/error.hpp"
#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::engine {
namespace {

workload::Schedule small_schedule() {
  workload::Schedule schedule;
  schedule.duration_s = 600.0;
  workload::JobRequest a;
  a.job_id = 1;
  a.type_name = "bt.D.x";
  a.submit_time_s = 10.0;
  a.nodes = 4;
  schedule.jobs.push_back(a);
  workload::JobRequest b;
  b.job_id = 2;
  b.type_name = "lu.D.x";
  b.submit_time_s = 45.0;
  schedule.jobs.push_back(b);
  return schedule;
}

TEST(ScenarioSpecJson, RoundTripPreservesEverything) {
  ScenarioSpec original;
  original.name = "fig9-repro";
  original.backend = Backend::kTabular;
  original.schedule = small_schedule();
  original.policy = PolicyRef("adjusted");
  original.targets.add(0.0, 3000.0);
  original.targets.add(4.0, 3100.0);
  original.targets.add(8.0, 2950.0);
  original.node_count = 64;
  original.perf_variation_sigma = 0.04;
  original.seed = 99;
  original.tracking_warmup_s = 120.0;
  original.tracking_reserve_w = 800.0;
  original.artifact_dir = "/tmp/artifacts";
  original.artifact_cadence_s = 2.0;

  const ScenarioSpec parsed = scenario_spec_from_json(scenario_spec_to_json(original));
  EXPECT_EQ(parsed.name, "fig9-repro");
  EXPECT_EQ(parsed.backend, Backend::kTabular);
  EXPECT_EQ(parsed.policy, PolicyRef("adjusted"));
  ASSERT_EQ(parsed.schedule.jobs.size(), 2u);
  EXPECT_EQ(parsed.schedule.jobs[0].type_name, "bt.D.x");
  EXPECT_EQ(parsed.schedule.jobs[0].nodes, 4);
  EXPECT_DOUBLE_EQ(parsed.schedule.jobs[1].submit_time_s, 45.0);
  EXPECT_FALSE(parsed.static_budget_w.has_value());
  ASSERT_EQ(parsed.targets.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.targets.times()[2], 8.0);
  EXPECT_DOUBLE_EQ(parsed.targets.values()[1], 3100.0);
  EXPECT_EQ(parsed.node_count, 64);
  EXPECT_DOUBLE_EQ(parsed.perf_variation_sigma, 0.04);
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_DOUBLE_EQ(parsed.tracking_warmup_s, 120.0);
  EXPECT_DOUBLE_EQ(parsed.tracking_reserve_w, 800.0);
  EXPECT_EQ(parsed.artifact_dir, "/tmp/artifacts");
  EXPECT_DOUBLE_EQ(parsed.artifact_cadence_s, 2.0);
}

TEST(ScenarioSpecJson, MisclassificationLabelsSurviveTheRoundTrip) {
  ScenarioSpec original;
  original.schedule = small_schedule();
  original.policy = PolicyRef("misclassified");
  workload::misclassify(original.schedule, "bt.D.x", "is.D.x");

  const ScenarioSpec parsed = scenario_spec_from_json(scenario_spec_to_json(original));
  EXPECT_EQ(parsed.policy, PolicyRef("misclassified"));
  ASSERT_EQ(parsed.schedule.jobs.size(), 2u);
  EXPECT_EQ(parsed.schedule.jobs[0].classified_as, "is.D.x");
  EXPECT_EQ(parsed.schedule.jobs[0].effective_class(), "is.D.x");
  EXPECT_TRUE(parsed.schedule.jobs[1].classified_as.empty());
}

TEST(ScenarioSpecJson, StaticBudgetRoundTripsAndExcludesTargets) {
  ScenarioSpec original;
  original.schedule = small_schedule();
  original.static_budget_w = 2500.0;

  const util::Json json = scenario_spec_to_json(original);
  EXPECT_FALSE(json.contains("targets"));
  const ScenarioSpec parsed = scenario_spec_from_json(json);
  ASSERT_TRUE(parsed.static_budget_w.has_value());
  EXPECT_DOUBLE_EQ(*parsed.static_budget_w, 2500.0);
  EXPECT_TRUE(parsed.targets.empty());
}

TEST(ScenarioSpecJson, BackendSelectorParses) {
  EXPECT_EQ(backend_from_string("emulated"), Backend::kEmulated);
  EXPECT_EQ(backend_from_string("tabular"), Backend::kTabular);
  EXPECT_THROW(backend_from_string("hardware"), util::ConfigError);
  EXPECT_EQ(to_string(Backend::kEmulated), "emulated");
  EXPECT_EQ(to_string(Backend::kTabular), "tabular");
}

TEST(ScenarioSpecJson, DefaultsApplyForMissingKeys) {
  const ScenarioSpec parsed = scenario_spec_from_json(util::Json::parse("{}"));
  const ScenarioSpec defaults;
  EXPECT_EQ(parsed.backend, Backend::kEmulated);
  EXPECT_EQ(parsed.policy, PolicyRef("characterized"));
  EXPECT_EQ(parsed.node_count, defaults.node_count);
  EXPECT_EQ(parsed.seed, 1u);
  EXPECT_TRUE(parsed.schedule.jobs.empty());
  EXPECT_TRUE(parsed.artifact_dir.empty());
}

TEST(ScenarioSpecJson, UnknownPolicyNamesTheAvailableEntries) {
  try {
    policy_from_string("power-yolo");
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("power-yolo"), std::string::npos) << what;
    EXPECT_NE(what.find("available"), std::string::npos) << what;
    // The four built-ins are always registered, so the candidate list
    // must mention them.
    EXPECT_NE(what.find("characterized"), std::string::npos) << what;
    EXPECT_NE(what.find("uniform"), std::string::npos) << what;
  }

  // The spec JSON path reports the same error.
  EXPECT_THROW(
      scenario_spec_from_json(util::Json::parse(R"({"policy": "power-yolo"})")),
      util::ConfigError);
}

TEST(ScenarioSpecJson, ExpressionPolicyRoundTripsAsObject) {
  ScenarioSpec original;
  original.schedule = small_schedule();
  original.policy = PolicyRef("json-rt-expr", "clamp(budget_w / total_nodes, p_min, p_max)");

  const util::Json json = scenario_spec_to_json(original);
  // Built-in (and plain named) policies stay plain strings; inline DSL
  // policies serialize as {"name", "expr"} objects.
  EXPECT_TRUE(json.at("policy").is_object());
  const ScenarioSpec parsed = scenario_spec_from_json(json);
  EXPECT_EQ(parsed.policy, original.policy);
  EXPECT_EQ(parsed.policy.dsl, "clamp(budget_w / total_nodes, p_min, p_max)");

  ScenarioSpec builtin;
  builtin.schedule = small_schedule();
  builtin.policy = PolicyRef("uniform");
  EXPECT_TRUE(scenario_spec_to_json(builtin).at("policy").is_string());
}

TEST(ScenarioSpecJson, MalformedExpressionPolicyIsRejectedAtParse) {
  EXPECT_THROW(scenario_spec_from_json(util::Json::parse(
                   R"({"policy": {"name": "bad", "expr": "p_min + "}})")),
               util::ConfigError);
}

TEST(ScenarioSpecJson, ValidateRejectsContradictions) {
  ScenarioSpec both;
  both.schedule = small_schedule();
  both.static_budget_w = 1000.0;
  both.targets.add(0.0, 900.0);
  EXPECT_THROW(both.validate(), util::ConfigError);

  ScenarioSpec empty_tabular;
  empty_tabular.backend = Backend::kTabular;
  EXPECT_THROW(empty_tabular.validate(), util::ConfigError);

  ScenarioSpec bad_nodes;
  bad_nodes.schedule = small_schedule();
  bad_nodes.node_count = 0;
  EXPECT_THROW(bad_nodes.validate(), util::ConfigError);
}

}  // namespace
}  // namespace anor::engine
