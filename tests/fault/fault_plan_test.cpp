// FaultPlan: JSON round-trip, file loading, and the named presets.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"
#include "util/json.hpp"

namespace anor::fault {
namespace {

TEST(FaultPlan, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_EQ(plan.name, "none");
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.channel.any());
  EXPECT_FALSE(plan.msr.any());
}

TEST(FaultPlan, JsonRoundTripPreservesEveryField) {
  FaultPlan plan;
  plan.name = "everything";
  plan.seed = 42;
  plan.channel.drop_prob = 0.1;
  plan.channel.duplicate_prob = 0.05;
  plan.channel.corrupt_prob = 0.02;
  plan.channel.reorder_prob = 0.03;
  plan.channel.delay_prob = 0.2;
  plan.channel.delay_s = 1.5;
  plan.channel.disconnect_from_s = 100.0;
  plan.channel.disconnect_until_s = 120.0;
  plan.channel.manager_side = false;
  plan.channel.endpoint_side = true;
  NodeCrashSpec crash;
  crash.job_id = 3;
  crash.crash_s = 60.0;
  crash.restart_s = 90.0;
  plan.crashes.push_back(crash);
  plan.msr.read_fault_prob = 0.01;
  plan.msr.write_fault_prob = 0.02;
  plan.msr.from_s = 10.0;
  plan.msr.until_s = 200.0;

  const FaultPlan round = FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(round.name, "everything");
  EXPECT_EQ(round.seed, 42u);
  EXPECT_DOUBLE_EQ(round.channel.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(round.channel.duplicate_prob, 0.05);
  EXPECT_DOUBLE_EQ(round.channel.corrupt_prob, 0.02);
  EXPECT_DOUBLE_EQ(round.channel.reorder_prob, 0.03);
  EXPECT_DOUBLE_EQ(round.channel.delay_prob, 0.2);
  EXPECT_DOUBLE_EQ(round.channel.delay_s, 1.5);
  EXPECT_DOUBLE_EQ(round.channel.disconnect_from_s, 100.0);
  EXPECT_DOUBLE_EQ(round.channel.disconnect_until_s, 120.0);
  EXPECT_FALSE(round.channel.manager_side);
  EXPECT_TRUE(round.channel.endpoint_side);
  ASSERT_EQ(round.crashes.size(), 1u);
  EXPECT_EQ(round.crashes[0].job_id, 3);
  EXPECT_DOUBLE_EQ(round.crashes[0].crash_s, 60.0);
  EXPECT_DOUBLE_EQ(round.crashes[0].restart_s, 90.0);
  EXPECT_DOUBLE_EQ(round.msr.read_fault_prob, 0.01);
  EXPECT_DOUBLE_EQ(round.msr.write_fault_prob, 0.02);
  EXPECT_DOUBLE_EQ(round.msr.from_s, 10.0);
  EXPECT_DOUBLE_EQ(round.msr.until_s, 200.0);
  EXPECT_TRUE(round.any());
}

TEST(FaultPlan, LoadsFromFile) {
  FaultPlan plan = FaultPlan::preset("drop10");
  plan.seed = 7;
  const auto path =
      (std::filesystem::temp_directory_path() / "fault_plan_test.json").string();
  util::save_json_file(path, plan.to_json());
  const FaultPlan loaded = FaultPlan::load(path);
  EXPECT_EQ(loaded.name, plan.name);
  EXPECT_EQ(loaded.seed, 7u);
  EXPECT_DOUBLE_EQ(loaded.channel.drop_prob, plan.channel.drop_prob);
  std::filesystem::remove(path);
}

TEST(FaultPlan, PresetsCoverTheAdvertisedNames) {
  for (const std::string& name : FaultPlan::preset_names()) {
    const FaultPlan plan = FaultPlan::preset(name);
    EXPECT_EQ(plan.name, name);
  }
  EXPECT_FALSE(FaultPlan::preset("none").any());
  const FaultPlan drop = FaultPlan::preset("drop10");
  EXPECT_DOUBLE_EQ(drop.channel.drop_prob, 0.10);
  const FaultPlan acceptance = FaultPlan::preset("drop10_crash1");
  EXPECT_DOUBLE_EQ(acceptance.channel.drop_prob, 0.10);
  ASSERT_EQ(acceptance.crashes.size(), 1u);
  EXPECT_GT(acceptance.crashes[0].restart_s, acceptance.crashes[0].crash_s);
  const FaultPlan chaos = FaultPlan::preset("chaos");
  EXPECT_TRUE(chaos.channel.any());
  EXPECT_TRUE(chaos.msr.any());
  EXPECT_FALSE(chaos.crashes.empty());
}

TEST(FaultPlan, UnknownPresetThrows) {
  EXPECT_THROW(FaultPlan::preset("nope"), util::ConfigError);
}

TEST(FaultPlan, MsrFaultWindow) {
  MsrFaultSpec spec;
  spec.read_fault_prob = 0.5;
  spec.from_s = 10.0;
  spec.until_s = 20.0;
  EXPECT_FALSE(spec.active_at(5.0));
  EXPECT_TRUE(spec.active_at(10.0));
  EXPECT_TRUE(spec.active_at(19.9));
  EXPECT_FALSE(spec.active_at(20.0));
  spec.until_s = 0.0;  // open-ended
  EXPECT_TRUE(spec.active_at(1e6));
  spec.read_fault_prob = 0.0;
  EXPECT_FALSE(spec.active_at(15.0));  // no fault probability, never active
}

}  // namespace
}  // namespace anor::fault
