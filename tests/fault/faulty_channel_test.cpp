// FaultyChannel: each fault kind behaves as specified, events land in the
// log, and the canonical trace is deterministic for a given seed.
#include "fault/faulty_channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/messages.hpp"
#include "cluster/transport.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace anor::fault {
namespace {

cluster::PowerBudgetMsg budget(double cap_w, std::uint64_t seq = 0) {
  cluster::PowerBudgetMsg msg;
  msg.job_id = 1;
  msg.node_cap_w = cap_w;
  msg.seq = seq;
  return msg;
}

struct Harness {
  util::VirtualClock clock;
  std::unique_ptr<cluster::MessageChannel> receiver;
  std::unique_ptr<FaultyChannel> channel;
  FaultEventLog log;

  Harness(ChannelFaultSpec spec, std::uint64_t seed = 1) {
    cluster::InprocPair pair = cluster::make_inproc_pair(clock, 0.0);
    receiver = std::move(pair.b);
    channel = std::make_unique<FaultyChannel>(std::move(pair.a), spec, util::Rng(seed),
                                              clock, 1, "mgr", &log);
  }

  std::vector<cluster::Message> drain() {
    std::vector<cluster::Message> out;
    while (auto msg = receiver->receive()) out.push_back(*msg);
    return out;
  }
};

TEST(FaultyChannel, DropSwallowsTheMessageButReportsSuccess) {
  ChannelFaultSpec spec;
  spec.drop_prob = 1.0;
  Harness h(spec);
  EXPECT_TRUE(h.channel->send(budget(150.0, 5)));
  EXPECT_TRUE(h.drain().empty());
  ASSERT_EQ(h.log.size(), 1u);
  EXPECT_EQ(h.log.events()[0].kind, "drop");
  EXPECT_EQ(h.log.events()[0].msg_type, "budget");
  EXPECT_EQ(h.log.events()[0].seq, 5u);
}

TEST(FaultyChannel, DisconnectWindowFailsSendsOutright) {
  ChannelFaultSpec spec;
  spec.disconnect_from_s = 10.0;
  spec.disconnect_until_s = 20.0;
  Harness h(spec);

  EXPECT_TRUE(h.channel->send(budget(150.0)));  // before the window
  h.clock.advance(15.0);
  EXPECT_FALSE(h.channel->send(budget(160.0)));  // inside: sender notices
  h.clock.advance(10.0);
  EXPECT_TRUE(h.channel->send(budget(170.0)));  // after: healed
  EXPECT_EQ(h.drain().size(), 2u);
  ASSERT_EQ(h.log.size(), 1u);
  EXPECT_EQ(h.log.events()[0].kind, "disconnect");
  EXPECT_DOUBLE_EQ(h.log.events()[0].t_s, 15.0);
}

TEST(FaultyChannel, DelayHoldsUntilVirtualTimePasses) {
  ChannelFaultSpec spec;
  spec.delay_prob = 1.0;
  spec.delay_s = 2.0;
  Harness h(spec);
  EXPECT_TRUE(h.channel->send(budget(150.0)));
  EXPECT_TRUE(h.drain().empty());  // held
  h.clock.advance(1.0);
  h.channel->receive();  // polling the channel flushes due messages
  EXPECT_TRUE(h.drain().empty());  // 1 s < 2 s: still held
  h.clock.advance(1.0);
  h.channel->receive();
  EXPECT_EQ(h.drain().size(), 1u);
  ASSERT_EQ(h.log.size(), 1u);
  EXPECT_EQ(h.log.events()[0].kind, "delay");
}

TEST(FaultyChannel, DuplicateDeliversTwice) {
  ChannelFaultSpec spec;
  spec.duplicate_prob = 1.0;
  Harness h(spec);
  EXPECT_TRUE(h.channel->send(budget(150.0, 9)));
  const auto delivered = h.drain();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(cluster::seq_of(delivered[0]), 9u);
  EXPECT_EQ(cluster::seq_of(delivered[1]), 9u);  // same seq: dedup's job
  ASSERT_EQ(h.log.size(), 1u);
  EXPECT_EQ(h.log.events()[0].kind, "duplicate");
}

TEST(FaultyChannel, CorruptedFramesNeverReachTheReceiver) {
  ChannelFaultSpec spec;
  spec.corrupt_prob = 1.0;
  Harness h(spec);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(h.channel->send(budget(150.0 + i, i + 1)));
  }
  // Every frame got a byte flipped; the checksum (or the JSON parse)
  // must reject all of them — none may decode into a different budget.
  EXPECT_TRUE(h.drain().empty());
  EXPECT_EQ(h.log.size(), 50u);
  for (const FaultEvent& event : h.log.events()) EXPECT_EQ(event.kind, "corrupt");
}

TEST(FaultyChannel, ReorderedMessageIsOvertakenByTheNextSend) {
  // Find a seed whose first reorder coin is heads and second is tails, so
  // send #1 is held and send #2 passes through and releases it.
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 200; ++candidate) {
    util::Rng probe(candidate);
    const bool first = probe.coin(0.5);
    const bool second = probe.coin(0.5);
    if (first && !second) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u);

  ChannelFaultSpec spec;
  spec.reorder_prob = 0.5;
  Harness h(spec, seed);
  EXPECT_TRUE(h.channel->send(budget(150.0, 1)));  // held
  EXPECT_TRUE(h.drain().empty());
  EXPECT_TRUE(h.channel->send(budget(160.0, 2)));  // overtakes, then releases
  const auto delivered = h.drain();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(cluster::seq_of(delivered[0]), 2u);  // newer first
  EXPECT_EQ(cluster::seq_of(delivered[1]), 1u);  // stale straggler
  ASSERT_EQ(h.log.size(), 1u);
  EXPECT_EQ(h.log.events()[0].kind, "reorder");
}

TEST(FaultyChannel, EventLogTextIsCanonical) {
  FaultEventLog log;
  FaultEvent event;
  event.t_s = 1.25;
  event.side = "ep";
  event.kind = "drop";
  event.msg_type = "hb";
  event.job_id = 7;
  event.seq = 42;
  log.record(event);
  EXPECT_EQ(log.to_text(), "t=1.250 side=ep kind=drop msg=hb job=7 seq=42\n");
}

TEST(FaultyChannel, SameSeedReplaysTheSameTrace) {
  ChannelFaultSpec spec;
  spec.drop_prob = 0.3;
  spec.duplicate_prob = 0.2;
  spec.delay_prob = 0.2;

  auto run = [&spec]() {
    Harness h(spec, 99);
    for (int i = 0; i < 40; ++i) {
      h.clock.advance(0.5);
      h.channel->send(budget(150.0 + i, i + 1));
    }
    return h.log.to_text();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace anor::fault
