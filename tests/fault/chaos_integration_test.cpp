// Closed-loop chaos acceptance: the hardened two-tier stack under the
// drop10_crash1 plan recovers to within 5 % of the power target with no
// budget leaked to dead jobs, and identical plan + seed replays a
// byte-identical fault-event trace.
#include "fault/chaos.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fault/fault_plan.hpp"

namespace anor::fault {
namespace {

TEST(ChaosIntegration, CleanRunTracksWithoutFaults) {
  ChaosConfig config;
  config.plan = FaultPlan::preset("none");
  config.duration_s = 120.0;
  const ChaosResult result = run_chaos(config);
  EXPECT_EQ(result.fault_events, 0u);
  EXPECT_EQ(result.leases_expired, 0u);
  EXPECT_TRUE(result.recovered);
  EXPECT_LE(result.final_error_frac, config.recovery_band_frac);
  EXPECT_DOUBLE_EQ(result.leaked_budget_w, 0.0);
  EXPECT_TRUE(result.event_trace.empty());
}

TEST(ChaosIntegration, AcceptanceDropTenPercentPlusOneCrash) {
  ChaosConfig config;
  config.plan = FaultPlan::preset("drop10_crash1");
  const ChaosResult result = run_chaos(config);

  // Faults actually flew and the crash cost the dead job its lease.
  EXPECT_GT(result.fault_events, 0u);
  EXPECT_GE(result.leases_expired, 1u);
  EXPECT_NE(result.event_trace.find("kind=crash"), std::string::npos);
  EXPECT_NE(result.event_trace.find("kind=restart"), std::string::npos);
  EXPECT_NE(result.event_trace.find("kind=drop"), std::string::npos);

  // The acceptance bar: recovery into the 5 % band, nothing allocated to
  // the dead.
  EXPECT_TRUE(result.recovered);
  EXPECT_LE(result.final_error_frac, 0.05);
  EXPECT_GE(result.recovery_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(result.leaked_budget_w, 0.0);
}

TEST(ChaosIntegration, SamePlanAndSeedReplayByteIdenticalTraces) {
  ChaosConfig config;
  config.plan = FaultPlan::preset("drop10_crash1");
  const ChaosResult first = run_chaos(config);
  const ChaosResult second = run_chaos(config);
  EXPECT_FALSE(first.event_trace.empty());
  EXPECT_EQ(first.event_trace, second.event_trace);
  EXPECT_EQ(first.leases_expired, second.leases_expired);
  EXPECT_DOUBLE_EQ(first.final_error_frac, second.final_error_frac);
}

TEST(ChaosIntegration, DifferentFaultSeedChangesTheTrace) {
  ChaosConfig config;
  config.plan = FaultPlan::preset("drop10");
  const ChaosResult first = run_chaos(config);
  config.plan.seed = 2;
  const ChaosResult second = run_chaos(config);
  EXPECT_FALSE(first.event_trace.empty());
  EXPECT_NE(first.event_trace, second.event_trace);
}

TEST(ChaosIntegration, KitchenSinkPlanStillRecovers) {
  ChaosConfig config;
  config.plan = FaultPlan::preset("chaos");
  const ChaosResult result = run_chaos(config);
  EXPECT_GT(result.fault_events, 0u);
  EXPECT_TRUE(result.recovered);
  EXPECT_DOUBLE_EQ(result.leaked_budget_w, 0.0);
}

}  // namespace
}  // namespace anor::fault
