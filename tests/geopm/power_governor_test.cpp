#include "geopm/power_governor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace anor::geopm {
namespace {

struct PowerGovernorTest : ::testing::Test {
  PowerGovernorTest() : node(0, instant_node()), pio(node, clock), agent(pio) {}

  static platform::NodeConfig instant_node() {
    platform::NodeConfig config;
    config.package.response_tau_s = 0.0;
    return config;
  }

  util::VirtualClock clock;
  platform::Node node;
  PlatformIO pio;
  PowerGovernorAgent agent;
};

TEST_F(PowerGovernorTest, ValidatesPolicy) {
  EXPECT_THROW(agent.validate_policy({}), util::ConfigError);
  EXPECT_THROW(agent.validate_policy({0.0}), util::ConfigError);
  EXPECT_THROW(agent.validate_policy({-5.0}), util::ConfigError);
  EXPECT_NO_THROW(agent.validate_policy({200.0}));
}

TEST_F(PowerGovernorTest, AdjustAppliesCap) {
  agent.adjust_platform({200.0});
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 200.0);
  EXPECT_DOUBLE_EQ(agent.applied_cap_w(), 200.0);
}

TEST_F(PowerGovernorTest, AdjustClampedCapReported) {
  agent.adjust_platform({90.0});
  EXPECT_DOUBLE_EQ(agent.applied_cap_w(), 140.0);
}

TEST_F(PowerGovernorTest, RepeatedSameCapSkipsWrite) {
  agent.adjust_platform({200.0});
  node.set_power_cap(260.0);  // external perturbation
  agent.adjust_platform({200.0});  // same request: no rewrite
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 260.0);
  agent.adjust_platform({201.0});  // new request: written
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 201.0);
}

TEST_F(PowerGovernorTest, SampleHasAllFields) {
  clock.advance(1.0);
  const auto sample = agent.sample_platform();
  ASSERT_EQ(sample.size(), static_cast<std::size_t>(kSampleSize));
  EXPECT_GE(sample[kSamplePower], 0.0);
  EXPECT_GE(sample[kSampleEnergy], 0.0);
  EXPECT_DOUBLE_EQ(sample[kSampleEpochCount], 0.0);
  EXPECT_DOUBLE_EQ(sample[kSampleTimestamp], 1.0);
}

TEST_F(PowerGovernorTest, AggregationSumsPowerMinsEpochs) {
  std::vector<std::vector<double>> samples = {
      {100.0, 1000.0, 7.0, 1.0, 1.0},
      {120.0, 1100.0, 5.0, 1.2, 2.0},
      {90.0, 900.0, 9.0, 0.9, 1.0},
  };
  const auto agg = agent.aggregate_samples(samples);
  EXPECT_DOUBLE_EQ(agg[kSamplePower], 310.0);
  EXPECT_DOUBLE_EQ(agg[kSampleEnergy], 3000.0);
  EXPECT_DOUBLE_EQ(agg[kSampleEpochCount], 5.0);  // min across nodes
  EXPECT_DOUBLE_EQ(agg[kSampleTimestamp], 1.2);   // newest
  EXPECT_DOUBLE_EQ(agg[kSampleNodeCount], 4.0);   // summed
}

TEST_F(PowerGovernorTest, AggregationOfNothingIsZeros) {
  const auto agg = agent.aggregate_samples({});
  EXPECT_DOUBLE_EQ(agg[kSamplePower], 0.0);
  EXPECT_DOUBLE_EQ(agg[kSampleEpochCount], 0.0);
}

TEST_F(PowerGovernorTest, DefaultSplitBroadcasts) {
  const auto split = agent.split_policy({222.0}, 3);
  ASSERT_EQ(split.size(), 3u);
  for (const auto& p : split) {
    ASSERT_EQ(p.size(), 1u);
    EXPECT_DOUBLE_EQ(p[0], 222.0);
  }
}

}  // namespace
}  // namespace anor::geopm
