#include "geopm/comm_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geopm/signals.hpp"

namespace anor::geopm {
namespace {

/// Scripted agent for exercising the tree choreography without hardware.
class ScriptedAgent final : public Agent {
 public:
  explicit ScriptedAgent(double power) : power_(power) {}

  std::string name() const override { return "scripted"; }
  void validate_policy(const std::vector<double>& policy) const override {
    if (policy.empty()) throw std::invalid_argument("empty policy");
  }
  void adjust_platform(const std::vector<double>& policy) override {
    applied_policies.push_back(policy[0]);
  }
  std::vector<double> sample_platform() override {
    std::vector<double> sample(kSampleSize, 0.0);
    sample[kSamplePower] = power_;
    sample[kSampleEpochCount] = power_;  // distinct per agent for min checks
    return sample;
  }
  std::vector<double> aggregate_samples(
      const std::vector<std::vector<double>>& child_samples) const override {
    std::vector<double> agg(kSampleSize, 0.0);
    double min_epoch = child_samples.front()[kSampleEpochCount];
    for (const auto& s : child_samples) {
      agg[kSamplePower] += s[kSamplePower];
      min_epoch = std::min(min_epoch, s[kSampleEpochCount]);
    }
    agg[kSampleEpochCount] = min_epoch;
    return agg;
  }

  std::vector<double> applied_policies;

 private:
  double power_;
};

TEST(TreeTopology, SingleNode) {
  TreeTopology topo{1, 4};
  EXPECT_TRUE(topo.children_of(0).empty());
  EXPECT_EQ(topo.parent_of(0), -1);
  EXPECT_EQ(topo.depth(), 0);
}

TEST(TreeTopology, FanoutStructure) {
  TreeTopology topo{7, 2};
  EXPECT_EQ(topo.children_of(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(topo.children_of(1), (std::vector<int>{3, 4}));
  EXPECT_EQ(topo.children_of(2), (std::vector<int>{5, 6}));
  EXPECT_TRUE(topo.children_of(3).empty());
  EXPECT_EQ(topo.parent_of(5), 2);
  EXPECT_EQ(topo.depth(), 2);
}

TEST(TreeTopology, PartialLastLevel) {
  TreeTopology topo{5, 4};
  EXPECT_EQ(topo.children_of(0), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(topo.depth(), 1);
}

TEST(AgentTree, ValidatesConstruction) {
  ScriptedAgent agent(1.0);
  EXPECT_THROW(AgentTree(TreeTopology{0, 4}, {}), std::invalid_argument);
  EXPECT_THROW(AgentTree(TreeTopology{2, 4}, {&agent}), std::invalid_argument);
  EXPECT_THROW(AgentTree(TreeTopology{1, 0}, {&agent}), std::invalid_argument);
  EXPECT_THROW(AgentTree(TreeTopology{1, 4}, {nullptr}), std::invalid_argument);
}

TEST(AgentTree, PolicyReachesEveryAgent) {
  std::vector<ScriptedAgent> agents(9, ScriptedAgent(10.0));
  std::vector<Agent*> ptrs;
  for (auto& a : agents) ptrs.push_back(&a);
  AgentTree tree(TreeTopology{9, 2}, ptrs);
  tree.distribute_policy({180.0});
  for (const auto& a : agents) {
    ASSERT_EQ(a.applied_policies.size(), 1u);
    EXPECT_DOUBLE_EQ(a.applied_policies[0], 180.0);
  }
}

TEST(AgentTree, ReduceSumsPowerAcrossAllNodes) {
  std::vector<ScriptedAgent> agents;
  agents.reserve(6);
  for (int i = 0; i < 6; ++i) agents.emplace_back(100.0 + i);
  std::vector<Agent*> ptrs;
  for (auto& a : agents) ptrs.push_back(&a);
  AgentTree tree(TreeTopology{6, 3}, ptrs);
  const auto sample = tree.reduce_samples();
  EXPECT_DOUBLE_EQ(sample[kSamplePower], 100 + 101 + 102 + 103 + 104 + 105);
  EXPECT_DOUBLE_EQ(sample[kSampleEpochCount], 100.0);  // min
}

TEST(AgentTree, PropagationHopsEqualsDepth) {
  std::vector<ScriptedAgent> agents(16, ScriptedAgent(1.0));
  std::vector<Agent*> ptrs;
  for (auto& a : agents) ptrs.push_back(&a);
  AgentTree tree(TreeTopology{16, 4}, ptrs);
  EXPECT_EQ(tree.propagation_hops(), 2);
}

TEST(AgentTree, InvalidPolicyRejectedBeforeDistribution) {
  ScriptedAgent agent(1.0);
  AgentTree tree(TreeTopology{1, 4}, {&agent});
  EXPECT_THROW(tree.distribute_policy({}), std::invalid_argument);
  EXPECT_TRUE(agent.applied_policies.empty());
}

}  // namespace
}  // namespace anor::geopm
