#include "geopm/report.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "geopm/controller.hpp"
#include "geopm/signals.hpp"

namespace anor::geopm {
namespace {

JobReport sample_report() {
  JobReport report;
  report.job_name = "bt.D.x#3";
  report.node_count = 2;
  report.runtime_s = 205.5;
  report.compute_runtime_s = 202.4;
  report.package_energy_j = 99827.0;
  report.average_power_w = 485.8;
  report.epoch_count = 200;
  report.average_cap_w = 246.9;
  return report;
}

TEST(JobReport, TextContainsApplicationTotals) {
  const std::string text = sample_report().to_text();
  EXPECT_NE(text.find("Application Totals:"), std::string::npos);
  EXPECT_NE(text.find("bt.D.x#3"), std::string::npos);
  EXPECT_NE(text.find("epoch-count: 200"), std::string::npos);
  EXPECT_NE(text.find("power_governor"), std::string::npos);
}

TEST(JobReport, JsonRoundTrip) {
  const JobReport original = sample_report();
  const JobReport parsed = JobReport::from_json(original.to_json());
  EXPECT_EQ(parsed.job_name, original.job_name);
  EXPECT_EQ(parsed.node_count, original.node_count);
  EXPECT_DOUBLE_EQ(parsed.runtime_s, original.runtime_s);
  EXPECT_DOUBLE_EQ(parsed.compute_runtime_s, original.compute_runtime_s);
  EXPECT_DOUBLE_EQ(parsed.package_energy_j, original.package_energy_j);
  EXPECT_EQ(parsed.epoch_count, original.epoch_count);
  EXPECT_DOUBLE_EQ(parsed.average_cap_w, original.average_cap_w);
}

// Deployment round-trip: the report is written to a file and parsed back
// by downstream tooling, so the serialized *text* must survive hostile
// job names, not just the in-memory Json value.
TEST(JobReport, JsonTextRoundTripSurvivesHostileJobName) {
  JobReport original = sample_report();
  original.job_name = "bt.\"D\".x\\#3\n(second line)\ttabbed";
  const std::string text = original.to_json().dump(2);
  const JobReport parsed = JobReport::from_json(util::Json::parse(text));
  EXPECT_EQ(parsed.job_name, original.job_name);
  EXPECT_EQ(parsed.agent_name, original.agent_name);
  EXPECT_EQ(parsed.node_count, original.node_count);
  EXPECT_DOUBLE_EQ(parsed.runtime_s, original.runtime_s);
  EXPECT_DOUBLE_EQ(parsed.compute_runtime_s, original.compute_runtime_s);
  EXPECT_DOUBLE_EQ(parsed.package_energy_j, original.package_energy_j);
  EXPECT_DOUBLE_EQ(parsed.average_power_w, original.average_power_w);
  EXPECT_EQ(parsed.epoch_count, original.epoch_count);
  EXPECT_DOUBLE_EQ(parsed.average_cap_w, original.average_cap_w);
}

TEST(JobReport, JsonKeyOrderIsStable) {
  const std::string text = sample_report().to_json().dump(0);
  // Keys are emitted in sorted order (std::map), so two dumps of the
  // same report are byte-identical and diffs stay reviewable.
  const std::vector<std::string> keys = {
      "agent",          "average_cap_w", "average_power_w", "compute_runtime_s",
      "epoch_count",    "job",           "nodes",           "package_energy_j",
      "runtime_s"};
  std::size_t pos = 0;
  for (const auto& key : keys) {
    const std::size_t found = text.find('"' + key + '"', pos);
    ASSERT_NE(found, std::string::npos) << "missing key " << key;
    EXPECT_GE(found, pos) << "key " << key << " out of order";
    pos = found;
  }
  EXPECT_EQ(text, sample_report().to_json().dump(0));
}

TEST(JobReport, MissingOptionalFieldsUseDefaults) {
  const auto json = util::Json::parse(
      R"({"job":"min#1","nodes":4,"runtime_s":10.0,"package_energy_j":5000.0,"epoch_count":7})");
  const JobReport report = JobReport::from_json(json);
  EXPECT_EQ(report.job_name, "min#1");
  EXPECT_EQ(report.agent_name, "power_governor");
  EXPECT_EQ(report.node_count, 4);
  EXPECT_DOUBLE_EQ(report.compute_runtime_s, 0.0);
  EXPECT_DOUBLE_EQ(report.average_power_w, 0.0);
  EXPECT_DOUBLE_EQ(report.average_cap_w, 0.0);
  EXPECT_EQ(report.epoch_count, 7);
}

TEST(JobReport, SlowdownVsReference) {
  JobReport report;
  report.runtime_s = 110.0;
  EXPECT_NEAR(report.slowdown_vs(100.0), 0.10, 1e-12);
  EXPECT_DOUBLE_EQ(report.slowdown_vs(0.0), 0.0);
}

// Controller-level: a phased job runs through the controller and its
// report reflects the whole lifecycle.
TEST(JobReport, PhasedJobThroughController) {
  util::VirtualClock clock;
  platform::NodeConfig node_config;
  node_config.package.response_tau_s = 0.0;
  auto node = std::make_unique<platform::Node>(0, node_config);

  workload::JobType is_half = workload::find_job_type("is.D.x");
  is_half.epochs = 10;
  is_half.base_epoch_s = 1.0;
  workload::JobType bt_half = workload::find_job_type("bt.D.x");
  bt_half.epochs = 10;
  bt_half.base_epoch_s = 1.0;

  ControllerConfig config;
  config.kernel.time_noise_sigma = 0.0;
  config.kernel.power_noise_sigma_w = 0.0;
  config.kernel.setup_s = 0.0;
  config.kernel.teardown_s = 0.0;
  config.phases = {{is_half}, {bt_half}};

  JobController controller("phased#1", workload::find_job_type("is.D.x"), {node.get()},
                           clock, util::Rng(1), config);
  while (!controller.complete() && clock.now() < 120.0) {
    clock.advance(0.25);
    node->step(0.25);
    controller.control_step(clock.now());
  }
  ASSERT_TRUE(controller.complete());
  controller.teardown(clock.now());
  const JobReport report = controller.report();
  EXPECT_EQ(report.epoch_count, 20);  // both phases' epochs counted
  EXPECT_NEAR(report.runtime_s, 20.0, 1.0);
  EXPECT_GT(report.package_energy_j, 0.0);
}

TEST(EpochLastTime, SignalTracksKernelEpochs) {
  util::VirtualClock clock;
  platform::NodeConfig node_config;
  node_config.package.response_tau_s = 0.0;
  platform::Node node(0, node_config);
  PlatformIO pio(node, clock);

  workload::JobType type = workload::find_job_type("cg.D.x");
  type.epochs = 10;
  type.base_epoch_s = 1.0;
  workload::KernelConfig kernel_config;
  kernel_config.time_noise_sigma = 0.0;
  kernel_config.setup_s = 0.0;
  kernel_config.teardown_s = 0.0;
  workload::SyntheticKernel kernel(type, util::Rng(1), kernel_config);
  pio.bind_epoch_source(&kernel);

  const int sig = pio.push_signal(kSignalEpochLastTime);
  // Advance 2.6 s in 0.2 s slices: the 2nd epoch completed at t=2.0.
  for (int i = 0; i < 13; ++i) {
    kernel.advance(0.2, 280.0);
    clock.advance(0.2);
  }
  pio.read_batch();
  EXPECT_NEAR(pio.sample(sig), 2.0, 1e-9);
  EXPECT_EQ(kernel.epoch_count(), 2);
}

}  // namespace
}  // namespace anor::geopm
