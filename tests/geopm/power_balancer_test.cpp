#include "geopm/power_balancer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "geopm/controller.hpp"
#include "geopm/signals.hpp"

namespace anor::geopm {
namespace {

std::vector<double> sample_of(double epochs, double nodes = 1.0) {
  std::vector<double> sample(kSampleSize, 0.0);
  sample[kSampleEpochCount] = epochs;
  sample[kSampleNodeCount] = nodes;
  return sample;
}

struct BalancerTest : ::testing::Test {
  BalancerTest() : node(0, instant_node()), pio(node, clock), agent(pio, config()) {}

  static platform::NodeConfig instant_node() {
    platform::NodeConfig node_config;
    node_config.package.response_tau_s = 0.0;
    return node_config;
  }
  static BalancerConfig config() {
    BalancerConfig balancer;
    balancer.gain = 2.0;
    balancer.lag_smoothing = 1.0;  // no smoothing: assertions are exact
    return balancer;
  }

  util::VirtualClock clock;
  platform::Node node;
  PlatformIO pio;
  PowerBalancerAgent agent;
};

TEST_F(BalancerTest, NoObservationsBroadcasts) {
  const auto split = agent.split_policy({200.0}, 3);
  ASSERT_EQ(split.size(), 3u);
  for (const auto& p : split) EXPECT_DOUBLE_EQ(p[kPolicyPowerCap], 200.0);
}

TEST_F(BalancerTest, LaggingChildGetsMorePower) {
  // Own sample + two children: child 0 behind (90 epochs), child 1 ahead
  // (110); mean 100.
  agent.observe_child_samples({sample_of(100), sample_of(90), sample_of(110)});
  const auto split = agent.split_policy({200.0}, 2);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_GT(split[0][kPolicyPowerCap], 200.0);
  EXPECT_LT(split[1][kPolicyPowerCap], 200.0);
}

TEST_F(BalancerTest, SplitConservesSubtreePower) {
  agent.observe_child_samples({sample_of(100), sample_of(80), sample_of(120)});
  const auto split = agent.split_policy({200.0}, 2);
  const double total = split[0][kPolicyPowerCap] + split[1][kPolicyPowerCap];
  EXPECT_NEAR(total, 2 * 200.0, 1.0);
}

TEST_F(BalancerTest, ConservationWeightsBySubtreeSize) {
  // Child 0 has 3 nodes, child 1 has 1 node.
  agent.observe_child_samples({sample_of(100), sample_of(90, 3.0), sample_of(130, 1.0)});
  const auto split = agent.split_policy({200.0}, 2);
  const double total = 3.0 * split[0][kPolicyPowerCap] + 1.0 * split[1][kPolicyPowerCap];
  EXPECT_NEAR(total, 4.0 * 200.0, 2.0);
}

TEST_F(BalancerTest, CapsClampToPlatformRange) {
  // Massive lag: the shift must clamp into [140, 280].
  agent.observe_child_samples({sample_of(100), sample_of(1), sample_of(199)});
  const auto split = agent.split_policy({200.0}, 2);
  for (const auto& p : split) {
    EXPECT_GE(p[kPolicyPowerCap], 140.0);
    EXPECT_LE(p[kPolicyPowerCap], 280.0);
  }
}

TEST_F(BalancerTest, EqualChildrenGetEqualCaps) {
  agent.observe_child_samples({sample_of(100), sample_of(100), sample_of(100)});
  const auto split = agent.split_policy({200.0}, 2);
  EXPECT_DOUBLE_EQ(split[0][kPolicyPowerCap], split[1][kPolicyPowerCap]);
  EXPECT_DOUBLE_EQ(split[0][kPolicyPowerCap], 200.0);
}

TEST_F(BalancerTest, SmoothingDampsTheShift) {
  BalancerConfig smooth = config();
  smooth.lag_smoothing = 0.2;
  platform::Node node2(1, instant_node());
  PlatformIO pio2(node2, clock);
  PowerBalancerAgent damped(pio2, smooth);
  damped.observe_child_samples({sample_of(100), sample_of(80), sample_of(120)});
  agent.observe_child_samples({sample_of(100), sample_of(80), sample_of(120)});
  const double raw_shift =
      agent.split_policy({200.0}, 2)[0][kPolicyPowerCap] - 200.0;
  const double damped_shift =
      damped.split_policy({200.0}, 2)[0][kPolicyPowerCap] - 200.0;
  EXPECT_GT(raw_shift, damped_shift);
  EXPECT_GT(damped_shift, 0.0);
}

// End-to-end: under node-to-node variation, the balancer finishes a
// multi-node job sooner than the governor at the same job power budget.
TEST(BalancerEndToEnd, BeatsGovernorUnderNodeVariation) {
  const auto run = [](AgentKind kind) {
    util::VirtualClock clock;
    platform::NodeConfig node_config;
    node_config.package.response_tau_s = 0.0;
    std::vector<std::unique_ptr<platform::Node>> nodes;
    std::vector<platform::Node*> ptrs;
    const double multipliers[] = {0.9, 1.0, 1.1, 1.25};  // slow node last
    for (int i = 0; i < 4; ++i) {
      platform::NodeConfig c = node_config;
      c.perf_multiplier = multipliers[i];
      nodes.push_back(std::make_unique<platform::Node>(i, c));
      ptrs.push_back(nodes.back().get());
    }
    workload::JobType type = workload::find_job_type("bt.D.x");
    type.epochs = 60;
    ControllerConfig config;
    config.agent = kind;
    config.tree_fanout = 4;  // root + 3 children (tree depth 1)
    config.kernel.time_noise_sigma = 0.0;
    config.kernel.power_noise_sigma_w = 0.0;
    config.kernel.setup_s = 0.0;
    config.kernel.teardown_s = 0.0;
    JobController controller("balance-test", type, ptrs, clock, util::Rng(1), config);
    controller.endpoint().write_policy(0.0, {200.0});  // shared budget
    while (!controller.complete()) {
      clock.advance(0.25);
      for (auto& n : nodes) n->step(0.25);
      controller.control_step(clock.now());
      if (clock.now() > 3600.0) break;
    }
    controller.teardown(clock.now());
    return controller.report().runtime_s;
  };

  const double governor_s = run(AgentKind::kPowerGovernor);
  const double balancer_s = run(AgentKind::kPowerBalancer);
  EXPECT_LT(balancer_s, governor_s * 0.97)
      << "governor=" << governor_s << " balancer=" << balancer_s;
}

}  // namespace
}  // namespace anor::geopm
