#include "geopm/platform_io.hpp"

#include <gtest/gtest.h>

#include "geopm/signals.hpp"
#include "platform/msr.hpp"
#include "util/error.hpp"

namespace anor::geopm {
namespace {

struct PlatformIoTest : ::testing::Test {
  PlatformIoTest() : node(0, instant_node()), pio(node, clock) {}

  static platform::NodeConfig instant_node() {
    platform::NodeConfig config;
    config.package.response_tau_s = 0.0;
    return config;
  }

  util::VirtualClock clock;
  platform::Node node;
  PlatformIO pio;
};

TEST_F(PlatformIoTest, UnknownSignalOrControlThrows) {
  EXPECT_THROW(pio.push_signal("NOT_A_SIGNAL"), util::ConfigError);
  EXPECT_THROW(pio.push_control("NOT_A_CONTROL"), util::ConfigError);
  EXPECT_THROW(pio.read_signal("NOPE"), util::ConfigError);
  EXPECT_THROW(pio.write_control("NOPE", 1.0), util::ConfigError);
}

TEST_F(PlatformIoTest, EnergySignalTracksNodeEnergy) {
  const int sig = pio.push_signal(kSignalCpuEnergy);
  pio.read_batch();
  const double start = pio.sample(sig);
  node.step(10.0);  // idle power for 10 s
  clock.advance(10.0);
  pio.read_batch();
  const double idle_power = 2 * node.config().package.idle_power_w;
  EXPECT_NEAR(pio.sample(sig) - start, idle_power * 10.0, 1.0);
}

TEST_F(PlatformIoTest, PowerSignalDerivedFromEnergyDeltas) {
  const int sig = pio.push_signal(kSignalCpuPower);
  pio.read_batch();  // establish the window
  node.step(5.0);
  clock.advance(5.0);
  pio.read_batch();
  const double idle_power = 2 * node.config().package.idle_power_w;
  EXPECT_NEAR(pio.sample(sig), idle_power, 0.5);
}

TEST_F(PlatformIoTest, EnergyUnwrapSurvivesCounterWrap) {
  const int sig = pio.push_signal(kSignalCpuEnergy);
  // Position both package counters near wrap.
  for (int p = 0; p < node.package_count(); ++p) {
    node.package(p).msr().raw_write(platform::kMsrPkgEnergyStatus, 0xFFFFFFF0ULL);
  }
  pio.read_batch();
  const double before = pio.sample(sig);
  node.step(60.0);  // enough to wrap the 32-bit counters
  clock.advance(60.0);
  pio.read_batch();
  const double delta = pio.sample(sig) - before;
  const double idle_power = 2 * node.config().package.idle_power_w;
  EXPECT_NEAR(delta, idle_power * 60.0, 5.0);
  EXPECT_GT(delta, 0.0);  // the naive (wrapped) reading would be negative
}

TEST_F(PlatformIoTest, EpochCountZeroWithoutKernel) {
  const int sig = pio.push_signal(kSignalEpochCount);
  pio.read_batch();
  EXPECT_DOUBLE_EQ(pio.sample(sig), 0.0);
}

TEST_F(PlatformIoTest, EpochCountFollowsKernel) {
  workload::JobType type = workload::find_job_type("cg.D.x");
  type.base_epoch_s = 1.0;
  type.epochs = 50;
  workload::KernelConfig kc;
  kc.time_noise_sigma = 0.0;
  kc.setup_s = 0.0;
  kc.teardown_s = 0.0;
  workload::SyntheticKernel kernel(type, util::Rng(1), kc);
  pio.bind_epoch_source(&kernel);

  const int sig = pio.push_signal(kSignalEpochCount);
  kernel.advance(3.5, 280.0);
  pio.read_batch();
  EXPECT_DOUBLE_EQ(pio.sample(sig), 3.0);
}

TEST_F(PlatformIoTest, ControlWritesThroughToNodeCap) {
  const int ctl = pio.push_control(kControlCpuPowerLimit);
  pio.adjust(ctl, 200.0);
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 280.0);  // not yet written
  pio.write_batch();
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 200.0);
}

TEST_F(PlatformIoTest, WriteBatchOnlyFlushesDirtyControls) {
  const int ctl = pio.push_control(kControlCpuPowerLimit);
  pio.adjust(ctl, 200.0);
  pio.write_batch();
  node.set_power_cap(260.0);  // out-of-band change
  pio.write_batch();          // no adjust since last flush: no overwrite
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 260.0);
}

TEST_F(PlatformIoTest, TimeSignalReadsClock) {
  const int sig = pio.push_signal(kSignalTime);
  clock.advance(12.5);
  pio.read_batch();
  EXPECT_DOUBLE_EQ(pio.sample(sig), 12.5);
}

TEST_F(PlatformIoTest, OneShotAccessors) {
  EXPECT_NO_THROW(pio.read_signal(kSignalCpuEnergy));
  pio.write_control(kControlCpuPowerLimit, 180.0);
  EXPECT_DOUBLE_EQ(node.effective_cap_w(), 180.0);
}

}  // namespace
}  // namespace anor::geopm
