#include "geopm/endpoint.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace anor::geopm {
namespace {

TEST(Endpoint, PolicyLatestWins) {
  Endpoint endpoint;
  EXPECT_FALSE(endpoint.read_policy().has_value());
  endpoint.write_policy(1.0, {200.0});
  endpoint.write_policy(2.0, {180.0});
  endpoint.write_policy(3.0, {160.0});
  const auto policy = endpoint.read_policy();
  ASSERT_TRUE(policy.has_value());
  EXPECT_DOUBLE_EQ(policy->timestamp_s, 3.0);
  EXPECT_DOUBLE_EQ(policy->policy[0], 160.0);
  // Superseded policies are consumed.
  EXPECT_FALSE(endpoint.read_policy().has_value());
}

TEST(Endpoint, SamplesDrainInOrder) {
  Endpoint endpoint;
  endpoint.write_sample(1.0, {100.0});
  endpoint.write_sample(2.0, {110.0});
  const auto samples = endpoint.read_samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].timestamp_s, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].timestamp_s, 2.0);
  EXPECT_TRUE(endpoint.read_samples().empty());
}

TEST(Endpoint, LatestSampleRemembered) {
  Endpoint endpoint;
  EXPECT_FALSE(endpoint.latest_sample().has_value());
  endpoint.write_sample(1.0, {100.0});
  endpoint.write_sample(5.0, {130.0});
  endpoint.read_samples();
  const auto latest = endpoint.latest_sample();
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->timestamp_s, 5.0);
  // Draining again (empty) must not clear the latest.
  endpoint.read_samples();
  EXPECT_TRUE(endpoint.latest_sample().has_value());
}

TEST(Endpoint, FullRingRejectsWrites) {
  Endpoint endpoint(2);
  EXPECT_TRUE(endpoint.write_policy(1.0, {1.0}));
  EXPECT_TRUE(endpoint.write_policy(2.0, {2.0}));
  EXPECT_FALSE(endpoint.write_policy(3.0, {3.0}));
  endpoint.read_policy();
  EXPECT_TRUE(endpoint.write_policy(4.0, {4.0}));
}

TEST(Endpoint, CrossThreadHandoff) {
  Endpoint endpoint(128);
  constexpr int kCount = 5000;
  std::thread agent([&endpoint] {
    for (int i = 0; i < kCount;) {
      if (endpoint.write_sample(static_cast<double>(i), {static_cast<double>(i)})) ++i;
    }
  });
  int received = 0;
  double last = -1.0;
  while (received < kCount) {
    for (const auto& s : endpoint.read_samples()) {
      EXPECT_GT(s.timestamp_s, last);
      last = s.timestamp_s;
      ++received;
    }
  }
  agent.join();
  EXPECT_EQ(received, kCount);
}

}  // namespace
}  // namespace anor::geopm
