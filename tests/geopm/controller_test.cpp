#include "geopm/controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "geopm/signals.hpp"

namespace anor::geopm {
namespace {

struct ControllerTest : ::testing::Test {
  ControllerTest() {
    platform::NodeConfig config;
    config.package.response_tau_s = 0.0;
    for (int i = 0; i < 4; ++i) nodes.push_back(std::make_unique<platform::Node>(i, config));

    type = workload::find_job_type("bt.D.x");
    type.epochs = 20;
    type.base_epoch_s = 1.0;

    controller_config.control_period_s = 0.5;
    controller_config.kernel.time_noise_sigma = 0.0;
    controller_config.kernel.power_noise_sigma_w = 0.0;
    controller_config.kernel.setup_s = 0.0;
    controller_config.kernel.teardown_s = 0.0;
  }

  std::vector<platform::Node*> node_ptrs(int count) {
    std::vector<platform::Node*> ptrs;
    for (int i = 0; i < count; ++i) ptrs.push_back(nodes[static_cast<std::size_t>(i)].get());
    return ptrs;
  }

  /// Advance hardware and run the job's control loop for `seconds`.
  void run_for(JobController& controller, double seconds, double dt = 0.25) {
    for (double t = 0.0; t < seconds; t += dt) {
      clock.advance(dt);
      for (auto& n : nodes) n->step(dt);
      controller.control_step(clock.now());
    }
  }

  util::VirtualClock clock;
  std::vector<std::unique_ptr<platform::Node>> nodes;
  workload::JobType type;
  ControllerConfig controller_config;
};

TEST_F(ControllerTest, ConstructionValidation) {
  EXPECT_THROW(JobController("j", type, {}, clock, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(JobController("j", type, {nullptr}, clock, util::Rng(1)),
               std::invalid_argument);
  JobController first("j1", type, node_ptrs(2), clock, util::Rng(1), controller_config);
  // Nodes are now busy; a second controller must refuse them.
  EXPECT_THROW(JobController("j2", type, node_ptrs(2), clock, util::Rng(1)),
               std::invalid_argument);
}

TEST_F(ControllerTest, StartsUncapped) {
  JobController controller("j", type, node_ptrs(2), clock, util::Rng(1), controller_config);
  EXPECT_DOUBLE_EQ(controller.current_cap_w(), 280.0);
  for (int i = 0; i < 2; ++i) EXPECT_DOUBLE_EQ(nodes[i]->effective_cap_w(), 280.0);
}

TEST_F(ControllerTest, EndpointPolicyPropagatesToAllNodes) {
  JobController controller("j", type, node_ptrs(3), clock, util::Rng(1), controller_config);
  controller.endpoint().write_policy(clock.now(), {190.0});
  run_for(controller, 1.0);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(nodes[i]->effective_cap_w(), 190.0);
  EXPECT_DOUBLE_EQ(controller.current_cap_w(), 190.0);
}

TEST_F(ControllerTest, SamplesFlowToEndpoint) {
  JobController controller("j", type, node_ptrs(2), clock, util::Rng(1), controller_config);
  run_for(controller, 3.0);
  const auto samples = controller.endpoint().read_samples();
  ASSERT_FALSE(samples.empty());
  const auto& last = samples.back().sample;
  ASSERT_EQ(last.size(), static_cast<std::size_t>(kSampleSize));
  // Two busy nodes: power is hundreds of watts, epochs are advancing.
  EXPECT_GT(last[kSamplePower], 200.0);
  EXPECT_GT(last[kSampleEpochCount], 0.0);
}

TEST_F(ControllerTest, GlobalEpochIsMinAcrossNodes) {
  // Slow down node 1 so its local epochs lag.
  nodes[1]->set_perf_multiplier(2.0);
  JobController controller("j", type, node_ptrs(2), clock, util::Rng(1), controller_config);
  run_for(controller, 6.0);
  // Node 0 should have ~6 local epochs, node 1 ~3; global epoch = min.
  EXPECT_LE(controller.epoch_count(), 3);
  EXPECT_GT(controller.epoch_count(), 0);
}

TEST_F(ControllerTest, CompletesAndTearsDown) {
  JobController controller("j", type, node_ptrs(2), clock, util::Rng(1), controller_config);
  run_for(controller, 25.0);
  EXPECT_TRUE(controller.complete());
  controller.teardown(clock.now());
  for (int i = 0; i < 2; ++i) EXPECT_FALSE(nodes[i]->busy());
  const JobReport report = controller.report();
  EXPECT_EQ(report.epoch_count, 20);
  EXPECT_NEAR(report.runtime_s, 25.0, 1.0);
  EXPECT_GT(report.package_energy_j, 0.0);
  EXPECT_GT(report.average_power_w, 0.0);
}

TEST_F(ControllerTest, ReportAverageCapIsTimeWeighted) {
  JobController controller("j", type, node_ptrs(1), clock, util::Rng(1), controller_config);
  run_for(controller, 5.0);  // 5 s at 280
  controller.endpoint().write_policy(clock.now(), {180.0});
  run_for(controller, 5.0);  // ~5 s at 180
  controller.teardown(clock.now());
  const JobReport report = controller.report();
  EXPECT_GT(report.average_cap_w, 180.0);
  EXPECT_LT(report.average_cap_w, 280.0);
  EXPECT_NEAR(report.average_cap_w, 230.0, 15.0);
}

TEST_F(ControllerTest, ControlStepHonorsPeriod) {
  JobController controller("j", type, node_ptrs(1), clock, util::Rng(1), controller_config);
  // Two immediate calls at the same instant: only one sample emitted.
  clock.advance(0.1);
  controller.control_step(clock.now());
  controller.control_step(clock.now());
  EXPECT_EQ(controller.endpoint().read_samples().size(), 1u);
}

TEST_F(ControllerTest, TraceRecordsControlLoopRows) {
  ControllerConfig config = controller_config;
  config.trace_enabled = true;
  JobController controller("j", type, node_ptrs(2), clock, util::Rng(1), config);
  controller.endpoint().write_policy(clock.now(), {200.0});
  run_for(controller, 5.0);
  const auto& trace = controller.trace();
  ASSERT_GE(trace.size(), 8u);  // 0.5 s period over 5 s
  double prev_t = -1.0;
  long prev_epochs = -1;
  double prev_energy = -1.0;
  for (const TraceRow& row : trace) {
    EXPECT_GT(row.t_s, prev_t);
    EXPECT_GE(row.epoch_count, prev_epochs);
    EXPECT_GE(row.energy_j, prev_energy);
    prev_t = row.t_s;
    prev_epochs = row.epoch_count;
    prev_energy = row.energy_j;
  }
  // After the policy applied, the cap column reflects it.
  EXPECT_DOUBLE_EQ(trace.back().cap_w, 200.0);
  // Two busy nodes: power in the hundreds.
  EXPECT_GT(trace.back().power_w, 200.0);

  std::ostringstream csv;
  controller.write_trace_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("t_s,power_w,energy_j,cap_w,epoch_count"), std::string::npos);
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 8);
}

TEST_F(ControllerTest, TraceDisabledByDefault) {
  JobController controller("j", type, node_ptrs(1), clock, util::Rng(1), controller_config);
  run_for(controller, 2.0);
  EXPECT_TRUE(controller.trace().empty());
}

TEST_F(ControllerTest, CappedJobRunsSlower) {
  JobController capped("j1", type, node_ptrs(1), clock, util::Rng(1), controller_config);
  capped.endpoint().write_policy(clock.now(), {140.0});
  run_for(capped, 20.0);
  // At the floor cap BT runs 1.7x slower: 20 epochs need 34 s.
  EXPECT_FALSE(capped.complete());
  run_for(capped, 15.0);
  EXPECT_TRUE(capped.complete());
}

}  // namespace
}  // namespace anor::geopm
