#include "model/default_models.hpp"

#include <algorithm>
#include <vector>

#include "workload/job_type.hpp"

namespace anor::model {

std::string to_string(DefaultModelPolicy policy) {
  switch (policy) {
    case DefaultModelPolicy::kLeastSensitive: return "least-sensitive";
    case DefaultModelPolicy::kMostSensitive: return "most-sensitive";
    case DefaultModelPolicy::kMedian: return "median";
  }
  return "?";
}

PowerPerfModel default_model(DefaultModelPolicy policy) {
  const auto& types = workload::nas_job_types();
  std::vector<const workload::JobType*> sorted;
  sorted.reserve(types.size());
  for (const auto& t : types) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const workload::JobType* x, const workload::JobType* y) {
              return x->max_slowdown() < y->max_slowdown();
            });
  const workload::JobType* chosen = nullptr;
  switch (policy) {
    case DefaultModelPolicy::kLeastSensitive: chosen = sorted.front(); break;
    case DefaultModelPolicy::kMostSensitive: chosen = sorted.back(); break;
    case DefaultModelPolicy::kMedian: chosen = sorted[sorted.size() / 2]; break;
  }
  return PowerPerfModel::from_job_type(*chosen);
}

PowerPerfModel model_for_class(const std::string& classified_as) {
  return PowerPerfModel::from_job_type(workload::find_job_type(classified_as));
}

}  // namespace anor::model
