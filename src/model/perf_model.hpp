// The job power-performance model the cluster tier budgets with.
//
// Paper Sec. 4.2: "We fit T = A·P² + B·P + C for T seconds per epoch and
// power cap P watts below TDP."  A model also carries the job's achievable
// power range [p_min, p_max] so the budgeter knows the feasible cap span.
// Fitting normalizes P by TDP to keep the normal equations well
// conditioned; coefficients are stored in watt units.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "workload/job_type.hpp"

namespace anor::model {

class PowerPerfModel {
 public:
  PowerPerfModel() = default;

  /// Coefficients for T(P) = a·P² + b·P + c (P in watts at node level;
  /// T in seconds per epoch).
  PowerPerfModel(double a, double b, double c, double p_min_w, double p_max_w);

  /// Ground-truth model of a job type ("precharacterized"): samples the
  /// type's true curve and fits it exactly.
  static PowerPerfModel from_job_type(const workload::JobType& type);

  /// Least-squares fit from cap/seconds-per-epoch observations.
  /// Requires at least 3 points with at least 3 distinct caps; throws
  /// NumericalError otherwise.  Computes and stores the training R².
  static PowerPerfModel fit(std::span<const double> cap_w,
                            std::span<const double> sec_per_epoch, double p_min_w,
                            double p_max_w);

  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }
  double p_min_w() const { return p_min_w_; }
  double p_max_w() const { return p_max_w_; }
  double r2() const { return r2_; }
  bool valid() const { return p_max_w_ > p_min_w_; }

  /// Seconds per epoch at a node cap (cap clamps into [p_min, p_max];
  /// the model is also clamped below by its value at p_max so a noisy fit
  /// can never predict speedup beyond the uncapped rate).
  double time_at(double cap_w) const;

  /// Relative slowdown at a cap: time_at(cap)/time_at(p_max) - 1.
  double slowdown_at(double cap_w) const;

  /// Inverse: the smallest cap whose predicted time is <= t (the paper's
  /// P_j function).  Monotone bisection on [p_min, p_max]; clamps outside
  /// the achievable range.
  double cap_for_time(double t_sec_per_epoch) const;

  /// Cap achieving a relative slowdown target (paper's
  /// P_j(s·T_j(p_max))).
  double cap_for_slowdown(double slowdown) const;

  /// Maximum slowdown this model predicts (at p_min).
  double max_slowdown() const { return slowdown_at(p_min_w_); }

  std::string describe() const;

 private:
  double a_ = 0.0;
  double b_ = 0.0;
  double c_ = 1.0;
  double p_min_w_ = workload::kNodeMinCapW;
  double p_max_w_ = workload::kNodeMaxCapW;
  double r2_ = 1.0;
};

}  // namespace anor::model
