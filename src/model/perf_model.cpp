#include "model/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/poly_fit.hpp"

namespace anor::model {

PowerPerfModel::PowerPerfModel(double a, double b, double c, double p_min_w, double p_max_w)
    : a_(a), b_(b), c_(c), p_min_w_(p_min_w), p_max_w_(p_max_w) {
  if (!(p_max_w > p_min_w)) {
    throw util::ConfigError("PowerPerfModel: p_max must exceed p_min");
  }
}

PowerPerfModel PowerPerfModel::from_job_type(const workload::JobType& type) {
  // Sample the ground-truth curve densely over the job's achievable power
  // range and fit; the truth is quadratic in P there, so the fit is exact
  // up to rounding.  (Above max_power_w the true curve is flat — a cap
  // beyond the job's draw does nothing — so the fit must not span that
  // kink.)
  const double lo = workload::kNodeMinCapW;
  const double hi = std::min(workload::kNodeMaxCapW, type.max_power_w);
  std::vector<double> caps;
  std::vector<double> times;
  const int samples = 16;
  for (int i = 0; i < samples; ++i) {
    const double cap = lo + (hi - lo) * i / (samples - 1);
    caps.push_back(cap);
    times.push_back(type.epoch_time_s(cap));
  }
  return fit(caps, times, lo, hi);
}

PowerPerfModel PowerPerfModel::fit(std::span<const double> cap_w,
                                   std::span<const double> sec_per_epoch, double p_min_w,
                                   double p_max_w) {
  if (cap_w.size() != sec_per_epoch.size()) {
    throw util::NumericalError("PowerPerfModel::fit: size mismatch");
  }
  std::set<long> distinct;
  for (double cap : cap_w) distinct.insert(std::lround(cap * 16.0));
  if (cap_w.size() < 3 || distinct.size() < 3) {
    throw util::NumericalError("PowerPerfModel::fit: need >=3 observations at >=3 caps");
  }
  // Normalize power by TDP for conditioning; de-normalize coefficients.
  const double scale = workload::kNodeTdpW;
  std::vector<double> x(cap_w.size());
  for (std::size_t i = 0; i < cap_w.size(); ++i) x[i] = cap_w[i] / scale;
  const std::vector<double> coeffs =
      util::polyfit(x, std::vector<double>(sec_per_epoch.begin(), sec_per_epoch.end()), 2);
  PowerPerfModel model(coeffs[2] / (scale * scale), coeffs[1] / scale, coeffs[0], p_min_w,
                       p_max_w);
  model.r2_ = util::polyfit_r2(coeffs, x,
                               std::vector<double>(sec_per_epoch.begin(), sec_per_epoch.end()));
  return model;
}

double PowerPerfModel::time_at(double cap_w) const {
  const double p = std::clamp(cap_w, p_min_w_, p_max_w_);
  const double t = (a_ * p + b_) * p + c_;
  // Never predict faster than the uncapped rate.
  const double t_max_cap = (a_ * p_max_w_ + b_) * p_max_w_ + c_;
  return std::max(t, t_max_cap > 0.0 ? t_max_cap : 1e-9);
}

double PowerPerfModel::slowdown_at(double cap_w) const {
  const double base = time_at(p_max_w_);
  return base > 0.0 ? time_at(cap_w) / base - 1.0 : 0.0;
}

double PowerPerfModel::cap_for_time(double t_sec_per_epoch) const {
  if (t_sec_per_epoch <= time_at(p_max_w_)) return p_max_w_;
  if (t_sec_per_epoch >= time_at(p_min_w_)) return p_min_w_;
  // T is monotone non-increasing in P on the valid range; bisect.  The
  // floor term of time_at is constant, and every midpoint lies inside
  // [p_min, p_max] (so time_at's clamp is the identity); hoisting both
  // out of the loop leaves each iterate's value bit-identical.
  const double t_raw_max = (a_ * p_max_w_ + b_) * p_max_w_ + c_;
  const double t_floor = t_raw_max > 0.0 ? t_raw_max : 1e-9;
  const auto time_inside = [&](double p) {
    return std::max((a_ * p + b_) * p + c_, t_floor);
  };
  // The loop below is the plain bisection
  //     mid = 0.5*(lo+hi); T(mid) > t ? lo = mid : hi = mid;
  // restructured so each iteration also evaluates T at *both* possible
  // next midpoints before the current comparison resolves.  Every value is
  // produced by the same floating-point expression the plain loop would
  // use, so the iterates — and the returned hi — are bit-identical; the
  // speculation only takes the (serial, latency-bound) T evaluation off
  // the compare/select critical path.  ~50 data-dependent iterations make
  // this the hot loop of the budgeter's nested solve.
  double lo = p_min_w_;
  double hi = p_max_w_;
  double mid = 0.5 * (lo + hi);
  double t_mid = time_inside(mid);
  double mid_below = 0.5 * (lo + mid);  // next mid if the answer is below mid
  double mid_above = 0.5 * (mid + hi);  // next mid if the answer is above mid
  double t_below = time_inside(mid_below);
  double t_above = time_inside(mid_above);
  for (int iter = 0; iter < 64; ++iter) {
    // At one-ULP width the midpoint collides with an endpoint, and the
    // invariants (time(lo) > t, time(hi) <= t) make the update a no-op:
    // every remaining iteration would leave lo and hi unchanged.
    if (mid == lo || mid == hi) break;
    const bool too_slow = t_mid > t_sec_per_epoch;  // need more power
    lo = too_slow ? mid : lo;
    hi = too_slow ? hi : mid;
    mid = too_slow ? mid_above : mid_below;
    t_mid = too_slow ? t_above : t_below;
    mid_below = 0.5 * (lo + mid);
    mid_above = 0.5 * (mid + hi);
    t_below = time_inside(mid_below);
    t_above = time_inside(mid_above);
  }
  return hi;
}

double PowerPerfModel::cap_for_slowdown(double slowdown) const {
  return cap_for_time(time_at(p_max_w_) * (1.0 + slowdown));
}

std::string PowerPerfModel::describe() const {
  std::ostringstream out;
  out << "T(P) = " << a_ << "*P^2 + " << b_ << "*P + " << c_ << " on [" << p_min_w_ << ", "
      << p_max_w_ << "] W, R2=" << r2_;
  return out.str();
}

}  // namespace anor::model
