// Default models for jobs that have not reported epochs yet.
//
// Paper Sec. 4.2: "Jobs that report no epochs or that have yet to build a
// model use a default model."  Sec. 6.1.2 evaluates two natural choices:
// assume the unknown job follows the least-sensitive known curve (IS) or
// the most-sensitive one (EP).
#pragma once

#include <string>

#include "model/perf_model.hpp"

namespace anor::model {

enum class DefaultModelPolicy {
  kLeastSensitive,  // assume the IS-like (flattest) known curve
  kMostSensitive,   // assume the EP-like (steepest) known curve
  kMedian,          // middle-of-the-road known curve
};

std::string to_string(DefaultModelPolicy policy);

/// The default model under a policy, derived from the registered job
/// types' ground-truth curves.
PowerPerfModel default_model(DefaultModelPolicy policy);

/// The model for a (possibly mis-)classified job: the ground-truth curve
/// of `classified_as`.  Misclassification experiments feed a wrong name
/// here on purpose.
PowerPerfModel model_for_class(const std::string& classified_as);

}  // namespace anor::model
