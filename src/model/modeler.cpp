#include "model/modeler.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace anor::model {

namespace {

telemetry::Counter& refit_rejected_counter(const char* reason) {
  return telemetry::MetricsRegistry::global().counter("job.modeler.refit_rejected",
                                                      {{"reason", reason}});
}

}  // namespace

std::vector<CapAggregate> aggregate_by_cap(const std::vector<EpochObservation>& observations,
                                           double bucket_w) {
  struct Bucket {
    double span_s = 0.0;
    double cap_weighted = 0.0;
    long epochs = 0;
  };
  std::map<long, Bucket> buckets;
  for (const EpochObservation& obs : observations) {
    if (obs.epochs <= 0) continue;
    Bucket& bucket = buckets[std::lround(obs.avg_cap_w / bucket_w)];
    bucket.span_s += obs.t_end_s - obs.t_start_s;
    bucket.cap_weighted += obs.avg_cap_w * static_cast<double>(obs.epochs);
    bucket.epochs += obs.epochs;
  }
  std::vector<CapAggregate> aggregates;
  aggregates.reserve(buckets.size());
  for (const auto& [key, bucket] : buckets) {
    CapAggregate aggregate;
    aggregate.cap_w = bucket.cap_weighted / static_cast<double>(bucket.epochs);
    aggregate.sec_per_epoch = bucket.span_s / static_cast<double>(bucket.epochs);
    aggregate.epochs = bucket.epochs;
    aggregates.push_back(aggregate);
  }
  return aggregates;
}

OnlineModeler::OnlineModeler(PowerPerfModel initial_model, ModelerConfig config)
    : model_(std::move(initial_model)), config_(config) {}

void OnlineModeler::record_cap(double t_s, double cap_w) {
  if (!cap_change_times_.empty() && t_s < cap_change_times_.back()) {
    // Late-arriving cap records are clamped forward; the tiers are
    // asynchronous and minor reordering is expected.
    t_s = cap_change_times_.back();
  }
  if (!cap_values_.empty() && cap_values_.back() == cap_w) return;
  cap_change_times_.push_back(t_s);
  cap_values_.push_back(cap_w);
}

double OnlineModeler::average_cap_over(double t0_s, double t1_s) const {
  if (cap_change_times_.empty() || t1_s <= t0_s) {
    return cap_values_.empty() ? workload::kNodeMaxCapW : cap_values_.back();
  }
  double integral = 0.0;
  double covered = 0.0;
  for (std::size_t i = 0; i < cap_change_times_.size(); ++i) {
    const double seg_start = std::max(cap_change_times_[i], t0_s);
    const double seg_end =
        std::min(i + 1 < cap_change_times_.size() ? cap_change_times_[i + 1] : t1_s, t1_s);
    if (seg_end <= seg_start) continue;
    integral += cap_values_[i] * (seg_end - seg_start);
    covered += seg_end - seg_start;
  }
  if (covered <= 0.0) return cap_values_.back();
  // Time before the first cap record is treated as running at the first
  // recorded cap (jobs start uncapped and the start is recorded).
  return integral / covered;
}

std::optional<EpochObservation> OnlineModeler::add_epoch_sample(double t_s, long epoch_count) {
  if (last_epoch_count_ < 0) {
    last_epoch_count_ = epoch_count;
    last_epoch_time_s_ = t_s;
    return std::nullopt;
  }
  if (epoch_count <= last_epoch_count_) return std::nullopt;

  const long delta_epochs = epoch_count - last_epoch_count_;
  const double span = t_s - last_epoch_time_s_;
  if (span < config_.min_span_s) {
    // Too fine-grained to attribute; wait for more epochs to accumulate.
    return std::nullopt;
  }
  EpochObservation obs;
  obs.t_start_s = last_epoch_time_s_;
  obs.t_end_s = t_s;
  obs.epochs = delta_epochs;
  obs.sec_per_epoch = span / static_cast<double>(delta_epochs);
  obs.avg_cap_w = average_cap_over(last_epoch_time_s_, t_s);
  const auto [cap_lo, cap_hi] = cap_range_over(last_epoch_time_s_, t_s);
  obs.cap_min_w = cap_lo;
  obs.cap_max_w = cap_hi;
  obs.mixed_cap = cap_hi - cap_lo > config_.max_cap_spread_w;

  last_epoch_count_ = epoch_count;
  last_epoch_time_s_ = t_s;

  if (observations_seen_ < config_.skip_observations) {
    ++observations_seen_;
    return std::nullopt;
  }
  ++observations_seen_;
  observations_.push_back(obs);
  if (observations_.size() > config_.max_observations) {
    observations_.erase(observations_.begin(),
                        observations_.begin() +
                            static_cast<long>(observations_.size() - config_.max_observations));
  }
  epochs_since_train_ += delta_epochs;
  maybe_detect_phase_change();
  maybe_retrain();
  return obs;
}

void OnlineModeler::maybe_detect_phase_change() {
  if (config_.phase_shift_threshold <= 0.0) return;
  if (observations_.size() < config_.phase_window * 3) return;

  // Split clean observations into "recent" (the newest phase_window) and
  // "older"; compare pooled rates per cap bucket that appears in both.
  std::vector<EpochObservation> clean = clean_observations();
  if (clean.size() < config_.phase_window * 3) return;
  std::vector<EpochObservation> recent(clean.end() - static_cast<long>(config_.phase_window),
                                       clean.end());
  clean.resize(clean.size() - config_.phase_window);
  const std::vector<CapAggregate> older = aggregate_by_cap(clean);
  const std::vector<CapAggregate> newer = aggregate_by_cap(recent);

  for (const CapAggregate& n : newer) {
    for (const CapAggregate& o : older) {
      if (std::abs(n.cap_w - o.cap_w) > 5.0) continue;
      if (o.sec_per_epoch <= 0.0) continue;
      const double shift = std::abs(n.sec_per_epoch - o.sec_per_epoch) / o.sec_per_epoch;
      if (shift > config_.phase_shift_threshold) {
        // The job changed behavior: everything before the recent window
        // describes a previous phase.  Keep only the recent evidence.
        observations_.assign(recent.begin(), recent.end());
        fitted_ = false;  // any previous refit described the old phase
        epochs_since_train_ = 0;
        ++phase_changes_;
        static auto& phase_changes =
            telemetry::MetricsRegistry::global().counter("job.modeler.phase_changes");
        phase_changes.inc();
        return;
      }
    }
  }
}

void OnlineModeler::maybe_retrain() {
  if (epochs_since_train_ < config_.retrain_epochs) return;
  if (retrain()) epochs_since_train_ = 0;
}

std::pair<double, double> OnlineModeler::cap_range_over(double t0_s, double t1_s) const {
  if (cap_values_.empty()) return {workload::kNodeMaxCapW, workload::kNodeMaxCapW};
  double lo = 0.0;
  double hi = 0.0;
  bool found = false;
  for (std::size_t i = 0; i < cap_change_times_.size(); ++i) {
    // Segment i covers [change_time[i], change_time[i+1]).
    const double seg_start = cap_change_times_[i];
    const double seg_end =
        i + 1 < cap_change_times_.size() ? cap_change_times_[i + 1] : t1_s + 1.0;
    const bool overlaps = seg_start < t1_s && seg_end > t0_s;
    // The segment active at t0 also counts even if it began earlier.
    const bool active_at_start = seg_start <= t0_s && seg_end > t0_s;
    if (!overlaps && !active_at_start) continue;
    if (!found) {
      lo = hi = cap_values_[i];
      found = true;
    } else {
      lo = std::min(lo, cap_values_[i]);
      hi = std::max(hi, cap_values_[i]);
    }
  }
  if (!found) {
    const double last = cap_values_.back();
    return {last, last};
  }
  return {lo, hi};
}

std::vector<EpochObservation> OnlineModeler::clean_observations() const {
  std::vector<EpochObservation> clean;
  clean.reserve(observations_.size());
  for (const EpochObservation& obs : observations_) {
    if (!obs.mixed_cap) clean.push_back(obs);
  }
  return clean;
}

bool OnlineModeler::retrain() {
  static auto& attempts =
      telemetry::MetricsRegistry::global().counter("job.modeler.refit_attempts");
  static auto& accepted =
      telemetry::MetricsRegistry::global().counter("job.modeler.refit_accepted");
  static auto& fit_r2 = telemetry::MetricsRegistry::global().gauge("job.modeler.fit_r2");
  static auto& fit_error =
      telemetry::MetricsRegistry::global().gauge("job.modeler.refit_error");
  attempts.inc();
  const std::vector<EpochObservation> clean = clean_observations();
  if (clean.size() < config_.min_fit_observations) {
    refit_rejected_counter("too_few_observations").inc();
    return false;
  }
  // Fit against cap-pooled rates (quantization-free), weighting each cap
  // level by the epochs observed there.
  const std::vector<CapAggregate> aggregates = aggregate_by_cap(clean);
  std::vector<double> caps;
  std::vector<double> times;
  caps.reserve(aggregates.size());
  times.reserve(aggregates.size());
  for (const CapAggregate& aggregate : aggregates) {
    caps.push_back(aggregate.cap_w);
    times.push_back(aggregate.sec_per_epoch);
  }
  try {
    PowerPerfModel refit =
        PowerPerfModel::fit(caps, times, config_.fit_p_min_w, config_.fit_p_max_w);
    // Reject non-physical fits (time increasing with power) — noise at
    // nearly identical caps can produce them.
    if (refit.time_at(refit.p_min_w()) + 1e-12 < refit.time_at(refit.p_max_w())) {
      refit_rejected_counter("non_physical").inc();
      return false;
    }
    // Reject poorly conditioned fits: observations clustered at one or
    // two caps produce wild quadratics with near-zero R².
    if (refit.r2() < config_.min_r2) {
      refit_rejected_counter("low_r2").inc();
      return false;
    }
    // Reject fits that do not actually explain the raw observations —
    // per-cap pooling can average mutually contradictory spans into
    // innocuous-looking points.
    double raw_error = 0.0;
    std::size_t counted = 0;
    for (const EpochObservation& obs : clean) {
      if (obs.sec_per_epoch <= 0.0) continue;
      raw_error += std::abs(refit.time_at(obs.avg_cap_w) - obs.sec_per_epoch) /
                   obs.sec_per_epoch;
      ++counted;
    }
    const double mean_error =
        counted > 0 ? raw_error / static_cast<double>(counted) : 0.0;
    if (counted == 0 || mean_error > config_.max_refit_error) {
      refit_rejected_counter("high_refit_error").inc();
      return false;
    }
    model_ = refit;
    fitted_ = true;
    accepted.inc();
    fit_r2.set(refit.r2());
    fit_error.set(mean_error);
    return true;
  } catch (const util::NumericalError&) {
    // Not enough cap diversity yet (e.g. the job has run under a single
    // cap so far); keep serving the current model.
    refit_rejected_counter("numerical").inc();
    return false;
  }
}

}  // namespace anor::model
