// Online job-tier power modeler (paper Sec. 4.2, Fig. 2).
//
// One modeler runs per job, next to the GEOPM endpoint.  It receives epoch
// counts from the agent, records the time since the last epoch update and
// the average power cap applied over that span, and refits
// T = A·P² + B·P + C whenever at least `retrain_epochs` new epochs have
// accumulated.  Until a fit exists it serves a default model.  All samples
// are timestamped because the tiers run their control loops at different
// rates (the asynchrony challenge of Sec. 7.2).
#pragma once

#include <optional>
#include <vector>

#include "model/perf_model.hpp"

namespace anor::model {

struct ModelerConfig {
  /// Minimum new epochs between refits (the paper retrains every >= 10).
  long retrain_epochs = 10;
  /// Epoch deltas accumulate until the span reaches this length before an
  /// observation is cut.  Epoch completions are only visible at the
  /// agent's sampling grid, so short spans carry quantization error that
  /// systematically favors faster-looking models; 4 s spans amortize a
  /// 0.5 s sampling period to a few percent (the "many samples" lesson of
  /// paper Sec. 7.2).
  double min_span_s = 4.0;
  /// Keep at most this many observations (sliding window).
  std::size_t max_observations = 512;
  /// Cap range refitted models are valid over.  This is the *platform's*
  /// cap range, not the initial model's power range — a misclassified job
  /// may turn out to reach power levels its assumed class never could.
  double fit_p_min_w = workload::kNodeMinCapW;
  double fit_p_max_w = workload::kNodeMaxCapW;
  /// Reject refits whose training R² falls below this (the paper's
  /// precharacterized fits score 0.84-0.99; an online fit worse than this
  /// is noise and must not replace the served model).
  double min_r2 = 0.70;
  /// Discard this many leading observations: the first epoch spans are
  /// polluted by job setup (low-power, epoch-free time).
  std::size_t skip_observations = 1;
  /// Refuse to fit on fewer clean observations than this — a quadratic
  /// through 3-4 points explains anything.
  std::size_t min_fit_observations = 6;
  /// A span whose cap wandered by more than this is marked mixed.
  double max_cap_spread_w = 6.0;
  /// Reject refits whose mean relative error against the raw (unpooled)
  /// clean observations exceeds this — pooling can hide within-bucket
  /// garbage that R² on the pooled points cannot see.
  double max_refit_error = 0.15;

  /// Phase-change handling (paper Sec. 8: jobs with several power-
  /// sensitivity profiles).  When the newest observations at a cap level
  /// disagree with the older pooled rate at the same level by more than
  /// this relative shift, the job's behavior changed: stale observations
  /// are discarded so models refit against the current phase only.
  /// 0 disables detection.
  double phase_shift_threshold = 0.25;
  /// Newest observations compared against the older pool.
  std::size_t phase_window = 3;
};

/// One (average cap, seconds per epoch) observation.
struct EpochObservation {
  double avg_cap_w = 0.0;
  double sec_per_epoch = 0.0;
  double t_start_s = 0.0;
  double t_end_s = 0.0;
  long epochs = 0;
  /// Cap extremes over the span.  When they differ by more than the
  /// modeler's tolerance the epochs mixed materially different speeds and
  /// the observation is unreliable for fitting (Sec. 7.2's asynchrony
  /// problem); small closed-loop nudges are tolerated.
  double cap_min_w = 0.0;
  double cap_max_w = 0.0;
  bool mixed_cap = false;
};

/// Observations pooled per cap level.  Individual epoch spans carry heavy
/// sampling quantization (an agent only reports epoch counts on its
/// control grid, so a 4 s span holds "2 or 3" epochs, never 2.7); pooling
/// all spans at one cap — total time over total epochs — recovers the
/// true rate.  Model-vs-observation comparisons and refits consume these.
struct CapAggregate {
  double cap_w = 0.0;         // epoch-weighted mean cap of the bucket
  double sec_per_epoch = 0.0; // total span / total epochs
  long epochs = 0;
};

/// Pool clean observations into cap buckets of the given width.
std::vector<CapAggregate> aggregate_by_cap(const std::vector<EpochObservation>& observations,
                                           double bucket_w = 5.0);

class OnlineModeler {
 public:
  OnlineModeler(PowerPerfModel initial_model, ModelerConfig config = {});

  /// Record that the cap changed at virtual time t (used to compute the
  /// average cap over each epoch span).  Must be called whenever the
  /// budgeter issues a new cap.
  void record_cap(double t_s, double cap_w);

  /// Feed a timestamped epoch-count sample from the endpoint.  Returns
  /// the new observation if this sample closed out one or more epochs.
  std::optional<EpochObservation> add_epoch_sample(double t_s, long epoch_count);

  /// The model currently served to the cluster tier.
  const PowerPerfModel& model() const { return model_; }

  /// True once at least one successful refit replaced the initial model.
  bool has_fitted_model() const { return fitted_; }

  long total_epochs_seen() const { return last_epoch_count_ < 0 ? 0 : last_epoch_count_; }
  std::size_t observation_count() const { return observations_.size(); }
  const std::vector<EpochObservation>& observations() const { return observations_; }
  /// Observations safe to fit against: single-cap spans only.
  std::vector<EpochObservation> clean_observations() const;

  /// Force a refit attempt now (normally triggered automatically).
  /// Returns true if the model was replaced.
  bool retrain();

  /// Number of phase changes detected so far (observation-window resets).
  int phase_changes_detected() const { return phase_changes_; }

 private:
  void maybe_retrain();
  void maybe_detect_phase_change();
  double average_cap_over(double t0_s, double t1_s) const;
  /// Min/max cap over a window (first = min, second = max).
  std::pair<double, double> cap_range_over(double t0_s, double t1_s) const;

  PowerPerfModel model_;
  ModelerConfig config_;
  bool fitted_ = false;

  // Cap history as step function: (time, cap) change points.
  std::vector<double> cap_change_times_;
  std::vector<double> cap_values_;

  long last_epoch_count_ = -1;
  double last_epoch_time_s_ = 0.0;
  long epochs_since_train_ = 0;
  std::size_t observations_seen_ = 0;
  int phase_changes_ = 0;

  std::vector<EpochObservation> observations_;
};

}  // namespace anor::model
