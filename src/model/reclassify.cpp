#include "model/reclassify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "workload/job_type.hpp"

namespace anor::model {

Reclassifier::Reclassifier(std::vector<NamedModel> candidates, ReclassifierConfig config)
    : candidates_(std::move(candidates)), config_(config) {}

double Reclassifier::mean_relative_error(const PowerPerfModel& model,
                                         const std::vector<EpochObservation>& observations) {
  // Compare against cap-pooled rates: individual spans carry sampling
  // quantization (2-vs-3 epochs per span), but total-time-over-total-
  // epochs per cap level converges to the true rate.  Buckets weigh in by
  // their epoch counts.
  const std::vector<CapAggregate> aggregates = aggregate_by_cap(observations);
  double total = 0.0;
  double weight = 0.0;
  for (const CapAggregate& aggregate : aggregates) {
    if (aggregate.sec_per_epoch <= 0.0) continue;
    const double predicted = model.time_at(aggregate.cap_w);
    const double w = static_cast<double>(aggregate.epochs);
    total += w * std::abs(predicted - aggregate.sec_per_epoch) / aggregate.sec_per_epoch;
    weight += w;
  }
  return weight > 0.0 ? total / weight : 0.0;
}

std::vector<std::pair<double, NamedModel>> Reclassifier::ranked(
    const std::vector<EpochObservation>& observations) const {
  std::vector<std::pair<double, NamedModel>> result;
  result.reserve(candidates_.size());
  for (const NamedModel& candidate : candidates_) {
    result.emplace_back(mean_relative_error(candidate.model, observations), candidate);
  }
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

std::optional<NamedModel> Reclassifier::suggest(
    const std::vector<EpochObservation>& observations, const PowerPerfModel& current) const {
  long epochs = 0;
  for (const EpochObservation& obs : observations) epochs += obs.epochs;
  if (epochs < config_.min_epochs) return std::nullopt;

  const double current_error = mean_relative_error(current, observations);
  if (current_error <= config_.divergence_threshold) return std::nullopt;

  const NamedModel* best = nullptr;
  double best_error = std::numeric_limits<double>::infinity();
  for (const NamedModel& candidate : candidates_) {
    const double error = mean_relative_error(candidate.model, observations);
    if (error < best_error) {
      best_error = error;
      best = &candidate;
    }
  }
  if (best == nullptr) return std::nullopt;
  if (best_error > current_error * config_.improvement_factor) return std::nullopt;
  return *best;
}

double model_prediction_distance(const PowerPerfModel& a, const PowerPerfModel& b,
                                 const std::vector<EpochObservation>& observations) {
  const std::vector<CapAggregate> aggregates = aggregate_by_cap(observations);
  double total = 0.0;
  double weight = 0.0;
  for (const CapAggregate& aggregate : aggregates) {
    const double pb = b.time_at(aggregate.cap_w);
    if (pb <= 0.0) continue;
    const double w = static_cast<double>(aggregate.epochs);
    total += w * std::abs(a.time_at(aggregate.cap_w) - pb) / pb;
    weight += w;
  }
  return weight > 0.0 ? total / weight : 0.0;
}

std::vector<NamedModel> standard_candidates() {
  std::vector<NamedModel> candidates;
  for (const workload::JobType& type : workload::nas_job_types()) {
    candidates.push_back(NamedModel{type.name, PowerPerfModel::from_job_type(type)});
  }
  return candidates;
}

}  // namespace anor::model
