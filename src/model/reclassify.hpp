// Misclassification detection from online epoch observations.
//
// Paper Sec. 6.1.2: "it is important ... to have a method to detect the
// misclassification and adjust the power budget."  A full quadratic refit
// needs observations at >= 3 distinct caps, which a static shared budget
// never provides; this detector handles that regime.  It compares observed
// seconds-per-epoch against each precharacterized type's absolute curve at
// the observed caps and, when the currently served model diverges beyond a
// threshold, proposes the best-matching known curve instead.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "model/modeler.hpp"
#include "model/perf_model.hpp"

namespace anor::model {

struct ReclassifierConfig {
  /// Mean relative error above which the current model counts as diverged.
  double divergence_threshold = 0.20;
  /// Require at least this many epochs of evidence before reclassifying.
  long min_epochs = 10;
  /// A proposed replacement must fit at least this much better
  /// (relative-error ratio) than the current model.
  double improvement_factor = 0.5;
};

struct NamedModel {
  std::string name;
  PowerPerfModel model;
};

class Reclassifier {
 public:
  Reclassifier(std::vector<NamedModel> candidates, ReclassifierConfig config = {});

  /// Mean relative error of a model against observations.
  static double mean_relative_error(const PowerPerfModel& model,
                                    const std::vector<EpochObservation>& observations);

  /// Propose a replacement when the current model has diverged and a
  /// candidate explains the observations much better.  nullopt otherwise.
  std::optional<NamedModel> suggest(const std::vector<EpochObservation>& observations,
                                    const PowerPerfModel& current) const;

  /// All candidates ranked by mean relative error, ascending.  Callers
  /// needing an ambiguity check (is the best decisively better than the
  /// runner-up?) use this directly.
  std::vector<std::pair<double, NamedModel>> ranked(
      const std::vector<EpochObservation>& observations) const;

  const ReclassifierConfig& config() const { return config_; }

  const std::vector<NamedModel>& candidates() const { return candidates_; }

 private:
  std::vector<NamedModel> candidates_;
  ReclassifierConfig config_;
};

/// The standard candidate set: all registered NPB job types' ground-truth
/// curves.
std::vector<NamedModel> standard_candidates();

/// Epoch-weighted mean relative disagreement between two models'
/// predictions over the caps the observations cover.  Two candidates
/// below a small distance are interchangeable for budgeting purposes —
/// picking either is not an ambiguity.
double model_prediction_distance(const PowerPerfModel& a, const PowerPerfModel& b,
                                 const std::vector<EpochObservation>& observations);

}  // namespace anor::model
