#include "core/policies.hpp"

namespace anor::core {

std::string to_string(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kUniform: return "uniform";
    case PolicyKind::kCharacterized: return "characterized";
    case PolicyKind::kMisclassified: return "misclassified";
    case PolicyKind::kAdjusted: return "adjusted";
  }
  return "?";
}

void apply_policy(cluster::EmulationConfig& config, PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kUniform:
      config.manager.budgeter = budget::BudgeterKind::kEvenPower;
      config.manager.accept_model_updates = false;
      config.endpoint.feedback_enabled = false;
      break;
    case PolicyKind::kCharacterized:
      config.manager.budgeter = budget::BudgeterKind::kEvenSlowdown;
      config.manager.accept_model_updates = false;
      config.endpoint.feedback_enabled = false;
      break;
    case PolicyKind::kMisclassified:
      config.manager.budgeter = budget::BudgeterKind::kEvenSlowdown;
      config.manager.accept_model_updates = false;
      config.endpoint.feedback_enabled = false;
      break;
    case PolicyKind::kAdjusted:
      config.manager.budgeter = budget::BudgeterKind::kEvenSlowdown;
      config.manager.accept_model_updates = true;
      config.endpoint.feedback_enabled = true;
      break;
  }
}

bool expects_misclassification(PolicyKind policy) {
  return policy == PolicyKind::kMisclassified || policy == PolicyKind::kAdjusted;
}

}  // namespace anor::core
