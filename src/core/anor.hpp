// Umbrella header: include <core/anor.hpp> (or link anor::anor) to get the
// whole framework.
//
// Layer map (bottom up):
//   util/      — RNG, stats, fitting, JSON, time series, thread pool
//   platform/  — emulated RAPL hardware (MSRs, packages, nodes)
//   workload/  — calibrated NPB-like job types, kernels, schedules,
//                regulation signals
//   geopm/     — GEOPM-like runtime: PlatformIO, agents, comm tree,
//                endpoint, reports
//   model/     — online power-performance modeling + misclassification
//                detection
//   budget/    — even-power and even-slowdown cluster budgeters
//   sched/     — AQA scheduler, QoS accounting, DR bidder, weight trainer
//   engine/    — shared scenario engine: discrete-time stepper,
//                backend-agnostic ScenarioSpec/RunResult, backend dispatch
//   sim/       — tabular 1000-node cluster simulator
//   cluster/   — tier messaging (in-process + TCP), cluster manager,
//                job endpoints, end-to-end emulation
//   fault/     — fault plans, faulty-channel injection, chaos runs
//   core/      — policies and the experiment facade
#pragma once

#include "budget/budgeter.hpp"
#include "cluster/emulation.hpp"
#include "cluster/facility.hpp"
#include "core/framework.hpp"
#include "core/policies.hpp"
#include "engine/discrete_engine.hpp"
#include "engine/runner.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep/executor.hpp"
#include "engine/sweep/result_cache.hpp"
#include "engine/sweep/spec_canon.hpp"
#include "engine/sweep/sweep.hpp"
#include "fault/chaos.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_channel.hpp"
#include "geopm/controller.hpp"
#include "model/modeler.hpp"
#include "model/reclassify.hpp"
#include "platform/cluster_hw.hpp"
#include "sched/aqa_scheduler.hpp"
#include "sched/bidder.hpp"
#include "sched/qos.hpp"
#include "sched/weight_trainer.hpp"
#include "sim/evaluators.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/job_type.hpp"
#include "workload/queue_trace.hpp"
#include "workload/regulation.hpp"
#include "workload/schedule.hpp"
