#include "core/framework.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace anor::core {

util::TimeSeries constant_targets(double power_w, double horizon_s, double period_s) {
  util::TimeSeries series;
  for (double t = 0.0; t <= horizon_s + 1e-9; t += period_s) series.add(t, power_w);
  return series;
}

workload::DemandResponseBid fig9_bid() {
  // 16 nodes x [140 W floor, ~270 W mixed-type max draw] bounds the
  // feasible CPU power to roughly [2.25, 4.3] kW once a node or two
  // idles; committing 2.3-4.3 kW keeps the whole band trackable (the
  // paper's testbed committed 2.3-4.5 kW; its jobs drew fully up to TDP).
  return workload::DemandResponseBid{3300.0, 1000.0};
}

util::TimeSeries fig9_targets(std::uint64_t seed, double horizon_s) {
  const workload::DemandResponseBid bid = fig9_bid();
  const workload::RandomWalkRegulation regulation(util::Rng(seed).child("regulation"),
                                                  horizon_s + 60.0, 4.0, 0.18);
  return workload::make_power_target_series(bid, regulation, horizon_s, 4.0);
}

namespace {

util::Json series_json(const util::TimeSeries& series, double decimation_s) {
  util::JsonArray t;
  util::JsonArray v;
  double next = series.empty() ? 0.0 : series.front_time();
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series.times()[i] + 1e-9 < next) continue;
    t.push_back(util::Json(series.times()[i]));
    v.push_back(util::Json(series.values()[i]));
    next = series.times()[i] + decimation_s;
  }
  util::JsonObject obj;
  obj["t_s"] = util::Json(std::move(t));
  obj["value"] = util::Json(std::move(v));
  return util::Json(std::move(obj));
}

}  // namespace

util::Json experiment_report_json(const cluster::EmulationResult& result,
                                  double series_decimation_s) {
  util::JsonArray jobs;
  for (const auto& job : result.completed) {
    util::JsonObject j;
    j["job_id"] = util::Json(job.request.job_id);
    j["type"] = util::Json(job.request.type_name);
    if (!job.request.classified_as.empty()) {
      j["classified_as"] = util::Json(job.request.classified_as);
    }
    j["nodes"] = util::Json(job.request.nodes);
    j["submit_s"] = util::Json(job.submit_s);
    j["start_s"] = util::Json(job.start_s);
    j["end_s"] = util::Json(job.end_s);
    j["slowdown"] = util::Json(job.slowdown());
    j["runtime_s"] = util::Json(job.report.runtime_s);
    j["compute_runtime_s"] = util::Json(job.report.compute_runtime_s);
    j["package_energy_j"] = util::Json(job.report.package_energy_j);
    j["average_power_w"] = util::Json(job.report.average_power_w);
    j["average_cap_w"] = util::Json(job.report.average_cap_w);
    j["epoch_count"] = util::Json(static_cast<double>(job.report.epoch_count));
    jobs.push_back(util::Json(std::move(j)));
  }

  util::JsonObject tracking;
  tracking["mean_error"] = util::Json(result.tracking.mean_error);
  tracking["p90_error"] = util::Json(result.tracking.p90_error);
  tracking["max_error"] = util::Json(result.tracking.max_error);
  tracking["fraction_within_30"] = util::Json(result.tracking.fraction_within_30);
  tracking["samples"] = util::Json(static_cast<double>(result.tracking.samples));

  util::JsonObject qos;
  qos["worst_p90_degradation"] = util::Json(result.qos.worst_quantile());
  qos["satisfied"] = util::Json(result.qos.satisfied());
  util::JsonObject per_type;
  for (const auto& [type, q] : result.qos.percentile_by_type(90.0)) {
    per_type[type] = util::Json(q);
  }
  qos["p90_by_type"] = util::Json(std::move(per_type));

  util::JsonObject root;
  root["jobs"] = util::Json(std::move(jobs));
  root["tracking"] = util::Json(std::move(tracking));
  root["qos"] = util::Json(std::move(qos));
  root["end_time_s"] = util::Json(result.end_time_s);
  root["power_w"] = series_json(result.power_w, series_decimation_s);
  if (!result.target_w.empty()) {
    root["target_w"] = series_json(result.target_w, series_decimation_s);
  }
  return util::Json(std::move(root));
}

void save_experiment_report(const std::string& path,
                            const cluster::EmulationResult& result) {
  util::save_json_file(path, experiment_report_json(result));
}

cluster::EmulatedCluster make_cluster(const Experiment& experiment) {
  if (experiment.static_budget_w && experiment.targets) {
    throw util::ConfigError("Experiment: set either static_budget_w or targets, not both");
  }
  cluster::EmulationConfig config = experiment.base;
  config.node_count = experiment.node_count;
  config.perf_variation_sigma = experiment.perf_variation_sigma;
  config.seed = experiment.seed;
  apply_policy(config, experiment.policy);

  cluster::EmulatedCluster emu(config, experiment.schedule);
  if (experiment.static_budget_w) {
    const double horizon = std::max(experiment.schedule.duration_s, 4.0 * 3600.0);
    emu.set_power_targets(constant_targets(*experiment.static_budget_w, horizon));
  } else if (experiment.targets) {
    emu.set_power_targets(*experiment.targets);
  }
  return emu;
}

cluster::EmulationResult run_experiment(const Experiment& experiment) {
  cluster::EmulatedCluster emu = make_cluster(experiment);
  if (experiment.artifact_dir.empty()) return emu.run();

  telemetry::RunArtifactConfig artifact_config;
  artifact_config.dir = experiment.artifact_dir;
  artifact_config.cadence_s = experiment.artifact_cadence_s;
  artifact_config.run_name = "experiment";
  telemetry::RunArtifactWriter artifacts(artifact_config,
                                         telemetry::MetricsRegistry::global(),
                                         &telemetry::TraceRecorder::global());
  emu.attach_artifacts(&artifacts);
  cluster::EmulationResult result = emu.run();
  emu.attach_artifacts(nullptr);
  artifacts.finalize();
  return result;
}

}  // namespace anor::core
