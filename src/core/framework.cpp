#include "core/framework.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace anor::core {

util::TimeSeries constant_targets(double power_w, double horizon_s, double period_s) {
  return engine::constant_targets(power_w, horizon_s, period_s);
}

workload::DemandResponseBid fig9_bid() {
  // 16 nodes x [140 W floor, ~270 W mixed-type max draw] bounds the
  // feasible CPU power to roughly [2.25, 4.3] kW once a node or two
  // idles; committing 2.3-4.3 kW keeps the whole band trackable (the
  // paper's testbed committed 2.3-4.5 kW; its jobs drew fully up to TDP).
  return workload::DemandResponseBid{3300.0, 1000.0};
}

util::TimeSeries fig9_targets(std::uint64_t seed, double horizon_s) {
  const workload::DemandResponseBid bid = fig9_bid();
  const workload::RandomWalkRegulation regulation(util::Rng(seed).child("regulation"),
                                                  horizon_s + 60.0, 4.0, 0.18);
  return workload::make_power_target_series(bid, regulation, horizon_s, 4.0);
}

util::Json experiment_report_json(const cluster::EmulationResult& result,
                                  double series_decimation_s) {
  return engine::run_result_json(result, series_decimation_s);
}

void save_experiment_report(const std::string& path,
                            const cluster::EmulationResult& result) {
  engine::save_run_result(path, result);
}

engine::ScenarioSpec to_scenario_spec(const Experiment& experiment) {
  if (experiment.static_budget_w && experiment.targets) {
    throw util::ConfigError("Experiment: set either static_budget_w or targets, not both");
  }
  engine::ScenarioSpec spec;
  spec.name = "experiment";
  spec.backend = engine::Backend::kEmulated;
  spec.schedule = experiment.schedule;
  spec.policy = experiment.policy;
  spec.static_budget_w = experiment.static_budget_w;
  if (experiment.targets) spec.targets = *experiment.targets;
  spec.node_count = experiment.node_count;
  spec.perf_variation_sigma = experiment.perf_variation_sigma;
  spec.seed = experiment.seed;
  spec.artifact_dir = experiment.artifact_dir;
  spec.artifact_cadence_s = experiment.artifact_cadence_s;
  return spec;
}

cluster::EmulatedCluster make_cluster(const Experiment& experiment) {
  return engine::make_emulated_cluster(to_scenario_spec(experiment), experiment.base);
}

cluster::EmulationResult run_experiment(const Experiment& experiment) {
  return engine::run_scenario(to_scenario_spec(experiment), experiment.base);
}

}  // namespace anor::core
