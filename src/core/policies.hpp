// Cluster power-management policies, resolved through the process-wide
// policy registry.
//
// The four paper policies (Fig. 6-10 legends) are registry built-ins;
// custom policies — including expression-DSL budgeters — register at
// runtime and are admission-gated (engine/policy_admission.hpp) before
// run_scenario dispatches them.  The machinery lives in the shared
// scenario engine (engine/policy_registry.hpp, engine/runner.hpp) since
// both backends consume it; this header keeps the historical core::
// names as aliases.
#pragma once

#include "engine/policy_admission.hpp"
#include "engine/policy_registry.hpp"
#include "engine/runner.hpp"

namespace anor::core {

using PolicyRef = engine::PolicyRef;
using PolicyDescriptor = engine::PolicyDescriptor;
using PolicyRegistry = engine::PolicyRegistry;
using engine::admit_policy;
using engine::apply_policy;
using engine::expects_misclassification;
using engine::policy_from_string;
using engine::resolve_policy;
using engine::to_string;

}  // namespace anor::core
