// The four cluster power-management policies the paper evaluates
// (Fig. 6-10 legends).
//
//   Uniform        — performance-agnostic even-power budgeter.
//   Characterized  — performance-aware even-slowdown budgeter with correct
//                    precharacterized models.
//   Misclassified  — even-slowdown, but (some) jobs carry a wrong
//                    classification and feedback is disabled.
//   Adjusted       — misclassified, with the job-tier feedback loop
//                    enabled so the cluster tier recovers.
#pragma once

#include <string>

#include "cluster/emulation.hpp"

namespace anor::core {

enum class PolicyKind { kUniform, kCharacterized, kMisclassified, kAdjusted };

std::string to_string(PolicyKind policy);

/// Configure an emulation for a policy.  The schedule is responsible for
/// carrying the misclassification labels (workload::misclassify); this
/// sets the budgeter kind and the feedback switches.
void apply_policy(cluster::EmulationConfig& config, PolicyKind policy);

/// Whether the policy expects the schedule to carry misclassification
/// labels.
bool expects_misclassification(PolicyKind policy);

}  // namespace anor::core
