// The four cluster power-management policies the paper evaluates
// (Fig. 6-10 legends).
//
// The enum and its helpers live in the shared scenario engine
// (engine/scenario.hpp, engine/runner.hpp) since both backends consume
// them; this header keeps the historical core:: names as aliases.
#pragma once

#include "engine/runner.hpp"

namespace anor::core {

using PolicyKind = engine::PolicyKind;
using engine::apply_policy;
using engine::expects_misclassification;
using engine::to_string;

}  // namespace anor::core
