// ANOR framework facade — the primary public API.
//
// An Experiment describes what the paper calls a scenario: a job schedule
// (with optional misclassification labels), a power objective (static
// budget or a time-varying demand-response target), a policy, and the
// platform.  `run_experiment` assembles the full two-tier stack on the
// emulated cluster and returns the measurements every figure is built
// from.  See examples/quickstart.cpp for the 30-line version.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/emulation.hpp"
#include "core/policies.hpp"
#include "engine/runner.hpp"
#include "util/json.hpp"
#include "util/time_series.hpp"
#include "workload/regulation.hpp"
#include "workload/schedule.hpp"

namespace anor::core {

struct Experiment {
  /// Job arrivals.  Misclassification experiments label jobs via
  /// workload::misclassify before running.
  workload::Schedule schedule;

  PolicyRef policy;

  /// Static cluster power budget, watts.  Mutually exclusive with
  /// `targets`; leave both unset to run unconstrained.
  std::optional<double> static_budget_w;
  /// Time-varying power targets.
  std::optional<util::TimeSeries> targets;

  int node_count = 16;
  double perf_variation_sigma = 0.0;
  std::uint64_t seed = 1;

  /// Non-empty: write a run artifact directory (metrics.csv time series,
  /// metrics.json, trace.json, trace.jsonl, manifest.json) sampled from
  /// the global telemetry registry at `artifact_cadence_s`.
  std::string artifact_dir;
  double artifact_cadence_s = 1.0;

  /// Advanced knobs (defaults match the paper's setup).
  cluster::EmulationConfig base;
};

/// Lower an Experiment into the engine's backend-agnostic ScenarioSpec
/// (backend kEmulated; `base` travels separately through run_scenario's
/// second parameter).
engine::ScenarioSpec to_scenario_spec(const Experiment& experiment);

/// Build the emulated cluster for an experiment (exposed so tests can
/// single-step it).
cluster::EmulatedCluster make_cluster(const Experiment& experiment);

/// Run an experiment to completion (through engine::run_scenario).
cluster::EmulationResult run_experiment(const Experiment& experiment);

/// A constant-power target series over a horizon (static budget runs are
/// expressed as degenerate tracking runs, as on the real cluster).
util::TimeSeries constant_targets(double power_w, double horizon_s, double period_s = 4.0);

/// The paper's Fig. 9 setup: one hour of targets in [2.3, 4.5] kW updated
/// every 4 s around the committed mean, derived from a seeded regulation
/// walk.
util::TimeSeries fig9_targets(std::uint64_t seed, double horizon_s = 3600.0);

/// The demand-response bid implied by a 16-node cluster's cap range
/// (the Fig. 9 committed flexibility).
workload::DemandResponseBid fig9_bid();

/// Serialize a finished experiment — per-job reports, QoS records,
/// tracking statistics, and the decimated power/target series — as a JSON
/// artifact (the equivalent of the per-job GEOPM report files plus the
/// cluster log the paper's experiments produce).
util::Json experiment_report_json(const cluster::EmulationResult& result,
                                  double series_decimation_s = 30.0);

/// Write the artifact to a file.
void save_experiment_report(const std::string& path,
                            const cluster::EmulationResult& result);

}  // namespace anor::core
