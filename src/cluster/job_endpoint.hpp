// Job-tier endpoint process (paper Fig. 2: "Power Modeler", 1 per job).
//
// Runs on (one of) a job's compute nodes, bridging the GEOPM endpoint to
// the cluster tier: it reads epoch samples out of the endpoint's shared
// memory, feeds the online modeler, forwards power budgets from the
// cluster manager into the endpoint as agent policies, and — when
// feedback is enabled — publishes improved models upward.  Two feedback
// mechanisms mirror the paper: a quadratic refit once observations span
// enough caps (Sec. 4.2), and misclassification detection against the
// precharacterized curves (Sec. 6.1.2) for the static-cap regime.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cluster/messages.hpp"
#include "cluster/transport.hpp"
#include "geopm/endpoint.hpp"
#include "model/modeler.hpp"
#include "model/reclassify.hpp"

namespace anor::cluster {

struct JobEndpointConfig {
  /// How often the endpoint process runs its loop, seconds.
  double period_s = 1.0;
  /// Feedback off = never publish model updates (the "misclassified"
  /// policy); on = publish refits/reclassifications (the "adjusted" one).
  bool feedback_enabled = true;
  model::ReclassifierConfig reclassifier;

  /// Cap probing: when the served model has diverged but no candidate is
  /// *decisively* better (several precharacterized curves cross near the
  /// current cap, so absolute epoch times cannot separate them), the
  /// endpoint dithers the applied cap through {-delta, 0, +delta} around
  /// the budget.  Observations at distinct caps expose the curve's slope,
  /// disambiguating the candidates — and giving the quadratic refit the
  /// cap diversity it needs.  Mean applied power is budget-neutral.
  bool probe_enabled = true;
  double probe_delta_w = 20.0;
  double probe_dwell_s = 6.0;
  /// Commit a model swap only when the best candidate's error undercuts
  /// the runner-up's by at least this margin (absolute, on mean relative
  /// error).  Epoch rates resolve to well under 1 % per cap level, so
  /// near-ties are within measurement noise — probing separates them.
  double decision_margin = 0.015;
};

class JobEndpointProcess {
 public:
  /// `endpoint` is the GEOPM endpoint of the job's controller; `channel`
  /// connects to the cluster manager.  Both must outlive this object.
  /// `start_time_s` is the virtual time the job started (its initial
  /// uncapped power level is recorded from then).  Sends JobHello
  /// immediately.
  /// `initial_cap_w` is the cap the job's nodes carry at start (fresh
  /// nodes power up at TDP; recycled nodes keep their last cap).
  JobEndpointProcess(int job_id, std::string job_name, std::string classified_as, int nodes,
                     model::PowerPerfModel initial_model, geopm::Endpoint& endpoint,
                     MessageChannel& channel, double start_time_s = 0.0,
                     JobEndpointConfig config = {},
                     double initial_cap_w = workload::kNodeMaxCapW);

  int job_id() const { return job_id_; }
  double next_due_s() const { return next_step_s_; }
  const model::OnlineModeler& modeler() const { return modeler_; }
  bool published_feedback() const { return published_feedback_; }
  double current_cap_w() const { return current_cap_w_; }
  bool probing() const { return probing_; }

  /// One iteration of the endpoint loop at virtual time `now_s`:
  /// 1. apply any budget messages from the manager to the agent,
  /// 2. drain agent samples into the modeler,
  /// 3. if feedback produced a better model, publish it.
  void step(double now_s);

  /// Send JobGoodbye (call at job completion).
  void finish(double now_s);

 private:
  void publish_model(double now_s, const model::PowerPerfModel& model, bool from_feedback);
  /// Push cap (+ probe dither when active) into the agent policy.
  void apply_cap(double now_s);
  void run_feedback(double now_s);

  int job_id_;
  std::string job_name_;
  std::string classified_as_;
  int nodes_;
  geopm::Endpoint* endpoint_;
  MessageChannel* channel_;
  JobEndpointConfig config_;

  model::OnlineModeler modeler_;
  model::Reclassifier reclassifier_;
  /// What the cluster tier currently budgets this job with (initially the
  /// classified model; replaced by published feedback).
  model::PowerPerfModel served_model_;
  double next_step_s_ = 0.0;
  double current_cap_w_ = 0.0;
  bool published_feedback_ = false;
  std::optional<std::string> reclassified_to_;

  // Probe state.
  bool probing_ = false;
  int probe_level_ = 0;           // cycles 0, +1, -1
  double probe_next_flip_s_ = 0.0;
  double probe_log_next_s_ = 0.0;
  double applied_cap_w_ = -1.0;   // last cap actually written to the agent
};

}  // namespace anor::cluster
