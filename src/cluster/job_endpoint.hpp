// Job-tier endpoint process (paper Fig. 2: "Power Modeler", 1 per job).
//
// Runs on (one of) a job's compute nodes, bridging the GEOPM endpoint to
// the cluster tier: it reads epoch samples out of the endpoint's shared
// memory, feeds the online modeler, forwards power budgets from the
// cluster manager into the endpoint as agent policies, and — when
// feedback is enabled — publishes improved models upward.  Two feedback
// mechanisms mirror the paper: a quadratic refit once observations span
// enough caps (Sec. 4.2), and misclassification detection against the
// precharacterized curves (Sec. 6.1.2) for the static-cap regime.
//
// Failure model: all sends go through a ReliableChannel (sequence
// stamping, retry with backoff, bounded outbox), the endpoint heartbeats
// the manager so its liveness lease stays fresh, and it republishes its
// served feedback model periodically so the manager's staleness TTL does
// not lapse while the job is healthy.  When the manager goes quiet the
// endpoint holds its last cap for the quiet window, then decays the
// applied cap toward a safe cap — a partitioned job must not keep burning
// a power allocation nobody is accounting for — and re-sends its hello to
// rejoin cleanly once the partition heals.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cluster/messages.hpp"
#include "cluster/reliable_channel.hpp"
#include "cluster/transport.hpp"
#include "geopm/endpoint.hpp"
#include "model/modeler.hpp"
#include "model/reclassify.hpp"

namespace anor::cluster {

struct JobEndpointConfig {
  /// How often the endpoint process runs its loop, seconds.
  double period_s = 1.0;
  /// Feedback off = never publish model updates (the "misclassified"
  /// policy); on = publish refits/reclassifications (the "adjusted" one).
  bool feedback_enabled = true;
  model::ReclassifierConfig reclassifier;

  /// Cap probing: when the served model has diverged but no candidate is
  /// *decisively* better (several precharacterized curves cross near the
  /// current cap, so absolute epoch times cannot separate them), the
  /// endpoint dithers the applied cap through {-delta, 0, +delta} around
  /// the budget.  Observations at distinct caps expose the curve's slope,
  /// disambiguating the candidates — and giving the quadratic refit the
  /// cap diversity it needs.  Mean applied power is budget-neutral.
  bool probe_enabled = true;
  double probe_delta_w = 20.0;
  double probe_dwell_s = 6.0;
  /// Commit a model swap only when the best candidate's error undercuts
  /// the runner-up's by at least this margin (absolute, on mean relative
  /// error).  Epoch rates resolve to well under 1 % per cap level, so
  /// near-ties are within measurement noise — probing separates them.
  double decision_margin = 0.015;

  /// Liveness heartbeat cadence toward the manager (0 disables).
  double heartbeat_period_s = 2.0;
  /// Degrade after the manager has been silent this long (0 disables).
  double manager_quiet_after_s = 10.0;
  /// While degraded, walk the applied cap toward the safe cap at this
  /// rate; hello is also re-sent at the quiet cadence to rejoin.
  double safe_cap_decay_w_per_s = 4.0;
  /// Fallback cap while partitioned; 0 derives it from the served model's
  /// p_min (the lowest cap the job is characterized at).
  double safe_cap_w = 0.0;
  /// Republish the served feedback model at this cadence so the manager's
  /// model-staleness TTL stays fresh (0 disables).
  double model_republish_s = 20.0;
  /// Retry/backoff/dedup settings for the channel to the manager.
  ReliableChannelConfig retry;
};

class JobEndpointProcess {
 public:
  /// `endpoint` is the GEOPM endpoint of the job's controller; `channel`
  /// connects to the cluster manager.  Both must outlive this object.
  /// `start_time_s` is the virtual time the job started (its initial
  /// uncapped power level is recorded from then).  Sends JobHello
  /// immediately.
  /// `initial_cap_w` is the cap the job's nodes carry at start (fresh
  /// nodes power up at TDP; recycled nodes keep their last cap).
  JobEndpointProcess(int job_id, std::string job_name, std::string classified_as, int nodes,
                     model::PowerPerfModel initial_model, geopm::Endpoint& endpoint,
                     MessageChannel& channel, double start_time_s = 0.0,
                     JobEndpointConfig config = {},
                     double initial_cap_w = workload::kNodeMaxCapW);

  int job_id() const { return job_id_; }
  double next_due_s() const { return next_step_s_; }
  const model::OnlineModeler& modeler() const { return modeler_; }
  bool published_feedback() const { return published_feedback_; }
  double current_cap_w() const { return current_cap_w_; }
  bool probing() const { return probing_; }
  /// True while the manager has been silent past the quiet window and the
  /// endpoint is decaying toward the safe cap.
  bool degraded() const { return degraded_; }
  /// The cap the endpoint falls back to while partitioned.
  double safe_cap_w() const;
  const ReliableChannel& reliable() const { return reliable_; }

  /// One iteration of the endpoint loop at virtual time `now_s`:
  /// 1. retry pending sends and apply any budget messages to the agent,
  /// 2. heartbeat the manager / detect a quiet manager and degrade,
  /// 3. drain agent samples into the modeler,
  /// 4. if feedback produced a better model, publish it.
  void step(double now_s);

  /// Send JobGoodbye (call at job completion).
  void finish(double now_s);

 private:
  void send_hello(double now_s);
  void publish_model(double now_s, const model::PowerPerfModel& model, bool from_feedback);
  /// Push cap (+ probe dither when active) into the agent policy.
  void apply_cap(double now_s);
  void check_manager_liveness(double now_s);
  void run_feedback(double now_s);

  int job_id_;
  std::string job_name_;
  std::string classified_as_;
  int nodes_;
  geopm::Endpoint* endpoint_;
  MessageChannel* channel_;
  JobEndpointConfig config_;
  ReliableChannel reliable_;

  model::OnlineModeler modeler_;
  model::Reclassifier reclassifier_;
  /// What the cluster tier currently budgets this job with (initially the
  /// classified model; replaced by published feedback).
  model::PowerPerfModel served_model_;
  double next_step_s_ = 0.0;
  double current_cap_w_ = 0.0;
  bool published_feedback_ = false;
  std::optional<std::string> reclassified_to_;

  // Liveness state.
  double last_mgr_heard_s_ = 0.0;
  bool degraded_ = false;
  double next_heartbeat_s_ = 0.0;
  double next_hello_retry_s_ = 0.0;
  double next_model_republish_s_ = 0.0;

  // Probe state.
  bool probing_ = false;
  int probe_level_ = 0;           // cycles 0, +1, -1
  double probe_next_flip_s_ = 0.0;
  double probe_log_next_s_ = 0.0;
  double applied_cap_w_ = -1.0;   // last cap actually written to the agent
};

}  // namespace anor::cluster
