#include "cluster/facility.hpp"

#include <algorithm>

namespace anor::cluster {

ClusterEnvelope FacilityCoordinator::envelope_of(const EmulatedCluster& cluster) {
  ClusterEnvelope envelope;
  envelope.floor_w = cluster.min_feasible_power_w();
  envelope.ceiling_w = std::max(cluster.max_feasible_power_w(), envelope.floor_w);
  return envelope;
}

std::vector<double> FacilityCoordinator::split(
    double facility_target_w, const std::vector<ClusterEnvelope>& envelopes) {
  std::vector<double> shares(envelopes.size(), 0.0);
  if (envelopes.empty()) return shares;

  // Every cluster gets its floor unconditionally (power it cannot shed).
  double remaining = facility_target_w;
  for (std::size_t i = 0; i < envelopes.size(); ++i) {
    shares[i] = envelopes[i].floor_w;
    remaining -= envelopes[i].floor_w;
  }
  if (remaining <= 0.0) return shares;  // over-constrained: floors only

  // Distribute headroom proportionally to upward flexibility, re-running
  // after clamping at ceilings so no headroom is stranded.
  std::vector<bool> saturated(envelopes.size(), false);
  for (int pass = 0; pass < 8 && remaining > 1e-6; ++pass) {
    double flex_total = 0.0;
    for (std::size_t i = 0; i < envelopes.size(); ++i) {
      if (!saturated[i]) flex_total += envelopes[i].ceiling_w - shares[i];
    }
    if (flex_total <= 1e-9) break;
    double distributed = 0.0;
    for (std::size_t i = 0; i < envelopes.size(); ++i) {
      if (saturated[i]) continue;
      const double flex = envelopes[i].ceiling_w - shares[i];
      double grant = remaining * flex / flex_total;
      if (grant >= flex) {
        grant = flex;
        saturated[i] = true;
      }
      shares[i] += grant;
      distributed += grant;
    }
    remaining -= distributed;
  }
  return shares;
}

bool FacilityCoordinator::step(double facility_target_w, double dt_s) {
  now_s_ += dt_s;
  if (now_s_ + 1e-9 >= next_split_s_) {
    std::vector<ClusterEnvelope> envelopes;
    envelopes.reserve(clusters_.size());
    for (const EmulatedCluster* cluster : clusters_) {
      envelopes.push_back(envelope_of(*cluster));
    }
    const std::vector<double> shares = split(facility_target_w, envelopes);
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
      util::TimeSeries target;
      target.add(0.0, shares[i]);
      clusters_[i]->manager().set_power_targets(std::move(target));
    }
    next_split_s_ = now_s_ + config_.period_s;
  }

  bool any_active = false;
  for (EmulatedCluster* cluster : clusters_) {
    while (!cluster->finished() && cluster->clock().now() < now_s_) {
      cluster->step();
    }
    any_active = any_active || !cluster->finished();
  }
  return any_active;
}

double FacilityCoordinator::total_power_w() const {
  double total = 0.0;
  for (const EmulatedCluster* cluster : clusters_) {
    total += cluster->hardware().total_power_w();
  }
  return total;
}

}  // namespace anor::cluster
