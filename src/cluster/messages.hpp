// Wire protocol between the cluster-tier manager and per-job endpoints.
//
// Paper Fig. 2: the cluster power budgeter and the job-tier power modeler
// exchange messages over TCP — budgets flow down, models flow up.  Frames
// are JSON texts (length-prefixed on stream transports) so both the
// deterministic in-process channel and the real TCP loopback speak the
// same encoding.
#pragma once

#include <string>
#include <variant>

#include "util/json.hpp"

namespace anor::cluster {

/// Job announces itself to the cluster manager when it starts.
struct JobHelloMsg {
  int job_id = 0;
  std::string job_name;
  std::string classified_as;  // job type the batch system classified this as
  int nodes = 1;
  double timestamp_s = 0.0;
};

/// Cluster manager assigns a per-node power cap to a job.
struct PowerBudgetMsg {
  int job_id = 0;
  double node_cap_w = 0.0;
  double timestamp_s = 0.0;
};

/// Job tier publishes its current power-performance model.
struct ModelUpdateMsg {
  int job_id = 0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double p_min_w = 0.0;
  double p_max_w = 0.0;
  double r2 = 0.0;
  bool from_feedback = false;  // fitted/reclassified online vs precharacterized
  double timestamp_s = 0.0;
};

/// Job finished; the manager drops it from budgeting.
struct JobGoodbyeMsg {
  int job_id = 0;
  double timestamp_s = 0.0;
};

using Message = std::variant<JobHelloMsg, PowerBudgetMsg, ModelUpdateMsg, JobGoodbyeMsg>;

/// JSON encoding (a {"type": ..., ...} object).
util::Json encode(const Message& message);
Message decode(const util::Json& json);

std::string encode_text(const Message& message);
Message decode_text(const std::string& text);

/// The job id of any message.
int job_id_of(const Message& message);

}  // namespace anor::cluster
