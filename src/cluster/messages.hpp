// Wire protocol between the cluster-tier manager and per-job endpoints.
//
// Paper Fig. 2: the cluster power budgeter and the job-tier power modeler
// exchange messages over TCP — budgets flow down, models flow up.  Frames
// are JSON texts (length-prefixed on stream transports) so both the
// deterministic in-process channel and the real TCP loopback speak the
// same encoding.
//
// Failure hardening: every message carries a per-channel sequence number
// (stamped by cluster::ReliableChannel) so receivers can reject
// duplicates and stale reorders, and stream transports frame the payload
// with an FNV-1a checksum so corrupted frames are rejected instead of
// being decoded into garbage state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "util/json.hpp"

namespace anor::cluster {

/// Job announces itself to the cluster manager when it starts.
struct JobHelloMsg {
  int job_id = 0;
  std::string job_name;
  std::string classified_as;  // job type the batch system classified this as
  int nodes = 1;
  double timestamp_s = 0.0;
  std::uint64_t seq = 0;
};

/// Cluster manager assigns a per-node power cap to a job.
struct PowerBudgetMsg {
  int job_id = 0;
  double node_cap_w = 0.0;
  double timestamp_s = 0.0;
  std::uint64_t seq = 0;
};

/// Job tier publishes its current power-performance model.
struct ModelUpdateMsg {
  int job_id = 0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double p_min_w = 0.0;
  double p_max_w = 0.0;
  double r2 = 0.0;
  bool from_feedback = false;  // fitted/reclassified online vs precharacterized
  double timestamp_s = 0.0;
  std::uint64_t seq = 0;
};

/// Job finished; the manager drops it from budgeting.
struct JobGoodbyeMsg {
  int job_id = 0;
  double timestamp_s = 0.0;
  std::uint64_t seq = 0;
};

/// Liveness beacon.  Endpoints send these so a silent job can be declared
/// dead after its lease; the manager sends them so endpoints can detect a
/// quiet head node and decay to a safe cap.
struct HeartbeatMsg {
  int job_id = 0;
  double timestamp_s = 0.0;
  std::uint64_t seq = 0;
};

using Message =
    std::variant<JobHelloMsg, PowerBudgetMsg, ModelUpdateMsg, JobGoodbyeMsg, HeartbeatMsg>;

/// JSON encoding (a {"type": ..., ...} object).
util::Json encode(const Message& message);
Message decode(const util::Json& json);

std::string encode_text(const Message& message);
Message decode_text(const std::string& text);

/// The job id of any message.
int job_id_of(const Message& message);

/// The sender timestamp of any message.
double timestamp_of(const Message& message);

/// The channel sequence number of any message (0 = unstamped).
std::uint64_t seq_of(const Message& message);
void set_seq(Message& message, std::uint64_t seq);

/// Short type tag ("hello", "budget", ...) for logs and fault traces.
std::string_view type_name_of(const Message& message);

/// FNV-1a 32-bit checksum over a serialized payload.
std::uint32_t message_checksum(std::string_view payload_text);

/// Checksummed frame: {"crc": <fnv1a32 of compact msg text>, "msg": {...}}.
/// decode_framed_text throws util::TransportError on malformed JSON, a
/// missing/invalid frame shape, or a checksum mismatch — hostile or
/// bit-flipped bytes are rejected instead of reaching the control plane.
/// Unframed legacy texts ({"type": ...} at top level) are still accepted.
std::string encode_framed_text(const Message& message);
Message decode_framed_text(const std::string& text);

}  // namespace anor::cluster
