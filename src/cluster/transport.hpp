// Message transports between the power-management tiers.
//
// The experiments use a deterministic in-process channel whose delivery
// obeys the virtual clock (messages become visible `latency_s` after
// sending); an equivalent real TCP transport lives in tcp_transport.hpp
// and is exercised by integration tests and the tcp_demo example.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "cluster/messages.hpp"
#include "util/clock.hpp"

namespace anor::cluster {

/// One end of a bidirectional message channel.
class MessageChannel {
 public:
  virtual ~MessageChannel() = default;

  /// Queue a message to the peer.  Returns false if the channel is down.
  virtual bool send(const Message& message) = 0;

  /// Non-blocking receive; nullopt when nothing is deliverable yet.
  virtual std::optional<Message> receive() = 0;

  virtual bool connected() const = 0;
};

/// A pair of in-process channel ends with per-direction latency measured
/// on a shared virtual clock.
struct InprocPair {
  std::unique_ptr<MessageChannel> a;  // e.g. cluster-manager side
  std::unique_ptr<MessageChannel> b;  // e.g. job-endpoint side
};

/// Create a connected pair.  The clock must outlive both ends.  Messages
/// sent at time t become receivable at t + latency_s.
InprocPair make_inproc_pair(const util::VirtualClock& clock, double latency_s = 0.005);

}  // namespace anor::cluster
