// Real TCP transport (POSIX sockets) for the tier link.
//
// The paper's implementation connects the head-node power budgeter to one
// compute-node process per job over TCP (Sec. 3/4).  This transport frames
// the same JSON messages with a 4-byte big-endian length prefix over a
// non-blocking loopback socket.  The deterministic experiments use the
// in-process transport; this one backs the integration tests and the
// examples/tcp_demo binary to show the protocol survives a real socket.
//
// Failure hardening: payloads carry a checksum envelope
// (encode_framed_text) and a frame that fails the checksum, fails to
// parse, or claims an absurd length is dropped and counted
// (cluster.transport.tcp.frames_rejected) instead of poisoning the
// stream.  Writes never block forever: a full socket buffer is waited out
// with poll() up to a bounded budget, after which the socket is closed
// (a half-written frame cannot be resynchronized).  SIGPIPE is never
// raised (MSG_NOSIGNAL).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/transport.hpp"

namespace anor::cluster {

/// Channel over a connected TCP socket.  Non-blocking: receive() returns
/// nullopt until a complete frame is buffered.
class TcpChannel final : public MessageChannel {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpChannel(int fd);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  bool send(const Message& message) override;
  std::optional<Message> receive() override;
  bool connected() const override { return fd_ >= 0; }

  /// Block up to `timeout_ms` for the socket to become readable (or the
  /// peer to hang up).  Returns false on timeout or when closed.  Lets
  /// pollers sleep in the kernel instead of spinning on receive().
  bool wait_readable(int timeout_ms);

  int fd() const { return fd_; }

  /// Total wall-clock budget send() may spend waiting out a full socket
  /// buffer before declaring the peer wedged and closing (milliseconds).
  static constexpr int kSendBudgetMs = 2000;
  /// Frames larger than this are treated as stream corruption.
  static constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

 private:
  void pump_input();
  void close_socket();

  int fd_ = -1;
  std::vector<std::uint8_t> in_buffer_;
};

/// Listening endpoint on 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens on the given port; port 0 picks a free port.
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Non-blocking accept; nullptr when no client is waiting.
  std::unique_ptr<TcpChannel> accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to a local listener.  Throws TransportError on failure.
std::unique_ptr<TcpChannel> tcp_connect(std::uint16_t port);

}  // namespace anor::cluster
