// Live metrics exposition over the cluster tier's TCP transport.
//
// The future anord daemon needs to publish the Prometheus text exposition
// (telemetry/prof_export.hpp) while a run is in flight.  The tier's
// Message variant is a closed protocol, so the exposition rides a plain
// HTTP/1.0 text response on a raw accepted socket instead — any scraper
// (curl, Prometheus itself) can read it, and the server never blocks the
// control loop: poll() accepts whatever clients are waiting, writes the
// current exposition produced by the provider callback, and closes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/tcp_transport.hpp"

namespace anor::cluster {

class MetricsExpositionServer {
 public:
  /// The provider is invoked once per accepted client, at poll() time, so
  /// every scrape sees the freshest snapshot.
  using Provider = std::function<std::string()>;

  /// Binds 127.0.0.1:port (0 picks a free port).
  explicit MetricsExpositionServer(Provider provider, std::uint16_t port = 0);

  std::uint16_t port() const { return listener_.port(); }

  /// Accept and answer every waiting client; returns the number served.
  /// Call from the owning loop between control iterations.
  int poll();

 private:
  Provider provider_;
  TcpListener listener_;
};

/// Blocking test/CLI helper: connect to a local exposition server, issue
/// a GET, and return the response body (without the HTTP header).  Throws
/// TransportError on connect failure; returns "" on a malformed response.
std::string fetch_metrics_exposition(std::uint16_t port, int timeout_ms = 2000);

}  // namespace anor::cluster
