#include "cluster/transport.hpp"

#include "telemetry/metrics.hpp"

namespace anor::cluster {

namespace {

struct TimedMessage {
  double deliver_at_s = 0.0;
  Message message;
};

/// Shared state of one direction of the in-process link.
struct Pipe {
  std::mutex mutex;
  std::deque<TimedMessage> queue;
  bool open = true;
};

class InprocChannel final : public MessageChannel {
 public:
  InprocChannel(const util::VirtualClock& clock, double latency_s, std::shared_ptr<Pipe> out,
                std::shared_ptr<Pipe> in)
      : clock_(&clock), latency_s_(latency_s), out_(std::move(out)), in_(std::move(in)) {}

  ~InprocChannel() override {
    // Closing one end tears down the link in both directions, as a socket
    // close would.
    {
      std::lock_guard<std::mutex> lock(out_->mutex);
      out_->open = false;
    }
    {
      std::lock_guard<std::mutex> lock(in_->mutex);
      in_->open = false;
    }
  }

  bool send(const Message& message) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (!out_->open) return false;
    out_->queue.push_back(TimedMessage{clock_->now() + latency_s_, message});
    static auto& sent =
        telemetry::MetricsRegistry::global().counter("cluster.transport.inproc.sent");
    sent.inc();
    return true;
  }

  std::optional<Message> receive() override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    if (in_->queue.empty()) return std::nullopt;
    if (in_->queue.front().deliver_at_s > clock_->now()) return std::nullopt;
    Message message = std::move(in_->queue.front().message);
    in_->queue.pop_front();
    static auto& received =
        telemetry::MetricsRegistry::global().counter("cluster.transport.inproc.received");
    received.inc();
    return message;
  }

  bool connected() const override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    return in_->open || !in_->queue.empty();
  }

 private:
  const util::VirtualClock* clock_;
  double latency_s_;
  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
};

}  // namespace

InprocPair make_inproc_pair(const util::VirtualClock& clock, double latency_s) {
  auto a_to_b = std::make_shared<Pipe>();
  auto b_to_a = std::make_shared<Pipe>();
  InprocPair pair;
  pair.a = std::make_unique<InprocChannel>(clock, latency_s, a_to_b, b_to_a);
  pair.b = std::make_unique<InprocChannel>(clock, latency_s, b_to_a, a_to_b);
  return pair;
}

}  // namespace anor::cluster
