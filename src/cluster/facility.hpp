// Facility-level power coordination across clusters (paper Sec. 8:
// "a facility with multiple clusters may wish to coordinate power demand
// across those clusters ... by treating the facility as a power provider
// to each member of the cluster tier").
//
// The coordinator owns a facility power target and splits it across its
// member clusters each period: every cluster first receives its floor
// (what it cannot go below), and the remaining headroom is divided in
// proportion to each cluster's upward flexibility.  The split therefore
// adapts as jobs start and finish on each cluster — a cluster bringing up
// new load automatically pulls power away from a draining one, the exact
// scenario the paper sketches for next-generation cluster bring-up.
#pragma once

#include <vector>

#include "cluster/emulation.hpp"

namespace anor::cluster {

struct FacilityConfig {
  /// How often the facility recomputes the split, virtual seconds.
  double period_s = 4.0;
};

/// A member cluster's current feasible power envelope.
struct ClusterEnvelope {
  double floor_w = 0.0;    // busy nodes at min caps + idle nodes at idle power
  double ceiling_w = 0.0;  // busy nodes at their jobs' max draw + idle power
};

class FacilityCoordinator {
 public:
  explicit FacilityCoordinator(FacilityConfig config = {}) : config_(config) {}

  /// Member clusters must outlive the coordinator.
  void add_cluster(EmulatedCluster& cluster) { clusters_.push_back(&cluster); }
  std::size_t cluster_count() const { return clusters_.size(); }

  /// Feasible envelope of one member right now.
  static ClusterEnvelope envelope_of(const EmulatedCluster& cluster);

  /// Pure split function (exposed for tests): floors first, then headroom
  /// proportional to upward flexibility, clamped to each ceiling.
  static std::vector<double> split(double facility_target_w,
                                   const std::vector<ClusterEnvelope>& envelopes);

  /// Advance the whole facility by dt: recompute the split at the
  /// coordination period and push each cluster's share as its power
  /// target, then step every member.  Returns false when every member has
  /// finished its schedule.
  bool step(double facility_target_w, double dt_s);

  /// Total measured power across members.
  double total_power_w() const;

  double now_s() const { return now_s_; }

 private:
  FacilityConfig config_;
  std::vector<EmulatedCluster*> clusters_;
  double now_s_ = 0.0;
  double next_split_s_ = 0.0;
};

}  // namespace anor::cluster
