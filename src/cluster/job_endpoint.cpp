#include "cluster/job_endpoint.hpp"

#include <algorithm>

#include "geopm/signals.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/logging.hpp"

namespace anor::cluster {

namespace {

ReliableChannelConfig endpoint_retry_config(const JobEndpointConfig& config, int job_id) {
  ReliableChannelConfig retry = config.retry;
  // Decorrelate jitter across endpoints while keeping a fixed seed per job.
  retry.jitter_seed =
      util::splitmix64(retry.jitter_seed ^ (static_cast<std::uint64_t>(job_id) + 0x9e37ULL));
  return retry;
}

}  // namespace

JobEndpointProcess::JobEndpointProcess(int job_id, std::string job_name,
                                       std::string classified_as, int nodes,
                                       model::PowerPerfModel initial_model,
                                       geopm::Endpoint& endpoint, MessageChannel& channel,
                                       double start_time_s, JobEndpointConfig config,
                                       double initial_cap_w)
    : job_id_(job_id),
      job_name_(std::move(job_name)),
      classified_as_(std::move(classified_as)),
      nodes_(nodes),
      endpoint_(&endpoint),
      channel_(&channel),
      config_(config),
      reliable_(channel, endpoint_retry_config(config, job_id)),
      modeler_(initial_model),
      reclassifier_(model::standard_candidates(), config.reclassifier),
      served_model_(std::move(initial_model)) {
  reliable_.poll(start_time_s);
  send_hello(start_time_s);
  next_step_s_ = start_time_s;
  last_mgr_heard_s_ = start_time_s;  // grace: the lease clock starts now
  next_heartbeat_s_ = start_time_s;
  // Record the cap the nodes already carry so the first epoch
  // observations attribute to the right power level.  No policy write is
  // needed until the cap changes.
  current_cap_w_ = initial_cap_w;
  applied_cap_w_ = initial_cap_w;
  modeler_.record_cap(start_time_s, initial_cap_w);
}

void JobEndpointProcess::send_hello(double now_s) {
  JobHelloMsg hello;
  hello.job_id = job_id_;
  hello.job_name = job_name_;
  hello.classified_as = classified_as_;
  hello.nodes = nodes_;
  hello.timestamp_s = now_s;
  reliable_.send(hello);
}

double JobEndpointProcess::safe_cap_w() const {
  if (config_.safe_cap_w > 0.0) return config_.safe_cap_w;
  return served_model_.p_min_w();
}

void JobEndpointProcess::publish_model(double now_s, const model::PowerPerfModel& model,
                                       bool from_feedback) {
  ModelUpdateMsg msg;
  msg.job_id = job_id_;
  msg.a = model.a();
  msg.b = model.b();
  msg.c = model.c();
  msg.p_min_w = model.p_min_w();
  msg.p_max_w = model.p_max_w();
  msg.r2 = model.r2();
  msg.from_feedback = from_feedback;
  msg.timestamp_s = now_s;
  reliable_.send(msg);
  if (from_feedback) published_feedback_ = true;
  if (config_.model_republish_s > 0.0) {
    next_model_republish_s_ = now_s + config_.model_republish_s;
  }
}

void JobEndpointProcess::apply_cap(double now_s) {
  double cap = current_cap_w_;
  if (probing_) {
    if (now_s + 1e-9 >= probe_next_flip_s_) {
      probe_level_ = (probe_level_ + 1) % 3;  // 0 -> +1 -> -1 -> 0 ...
      probe_next_flip_s_ = now_s + config_.probe_dwell_s;
    }
    const int sign = probe_level_ == 1 ? 1 : (probe_level_ == 2 ? -1 : 0);
    cap += sign * config_.probe_delta_w;
  }
  if (cap != applied_cap_w_) {
    applied_cap_w_ = cap;
    modeler_.record_cap(now_s, cap);
    endpoint_->write_policy(now_s, {cap});
  }
}

void JobEndpointProcess::check_manager_liveness(double now_s) {
  if (config_.manager_quiet_after_s <= 0.0) return;
  auto& registry = telemetry::MetricsRegistry::global();
  if (now_s - last_mgr_heard_s_ <= config_.manager_quiet_after_s) {
    if (degraded_) {
      degraded_ = false;
      static auto& recovered = registry.counter("liveness.manager_recovered");
      recovered.inc();
      telemetry::TraceRecorder::global().instant("manager_recovered", "liveness", now_s,
                                                 static_cast<double>(job_id_));
      util::log_info("job-endpoint", job_name_ + ": manager back; leaving degraded mode");
    }
    return;
  }
  if (!degraded_) {
    degraded_ = true;
    next_hello_retry_s_ = now_s;  // start rejoin attempts immediately
    static auto& quiet = registry.counter("liveness.manager_quiet");
    quiet.inc();
    telemetry::TraceRecorder::global().instant("manager_quiet", "liveness", now_s,
                                               static_cast<double>(job_id_));
    util::log_warn("job-endpoint",
                   job_name_ + ": manager silent for over " +
                       std::to_string(config_.manager_quiet_after_s) +
                       " s; holding cap and decaying toward the safe cap");
  }
  // Hold-last-value already elapsed (the quiet window); now walk the cap
  // toward the safe cap so an unaccounted job sheds its allocation.
  const double floor = safe_cap_w();
  if (current_cap_w_ > floor && config_.safe_cap_decay_w_per_s > 0.0) {
    current_cap_w_ = std::max(
        floor, current_cap_w_ - config_.safe_cap_decay_w_per_s * config_.period_s);
    static auto& decays = registry.counter("liveness.safe_cap_decays");
    decays.inc();
  }
  // Rejoin: a quiet manager may have expired our lease; re-announce.
  if (now_s + 1e-9 >= next_hello_retry_s_) {
    send_hello(now_s);
    next_hello_retry_s_ = now_s + config_.manager_quiet_after_s;
    static auto& rejoin = registry.counter("liveness.rejoin_hellos");
    rejoin.inc();
  }
}

void JobEndpointProcess::step(double now_s) {
  if (now_s + 1e-12 < next_step_s_) return;
  next_step_s_ = now_s + config_.period_s;

  // 0. Drive pending retries on the virtual clock.
  reliable_.poll(now_s);

  // 1. Budgets from the cluster manager -> agent policy + cap history.
  //    Every inbound message (heartbeats included) refreshes the
  //    manager-liveness clock.
  while (auto message = reliable_.receive()) {
    last_mgr_heard_s_ = now_s;
    if (const auto* budget = std::get_if<PowerBudgetMsg>(&*message)) {
      current_cap_w_ = budget->node_cap_w;
    }
  }
  check_manager_liveness(now_s);
  apply_cap(now_s);

  // 2. Heartbeat upward so the manager's lease on this job stays fresh.
  if (config_.heartbeat_period_s > 0.0 && now_s + 1e-12 >= next_heartbeat_s_) {
    HeartbeatMsg beat;
    beat.job_id = job_id_;
    beat.timestamp_s = now_s;
    reliable_.send(beat);
    next_heartbeat_s_ = now_s + config_.heartbeat_period_s;
  }

  // 3. Agent samples -> modeler observations.  Spans use the precise
  // epoch-completion timestamps GEOPM reports, not the coarser sample
  // times — the difference is the sampling-grid quantization that
  // otherwise blurs seconds-per-epoch (paper Sec. 7.2).
  for (const geopm::TimedSample& sample : endpoint_->read_samples()) {
    if (sample.sample.size() < geopm::kSampleSize) continue;
    const auto epoch_count = static_cast<long>(sample.sample[geopm::kSampleEpochCount]);
    const double epoch_time = sample.sample[geopm::kSampleEpochTime];
    modeler_.add_epoch_sample(epoch_time > 0.0 ? epoch_time : sample.timestamp_s,
                              epoch_count);
  }

  // 4. Feedback upward.
  if (config_.feedback_enabled) run_feedback(now_s);

  // 5. Keep the manager's model TTL fresh while we are the model source.
  if (published_feedback_ && config_.model_republish_s > 0.0 &&
      now_s + 1e-9 >= next_model_republish_s_) {
    publish_model(now_s, served_model_, true);
  }
}

void JobEndpointProcess::run_feedback(double now_s) {
  // Candidates compete on prediction error against the clean (single-cap)
  // observations: the online quadratic refit (when cap diversity allowed
  // one) and the precharacterized curves.  A swap is published only when
  // the winner beats BOTH the served model (improvement_factor) and the
  // runner-up candidate (ambiguity_factor) — several curves cross near
  // any single cap, so without the latter check a near-tie could install
  // a model with the wrong slope.  While the decision is ambiguous, cap
  // probing dithers the applied cap to expose the slope.
  const std::vector<model::EpochObservation> clean = modeler_.clean_observations();
  if (clean.empty()) return;
  const double served_error = model::Reclassifier::mean_relative_error(served_model_, clean);
  if (served_error <= config_.reclassifier.divergence_threshold) {
    probing_ = false;
    return;
  }

  long epochs_seen = 0;
  for (const auto& obs : clean) epochs_seen += obs.epochs;
  if (epochs_seen < config_.reclassifier.min_epochs) return;

  // Rank the precharacterized candidates; the online refit competes
  // separately.  A named curve comparable in error to the refit wins the
  // tie: library curves are trustworthy over the whole cap range, while a
  // refit is only supported where it was observed.
  std::vector<std::pair<double, model::NamedModel>> candidates =
      reclassifier_.ranked(clean);
  if (candidates.empty()) return;
  double best_error = candidates.front().first;
  model::NamedModel winner = candidates.front().second;
  double runner_up_error = candidates.size() > 1 ? candidates[1].first : best_error + 10.0;
  std::string runner_up_name =
      candidates.size() > 1 ? candidates[1].second.name : "(none)";
  if (modeler_.has_fitted_model()) {
    const double refit_error =
        model::Reclassifier::mean_relative_error(modeler_.model(), clean);
    if (refit_error + 0.5 * config_.decision_margin < best_error) {
      // The refit is decisively better than every library curve: the job
      // genuinely matches no precharacterized type.
      winner = model::NamedModel{"online-refit", modeler_.model()};
      runner_up_error = best_error;
      runner_up_name = candidates.front().second.name;
      best_error = refit_error;
    }
  }

  const bool improves =
      best_error <= served_error * config_.reclassifier.improvement_factor;
  const bool decisive = runner_up_error - best_error >= config_.decision_margin;

  if (improves && decisive) {
    probing_ = false;
    served_model_ = winner.model;
    reclassified_to_ = winner.name;
    publish_model(now_s, served_model_, true);
    util::log_debug("job-endpoint",
                    job_name_ + ": feedback model '" + winner.name + "' replaces " +
                        classified_as_ + " (error " + std::to_string(best_error) +
                        " vs served " + std::to_string(served_error) + ")");
    return;
  }
  if (improves && config_.probe_enabled && !probing_) {
    probing_ = true;
    probe_level_ = 0;
    probe_next_flip_s_ = now_s;  // start dithering immediately
    util::log_debug("job-endpoint",
                    job_name_ + ": candidates ambiguous (best " +
                        std::to_string(best_error) + ", runner-up " +
                        std::to_string(runner_up_error) + "); probing caps");
  } else if (probing_ && now_s >= probe_log_next_s_) {
    probe_log_next_s_ = now_s + 15.0;
    util::log_debug("job-endpoint",
                    job_name_ + ": probing... best='" + winner.name + "' " +
                        std::to_string(best_error) + ", runner-up '" + runner_up_name +
                        "' " + std::to_string(runner_up_error) + ", clean_obs " +
                        std::to_string(clean.size()));
  }
}

void JobEndpointProcess::finish(double now_s) {
  reliable_.poll(now_s);
  JobGoodbyeMsg bye;
  bye.job_id = job_id_;
  bye.timestamp_s = now_s;
  reliable_.send(bye);
}

}  // namespace anor::cluster
