// Reliability decorator for the tier link.
//
// `MessageChannel::send()` can fail (socket backpressure, injected faults,
// a peer mid-restart) and the bare channels deliver whatever arrives, in
// whatever order.  ReliableChannel wraps any channel with the hardening
// both tiers need:
//
//   - outbound: every message is stamped with a per-channel sequence
//     number; failed sends land in a bounded outbox and are retried with
//     exponential backoff plus deterministic jitter (seeded, so emulated
//     runs stay reproducible).  The outbox preserves send order; when it
//     overflows, the oldest (most stale) message is dropped — the
//     protocol is state-carrying, so the newest budget/model always wins.
//   - inbound: duplicates and stale reorders (seq <= last seen) are
//     rejected; sequence gaps are counted.  A JobHello resets the window,
//     so a restarted peer with a fresh sequence space rejoins cleanly.
//
// All decisions run on virtual time supplied through poll(); the decorator
// never sleeps or reads a wall clock.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "cluster/transport.hpp"
#include "util/rng.hpp"

namespace anor::cluster {

struct ReliableChannelConfig {
  /// First retry delay after a failed send; doubles per attempt.
  double retry_initial_backoff_s = 0.5;
  double retry_max_backoff_s = 8.0;
  /// Fractional jitter applied to each backoff (+/- half the fraction).
  double retry_jitter_frac = 0.2;
  /// Outbox capacity; overflowing drops the oldest queued message.
  std::size_t max_outbox = 64;
  /// Stamp outbound messages with a monotonic per-channel sequence.
  bool stamp_seq = true;
  /// Drop inbound duplicates and stale reorders by sequence number.
  bool dedup = true;
  /// Seed for the (deterministic) retry jitter stream.
  std::uint64_t jitter_seed = 1;
};

class ReliableChannel final : public MessageChannel {
 public:
  /// Owning wrap (manager side: channels arrive by unique_ptr).
  ReliableChannel(std::unique_ptr<MessageChannel> owned,
                  ReliableChannelConfig config = {});
  /// Non-owning wrap (endpoint side: the channel outlives the process).
  ReliableChannel(MessageChannel& inner, ReliableChannelConfig config = {});

  /// Stamp, try to send, and on failure queue for retry.  Returns false
  /// only when the message could not even be queued (overflow dropped it).
  bool send(const Message& message) override;

  /// Flush due retries, then receive with duplicate/stale rejection.
  std::optional<Message> receive() override;

  bool connected() const override { return inner_->connected(); }

  /// Advance the retry clock and resend queued messages that are due.
  /// Call once per control-loop iteration.
  void poll(double now_s);

  std::size_t outbox_size() const { return outbox_.size(); }
  std::uint64_t last_seq_sent() const { return next_seq_; }
  std::uint64_t last_seq_seen() const { return last_seq_seen_; }
  const ReliableChannelConfig& config() const { return config_; }
  MessageChannel& inner() { return *inner_; }

 private:
  struct PendingSend {
    Message message;
    double next_attempt_s = 0.0;
    double backoff_s = 0.0;
    int attempts = 0;
  };

  void enqueue_failed(Message message);
  void flush(double now_s);
  double jittered(double backoff_s);

  std::unique_ptr<MessageChannel> owned_;
  MessageChannel* inner_;
  ReliableChannelConfig config_;
  util::Rng rng_;
  std::deque<PendingSend> outbox_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_seq_seen_ = 0;
  double now_s_ = 0.0;
};

}  // namespace anor::cluster
