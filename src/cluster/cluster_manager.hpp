// Cluster-tier power manager (paper Fig. 2: "Cluster Power Budgeter",
// 1 per cluster, on the head node).
//
// "The cluster-tier manager periodically reads cluster power targets from
// a file, receives messages from nodes running jobs, calculates how to
// distribute available power to jobs, and sends messages to inform each
// job-tier endpoint of the job's new power cap." (Sec. 4)
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "budget/budgeter.hpp"
#include "cluster/messages.hpp"
#include "cluster/transport.hpp"
#include "model/default_models.hpp"
#include "util/time_series.hpp"

namespace anor::cluster {

struct ClusterManagerConfig {
  /// Budget recompute / target refresh cadence, seconds.
  double control_period_s = 2.0;
  budget::BudgeterKind budgeter = budget::BudgeterKind::kEvenSlowdown;
  /// Initial model for jobs whose classified type is unknown.
  model::DefaultModelPolicy default_model = model::DefaultModelPolicy::kLeastSensitive;
  /// Accept model updates from the job tier (the feedback path).  When
  /// false, updates are ignored — the "misclassified, no feedback" case.
  bool accept_model_updates = true;
  /// Total cluster nodes and per-idle-node power, for headroom accounting
  /// (matches the platform's 2 x 18 W package idle draw).
  int cluster_nodes = 16;
  double idle_node_power_w = 36.0;

  /// Closed-loop tracking (paper Fig. 1: "Measured Power" flows up to the
  /// cluster tier): an integral term on (target - measured) compensates
  /// for allocation the open-loop budget cannot see — idle nodes, jobs in
  /// low-power setup/teardown, cap-vs-draw gaps.
  bool closed_loop = true;
  double integral_gain_per_s = 0.05;
  double correction_limit_w = 400.0;
};

/// Per-job state the manager tracks.
struct ManagedJob {
  std::string job_name;
  std::string classified_as;
  int nodes = 1;
  model::PowerPerfModel model;
  bool model_from_feedback = false;
  double last_sent_cap_w = -1.0;
  MessageChannel* channel = nullptr;
};

class ClusterManager {
 public:
  explicit ClusterManager(ClusterManagerConfig config);

  /// Power targets over time (watts); replaces any previous series.
  /// An empty optional clears tracking (budget = unconstrained).
  void set_power_targets(util::TimeSeries targets) { targets_ = std::move(targets); }
  /// Load targets from a JSON file of {"t_s": [...], "power_w": [...]}.
  void load_power_targets(const std::string& path);

  /// Attach (and take ownership of) the manager side of a job's channel.
  /// The manager releases it after the job's goodbye or when the peer
  /// disconnects.  Registration completes when the JobHello arrives.
  void attach_channel(std::unique_ptr<MessageChannel> channel);

  /// One manager iteration: drain job messages, and at the control
  /// cadence recompute budgets and push caps.
  void step(double now_s);

  /// Feed the facility's cluster power measurement (paper Sec. 5.4: the
  /// manager "periodically receives CPU power measurements").  Drives the
  /// closed-loop correction; a no-op when closed_loop is off or no target
  /// is set.
  void report_measured_power(double now_s, double measured_w);

  /// Current closed-loop correction, watts (diagnostic).
  double correction_w() const { return correction_w_; }

  /// Current target (zero-order hold); nullopt when no targets are set.
  std::optional<double> target_at(double now_s) const;

  std::size_t active_jobs() const { return jobs_.size(); }
  const std::map<int, ManagedJob>& jobs() const { return jobs_; }
  const ClusterManagerConfig& config() const { return config_; }

  /// Exposed for tests: compute the budget available to jobs at a target,
  /// after reserving idle-node power.
  double job_budget_at(double target_w) const;

 private:
  /// Returns true when the channel finished its lifecycle (job goodbye)
  /// and should be detached.
  bool handle(const Message& message, MessageChannel& channel);
  void rebudget(double now_s);
  model::PowerPerfModel initial_model_for(const std::string& classified_as) const;

  ClusterManagerConfig config_;
  std::unique_ptr<budget::Budgeter> budgeter_;
  util::TimeSeries targets_;
  std::vector<std::unique_ptr<MessageChannel>> channels_;
  std::map<int, ManagedJob> jobs_;
  double next_control_s_ = 0.0;
  double correction_w_ = 0.0;
  double last_measurement_s_ = -1.0;
};

/// Serialize/parse the power-target file format.
util::Json power_targets_to_json(const util::TimeSeries& targets);
util::TimeSeries power_targets_from_json(const util::Json& json);

}  // namespace anor::cluster
