// Cluster-tier power manager (paper Fig. 2: "Cluster Power Budgeter",
// 1 per cluster, on the head node).
//
// "The cluster-tier manager periodically reads cluster power targets from
// a file, receives messages from nodes running jobs, calculates how to
// distribute available power to jobs, and sends messages to inform each
// job-tier endpoint of the job's new power cap." (Sec. 4)
//
// Failure model: every attached channel is wrapped in a ReliableChannel
// (sequence stamping, retry with backoff, duplicate rejection).  Jobs
// hold a liveness lease refreshed by any message — heartbeats included —
// and a silent job is declared dead after `lease_s`: its budget is
// reclaimed and redistributed on the next control step, and a later
// JobHello rejoins it cleanly.  Feedback models carry a staleness TTL;
// when it lapses the manager falls back to the classified/default model
// rather than trusting a model nobody is refreshing.  The closed-loop
// integral term freezes while measured-power telemetry is stale or any
// job's liveness is in doubt, so a partition cannot wind it up.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "budget/budgeter.hpp"
#include "cluster/messages.hpp"
#include "cluster/reliable_channel.hpp"
#include "cluster/transport.hpp"
#include "model/default_models.hpp"
#include "util/time_series.hpp"

namespace anor::cluster {

struct ClusterManagerConfig {
  /// Budget recompute / target refresh cadence, seconds.
  double control_period_s = 2.0;
  budget::BudgeterKind budgeter = budget::BudgeterKind::kEvenSlowdown;
  /// When set, overrides `budgeter`: the policy registry's factory seam
  /// for custom (e.g. expression-DSL) budgeters.  The manager wraps the
  /// product in the same telemetry decorator make_budgeter applies.
  std::function<std::unique_ptr<budget::Budgeter>()> budgeter_factory;
  /// Initial model for jobs whose classified type is unknown.
  model::DefaultModelPolicy default_model = model::DefaultModelPolicy::kLeastSensitive;
  /// Accept model updates from the job tier (the feedback path).  When
  /// false, updates are ignored — the "misclassified, no feedback" case.
  bool accept_model_updates = true;
  /// Total cluster nodes and per-idle-node power, for headroom accounting
  /// (matches the platform's 2 x 18 W package idle draw).
  int cluster_nodes = 16;
  double idle_node_power_w = 36.0;

  /// Closed-loop tracking (paper Fig. 1: "Measured Power" flows up to the
  /// cluster tier): an integral term on (target - measured) compensates
  /// for allocation the open-loop budget cannot see — idle nodes, jobs in
  /// low-power setup/teardown, cap-vs-draw gaps.
  bool closed_loop = true;
  double integral_gain_per_s = 0.05;
  double correction_limit_w = 400.0;
  /// Freeze the integral when consecutive power measurements are further
  /// apart than this (stale telemetry must not wind it up).
  double measurement_stale_s = 6.0;

  /// Liveness: manager-to-endpoint heartbeat cadence (0 disables).
  double heartbeat_period_s = 2.0;
  /// A job silent for longer than this is declared dead and its budget
  /// reclaimed (0 disables lease expiry).
  double lease_s = 12.0;
  /// A feedback model older than this reverts to the classified/default
  /// model (0 disables the TTL).  Endpoints republish their served model
  /// periodically to keep a live model fresh.
  double model_ttl_s = 60.0;
  /// Retry/backoff/dedup settings applied to every attached channel.
  ReliableChannelConfig retry;
};

/// Per-job state the manager tracks.
struct ManagedJob {
  std::string job_name;
  std::string classified_as;
  int nodes = 1;
  model::PowerPerfModel model;
  bool model_from_feedback = false;
  double last_sent_cap_w = -1.0;
  MessageChannel* channel = nullptr;
  /// Liveness lease: virtual time any message from this job last arrived.
  double last_heard_s = 0.0;
  /// When the current (feedback) model was last refreshed.
  double model_updated_s = 0.0;
};

class ClusterManager {
 public:
  explicit ClusterManager(ClusterManagerConfig config);

  /// Power targets over time (watts); replaces any previous series.
  /// An empty optional clears tracking (budget = unconstrained).
  void set_power_targets(util::TimeSeries targets) { targets_ = std::move(targets); }
  /// Load targets from a JSON file of {"t_s": [...], "power_w": [...]}.
  void load_power_targets(const std::string& path);

  /// Attach (and take ownership of) the manager side of a job's channel;
  /// it is wrapped in a ReliableChannel internally.  The manager releases
  /// it after the job's goodbye or when the peer disconnects.
  /// Registration completes when the JobHello arrives.
  void attach_channel(std::unique_ptr<MessageChannel> channel);

  /// One manager iteration: drain job messages, expire dead leases and
  /// stale models, and at the control cadence recompute budgets, push
  /// caps, and heartbeat the endpoints.
  void step(double now_s);

  /// Feed the facility's cluster power measurement (paper Sec. 5.4: the
  /// manager "periodically receives CPU power measurements").  Drives the
  /// closed-loop correction; a no-op when closed_loop is off or no target
  /// is set.  Stale measurements freeze the integral instead of winding
  /// it up.
  void report_measured_power(double now_s, double measured_w);

  /// Current closed-loop correction, watts (diagnostic).
  double correction_w() const { return correction_w_; }

  /// Current target (zero-order hold); nullopt when no targets are set.
  std::optional<double> target_at(double now_s) const;

  std::size_t active_jobs() const { return jobs_.size(); }
  const std::map<int, ManagedJob>& jobs() const { return jobs_; }
  const ClusterManagerConfig& config() const { return config_; }

  /// Jobs whose lease has been silent for over half its term (diagnostic;
  /// also freezes the closed-loop integral).
  bool liveness_suspect() const { return liveness_suspect_; }
  /// Jobs declared dead over the manager's lifetime.
  std::uint64_t leases_expired() const { return leases_expired_; }

  /// Exposed for tests: compute the budget available to jobs at a target,
  /// after reserving idle-node power.
  double job_budget_at(double target_w) const;

 private:
  /// Returns true when the channel finished its lifecycle (job goodbye)
  /// and should be detached.
  bool handle(const Message& message, MessageChannel& channel, double now_s);
  void expire_leases(double now_s);
  void expire_stale_models(double now_s);
  void send_heartbeats(double now_s);
  void rebudget(double now_s);
  model::PowerPerfModel initial_model_for(const std::string& classified_as) const;

  ClusterManagerConfig config_;
  std::unique_ptr<budget::Budgeter> budgeter_;
  util::TimeSeries targets_;
  std::vector<std::unique_ptr<ReliableChannel>> channels_;
  std::map<int, ManagedJob> jobs_;
  double next_control_s_ = 0.0;
  double next_heartbeat_s_ = 0.0;
  double correction_w_ = 0.0;
  double last_measurement_s_ = -1.0;
  bool liveness_suspect_ = false;
  std::uint64_t leases_expired_ = 0;
  std::uint64_t channels_attached_ = 0;
};

/// Serialize/parse the power-target file format.
util::Json power_targets_to_json(const util::TimeSeries& targets);
util::TimeSeries power_targets_from_json(const util::Json& json);

}  // namespace anor::cluster
