#include "cluster/reliable_channel.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/prof/prof.hpp"
#include "util/logging.hpp"

namespace anor::cluster {

namespace {

telemetry::Counter& counter(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name);
}

}  // namespace

ReliableChannel::ReliableChannel(std::unique_ptr<MessageChannel> owned,
                                 ReliableChannelConfig config)
    : owned_(std::move(owned)),
      inner_(owned_.get()),
      config_(config),
      rng_(config.jitter_seed) {}

ReliableChannel::ReliableChannel(MessageChannel& inner, ReliableChannelConfig config)
    : inner_(&inner), config_(config), rng_(config.jitter_seed) {}

double ReliableChannel::jittered(double backoff_s) {
  if (config_.retry_jitter_frac <= 0.0) return backoff_s;
  const double spread = config_.retry_jitter_frac * backoff_s;
  return backoff_s + rng_.uniform(-0.5 * spread, 0.5 * spread);
}

void ReliableChannel::enqueue_failed(Message message) {
  static auto& failed = counter("transport.send_failed");
  static auto& queued = counter("retry.queued");
  static auto& dropped = counter("transport.outbox_dropped");
  failed.inc();
  if (outbox_.size() >= config_.max_outbox) {
    outbox_.pop_front();
    dropped.inc();
    util::log_warn("reliable-channel", "outbox full; dropped oldest queued message");
  }
  PendingSend pending;
  pending.message = std::move(message);
  pending.backoff_s = config_.retry_initial_backoff_s;
  pending.next_attempt_s = now_s_ + jittered(pending.backoff_s);
  pending.attempts = 1;
  outbox_.push_back(std::move(pending));
  queued.inc();
}

bool ReliableChannel::send(const Message& message) {
  ANOR_PROF_SCOPE("channel.send");
  Message stamped = message;
  if (config_.stamp_seq) set_seq(stamped, ++next_seq_);
  // Preserve order: while older messages wait on retry, new ones queue
  // behind them instead of overtaking.
  if (!outbox_.empty()) {
    enqueue_failed(std::move(stamped));
    flush(now_s_);
    return true;
  }
  if (inner_->send(stamped)) return true;
  util::log_warn("reliable-channel", std::string("send of '") +
                                         std::string(type_name_of(stamped)) +
                                         "' failed; queued for retry");
  enqueue_failed(std::move(stamped));
  return true;
}

void ReliableChannel::flush(double now_s) {
  static auto& attempts = counter("retry.attempts");
  static auto& delivered = counter("retry.delivered");
  while (!outbox_.empty()) {
    PendingSend& head = outbox_.front();
    if (head.next_attempt_s > now_s) break;
    attempts.inc();
    if (inner_->send(head.message)) {
      delivered.inc();
      outbox_.pop_front();
      continue;
    }
    ++head.attempts;
    head.backoff_s = std::min(head.backoff_s * 2.0, config_.retry_max_backoff_s);
    head.next_attempt_s = now_s + jittered(head.backoff_s);
    break;  // keep order: later messages wait for the head
  }
}

void ReliableChannel::poll(double now_s) {
  ANOR_PROF_SCOPE("channel.poll");
  now_s_ = std::max(now_s_, now_s);
  flush(now_s_);
}

std::optional<Message> ReliableChannel::receive() {
  ANOR_PROF_SCOPE("channel.receive");
  flush(now_s_);
  static auto& dups = counter("transport.dup_dropped");
  static auto& gaps = counter("transport.seq_gaps");
  while (auto message = inner_->receive()) {
    const std::uint64_t seq = seq_of(*message);
    if (!config_.dedup || seq == 0) return message;
    // A hello starts a fresh sequence space (peer restart / rejoin).
    if (std::holds_alternative<JobHelloMsg>(*message)) {
      last_seq_seen_ = seq;
      return message;
    }
    if (seq <= last_seq_seen_) {
      dups.inc();
      continue;
    }
    if (seq != last_seq_seen_ + 1) gaps.inc();
    last_seq_seen_ = seq;
    return message;
  }
  return std::nullopt;
}

}  // namespace anor::cluster
