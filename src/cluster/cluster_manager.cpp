#include "cluster/cluster_manager.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "workload/job_type.hpp"

namespace anor::cluster {

ClusterManager::ClusterManager(ClusterManagerConfig config) : config_(config) {
  budgeter_ = config_.budgeter_factory
                  ? budget::instrument_budgeter(config_.budgeter_factory())
                  : budget::make_budgeter(config_.budgeter);
}

void ClusterManager::load_power_targets(const std::string& path) {
  targets_ = power_targets_from_json(util::load_json_file(path));
}

void ClusterManager::attach_channel(std::unique_ptr<MessageChannel> channel) {
  ReliableChannelConfig retry = config_.retry;
  // Decorrelate jitter streams across channels while staying deterministic
  // for a fixed attach order.
  retry.jitter_seed = util::splitmix64(retry.jitter_seed ^ (channels_attached_ + 1));
  ++channels_attached_;
  channels_.push_back(std::make_unique<ReliableChannel>(std::move(channel), retry));
}

std::optional<double> ClusterManager::target_at(double now_s) const {
  if (targets_.empty()) return std::nullopt;
  return targets_.sample_at(now_s);
}

model::PowerPerfModel ClusterManager::initial_model_for(const std::string& classified_as) const {
  if (workload::try_find_job_type(classified_as)) {
    return model::model_for_class(classified_as);
  }
  return model::default_model(config_.default_model);
}

bool ClusterManager::handle(const Message& message, MessageChannel& channel, double now_s) {
  auto& registry = telemetry::MetricsRegistry::global();
  // Any message refreshes the sender's liveness lease.
  const auto lease_it = jobs_.find(job_id_of(message));
  if (lease_it != jobs_.end()) lease_it->second.last_heard_s = now_s;

  if (const auto* hello = std::get_if<JobHelloMsg>(&message)) {
    static auto& hellos = registry.counter("cluster.manager.msgs", {{"type", "hello"}});
    hellos.inc();
    const bool rejoin = jobs_.count(hello->job_id) != 0;
    ManagedJob job;
    job.job_name = hello->job_name;
    job.classified_as = hello->classified_as;
    job.nodes = hello->nodes;
    job.model = initial_model_for(hello->classified_as);
    job.channel = &channel;
    job.last_heard_s = now_s;
    job.model_updated_s = now_s;
    jobs_[hello->job_id] = std::move(job);
    // Budget the newcomer right away instead of waiting out the period.
    next_control_s_ = 0.0;
    if (rejoin) {
      static auto& rejoins = registry.counter("liveness.rejoins");
      rejoins.inc();
      util::log_info("cluster-manager", "job " + hello->job_name + " rejoined");
    }
    util::log_debug("cluster-manager", "registered job " + hello->job_name + " as " +
                                           hello->classified_as);
  } else if (const auto* update = std::get_if<ModelUpdateMsg>(&message)) {
    static auto& updates =
        registry.counter("cluster.manager.msgs", {{"type", "model_update"}});
    updates.inc();
    if (!config_.accept_model_updates) return false;
    const auto it = jobs_.find(update->job_id);
    if (it == jobs_.end()) return false;
    const model::PowerPerfModel incoming(update->a, update->b, update->c, update->p_min_w,
                                         update->p_max_w);
    it->second.model_updated_s = now_s;
    if (it->second.model_from_feedback == update->from_feedback &&
        incoming.a() == it->second.model.a() && incoming.b() == it->second.model.b() &&
        incoming.c() == it->second.model.c()) {
      return false;  // periodic republish of the same model: TTL refresh only
    }
    it->second.model = incoming;
    it->second.model_from_feedback = update->from_feedback;
    // Force a cap refresh on the next control step.
    it->second.last_sent_cap_w = -1.0;
  } else if (const auto* hb = std::get_if<HeartbeatMsg>(&message)) {
    static auto& beats = registry.counter("liveness.heartbeats_received");
    beats.inc();
    if (jobs_.count(hb->job_id) == 0) {
      // A heartbeat from a job we expired: the endpoint is alive but not
      // registered.  It will notice our silence and re-send its hello.
      static auto& orphans = registry.counter("liveness.orphan_heartbeats");
      orphans.inc();
    }
  } else if (const auto* bye = std::get_if<JobGoodbyeMsg>(&message)) {
    static auto& byes = registry.counter("cluster.manager.msgs", {{"type", "goodbye"}});
    byes.inc();
    jobs_.erase(bye->job_id);
    return true;  // channel lifecycle complete
  }
  // PowerBudgetMsg is outbound-only; ignore if echoed.
  return false;
}

void ClusterManager::expire_leases(double now_s) {
  if (config_.lease_s <= 0.0) return;
  auto& registry = telemetry::MetricsRegistry::global();
  static auto& expired = registry.counter("liveness.lease_expired");
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    ManagedJob& job = it->second;
    if (now_s - job.last_heard_s <= config_.lease_s) {
      ++it;
      continue;
    }
    expired.inc();
    ++leases_expired_;
    telemetry::TraceRecorder::global().instant("lease_expired", "liveness", now_s,
                                               static_cast<double>(it->first));
    util::log_warn("cluster-manager",
                   "job " + job.job_name + " silent for over " +
                       std::to_string(config_.lease_s) +
                       " s; declaring dead and reclaiming its budget");
    registry.gauge("cluster.manager.job_cap_w", {{"job", std::to_string(it->first)}})
        .set(0.0);
    it = jobs_.erase(it);
    // Redistribute the reclaimed budget immediately.
    next_control_s_ = 0.0;
  }
}

void ClusterManager::expire_stale_models(double now_s) {
  if (config_.model_ttl_s <= 0.0) return;
  static auto& expired =
      telemetry::MetricsRegistry::global().counter("liveness.model_expired");
  for (auto& [id, job] : jobs_) {
    if (!job.model_from_feedback) continue;
    if (now_s - job.model_updated_s <= config_.model_ttl_s) continue;
    expired.inc();
    telemetry::TraceRecorder::global().instant("model_expired", "liveness", now_s,
                                               static_cast<double>(id));
    util::log_warn("cluster-manager", "job " + job.job_name +
                                          ": feedback model stale; reverting to the " +
                                          job.classified_as + " classification");
    job.model = initial_model_for(job.classified_as);
    job.model_from_feedback = false;
    job.model_updated_s = now_s;
    job.last_sent_cap_w = -1.0;
  }
}

void ClusterManager::send_heartbeats(double now_s) {
  if (config_.heartbeat_period_s <= 0.0) return;
  if (now_s + 1e-12 < next_heartbeat_s_) return;
  next_heartbeat_s_ = now_s + config_.heartbeat_period_s;
  static auto& beats =
      telemetry::MetricsRegistry::global().counter("liveness.heartbeats_sent");
  for (auto& [id, job] : jobs_) {
    if (job.channel == nullptr) continue;
    HeartbeatMsg beat;
    beat.job_id = id;
    beat.timestamp_s = now_s;
    // job.channel is a ReliableChannel: a failed send is queued for
    // retry, so the return value carries no signal here.
    (void)job.channel->send(beat);
    beats.inc();
  }
}

void ClusterManager::step(double now_s) {
  for (auto it = channels_.begin(); it != channels_.end();) {
    ReliableChannel* channel = it->get();
    channel->poll(now_s);
    bool done = false;
    while (auto message = channel->receive()) {
      done = handle(*message, *channel, now_s) || done;
    }
    // Drop channels whose job said goodbye or whose peer vanished; any
    // job still referencing the channel loses its send path (and its
    // lease keeps counting down toward reclamation).
    if (done || !channel->connected()) {
      for (auto& [id, job] : jobs_) {
        if (job.channel == channel) job.channel = nullptr;
      }
      it = channels_.erase(it);
    } else {
      ++it;
    }
  }

  expire_leases(now_s);

  // Integral protection: while any job is past half its lease with no
  // word, the measured-power gap is dominated by the partition, not by
  // allocation error — freeze the integrator until liveness resolves.
  liveness_suspect_ = false;
  const double suspect_after =
      config_.lease_s > 0.0 ? 0.5 * config_.lease_s
                            : (config_.heartbeat_period_s > 0.0
                                   ? 3.0 * config_.heartbeat_period_s
                                   : 0.0);
  if (suspect_after > 0.0) {
    for (const auto& [id, job] : jobs_) {
      if (now_s - job.last_heard_s > suspect_after) {
        liveness_suspect_ = true;
        break;
      }
    }
  }

  send_heartbeats(now_s);
  if (now_s + 1e-12 >= next_control_s_) {
    expire_stale_models(now_s);
    rebudget(now_s);
    next_control_s_ = now_s + config_.control_period_s;
  }
}

void ClusterManager::report_measured_power(double now_s, double measured_w) {
  if (!config_.closed_loop) return;
  const std::optional<double> target = target_at(now_s);
  if (!target) return;
  if (last_measurement_s_ >= 0.0 && now_s > last_measurement_s_) {
    const double dt = now_s - last_measurement_s_;
    const bool stale =
        config_.measurement_stale_s > 0.0 && dt > config_.measurement_stale_s;
    if (stale || liveness_suspect_) {
      static auto& frozen =
          telemetry::MetricsRegistry::global().counter("cluster.manager.integral_frozen");
      frozen.inc();
    } else {
      correction_w_ += config_.integral_gain_per_s * (*target - measured_w) * dt;
      correction_w_ = std::clamp(correction_w_, -config_.correction_limit_w,
                                 config_.correction_limit_w);
      static auto& correction =
          telemetry::MetricsRegistry::global().gauge("cluster.manager.correction_w");
      correction.set(correction_w_);
    }
  }
  last_measurement_s_ = now_s;
}

double ClusterManager::job_budget_at(double target_w) const {
  int busy_nodes = 0;
  for (const auto& [id, job] : jobs_) busy_nodes += job.nodes;
  const int idle_nodes = std::max(0, config_.cluster_nodes - busy_nodes);
  return target_w - idle_nodes * config_.idle_node_power_w;
}

void ClusterManager::rebudget(double now_s) {
  if (jobs_.empty()) return;
  auto& registry = telemetry::MetricsRegistry::global();
  static auto& rebudgets = registry.counter("cluster.manager.rebudgets");
  rebudgets.inc();
  telemetry::TraceRecorder::global().instant("rebudget", "cluster", now_s,
                                             static_cast<double>(jobs_.size()));
  const std::optional<double> target = target_at(now_s);

  std::map<int, double> caps;
  if (!target) {
    // No power objective: everyone runs uncapped.
    for (const auto& [id, job] : jobs_) caps[id] = job.model.p_max_w();
  } else {
    std::vector<budget::JobPowerProfile> profiles;
    profiles.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) {
      budget::JobPowerProfile profile;
      profile.job_id = id;
      profile.nodes = job.nodes;
      profile.model = job.model;
      profiles.push_back(std::move(profile));
    }
    const budget::BudgetResult result = budgeter_->distribute(
        profiles, std::max(job_budget_at(*target) + correction_w_, 0.0));
    caps = result.node_cap_w;
  }

  static auto& no_channel = registry.counter("cluster.manager.send_no_channel");
  for (auto& [id, job] : jobs_) {
    const auto it = caps.find(id);
    if (it == caps.end()) continue;
    if (job.last_sent_cap_w >= 0.0 && std::abs(it->second - job.last_sent_cap_w) < 0.25) {
      continue;  // suppress no-op chatter
    }
    if (job.channel == nullptr) {
      // Disconnected but not yet lease-expired: nothing to send on; the
      // lease will reclaim the budget if the peer never comes back.
      no_channel.inc();
      continue;
    }
    PowerBudgetMsg msg;
    msg.job_id = id;
    msg.node_cap_w = it->second;
    msg.timestamp_s = now_s;
    if (job.channel->send(msg)) {
      job.last_sent_cap_w = it->second;
      static auto& budget_msgs = registry.counter("cluster.manager.budget_msgs_sent");
      budget_msgs.inc();
      registry.gauge("cluster.manager.job_cap_w", {{"job", std::to_string(id)}})
          .set(it->second);
    } else {
      static auto& failed = registry.counter("cluster.manager.budget_send_failed");
      failed.inc();
      util::log_warn("cluster-manager",
                     "budget send to " + job.job_name + " failed; will retry");
    }
  }
}

util::Json power_targets_to_json(const util::TimeSeries& targets) {
  util::JsonArray t;
  util::JsonArray p;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    t.push_back(util::Json(targets.times()[i]));
    p.push_back(util::Json(targets.values()[i]));
  }
  util::JsonObject obj;
  obj["t_s"] = util::Json(std::move(t));
  obj["power_w"] = util::Json(std::move(p));
  return util::Json(std::move(obj));
}

util::TimeSeries power_targets_from_json(const util::Json& json) {
  const util::JsonArray& t = json.at("t_s").as_array();
  const util::JsonArray& p = json.at("power_w").as_array();
  if (t.size() != p.size()) throw util::ConfigError("power targets: array size mismatch");
  util::TimeSeries series;
  for (std::size_t i = 0; i < t.size(); ++i) {
    series.add(t[i].as_number(), p[i].as_number());
  }
  return series;
}

}  // namespace anor::cluster
