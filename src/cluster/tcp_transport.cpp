#include "cluster/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace anor::cluster {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd) {
  set_nonblocking(fd_);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpChannel::~TcpChannel() { close_socket(); }

void TcpChannel::close_socket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpChannel::send(const Message& message) {
  if (fd_ < 0) return false;
  const std::string payload = encode_framed_text(message);
  std::vector<std::uint8_t> frame(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame[0] = static_cast<std::uint8_t>(len >> 24);
  frame[1] = static_cast<std::uint8_t>(len >> 16);
  frame[2] = static_cast<std::uint8_t>(len >> 8);
  frame[3] = static_cast<std::uint8_t>(len);
  std::memcpy(frame.data() + 4, payload.data(), payload.size());

  // Bounded write: a full socket buffer is waited out with poll() rather
  // than spun on, and a peer that stays wedged past the budget gets the
  // socket closed — once part of a frame is on the wire, giving up
  // mid-frame would desynchronize the length-prefixed stream anyway.
  std::size_t sent = 0;
  int wait_budget_ms = kSendBudgetMs;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (wait_budget_ms <= 0) {
        static auto& timeouts = telemetry::MetricsRegistry::global().counter(
            "cluster.transport.tcp.send_timeouts");
        timeouts.inc();
        util::log_warn("tcp-transport", "send stalled past budget; closing socket");
        close_socket();
        return false;
      }
      const int slice_ms = wait_budget_ms < 50 ? wait_budget_ms : 50;
      pollfd pfd{fd_, POLLOUT, 0};
      ::poll(&pfd, 1, slice_ms);
      wait_budget_ms -= slice_ms;
      continue;
    }
    close_socket();
    return false;
  }
  static auto& messages =
      telemetry::MetricsRegistry::global().counter("cluster.transport.tcp.messages_sent");
  static auto& bytes =
      telemetry::MetricsRegistry::global().counter("cluster.transport.tcp.bytes_sent");
  messages.inc();
  bytes.inc(frame.size());
  return true;
}

bool TcpChannel::wait_readable(int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void TcpChannel::pump_input() {
  if (fd_ < 0) return;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      in_buffer_.insert(in_buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      close_socket();  // peer closed
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_socket();
    return;
  }
}

std::optional<Message> TcpChannel::receive() {
  pump_input();
  // A frame that fails the checksum or fails to parse is dropped and the
  // next one tried; a hostile length prefix kills the connection (there
  // is no way to find the next frame boundary after that).
  while (in_buffer_.size() >= 4) {
    const std::uint32_t len = (static_cast<std::uint32_t>(in_buffer_[0]) << 24) |
                              (static_cast<std::uint32_t>(in_buffer_[1]) << 16) |
                              (static_cast<std::uint32_t>(in_buffer_[2]) << 8) |
                              static_cast<std::uint32_t>(in_buffer_[3]);
    if (len > kMaxFrameBytes) {
      static auto& rejected = telemetry::MetricsRegistry::global().counter(
          "cluster.transport.tcp.frames_rejected");
      rejected.inc();
      util::log_warn("tcp-transport",
                     "frame length " + std::to_string(len) + " exceeds limit; closing");
      close_socket();
      in_buffer_.clear();
      return std::nullopt;
    }
    if (in_buffer_.size() < 4 + len) return std::nullopt;
    const std::string payload(in_buffer_.begin() + 4, in_buffer_.begin() + 4 + len);
    in_buffer_.erase(in_buffer_.begin(), in_buffer_.begin() + 4 + len);
    static auto& messages = telemetry::MetricsRegistry::global().counter(
        "cluster.transport.tcp.messages_received");
    static auto& bytes = telemetry::MetricsRegistry::global().counter(
        "cluster.transport.tcp.bytes_received");
    messages.inc();
    bytes.inc(4 + static_cast<std::uint64_t>(len));
    try {
      return decode_framed_text(payload);
    } catch (const util::TransportError& err) {
      static auto& rejected = telemetry::MetricsRegistry::global().counter(
          "cluster.transport.tcp.frames_rejected");
      rejected.inc();
      util::log_warn("tcp-transport", std::string("dropping bad frame: ") + err.what());
    }
  }
  return std::nullopt;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw util::TransportError("TcpListener: socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    throw util::TransportError("TcpListener: bind() failed");
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 16) != 0) {
    ::close(fd_);
    throw util::TransportError("TcpListener: listen() failed");
  }
  set_nonblocking(fd_);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpChannel> TcpListener::accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;
  return std::make_unique<TcpChannel>(client);
}

std::unique_ptr<TcpChannel> tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw util::TransportError("tcp_connect: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw util::TransportError("tcp_connect: connect() failed");
  }
  return std::make_unique<TcpChannel>(fd);
}

}  // namespace anor::cluster
