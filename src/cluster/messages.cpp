#include "cluster/messages.hpp"

#include "util/error.hpp"

namespace anor::cluster {

util::Json encode(const Message& message) {
  util::JsonObject obj;
  std::visit(
      [&obj](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, JobHelloMsg>) {
          obj["type"] = util::Json("hello");
          obj["job_id"] = util::Json(msg.job_id);
          obj["job_name"] = util::Json(msg.job_name);
          obj["classified_as"] = util::Json(msg.classified_as);
          obj["nodes"] = util::Json(msg.nodes);
        } else if constexpr (std::is_same_v<T, PowerBudgetMsg>) {
          obj["type"] = util::Json("budget");
          obj["job_id"] = util::Json(msg.job_id);
          obj["node_cap_w"] = util::Json(msg.node_cap_w);
        } else if constexpr (std::is_same_v<T, ModelUpdateMsg>) {
          obj["type"] = util::Json("model");
          obj["job_id"] = util::Json(msg.job_id);
          obj["a"] = util::Json(msg.a);
          obj["b"] = util::Json(msg.b);
          obj["c"] = util::Json(msg.c);
          obj["p_min_w"] = util::Json(msg.p_min_w);
          obj["p_max_w"] = util::Json(msg.p_max_w);
          obj["r2"] = util::Json(msg.r2);
          obj["from_feedback"] = util::Json(msg.from_feedback);
        } else if constexpr (std::is_same_v<T, JobGoodbyeMsg>) {
          obj["type"] = util::Json("goodbye");
          obj["job_id"] = util::Json(msg.job_id);
        } else if constexpr (std::is_same_v<T, HeartbeatMsg>) {
          obj["type"] = util::Json("hb");
          obj["job_id"] = util::Json(msg.job_id);
        }
        obj["t"] = util::Json(msg.timestamp_s);
        if (msg.seq != 0) obj["seq"] = util::Json(static_cast<double>(msg.seq));
      },
      message);
  return util::Json(std::move(obj));
}

Message decode(const util::Json& json) {
  const std::string& type = json.at("type").as_string();
  const auto seq = static_cast<std::uint64_t>(json.number_or("seq", 0.0));
  if (type == "hello") {
    JobHelloMsg msg;
    msg.job_id = static_cast<int>(json.at("job_id").as_int());
    msg.job_name = json.at("job_name").as_string();
    msg.classified_as = json.at("classified_as").as_string();
    msg.nodes = static_cast<int>(json.at("nodes").as_int());
    msg.timestamp_s = json.at("t").as_number();
    msg.seq = seq;
    return msg;
  }
  if (type == "budget") {
    PowerBudgetMsg msg;
    msg.job_id = static_cast<int>(json.at("job_id").as_int());
    msg.node_cap_w = json.at("node_cap_w").as_number();
    msg.timestamp_s = json.at("t").as_number();
    msg.seq = seq;
    return msg;
  }
  if (type == "model") {
    ModelUpdateMsg msg;
    msg.job_id = static_cast<int>(json.at("job_id").as_int());
    msg.a = json.at("a").as_number();
    msg.b = json.at("b").as_number();
    msg.c = json.at("c").as_number();
    msg.p_min_w = json.at("p_min_w").as_number();
    msg.p_max_w = json.at("p_max_w").as_number();
    msg.r2 = json.at("r2").as_number();
    msg.from_feedback = json.bool_or("from_feedback", false);
    msg.timestamp_s = json.at("t").as_number();
    msg.seq = seq;
    return msg;
  }
  if (type == "goodbye") {
    JobGoodbyeMsg msg;
    msg.job_id = static_cast<int>(json.at("job_id").as_int());
    msg.timestamp_s = json.at("t").as_number();
    msg.seq = seq;
    return msg;
  }
  if (type == "hb") {
    HeartbeatMsg msg;
    msg.job_id = static_cast<int>(json.at("job_id").as_int());
    msg.timestamp_s = json.at("t").as_number();
    msg.seq = seq;
    return msg;
  }
  throw util::ConfigError("decode: unknown message type '" + type + "'");
}

std::string encode_text(const Message& message) { return encode(message).dump(); }

Message decode_text(const std::string& text) { return decode(util::Json::parse(text)); }

int job_id_of(const Message& message) {
  return std::visit([](const auto& msg) { return msg.job_id; }, message);
}

double timestamp_of(const Message& message) {
  return std::visit([](const auto& msg) { return msg.timestamp_s; }, message);
}

std::uint64_t seq_of(const Message& message) {
  return std::visit([](const auto& msg) { return msg.seq; }, message);
}

void set_seq(Message& message, std::uint64_t seq) {
  std::visit([seq](auto& msg) { msg.seq = seq; }, message);
}

std::string_view type_name_of(const Message& message) {
  return std::visit(
      [](const auto& msg) -> std::string_view {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, JobHelloMsg>) return "hello";
        if constexpr (std::is_same_v<T, PowerBudgetMsg>) return "budget";
        if constexpr (std::is_same_v<T, ModelUpdateMsg>) return "model";
        if constexpr (std::is_same_v<T, JobGoodbyeMsg>) return "goodbye";
        if constexpr (std::is_same_v<T, HeartbeatMsg>) return "hb";
        return "unknown";
      },
      message);
}

std::uint32_t message_checksum(std::string_view payload_text) {
  std::uint32_t h = 0x811c9dc5u;
  for (char c : payload_text) {
    h ^= static_cast<std::uint32_t>(static_cast<unsigned char>(c));
    h *= 0x01000193u;
  }
  return h;
}

std::string encode_framed_text(const Message& message) {
  const std::string payload = encode_text(message);
  util::JsonObject frame;
  frame["crc"] = util::Json(static_cast<double>(message_checksum(payload)));
  frame["msg"] = encode(message);
  return util::Json(std::move(frame)).dump();
}

Message decode_framed_text(const std::string& text) {
  util::Json json;
  try {
    json = util::Json::parse(text);
  } catch (const util::ConfigError& error) {
    throw util::TransportError(std::string("corrupt frame: ") + error.what());
  }
  if (!json.is_object()) throw util::TransportError("corrupt frame: not an object");
  try {
    // Legacy/unframed texts carry the message at the top level.
    if (json.contains("type")) return decode(json);
    const auto expected = static_cast<std::uint32_t>(json.at("crc").as_number());
    const std::string payload = json.at("msg").dump();
    if (message_checksum(payload) != expected) {
      throw util::TransportError("corrupt frame: checksum mismatch");
    }
    return decode(json.at("msg"));
  } catch (const util::TransportError&) {
    throw;
  } catch (const std::exception& error) {
    throw util::TransportError(std::string("corrupt frame: ") + error.what());
  }
}

}  // namespace anor::cluster
