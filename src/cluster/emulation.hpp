// Emulated 16-node cluster running the full ANOR stack end to end.
//
// This is the "real cluster" substitute: every control-plane component is
// the real implementation — GEOPM-like agents reading emulated RAPL MSRs,
// per-job endpoint processes with online modelers, the head-node cluster
// manager with its budgeter, message channels between the tiers — and only
// the silicon is a model.  A discrete-time engine advances the hardware
// and invokes each component at its own cadence on the shared virtual
// clock, so hour-long scenarios (Fig. 9/10) run in well under a second of
// wall time while exercising the same code paths a deployment would.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_manager.hpp"
#include "cluster/job_endpoint.hpp"
#include "cluster/transport.hpp"
#include "engine/discrete_engine.hpp"
#include "engine/scenario.hpp"
#include "geopm/controller.hpp"
#include "platform/cluster_hw.hpp"
#include "sched/aqa_scheduler.hpp"
#include "sched/qos.hpp"
#include "telemetry/artifact.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time_series.hpp"
#include "workload/schedule.hpp"

namespace anor::cluster {

struct EmulationConfig {
  int node_count = 16;
  platform::NodeConfig node;
  /// Node-to-node performance variation sigma (0 disables).
  double perf_variation_sigma = 0.0;

  /// Hardware/engine step and power-log cadence, virtual seconds.
  double step_s = 0.25;
  double log_period_s = 1.0;

  ClusterManagerConfig manager;
  JobEndpointConfig endpoint;
  geopm::ControllerConfig controller;
  sched::SchedulerConfig scheduler;  // cluster_nodes overwritten from node_count
  sched::QosConstraint qos;

  /// Jobs whose *true* type name appears here execute as multi-phase
  /// kernels with the given profiles instead of their single-profile
  /// curve (paper Sec. 8: jobs with several power-sensitivity profiles).
  std::map<std::string, std::vector<workload::JobPhase>> phase_overrides;

  double inproc_latency_s = 0.01;
  std::uint64_t seed = 1;
  /// Hard stop (guards against schedules that cannot drain).
  double max_duration_s = 6.0 * 3600.0;
};

/// Both backends share the engine's record and result types; the old
/// cluster-local names remain as aliases.
using CompletedJob = engine::CompletedJob;
using EmulationResult = engine::RunResult;

/// Unconstrained runtime of a job type under the emulation's kernel
/// configuration (setup + uncapped compute + teardown).
double uncapped_runtime_s(const workload::JobType& type,
                          const workload::KernelConfig& kernel);

class EmulatedCluster {
 public:
  /// Wraps a tier channel at creation time (fault injection decorates
  /// here).  `manager_side` distinguishes the two directions of a pair.
  using ChannelDecorator = std::function<std::unique_ptr<MessageChannel>(
      std::unique_ptr<MessageChannel> inner, int job_id, bool manager_side)>;
  /// Invoked once per engine step after jobs are admitted/started and
  /// before the control stack runs (fault schedules fire here).
  using StepHook = std::function<void(EmulatedCluster& cluster, double now_s)>;

  EmulatedCluster(EmulationConfig config, workload::Schedule schedule);
  /// Unbinds the global trace recorder from this run's clock.
  ~EmulatedCluster();
  /// Movable so factories can return by value (step() re-binds the trace
  /// clock, so a move before the run starts is safe).
  EmulatedCluster(EmulatedCluster&&) = default;

  /// Time-varying cluster power targets (watts).  Optional: without them
  /// the cluster runs unconstrained.
  void set_power_targets(util::TimeSeries targets);

  /// Sample the given artifact writer at the power-log cadence for the
  /// rest of the run.  The writer must outlive the cluster (or be
  /// detached with nullptr); the caller finalizes it.
  void attach_artifacts(telemetry::RunArtifactWriter* artifacts) { artifacts_ = artifacts; }

  /// Run until the schedule drains (or max_duration_s).
  EmulationResult run();

  /// Single-step interface for tests.  Returns false when finished.
  bool step();

  const util::VirtualClock& clock() const { return clock_; }
  const platform::ClusterHw& hardware() const { return *hw_; }
  /// Mutable hardware access (fault injection installs MSR fault hooks).
  platform::ClusterHw& hardware_mut() { return *hw_; }
  ClusterManager& manager() { return manager_; }
  std::size_t running_jobs() const { return running_.size(); }
  bool finished() const { return done_; }

  /// Install a decorator applied to every tier channel created from now
  /// on (both sides of each job's pair).  Set before run().
  void set_channel_decorator(ChannelDecorator decorator) {
    channel_decorator_ = std::move(decorator);
  }
  /// Install a hook invoked each engine step (crash schedules, probes).
  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }

  /// Abruptly kill a running job's endpoint process: no goodbye, its
  /// channel drops, the manager's lease must reap the job.  The job's
  /// kernels keep running at their last applied cap.  Returns false when
  /// the job is not running or already crashed.
  bool crash_job_endpoint(int job_id);
  /// Restart a crashed endpoint on a fresh channel; it re-sends JobHello
  /// and rejoins the manager.  Returns false when not running/crashed.
  bool restart_job_endpoint(int job_id);
  /// IDs of currently running jobs (in start order).
  std::vector<int> running_job_ids() const;
  /// The job's endpoint process; nullptr when not running or crashed.
  JobEndpointProcess* endpoint(int job_id);

  /// Feasible power envelope right now: the floor is busy nodes at their
  /// minimum caps plus idle nodes at idle power; the ceiling is each
  /// running job's maximum draw plus idle power.  Facility-level
  /// coordination (cluster/facility.hpp) splits power by these.
  double min_feasible_power_w() const;
  double max_feasible_power_w() const;

 private:
  struct RunningJob {
    workload::JobRequest request;
    std::vector<int> node_ids;
    /// Endpoint-side channel (possibly decorated); the manager side is
    /// handed to the manager at start.
    std::unique_ptr<MessageChannel> endpoint_channel;
    std::unique_ptr<geopm::JobController> controller;
    std::unique_ptr<JobEndpointProcess> endpoint;
  };

  void admit_arrivals();
  void start_jobs();
  void finish_completed_jobs();
  /// Register the emulation's phases on the shared engine (invocation
  /// order is the determinism contract — see build_engine's body).  Built
  /// lazily at the first step so the components' `this` captures survive
  /// a pre-run move of the cluster object.
  void build_engine();
  /// The log-cadence component: record power/target series, telemetry
  /// gauges, and artifact samples.
  void sample_log(double now_s);
  /// Create the channel pair (decorated), attach the manager side, and
  /// build the endpoint process.  Used at job start and endpoint restart.
  void make_endpoint(RunningJob& job);
  sched::SchedulerView make_view() const;

  EmulationConfig config_;
  workload::Schedule schedule_;
  std::size_t next_arrival_ = 0;

  util::VirtualClock clock_;
  util::Rng rng_;
  std::unique_ptr<platform::ClusterHw> hw_;
  sched::AqaScheduler scheduler_;
  ClusterManager manager_;
  std::map<int, workload::JobRequest> queued_;  // submitted, not yet started

  std::vector<std::unique_ptr<RunningJob>> running_;
  std::set<int> free_nodes_;

  EmulationResult result_;
  telemetry::RunArtifactWriter* artifacts_ = nullptr;
  ChannelDecorator channel_decorator_;
  StepHook step_hook_;
  std::unique_ptr<engine::DiscreteEngine> engine_;
  double busy_node_seconds_ = 0.0;
  bool done_ = false;
};

}  // namespace anor::cluster
