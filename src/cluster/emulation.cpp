#include "cluster/emulation.hpp"

#include <algorithm>

#include "model/default_models.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace anor::cluster {

double uncapped_runtime_s(const workload::JobType& type,
                          const workload::KernelConfig& kernel) {
  return kernel.setup_s + kernel.teardown_s +
         type.min_exec_time_s() * kernel.perf_multiplier;
}

EmulatedCluster::EmulatedCluster(EmulationConfig config, workload::Schedule schedule)
    : config_(config),
      schedule_(std::move(schedule)),
      rng_(config.seed),
      scheduler_([&] {
        sched::SchedulerConfig sc = config.scheduler;
        sc.cluster_nodes = config.node_count;
        if (sc.backfill && !sc.runtime_estimate) {
          const workload::KernelConfig kernel = config.controller.kernel;
          sc.runtime_estimate = [kernel](const std::string& name) {
            if (const auto type = workload::try_find_job_type(name)) {
              return uncapped_runtime_s(*type, kernel);
            }
            return 600.0;
          };
        }
        return sc;
      }()),
      manager_([&] {
        ClusterManagerConfig mc = config.manager;
        mc.cluster_nodes = config.node_count;
        return mc;
      }()) {
  platform::ClusterHwConfig hw_config;
  hw_config.node_count = config_.node_count;
  hw_config.node = config_.node;
  hw_config.perf_variation_sigma = config_.perf_variation_sigma;
  hw_ = std::make_unique<platform::ClusterHw>(hw_config, rng_.child("hw"));
  for (int n = 0; n < config_.node_count; ++n) free_nodes_.insert(n);

  std::sort(schedule_.jobs.begin(), schedule_.jobs.end(),
            [](const workload::JobRequest& a, const workload::JobRequest& b) {
              return a.submit_time_s < b.submit_time_s;
            });
  result_.qos = sched::QosEvaluator(config_.qos);
}

EmulatedCluster::~EmulatedCluster() {
  telemetry::TraceRecorder::global().bind_clock(nullptr);
  util::Logger::instance().attach_clock(nullptr);
}

void EmulatedCluster::set_power_targets(util::TimeSeries targets) {
  manager_.set_power_targets(std::move(targets));
}

double EmulatedCluster::min_feasible_power_w() const {
  double total = static_cast<double>(free_nodes_.size()) * config_.manager.idle_node_power_w;
  for (const auto& job : running_) {
    total += job->request.nodes * hw_->node(0).min_cap_w();
  }
  return total;
}

double EmulatedCluster::max_feasible_power_w() const {
  double total = static_cast<double>(free_nodes_.size()) * config_.manager.idle_node_power_w;
  for (const auto& job : running_) {
    const workload::JobType& type = workload::find_job_type(job->request.type_name);
    total += job->request.nodes * type.max_power_w;
  }
  return total;
}

sched::SchedulerView EmulatedCluster::make_view() const {
  sched::SchedulerView view;
  view.free_nodes = static_cast<int>(free_nodes_.size());
  const auto target = manager_.target_at(clock_.now());
  view.power_target_w = target.value_or(0.0);
  const double floor_cap = hw_->node(0).min_cap_w();
  const double idle_power = config_.manager.idle_node_power_w;
  const int busy = config_.node_count - view.free_nodes;
  view.min_feasible_power_w = busy * floor_cap + view.free_nodes * idle_power;
  view.per_node_floor_increase_w = floor_cap - idle_power;
  view.now_s = clock_.now();
  if (config_.scheduler.backfill) {
    for (const auto& job : running_) {
      const workload::JobType& type = workload::find_job_type(job->request.type_name);
      // Project the release from the exec time the current cap implies.
      const double projected_end =
          job->controller->start_time_s() +
          uncapped_runtime_s(type, config_.controller.kernel) *
              type.relative_time(job->controller->current_cap_w());
      view.projected_releases.emplace_back(std::max(projected_end, clock_.now()),
                                           job->request.nodes);
    }
  }
  return view;
}

void EmulatedCluster::admit_arrivals() {
  const double now = clock_.now();
  while (next_arrival_ < schedule_.jobs.size() &&
         schedule_.jobs[next_arrival_].submit_time_s <= now) {
    workload::JobRequest request = schedule_.jobs[next_arrival_];
    if (request.nodes <= 0) {
      request.nodes = workload::find_job_type(request.type_name).nodes;
    }
    queued_[request.job_id] = request;
    scheduler_.submit(request, now);
    ++next_arrival_;
  }
}

void EmulatedCluster::make_endpoint(RunningJob& job) {
  const workload::JobRequest& request = job.request;
  InprocPair pair = make_inproc_pair(clock_, config_.inproc_latency_s);
  std::unique_ptr<MessageChannel> manager_side = std::move(pair.a);
  std::unique_ptr<MessageChannel> endpoint_side = std::move(pair.b);
  if (channel_decorator_) {
    manager_side = channel_decorator_(std::move(manager_side), request.job_id, true);
    endpoint_side = channel_decorator_(std::move(endpoint_side), request.job_id, false);
  }
  manager_.attach_channel(std::move(manager_side));
  job.endpoint_channel = std::move(endpoint_side);

  // The endpoint process starts from the *classified* model — what the
  // batch system believes the job is.
  const std::string& classified = request.effective_class();
  model::PowerPerfModel initial_model;
  if (workload::try_find_job_type(classified)) {
    initial_model = model::model_for_class(classified);
  } else {
    initial_model = model::default_model(config_.manager.default_model);
  }
  job.endpoint = std::make_unique<JobEndpointProcess>(
      request.job_id, request.type_name + "#" + std::to_string(request.job_id), classified,
      request.nodes, std::move(initial_model), job.controller->endpoint(),
      *job.endpoint_channel, clock_.now(), config_.endpoint,
      job.controller->current_cap_w());
}

void EmulatedCluster::start_jobs() {
  const std::vector<workload::JobRequest> to_start = scheduler_.schedule(make_view());
  for (const workload::JobRequest& request : to_start) {
    queued_.erase(request.job_id);
    auto job = std::make_unique<RunningJob>();
    job->request = request;

    std::vector<platform::Node*> nodes;
    for (int k = 0; k < request.nodes; ++k) {
      if (free_nodes_.empty()) {
        throw util::ConfigError("EmulatedCluster: scheduler oversubscribed nodes");
      }
      const int node_id = *free_nodes_.begin();
      free_nodes_.erase(free_nodes_.begin());
      job->node_ids.push_back(node_id);
      nodes.push_back(&hw_->node(node_id));
    }

    const workload::JobType& true_type = workload::find_job_type(request.type_name);
    geopm::ControllerConfig controller_config = config_.controller;
    const auto phases_it = config_.phase_overrides.find(request.type_name);
    if (phases_it != config_.phase_overrides.end()) {
      controller_config.phases = phases_it->second;
    }
    job->controller = std::make_unique<geopm::JobController>(
        request.type_name + "#" + std::to_string(request.job_id), true_type,
        std::move(nodes), clock_,
        rng_.child(static_cast<std::uint64_t>(request.job_id) + 1000), controller_config);

    make_endpoint(*job);
    running_.push_back(std::move(job));
  }
}

bool EmulatedCluster::crash_job_endpoint(int job_id) {
  for (auto& job : running_) {
    if (job->request.job_id != job_id || !job->endpoint) continue;
    // No goodbye: the process just dies.  Destroying the endpoint-side
    // channel closes the pipe pair, so the manager sees a disconnect; the
    // job record itself lingers until the liveness lease reaps it.
    job->endpoint.reset();
    job->endpoint_channel.reset();
    util::log_warn("emulation", "job " + std::to_string(job_id) + ": endpoint crashed");
    telemetry::TraceRecorder::global().instant("endpoint_crash", "fault", clock_.now(),
                                               static_cast<double>(job_id));
    return true;
  }
  return false;
}

bool EmulatedCluster::restart_job_endpoint(int job_id) {
  for (auto& job : running_) {
    if (job->request.job_id != job_id || job->endpoint) continue;
    make_endpoint(*job);
    util::log_info("emulation", "job " + std::to_string(job_id) + ": endpoint restarted");
    telemetry::TraceRecorder::global().instant("endpoint_restart", "fault", clock_.now(),
                                               static_cast<double>(job_id));
    return true;
  }
  return false;
}

std::vector<int> EmulatedCluster::running_job_ids() const {
  std::vector<int> ids;
  ids.reserve(running_.size());
  for (const auto& job : running_) ids.push_back(job->request.job_id);
  return ids;
}

JobEndpointProcess* EmulatedCluster::endpoint(int job_id) {
  for (auto& job : running_) {
    if (job->request.job_id == job_id) return job->endpoint.get();
  }
  return nullptr;
}

void EmulatedCluster::finish_completed_jobs() {
  const double now = clock_.now();
  for (auto it = running_.begin(); it != running_.end();) {
    RunningJob& job = **it;
    if (!job.controller->complete()) {
      ++it;
      continue;
    }
    job.controller->teardown(now);
    // The goodbye survives the endpoint's destruction: the channel pipes
    // are shared, so the manager drains it on a later step.  A crashed
    // endpoint has no goodbye to send; the lease reaps it instead.
    if (job.endpoint) job.endpoint->finish(now);

    CompletedJob record;
    record.request = job.request;
    record.report = job.controller->report();
    record.submit_s = job.request.submit_time_s;
    record.start_s = job.controller->start_time_s();
    record.end_s = now;
    const workload::JobType& type = workload::find_job_type(job.request.type_name);
    record.reference_runtime_s = uncapped_runtime_s(type, config_.controller.kernel);
    result_.completed.push_back(record);

    sched::JobQosRecord qos_record;
    qos_record.job_id = job.request.job_id;
    qos_record.type_name = job.request.type_name;
    qos_record.submit_s = record.submit_s;
    qos_record.start_s = record.start_s;
    qos_record.end_s = record.end_s;
    qos_record.t_min_s = record.reference_runtime_s;
    result_.qos.add(std::move(qos_record));

    scheduler_.job_finished(job.request.type_name, job.request.nodes);
    for (int node_id : job.node_ids) free_nodes_.insert(node_id);
    it = running_.erase(it);
  }
}

void EmulatedCluster::sample_log(double now_s) {
  auto& registry = telemetry::MetricsRegistry::global();
  static auto& power = registry.gauge("cluster.power_w");
  static auto& target_gauge = registry.gauge("cluster.target_w");
  static auto& running = registry.gauge("cluster.running_jobs");
  static auto& free_nodes = registry.gauge("cluster.free_nodes");
  const double measured = hw_->total_power_w();
  result_.power_w.add(now_s, measured);
  power.set(measured);
  running.set(static_cast<double>(running_.size()));
  free_nodes.set(static_cast<double>(free_nodes_.size()));
  auto& tracer = telemetry::TraceRecorder::global();
  tracer.counter("cluster.power_w", "cluster", now_s, measured);
  if (const auto target = manager_.target_at(now_s)) {
    result_.target_w.add(now_s, *target);
    target_gauge.set(*target);
    tracer.counter("cluster.target_w", "cluster", now_s, *target);
  }
  if (artifacts_ != nullptr) artifacts_->maybe_sample(now_s);
}

void EmulatedCluster::build_engine() {
  // Component order is the determinism contract: hardware advances, then
  // arrivals/completions/scheduling, the fault hook, the per-job control
  // stack, the head-node manager, and last the log sampler — exactly the
  // sequence the hand-rolled loop ran.  The engine advances the clock
  // before dispatching (kAdvanceFirst), as `clock_.advance(dt)` did.
  engine_ = std::make_unique<engine::DiscreteEngine>(
      config_.step_s, engine::DiscreteEngine::ClockMode::kAdvanceFirst);
  engine_->bind_clock(&clock_);
  engine_->add_component("hardware", 0.0, [this](double, double dt) { hw_->step(dt); });
  engine_->add_component("admit_arrivals", 0.0,
                         [this](double, double) { admit_arrivals(); });
  engine_->add_component("complete_jobs", 0.0,
                         [this](double, double) { finish_completed_jobs(); });
  engine_->add_component("scheduler", 0.0, [this](double, double) { start_jobs(); });
  engine_->add_component("step_hook", 0.0, [this](double now, double) {
    if (step_hook_) step_hook_(*this, now);
  });
  engine_->add_component("job_control", 0.0, [this](double now, double dt) {
    busy_node_seconds_ +=
        static_cast<double>(config_.node_count - static_cast<int>(free_nodes_.size())) * dt;
    for (auto& job : running_) {
      job->controller->control_step(now);
      if (job->endpoint) job->endpoint->step(now);
    }
  });
  engine_->add_component("manager", 0.0, [this](double now, double) {
    // Facility metering: the head node sees the cluster's CPU power.
    manager_.report_measured_power(now, hw_->total_power_w());
    manager_.step(now);
  });
  engine_->add_component("log_sampler", config_.log_period_s,
                         [this](double now, double) { sample_log(now); });
  engine_->set_stop_predicate([this](double now) {
    const bool drained = next_arrival_ >= schedule_.jobs.size() && running_.empty() &&
                         !scheduler_.has_pending();
    return drained || now >= config_.max_duration_s;
  });
}

bool EmulatedCluster::step() {
  if (done_) return false;
  // Trace events and log lines recorded anywhere in the control stack
  // pick up this run's virtual timeline.  Re-bound every step (cheap) so
  // the binding survives a pre-run move of the cluster object.
  telemetry::TraceRecorder::global().bind_clock(&clock_);
  util::Logger::instance().attach_clock(&clock_);
  if (engine_ == nullptr) build_engine();
  engine_->step();
  done_ = engine_->stopped();
  return !done_;
}

EmulationResult EmulatedCluster::run() {
  while (step()) {
  }
  result_.end_time_s = clock_.now();
  result_.jobs_submitted = static_cast<int>(schedule_.jobs.size());
  result_.jobs_completed = static_cast<int>(result_.completed.size());
  const double elapsed = std::max(clock_.now(), config_.step_s);
  result_.mean_utilization =
      busy_node_seconds_ / (elapsed * static_cast<double>(config_.node_count));
  // Zero reserve derives half the observed target span — the emulation's
  // historical normalization.
  engine::finalize_tracking(result_, 0.0, 0.0);
  return result_;
}

}  // namespace anor::cluster
