#include "cluster/metrics_service.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace anor::cluster {

namespace {

/// Write the whole buffer to a (possibly non-blocking) socket, waiting
/// out short writes with poll() up to the budget.  Returns false if the
/// peer wedged or hung up.
bool write_all(int fd, const char* data, std::size_t size, int budget_ms) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, budget_ms) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

MetricsExpositionServer::MetricsExpositionServer(Provider provider, std::uint16_t port)
    : provider_(std::move(provider)), listener_(port) {}

int MetricsExpositionServer::poll() {
  int served = 0;
  while (auto channel = listener_.accept()) {
    const std::string body = provider_ ? provider_() : std::string();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    // We answer regardless of what the client asked (it is a
    // single-resource server); drain whatever request bytes arrived so
    // the close is clean, then write and close.
    char sink[512];
    while (::recv(channel->fd(), sink, sizeof(sink), 0) > 0) {
    }
    write_all(channel->fd(), response.data(), response.size(),
              TcpChannel::kSendBudgetMs);
    ++served;
  }
  return served;
}

std::string fetch_metrics_exposition(std::uint16_t port, int timeout_ms) {
  std::unique_ptr<TcpChannel> channel = tcp_connect(port);
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (!write_all(channel->fd(), request, sizeof(request) - 1, timeout_ms)) return "";

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(channel->fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // orderly close: response complete
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd{channel->fd(), POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) break;
      continue;
    }
    if (errno == EINTR) continue;
    break;
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return "";
  return response.substr(header_end + 4);
}

}  // namespace anor::cluster
