#include "fault/faulty_channel.hpp"

#include <cstdio>

#include "cluster/messages.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace anor::fault {

void FaultEventLog::record(FaultEvent event) {
  telemetry::MetricsRegistry::global().counter("fault." + event.kind).inc();
  telemetry::MetricsRegistry::global().counter("fault.injected").inc();
  events_.push_back(std::move(event));
}

std::string FaultEventLog::to_text() const {
  std::string out;
  char line[160];
  for (const FaultEvent& event : events_) {
    std::snprintf(line, sizeof line, "t=%.3f side=%s kind=%s msg=%s job=%d seq=%llu\n",
                  event.t_s, event.side.c_str(), event.kind.c_str(),
                  event.msg_type.c_str(), event.job_id,
                  static_cast<unsigned long long>(event.seq));
    out += line;
  }
  return out;
}

FaultyChannel::FaultyChannel(std::unique_ptr<cluster::MessageChannel> inner,
                             ChannelFaultSpec spec, util::Rng rng,
                             const util::VirtualClock& clock, int job_id,
                             std::string side_label, FaultEventLog* log)
    : inner_(std::move(inner)),
      spec_(spec),
      rng_(rng),
      clock_(&clock),
      job_id_(job_id),
      side_(std::move(side_label)),
      log_(log) {}

void FaultyChannel::note(const char* kind, const cluster::Message& message) {
  if (log_ == nullptr) return;
  FaultEvent event;
  event.t_s = clock_->now();
  event.side = side_;
  event.kind = kind;
  event.msg_type = std::string(cluster::type_name_of(message));
  event.job_id = job_id_;
  event.seq = cluster::seq_of(message);
  log_->record(std::move(event));
}

void FaultyChannel::flush_delayed() {
  const double now = clock_->now();
  while (!delayed_.empty() && delayed_.front().release_s <= now) {
    (void)inner_->send(delayed_.front().message);
    delayed_.pop_front();
  }
}

bool FaultyChannel::send(const cluster::Message& message) {
  flush_delayed();
  const double now = clock_->now();

  // Disconnect window: the link is down, the sender finds out.  This is
  // the fault the retry/backoff path exists for.
  if (spec_.disconnect_until_s > spec_.disconnect_from_s &&
      now >= spec_.disconnect_from_s && now < spec_.disconnect_until_s) {
    note("disconnect", message);
    return false;
  }

  // The remaining faults are silent: the sender believes delivery
  // happened.  Draw order is fixed so traces replay exactly.
  if (spec_.drop_prob > 0.0 && rng_.coin(spec_.drop_prob)) {
    note("drop", message);
    return true;
  }
  if (spec_.corrupt_prob > 0.0 && rng_.coin(spec_.corrupt_prob)) {
    // Emulate on-the-wire corruption end to end: encode the frame, flip a
    // byte, and deliver only if the checksum still accepts it (it never
    // does — the receiver's rejection path is what this exercises).
    std::string wire = cluster::encode_framed_text(message);
    if (!wire.empty()) {
      const auto at = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      wire[at] = static_cast<char>(wire[at] ^ 0x20);
    }
    try {
      const cluster::Message survived = cluster::decode_framed_text(wire);
      (void)inner_->send(survived);
    } catch (const util::TransportError&) {
      note("corrupt", message);
    }
    return true;
  }
  if (spec_.reorder_prob > 0.0 && rng_.coin(spec_.reorder_prob)) {
    // Hold this message; the next send overtakes it.
    note("reorder", message);
    reorder_hold_.push_back(message);
    return true;
  }
  if (spec_.delay_prob > 0.0 && rng_.coin(spec_.delay_prob)) {
    note("delay", message);
    Delayed held;
    held.release_s = now + spec_.delay_s;
    held.message = message;
    delayed_.push_back(std::move(held));
    return true;
  }

  const bool ok = inner_->send(message);
  if (ok && spec_.duplicate_prob > 0.0 && rng_.coin(spec_.duplicate_prob)) {
    note("duplicate", message);
    (void)inner_->send(message);
  }
  // Release anything a reorder was holding — it now arrives late.
  while (ok && !reorder_hold_.empty()) {
    (void)inner_->send(reorder_hold_.front());
    reorder_hold_.pop_front();
  }
  return ok;
}

std::optional<cluster::Message> FaultyChannel::receive() {
  flush_delayed();
  return inner_->receive();
}

}  // namespace anor::fault
