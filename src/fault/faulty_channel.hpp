// FaultyChannel: a MessageChannel decorator that misbehaves on purpose.
//
// Wraps any channel and applies the per-message faults of a
// ChannelFaultSpec on the sending side: drop (message vanishes, sender
// believes it delivered), delay (held and released after delay_s of
// virtual time), duplicate, reorder (held until the next send overtakes
// it), corrupt (the encoded frame gets a bit flip; delivery only happens
// if the checksum somehow still validates — i.e. never), and a
// disconnect window during which every send fails outright.  All
// decisions come from a seeded Rng and the shared virtual clock, and
// every injected fault is appended to a FaultEventLog whose text form is
// the determinism witness: same plan + seed => byte-identical trace.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/transport.hpp"
#include "fault/fault_plan.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace anor::fault {

struct FaultEvent {
  double t_s = 0.0;
  std::string side;      // "mgr" or "ep" (which direction's sender)
  std::string kind;      // drop, delay, duplicate, reorder, corrupt, disconnect, crash, restart, msr
  std::string msg_type;  // message type tag ("budget", "hb", ...) or "-"
  int job_id = 0;
  std::uint64_t seq = 0;
};

/// Shared, append-only record of every injected fault.  Events are
/// appended in virtual-time order (the emulation is single-threaded), so
/// to_text() is a canonical replay witness.
class FaultEventLog {
 public:
  void record(FaultEvent event);
  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  /// One line per event: "t=<t> side=<s> kind=<k> msg=<m> job=<id> seq=<n>".
  std::string to_text() const;

 private:
  std::vector<FaultEvent> events_;
};

class FaultyChannel final : public cluster::MessageChannel {
 public:
  /// `clock` and `log` must outlive the channel.  `side_label` tags the
  /// event log ("mgr" for the manager->endpoint direction, "ep" for the
  /// uplink).
  FaultyChannel(std::unique_ptr<cluster::MessageChannel> inner, ChannelFaultSpec spec,
                util::Rng rng, const util::VirtualClock& clock, int job_id,
                std::string side_label, FaultEventLog* log);

  bool send(const cluster::Message& message) override;
  std::optional<cluster::Message> receive() override;
  bool connected() const override { return inner_->connected(); }

  cluster::MessageChannel& inner() { return *inner_; }

 private:
  void note(const char* kind, const cluster::Message& message);
  /// Release delayed messages whose time has come.
  void flush_delayed();

  std::unique_ptr<cluster::MessageChannel> inner_;
  ChannelFaultSpec spec_;
  util::Rng rng_;
  const util::VirtualClock* clock_;
  int job_id_;
  std::string side_;
  FaultEventLog* log_;

  struct Delayed {
    double release_s = 0.0;
    cluster::Message message;
  };
  std::deque<Delayed> delayed_;
  std::deque<cluster::Message> reorder_hold_;
};

}  // namespace anor::fault
