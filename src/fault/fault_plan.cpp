#include "fault/fault_plan.hpp"

#include "util/error.hpp"

namespace anor::fault {

util::Json ChannelFaultSpec::to_json() const {
  util::JsonObject obj;
  obj["drop_prob"] = drop_prob;
  obj["duplicate_prob"] = duplicate_prob;
  obj["corrupt_prob"] = corrupt_prob;
  obj["reorder_prob"] = reorder_prob;
  obj["delay_prob"] = delay_prob;
  obj["delay_s"] = delay_s;
  obj["disconnect_from_s"] = disconnect_from_s;
  obj["disconnect_until_s"] = disconnect_until_s;
  obj["manager_side"] = manager_side;
  obj["endpoint_side"] = endpoint_side;
  return util::Json(std::move(obj));
}

ChannelFaultSpec ChannelFaultSpec::from_json(const util::Json& json) {
  ChannelFaultSpec spec;
  spec.drop_prob = json.number_or("drop_prob", 0.0);
  spec.duplicate_prob = json.number_or("duplicate_prob", 0.0);
  spec.corrupt_prob = json.number_or("corrupt_prob", 0.0);
  spec.reorder_prob = json.number_or("reorder_prob", 0.0);
  spec.delay_prob = json.number_or("delay_prob", 0.0);
  spec.delay_s = json.number_or("delay_s", 1.0);
  spec.disconnect_from_s = json.number_or("disconnect_from_s", 0.0);
  spec.disconnect_until_s = json.number_or("disconnect_until_s", 0.0);
  spec.manager_side = json.bool_or("manager_side", true);
  spec.endpoint_side = json.bool_or("endpoint_side", true);
  return spec;
}

util::Json NodeCrashSpec::to_json() const {
  util::JsonObject obj;
  obj["job_id"] = job_id;
  obj["crash_s"] = crash_s;
  obj["restart_s"] = restart_s;
  return util::Json(std::move(obj));
}

NodeCrashSpec NodeCrashSpec::from_json(const util::Json& json) {
  NodeCrashSpec spec;
  spec.job_id = static_cast<int>(json.number_or("job_id", -1.0));
  spec.crash_s = json.number_or("crash_s", 0.0);
  spec.restart_s = json.number_or("restart_s", 0.0);
  return spec;
}

util::Json MsrFaultSpec::to_json() const {
  util::JsonObject obj;
  obj["read_fault_prob"] = read_fault_prob;
  obj["write_fault_prob"] = write_fault_prob;
  obj["from_s"] = from_s;
  obj["until_s"] = until_s;
  return util::Json(std::move(obj));
}

MsrFaultSpec MsrFaultSpec::from_json(const util::Json& json) {
  MsrFaultSpec spec;
  spec.read_fault_prob = json.number_or("read_fault_prob", 0.0);
  spec.write_fault_prob = json.number_or("write_fault_prob", 0.0);
  spec.from_s = json.number_or("from_s", 0.0);
  spec.until_s = json.number_or("until_s", 0.0);
  return spec;
}

util::Json FaultPlan::to_json() const {
  util::JsonObject obj;
  obj["name"] = name;
  obj["seed"] = static_cast<double>(seed);
  obj["channel"] = channel.to_json();
  util::JsonArray crash_array;
  for (const NodeCrashSpec& crash : crashes) crash_array.push_back(crash.to_json());
  obj["crashes"] = util::Json(std::move(crash_array));
  obj["msr"] = msr.to_json();
  return util::Json(std::move(obj));
}

FaultPlan FaultPlan::from_json(const util::Json& json) {
  FaultPlan plan;
  plan.name = json.string_or("name", "unnamed");
  plan.seed = static_cast<std::uint64_t>(json.number_or("seed", 1.0));
  if (json.contains("channel")) plan.channel = ChannelFaultSpec::from_json(json.at("channel"));
  if (json.contains("crashes")) {
    for (const util::Json& crash : json.at("crashes").as_array()) {
      plan.crashes.push_back(NodeCrashSpec::from_json(crash));
    }
  }
  if (json.contains("msr")) plan.msr = MsrFaultSpec::from_json(json.at("msr"));
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  return from_json(util::load_json_file(path));
}

FaultPlan FaultPlan::preset(const std::string& name) {
  FaultPlan plan;
  plan.name = name;
  if (name == "none") return plan;
  if (name == "drop10") {
    plan.channel.drop_prob = 0.10;
    return plan;
  }
  if (name == "drop10_crash1") {
    plan.channel.drop_prob = 0.10;
    plan.crashes.push_back(NodeCrashSpec{-1, 60.0, 100.0});
    return plan;
  }
  if (name == "chaos") {
    plan.channel.drop_prob = 0.10;
    plan.channel.duplicate_prob = 0.05;
    plan.channel.corrupt_prob = 0.05;
    plan.channel.reorder_prob = 0.05;
    plan.channel.delay_prob = 0.15;
    plan.channel.delay_s = 1.0;
    plan.channel.disconnect_from_s = 140.0;
    plan.channel.disconnect_until_s = 155.0;
    plan.crashes.push_back(NodeCrashSpec{-1, 60.0, 100.0});
    plan.msr.read_fault_prob = 0.02;
    plan.msr.write_fault_prob = 0.02;
    return plan;
  }
  throw util::ConfigError("unknown fault plan preset '" + name +
                          "' (expected none|drop10|drop10_crash1|chaos)");
}

std::vector<std::string> FaultPlan::preset_names() {
  return {"none", "drop10", "drop10_crash1", "chaos"};
}

}  // namespace anor::fault
