// Fault plans: declarative, seeded descriptions of what goes wrong.
//
// A FaultPlan names the faults a chaos run injects — per-message channel
// faults (drop/delay/duplicate/reorder/corrupt and a hard disconnect
// window), endpoint-process crashes with optional restarts, and transient
// MSR access failures.  Plans round-trip through JSON so experiments can
// version them alongside schedules and power targets, and every random
// decision derives from the plan's seed on the virtual clock, so the same
// plan and seed replay byte-identical fault-event traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace anor::fault {

/// Per-message faults applied on the sending side of a tier channel.
/// Probabilities are per message and independent; `delay_s` is the extra
/// virtual latency a delayed message suffers.  The disconnect window
/// [disconnect_from_s, disconnect_until_s) fails every send outright, as
/// a dead TCP link would — the retry layer has to carry traffic across
/// it.
struct ChannelFaultSpec {
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double corrupt_prob = 0.0;
  double reorder_prob = 0.0;
  double delay_prob = 0.0;
  double delay_s = 1.0;
  double disconnect_from_s = 0.0;
  double disconnect_until_s = 0.0;
  /// Which directions the faults apply to (manager->endpoint, uplink).
  bool manager_side = true;
  bool endpoint_side = true;

  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || corrupt_prob > 0.0 ||
           reorder_prob > 0.0 || delay_prob > 0.0 ||
           disconnect_until_s > disconnect_from_s;
  }

  util::Json to_json() const;
  static ChannelFaultSpec from_json(const util::Json& json);
};

/// Kill a job's endpoint process at crash_s (no goodbye, channel drops);
/// restart it at restart_s (0 = never).  job_id -1 targets the
/// lowest-numbered job running at crash time.
struct NodeCrashSpec {
  int job_id = -1;
  double crash_s = 0.0;
  double restart_s = 0.0;

  util::Json to_json() const;
  static NodeCrashSpec from_json(const util::Json& json);
};

/// Transient MSR read/write failures (msr-safe EIO under contention),
/// active in [from_s, until_s) — until_s 0 means the whole run.
struct MsrFaultSpec {
  double read_fault_prob = 0.0;
  double write_fault_prob = 0.0;
  double from_s = 0.0;
  double until_s = 0.0;

  bool any() const { return read_fault_prob > 0.0 || write_fault_prob > 0.0; }
  bool active_at(double now_s) const {
    return any() && now_s >= from_s && (until_s <= 0.0 || now_s < until_s);
  }

  util::Json to_json() const;
  static MsrFaultSpec from_json(const util::Json& json);
};

struct FaultPlan {
  std::string name = "none";
  /// Root seed for every fault decision (child streams per channel/node).
  std::uint64_t seed = 1;
  ChannelFaultSpec channel;
  std::vector<NodeCrashSpec> crashes;
  MsrFaultSpec msr;

  bool any() const { return channel.any() || !crashes.empty() || msr.any(); }

  util::Json to_json() const;
  static FaultPlan from_json(const util::Json& json);
  /// Load from a JSON file; throws ConfigError on I/O or shape errors.
  static FaultPlan load(const std::string& path);

  /// Named presets: "none", "drop10" (10 % message drop), "drop10_crash1"
  /// (the acceptance scenario: 10 % drop plus one crash/restart), "chaos"
  /// (everything at once).  Throws ConfigError for unknown names.
  static FaultPlan preset(const std::string& name);
  static std::vector<std::string> preset_names();
};

}  // namespace anor::fault
