#include "fault/chaos.hpp"

#include <algorithm>
#include <cmath>

#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::fault {

namespace {

/// Fill the cluster with long-running jobs submitted at t = 0.  Two-node
/// types first, single-node CG plugs the remainder, and the kernel's
/// perf multiplier stretches every job past the chaos horizon so power
/// tracking is never disturbed by a draining schedule.
workload::Schedule chaos_schedule(int node_count) {
  static const char* kTypes[] = {"bt.D.x", "lu.D.x", "sp.D.x", "ft.D.x"};
  workload::Schedule schedule;
  int used = 0;
  int next_type = 0;
  int job_id = 1;
  while (used < node_count) {
    const workload::JobType* type =
        &workload::find_job_type(kTypes[next_type % 4]);
    if (used + type->nodes > node_count) {
      type = &workload::find_job_type("cg.D.x");  // 1 node
    } else {
      ++next_type;
    }
    workload::JobRequest request;
    request.job_id = job_id++;
    request.type_name = type->name;
    request.submit_time_s = 0.0;
    schedule.jobs.push_back(request);
    used += type->nodes;
  }
  return schedule;
}

}  // namespace

ChaosResult run_chaos(const ChaosConfig& config) {
  cluster::EmulationConfig emu = config.base;
  emu.node_count = config.node_count;
  emu.seed = config.seed;
  emu.max_duration_s = config.duration_s;
  // Stretch job runtimes past the horizon (shortest type is CG at 120 s
  // uncapped) so the job population is constant while faults fly.
  emu.controller.kernel.perf_multiplier =
      std::max(emu.controller.kernel.perf_multiplier, config.duration_s / 100.0);

  workload::Schedule schedule = chaos_schedule(config.node_count);
  schedule.duration_s = config.duration_s;

  // A mid-range static target every job mix can reach: 200 W per node
  // inside the [140, 280] cap range.
  const double target_w = 200.0 * config.node_count;
  util::TimeSeries targets;
  targets.add(0.0, target_w);

  cluster::EmulatedCluster emulated(std::move(emu), std::move(schedule));
  emulated.set_power_targets(targets);

  FaultInjector injector(config.plan);
  injector.arm(emulated);

  const cluster::EmulationResult run = emulated.run();

  ChaosResult result;
  result.target_w = target_w;
  result.end_time_s = run.end_time_s;
  result.power_w = run.power_w;
  result.target_series_w = targets;
  result.fault_events = injector.log().size();
  result.leases_expired = emulated.manager().leases_expired();
  result.event_trace = injector.event_trace();
  result.tracking = util::tracking_error(run.power_w, targets, target_w);

  // Budget leaked to the dead: manager job records with no live endpoint
  // behind them still holding a cap at the end of the run.
  for (const auto& [id, job] : emulated.manager().jobs()) {
    if (emulated.endpoint(id) == nullptr && job.last_sent_cap_w > 0.0) {
      result.leaked_budget_w += job.last_sent_cap_w * job.nodes;
    }
  }

  // Recovery accounting on the logged power series.  Settling: ignore
  // everything before tracking first entered the band (job setup ramps
  // power from idle; that transient is not a fault).
  const double band_w = config.recovery_band_frac * target_w;
  const std::size_t n = run.power_w.size();
  double settled_s = -1.0;
  double last_violation_s = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = run.power_w.times()[i];
    const double err = std::abs(run.power_w.values()[i] - target_w);
    if (settled_s < 0.0) {
      if (err <= band_w) settled_s = t;
      continue;
    }
    if (err > band_w) last_violation_s = t;
  }

  if (n > 0) {
    const double tail_from = run.end_time_s - 0.1 * config.duration_s;
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (run.power_w.times()[i] < tail_from) continue;
      sum += std::abs(run.power_w.values()[i] - target_w) / target_w;
      ++count;
    }
    if (count > 0) result.final_error_frac = sum / count;
  }

  const bool ends_in_band = settled_s >= 0.0 &&
                            result.final_error_frac <= config.recovery_band_frac;
  result.recovered = ends_in_band;
  if (ends_in_band) {
    const double disruption_s = injector.last_scheduled_disruption_s();
    if (last_violation_s < 0.0) {
      result.recovery_latency_s = 0.0;  // never left the band after settling
    } else if (disruption_s >= 0.0) {
      result.recovery_latency_s = std::max(0.0, last_violation_s - disruption_s);
    } else {
      result.recovery_latency_s = 0.0;  // no scheduled disruption to measure from
    }
  }
  return result;
}

}  // namespace anor::fault
