// Closed-loop chaos runs: the full two-tier stack under a fault plan.
//
// run_chaos builds a small emulated cluster with long-running jobs, a
// static power target, and a FaultInjector armed with the given plan,
// then measures what the hardening delivers: power-tracking error while
// faults fly, recovery latency after the last scheduled disruption, and
// whether any budget stays allocated to dead jobs (leaked watts).  The
// `anorctl chaos` command and the chaos smoke stage of check_tier1.sh
// drive this; the acceptance bar is recovery to within 5 % of target
// with zero leaked budget under the drop10_crash1 plan.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/emulation.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "util/time_series.hpp"

namespace anor::fault {

struct ChaosConfig {
  FaultPlan plan;
  /// Emulation seed (separate from the plan's fault seed).
  std::uint64_t seed = 1;
  double duration_s = 240.0;
  int node_count = 8;
  /// Recovery threshold as a fraction of the target.
  double recovery_band_frac = 0.05;
  /// Advanced overrides applied on top of the built-in scenario.
  cluster::EmulationConfig base;
};

struct ChaosResult {
  /// Error statistics over the whole run (reserve = recovery band).
  util::TrackingErrorStats tracking;
  /// |measured - target| / target averaged over the final 10 % of the run.
  double final_error_frac = 1.0;
  /// Seconds from the last scheduled disruption (crash/restart/disconnect
  /// end) until tracking re-entered the recovery band for good; 0 when it
  /// never left, -1 when it never recovered.
  double recovery_latency_s = -1.0;
  /// Watts of budget still assigned to jobs with no live endpoint at the
  /// end of the run.
  double leaked_budget_w = 0.0;
  bool recovered = false;
  std::size_t fault_events = 0;
  std::uint64_t leases_expired = 0;
  double target_w = 0.0;
  double end_time_s = 0.0;
  /// Canonical fault-event trace (the determinism witness).
  std::string event_trace;
  util::TimeSeries power_w;
  util::TimeSeries target_series_w;
};

/// Run the chaos scenario to completion.
ChaosResult run_chaos(const ChaosConfig& config);

}  // namespace anor::fault
