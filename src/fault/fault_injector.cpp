#include "fault/fault_injector.hpp"

#include <algorithm>

#include "platform/msr.hpp"
#include "util/logging.hpp"

namespace anor::fault {

namespace {

std::uint64_t channel_seed(std::uint64_t plan_seed, int job_id, bool manager_side) {
  const auto lane = static_cast<std::uint64_t>(job_id) * 2 + (manager_side ? 1 : 0);
  return util::splitmix64(plan_seed ^ util::splitmix64(lane + 0xFA017ULL));
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const NodeCrashSpec& spec : plan_.crashes) {
    CrashState state;
    state.spec = spec;
    state.resolved_job_id = spec.job_id;
    crashes_.push_back(state);
  }
}

double FaultInjector::last_scheduled_disruption_s() const {
  double last = -1.0;
  for (const CrashState& crash : crashes_) {
    last = std::max(last, crash.spec.restart_s > 0.0 ? crash.spec.restart_s
                                                     : crash.spec.crash_s);
  }
  if (plan_.channel.disconnect_until_s > plan_.channel.disconnect_from_s) {
    last = std::max(last, plan_.channel.disconnect_until_s);
  }
  return last;
}

void FaultInjector::arm(cluster::EmulatedCluster& cluster) {
  if (plan_.channel.any()) {
    const ChannelFaultSpec spec = plan_.channel;
    const std::uint64_t seed = plan_.seed;
    FaultEventLog* log = &log_;
    const util::VirtualClock* clock = &cluster.clock();
    cluster.set_channel_decorator(
        [spec, seed, log, clock](std::unique_ptr<cluster::MessageChannel> inner, int job_id,
                                 bool manager_side) -> std::unique_ptr<cluster::MessageChannel> {
          if (manager_side && !spec.manager_side) return inner;
          if (!manager_side && !spec.endpoint_side) return inner;
          return std::make_unique<FaultyChannel>(
              std::move(inner), spec, util::Rng(channel_seed(seed, job_id, manager_side)),
              *clock, job_id, manager_side ? "mgr" : "ep", log);
        });
  }

  if (plan_.msr.any()) {
    const MsrFaultSpec spec = plan_.msr;
    const util::VirtualClock* clock = &cluster.clock();
    FaultEventLog* log = &log_;
    platform::ClusterHw& hw = cluster.hardware_mut();
    for (int n = 0; n < hw.node_count(); ++n) {
      platform::Node& node = hw.node(n);
      for (int p = 0; p < node.package_count(); ++p) {
        // One stream per package so fault timing on one node never shifts
        // another's.
        auto rng = std::make_shared<util::Rng>(util::splitmix64(
            plan_.seed ^ util::splitmix64(static_cast<std::uint64_t>(n) * 64 +
                                          static_cast<std::uint64_t>(p) + 0x355EULL)));
        const int node_id = n;
        node.package(p).msr().set_fault_hook(
            [spec, clock, rng, log, node_id](std::uint32_t, bool is_write) {
              if (!spec.active_at(clock->now())) return false;
              const double prob = is_write ? spec.write_fault_prob : spec.read_fault_prob;
              if (prob <= 0.0 || !rng->coin(prob)) return false;
              if (log != nullptr) {
                FaultEvent event;
                event.t_s = clock->now();
                event.side = "msr";
                event.kind = is_write ? "msr_write" : "msr_read";
                event.msg_type = "-";
                event.job_id = node_id;
                log->record(std::move(event));
              }
              return true;
            });
      }
    }
    msr_armed_ = true;
  }

  if (!crashes_.empty()) {
    cluster.set_step_hook([this](cluster::EmulatedCluster& c, double now_s) {
      on_step(c, now_s);
    });
  }
}

void FaultInjector::on_step(cluster::EmulatedCluster& cluster, double now_s) {
  for (CrashState& crash : crashes_) {
    if (!crash.crashed && now_s >= crash.spec.crash_s) {
      int target = crash.spec.job_id;
      if (target < 0) {
        const std::vector<int> running = cluster.running_job_ids();
        if (running.empty()) {
          // Nothing to crash yet; give the schedule a grace window, then
          // drop the crash so the plan cannot spin forever.
          if (now_s > crash.spec.crash_s + 30.0) crash.crashed = true;
          continue;
        }
        target = *std::min_element(running.begin(), running.end());
      }
      if (cluster.crash_job_endpoint(target)) {
        crash.resolved_job_id = target;
        crash.crashed = true;
        FaultEvent event;
        event.t_s = now_s;
        event.side = "node";
        event.kind = "crash";
        event.msg_type = "-";
        event.job_id = target;
        log_.record(std::move(event));
      } else if (now_s > crash.spec.crash_s + 30.0) {
        crash.crashed = true;  // job never became crashable; give up
      }
    }
    if (crash.crashed && !crash.restarted && crash.spec.restart_s > 0.0 &&
        now_s >= crash.spec.restart_s && crash.resolved_job_id >= 0) {
      if (cluster.restart_job_endpoint(crash.resolved_job_id)) {
        crash.restarted = true;
        FaultEvent event;
        event.t_s = now_s;
        event.side = "node";
        event.kind = "restart";
        event.msg_type = "-";
        event.job_id = crash.resolved_job_id;
        log_.record(std::move(event));
      } else {
        // The job completed while its endpoint was down; nothing to
        // restart.
        crash.restarted = true;
      }
    }
  }
}

}  // namespace anor::fault
