// FaultInjector: binds a FaultPlan to an EmulatedCluster.
//
// arm() installs the three injection points the emulation exposes:
//   * a channel decorator wrapping each tier channel in a FaultyChannel
//     (child Rng per job and direction, so adding a job never perturbs
//     another job's fault stream),
//   * a step hook that drives the crash/restart schedule on the virtual
//     clock,
//   * MSR fault hooks on every package of every node for transient
//     read/write failures.
// The injector owns the FaultEventLog; event_trace() is the canonical
// determinism witness (same plan + seed => byte-identical text).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/emulation.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_channel.hpp"

namespace anor::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Install the plan's hooks on the cluster.  The injector must outlive
  /// the cluster's run.  Call once, before the first step.
  void arm(cluster::EmulatedCluster& cluster);

  const FaultPlan& plan() const { return plan_; }
  const FaultEventLog& log() const { return log_; }
  std::string event_trace() const { return log_.to_text(); }
  /// Virtual time of the last disruptive event (crash, restart, or the
  /// end of the disconnect window) — recovery latency is measured from
  /// here.  -1 when the plan has no scheduled disruption.
  double last_scheduled_disruption_s() const;

 private:
  void on_step(cluster::EmulatedCluster& cluster, double now_s);

  FaultPlan plan_;
  FaultEventLog log_;

  struct CrashState {
    NodeCrashSpec spec;
    int resolved_job_id = -1;
    bool crashed = false;
    bool restarted = false;
  };
  std::vector<CrashState> crashes_;
  bool msr_armed_ = false;
};

}  // namespace anor::fault
