// Process-wide policy registry (DESIGN.md 6j).
//
// The paper's four policies used to be a closed enum dispatched through
// switches; the registry turns the policy set open: a PolicyDescriptor
// bundles everything run_scenario needs to dispatch a policy — a stable
// name, the budgeter (a built-in kind or a custom factory), the feedback
// switches, the schedule-transform expectations (misclassification
// labels, the Adjusted label-stripping step), and optional per-backend
// config hooks — and policies register under their name at runtime.
//
// Built-ins vs. the open set:
//   * The four paper policies are registered by the registry constructor
//     itself and are *declarative only* (kind + flags, no factory), so
//     dispatch reaches the exact legacy code path and the golden trace
//     hashes (b3a442b79219c7d9 / 42ce5da3ae89f65c) are reproduced
//     bit-for-bit.
//   * Everything else is admission-gated: run_scenario refuses to
//     dispatch a non-built-in policy until it has passed the admission
//     harness (engine/policy_admission.hpp) — cross-backend parity plus
//     the chaos determinism gate.
//
// The registry is engine-layer: it may not depend on cluster/sim (sim
// depends on engine), so the per-backend hooks take forward-declared
// config types and are *applied* by the runner, which owns both stacks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "budget/budgeter.hpp"
#include "engine/scenario.hpp"

namespace anor::cluster {
struct EmulationConfig;
}  // namespace anor::cluster
namespace anor::sim {
struct SimConfig;
}  // namespace anor::sim

namespace anor::engine {

/// Everything the runner needs to dispatch one policy.
struct PolicyDescriptor {
  std::string name;
  std::string summary;

  /// True for the four paper policies: registered by the registry itself,
  /// exempt from admission, and guaranteed to take the legacy dispatch
  /// path (no factory, no hooks).
  bool builtin = false;

  /// Budgeter selection: when `budgeter_factory` is set it wins (the
  /// runner instruments and installs it); otherwise `budgeter_kind` is
  /// handed to budget::make_budgeter unchanged.
  budget::BudgeterKind budgeter_kind = budget::BudgeterKind::kEvenSlowdown;
  std::function<std::unique_ptr<budget::Budgeter>()> budgeter_factory;

  /// Emulated backend: job-tier feedback loop + cluster-tier model
  /// updates (the Adjusted policy's switches).
  bool feedback = false;

  /// Schedule-transform expectations:
  /// the policy wants misclassification labels applied to the schedule…
  bool expects_misclassification = false;
  /// …and, on the tabular backend, stripped again before the run (the
  /// Adjusted policy's converged-feedback model).
  bool strip_labels_for_tabular = false;

  /// Optional per-backend config hooks, applied by the runner after the
  /// declarative fields (advanced knobs the fields don't cover).
  std::function<void(cluster::EmulationConfig&)> apply_emulated;
  std::function<void(sim::SimConfig&)> apply_tabular;

  /// Non-empty for expression-DSL policies: the cap expression source
  /// (budget/policy_dsl.hpp).  Folded into identity() so two policies
  /// sharing a name but not a definition can never alias.
  std::string dsl_source;

  /// Stable identity for cache keys and conflict detection: the name for
  /// built-ins, "name#<16-hex dsl source hash>" for expression policies,
  /// "name#native" for other custom registrations.
  std::string identity() const;
};

/// The process-wide policy set.  Thread-safe; descriptors are returned by
/// value so concurrent re-registration cannot invalidate a reader.
class PolicyRegistry {
 public:
  /// The one shared instance (constructed with the four built-ins).
  static PolicyRegistry& global();

  /// Register a policy.  Re-registering the same identity is a no-op
  /// (idempotent, so specs carrying inline DSL can resolve repeatedly);
  /// a different definition under an existing name throws ConfigError.
  /// Built-in names are reserved.
  void register_policy(PolicyDescriptor descriptor);

  /// Convenience: register an expression-DSL policy (parse-checks the
  /// expression; throws ConfigError on syntax errors).
  void register_expression_policy(const std::string& name, const std::string& expr,
                                  const std::string& summary = "");

  /// Remove a non-built-in policy (tests; built-ins throw).
  void unregister(const std::string& name);

  bool contains(const std::string& name) const;

  /// Look up by name; throws ConfigError naming the available entries
  /// when unknown.
  PolicyDescriptor get(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// The four paper policies in legend order (uniform, characterized,
  /// misclassified, adjusted).
  static const std::vector<std::string>& builtin_names();

  /// Admission bookkeeping (set by policy_admission.cpp): a policy is
  /// admitted per-identity, so re-registering a name with a different
  /// definition resets its admission.
  bool is_admitted(const std::string& name) const;
  void mark_admitted(const std::string& name);
  void clear_admission(const std::string& name);

 private:
  PolicyRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, PolicyDescriptor> policies_;
  std::map<std::string, std::string> admitted_;  // name -> identity
};

/// Resolve a PolicyRef against the global registry.  A ref carrying an
/// inline DSL expression auto-registers it first (idempotent).  Throws
/// ConfigError for unknown names or conflicting re-definitions.
PolicyDescriptor resolve_policy(const PolicyRef& ref);

/// Budgeter factory for a descriptor: the descriptor's explicit factory,
/// an ExpressionBudgeter for DSL policies, or nullptr for declarative
/// descriptors (callers fall back to budget::make_budgeter(budgeter_kind)
/// — the built-ins' unchanged legacy path).
std::function<std::unique_ptr<budget::Budgeter>()> policy_budgeter_factory(
    const PolicyDescriptor& descriptor);

}  // namespace anor::engine
