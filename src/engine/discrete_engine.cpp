#include "engine/discrete_engine.hpp"

#include "telemetry/prof/prof.hpp"
#include "util/error.hpp"

namespace anor::engine {

namespace prof = telemetry::prof;

DiscreteEngine::DiscreteEngine(double step_s, ClockMode mode)
    : step_s_(step_s), mode_(mode) {
  if (step_s <= 0.0) throw util::ConfigError("DiscreteEngine: step_s must be positive");
  tick_prof_id_ = prof::Profiler::global().phase_id("engine.tick");
  housekeeping_prof_id_ = prof::Profiler::global().phase_id("engine.housekeeping");
}

void DiscreteEngine::add_component(std::string name, double period_s, ComponentFn fn,
                                   SpanMode span_mode) {
  Component component;
  component.prof_id = span_mode == SpanMode::kHousekeeping
                          ? housekeeping_prof_id_
                          : prof::Profiler::global().phase_id("engine." + name);
  component.name = std::move(name);
  component.period_s = period_s;
  component.next_due_s = 0.0;
  component.fn = std::move(fn);
  component.span_mode = span_mode;
  components_.push_back(std::move(component));
}

bool DiscreteEngine::step() {
  if (stopped_) return false;
  // Components run back-to-back, so their spans chain timestamps: each
  // component's end doubles as the next one's start, the tick span reuses
  // the chain's endpoints, and the chain carries across steps (step N's
  // final read is step N+1's first timestamp).  Consecutive kHousekeeping
  // components additionally share one "engine.housekeeping" span, closed
  // lazily at the next own-span component or at tick end.  On machines
  // with a slow (virtualized) TSC this read-thrift is what keeps the
  // enabled overhead inside the bench_prof_overhead budget.
  prof::ThreadBuffer* prof_buf = nullptr;
  std::int64_t t_prev = 0;
  std::int64_t t_tick = 0;
  if (prof::enabled()) {
    prof_buf = &prof::Profiler::global().local_buffer();
    t_prev = t_tick = prof_chain_valid_ ? prof_last_ticks_ : prof::now_ticks();
  } else {
    prof_chain_valid_ = false;
  }
  if (mode_ == ClockMode::kAdvanceFirst) {
    now_s_ += step_s_;
    if (external_clock_ != nullptr) external_clock_->advance_to(now_s_);
  }
  const double now = now_s_;
  bool housekeeping_open = false;
  for (Component& component : components_) {
    if (component.period_s > 0.0) {
      if (now + 1e-9 < component.next_due_s) continue;
      component.next_due_s = now + component.period_s;
    }
    if (housekeeping_open && component.span_mode == SpanMode::kOwnSpan) {
      const std::int64_t t = prof::now_ticks();
      prof_buf->record(housekeeping_prof_id_, 1, t_prev, t - t_prev);
      t_prev = t;
      housekeeping_open = false;
    }
    component.fn(now, step_s_);
    if (prof_buf != nullptr) {
      if (component.span_mode == SpanMode::kHousekeeping) {
        housekeeping_open = true;
      } else {
        const std::int64_t t = prof::now_ticks();
        prof_buf->record(component.prof_id, 1, t_prev, t - t_prev);
        t_prev = t;
      }
    }
  }
  if (prof_buf != nullptr) {
    if (housekeeping_open) {
      const std::int64_t t = prof::now_ticks();
      prof_buf->record(housekeeping_prof_id_, 1, t_prev, t - t_prev);
      t_prev = t;
    }
    prof_buf->record(tick_prof_id_, 0, t_tick, t_prev - t_tick);
    prof_last_ticks_ = t_prev;
    prof_chain_valid_ = true;
  }
  ++step_index_;
  if (mode_ == ClockMode::kAdvanceLast) {
    now_s_ += step_s_;
    if (external_clock_ != nullptr) external_clock_->advance_to(now_s_);
  }
  if (stop_ && stop_(now_s_)) stopped_ = true;
  return !stopped_;
}

std::vector<DiscreteEngine::ComponentInfo> DiscreteEngine::components() const {
  std::vector<ComponentInfo> infos;
  infos.reserve(components_.size());
  for (const Component& component : components_) {
    infos.push_back({component.name, component.period_s});
  }
  return infos;
}

}  // namespace anor::engine
