#include "engine/discrete_engine.hpp"

#include "util/error.hpp"

namespace anor::engine {

DiscreteEngine::DiscreteEngine(double step_s, ClockMode mode)
    : step_s_(step_s), mode_(mode) {
  if (step_s <= 0.0) throw util::ConfigError("DiscreteEngine: step_s must be positive");
}

void DiscreteEngine::add_component(std::string name, double period_s, ComponentFn fn) {
  Component component;
  component.name = std::move(name);
  component.period_s = period_s;
  component.next_due_s = 0.0;
  component.fn = std::move(fn);
  components_.push_back(std::move(component));
}

bool DiscreteEngine::step() {
  if (stopped_) return false;
  if (mode_ == ClockMode::kAdvanceFirst) {
    now_s_ += step_s_;
    if (external_clock_ != nullptr) external_clock_->advance_to(now_s_);
  }
  const double now = now_s_;
  for (Component& component : components_) {
    if (component.period_s <= 0.0) {
      component.fn(now, step_s_);
      continue;
    }
    if (now + 1e-9 >= component.next_due_s) {
      component.fn(now, step_s_);
      component.next_due_s = now + component.period_s;
    }
  }
  ++step_index_;
  if (mode_ == ClockMode::kAdvanceLast) {
    now_s_ += step_s_;
    if (external_clock_ != nullptr) external_clock_->advance_to(now_s_);
  }
  if (stop_ && stop_(now_s_)) stopped_ = true;
  return !stopped_;
}

std::vector<DiscreteEngine::ComponentInfo> DiscreteEngine::components() const {
  std::vector<ComponentInfo> infos;
  infos.reserve(components_.size());
  for (const Component& component : components_) {
    infos.push_back({component.name, component.period_s});
  }
  return infos;
}

}  // namespace anor::engine
