// Batch sweep executor (DESIGN.md 6i): grid in, per-cell RunResults out.
//
// Scheduling composes two levels of parallelism.  The *run level* is a
// small team of worker threads, each owning a private sim::WarmStart pool
// (NodeTable, ShardWorkers team, fitted models) and claiming cells from a
// longest-processing-time order (big cells first, by node_count ×
// duration) via an atomic cursor — classic LPT so a huge cell cannot land
// last and serialize the tail.  The *step level* is each run's own
// ShardWorkers sharding: with one run worker, big runs keep their
// configured step_workers team; with several run workers, cells default
// to serial stepping so many small runs pack per core instead of
// oversubscribing.  Step workers are bit-invariant, so this choice never
// changes results.
//
// Each claimed cell goes: materialize spec → canonical key → cache
// lookup → (on miss) warm or cold run → cache store.  Cache hits return
// the stored RunResult bit-for-bit.  The report lists cells in grid
// order regardless of completion order, so two identical sweeps differ
// only in wall-clock/cache-outcome metadata — never in results.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/sweep/result_cache.hpp"
#include "engine/sweep/sweep.hpp"

namespace anor::engine::sweep {

struct SweepOptions {
  /// Run-level worker threads (cells in flight at once).  0 = hardware
  /// concurrency, 1 = in-caller execution (no extra threads).
  int run_workers = 1;
  /// Reuse NodeTable/worker-team/fitted-model state across a worker's
  /// consecutive cells (bit-invisible; see sim::WarmStart).
  bool warm_start = true;
  /// Per-cell step_workers override: -1 = auto (keep the spec's value
  /// with one run worker, force serial stepping when packing runs),
  /// >= 0 forces that value.  Excluded from cache keys either way.
  int step_workers_override = -1;
  CacheConfig cache;
  /// Called after each cell completes (serialized; may interleave with
  /// running cells).  `done` counts completed cells.
  std::function<void(const struct SweepCellResult& cell, std::size_t done,
                     std::size_t total)>
      on_cell_done;
};

struct SweepCellResult {
  SweepCell cell;
  std::string spec_name;
  std::string key;  // canonical spec key (cache file stem)
  CacheOutcome cache = CacheOutcome::kOff;
  double wall_s = 0.0;
  RunResult result;
};

struct SweepReport {
  std::string grid_name;
  std::vector<SweepCellResult> cells;  // grid order
  CacheStats cache_stats;
  double wall_s = 0.0;
  std::size_t cells_computed = 0;
  std::size_t cache_hits = 0;
};

SweepReport run_sweep(const SweepGrid& grid, const SweepOptions& options = {});

/// Full report document (`anor.sweep_result.v1`): per-cell decimated
/// run-result artifacts plus wall/cache metadata and cache statistics.
util::Json sweep_report_json(const SweepReport& report);

/// Deterministic projection (`anor.sweep_results.v1`): per-cell canonical
/// key + full-fidelity result, nothing wall-clock- or cache-dependent —
/// two runs of the same grid produce byte-identical documents (the CI
/// sweep smoke compares these with cmp).
util::Json sweep_results_deterministic_json(const SweepReport& report);

}  // namespace anor::engine::sweep
