#include "engine/sweep/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "engine/runner.hpp"
#include "engine/sweep/spec_canon.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prof/prof.hpp"

namespace anor::engine::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Cheap size estimate (node-seconds) for LPT ordering, without paying
/// materialization: node count and duration are both readable straight
/// from the base/generate values plus the cell's assignment.
double cell_weight(const SweepGrid& grid, const SweepCell& cell) {
  double nodes = grid.base.node_count;
  double duration =
      grid.generate.enabled ? grid.generate.duration_s : grid.base.schedule.duration_s;
  for (const auto& [field, value] : cell.assignment) {
    if (field == "node_count" && value.is_number()) nodes = value.as_number();
    if (field == "duration_s" && value.is_number()) duration = value.as_number();
  }
  return nodes * std::max(duration, 1.0);
}

struct SweepMetrics {
  telemetry::Counter* cells_done = nullptr;
  telemetry::Counter* cells_computed = nullptr;
  telemetry::Counter* cache_hits = nullptr;

  SweepMetrics() {
    auto& registry = telemetry::MetricsRegistry::global();
    cells_done = &registry.counter("sweep.cells_done");
    cells_computed = &registry.counter("sweep.cells_computed");
    cache_hits = &registry.counter("sweep.cache_hits");
  }
};

}  // namespace

SweepReport run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  const auto sweep_start = Clock::now();
  const std::vector<SweepCell> cells = grid.expand();

  std::size_t run_workers = options.run_workers > 0
                                ? static_cast<std::size_t>(options.run_workers)
                                : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  run_workers = std::min(run_workers, std::max<std::size_t>(1, cells.size()));

  // LPT order: biggest cells claimed first so a large run cannot be the
  // last one dispatched.  Stable tie-break on grid order keeps the claim
  // sequence deterministic.
  std::vector<std::size_t> order(cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cell_weight(grid, cells[a]) > cell_weight(grid, cells[b]);
  });

  SweepMaterializer materializer(grid);
  ResultCache cache(options.cache);
  SweepMetrics metrics;

  SweepReport report;
  report.grid_name = grid.name;
  report.cells.resize(cells.size());

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  const auto worker_body = [&]() {
    sim::WarmStart warm;
    for (;;) {
      const std::size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
      if (slot >= order.size()) return;
      const SweepCell& cell = cells[order[slot]];

      ANOR_PROF_SCOPE("sweep.cell");
      const auto cell_start = Clock::now();
      ScenarioSpec spec = materializer.materialize(cell);

      // Step-level sharding policy: with several run workers the cells
      // step serially (pack many runs per core); a non-negative override
      // pins it.  Bit-invariant either way, and excluded from the key.
      int step_override = options.step_workers_override;
      if (step_override < 0 && run_workers > 1) step_override = 1;
      if (step_override >= 0) spec.step_workers = step_override;

      SweepCellResult out;
      out.cell = cell;
      out.spec_name = spec.name;
      // Canonicalization serializes the whole materialized schedule —
      // milliseconds for large grids — so it runs once per cell, only
      // when a cache will use it.  Cache-off reports carry an empty key.
      CanonicalSpec canon;
      if (cache.config().enabled()) {
        canon = canonicalize_spec(spec);
        out.key = canon.key;
      }
      out.cache = cache.lookup(canon, &out.result);
      if (out.cache == CacheOutcome::kOff || out.cache == CacheOutcome::kMiss) {
        if (options.warm_start) {
          out.result = run_scenario_warm(spec, warm);
        } else {
          out.result = run_scenario(spec);
        }
        cache.store(canon, out.result);
        metrics.cells_computed->inc();
      } else {
        metrics.cache_hits->inc();
      }
      out.wall_s = seconds_since(cell_start);
      metrics.cells_done->inc();

      report.cells[cell.index] = std::move(out);  // disjoint slots, no lock
      const std::size_t finished = done.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (options.on_cell_done) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options.on_cell_done(report.cells[cell.index], finished, cells.size());
      }
    }
  };

  if (run_workers <= 1) {
    worker_body();
  } else {
    std::vector<std::exception_ptr> errors(run_workers);
    std::vector<std::thread> threads;
    threads.reserve(run_workers);
    for (std::size_t w = 0; w < run_workers; ++w) {
      threads.emplace_back([&, w] {
        try {
          worker_body();
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::exception_ptr& e : errors) {
      if (e != nullptr) std::rethrow_exception(e);
    }
  }

  report.cache_stats = cache.stats();
  report.wall_s = seconds_since(sweep_start);
  for (const SweepCellResult& cell : report.cells) {
    if (cell.cache == CacheOutcome::kMemoryHit || cell.cache == CacheOutcome::kDiskHit) {
      ++report.cache_hits;
    } else {
      ++report.cells_computed;
    }
  }
  return report;
}

util::Json sweep_report_json(const SweepReport& report) {
  util::JsonArray cells;
  for (const SweepCellResult& cell : report.cells) {
    util::JsonObject c;
    c["index"] = util::Json(cell.cell.index);
    c["name"] = util::Json(cell.cell.name);
    c["spec_name"] = util::Json(cell.spec_name);
    c["key"] = util::Json(cell.key);
    c["cache"] = util::Json(std::string(to_string(cell.cache)));
    c["wall_s"] = util::Json(cell.wall_s);
    c["result"] = run_result_json(cell.result);
    cells.push_back(util::Json(std::move(c)));
  }

  util::JsonObject stats;
  stats["lookups"] = util::Json(report.cache_stats.lookups);
  stats["memory_hits"] = util::Json(report.cache_stats.memory_hits);
  stats["disk_hits"] = util::Json(report.cache_stats.disk_hits);
  stats["misses"] = util::Json(report.cache_stats.misses);
  stats["stores"] = util::Json(report.cache_stats.stores);
  stats["invalidated"] = util::Json(report.cache_stats.invalidated);
  stats["hit_rate"] = util::Json(report.cache_stats.hit_rate());

  util::JsonObject root;
  root["schema"] = util::Json(std::string("anor.sweep_result.v1"));
  root["grid"] = util::Json(report.grid_name);
  root["cells_total"] = util::Json(report.cells.size());
  root["cells_computed"] = util::Json(report.cells_computed);
  root["cache_hits"] = util::Json(report.cache_hits);
  root["wall_s"] = util::Json(report.wall_s);
  root["cache_stats"] = util::Json(std::move(stats));
  root["cells"] = util::Json(std::move(cells));
  return util::Json(std::move(root));
}

util::Json sweep_results_deterministic_json(const SweepReport& report) {
  util::JsonArray cells;
  for (const SweepCellResult& cell : report.cells) {
    util::JsonObject c;
    c["index"] = util::Json(cell.cell.index);
    c["name"] = util::Json(cell.cell.name);
    c["key"] = util::Json(cell.key);
    c["result"] = run_result_to_cache_json(cell.result);
    cells.push_back(util::Json(std::move(c)));
  }
  util::JsonObject root;
  root["schema"] = util::Json(std::string("anor.sweep_results.v1"));
  root["epoch"] = util::Json(std::string(kCacheEpoch));
  root["grid"] = util::Json(report.grid_name);
  root["cells"] = util::Json(std::move(cells));
  return util::Json(std::move(root));
}

}  // namespace anor::engine::sweep
