// Canonical ScenarioSpec form and cache key (DESIGN.md 6i).
//
// Determinism makes every RunResult a pure function of the *semantic*
// content of its spec, so results are cacheable — if two spellings of the
// same scenario reliably produce the same key.  The canonicalizer goes
// through the parsed ScenarioSpec struct, which already erases input
// field order and materializes defaults, and re-emits one normal form:
//
//   - every semantic field present, defaults included (absent
//     static_budget_w / targets become explicit nulls);
//   - keys sorted (util::JsonObject is a std::map) and the dump compact,
//     so formatting cannot vary;
//   - floats canonicalized by the JSON writer's exact round-trip format
//     (%.17g, integral values as integers) with -0.0 normalized to 0.0;
//   - execution-only knobs excluded: `name`, `artifact_dir`,
//     `artifact_cadence_s` never affect the result, and `step_workers` /
//     `step_shard_nodes` are bit-invariant by the sharding determinism
//     contract (pinned by the golden worker-matrix tests) — two runs
//     differing only in these MUST share a cache entry.
//
// The FNV-1a key is seeded with kCacheEpoch, which folds in the golden
// trace hashes: when an engine change moves the goldens, every old cache
// key stops matching and stale caches self-invalidate.
#pragma once

#include <cstdint>
#include <string>

#include "engine/scenario.hpp"
#include "util/json.hpp"

namespace anor::engine::sweep {

/// Cache-epoch stamp: schema + the golden trace hashes the determinism
/// suite pins (tests/sim/determinism_test.cpp, bench_prof_overhead).
/// Bump-by-construction: a behavior change that moves a golden must
/// update this string (the determinism tests fail first), which retires
/// every previously written cache entry.
inline constexpr char kCacheEpoch[] =
    "anor.run_result.v1+golden:b3a442b79219c7d9/42ce5da3ae89f65c";

/// The canonical JSON form (object with sorted keys, defaults
/// materialized, execution knobs excluded).
util::Json canonical_spec_json(const ScenarioSpec& spec);

/// Compact dump of canonical_spec_json — the exact bytes hashed, stored
/// alongside disk entries so a key collision can never serve a wrong
/// result.
std::string canonical_spec_string(const ScenarioSpec& spec);

/// FNV-1a 64 over kCacheEpoch then the canonical string.
std::uint64_t canonical_spec_hash(const ScenarioSpec& spec);

/// canonical_spec_hash as 16 lowercase hex digits (the cache file stem).
std::string canonical_spec_key(const ScenarioSpec& spec);

/// The canonical string and its key, computed in one serialization pass.
/// The dump is O(schedule) — milliseconds for large grids — so callers
/// that need both (the cache probes with the key, then verifies the
/// string) should canonicalize once and reuse it.
struct CanonicalSpec {
  std::string canonical;  // exact bytes hashed (canonical_spec_string)
  std::string key;        // 16 hex digits (canonical_spec_key)
};

CanonicalSpec canonicalize_spec(const ScenarioSpec& spec);

}  // namespace anor::engine::sweep
