// Sweep grids: base scenario × axes → N ScenarioSpecs (DESIGN.md 6i).
//
// The ROADMAP's sweep/service north-star and the controller-autotuning
// papers both want "hundreds of runs over policy × signal × utilization ×
// node count" as one cheap batch.  A grid (JSON `anor.sweep.v1`) is a
// base ScenarioSpec plus a list of axes; expansion is the cartesian
// product in declaration order (first axis slowest), so cell order, cell
// names, and the per-cell specs are all deterministic functions of the
// grid document.
//
// Cells may carry a fixed schedule in the base spec, or ask the grid to
// *generate* workload (Poisson schedule from the standard NAS types) and
// grid signals (static budget / demand-response / carbon / tariff
// targets) per cell.  The SweepMaterializer memoizes generated schedules
// and target series by their semantic inputs, so thirty-two cells that
// differ only in policy share one generated workload table instead of
// resampling it thirty-two times — the "shared immutable workload tables"
// half of the warm-start story.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/scenario.hpp"
#include "util/json.hpp"

namespace anor::engine::sweep {

/// Per-cell workload/signal generation knobs (grid "generate" object).
struct SweepGenerate {
  bool enabled = false;
  double duration_s = 3600.0;
  double utilization = 0.8;
  /// Power objective: "none" (unconstrained), "budget" (static
  /// budget_per_node_w × nodes), "dr" (random-walk regulation around a
  /// bid), "carbon" (carbon-intensity-following targets), "tariff"
  /// (time-of-use tariff targets).
  std::string signal = "none";
  bool long_types_only = true;
  double budget_per_node_w = 150.0;
  /// Applied only when the cell's policy expects labels
  /// (misclassified/adjusted): every TRUE_TYPE instance is labeled
  /// CLASSIFIED_AS, mirroring `anorctl run --misclassify`.
  std::string misclassify_true = "bt.D.x";
  std::string misclassify_as = "is.D.x";
};

/// One swept dimension: a spec/generate field and its values.  Supported
/// fields: policy, backend, signal, utilization, duration_s, node_count,
/// seed, perf_variation_sigma, static_budget_w, step_workers.
struct SweepAxis {
  std::string field;
  std::vector<util::Json> values;
};

/// One point of the expanded grid.
struct SweepCell {
  std::size_t index = 0;
  std::string name;  // "policy=uniform/utilization=0.7"
  std::vector<std::pair<std::string, util::Json>> assignment;
};

/// A custom policy defined by the grid document itself (grid "policies"
/// array): registered in the global PolicyRegistry before the base spec
/// and axes are parsed, so axis values can reference it by name.
struct SweepPolicyDef {
  std::string name;
  std::string expr;  // expression-DSL source (budget/policy_dsl.hpp)
  std::string summary;
};

struct SweepGrid {
  std::string name = "sweep";
  ScenarioSpec base;
  SweepGenerate generate;
  std::vector<SweepPolicyDef> policies;
  std::vector<SweepAxis> axes;

  /// Parse `anor.sweep.v1`: {schema, name, policies: [{name, expr,
  /// summary}], base: <anor.scenario.v1 fields>, generate: {...},
  /// axes: [{field, values: [...]}]}.  The base object may omit the
  /// schedule when generation is enabled.  Policy definitions are
  /// registered (idempotently) as a side effect.  Throws
  /// util::ConfigError on unknown axis fields or malformed values.
  static SweepGrid from_json(const util::Json& json);

  std::size_t cell_count() const;
  /// Cartesian expansion, first axis slowest; deterministic names/order.
  std::vector<SweepCell> expand() const;
};

/// Cell → runnable ScenarioSpec, sharing generated workload/target tables
/// across cells.  materialize() is thread-safe (the executor's run
/// workers materialize concurrently); memoized tables are returned by
/// copy so per-run mutation (policy label stripping, sorting) cannot leak
/// between cells.  A fresh materializer per cell reproduces the cold
/// no-sharing path bit-for-bit (the bench's sequential baseline).
class SweepMaterializer {
 public:
  explicit SweepMaterializer(const SweepGrid& grid) : grid_(grid) {}

  ScenarioSpec materialize(const SweepCell& cell);

 private:
  const SweepGrid& grid_;
  std::mutex mutex_;
  std::map<std::string, workload::Schedule> schedules_;
  std::map<std::string, util::TimeSeries> targets_;
};

/// Validate an axis field name (shared by from_json and tests).
bool is_sweep_axis_field(const std::string& field);

}  // namespace anor::engine::sweep
