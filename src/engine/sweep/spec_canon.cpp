#include "engine/sweep/spec_canon.hpp"

#include <cstdio>

#include "budget/policy_dsl.hpp"
#include "engine/policy_registry.hpp"

namespace anor::engine::sweep {

namespace {

/// -0.0 and 0.0 compare equal but print differently; fold to the one
/// spelling so the canonical bytes (and hence the key) agree.
double canon_num(double d) { return d == 0.0 ? 0.0 : d; }

util::Json canon_series(const util::TimeSeries& series) {
  util::JsonArray t;
  util::JsonArray v;
  for (std::size_t i = 0; i < series.size(); ++i) {
    t.push_back(util::Json(canon_num(series.times()[i])));
    v.push_back(util::Json(canon_num(series.values()[i])));
  }
  util::JsonObject obj;
  obj["t_s"] = util::Json(std::move(t));
  obj["power_w"] = util::Json(std::move(v));
  return util::Json(std::move(obj));
}

util::Json canon_schedule(const workload::Schedule& schedule) {
  util::JsonArray jobs;
  for (const workload::JobRequest& job : schedule.jobs) {
    util::JsonObject j;
    // Every field materialized — Schedule::to_json omits empty
    // classified_as / zero walltime hints, which is fine for storage but
    // would make "default spelled out" hash differently from "default
    // omitted" if reused here.
    j["id"] = util::Json(job.job_id);
    j["type"] = util::Json(job.type_name);
    j["submit_s"] = util::Json(canon_num(job.submit_time_s));
    j["nodes"] = util::Json(job.nodes);
    j["classified_as"] = util::Json(job.classified_as);
    j["walltime_hint_s"] = util::Json(canon_num(job.walltime_hint_s));
    jobs.push_back(util::Json(std::move(j)));
  }
  util::JsonObject obj;
  obj["duration_s"] = util::Json(canon_num(schedule.duration_s));
  obj["jobs"] = util::Json(std::move(jobs));
  return util::Json(std::move(obj));
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

/// Full identity of a non-built-in policy ("" for built-ins): the
/// registry name plus, for expression policies, the DSL source hash.
/// Two custom policies sharing a name but not a definition must never
/// alias one cache entry; built-ins contribute only their name so the
/// canonical bytes (and every pre-registry cache key) are unchanged.
std::string policy_identity_for_cache(const PolicyRef& policy) {
  if (!policy.dsl.empty()) {
    // Inline definitions carry their own identity whether or not they
    // have been registered yet — the key must not depend on process
    // registration state.
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(budget::dsl_source_hash(policy.dsl)));
    return policy.name + "#" + buf;
  }
  PolicyRegistry& registry = PolicyRegistry::global();
  if (!registry.contains(policy.name)) return policy.name + "#unregistered";
  const PolicyDescriptor descriptor = registry.get(policy.name);
  return descriptor.builtin ? std::string() : descriptor.identity();
}

util::Json canonical_spec_json(const ScenarioSpec& spec) {
  util::JsonObject obj;
  obj["backend"] = util::Json(to_string(spec.backend));
  obj["policy"] = util::Json(to_string(spec.policy));
  const std::string identity = policy_identity_for_cache(spec.policy);
  if (!identity.empty()) obj["policy_identity"] = util::Json(identity);
  obj["schedule"] = canon_schedule(spec.schedule);
  obj["static_budget_w"] = spec.static_budget_w
                               ? util::Json(canon_num(*spec.static_budget_w))
                               : util::Json(nullptr);
  obj["targets"] = spec.targets.empty() ? util::Json(nullptr) : canon_series(spec.targets);
  obj["node_count"] = util::Json(spec.node_count);
  obj["perf_variation_sigma"] = util::Json(canon_num(spec.perf_variation_sigma));
  // Decimal string, not a JSON number: a uint64 seed above 2^53 would
  // lose bits through the double representation.
  obj["seed"] = util::Json(std::to_string(spec.seed));
  obj["tracking_warmup_s"] = util::Json(canon_num(spec.tracking_warmup_s));
  obj["tracking_reserve_w"] = util::Json(canon_num(spec.tracking_reserve_w));
  return util::Json(std::move(obj));
}

std::string canonical_spec_string(const ScenarioSpec& spec) {
  return canonical_spec_json(spec).dump();
}

std::uint64_t canonical_spec_hash(const ScenarioSpec& spec) {
  const std::string canon = canonical_spec_string(spec);
  std::uint64_t h = fnv1a(kFnvOffset, kCacheEpoch, sizeof(kCacheEpoch) - 1);
  return fnv1a(h, canon.data(), canon.size());
}

std::string canonical_spec_key(const ScenarioSpec& spec) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(canonical_spec_hash(spec)));
  return std::string(buf);
}

CanonicalSpec canonicalize_spec(const ScenarioSpec& spec) {
  CanonicalSpec canon;
  canon.canonical = canonical_spec_string(spec);
  std::uint64_t h = fnv1a(kFnvOffset, kCacheEpoch, sizeof(kCacheEpoch) - 1);
  h = fnv1a(h, canon.canonical.data(), canon.canonical.size());
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  canon.key = buf;
  return canon;
}

}  // namespace anor::engine::sweep
