// Two-tier deterministic result cache (DESIGN.md 6i).
//
// Every RunResult is a pure function of its spec's canonical form, so a
// cache hit may substitute for a run outright — provided the stored bytes
// reproduce the RunResult bit-for-bit.  run_result_json decimates the
// power series for artifact size; the cache therefore has its own
// full-fidelity serialization (anor.result_cache.v1) that round-trips
// every field exactly (the JSON writer prints doubles with %.17g, which
// round-trips IEEE doubles).
//
// Tiers:
//   memory — mutex-protected map keyed by the canonical hex key, holding
//            the RunResult by value; hits copy it out (no re-parse).
//   disk   — one `<key>.json` file per entry under `dir`, written
//            atomically (tmp + rename).  Entries carry the cache epoch
//            and the full canonical spec string; a mismatch in either —
//            stale golden hashes after an engine change, or a key
//            collision — reads as a miss, so stale caches self-invalidate
//            and collisions can never serve a wrong result.  Corrupt or
//            unparseable files are likewise just misses.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/scenario.hpp"
#include "engine/sweep/spec_canon.hpp"
#include "util/json.hpp"

namespace anor::engine::sweep {

struct CacheConfig {
  bool memory = true;
  bool disk = true;
  std::string dir = ".anor-cache";

  bool enabled() const { return memory || disk; }
  static CacheConfig off() { return CacheConfig{false, false, ""}; }
};

enum class CacheOutcome { kOff, kMiss, kMemoryHit, kDiskHit };
const char* to_string(CacheOutcome outcome);
/// "hit" | "miss" | "off" — the bench provenance vocabulary
/// (BENCH_*.json "cache" field; compare_bench.py refuses to compare a
/// cached wall time against a computed one).
const char* cache_state(CacheOutcome outcome);

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  /// Disk entries rejected for epoch/spec mismatch or parse failure.
  std::uint64_t invalidated = 0;

  std::uint64_t hits() const { return memory_hits + disk_hits; }
  double hit_rate() const {
    return lookups > 0 ? static_cast<double>(hits()) / static_cast<double>(lookups) : 0.0;
  }
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config = {});

  const CacheConfig& config() const { return config_; }

  /// Probe memory then disk for the spec's canonical key.  On a hit,
  /// fills `result` with the stored RunResult (bit-identical to the run
  /// that produced it) and promotes disk hits into the memory tier.
  /// Thread-safe.
  CacheOutcome lookup(const ScenarioSpec& spec, RunResult* result);
  /// Same, against a precomputed canonical form (canonicalization
  /// serializes the whole schedule; a lookup + store pair should pay it
  /// once, not three times).
  CacheOutcome lookup(const CanonicalSpec& canon, RunResult* result);

  /// Store a computed result under the spec's canonical key in every
  /// enabled tier.  Thread-safe.
  void store(const ScenarioSpec& spec, const RunResult& result);
  void store(const CanonicalSpec& canon, const RunResult& result);

  CacheStats stats() const;

 private:
  struct MemoryEntry {
    std::string spec_canonical;
    RunResult result;
  };

  std::string entry_path(const std::string& key) const;
  CacheOutcome lookup_disk(const std::string& key, const std::string& canonical,
                           RunResult* result);

  CacheConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, MemoryEntry> memory_;
  CacheStats stats_;
};

/// Full-fidelity RunResult round-trip (every CompletedJob/report field,
/// undecimated series, QoS records in insertion order).  Exposed for the
/// cache tests' bit-for-bit checks.
util::Json run_result_to_cache_json(const RunResult& result);
RunResult run_result_from_cache_json(const util::Json& json);

}  // namespace anor::engine::sweep
