#include "engine/sweep/result_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "engine/sweep/spec_canon.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace anor::engine::sweep {

namespace {

constexpr char kCacheSchema[] = "anor.result_cache.v1";

util::Json series_json(const util::TimeSeries& series) {
  util::JsonArray t;
  util::JsonArray v;
  for (std::size_t i = 0; i < series.size(); ++i) {
    t.push_back(util::Json(series.times()[i]));
    v.push_back(util::Json(series.values()[i]));
  }
  util::JsonObject obj;
  obj["t_s"] = util::Json(std::move(t));
  obj["value"] = util::Json(std::move(v));
  return util::Json(std::move(obj));
}

util::TimeSeries series_from(const util::Json& json) {
  const util::JsonArray& t = json.at("t_s").as_array();
  const util::JsonArray& v = json.at("value").as_array();
  if (t.size() != v.size()) throw util::ConfigError("result cache: series size mismatch");
  util::TimeSeries series;
  for (std::size_t i = 0; i < t.size(); ++i) series.add(t[i].as_number(), v[i].as_number());
  return series;
}

}  // namespace

const char* to_string(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kOff: return "off";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kMemoryHit: return "memory_hit";
    case CacheOutcome::kDiskHit: return "disk_hit";
  }
  return "?";
}

const char* cache_state(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kOff: return "off";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kMemoryHit:
    case CacheOutcome::kDiskHit: return "hit";
  }
  return "?";
}

util::Json run_result_to_cache_json(const RunResult& result) {
  util::JsonArray jobs;
  for (const CompletedJob& job : result.completed) {
    util::JsonObject j;
    j["id"] = util::Json(job.request.job_id);
    j["type"] = util::Json(job.request.type_name);
    j["submit_time_s"] = util::Json(job.request.submit_time_s);
    j["req_nodes"] = util::Json(job.request.nodes);
    j["classified_as"] = util::Json(job.request.classified_as);
    j["walltime_hint_s"] = util::Json(job.request.walltime_hint_s);
    j["report"] = job.report.to_json();
    j["submit_s"] = util::Json(job.submit_s);
    j["start_s"] = util::Json(job.start_s);
    j["end_s"] = util::Json(job.end_s);
    j["reference_runtime_s"] = util::Json(job.reference_runtime_s);
    jobs.push_back(util::Json(std::move(j)));
  }

  util::JsonObject tracking;
  tracking["mean_error"] = util::Json(result.tracking.mean_error);
  tracking["p90_error"] = util::Json(result.tracking.p90_error);
  tracking["max_error"] = util::Json(result.tracking.max_error);
  tracking["fraction_within_30"] = util::Json(result.tracking.fraction_within_30);
  tracking["samples"] = util::Json(static_cast<double>(result.tracking.samples));

  util::JsonArray qos_records;
  for (const sched::JobQosRecord& record : result.qos.records()) {
    util::JsonObject r;
    r["id"] = util::Json(record.job_id);
    r["type"] = util::Json(record.type_name);
    r["submit_s"] = util::Json(record.submit_s);
    r["start_s"] = util::Json(record.start_s);
    r["end_s"] = util::Json(record.end_s);
    r["t_min_s"] = util::Json(record.t_min_s);
    qos_records.push_back(util::Json(std::move(r)));
  }
  util::JsonObject qos;
  qos["limit"] = util::Json(result.qos.constraint().limit);
  qos["probability"] = util::Json(result.qos.constraint().probability);
  qos["records"] = util::Json(std::move(qos_records));

  util::JsonObject root;
  root["jobs"] = util::Json(std::move(jobs));
  root["power_w"] = series_json(result.power_w);
  root["target_w"] = series_json(result.target_w);
  root["tracking"] = util::Json(std::move(tracking));
  root["qos"] = util::Json(std::move(qos));
  root["end_time_s"] = util::Json(result.end_time_s);
  root["jobs_submitted"] = util::Json(result.jobs_submitted);
  root["jobs_completed"] = util::Json(result.jobs_completed);
  root["mean_utilization"] = util::Json(result.mean_utilization);
  return util::Json(std::move(root));
}

RunResult run_result_from_cache_json(const util::Json& json) {
  RunResult result;
  for (const util::Json& item : json.at("jobs").as_array()) {
    CompletedJob job;
    job.request.job_id = static_cast<int>(item.at("id").as_int());
    job.request.type_name = item.at("type").as_string();
    job.request.submit_time_s = item.at("submit_time_s").as_number();
    job.request.nodes = static_cast<int>(item.at("req_nodes").as_int());
    job.request.classified_as = item.at("classified_as").as_string();
    job.request.walltime_hint_s = item.at("walltime_hint_s").as_number();
    job.report = geopm::JobReport::from_json(item.at("report"));
    job.submit_s = item.at("submit_s").as_number();
    job.start_s = item.at("start_s").as_number();
    job.end_s = item.at("end_s").as_number();
    job.reference_runtime_s = item.at("reference_runtime_s").as_number();
    result.completed.push_back(std::move(job));
  }
  result.power_w = series_from(json.at("power_w"));
  result.target_w = series_from(json.at("target_w"));

  const util::Json& tracking = json.at("tracking");
  result.tracking.mean_error = tracking.at("mean_error").as_number();
  result.tracking.p90_error = tracking.at("p90_error").as_number();
  result.tracking.max_error = tracking.at("max_error").as_number();
  result.tracking.fraction_within_30 = tracking.at("fraction_within_30").as_number();
  result.tracking.samples = static_cast<std::size_t>(tracking.at("samples").as_int());

  const util::Json& qos = json.at("qos");
  sched::QosConstraint constraint;
  constraint.limit = qos.at("limit").as_number();
  constraint.probability = qos.at("probability").as_number();
  result.qos = sched::QosEvaluator(constraint);
  for (const util::Json& item : qos.at("records").as_array()) {
    sched::JobQosRecord record;
    record.job_id = static_cast<int>(item.at("id").as_int());
    record.type_name = item.at("type").as_string();
    record.submit_s = item.at("submit_s").as_number();
    record.start_s = item.at("start_s").as_number();
    record.end_s = item.at("end_s").as_number();
    record.t_min_s = item.at("t_min_s").as_number();
    result.qos.add(std::move(record));
  }

  result.end_time_s = json.at("end_time_s").as_number();
  result.jobs_submitted = static_cast<int>(json.at("jobs_submitted").as_int());
  result.jobs_completed = static_cast<int>(json.at("jobs_completed").as_int());
  result.mean_utilization = json.at("mean_utilization").as_number();
  return result;
}

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {}

std::string ResultCache::entry_path(const std::string& key) const {
  return config_.dir + "/" + key + ".json";
}

CacheOutcome ResultCache::lookup(const ScenarioSpec& spec, RunResult* result) {
  if (!config_.enabled()) return CacheOutcome::kOff;
  return lookup(canonicalize_spec(spec), result);
}

CacheOutcome ResultCache::lookup(const CanonicalSpec& canon, RunResult* result) {
  if (!config_.enabled()) return CacheOutcome::kOff;
  const std::string& key = canon.key;
  const std::string& canonical = canon.canonical;

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  if (config_.memory) {
    const auto it = memory_.find(key);
    if (it != memory_.end() && it->second.spec_canonical == canonical) {
      *result = it->second.result;
      ++stats_.memory_hits;
      return CacheOutcome::kMemoryHit;
    }
  }
  if (config_.disk) {
    const CacheOutcome outcome = lookup_disk(key, canonical, result);
    if (outcome == CacheOutcome::kDiskHit) {
      if (config_.memory) memory_[key] = MemoryEntry{canonical, *result};
      ++stats_.disk_hits;
      return outcome;
    }
  }
  ++stats_.misses;
  return CacheOutcome::kMiss;
}

CacheOutcome ResultCache::lookup_disk(const std::string& key, const std::string& canonical,
                                      RunResult* result) {
  const std::string path = entry_path(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return CacheOutcome::kMiss;
  try {
    const util::Json entry = util::load_json_file(path);
    if (entry.string_or("schema", "") != kCacheSchema ||
        entry.string_or("epoch", "") != kCacheEpoch ||
        entry.string_or("spec_canonical", "") != canonical) {
      // Stale epoch (the engine's golden hashes moved), a foreign schema,
      // or a key collision: never serve it.  Stale entries are left for
      // the next store() to overwrite.
      ++stats_.invalidated;
      return CacheOutcome::kMiss;
    }
    *result = run_result_from_cache_json(entry.at("result"));
    return CacheOutcome::kDiskHit;
  } catch (const std::exception& e) {
    // Truncated/corrupt entries read as misses, not failures.
    util::log_warn("sweep", "result cache: dropping unreadable entry " + path + " (" +
                               e.what() + ")");
    ++stats_.invalidated;
    return CacheOutcome::kMiss;
  }
}

void ResultCache::store(const ScenarioSpec& spec, const RunResult& result) {
  if (!config_.enabled()) return;
  store(canonicalize_spec(spec), result);
}

void ResultCache::store(const CanonicalSpec& canon, const RunResult& result) {
  if (!config_.enabled()) return;
  const std::string& key = canon.key;
  const std::string& canonical = canon.canonical;

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  if (config_.memory) memory_[key] = MemoryEntry{canonical, result};
  if (config_.disk) {
    util::JsonObject entry;
    entry["schema"] = util::Json(std::string(kCacheSchema));
    entry["epoch"] = util::Json(std::string(kCacheEpoch));
    entry["key"] = util::Json(key);
    entry["spec_canonical"] = util::Json(canonical);
    entry["result"] = run_result_to_cache_json(result);
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    // Atomic publish: readers (this process or another) either see a
    // complete entry or none.  A failed write degrades to "no disk
    // cache", never to a corrupt hit.
    const std::string tmp = entry_path(key) + ".tmp";
    try {
      util::save_json_file(tmp, util::Json(std::move(entry)), -1);
      std::filesystem::rename(tmp, entry_path(key), ec);
      if (ec) {
        util::log_warn("sweep", "result cache: publish failed for " + key + ": " +
                                    ec.message());
        std::filesystem::remove(tmp, ec);
      }
    } catch (const std::exception& e) {
      util::log_warn("sweep",
                     "result cache: write failed for " + key + ": " + e.what());
      std::filesystem::remove(tmp, ec);
    }
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace anor::engine::sweep
