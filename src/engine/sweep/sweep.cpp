#include "engine/sweep/sweep.hpp"

#include <cstdio>
#include <utility>

#include "engine/policy_registry.hpp"
#include "util/error.hpp"
#include "workload/grid_signals.hpp"
#include "workload/job_type.hpp"
#include "workload/regulation.hpp"
#include "workload/schedule.hpp"

namespace anor::engine::sweep {

namespace {

const char* const kAxisFields[] = {"policy",          "backend",        "signal",
                                   "utilization",     "duration_s",     "node_count",
                                   "seed",            "perf_variation_sigma",
                                   "static_budget_w", "step_workers"};

/// Base-spec parsing without ScenarioSpec::validate(): a grid base may
/// legitimately omit the schedule (generation supplies one per cell).
/// Field names/defaults mirror scenario_spec_from_json.
ScenarioSpec base_from_json(const util::Json& json) {
  ScenarioSpec spec;
  spec.name = json.string_or("name", spec.name);
  spec.backend = backend_from_string(json.string_or("backend", "tabular"));
  if (json.contains("schedule")) {
    spec.schedule = workload::Schedule::from_json(json.at("schedule"));
  }
  if (json.contains("policy")) spec.policy = policy_ref_from_json(json.at("policy"));
  if (json.contains("static_budget_w")) {
    spec.static_budget_w = json.at("static_budget_w").as_number();
  }
  spec.node_count = static_cast<int>(json.number_or("node_count", spec.node_count));
  spec.perf_variation_sigma =
      json.number_or("perf_variation_sigma", spec.perf_variation_sigma);
  spec.seed = static_cast<std::uint64_t>(json.number_or("seed", 1.0));
  spec.step_workers = static_cast<int>(json.number_or("step_workers", spec.step_workers));
  spec.step_shard_nodes =
      static_cast<int>(json.number_or("step_shard_nodes", spec.step_shard_nodes));
  spec.tracking_warmup_s = json.number_or("tracking_warmup_s", spec.tracking_warmup_s);
  spec.tracking_reserve_w = json.number_or("tracking_reserve_w", spec.tracking_reserve_w);
  return spec;
}

std::string value_label(const util::Json& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_object() && value.contains("name")) {
    // Object-valued policy axis entries ({"name", "expr"}) label by name.
    return value.at("name").as_string();
  }
  if (value.is_number()) {
    // Short %g labels (0.6, not 0.59999999999999998): cell names are
    // display-only and excluded from canonical cache keys.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%g", value.as_number());
    return buffer;
  }
  return value.dump();
}

}  // namespace

bool is_sweep_axis_field(const std::string& field) {
  for (const char* known : kAxisFields) {
    if (field == known) return true;
  }
  return false;
}

SweepGrid SweepGrid::from_json(const util::Json& json) {
  const std::string schema = json.string_or("schema", "anor.sweep.v1");
  if (schema != "anor.sweep.v1") {
    throw util::ConfigError("sweep grid: unexpected schema '" + schema + "'");
  }
  SweepGrid grid;
  grid.name = json.string_or("name", grid.name);

  // Register grid-defined policies before the base/axes parse so axis
  // values and the base spec can reference them by bare name.
  if (json.contains("policies")) {
    for (const util::Json& item : json.at("policies").as_array()) {
      SweepPolicyDef def;
      def.name = item.at("name").as_string();
      def.expr = item.at("expr").as_string();
      def.summary = item.string_or("summary", "");
      PolicyRegistry::global().register_expression_policy(def.name, def.expr, def.summary);
      grid.policies.push_back(std::move(def));
    }
  }

  if (json.contains("base")) grid.base = base_from_json(json.at("base"));

  if (json.contains("generate")) {
    const util::Json& gen = json.at("generate");
    grid.generate.enabled = true;
    grid.generate.duration_s = gen.number_or("duration_s", grid.generate.duration_s);
    grid.generate.utilization = gen.number_or("utilization", grid.generate.utilization);
    grid.generate.signal = gen.string_or("signal", grid.generate.signal);
    grid.generate.long_types_only =
        gen.bool_or("long_types_only", grid.generate.long_types_only);
    grid.generate.budget_per_node_w =
        gen.number_or("budget_per_node_w", grid.generate.budget_per_node_w);
    const std::string label = gen.string_or(
        "misclassify", grid.generate.misclassify_true + "=" + grid.generate.misclassify_as);
    const auto eq = label.find('=');
    if (eq == std::string::npos) {
      throw util::ConfigError("sweep grid: generate.misclassify expects TRUE=CLASSIFIED");
    }
    grid.generate.misclassify_true = label.substr(0, eq);
    grid.generate.misclassify_as = label.substr(eq + 1);
  }

  if (json.contains("axes")) {
    for (const util::Json& item : json.at("axes").as_array()) {
      SweepAxis axis;
      axis.field = item.at("field").as_string();
      if (!is_sweep_axis_field(axis.field)) {
        throw util::ConfigError("sweep grid: unknown axis field '" + axis.field + "'");
      }
      for (const util::Json& value : item.at("values").as_array()) {
        axis.values.push_back(value);
      }
      if (axis.values.empty()) {
        throw util::ConfigError("sweep grid: axis '" + axis.field + "' has no values");
      }
      grid.axes.push_back(std::move(axis));
    }
  }
  if (!grid.generate.enabled && grid.base.schedule.jobs.empty()) {
    throw util::ConfigError(
        "sweep grid: base.schedule is required unless generate is present");
  }
  return grid;
}

std::size_t SweepGrid::cell_count() const {
  std::size_t count = 1;
  for (const SweepAxis& axis : axes) count *= axis.values.size();
  return count;
}

std::vector<SweepCell> SweepGrid::expand() const {
  const std::size_t total = cell_count();
  std::vector<SweepCell> cells;
  cells.reserve(total);
  for (std::size_t flat = 0; flat < total; ++flat) {
    SweepCell cell;
    cell.index = flat;
    // First axis slowest: decompose the flat index most-significant-first.
    std::size_t remainder = flat;
    std::size_t stride = total;
    for (const SweepAxis& axis : axes) {
      stride /= axis.values.size();
      const std::size_t pick = remainder / stride;
      remainder %= stride;
      cell.assignment.emplace_back(axis.field, axis.values[pick]);
      if (!cell.name.empty()) cell.name += ",";
      cell.name += axis.field + "=" + value_label(axis.values[pick]);
    }
    if (cell.name.empty()) cell.name = "cell0";
    cells.push_back(std::move(cell));
  }
  return cells;
}

ScenarioSpec SweepMaterializer::materialize(const SweepCell& cell) {
  ScenarioSpec spec = grid_.base;
  SweepGenerate gen = grid_.generate;

  for (const auto& [field, value] : cell.assignment) {
    if (field == "policy") {
      spec.policy = policy_ref_from_json(value);
    } else if (field == "backend") {
      spec.backend = backend_from_string(value.as_string());
    } else if (field == "signal") {
      gen.signal = value.as_string();
    } else if (field == "utilization") {
      gen.utilization = value.as_number();
    } else if (field == "duration_s") {
      gen.duration_s = value.as_number();
    } else if (field == "node_count") {
      spec.node_count = static_cast<int>(value.as_int());
    } else if (field == "seed") {
      spec.seed = static_cast<std::uint64_t>(value.as_number());
    } else if (field == "perf_variation_sigma") {
      spec.perf_variation_sigma = value.as_number();
    } else if (field == "static_budget_w") {
      if (value.is_null()) {
        spec.static_budget_w.reset();
      } else {
        spec.static_budget_w = value.as_number();
      }
    } else if (field == "step_workers") {
      spec.step_workers = static_cast<int>(value.as_int());
    } else {
      throw util::ConfigError("sweep: unknown axis field '" + field + "'");
    }
  }

  if (gen.enabled) {
    // Generated workload: memoized by semantic inputs, returned by copy
    // (misclassification labels are applied per cell, and the simulator
    // sorts its own copy).
    util::JsonArray key_parts;
    key_parts.push_back(util::Json(std::string("schedule")));
    key_parts.push_back(util::Json(spec.node_count));
    key_parts.push_back(util::Json(gen.duration_s));
    key_parts.push_back(util::Json(gen.utilization));
    key_parts.push_back(util::Json(gen.long_types_only));
    key_parts.push_back(util::Json(std::to_string(spec.seed)));
    const std::string sched_key = util::Json(std::move(key_parts)).dump();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = schedules_.find(sched_key);
      if (it != schedules_.end()) {
        spec.schedule = it->second;
      } else {
        workload::PoissonScheduleConfig config;
        config.duration_s = gen.duration_s;
        config.utilization = gen.utilization;
        config.cluster_nodes = spec.node_count;
        const std::vector<workload::JobType> types = gen.long_types_only
                                                         ? workload::nas_long_job_types()
                                                         : workload::nas_job_types();
        workload::Schedule schedule = workload::generate_poisson_schedule(
            types, config, util::Rng(spec.seed).child("schedule"));
        spec.schedule = schedule;
        schedules_.emplace(sched_key, std::move(schedule));
      }
    }
    if (expects_misclassification(spec.policy) && !gen.misclassify_true.empty()) {
      workload::misclassify(spec.schedule, gen.misclassify_true, gen.misclassify_as);
    }

    // The signal fully determines the cell's power objective.
    spec.static_budget_w.reset();
    spec.targets.clear();
    if (gen.signal == "budget") {
      spec.static_budget_w = gen.budget_per_node_w * spec.node_count;
    } else if (gen.signal != "none") {
      util::JsonArray tkey_parts;
      tkey_parts.push_back(util::Json(gen.signal));
      tkey_parts.push_back(util::Json(spec.node_count));
      tkey_parts.push_back(util::Json(gen.duration_s));
      tkey_parts.push_back(util::Json(std::to_string(spec.seed)));
      const std::string targets_key = util::Json(std::move(tkey_parts)).dump();
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = targets_.find(targets_key);
      if (it != targets_.end()) {
        spec.targets = it->second;
      } else {
        util::TimeSeries targets;
        if (gen.signal == "dr") {
          // The standard bid scale (anorctl profile, the determinism
          // bench): 150 W average / 18 W reserve per node.
          workload::DemandResponseBid bid;
          bid.average_power_w = 150.0 * spec.node_count;
          bid.reserve_w = 18.0 * spec.node_count;
          const workload::RandomWalkRegulation regulation(
              util::Rng(spec.seed).child("regulation"), gen.duration_s + 60.0, 4.0);
          targets = workload::make_power_target_series(bid, regulation, gen.duration_s, 4.0);
        } else if (gen.signal == "carbon") {
          const workload::CarbonIntensityProfile profile(
              util::Rng(spec.seed).child("carbon"), gen.duration_s + 60.0);
          targets = workload::targets_from_carbon(profile, 144.0 * spec.node_count,
                                                  269.0 * spec.node_count, gen.duration_s,
                                                  60.0);
        } else if (gen.signal == "tariff") {
          targets = workload::targets_from_tariff(workload::TouTariff::standard(),
                                                  144.0 * spec.node_count,
                                                  269.0 * spec.node_count, gen.duration_s,
                                                  60.0);
        } else {
          throw util::ConfigError("sweep: unknown signal '" + gen.signal +
                                  "' (none|budget|dr|carbon|tariff)");
        }
        spec.targets = targets;
        targets_.emplace(targets_key, std::move(targets));
      }
    }
  }

  spec.name = grid_.name + "/" + cell.name;
  spec.validate();
  return spec;
}

}  // namespace anor::engine::sweep
