#include "engine/policy_admission.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "budget/budgeter.hpp"
#include "engine/policy_registry.hpp"
#include "engine/runner.hpp"
#include "fault/chaos.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/job_type.hpp"
#include "workload/schedule.hpp"

namespace anor::engine {

namespace {

/// The harness itself runs scenarios with the candidate policy;
/// ensure_admitted must wave those through or admission would recurse.
thread_local bool admission_in_progress = false;

struct AdmissionScope {
  AdmissionScope() { admission_in_progress = true; }
  ~AdmissionScope() { admission_in_progress = false; }
};

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

ScenarioSpec admission_spec(const PolicyRef& policy, const PolicyDescriptor& descriptor,
                            const AdmissionOptions& options, Backend backend) {
  workload::PoissonScheduleConfig config;
  config.duration_s = options.duration_s;
  config.utilization = options.utilization;
  config.cluster_nodes = options.node_count;
  workload::Schedule schedule = workload::generate_poisson_schedule(
      workload::nas_long_job_types(), config, util::Rng(options.seed));
  if (descriptor.expects_misclassification) {
    workload::misclassify(schedule, "bt.D.x", "is.D.x");
  }
  ScenarioSpec spec;
  spec.name = "admission/" + policy.name;
  spec.backend = backend;
  spec.schedule = std::move(schedule);
  spec.policy = policy;
  spec.static_budget_w = options.budget_per_node_w * options.node_count;
  spec.tracking_reserve_w = *spec.static_budget_w;  // flat target: budget-normalized
  spec.node_count = options.node_count;
  spec.seed = options.seed;
  return spec;
}

/// 1. Budget-envelope sanity on the bare budgeter: caps inside each job's
/// [p_min, p_max], no over-commit above the feasible floor, and repeat
/// calls bit-identical (catches non-determinism — e.g. the DSL's noise()
/// hook — before any scenario is run).
AdmissionCheck check_envelope(const PolicyDescriptor& descriptor) {
  AdmissionCheck check;
  check.name = "budget-envelope";
  try {
    auto factory = policy_budgeter_factory(descriptor);
    const std::unique_ptr<budget::Budgeter> budgeter =
        factory ? factory() : budget::make_budgeter(descriptor.budgeter_kind);

    std::vector<budget::JobPowerProfile> jobs;
    int id = 1;
    for (const workload::JobType& type : workload::nas_long_job_types()) {
      budget::JobPowerProfile profile;
      profile.job_id = id++;
      profile.nodes = type.nodes;
      profile.model = model::PowerPerfModel::from_job_type(type);
      jobs.push_back(std::move(profile));
    }
    const double lo = budget::total_min_power_w(jobs);
    const double hi = budget::total_max_power_w(jobs);

    for (const double f : {0.3, 0.6, 0.9, 1.2}) {
      const double budget_w = lo + f * (hi - lo);
      const budget::BudgetResult first = budgeter->distribute(jobs, budget_w);
      const budget::BudgetResult second = budgeter->distribute(jobs, budget_w);
      if (first.node_cap_w != second.node_cap_w ||
          first.allocated_w != second.allocated_w) {
        check.detail = "distribute() is not deterministic at budget " + fmt(budget_w) +
                       " W (repeat call returned different caps)";
        return check;
      }
      if (first.node_cap_w.size() != jobs.size()) {
        check.detail = "distribute() returned " + std::to_string(first.node_cap_w.size()) +
                       " caps for " + std::to_string(jobs.size()) + " jobs";
        return check;
      }
      double total = 0.0;
      for (const budget::JobPowerProfile& job : jobs) {
        const auto it = first.node_cap_w.find(job.job_id);
        if (it == first.node_cap_w.end()) {
          check.detail = "job " + std::to_string(job.job_id) + " received no cap";
          return check;
        }
        const double cap = it->second;
        if (!std::isfinite(cap) || cap < job.model.p_min_w() - 1e-6 ||
            cap > job.model.p_max_w() + 1e-6) {
          check.detail = "cap " + fmt(cap) + " W for job " + std::to_string(job.job_id) +
                         " leaves the achievable envelope [" + fmt(job.model.p_min_w()) +
                         ", " + fmt(job.model.p_max_w()) + "]";
          return check;
        }
        total += job.nodes * cap;
      }
      if (budget_w >= lo && total > budget_w + 1e-6) {
        check.detail = "allocation " + fmt(total) + " W over-commits budget " +
                       fmt(budget_w) + " W";
        return check;
      }
    }
    check.passed = true;
    check.detail = "caps stay in envelope, never over-commit, repeat bit-identical";
  } catch (const std::exception& e) {
    check.detail = e.what();
  }
  return check;
}

/// 2. Tabular determinism: the full scenario run twice must serialize to
/// byte-identical artifacts.  The second run's result is handed back for
/// the parity check so admission costs one tabular run less.
AdmissionCheck check_tabular_determinism(const PolicyRef& policy,
                                         const PolicyDescriptor& descriptor,
                                         const AdmissionOptions& options,
                                         RunResult& tabular_out) {
  AdmissionCheck check;
  check.name = "tabular-determinism";
  try {
    const ScenarioSpec spec = admission_spec(policy, descriptor, options, Backend::kTabular);
    const RunResult first = run_scenario(spec);
    RunResult second = run_scenario(spec);
    const std::string a = run_result_json(first).dump();
    const std::string b = run_result_json(second).dump();
    if (a != b) {
      check.detail = "two identical runs produced different RunResult artifacts";
      return check;
    }
    tabular_out = std::move(second);
    check.passed = true;
    check.detail = "two runs byte-identical (" + std::to_string(first.jobs_completed) +
                   " jobs)";
  } catch (const std::exception& e) {
    check.detail = e.what();
  }
  return check;
}

/// 3. Cross-backend parity: the contract tests/engine/parity_test.cpp
/// pins for built-ins, applied to the candidate.
AdmissionCheck check_parity(const PolicyRef& policy, const PolicyDescriptor& descriptor,
                            const AdmissionOptions& options, const RunResult& tabular) {
  AdmissionCheck check;
  check.name = "cross-backend-parity";
  try {
    const ScenarioSpec spec = admission_spec(policy, descriptor, options, Backend::kEmulated);
    const RunResult emulated = run_scenario(spec);

    auto mean_slowdown = [](const RunResult& result) {
      util::RunningStats stats;
      for (const CompletedJob& job : result.completed) stats.add(job.slowdown());
      return stats.mean();
    };
    const double tracking_gap =
        std::abs(emulated.tracking.p90_error - tabular.tracking.p90_error);
    const double slowdown_gap = std::abs(mean_slowdown(emulated) - mean_slowdown(tabular));
    if (tracking_gap >= options.tracking_tol) {
      check.detail = "tracking p90 disagrees across backends: emulated " +
                     fmt(emulated.tracking.p90_error) + " vs tabular " +
                     fmt(tabular.tracking.p90_error);
      return check;
    }
    if (slowdown_gap >= options.slowdown_tol) {
      check.detail = "mean slowdown disagrees across backends (gap " + fmt(slowdown_gap) +
                     ")";
      return check;
    }
    if (emulated.qos.satisfied() != tabular.qos.satisfied()) {
      check.detail = "QoS verdicts disagree across backends";
      return check;
    }
    check.passed = true;
    check.detail = "tracking gap " + fmt(tracking_gap) + ", slowdown gap " +
                   fmt(slowdown_gap) + ", QoS verdicts agree";
  } catch (const std::exception& e) {
    check.detail = e.what();
  }
  return check;
}

/// 4. Chaos determinism: the `anorctl chaos --verify-determinism` gate
/// with the candidate policy installed — two closed-loop fault-injection
/// runs must agree on the fault-event trace and the power series.
AdmissionCheck check_chaos(const PolicyRef& policy, const AdmissionOptions& options) {
  AdmissionCheck check;
  check.name = "chaos-determinism";
  try {
    fault::ChaosConfig config;
    config.plan = fault::FaultPlan::preset(options.chaos_plan);
    config.duration_s = options.chaos_duration_s;
    config.node_count = options.chaos_node_count;
    apply_policy(config.base, policy);

    const fault::ChaosResult first = fault::run_chaos(config);
    const fault::ChaosResult second = fault::run_chaos(config);
    if (first.event_trace != second.event_trace) {
      check.detail = "fault-event traces differ between identical chaos runs";
      return check;
    }
    if (first.power_w.values() != second.power_w.values() ||
        first.power_w.times() != second.power_w.times()) {
      check.detail = "power series differ between identical chaos runs";
      return check;
    }
    check.passed = true;
    check.detail = "plan '" + options.chaos_plan + "': traces and power series identical (" +
                   std::to_string(first.fault_events) + " fault events)";
  } catch (const std::exception& e) {
    check.detail = e.what();
  }
  return check;
}

}  // namespace

bool AdmissionReport::passed() const {
  if (checks.empty()) return false;
  for (const AdmissionCheck& check : checks) {
    if (!check.passed) return false;
  }
  return true;
}

std::string AdmissionReport::describe() const {
  std::string out;
  for (const AdmissionCheck& check : checks) {
    out += std::string("  [") + (check.passed ? "PASS" : "FAIL") + "] " + check.name +
           ": " + check.detail + "\n";
  }
  return out;
}

AdmissionReport run_admission(const PolicyRef& policy, const AdmissionOptions& options) {
  const PolicyDescriptor descriptor = resolve_policy(policy);
  AdmissionReport report;
  report.policy = policy.name;
  report.identity = descriptor.identity();
  if (descriptor.builtin) {
    AdmissionCheck check;
    check.name = "builtin";
    check.passed = true;
    check.detail = "paper policy; pinned directly by the golden-hash and parity suites";
    report.checks.push_back(std::move(check));
    return report;
  }

  AdmissionScope scope;
  report.checks.push_back(check_envelope(descriptor));
  if (!report.checks.back().passed) return report;  // fail fast: skip scenario gates

  RunResult tabular;
  report.checks.push_back(
      check_tabular_determinism(policy, descriptor, options, tabular));
  if (!report.checks.back().passed) return report;

  report.checks.push_back(check_parity(policy, descriptor, options, tabular));
  if (options.chaos_gate) report.checks.push_back(check_chaos(policy, options));
  return report;
}

AdmissionReport admit_policy(const PolicyRef& policy, const AdmissionOptions& options) {
  const AdmissionReport report = run_admission(policy, options);
  if (report.passed()) PolicyRegistry::global().mark_admitted(policy.name);
  return report;
}

void ensure_admitted(const PolicyRef& policy) {
  if (admission_in_progress) return;
  const PolicyDescriptor descriptor = resolve_policy(policy);
  if (descriptor.builtin) return;
  PolicyRegistry& registry = PolicyRegistry::global();
  if (registry.is_admitted(policy.name)) return;

  // One admission at a time: concurrent sweep workers dispatching the
  // same fresh policy serialize here, and the losers find it admitted.
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  if (registry.is_admitted(policy.name)) return;
  const AdmissionReport report = admit_policy(policy);
  if (!report.passed()) {
    throw util::ConfigError("policy '" + policy.name +
                            "' failed the admission harness:\n" + report.describe() +
                            "(run `anorctl policy admit --name " + policy.name +
                            "` for details)");
  }
}

}  // namespace anor::engine
