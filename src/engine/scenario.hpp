// Backend-agnostic scenario description and the single result schema.
//
// The paper evaluates one control stack in two guises — the 16-node
// emulated cluster (Sec. 4-5) and the 1000-node tabular simulator
// (Sec. 5.6).  A ScenarioSpec captures what both share: the job schedule
// (with misclassification labels), the policy, the power objective
// (static budget or a time-varying target series), the platform size and
// seed, and artifact options — plus a Backend selector.  Both backends
// produce the same RunResult through the shared aggregation helpers
// below, so a scenario validated in simulation is comparable, field for
// field, with the same scenario run on the emulated cluster.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "geopm/report.hpp"
#include "sched/qos.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/time_series.hpp"
#include "workload/schedule.hpp"

namespace anor::engine {

/// Which stack executes the scenario.
enum class Backend { kEmulated, kTabular };

std::string to_string(Backend backend);
Backend backend_from_string(const std::string& name);

/// Reference to a policy in the process-wide PolicyRegistry
/// (engine/policy_registry.hpp).  The four paper policies (Fig. 6-10
/// legends) are registered as built-ins:
///
///   uniform        — performance-agnostic even-power budgeter.
///   characterized  — performance-aware even-slowdown budgeter with
///                    correct precharacterized models.
///   misclassified  — even-slowdown, but (some) jobs carry a wrong
///                    classification and feedback is disabled.
///   adjusted       — misclassified, with the job-tier feedback loop
///                    enabled so the cluster tier recovers.
///
/// Any other name must be registered (natively or as an expression-DSL
/// policy) before dispatch.  A non-empty `dsl` makes the reference
/// self-contained: run_scenario auto-registers `name` with that
/// expression, so specs and sweep grids can carry custom policies as
/// data.  Implicitly constructible from a string so call sites read
/// `spec.policy = "uniform"`.
struct PolicyRef {
  std::string name = "characterized";
  /// Expression-DSL source (budget/policy_dsl.hpp); empty for built-in
  /// or natively registered policies.
  std::string dsl;

  PolicyRef() = default;
  PolicyRef(std::string name_in) : name(std::move(name_in)) {}  // NOLINT(google-explicit-constructor)
  PolicyRef(const char* name_in) : name(name_in) {}             // NOLINT(google-explicit-constructor)
  PolicyRef(std::string name_in, std::string dsl_in)
      : name(std::move(name_in)), dsl(std::move(dsl_in)) {}

  friend bool operator==(const PolicyRef& a, const PolicyRef& b) {
    return a.name == b.name && a.dsl == b.dsl;
  }
  friend bool operator!=(const PolicyRef& a, const PolicyRef& b) { return !(a == b); }
};

/// The policy's registry name.
std::string to_string(const PolicyRef& policy);

/// Validate `name` against the registry and return a reference to it.
/// Throws util::ConfigError naming the available entries when unknown.
PolicyRef policy_from_string(const std::string& name);

/// Whether the policy expects the schedule to carry misclassification
/// labels (resolves through the registry; defined in policy_registry.cpp).
bool expects_misclassification(const PolicyRef& policy);

/// Parse a spec/grid "policy" value: either a registry name string or an
/// object {"name": ..., "expr": ...} carrying an inline expression-DSL
/// definition (the expression is parse-checked here).
PolicyRef policy_ref_from_json(const util::Json& json);
/// Inverse: a bare string for plain references, the object form when the
/// reference carries an inline expression.
util::Json policy_ref_to_json(const PolicyRef& policy);

/// One finished job, as both backends record it.  The tabular backend
/// fills the report with what its linear model knows (runtime, nodes,
/// average cap); the emulated backend attaches the full GEOPM-style
/// report.
struct CompletedJob {
  workload::JobRequest request;
  geopm::JobReport report;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Unconstrained runtime reference for slowdown accounting.
  double reference_runtime_s = 0.0;

  double slowdown() const {
    return reference_runtime_s > 0.0 ? (end_s - start_s) / reference_runtime_s - 1.0 : 0.0;
  }
};

/// What a scenario run measures, identically on either backend.
struct RunResult {
  std::vector<CompletedJob> completed;
  util::TimeSeries power_w;   // measured cluster power
  util::TimeSeries target_w;  // power target (empty when unconstrained)
  util::TrackingErrorStats tracking;
  sched::QosEvaluator qos;
  double end_time_s = 0.0;
  int jobs_submitted = 0;
  int jobs_completed = 0;
  /// Busy-node fraction averaged over time.
  double mean_utilization = 0.0;

  /// Mean/stddev of slowdown per job type.
  std::map<std::string, util::RunningStats> slowdown_by_type() const;
};

/// A backend-agnostic scenario: everything `run_scenario` needs.
struct ScenarioSpec {
  std::string name = "scenario";
  Backend backend = Backend::kEmulated;

  /// Job arrivals; misclassification experiments label jobs via
  /// workload::misclassify before running.
  workload::Schedule schedule;

  PolicyRef policy;

  /// Static cluster power budget, watts.  Mutually exclusive with
  /// `targets`; leave both unset to run unconstrained.
  std::optional<double> static_budget_w;
  /// Time-varying power targets (empty = none).
  util::TimeSeries targets;

  int node_count = 16;
  double perf_variation_sigma = 0.0;
  std::uint64_t seed = 1;

  /// Tabular backend only: worker threads for the sharded progress sweep
  /// (<= 1 steps serially) and nodes per shard (0 auto-sizes from node
  /// and worker count; explicit values are floored at 64).  Shard
  /// boundaries depend on node count alone, so results are bit-identical
  /// at any worker count.
  int step_workers = 0;
  int step_shard_nodes = 0;

  /// Exclude this initial window from tracking-error statistics (before
  /// the queue fills, a loaded-power target is unreachable).
  double tracking_warmup_s = 0.0;
  /// Error normalization for tracking stats; <= 0 derives half the
  /// observed target span (floored at 1 W).
  double tracking_reserve_w = 0.0;

  /// Non-empty: write a run artifact directory (metrics.csv, metrics.json,
  /// trace.json(l), manifest.json) sampled at `artifact_cadence_s`.
  std::string artifact_dir;
  double artifact_cadence_s = 1.0;

  /// Throws util::ConfigError on contradictions (budget and targets both
  /// set, empty schedule on a tabular run, non-positive node count).
  void validate() const;
};

/// JSON round-trip (includes the schedule with misclassification labels,
/// the targets series, and the backend/policy selectors).
util::Json scenario_spec_to_json(const ScenarioSpec& spec);
ScenarioSpec scenario_spec_from_json(const util::Json& json);

// --- shared aggregation path -------------------------------------------
//
// Both backends finish a run through these helpers instead of private
// reimplementations, so the statistics cannot drift apart.

/// Compute `result.tracking` from the recorded power/target series:
/// samples at or after `warmup_s`, error normalized by `reserve_w`
/// (<= 0 derives half the observed target span, floored at 1 W).  A run
/// without both series recorded leaves the stats zeroed.
void finalize_tracking(RunResult& result, double reserve_w, double warmup_s);

/// Serialize a finished run — per-job records, QoS, tracking statistics,
/// utilization, and the decimated power/target series — as the one
/// artifact schema (`anor.run_result.v1`) both backends emit.
util::Json run_result_json(const RunResult& result, double series_decimation_s = 30.0);

/// Write the artifact to a file.
void save_run_result(const std::string& path, const RunResult& result);

}  // namespace anor::engine
