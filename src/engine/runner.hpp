// ScenarioRunner: one dispatch point from a backend-agnostic ScenarioSpec
// onto either evaluation stack.
//
// `run_scenario` is what core::run_experiment, the examples, and
// `anorctl run --backend={emulated,tabular}` all call: it applies the
// policy, translates the power objective, runs the selected backend, and
// finalizes the shared RunResult with the spec's tracking normalization —
// so the two stacks stay comparable by construction (the cross-backend
// parity harness in tests/engine/parity_test.cpp gates on it).
#pragma once

#include "cluster/emulation.hpp"
#include "engine/scenario.hpp"
#include "sim/sim_config.hpp"
#include "sim/simulator.hpp"

namespace anor::engine {

/// Configure an emulation for a policy, resolved through the registry
/// (engine/policy_registry.hpp): the budgeter kind or factory, the
/// feedback switches, and any custom apply_emulated hook.  The schedule
/// carries the misclassification labels (workload::misclassify).
void apply_policy(cluster::EmulationConfig& config, const PolicyRef& policy);

/// Configure the tabular simulator for a policy: the descriptor's
/// budgeter kind or factory plus any apply_tabular hook.  The built-in
/// Adjusted policy's converged feedback loop is modeled by budgeting with
/// the true (not classified) models — run_scenario strips the labels
/// before the run (descriptor.strip_labels_for_tabular).
void apply_policy(sim::SimConfig& config, const PolicyRef& policy);

/// A constant-power target series over a horizon (static budget runs are
/// degenerate tracking runs, as on the real cluster).
util::TimeSeries constant_targets(double power_w, double horizon_s, double period_s = 4.0);

/// Build the emulated cluster for a spec (exposed so tests can
/// single-step it).  `base` carries advanced emulation knobs the
/// backend-agnostic spec does not cover.
cluster::EmulatedCluster make_emulated_cluster(const ScenarioSpec& spec,
                                               const cluster::EmulationConfig& base = {});

/// Map a spec onto the tabular simulator: job types derived from the
/// schedule's workload types (SimJobType::from_job_type), the idle power
/// floor aligned with the emulated platform, the power objective as an
/// explicit target series.
sim::SimConfig make_sim_config(const ScenarioSpec& spec);

/// Build the tabular simulator for a spec (exposed so `anorctl profile`
/// and benches can time `run()` without the construction cost).  Applies
/// the same Adjusted-policy label stripping as run_scenario.
sim::TabularSimulator make_tabular_simulator(const ScenarioSpec& spec);
/// Same, drawing pooled NodeTable/worker-team/fitted-model resources from
/// `warm` (may be nullptr = cold; see sim::WarmStart).
sim::TabularSimulator make_tabular_simulator(const ScenarioSpec& spec, sim::WarmStart* warm);

/// Run a scenario to completion on its selected backend.
RunResult run_scenario(const ScenarioSpec& spec);
/// Same, with advanced emulation knobs for the emulated backend (ignored
/// by the tabular one).
RunResult run_scenario(const ScenarioSpec& spec, const cluster::EmulationConfig& emulated_base);

/// Run a tabular scenario with warm-start pooling: construction draws on
/// `warm`, and the reusable parts are recycled back into it afterwards.
/// Bit-identical to run_scenario(spec) — the warm-start parity tests pin
/// this.  Emulated-backend or artifact-writing specs fall back to the
/// cold path (still correct, nothing pooled).
RunResult run_scenario_warm(const ScenarioSpec& spec, sim::WarmStart& warm);

}  // namespace anor::engine
