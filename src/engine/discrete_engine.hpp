// Shared discrete-time step engine behind both evaluation stacks.
//
// The emulated cluster (cluster::EmulatedCluster) and the tabular
// simulator (sim::TabularSimulator) used to each own a hand-rolled step
// loop: a private virtual clock, private cadence bookkeeping for the
// control period and the log sampler, and a private stop test.  The
// DiscreteEngine extracts that machinery: the owner registers its phases
// as *components* in invocation order — hardware step, arrivals,
// completions, scheduler, control stack, log sampler, fault hooks — each
// with an optional firing period on the shared virtual clock, and the
// engine advances time and dispatches them.
//
// Determinism contract: the engine adds no state of its own beyond the
// clock and the per-component due times, accumulates time exactly as the
// hand-rolled loops did (`now += step` per tick), and fires cadenced
// components with the same `now + 1e-9 >= next_due` test both loops
// already used — so routing a loop through the engine reproduces its
// traces bit for bit (the PR-3 golden hashes and PR-2 chaos determinism
// checks pin this).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace anor::engine {

class DiscreteEngine {
 public:
  /// Where in the tick the clock advances.  The emulated cluster advances
  /// time *before* its components (components see the post-advance time);
  /// the tabular simulator advances *after* (components see the tick's
  /// start time).  Both orders are preserved exactly.
  enum class ClockMode { kAdvanceFirst, kAdvanceLast };

  /// A component sees the current virtual time and the step size.
  using ComponentFn = std::function<void(double now_s, double dt_s)>;
  /// Evaluated after each tick with the post-tick time; true stops the run.
  using StopFn = std::function<bool(double now_s)>;

  DiscreteEngine(double step_s, ClockMode mode);

  /// How a component is attributed in the span profiler.  Components whose
  /// per-tick cost sits below the clock's measurement floor (tens of ns on
  /// a virtualized TSC) should not pay for a dedicated clock read each
  /// tick: `kHousekeeping` folds consecutive such components into one
  /// shared "engine.housekeeping" span, so a run of N cheap components
  /// costs one read instead of N.
  enum class SpanMode { kOwnSpan, kHousekeeping };

  /// Register a component, invoked in registration order each tick.
  /// `period_s` <= 0 fires every tick; a positive period fires when
  /// `now + 1e-9 >= next_due` and then re-arms at `now + period_s`.
  void add_component(std::string name, double period_s, ComponentFn fn,
                     SpanMode span_mode = SpanMode::kOwnSpan);

  void set_stop_predicate(StopFn fn) { stop_ = std::move(fn); }

  /// Keep an external VirtualClock in lockstep with the engine (the
  /// emulated cluster's control stack holds references to one).
  void bind_clock(util::VirtualClock* clock) { external_clock_ = clock; }

  /// Advance one tick: dispatch every due component, then evaluate the
  /// stop predicate.  Returns false once stopped (and on every later call).
  bool step();

  /// Step until the stop predicate fires.
  void run() {
    while (step()) {
    }
  }

  double now_s() const { return now_s_; }
  double step_s() const { return step_s_; }
  /// Completed ticks.  During a tick, components observe the pre-increment
  /// value (0 on the first tick).
  long step_index() const { return step_index_; }
  bool stopped() const { return stopped_; }

  /// Registered cadence table, for introspection (docs, tests, anorctl).
  struct ComponentInfo {
    std::string name;
    double period_s = 0.0;  // <= 0: every tick
  };
  std::vector<ComponentInfo> components() const;

 private:
  struct Component {
    std::string name;
    double period_s = 0.0;
    double next_due_s = 0.0;
    ComponentFn fn;
    std::uint16_t prof_id = 0;  // interned "engine.<name>" span phase
    SpanMode span_mode = SpanMode::kOwnSpan;
  };

  double step_s_;
  ClockMode mode_;
  std::uint16_t tick_prof_id_ = 0;          // "engine.tick" wrapper span
  std::uint16_t housekeeping_prof_id_ = 0;  // shared span for cheap components
  // Cross-step timestamp chain: the last clock read of step N doubles as
  // the first timestamp of step N+1 (the inter-step loop overhead is a few
  // ns and lands in the next tick's first span).  Valid only while
  // profiling stays enabled and the engine keeps stepping on one thread.
  std::int64_t prof_last_ticks_ = 0;
  bool prof_chain_valid_ = false;
  double now_s_ = 0.0;
  long step_index_ = 0;
  bool stopped_ = false;
  std::vector<Component> components_;
  StopFn stop_;
  util::VirtualClock* external_clock_ = nullptr;
};

}  // namespace anor::engine
