#include "engine/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "engine/policy_admission.hpp"
#include "engine/policy_registry.hpp"
#include "sim/simulator.hpp"
#include "telemetry/artifact.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace anor::engine {

void apply_policy(cluster::EmulationConfig& config, const PolicyRef& policy) {
  const PolicyDescriptor descriptor = resolve_policy(policy);
  config.manager.budgeter = descriptor.budgeter_kind;
  config.manager.budgeter_factory = policy_budgeter_factory(descriptor);
  config.manager.accept_model_updates = descriptor.feedback;
  config.endpoint.feedback_enabled = descriptor.feedback;
  if (descriptor.apply_emulated) descriptor.apply_emulated(config);
}

void apply_policy(sim::SimConfig& config, const PolicyRef& policy) {
  const PolicyDescriptor descriptor = resolve_policy(policy);
  config.budgeter = descriptor.budgeter_kind;
  config.budgeter_factory = policy_budgeter_factory(descriptor);
  if (descriptor.apply_tabular) descriptor.apply_tabular(config);
}

util::TimeSeries constant_targets(double power_w, double horizon_s, double period_s) {
  util::TimeSeries series;
  for (double t = 0.0; t <= horizon_s + 1e-9; t += period_s) series.add(t, power_w);
  return series;
}

cluster::EmulatedCluster make_emulated_cluster(const ScenarioSpec& spec,
                                               const cluster::EmulationConfig& base) {
  spec.validate();
  cluster::EmulationConfig config = base;
  config.node_count = spec.node_count;
  config.perf_variation_sigma = spec.perf_variation_sigma;
  config.seed = spec.seed;
  apply_policy(config, spec.policy);

  cluster::EmulatedCluster emu(config, spec.schedule);
  if (spec.static_budget_w) {
    const double horizon = std::max(spec.schedule.duration_s, 4.0 * 3600.0);
    emu.set_power_targets(constant_targets(*spec.static_budget_w, horizon));
  } else if (!spec.targets.empty()) {
    emu.set_power_targets(spec.targets);
  }
  return emu;
}

sim::SimConfig make_sim_config(const ScenarioSpec& spec) {
  spec.validate();
  sim::SimConfig config;
  config.node_count = spec.node_count;
  config.perf_variation_sigma = spec.perf_variation_sigma;
  // The emulated platform's nodes idle at 2 x 18 W packages; align the
  // tabular floor with it so the two backends see the same headroom.
  config.idle_power_w = cluster::EmulationConfig{}.manager.idle_node_power_w;

  // Horizon: the schedule's generation window (or the last arrival).
  double horizon = spec.schedule.duration_s;
  for (const workload::JobRequest& job : spec.schedule.jobs) {
    horizon = std::max(horizon, job.submit_time_s);
  }
  if (horizon > 0.0) config.duration_s = horizon;

  // Job types referenced by the schedule — true names and classified
  // labels both — mapped onto the simulator's linear model.  Sorted for a
  // deterministic type table regardless of arrival order.
  std::set<std::string> names;
  for (const workload::JobRequest& job : spec.schedule.jobs) {
    names.insert(job.type_name);
    if (!job.classified_as.empty()) names.insert(job.classified_as);
  }
  if (names.empty()) throw util::ConfigError("make_sim_config: schedule names no job types");
  for (const std::string& name : names) {
    config.job_types.push_back(sim::SimJobType::from_job_type(workload::find_job_type(name)));
  }

  apply_policy(config, spec.policy);

  // The power objective becomes an explicit target series; the bid-driven
  // regulation walk stays off so both backends track the same targets.
  config.bid = workload::DemandResponseBid{};
  if (spec.static_budget_w) {
    const double horizon_s = std::max(config.duration_s, 4.0 * 3600.0);
    config.power_targets = constant_targets(*spec.static_budget_w, horizon_s);
  } else if (!spec.targets.empty()) {
    config.power_targets = spec.targets;
  }
  config.tracking_warmup_s = spec.tracking_warmup_s;
  config.tracking_reserve_w = spec.tracking_reserve_w;
  config.step_workers = spec.step_workers;
  config.step_shard_nodes = spec.step_shard_nodes;
  return config;
}

sim::TabularSimulator make_tabular_simulator(const ScenarioSpec& spec) {
  return make_tabular_simulator(spec, nullptr);
}

sim::TabularSimulator make_tabular_simulator(const ScenarioSpec& spec, sim::WarmStart* warm) {
  const sim::SimConfig config = make_sim_config(spec);
  workload::Schedule schedule = spec.schedule;
  if (resolve_policy(spec.policy).strip_labels_for_tabular) {
    // Converged feedback (the built-in Adjusted policy): the budgeter
    // sees the true types.
    for (workload::JobRequest& job : schedule.jobs) job.classified_as.clear();
  }
  return sim::TabularSimulator(config, std::move(schedule),
                               util::Rng(spec.seed).child("sim"), warm);
}

RunResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, cluster::EmulationConfig{});
}

RunResult run_scenario(const ScenarioSpec& spec,
                       const cluster::EmulationConfig& emulated_base) {
  spec.validate();
  // Non-built-in policies must have passed the admission harness (parity
  // + chaos determinism) before the engine will dispatch them.
  ensure_admitted(spec.policy);
  std::unique_ptr<telemetry::RunArtifactWriter> artifacts;
  if (!spec.artifact_dir.empty()) {
    telemetry::RunArtifactConfig artifact_config;
    artifact_config.dir = spec.artifact_dir;
    artifact_config.cadence_s = spec.artifact_cadence_s;
    artifact_config.run_name = spec.name;
    artifacts = std::make_unique<telemetry::RunArtifactWriter>(
        artifact_config, telemetry::MetricsRegistry::global(),
        &telemetry::TraceRecorder::global());
  }

  RunResult result;
  if (spec.backend == Backend::kEmulated) {
    cluster::EmulatedCluster emu = make_emulated_cluster(spec, emulated_base);
    if (artifacts != nullptr) emu.attach_artifacts(artifacts.get());
    result = emu.run();
    if (artifacts != nullptr) emu.attach_artifacts(nullptr);
  } else {
    sim::TabularSimulator simulator = make_tabular_simulator(spec);
    simulator.set_artifacts(artifacts.get());
    result = simulator.run();
    simulator.set_artifacts(nullptr);
  }
  if (artifacts != nullptr) artifacts->finalize();

  // Re-finalize tracking with the spec's normalization so verdicts are
  // comparable across backends (a zero reserve/warmup reproduces each
  // backend's own aggregation exactly).
  finalize_tracking(result, spec.tracking_reserve_w, spec.tracking_warmup_s);
  return result;
}

RunResult run_scenario_warm(const ScenarioSpec& spec, sim::WarmStart& warm) {
  spec.validate();
  ensure_admitted(spec.policy);
  if (spec.backend != Backend::kTabular || !spec.artifact_dir.empty()) {
    // Nothing to pool for the emulated tier, and artifact runs need the
    // writer wiring run_scenario owns; both stay on the cold path.
    return run_scenario(spec);
  }
  sim::TabularSimulator simulator = make_tabular_simulator(spec, &warm);
  RunResult result = simulator.run();
  simulator.recycle(warm);
  finalize_tracking(result, spec.tracking_reserve_w, spec.tracking_warmup_s);
  return result;
}

}  // namespace anor::engine
