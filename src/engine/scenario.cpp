#include "engine/scenario.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace anor::engine {

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kEmulated: return "emulated";
    case Backend::kTabular: return "tabular";
  }
  return "?";
}

Backend backend_from_string(const std::string& name) {
  if (name == "emulated") return Backend::kEmulated;
  if (name == "tabular") return Backend::kTabular;
  throw util::ConfigError("unknown backend '" + name + "' (emulated|tabular)");
}

std::string to_string(const PolicyRef& policy) { return policy.name; }

// policy_from_string / expects_misclassification / policy_ref_from_json
// live in policy_registry.cpp — they resolve through the registry.

std::map<std::string, util::RunningStats> RunResult::slowdown_by_type() const {
  std::map<std::string, util::RunningStats> by_type;
  for (const CompletedJob& job : completed) {
    by_type[job.request.type_name].add(job.slowdown());
  }
  return by_type;
}

void ScenarioSpec::validate() const {
  if (static_budget_w && !targets.empty()) {
    throw util::ConfigError("ScenarioSpec: set either static_budget_w or targets, not both");
  }
  if (node_count <= 0) throw util::ConfigError("ScenarioSpec: node_count must be positive");
  if (backend == Backend::kTabular && schedule.jobs.empty()) {
    throw util::ConfigError("ScenarioSpec: tabular backend needs a non-empty schedule");
  }
}

namespace {

util::Json series_to_json(const util::TimeSeries& series) {
  util::JsonArray t;
  util::JsonArray v;
  for (std::size_t i = 0; i < series.size(); ++i) {
    t.push_back(util::Json(series.times()[i]));
    v.push_back(util::Json(series.values()[i]));
  }
  util::JsonObject obj;
  obj["t_s"] = util::Json(std::move(t));
  obj["power_w"] = util::Json(std::move(v));
  return util::Json(std::move(obj));
}

util::TimeSeries series_from_json(const util::Json& json) {
  const util::JsonArray& t = json.at("t_s").as_array();
  const util::JsonArray& v = json.at("power_w").as_array();
  if (t.size() != v.size()) {
    throw util::ConfigError("ScenarioSpec targets: array size mismatch");
  }
  util::TimeSeries series;
  for (std::size_t i = 0; i < t.size(); ++i) series.add(t[i].as_number(), v[i].as_number());
  return series;
}

util::Json decimated_series_json(const util::TimeSeries& series, double decimation_s) {
  util::JsonArray t;
  util::JsonArray v;
  double next = series.empty() ? 0.0 : series.front_time();
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series.times()[i] + 1e-9 < next) continue;
    t.push_back(util::Json(series.times()[i]));
    v.push_back(util::Json(series.values()[i]));
    next = series.times()[i] + decimation_s;
  }
  util::JsonObject obj;
  obj["t_s"] = util::Json(std::move(t));
  obj["value"] = util::Json(std::move(v));
  return util::Json(std::move(obj));
}

}  // namespace

util::Json scenario_spec_to_json(const ScenarioSpec& spec) {
  util::JsonObject obj;
  obj["schema"] = util::Json(std::string("anor.scenario.v1"));
  obj["name"] = util::Json(spec.name);
  obj["backend"] = util::Json(to_string(spec.backend));
  obj["schedule"] = spec.schedule.to_json();
  obj["policy"] = policy_ref_to_json(spec.policy);
  if (spec.static_budget_w) obj["static_budget_w"] = util::Json(*spec.static_budget_w);
  if (!spec.targets.empty()) obj["targets"] = series_to_json(spec.targets);
  obj["node_count"] = util::Json(spec.node_count);
  obj["perf_variation_sigma"] = util::Json(spec.perf_variation_sigma);
  obj["seed"] = util::Json(static_cast<double>(spec.seed));
  obj["step_workers"] = util::Json(spec.step_workers);
  obj["step_shard_nodes"] = util::Json(spec.step_shard_nodes);
  obj["tracking_warmup_s"] = util::Json(spec.tracking_warmup_s);
  obj["tracking_reserve_w"] = util::Json(spec.tracking_reserve_w);
  if (!spec.artifact_dir.empty()) {
    obj["artifact_dir"] = util::Json(spec.artifact_dir);
    obj["artifact_cadence_s"] = util::Json(spec.artifact_cadence_s);
  }
  return util::Json(std::move(obj));
}

ScenarioSpec scenario_spec_from_json(const util::Json& json) {
  ScenarioSpec spec;
  spec.name = json.string_or("name", spec.name);
  spec.backend = backend_from_string(json.string_or("backend", "emulated"));
  if (json.contains("schedule")) {
    spec.schedule = workload::Schedule::from_json(json.at("schedule"));
  }
  if (json.contains("policy")) spec.policy = policy_ref_from_json(json.at("policy"));
  if (json.contains("static_budget_w")) {
    spec.static_budget_w = json.at("static_budget_w").as_number();
  }
  if (json.contains("targets")) spec.targets = series_from_json(json.at("targets"));
  spec.node_count = static_cast<int>(json.number_or("node_count", spec.node_count));
  spec.perf_variation_sigma =
      json.number_or("perf_variation_sigma", spec.perf_variation_sigma);
  spec.seed = static_cast<std::uint64_t>(json.number_or("seed", 1.0));
  spec.step_workers = static_cast<int>(json.number_or("step_workers", spec.step_workers));
  spec.step_shard_nodes =
      static_cast<int>(json.number_or("step_shard_nodes", spec.step_shard_nodes));
  spec.tracking_warmup_s = json.number_or("tracking_warmup_s", spec.tracking_warmup_s);
  spec.tracking_reserve_w = json.number_or("tracking_reserve_w", spec.tracking_reserve_w);
  spec.artifact_dir = json.string_or("artifact_dir", "");
  spec.artifact_cadence_s = json.number_or("artifact_cadence_s", spec.artifact_cadence_s);
  spec.validate();
  return spec;
}

void finalize_tracking(RunResult& result, double reserve_w, double warmup_s) {
  if (result.target_w.empty() || result.power_w.empty()) return;
  util::TimeSeries measured;
  if (warmup_s > 0.0) {
    for (std::size_t i = 0; i < result.power_w.size(); ++i) {
      const double t = result.power_w.times()[i];
      if (t >= warmup_s) measured.add(t, result.power_w.values()[i]);
    }
    if (measured.empty()) measured = result.power_w;
  } else {
    measured = result.power_w;
  }
  double reserve = reserve_w;
  if (reserve <= 0.0) {
    // Half the observed target span, floored so a flat target still
    // normalizes sanely.
    double lo = result.target_w.values().front();
    double hi = lo;
    for (double v : result.target_w.values()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    reserve = std::max((hi - lo) / 2.0, 1.0);
  }
  result.tracking = util::tracking_error(measured, result.target_w, reserve);
}

util::Json run_result_json(const RunResult& result, double series_decimation_s) {
  util::JsonArray jobs;
  for (const auto& job : result.completed) {
    util::JsonObject j;
    j["job_id"] = util::Json(job.request.job_id);
    j["type"] = util::Json(job.request.type_name);
    if (!job.request.classified_as.empty()) {
      j["classified_as"] = util::Json(job.request.classified_as);
    }
    j["nodes"] = util::Json(job.request.nodes);
    j["submit_s"] = util::Json(job.submit_s);
    j["start_s"] = util::Json(job.start_s);
    j["end_s"] = util::Json(job.end_s);
    j["slowdown"] = util::Json(job.slowdown());
    j["runtime_s"] = util::Json(job.report.runtime_s);
    j["compute_runtime_s"] = util::Json(job.report.compute_runtime_s);
    j["package_energy_j"] = util::Json(job.report.package_energy_j);
    j["average_power_w"] = util::Json(job.report.average_power_w);
    j["average_cap_w"] = util::Json(job.report.average_cap_w);
    j["epoch_count"] = util::Json(static_cast<double>(job.report.epoch_count));
    jobs.push_back(util::Json(std::move(j)));
  }

  util::JsonObject tracking;
  tracking["mean_error"] = util::Json(result.tracking.mean_error);
  tracking["p90_error"] = util::Json(result.tracking.p90_error);
  tracking["max_error"] = util::Json(result.tracking.max_error);
  tracking["fraction_within_30"] = util::Json(result.tracking.fraction_within_30);
  tracking["samples"] = util::Json(static_cast<double>(result.tracking.samples));

  util::JsonObject qos;
  qos["worst_p90_degradation"] = util::Json(result.qos.worst_quantile());
  qos["satisfied"] = util::Json(result.qos.satisfied());
  util::JsonObject per_type;
  for (const auto& [type, q] : result.qos.percentile_by_type(90.0)) {
    per_type[type] = util::Json(q);
  }
  qos["p90_by_type"] = util::Json(std::move(per_type));

  util::JsonObject root;
  root["schema"] = util::Json(std::string("anor.run_result.v1"));
  root["jobs"] = util::Json(std::move(jobs));
  root["tracking"] = util::Json(std::move(tracking));
  root["qos"] = util::Json(std::move(qos));
  root["end_time_s"] = util::Json(result.end_time_s);
  root["jobs_submitted"] = util::Json(result.jobs_submitted);
  root["jobs_completed"] = util::Json(result.jobs_completed);
  root["mean_utilization"] = util::Json(result.mean_utilization);
  root["power_w"] = decimated_series_json(result.power_w, series_decimation_s);
  if (!result.target_w.empty()) {
    root["target_w"] = decimated_series_json(result.target_w, series_decimation_s);
  }
  return util::Json(std::move(root));
}

void save_run_result(const std::string& path, const RunResult& result) {
  util::save_json_file(path, run_result_json(result));
}

}  // namespace anor::engine
