// Admission harness for non-built-in policies (DESIGN.md 6j).
//
// A registered policy is just data until it proves itself: before
// run_scenario will dispatch a non-built-in policy, the policy must pass
// the same gates the framework's own policies are held to —
//
//   1. budget-envelope sanity: distribute() keeps every cap inside the
//      job's [p_min, p_max], never over-commits the budget, and is
//      bit-identical when repeated (a pure function of its inputs);
//   2. tabular determinism: the full scenario run twice produces
//      byte-identical RunResult artifacts;
//   3. cross-backend parity: the existing emulated-vs-tabular agreement
//      contract (tracking p90 / mean slowdown within tolerance, QoS
//      verdicts equal) — tests/engine/parity_test.cpp for built-ins;
//   4. chaos determinism: the `anorctl chaos --verify-determinism` gate —
//      two closed-loop fault-injection runs with the policy applied must
//      produce identical fault-event traces and power series.
//
// Built-ins bypass the harness (they are pinned by the golden-hash and
// parity suites directly).  Admission is per *identity* (name + DSL
// source hash), so re-registering a name with a different definition
// resets it.  run_scenario/run_scenario_warm call ensure_admitted, which
// admits lazily on first dispatch; `anorctl policy admit` runs it
// explicitly and prints the per-check report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/scenario.hpp"

namespace anor::engine {

/// Knobs for the admission scenario.  Defaults keep a full admission to a
/// few seconds while staying inside the parity harness's operating
/// envelope (budget-constrained Poisson schedule of long NAS types).
struct AdmissionOptions {
  double duration_s = 480.0;
  int node_count = 6;
  double utilization = 0.75;
  double budget_per_node_w = 165.0;
  std::uint64_t seed = 7;
  /// Parity tolerances, matching tests/engine/parity_test.cpp.
  double tracking_tol = 0.25;
  double slowdown_tol = 0.25;
  /// Chaos determinism gate (skippable for unit tests that only probe the
  /// cheaper checks).
  bool chaos_gate = true;
  double chaos_duration_s = 120.0;
  int chaos_node_count = 6;
  std::string chaos_plan = "drop10_crash1";
};

struct AdmissionCheck {
  std::string name;
  bool passed = false;
  std::string detail;
};

struct AdmissionReport {
  std::string policy;
  std::string identity;
  std::vector<AdmissionCheck> checks;

  bool passed() const;
  /// One line per check, for logs and the anorctl policy subcommand.
  std::string describe() const;
};

/// Run the harness without touching admission state (pure measurement).
AdmissionReport run_admission(const PolicyRef& policy,
                              const AdmissionOptions& options = {});

/// Run the harness and, on success, mark the policy admitted in the
/// global registry.  Built-ins return a trivially-passed report.
AdmissionReport admit_policy(const PolicyRef& policy,
                             const AdmissionOptions& options = {});

/// The run_scenario gate: built-ins and already-admitted policies return
/// immediately; anything else is admitted lazily (serialized across
/// threads) and a failure throws util::ConfigError carrying the report.
void ensure_admitted(const PolicyRef& policy);

}  // namespace anor::engine
