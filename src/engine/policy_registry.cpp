#include "engine/policy_registry.hpp"

#include <cstdio>
#include <utility>

#include "budget/expr_budgeter.hpp"
#include "budget/policy_dsl.hpp"
#include "util/error.hpp"

namespace anor::engine {

namespace {

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += "|";
    out += name;
  }
  return out;
}

PolicyDescriptor make_builtin(std::string name, std::string summary,
                              budget::BudgeterKind kind, bool feedback,
                              bool expects_labels, bool strip_labels) {
  PolicyDescriptor d;
  d.name = std::move(name);
  d.summary = std::move(summary);
  d.builtin = true;
  d.budgeter_kind = kind;
  d.feedback = feedback;
  d.expects_misclassification = expects_labels;
  d.strip_labels_for_tabular = strip_labels;
  return d;
}

}  // namespace

std::string PolicyDescriptor::identity() const {
  if (builtin) return name;
  if (!dsl_source.empty()) return name + "#" + hex16(budget::dsl_source_hash(dsl_source));
  return name + "#native";
}

PolicyRegistry::PolicyRegistry() {
  // The four paper policies (Fig. 6-10 legends), declarative-only so the
  // runner's dispatch reproduces the legacy code path bit-for-bit.
  for (PolicyDescriptor& d : std::vector<PolicyDescriptor>{
           make_builtin("uniform", "performance-agnostic even-power budgeter",
                        budget::BudgeterKind::kEvenPower, false, false, false),
           make_builtin("characterized",
                        "even-slowdown budgeter with correct precharacterized models",
                        budget::BudgeterKind::kEvenSlowdown, false, false, false),
           make_builtin("misclassified",
                        "even-slowdown with wrong classification labels, feedback off",
                        budget::BudgeterKind::kEvenSlowdown, false, true, false),
           make_builtin("adjusted",
                        "misclassified with the job-tier feedback loop enabled",
                        budget::BudgeterKind::kEvenSlowdown, true, true, true)}) {
    policies_.emplace(d.name, std::move(d));
  }
}

PolicyRegistry& PolicyRegistry::global() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::register_policy(PolicyDescriptor descriptor) {
  if (descriptor.name.empty()) {
    throw util::ConfigError("policy registry: policy name must be non-empty");
  }
  if (descriptor.builtin) {
    throw util::ConfigError("policy registry: built-in policies cannot be registered "
                            "externally ('" + descriptor.name + "')");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = policies_.find(descriptor.name);
  if (it != policies_.end()) {
    if (it->second.builtin) {
      throw util::ConfigError("policy registry: '" + descriptor.name +
                              "' is a built-in policy name and cannot be redefined");
    }
    if (it->second.identity() == descriptor.identity()) return;  // idempotent
    throw util::ConfigError(
        "policy registry: '" + descriptor.name + "' is already registered with a "
        "different definition (" + it->second.identity() + " vs " + descriptor.identity() +
        "); unregister it first or pick another name");
  }
  policies_.emplace(descriptor.name, std::move(descriptor));
}

void PolicyRegistry::register_expression_policy(const std::string& name,
                                                const std::string& expr,
                                                const std::string& summary) {
  budget::DslExpr::parse(expr);  // surface syntax errors at registration
  PolicyDescriptor d;
  d.name = name;
  d.summary = summary.empty() ? "expression-DSL policy" : summary;
  d.dsl_source = expr;
  register_policy(std::move(d));
}

void PolicyRegistry::unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = policies_.find(name);
  if (it == policies_.end()) return;
  if (it->second.builtin) {
    throw util::ConfigError("policy registry: cannot unregister built-in '" + name + "'");
  }
  policies_.erase(it);
  admitted_.erase(name);
}

bool PolicyRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policies_.count(name) != 0;
}

PolicyDescriptor PolicyRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = policies_.find(name);
  if (it == policies_.end()) {
    std::vector<std::string> available;
    available.reserve(policies_.size());
    for (const auto& [key, unused] : policies_) available.push_back(key);
    throw util::ConfigError("unknown policy '" + name + "' (available: " +
                            join_names(available) + ")");
  }
  return it->second;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(policies_.size());
  for (const auto& [key, unused] : policies_) out.push_back(key);
  return out;  // std::map iterates sorted
}

const std::vector<std::string>& PolicyRegistry::builtin_names() {
  static const std::vector<std::string> names = {"uniform", "characterized",
                                                 "misclassified", "adjusted"};
  return names;
}

bool PolicyRegistry::is_admitted(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto policy = policies_.find(name);
  if (policy == policies_.end()) return false;
  if (policy->second.builtin) return true;
  const auto it = admitted_.find(name);
  return it != admitted_.end() && it->second == policy->second.identity();
}

void PolicyRegistry::mark_admitted(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto policy = policies_.find(name);
  if (policy == policies_.end()) {
    throw util::ConfigError("policy registry: cannot admit unregistered policy '" + name +
                            "'");
  }
  admitted_[name] = policy->second.identity();
}

void PolicyRegistry::clear_admission(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  admitted_.erase(name);
}

PolicyDescriptor resolve_policy(const PolicyRef& ref) {
  PolicyRegistry& registry = PolicyRegistry::global();
  if (!ref.dsl.empty()) {
    registry.register_expression_policy(ref.name, ref.dsl);
  }
  return registry.get(ref.name);
}

std::function<std::unique_ptr<budget::Budgeter>()> policy_budgeter_factory(
    const PolicyDescriptor& descriptor) {
  if (descriptor.budgeter_factory) return descriptor.budgeter_factory;
  if (!descriptor.dsl_source.empty()) {
    const std::string name = descriptor.name;
    const std::string source = descriptor.dsl_source;
    return [name, source] {
      return std::unique_ptr<budget::Budgeter>(
          std::make_unique<budget::ExpressionBudgeter>(name, budget::DslExpr::parse(source)));
    };
  }
  return nullptr;
}

// --- PolicyRef helpers declared in scenario.hpp ------------------------
//
// Implemented here (not scenario.cpp) because they resolve through the
// registry and parse DSL expressions.

PolicyRef policy_from_string(const std::string& name) {
  PolicyRegistry::global().get(name);  // validates; throws listing entries
  return PolicyRef(name);
}

bool expects_misclassification(const PolicyRef& policy) {
  return resolve_policy(policy).expects_misclassification;
}

PolicyRef policy_ref_from_json(const util::Json& json) {
  if (json.is_string()) return policy_from_string(json.as_string());
  if (!json.is_object()) {
    throw util::ConfigError(
        "policy: expected a registry name string or {\"name\", \"expr\"} object");
  }
  const std::string name = json.at("name").as_string();
  const std::string expr = json.string_or("expr", "");
  if (expr.empty()) return policy_from_string(name);
  budget::DslExpr::parse(expr);  // parse-check before the ref circulates
  return PolicyRef(name, expr);
}

util::Json policy_ref_to_json(const PolicyRef& policy) {
  if (policy.dsl.empty()) return util::Json(policy.name);
  util::JsonObject obj;
  obj["name"] = util::Json(policy.name);
  obj["expr"] = util::Json(policy.dsl);
  return util::Json(std::move(obj));
}

}  // namespace anor::engine
