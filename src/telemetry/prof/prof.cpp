#include "telemetry/prof/prof.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace anor::telemetry::prof {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (std::uint32_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      const std::uint64_t lo = bucket_floor(i);
      const std::uint64_t hi = bucket_ceil(i);
      const std::uint64_t mid = lo + (hi - lo) / 2;
      return std::clamp(mid, min(), max());
    }
  }
  return max();
}

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Profiler::Impl {
  mutable std::mutex mutex;
  std::vector<std::string> phase_names;
  std::unordered_map<std::string, std::uint16_t> phase_ids;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::size_t trace_capacity = 1 << 16;
  // Calibration epoch: a (ticks, steady ns) pair taken together.
  std::int64_t epoch_ticks = 0;
  std::int64_t epoch_steady_ns = 0;

  void stamp_epoch() {
    epoch_ticks = now_ticks();
    epoch_steady_ns = steady_ns();
  }
};

Profiler::Profiler() : impl_(std::make_unique<Impl>()) { impl_->stamp_epoch(); }

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

void Profiler::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const bool was = detail::g_enabled.exchange(on, std::memory_order_relaxed);
  // Re-arm the calibration epoch when profiling turns on over an empty
  // profiler, so tick conversion uses the live measurement window.  With
  // spans already recorded the old epoch must stand — their absolute
  // starts are rebased against it.
  if (on && !was) {
    bool empty = true;
    for (const auto& buffer : impl_->buffers) {
      if (buffer->total_ != 0) empty = false;
    }
    if (empty) impl_->stamp_epoch();
  }
}

std::uint16_t Profiler::phase_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->phase_ids.find(std::string(name));
  if (it != impl_->phase_ids.end()) return it->second;
  if (impl_->phase_names.size() >= 0xFFFF) {
    throw std::length_error("prof::Profiler: too many phases");
  }
  const std::uint16_t id = static_cast<std::uint16_t>(impl_->phase_names.size());
  impl_->phase_names.emplace_back(name);
  impl_->phase_ids.emplace(std::string(name), id);
  return id;
}

std::vector<std::string> Profiler::phase_names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->phase_names;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& buffer : impl_->buffers) {
    buffer->ring_.clear();
    buffer->next_ = 0;
    buffer->total_ = 0;
    for (LogHistogram& stat : buffer->stats_) stat.reset();
  }
  impl_->stamp_epoch();
}

void Profiler::set_trace_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->trace_capacity = std::max<std::size_t>(capacity, 1);
  for (auto& buffer : impl_->buffers) {
    buffer->capacity_ = impl_->trace_capacity;
    buffer->ring_.clear();
    buffer->ring_.reserve(buffer->capacity_);
    buffer->next_ = 0;
  }
}

std::size_t Profiler::trace_capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->trace_capacity;
}

ThreadBuffer& Profiler::register_thread() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const int lane = static_cast<int>(impl_->buffers.size());
  std::string name = lane == 0 ? "main" : "thread-" + std::to_string(lane);
  impl_->buffers.push_back(
      std::make_unique<ThreadBuffer>(lane, std::move(name), impl_->trace_capacity));
  return *impl_->buffers.back();
}

ThreadBuffer& Profiler::local_buffer() {
  thread_local ThreadBuffer* buffer = &register_thread();
  return *buffer;
}

void Profiler::set_thread_name(std::string_view name) {
  Profiler& profiler = global();
  ThreadBuffer& buffer = profiler.local_buffer();
  std::lock_guard<std::mutex> lock(profiler.impl_->mutex);
  buffer.name_ = std::string(name);
}

std::vector<PhaseReport> Profiler::phase_report() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const double k = ns_per_tick_locked();
  std::vector<PhaseReport> out;
  for (std::size_t p = 0; p < impl_->phase_names.size(); ++p) {
    LogHistogram merged;
    for (const auto& buffer : impl_->buffers) {
      if (p < buffer->stats_.size()) merged.merge(buffer->stats_[p]);
    }
    if (merged.count() == 0) continue;
    PhaseReport report;
    report.name = impl_->phase_names[p];
    report.count = merged.count();
    report.total_ns = static_cast<double>(merged.sum()) * k;
    report.min_ns = static_cast<double>(merged.min()) * k;
    report.max_ns = static_cast<double>(merged.max()) * k;
    report.p50_ns = static_cast<double>(merged.quantile(0.50)) * k;
    report.p95_ns = static_cast<double>(merged.quantile(0.95)) * k;
    report.p99_ns = static_cast<double>(merged.quantile(0.99)) * k;
    out.push_back(std::move(report));
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseReport& a, const PhaseReport& b) { return a.name < b.name; });
  return out;
}

std::vector<LaneSnapshot> Profiler::lanes() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<LaneSnapshot> out;
  for (const auto& buffer : impl_->buffers) {
    if (buffer->ring_.empty()) continue;
    LaneSnapshot lane;
    lane.lane = buffer->lane_;
    lane.thread_name = buffer->name_;
    lane.dropped = buffer->dropped();
    lane.events.reserve(buffer->ring_.size());
    // Oldest first: the ring is ordered until it wraps, then next_ points
    // at the oldest slot.
    const std::size_t n = buffer->ring_.size();
    const std::size_t head = n < buffer->capacity_ ? 0 : buffer->next_;
    for (std::size_t i = 0; i < n; ++i) {
      SpanEvent event = buffer->ring_[(head + i) % n];
      event.start_ticks -= impl_->epoch_ticks;
      lane.events.push_back(event);
    }
    std::sort(lane.events.begin(), lane.events.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                if (a.start_ticks != b.start_ticks) return a.start_ticks < b.start_ticks;
                return a.dur_ticks > b.dur_ticks;  // parents before children
              });
    out.push_back(std::move(lane));
  }
  std::sort(out.begin(), out.end(),
            [](const LaneSnapshot& a, const LaneSnapshot& b) { return a.lane < b.lane; });
  return out;
}

std::uint64_t Profiler::dropped_spans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::uint64_t dropped = 0;
  for (const auto& buffer : impl_->buffers) dropped += buffer->dropped();
  return dropped;
}

std::uint64_t Profiler::total_spans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : impl_->buffers) total += buffer->total_;
  return total;
}

double Profiler::ns_per_tick() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return ns_per_tick_locked();
}

std::int64_t Profiler::epoch_ticks() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->epoch_ticks;
}

double Profiler::ns_per_tick_locked() const {
#if defined(__x86_64__) || defined(__i386__)
  // Calibrate against the elapsed (ticks, steady ns) window since the
  // epoch; insist on a 200 us minimum baseline so a snapshot taken
  // immediately after reset() still converts sanely.
  constexpr std::int64_t kMinBaselineNs = 200'000;
  std::int64_t dt_ns = steady_ns() - impl_->epoch_steady_ns;
  while (dt_ns < kMinBaselineNs) {
    dt_ns = steady_ns() - impl_->epoch_steady_ns;
  }
  const std::int64_t dt_ticks = now_ticks() - impl_->epoch_ticks;
  if (dt_ticks <= 0) return 1.0;
  return static_cast<double>(dt_ns) / static_cast<double>(dt_ticks);
#else
  return 1.0;  // now_ticks() already returns nanoseconds
#endif
}

}  // namespace anor::telemetry::prof
