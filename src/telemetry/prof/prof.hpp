// Phase-level span profiler: the wall-clock measurement substrate under
// the whole stack (DESIGN.md 6g "Profiling & span model").
//
// ROADMAP's parallel-stepping item needs to know where a step's ~8 us
// actually go — control vs update_nodes vs the fork/join rendezvous — and
// counters alone cannot say.  A ProfScope is an RAII span: construction
// reads a timestamp, destruction reads another and appends one fixed-size
// record to a *thread-local* buffer.  The hot path takes no locks and
// allocates nothing after the first span of a (thread, phase) pair; when
// profiling is disabled the entire cost is one relaxed atomic load per
// scope, so instrumentation can stay compiled in everywhere
// (bench/bench_prof_overhead pins the <2 %-enabled / ~0-disabled
// contract, and spans never touch simulation state, so golden trace
// hashes are bit-identical with profiling on or off).
//
// Per phase each thread keeps count/total/min/max plus an HDR-style
// log-bucketed histogram (8 sub-buckets per power of two, <= 12.5 %
// relative error) for p50/p95/p99, and a bounded ring of raw span events
// (drop-oldest, with a dropped counter) for timeline export.  Timestamps
// are raw TSC ticks on x86 (steady_clock elsewhere), calibrated to
// nanoseconds once at collection time.
//
// Collection contract: phase_report()/lanes()/reset() must run at a
// quiescent point — after worker threads have joined or between
// parallel_for calls (the pool's future synchronization orders their
// writes before the collector's reads).  This library has no dependencies
// (util::ThreadPool instruments itself with it); exporters live in
// telemetry/prof_export.hpp.
#pragma once

#include <atomic>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace anor::telemetry::prof {

/// HDR-style histogram over unsigned values: each power of two is split
/// into 8 sub-buckets, so any recorded value lands in a bucket whose
/// width is at most 1/8 of its magnitude.  record() is two increments and
/// an add; nothing allocates (the bucket array is inline).
class LogHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 3;
  static constexpr std::uint32_t kSub = 1u << kSubBits;  // sub-buckets per octave
  /// Max shift is 64-1-kSubBits = 60 -> max major index 61; one extra
  /// octave row covers the top.
  static constexpr std::size_t kBucketCount = (64 - 1 - kSubBits + 2) * kSub;

  /// Bucket that value v falls into.
  static std::uint32_t bucket_index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::uint32_t>(v);
    const std::uint32_t shift =
        static_cast<std::uint32_t>(std::bit_width(v)) - 1 - kSubBits;
    return ((shift + 1) << kSubBits) |
           static_cast<std::uint32_t>((v >> shift) & (kSub - 1));
  }

  /// Smallest value mapping to bucket `index`.
  static std::uint64_t bucket_floor(std::uint32_t index) {
    const std::uint32_t major = index >> kSubBits;
    const std::uint64_t sub = index & (kSub - 1);
    if (major == 0) return sub;
    return (static_cast<std::uint64_t>(kSub) + sub) << (major - 1);
  }

  /// Exclusive upper bound of bucket `index` (floor of the next bucket).
  static std::uint64_t bucket_ceil(std::uint32_t index) {
    return bucket_floor(index + 1);
  }

  void record(std::uint64_t v) {
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LogHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  void reset() { *this = LogHistogram{}; }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// 0 when empty.
  std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket_count(std::uint32_t index) const { return buckets_[index]; }

  /// Value at quantile q in [0, 1]: the midpoint of the bucket holding the
  /// ceil(q * count)-th smallest observation (clamped to observed
  /// min/max).  0 when empty.
  std::uint64_t quantile(double q) const;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// One closed span in a thread's ring: raw-tick start (absolute), raw-tick
/// duration, phase id, and nesting depth at entry (0 = top level).
struct SpanEvent {
  std::int64_t start_ticks = 0;
  std::int64_t dur_ticks = 0;
  std::uint16_t phase = 0;
  std::uint16_t depth = 0;
};

namespace detail {
/// The enabled flag lives outside the Profiler so the disabled fast path
/// is a single constinit atomic load — no singleton guard, no call.
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Raw timestamp: TSC ticks on x86 (invariant and core-synchronized on
/// anything modern), steady_clock nanoseconds elsewhere.  Converted to
/// nanoseconds at collection time via Profiler::ns_per_tick().
inline std::int64_t now_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  return static_cast<std::int64_t>(__builtin_ia32_rdtsc());
#else
  return std::chrono::steady_clock::now().time_since_epoch().count();
#endif
}

/// Per-thread span storage: a per-phase stats array plus a bounded ring
/// of raw events (drop-oldest).  Owned by the Profiler registry for the
/// process lifetime; the owning thread writes lock-free, collectors read
/// at quiescent points.
class ThreadBuffer {
 public:
  ThreadBuffer(int lane, std::string name, std::size_t capacity)
      : lane_(lane), name_(std::move(name)), capacity_(capacity) {
    ring_.reserve(capacity_);
  }

  void record(std::uint16_t phase, std::uint16_t at_depth, std::int64_t start,
              std::int64_t dur) {
    if (dur < 0) dur = 0;  // TSC skew across a migration; clamp, don't poison
    if (ring_.size() < capacity_) {
      ring_.push_back(SpanEvent{start, dur, phase, at_depth});
    } else {
      ring_[next_] = SpanEvent{start, dur, phase, at_depth};
      if (++next_ == capacity_) next_ = 0;
    }
    ++total_;
    if (phase >= stats_.size()) grow(phase);
    stats_[phase].record(static_cast<std::uint64_t>(dur));
  }

  int lane() const { return lane_; }
  const std::string& name() const { return name_; }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }

  /// Open-scope nesting depth; maintained by ProfScope.
  std::uint16_t depth = 0;

 private:
  friend class Profiler;
  void grow(std::uint16_t phase) { stats_.resize(phase + std::size_t{1}); }

  int lane_;
  std::string name_;
  std::size_t capacity_;
  std::vector<SpanEvent> ring_;
  std::size_t next_ = 0;      // overwrite cursor once the ring is full
  std::uint64_t total_ = 0;   // spans recorded over the buffer's lifetime
  std::vector<LogHistogram> stats_;  // indexed by phase id, grown on demand
};

/// Merged per-phase statistics, converted to nanoseconds.
struct PhaseReport {
  std::string name;
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;

  double mean_ns() const { return count > 0 ? total_ns / static_cast<double>(count) : 0.0; }
};

/// One thread's timeline, ordered by span start, in raw ticks relative to
/// the profiler epoch.
struct LaneSnapshot {
  int lane = 0;
  std::string thread_name;
  std::vector<SpanEvent> events;  // start_ticks already epoch-relative
  std::uint64_t dropped = 0;
};

/// Process-global span registry: phase-name interning, thread-buffer
/// ownership, and collection/calibration.  All methods are thread-safe;
/// phase_report()/lanes()/reset() additionally require writer quiescence
/// (see the header comment).
class Profiler {
 public:
  static Profiler& global();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Enabling (re-)arms the calibration epoch when the profiler was
  /// previously empty-disabled; spans recorded while disabled are simply
  /// never produced (ProfScope checks the flag at construction).
  void set_enabled(bool on);
  bool enabled() const { return prof::enabled(); }

  /// Intern a phase name -> dense id.  Call once per site (the
  /// ANOR_PROF_SCOPE macro caches the id in a function-local static).
  std::uint16_t phase_id(std::string_view name);
  /// Registered names, indexed by phase id.
  std::vector<std::string> phase_names() const;

  /// Zero every thread's stats and ring (registrations and buffers stay
  /// valid) and start a fresh calibration epoch.
  void reset();

  /// Ring capacity, in spans, for every existing and future thread buffer.
  /// Resizing clears existing rings (stats are kept).
  void set_trace_capacity(std::size_t capacity);
  std::size_t trace_capacity() const;

  /// Name the calling thread's lane ("main", "worker-3", ...).
  static void set_thread_name(std::string_view name);

  /// Merged per-phase stats in name-sorted order (deterministic for diffs
  /// and exposition), nanosecond units.
  std::vector<PhaseReport> phase_report() const;

  /// Per-thread timelines (lanes with zero events are omitted), events
  /// sorted by start, starts rebased to the current epoch.
  std::vector<LaneSnapshot> lanes() const;

  /// Spans overwritten in rings since the last reset, summed over lanes.
  std::uint64_t dropped_spans() const;
  /// Spans recorded since the last reset, summed over lanes.
  std::uint64_t total_spans() const;

  /// Calibrated tick -> nanosecond factor.  Uses the time elapsed since
  /// the epoch as the baseline; spins out to a 200 us minimum baseline if
  /// asked earlier (collection-time only, never on the hot path).
  double ns_per_tick() const;
  std::int64_t epoch_ticks() const;

  /// The calling thread's buffer (registered on first use).  Exposed for
  /// ProfScope; not for direct use.
  ThreadBuffer& local_buffer();

 private:
  Profiler();
  ThreadBuffer& register_thread();
  double ns_per_tick_locked() const;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII span: ~2 timestamp reads plus one ring append when profiling is
/// enabled, one relaxed atomic load when it is not.
class ProfScope {
 public:
  explicit ProfScope(std::uint16_t phase) {
    if (!prof::enabled()) return;
    buffer_ = &Profiler::global().local_buffer();
    phase_ = phase;
    depth_ = buffer_->depth++;
    start_ = now_ticks();
  }

  ~ProfScope() {
    if (buffer_ == nullptr) return;
    const std::int64_t dur = now_ticks() - start_;
    --buffer_->depth;
    buffer_->record(phase_, depth_, start_, dur);
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ThreadBuffer* buffer_ = nullptr;
  std::int64_t start_ = 0;
  std::uint16_t phase_ = 0;
  std::uint16_t depth_ = 0;
};

}  // namespace anor::telemetry::prof

#define ANOR_PROF_CONCAT2(a, b) a##b
#define ANOR_PROF_CONCAT(a, b) ANOR_PROF_CONCAT2(a, b)

/// Span over the enclosing scope.  The phase id is interned once per call
/// site (function-local static); `name` must be a stable string.
#define ANOR_PROF_SCOPE(name)                                                      \
  static const std::uint16_t ANOR_PROF_CONCAT(anor_prof_id_, __LINE__) =           \
      ::anor::telemetry::prof::Profiler::global().phase_id(name);                  \
  ::anor::telemetry::prof::ProfScope ANOR_PROF_CONCAT(anor_prof_scope_, __LINE__)( \
      ANOR_PROF_CONCAT(anor_prof_id_, __LINE__))
