// Metrics registry: counters, gauges, and fixed-bucket histograms.
//
// The control stack publishes what it did — MSR writes, cap clamps,
// budget redistributions, model refits, message counts — through one
// process-global registry so benches and the emulation can emit
// machine-readable run artifacts (src/telemetry/artifact.hpp).  Updates
// are cheap enough for the control hot path: a counter increment is one
// relaxed atomic add, a histogram observation is a short linear scan over
// preallocated buckets, and nothing allocates after registration.
// Registration (name + label set -> cell) takes a mutex and should be
// done once, up front; call sites keep the returned reference.
//
// Metric names follow `tier.component.metric` (see DESIGN.md
// "Observability"): `node.*` for the hardware layer, `job.*` for the
// per-job GEOPM-like runtime, `cluster.*` for the head-node tier, and
// `sim.*` for the tabular simulator.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace anor::telemetry {

/// Label set attached to a metric, e.g. {{"job", "bt.D.x#4"}}.  Sorted by
/// key when the metric is registered so label order never splits a series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series key: `name` or `name{k=v,k2=v2}` with sorted keys.
std::string metric_key(std::string_view name, const MetricLabels& labels);

/// Monotonic event count.  inc() is a single relaxed atomic add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (power, cap, budget, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram.  Bucket i counts observations v <= bounds[i]
/// (upper-inclusive); one implicit overflow bucket catches the rest.
/// Buckets are preallocated at registration; observe() never allocates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) {
    std::size_t i = 0;
    const std::size_t n = bounds_.size();
    while (i < n && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i; i == bounds().size() is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t bucket_size() const { return bounds_.size() + 1; }
  void reset();

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Bucket-bound helpers for histogram registration.
std::vector<double> linear_bounds(double start, double step, std::size_t count);
std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricKind kind);

/// Point-in-time copy of one metric, used by exporters and artifacts.
struct MetricSnapshot {
  std::string key;  // canonical name{labels}
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counter/gauge value; histogram observation count
  double sum = 0.0;    // histogram only
  std::vector<double> bounds;          // histogram only
  std::vector<std::uint64_t> buckets;  // histogram only (bounds.size() + 1)
};

/// Thread-safe name -> cell registry.  Cells live for the registry's
/// lifetime; references returned by counter()/gauge()/histogram() stay
/// valid across reset_values().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create.  Throws util::ConfigError if the key is already
  /// registered as a different kind.  Histogram bounds are fixed by the
  /// first registration; later calls return the existing cell.
  Counter& counter(std::string_view name, const MetricLabels& labels = {});
  Gauge& gauge(std::string_view name, const MetricLabels& labels = {});
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       const MetricLabels& labels = {});

  std::size_t size() const;

  /// Zero every cell but keep all registrations (handles stay valid).
  void reset_values();

  /// Snapshot in deterministic (key-sorted) order.
  std::vector<MetricSnapshot> snapshot() const;

  /// Object keyed by canonical metric key; histogram entries carry
  /// count/sum/bounds/buckets.
  util::Json to_json() const;

  /// Final-value CSV: `metric,type,value,sum` (histogram value = count).
  void write_csv(std::ostream& out) const;

  /// Process-global registry used by the instrumented framework layers.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string name;
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, const MetricLabels& labels, MetricKind kind,
                        std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace anor::telemetry
