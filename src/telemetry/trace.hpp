// Control-loop tracing: a bounded ring of timestamped trace events.
//
// Records what the control plane decided and when, on the virtual
// timeline: job lifetimes as complete spans, cap changes and budget
// redistributions as instant events, series values as counter events.
// The ring has fixed capacity and overwrites the oldest events when full,
// so tracing can stay on for arbitrarily long runs; `total_recorded()`
// minus `size()` says how many were dropped.  Exporters produce Chrome
// `trace_event` JSON (load in chrome://tracing or https://ui.perfetto.dev)
// and line-delimited JSON for ad-hoc tooling.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace anor::telemetry {

enum class TracePhase : std::uint8_t {
  kBegin,     // Chrome "B": span start
  kEnd,       // Chrome "E": span end
  kComplete,  // Chrome "X": span with duration (safe with overlapping jobs)
  kInstant,   // Chrome "i": a moment (cap change, rebudget, refit)
  kCounter,   // Chrome "C": a sampled series value
};

std::string_view chrome_phase(TracePhase phase);

struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  double t_s = 0.0;    // virtual time of the event
  double dur_s = 0.0;  // kComplete only
  double value = 0.0;  // kCounter payload (also attached to instants)
  std::string name;
  std::string category;
};

/// Bounded, thread-safe trace-event ring.  Event timestamps are virtual
/// seconds: pass them explicitly, or bind_clock() once and use the
/// clockless overloads.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The clock must outlive the recorder (or be unbound with nullptr).
  void bind_clock(const util::VirtualClock* clock);

  /// Bound clock's current time (0 when no clock is bound).
  double clock_now() const;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void begin(std::string_view name, std::string_view category, double t_s);
  void end(std::string_view name, std::string_view category, double t_s);
  void complete(std::string_view name, std::string_view category, double t_begin_s,
                double dur_s);
  void instant(std::string_view name, std::string_view category, double t_s,
               double value = 0.0);
  void counter(std::string_view name, std::string_view category, double t_s, double value);

  /// Clockless overloads: use the bound clock (t = 0 if none bound).
  void instant(std::string_view name, std::string_view category);
  void counter(std::string_view name, std::string_view category, double value);

  std::size_t capacity() const;
  /// Rebound the ring at runtime (minimum 1).  Keeps the newest
  /// min(new_capacity, size()) events; anything older counts as dropped.
  void set_capacity(std::size_t capacity);
  /// Events currently retained (<= capacity).
  std::size_t size() const;
  /// Events recorded over the recorder's lifetime (>= size()).
  std::uint64_t total_recorded() const;
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const;

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

  void clear();

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  void export_chrome_json(std::ostream& out) const;
  /// One JSON object per line: {"ph","t_s","name","cat",...}.
  void export_jsonl(std::ostream& out) const;

  /// Process-global recorder used by the instrumented framework layers.
  static TraceRecorder& global();

 private:
  void push(TraceEvent event);

  /// Oldest retained event's index when the ring is full (the overwrite
  /// cursor); 0 while still filling.
  std::size_t head_locked() const;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // overwrite cursor once full
  std::uint64_t total_ = 0;
  const util::VirtualClock* clock_ = nullptr;
  bool enabled_ = true;
};

/// RAII span against a recorder: begin at construction, end at
/// destruction (using the recorder's bound clock) or at an explicit
/// end(t_s) call.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder& recorder, std::string_view name, std::string_view category,
            double t_begin_s);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void end(double t_s);

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  bool ended_ = false;
};

}  // namespace anor::telemetry
