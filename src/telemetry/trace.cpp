#include "telemetry/trace.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace anor::telemetry {

std::string_view chrome_phase(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin: return "B";
    case TracePhase::kEnd: return "E";
    case TracePhase::kComplete: return "X";
    case TracePhase::kInstant: return "i";
    case TracePhase::kCounter: return "C";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void TraceRecorder::bind_clock(const util::VirtualClock* clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = clock;
}

void TraceRecorder::push(TraceEvent event) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::size_t TraceRecorder::head_locked() const {
  return ring_.size() < capacity_ ? 0 : next_;
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity = std::max<std::size_t>(capacity, 1);
  if (capacity == capacity_) return;
  // Rebuild oldest-first, keeping the newest events that still fit; the
  // rebuilt ring starts at index 0 so the cursor resets cleanly.
  std::vector<TraceEvent> kept;
  const std::size_t keep = std::min(capacity, ring_.size());
  kept.reserve(capacity);
  const std::size_t head = head_locked();
  for (std::size_t i = ring_.size() - keep; i < ring_.size(); ++i) {
    kept.push_back(std::move(ring_[(head + i) % ring_.size()]));
  }
  ring_ = std::move(kept);
  capacity_ = capacity;
  next_ = 0;
}

void TraceRecorder::begin(std::string_view name, std::string_view category, double t_s) {
  push(TraceEvent{TracePhase::kBegin, t_s, 0.0, 0.0, std::string(name), std::string(category)});
}

void TraceRecorder::end(std::string_view name, std::string_view category, double t_s) {
  push(TraceEvent{TracePhase::kEnd, t_s, 0.0, 0.0, std::string(name), std::string(category)});
}

void TraceRecorder::complete(std::string_view name, std::string_view category,
                             double t_begin_s, double dur_s) {
  push(TraceEvent{TracePhase::kComplete, t_begin_s, dur_s, 0.0, std::string(name),
                  std::string(category)});
}

void TraceRecorder::instant(std::string_view name, std::string_view category, double t_s,
                            double value) {
  push(TraceEvent{TracePhase::kInstant, t_s, 0.0, value, std::string(name),
                  std::string(category)});
}

void TraceRecorder::counter(std::string_view name, std::string_view category, double t_s,
                            double value) {
  push(TraceEvent{TracePhase::kCounter, t_s, 0.0, value, std::string(name),
                  std::string(category)});
}

double TraceRecorder::clock_now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_ != nullptr ? clock_->now() : 0.0;
}

void TraceRecorder::instant(std::string_view name, std::string_view category) {
  instant(name, category, clock_now());
}

void TraceRecorder::counter(std::string_view name, std::string_view category, double value) {
  counter(name, category, clock_now(), value);
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t head = head_locked();
  if (head == 0) return ring_;
  std::vector<TraceEvent> ordered;
  ordered.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ordered.push_back(ring_[(head + i) % ring_.size()]);
  }
  return ordered;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

namespace {

util::Json chrome_event_json(const TraceEvent& event) {
  util::JsonObject obj;
  obj["name"] = util::Json(event.name);
  obj["cat"] = util::Json(event.category);
  obj["ph"] = util::Json(std::string(chrome_phase(event.phase)));
  obj["ts"] = util::Json(event.t_s * 1e6);  // chrome wants microseconds
  obj["pid"] = util::Json(0);
  obj["tid"] = util::Json(0);
  if (event.phase == TracePhase::kComplete) obj["dur"] = util::Json(event.dur_s * 1e6);
  if (event.phase == TracePhase::kInstant) obj["s"] = util::Json(std::string("g"));
  if (event.phase == TracePhase::kCounter || event.value != 0.0) {
    util::JsonObject args;
    args["value"] = util::Json(event.value);
    obj["args"] = util::Json(std::move(args));
  }
  return util::Json(std::move(obj));
}

}  // namespace

void TraceRecorder::export_chrome_json(std::ostream& out) const {
  util::JsonArray events_json;
  for (const TraceEvent& event : events()) events_json.push_back(chrome_event_json(event));
  util::JsonObject root;
  root["traceEvents"] = util::Json(std::move(events_json));
  root["displayTimeUnit"] = util::Json(std::string("ms"));
  out << util::Json(std::move(root)).dump() << '\n';
}

void TraceRecorder::export_jsonl(std::ostream& out) const {
  for (const TraceEvent& event : events()) {
    util::JsonObject obj;
    obj["ph"] = util::Json(std::string(chrome_phase(event.phase)));
    obj["t_s"] = util::Json(event.t_s);
    obj["name"] = util::Json(event.name);
    obj["cat"] = util::Json(event.category);
    if (event.phase == TracePhase::kComplete) obj["dur_s"] = util::Json(event.dur_s);
    if (event.phase == TracePhase::kCounter || event.value != 0.0) {
      obj["value"] = util::Json(event.value);
    }
    out << util::Json(std::move(obj)).dump() << '\n';
  }
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

TraceSpan::TraceSpan(TraceRecorder& recorder, std::string_view name, std::string_view category,
                     double t_begin_s)
    : recorder_(&recorder), name_(name), category_(category) {
  recorder_->begin(name_, category_, t_begin_s);
}

void TraceSpan::end(double t_s) {
  if (ended_) return;
  ended_ = true;
  recorder_->end(name_, category_, t_s);
}

TraceSpan::~TraceSpan() {
  if (!ended_) end(recorder_->clock_now());
}

}  // namespace anor::telemetry
