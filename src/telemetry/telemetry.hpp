// Umbrella header for the telemetry subsystem.
//
// Most instrumentation sites need only this include plus two lines:
//
//   static auto& writes = telemetry::MetricsRegistry::global()
//                             .counter("node.msr.writes");
//   writes.inc();
//
// See DESIGN.md "Observability" for the metric naming scheme and the run
// artifact layout.
#pragma once

#include "telemetry/artifact.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
