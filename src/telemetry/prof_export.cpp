#include "telemetry/prof_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

namespace anor::telemetry {

namespace {

/// Format a double the way Prometheus expects (no exponent surprises for
/// the common integer-valued case).
std::string format_number(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string label_string(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += prometheus_sanitize(key);
    out += "=\"";
    for (char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::string label_string_with(const MetricLabels& labels, const std::string& extra_key,
                              const std::string& extra_value) {
  MetricLabels all = labels;
  all.emplace_back(extra_key, extra_value);
  return label_string(all);
}

}  // namespace

std::string prometheus_sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = (c >= '0' && c <= '9');
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

util::Json prof_chrome_trace_json(const prof::Profiler& profiler) {
  const std::vector<std::string> names = profiler.phase_names();
  const double ns_per_tick = profiler.ns_per_tick();
  const double us_per_tick = ns_per_tick / 1000.0;

  util::JsonArray events;
  const std::vector<prof::LaneSnapshot> lanes = profiler.lanes();
  for (const prof::LaneSnapshot& lane : lanes) {
    util::JsonObject meta;
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = lane.lane;
    meta["name"] = "thread_name";
    meta["args"] = util::JsonObject{{"name", lane.thread_name}};
    events.emplace_back(std::move(meta));
  }
  for (const prof::LaneSnapshot& lane : lanes) {
    for (const prof::SpanEvent& span : lane.events) {
      util::JsonObject event;
      event["ph"] = "X";
      event["pid"] = 0;
      event["tid"] = lane.lane;
      event["name"] = span.phase < names.size() ? names[span.phase] : "?";
      event["cat"] = "anor";
      event["ts"] = static_cast<double>(span.start_ticks) * us_per_tick;
      event["dur"] = static_cast<double>(span.dur_ticks) * us_per_tick;
      event["args"] = util::JsonObject{{"depth", static_cast<int>(span.depth)}};
      events.emplace_back(std::move(event));
    }
  }

  util::JsonObject root;
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  util::JsonObject metadata;
  metadata["dropped_spans"] = static_cast<double>(profiler.dropped_spans());
  metadata["total_spans"] = static_cast<double>(profiler.total_spans());
  root["metadata"] = std::move(metadata);
  return util::Json(std::move(root));
}

void write_prof_chrome_trace(std::ostream& out, const prof::Profiler& profiler) {
  out << prof_chrome_trace_json(profiler).dump() << "\n";
}

util::Json prof_phase_report_json(const prof::Profiler& profiler) {
  util::JsonArray phases;
  for (const prof::PhaseReport& report : profiler.phase_report()) {
    util::JsonObject phase;
    phase["name"] = report.name;
    phase["count"] = static_cast<double>(report.count);
    phase["total_ns"] = report.total_ns;
    phase["mean_ns"] = report.mean_ns();
    phase["min_ns"] = report.min_ns;
    phase["max_ns"] = report.max_ns;
    phase["p50_ns"] = report.p50_ns;
    phase["p95_ns"] = report.p95_ns;
    phase["p99_ns"] = report.p99_ns;
    phases.emplace_back(std::move(phase));
  }
  return util::Json(std::move(phases));
}

namespace {

std::string exposition_from_snapshots(const std::vector<MetricSnapshot>& snapshots) {
  std::string out;
  // Snapshots arrive key-sorted, so families (and label sets within a
  // family) come out in a stable order; emit one TYPE header per family.
  std::string last_family;
  for (const MetricSnapshot& snap : snapshots) {
    const std::string family = prometheus_sanitize(snap.name);
    if (family != last_family) {
      out += "# TYPE " + family + " ";
      switch (snap.kind) {
        case MetricKind::kCounter: out += "counter"; break;
        case MetricKind::kGauge: out += "gauge"; break;
        case MetricKind::kHistogram: out += "histogram"; break;
      }
      out += "\n";
      last_family = family;
    }
    if (snap.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      if (snap.buckets.size() == snap.bounds.size() + 1) {
        for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.buckets[i];
          out += family + "_bucket" +
                 label_string_with(snap.labels, "le", format_number(snap.bounds[i])) +
                 " " + format_number(static_cast<double>(cumulative)) + "\n";
        }
        cumulative += snap.buckets[snap.bounds.size()];
      } else {
        cumulative = static_cast<std::uint64_t>(snap.value);
      }
      out += family + "_bucket" + label_string_with(snap.labels, "le", "+Inf") + " " +
             format_number(static_cast<double>(cumulative)) + "\n";
      out += family + "_sum" + label_string(snap.labels) + " " + format_number(snap.sum) +
             "\n";
      out += family + "_count" + label_string(snap.labels) + " " +
             format_number(snap.value) + "\n";
    } else {
      out += family + label_string(snap.labels) + " " + format_number(snap.value) + "\n";
    }
  }
  return out;
}

/// Invert metric_key: `name{k=v,k2=v2}` -> (name, labels).  Label values
/// in this codebase never contain ','/'=' (job/phase names), so a flat
/// split is enough.
void parse_metric_key(const std::string& key, std::string& name, MetricLabels& labels) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) {
    name = key;
    return;
  }
  name = key.substr(0, brace);
  std::size_t pos = brace + 1;
  while (pos < key.size() && key[pos] != '}') {
    const std::size_t eq = key.find('=', pos);
    if (eq == std::string::npos) break;
    std::size_t end = key.find(',', eq);
    if (end == std::string::npos) end = key.find('}', eq);
    if (end == std::string::npos) end = key.size();
    labels.emplace_back(key.substr(pos, eq - pos), key.substr(eq + 1, end - eq - 1));
    pos = end + 1;
  }
}

}  // namespace

std::string prometheus_exposition(const MetricsRegistry& registry) {
  return exposition_from_snapshots(registry.snapshot());
}

std::string prometheus_exposition_from_artifact(const util::Json& metrics_json) {
  std::vector<MetricSnapshot> snapshots;
  for (const auto& [key, entry] : metrics_json.as_object()) {
    MetricSnapshot snap;
    snap.key = key;
    parse_metric_key(key, snap.name, snap.labels);
    const std::string type = entry.string_or("type", "counter");
    snap.kind = type == "gauge"      ? MetricKind::kGauge
                : type == "histogram" ? MetricKind::kHistogram
                                      : MetricKind::kCounter;
    snap.value = entry.number_or("value", 0.0);
    snap.sum = entry.number_or("sum", 0.0);
    if (snap.kind == MetricKind::kHistogram && entry.contains("bounds")) {
      for (const util::Json& b : entry.at("bounds").as_array()) {
        snap.bounds.push_back(b.as_number());
      }
      for (const util::Json& c : entry.at("buckets").as_array()) {
        snap.buckets.push_back(static_cast<std::uint64_t>(c.as_number()));
      }
    }
    snapshots.push_back(std::move(snap));
  }
  // JsonObject iteration is key-sorted already; keep the contract explicit.
  std::sort(snapshots.begin(), snapshots.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.key < b.key; });
  return exposition_from_snapshots(snapshots);
}

std::string prometheus_exposition(const MetricsRegistry& registry,
                                  const prof::Profiler& profiler) {
  std::string out = prometheus_exposition(registry);
  const std::vector<prof::PhaseReport> report = profiler.phase_report();
  if (report.empty()) return out;
  // Profiler phases as a Prometheus summary family, one series per phase
  // (phase_report() is already name-sorted).
  out += "# TYPE anor_prof_span_ns summary\n";
  for (const prof::PhaseReport& phase : report) {
    const MetricLabels labels{{"phase", phase.name}};
    out += "anor_prof_span_ns" + label_string_with(labels, "quantile", "0.5") + " " +
           format_number(phase.p50_ns) + "\n";
    out += "anor_prof_span_ns" + label_string_with(labels, "quantile", "0.95") + " " +
           format_number(phase.p95_ns) + "\n";
    out += "anor_prof_span_ns" + label_string_with(labels, "quantile", "0.99") + " " +
           format_number(phase.p99_ns) + "\n";
    out += "anor_prof_span_ns_sum" + label_string(labels) + " " +
           format_number(phase.total_ns) + "\n";
    out += "anor_prof_span_ns_count" + label_string(labels) + " " +
           format_number(static_cast<double>(phase.count)) + "\n";
  }
  out += "# TYPE anor_prof_dropped_spans counter\n";
  out += "anor_prof_dropped_spans " + format_number(static_cast<double>(profiler.dropped_spans())) +
         "\n";
  return out;
}

}  // namespace anor::telemetry
