// Run artifacts: machine-readable snapshots of a run's telemetry.
//
// A RunArtifactWriter owns one artifact directory and fills it with:
//   metrics.csv   — long-format time series (t_s,metric,type,value), one
//                   row per registered counter/gauge per sampling tick
//   metrics.json  — final registry snapshot (histograms included)
//   metrics_final.csv — final registry snapshot as CSV
//   trace.json    — Chrome trace_event JSON (chrome://tracing, Perfetto)
//   trace.jsonl   — the same events, one JSON object per line
//   manifest.json — what this artifact is and what it contains
//
// The emulation engine and the tabular simulator call maybe_sample() on
// their log cadence; benches wrap a run in bench::ArtifactScope, which
// finalizes on scope exit.  Downstream: `anorctl metrics dump` and
// `anorctl trace export` read these directories.
#pragma once

#include <fstream>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace anor::telemetry {

struct RunArtifactConfig {
  std::string dir;        // created if missing
  double cadence_s = 1.0; // minimum virtual-time spacing of CSV samples
  std::string run_name;   // recorded in the manifest
};

class RunArtifactWriter {
 public:
  /// Registry (and recorder, if given) must outlive the writer.
  RunArtifactWriter(RunArtifactConfig config, MetricsRegistry& registry,
                    TraceRecorder* recorder = nullptr);
  ~RunArtifactWriter();

  RunArtifactWriter(const RunArtifactWriter&) = delete;
  RunArtifactWriter& operator=(const RunArtifactWriter&) = delete;

  const std::string& dir() const { return config_.dir; }

  /// Append one row per counter/gauge to metrics.csv if at least
  /// cadence_s has passed since the last sample.
  void maybe_sample(double t_s);
  /// Append unconditionally.
  void sample(double t_s);

  /// Write the final snapshot files (metrics.json, metrics_final.csv,
  /// trace.json, trace.jsonl, manifest.json).  Idempotent; also invoked
  /// by the destructor.
  void finalize();

 private:
  void open_series();

  RunArtifactConfig config_;
  MetricsRegistry* registry_;
  TraceRecorder* recorder_;
  std::ofstream series_;
  bool series_open_ = false;
  double next_sample_s_ = 0.0;
  bool sampled_once_ = false;
  bool finalized_ = false;
};

}  // namespace anor::telemetry
