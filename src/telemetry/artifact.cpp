#include "telemetry/artifact.hpp"

#include <filesystem>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace anor::telemetry {

RunArtifactWriter::RunArtifactWriter(RunArtifactConfig config, MetricsRegistry& registry,
                                     TraceRecorder* recorder)
    : config_(std::move(config)), registry_(&registry), recorder_(recorder) {
  if (config_.dir.empty()) throw util::ConfigError("RunArtifactWriter: empty directory");
  std::filesystem::create_directories(config_.dir);
}

RunArtifactWriter::~RunArtifactWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructors must not throw; a failed artifact write loses the
    // artifact, not the run.
  }
}

void RunArtifactWriter::open_series() {
  if (series_open_) return;
  series_.open(config_.dir + "/metrics.csv");
  if (!series_) {
    throw util::ConfigError("RunArtifactWriter: cannot open " + config_.dir + "/metrics.csv");
  }
  util::CsvWriter writer(series_);
  writer.write_header({"t_s", "metric", "type", "value"});
  series_open_ = true;
}

void RunArtifactWriter::maybe_sample(double t_s) {
  if (sampled_once_ && t_s + 1e-12 < next_sample_s_) return;
  sample(t_s);
}

void RunArtifactWriter::sample(double t_s) {
  open_series();
  util::CsvWriter writer(series_);
  for (const MetricSnapshot& snap : registry_->snapshot()) {
    // Histograms only make sense as final distributions; the time series
    // carries the scalar metrics.
    if (snap.kind == MetricKind::kHistogram) continue;
    writer.write_row({util::CsvWriter::format(t_s), snap.key,
                      std::string(to_string(snap.kind)), util::CsvWriter::format(snap.value)});
  }
  sampled_once_ = true;
  next_sample_s_ = t_s + config_.cadence_s;
}

void RunArtifactWriter::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (series_open_) series_.flush();

  util::save_json_file(config_.dir + "/metrics.json", registry_->to_json());
  {
    std::ofstream out(config_.dir + "/metrics_final.csv");
    registry_->write_csv(out);
  }
  if (recorder_ != nullptr) {
    {
      std::ofstream out(config_.dir + "/trace.json");
      recorder_->export_chrome_json(out);
    }
    {
      std::ofstream out(config_.dir + "/trace.jsonl");
      recorder_->export_jsonl(out);
    }
  }

  util::JsonObject manifest;
  manifest["run"] = util::Json(config_.run_name);
  manifest["cadence_s"] = util::Json(config_.cadence_s);
  manifest["metric_count"] = util::Json(static_cast<double>(registry_->size()));
  util::JsonArray files;
  files.push_back(util::Json(std::string("metrics.json")));
  files.push_back(util::Json(std::string("metrics_final.csv")));
  if (series_open_) files.push_back(util::Json(std::string("metrics.csv")));
  if (recorder_ != nullptr) {
    files.push_back(util::Json(std::string("trace.json")));
    files.push_back(util::Json(std::string("trace.jsonl")));
    manifest["trace_events"] = util::Json(static_cast<double>(recorder_->size()));
    manifest["trace_dropped"] = util::Json(static_cast<double>(recorder_->dropped()));
  }
  manifest["files"] = util::Json(std::move(files));
  util::save_json_file(config_.dir + "/manifest.json", util::Json(std::move(manifest)));
}

}  // namespace anor::telemetry
