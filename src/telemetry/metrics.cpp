#include "telemetry/metrics.hpp"

#include <algorithm>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace anor::telemetry {

std::string metric_key(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> linear_bounds(double start, double step, std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) bounds.push_back(start + step * static_cast<double>(i));
  return bounds;
}

std::vector<double> exponential_bounds(double start, double factor, std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        const MetricLabels& labels,
                                                        MetricKind kind,
                                                        std::vector<double>* bounds) {
  std::string key = metric_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw util::ConfigError("MetricsRegistry: '" + key + "' already registered as " +
                              std::string(to_string(it->second.kind)));
    }
    return it->second;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.labels = labels;
  std::sort(entry.labels.begin(), entry.labels.end());
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(std::move(*bounds));
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, const MetricLabels& labels) {
  return *find_or_create(name, labels, MetricKind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const MetricLabels& labels) {
  return *find_or_create(name, labels, MetricKind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> upper_bounds,
                                      const MetricLabels& labels) {
  return *find_or_create(name, labels, MetricKind::kHistogram, &upper_bounds).histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter: entry.counter->reset(); break;
      case MetricKind::kGauge: entry.gauge->reset(); break;
      case MetricKind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.key = key;
    snap.name = entry.name;
    snap.labels = entry.labels;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        snap.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        snap.value = static_cast<double>(h.count());
        snap.sum = h.sum();
        snap.bounds = h.bounds();
        snap.buckets.reserve(h.bucket_size());
        for (std::size_t i = 0; i < h.bucket_size(); ++i) {
          snap.buckets.push_back(h.bucket_count(i));
        }
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

util::Json MetricsRegistry::to_json() const {
  util::JsonObject root;
  for (const MetricSnapshot& snap : snapshot()) {
    util::JsonObject m;
    m["type"] = util::Json(std::string(to_string(snap.kind)));
    m["value"] = util::Json(snap.value);
    if (snap.kind == MetricKind::kHistogram) {
      m["sum"] = util::Json(snap.sum);
      util::JsonArray bounds;
      for (double b : snap.bounds) bounds.push_back(util::Json(b));
      m["bounds"] = util::Json(std::move(bounds));
      util::JsonArray buckets;
      for (std::uint64_t c : snap.buckets) {
        buckets.push_back(util::Json(static_cast<double>(c)));
      }
      m["buckets"] = util::Json(std::move(buckets));
    }
    root[snap.key] = util::Json(std::move(m));
  }
  return util::Json(std::move(root));
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_header({"metric", "type", "value", "sum"});
  for (const MetricSnapshot& snap : snapshot()) {
    writer.write_row({snap.key, std::string(to_string(snap.kind)),
                      util::CsvWriter::format(snap.value), util::CsvWriter::format(snap.sum)});
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace anor::telemetry
