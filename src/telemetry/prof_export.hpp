// Exporters for the span profiler (telemetry/prof) and the metrics
// registry.
//
// Two wire formats, both deterministic byte-for-byte given the same
// profiler/registry state:
//
//   - Chrome trace-event JSON ("X" complete events, microsecond units,
//     one tid lane per instrumented thread, "M" thread_name metadata) —
//     loadable in chrome://tracing and Perfetto.
//   - Prometheus text exposition (version 0.0.4): registry counters,
//     gauges, and histograms plus profiler phases as summaries with
//     p50/p95/p99 quantile labels.  Families and label sets are emitted
//     in sorted order so diffs and CI greps are stable.
//
// These live in anor_telemetry (they need util::Json and the registry);
// the profiler core itself is the dependency-free anor_prof library.
#pragma once

#include <ostream>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/prof/prof.hpp"
#include "util/json.hpp"

namespace anor::telemetry {

/// Chrome trace JSON for the profiler's current lanes:
/// {"traceEvents": [...], "displayTimeUnit": "ms"}.
util::Json prof_chrome_trace_json(const prof::Profiler& profiler);
void write_prof_chrome_trace(std::ostream& out, const prof::Profiler& profiler);

/// Name-sorted per-phase statistics as JSON (one object per phase with
/// count/total_ns/min/max/p50/p95/p99/mean), for bench reports and
/// artifacts.
util::Json prof_phase_report_json(const prof::Profiler& profiler);

/// Prometheus text exposition of every registry metric; `sanitize` maps
/// '.'/'-' and other illegal name characters to '_'.
std::string prometheus_exposition(const MetricsRegistry& registry);

/// Registry metrics plus profiler phase summaries
/// (anor_prof_span_ns{phase=...,quantile=...}).
std::string prometheus_exposition(const MetricsRegistry& registry,
                                  const prof::Profiler& profiler);

/// Exposition rebuilt from a run artifact's metrics.json (the
/// MetricsRegistry::to_json schema), so `anorctl metrics expose` can
/// publish a finished run without the live registry.
std::string prometheus_exposition_from_artifact(const util::Json& metrics_json);

/// Prometheus-legal metric name ('.' and other illegal chars -> '_').
std::string prometheus_sanitize(std::string_view name);

}  // namespace anor::telemetry
