// Grid-side objective sources beyond demand response.
//
// The paper motivates ANOR with "grid-aware power management scenarios
// where data center operators may react to time-varying carbon intensity,
// changing power tariffs, or demand response events" (Sec. 3).  Demand
// response lives in regulation.hpp; this header covers the other two:
// a diurnal carbon-intensity profile and a time-of-use tariff, each with
// a mapping from its signal to a cluster power-target series the
// ClusterManager can track directly.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/time_series.hpp"

namespace anor::workload {

/// Grid carbon intensity over a day, gCO2/kWh.  Shaped as a diurnal
/// double-hump (morning and evening peaks riding on a base level) plus
/// seeded weather noise — the texture of real grid data.
class CarbonIntensityProfile {
 public:
  struct Config {
    double base_g_per_kwh = 250.0;
    double swing_g_per_kwh = 150.0;  // peak-to-base amplitude
    double noise_g_per_kwh = 20.0;   // weather / dispatch noise (sigma)
    double noise_step_s = 900.0;     // noise redraw interval
  };

  CarbonIntensityProfile(util::Rng rng, double horizon_s, Config config);
  CarbonIntensityProfile(util::Rng rng, double horizon_s)
      : CarbonIntensityProfile(rng, horizon_s, Config()) {}

  /// Intensity at time-of-day t (t=0 is midnight), gCO2/kWh.
  double at(double t_s) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  double horizon_s_;
  std::vector<double> noise_;
};

/// Map carbon intensity to power targets: run at p_high when the grid is
/// cleanest, throttle to p_low when dirtiest, linear in between (targets
/// sampled every period_s).
util::TimeSeries targets_from_carbon(const CarbonIntensityProfile& profile, double p_low_w,
                                     double p_high_w, double horizon_s,
                                     double period_s = 60.0);

/// Carbon emitted by a power series under a profile, grams CO2.
double carbon_emitted_g(const util::TimeSeries& power_w, const CarbonIntensityProfile& profile);

/// Time-of-use tariff: a list of [start_hour, end_hour) windows with a
/// price each; hours outside any window cost the off-peak price.
class TouTariff {
 public:
  struct Window {
    double start_hour = 0.0;
    double end_hour = 0.0;
    double price_per_kwh = 0.0;
  };

  TouTariff(double off_peak_price_per_kwh, std::vector<Window> windows);

  /// Price at time-of-day t (t=0 is midnight; wraps daily).
  double price_at(double t_s) const;

  /// Electricity cost of a measured power series, dollars.
  double cost_of(const util::TimeSeries& power_w) const;

  /// A common residential/industrial shape: off-peak base, a shoulder,
  /// and an evening peak.
  static TouTariff standard();

 private:
  double off_peak_;
  std::vector<Window> windows_;
};

/// Map a tariff to power targets: p_high at the cheapest price seen over
/// the horizon, p_low at the priciest, linear in between.
util::TimeSeries targets_from_tariff(const TouTariff& tariff, double p_low_w, double p_high_w,
                                     double horizon_s, double period_s = 60.0);

}  // namespace anor::workload
