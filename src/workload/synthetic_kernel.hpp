// Synthetic epoch-loop kernel standing in for an NPB benchmark process.
//
// Each node running a job hosts one kernel instance (one "rank group").
// The kernel advances through its main loop; once per iteration it
// "calls geopm_prof_epoch()" — here, it bumps an epoch counter the
// GEOPM-like runtime reads (paper Sec. 5.1).  Epoch durations follow the
// job type's ground-truth curve at the currently effective node cap, with
// multiplicative measurement noise so repeated runs produce the error bars
// the paper reports.
#pragma once

#include <functional>

#include "platform/compute_load.hpp"
#include "util/rng.hpp"
#include "workload/job_type.hpp"

namespace anor::workload {

struct KernelConfig {
  /// Sigma of the multiplicative epoch-time noise (0 disables).
  double time_noise_sigma = 0.01;
  /// Sigma of additive power-demand noise in watts (0 disables).
  double power_noise_sigma_w = 2.0;
  /// Extra per-instance slowdown multiplier (job-level variation; the
  /// node-level multiplier lives on platform::Node).
  double perf_multiplier = 1.0;
  /// Work performed before the first epoch and after the last one, e.g.
  /// setup/teardown, as seconds at the uncapped rate.  Short jobs spend a
  /// large share of their residency here (paper Sec. 7.2).
  double setup_s = 2.0;
  double teardown_s = 1.0;
};

/// What the GEOPM-like runtime needs from whatever executes on a node: a
/// compute load that also exposes epoch instrumentation and elapsed-time
/// accounting.  SyntheticKernel is the single-profile implementation;
/// PhasedKernel (phased_kernel.hpp) chains several profiles.
class JobKernel : public platform::ComputeLoad {
 public:
  /// Count of completed main-loop iterations on this node
  /// (the local geopm_prof_epoch() counter).
  virtual long epoch_count() const = 0;

  /// Node-time elapsed since the most recent epoch completed (since
  /// execution start when no epoch completed yet).  GEOPM timestamps each
  /// epoch precisely; the agent reconstructs the completion instant as
  /// now - time_since_last_epoch_s().
  virtual double time_since_last_epoch_s() const = 0;

  /// Total node-time executed (including setup/teardown), and the share
  /// spent inside the epoch loop.
  virtual double elapsed_s() const = 0;
  virtual double compute_elapsed_s() const = 0;
};

class SyntheticKernel final : public JobKernel {
 public:
  SyntheticKernel(JobType type, util::Rng rng, KernelConfig config = {});

  // platform::ComputeLoad
  double power_demand_w(double cap_w) const override;
  void advance(double dt_s, double cap_w) override;
  bool complete() const override;
  double progress() const override;

  // JobKernel
  long epoch_count() const override { return epochs_done_; }
  double time_since_last_epoch_s() const override {
    return elapsed_s_ - elapsed_at_last_epoch_s_;
  }
  double elapsed_s() const override { return elapsed_s_; }
  double compute_elapsed_s() const override { return compute_elapsed_s_; }

  const JobType& type() const { return type_; }

  /// Optional hook invoked each time a local epoch completes.
  void set_epoch_callback(std::function<void(long)> cb) { on_epoch_ = std::move(cb); }

 private:
  /// Seconds of wall time per unit of loop work at the given cap,
  /// including noise factor for the current epoch.
  double current_epoch_duration_s(double cap_w) const;
  void begin_next_epoch();

  JobType type_;
  util::Rng rng_;
  KernelConfig config_;

  enum class Phase { kSetup, kCompute, kTeardown, kDone };
  Phase phase_ = Phase::kSetup;
  double phase_remaining_s_ = 0.0;  // for setup/teardown
  long epochs_done_ = 0;
  double epoch_noise_ = 1.0;        // noise factor for the epoch in flight
  double epoch_fraction_done_ = 0.0;
  double elapsed_s_ = 0.0;
  double compute_elapsed_s_ = 0.0;
  double elapsed_at_last_epoch_s_ = 0.0;
  double power_noise_w_ = 0.0;
  std::function<void(long)> on_epoch_;
};

}  // namespace anor::workload
