// Job-type descriptors calibrated to the paper's NAS Parallel Benchmark
// measurements (Fig. 3).
//
// Each type's ground-truth power-performance relationship is the quadratic
//   relative_time(x) = 1 + k1*x + k2*x^2,   x = (cap_max - cap) / cap_span
// normalized so relative_time(cap_max) = 1.  Expanding in terms of the cap
// P gives the T = A*P^2 + B*P + C family the paper's modeler fits
// (Sec. 4.2).  Calibrated slowdowns at the 140 W node floor:
//   EP 1.80, BT 1.70, LU 1.60, FT 1.50, CG 1.40, MG 1.30, SP 1.20, IS 1.12
// matching the 1.0-1.8 span of Fig. 3 and each figure's sensitivity
// ordering (EP/BT most sensitive; IS/SP least).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace anor::workload {

/// Node-level power cap limits of the evaluation platform
/// (2 packages x [70, 140] W).
constexpr double kNodeMinCapW = 140.0;
constexpr double kNodeMaxCapW = 280.0;
constexpr double kNodeTdpW = 280.0;

struct JobType {
  std::string name;          // e.g. "bt.D.x"
  double k1 = 0.0;           // linear sensitivity coefficient
  double k2 = 0.0;           // quadratic sensitivity coefficient
  double base_epoch_s = 1.0; // seconds per epoch at the uncapped (max) cap
  int epochs = 100;          // main-loop iterations per run
  int nodes = 1;             // nodes per instance on the 16-node cluster
  double max_power_w = kNodeMaxCapW;  // per-node draw when uncapped
  double min_power_w = kNodeMinCapW;  // per-node draw at the floor cap

  /// Ground-truth relative execution time at a node cap (1.0 at max cap).
  /// Caps outside [min, max] clamp, as the hardware clamps them.
  double relative_time(double node_cap_w) const;

  /// Seconds per epoch at a node cap.
  double epoch_time_s(double node_cap_w) const;

  /// Total execution time at a constant node cap.
  double exec_time_s(double node_cap_w) const;

  /// Uncapped ("no power cap") execution time, the paper's T_min.
  double min_exec_time_s() const { return base_epoch_s * epochs; }

  /// Per-node power the job draws under a node cap.
  double power_at_cap_w(double node_cap_w) const;

  /// Inverse of exec_time: the node cap that yields the given relative
  /// slowdown (relative_time = 1 + slowdown).  Clamps to the cap range.
  double cap_for_relative_time(double relative_time) const;

  /// Slowdown at the floor cap — the job's maximum slowdown.
  double max_slowdown() const { return relative_time(kNodeMinCapW) - 1.0; }
};

/// The eight NPB-derived types used across the paper's experiments.
const std::vector<JobType>& nas_job_types();

/// The six-type mix used in the final evaluations (Fig. 9-11): the paper
/// omits IS and EP because their sub-30 s runtimes hide slowdown
/// (Sec. 7.2).
const std::vector<JobType>& nas_long_job_types();

/// Look up by name; throws ConfigError if unknown.
const JobType& find_job_type(const std::string& name);
/// Look up by name; nullopt if unknown.
std::optional<JobType> try_find_job_type(const std::string& name);

/// Scale a job type to a larger cluster: multiplies `nodes` (Fig. 11 runs
/// jobs at 25x their 16-node size).
JobType scaled_job_type(const JobType& type, int node_scale);

}  // namespace anor::workload
