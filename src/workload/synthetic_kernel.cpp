#include "workload/synthetic_kernel.hpp"

#include <algorithm>
#include <cmath>

namespace anor::workload {

SyntheticKernel::SyntheticKernel(JobType type, util::Rng rng, KernelConfig config)
    : type_(std::move(type)), rng_(rng), config_(config) {
  phase_remaining_s_ = config_.setup_s;
  if (phase_remaining_s_ <= 0.0) {
    phase_ = Phase::kCompute;
    begin_next_epoch();
  } else {
    phase_ = Phase::kSetup;
  }
}

void SyntheticKernel::begin_next_epoch() {
  epoch_noise_ = config_.time_noise_sigma > 0.0
                     ? rng_.truncated_normal(1.0, config_.time_noise_sigma, 0.8, 1.2)
                     : 1.0;
  power_noise_w_ = config_.power_noise_sigma_w > 0.0
                       ? rng_.normal(0.0, config_.power_noise_sigma_w)
                       : 0.0;
  epoch_fraction_done_ = 0.0;
}

double SyntheticKernel::current_epoch_duration_s(double cap_w) const {
  return type_.epoch_time_s(cap_w) * epoch_noise_ * config_.perf_multiplier;
}

double SyntheticKernel::power_demand_w(double cap_w) const {
  if (phase_ == Phase::kDone) return 0.0;
  if (phase_ != Phase::kCompute) {
    // Setup/teardown barely exercises the CPU; this is what lets short
    // jobs donate slack power to everyone else (paper Sec. 7.2).
    return type_.min_power_w * 0.4;
  }
  const double demand = type_.power_at_cap_w(cap_w) + power_noise_w_;
  return std::clamp(demand, 0.0, cap_w);
}

void SyntheticKernel::advance(double dt_s, double cap_w) {
  double remaining_dt = dt_s;
  while (remaining_dt > 1e-12 && phase_ != Phase::kDone) {
    elapsed_s_ += 0.0;  // accounted below per-slice
    switch (phase_) {
      case Phase::kSetup:
      case Phase::kTeardown: {
        const double used = std::min(remaining_dt, phase_remaining_s_);
        phase_remaining_s_ -= used;
        remaining_dt -= used;
        elapsed_s_ += used;
        if (phase_remaining_s_ <= 1e-12) {
          if (phase_ == Phase::kSetup) {
            phase_ = Phase::kCompute;
            begin_next_epoch();
          } else {
            phase_ = Phase::kDone;
          }
        }
        break;
      }
      case Phase::kCompute: {
        const double epoch_s = current_epoch_duration_s(cap_w);
        const double epoch_left_s = (1.0 - epoch_fraction_done_) * epoch_s;
        const double used = std::min(remaining_dt, epoch_left_s);
        epoch_fraction_done_ += epoch_s > 0.0 ? used / epoch_s : 1.0;
        remaining_dt -= used;
        elapsed_s_ += used;
        compute_elapsed_s_ += used;
        if (epoch_fraction_done_ >= 1.0 - 1e-12) {
          ++epochs_done_;
          elapsed_at_last_epoch_s_ = elapsed_s_;
          if (on_epoch_) on_epoch_(epochs_done_);
          if (epochs_done_ >= type_.epochs) {
            phase_ = Phase::kTeardown;
            phase_remaining_s_ = config_.teardown_s;
            if (phase_remaining_s_ <= 0.0) phase_ = Phase::kDone;
          } else {
            begin_next_epoch();
          }
        }
        break;
      }
      case Phase::kDone:
        break;
    }
  }
}

bool SyntheticKernel::complete() const { return phase_ == Phase::kDone; }

double SyntheticKernel::progress() const {
  const double total = config_.setup_s + config_.teardown_s +
                       type_.min_exec_time_s() * config_.perf_multiplier;
  if (total <= 0.0) return complete() ? 1.0 : 0.0;
  // Progress is measured in "work units": setup/teardown plus uncapped
  // compute seconds; a capped epoch still represents the same work.
  double work_done = 0.0;
  switch (phase_) {
    case Phase::kSetup:
      work_done = config_.setup_s - phase_remaining_s_;
      break;
    case Phase::kCompute:
      work_done = config_.setup_s +
                  (static_cast<double>(epochs_done_) + epoch_fraction_done_) *
                      type_.base_epoch_s * config_.perf_multiplier;
      break;
    case Phase::kTeardown:
      work_done = total - phase_remaining_s_;
      break;
    case Phase::kDone:
      return 1.0;
  }
  return std::clamp(work_done / total, 0.0, 1.0);
}

}  // namespace anor::workload
