#include "workload/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/error.hpp"

namespace anor::workload {

util::Json Schedule::to_json() const {
  util::JsonArray arr;
  for (const JobRequest& job : jobs) {
    util::JsonObject obj;
    obj["id"] = util::Json(job.job_id);
    obj["type"] = util::Json(job.type_name);
    obj["submit_s"] = util::Json(job.submit_time_s);
    obj["nodes"] = util::Json(job.nodes);
    if (!job.classified_as.empty()) obj["classified_as"] = util::Json(job.classified_as);
    if (job.walltime_hint_s > 0.0) obj["walltime_hint_s"] = util::Json(job.walltime_hint_s);
    arr.push_back(util::Json(std::move(obj)));
  }
  util::JsonObject root;
  root["duration_s"] = util::Json(duration_s);
  root["jobs"] = util::Json(std::move(arr));
  return util::Json(std::move(root));
}

Schedule Schedule::from_json(const util::Json& json) {
  Schedule schedule;
  schedule.duration_s = json.number_or("duration_s", 0.0);
  for (const util::Json& item : json.at("jobs").as_array()) {
    JobRequest job;
    job.job_id = static_cast<int>(item.at("id").as_int());
    job.type_name = item.at("type").as_string();
    job.submit_time_s = item.at("submit_s").as_number();
    job.nodes = static_cast<int>(item.at("nodes").as_int());
    job.classified_as = item.string_or("classified_as", "");
    job.walltime_hint_s = item.number_or("walltime_hint_s", 0.0);
    schedule.jobs.push_back(std::move(job));
  }
  std::sort(schedule.jobs.begin(), schedule.jobs.end(),
            [](const JobRequest& a, const JobRequest& b) {
              return a.submit_time_s < b.submit_time_s;
            });
  return schedule;
}

void Schedule::save(const std::string& path) const { util::save_json_file(path, to_json()); }

Schedule Schedule::load(const std::string& path) {
  return from_json(util::load_json_file(path));
}

Schedule generate_poisson_schedule(const std::vector<JobType>& types,
                                   const PoissonScheduleConfig& config, util::Rng rng) {
  if (types.empty()) throw std::invalid_argument("generate_poisson_schedule: no job types");
  if (config.utilization <= 0.0 || config.duration_s <= 0.0) {
    throw std::invalid_argument("generate_poisson_schedule: bad utilization or duration");
  }
  std::vector<double> weights = config.type_weights;
  if (weights.empty()) weights.assign(types.size(), 1.0);
  if (weights.size() != types.size()) {
    throw std::invalid_argument("generate_poisson_schedule: weight count mismatch");
  }
  const double weight_total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (weight_total <= 0.0) {
    throw std::invalid_argument("generate_poisson_schedule: non-positive weights");
  }

  if (config.diurnal_amplitude < 0.0 || config.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("generate_poisson_schedule: amplitude must be in [0, 1)");
  }

  // Target node-seconds per second, split across types by weight:
  //   lambda_j * T_j * n_j = eta * N * w_j / sum(w).
  const double target = config.utilization * config.cluster_nodes;
  constexpr double kTwoPi = 6.283185307179586;
  const auto rate_factor = [&config, kTwoPi](double t) {
    if (config.diurnal_amplitude <= 0.0) return 1.0;
    return 1.0 + config.diurnal_amplitude *
                     std::sin(kTwoPi * (t / config.diurnal_period_s - 0.25));
  };

  Schedule schedule;
  schedule.duration_s = config.duration_s;
  int next_id = 0;
  for (std::size_t j = 0; j < types.size(); ++j) {
    const JobType& type = types[j];
    const double share = target * weights[j] / weight_total;
    const double node_seconds = type.min_exec_time_s() * type.nodes;
    const double lambda = share / node_seconds;
    // Thinning (Lewis-Shedler): draw at the peak rate, accept with
    // probability lambda(t)/lambda_max.
    const double lambda_max = lambda * (1.0 + config.diurnal_amplitude);
    util::Rng stream = rng.child(type.name);
    double t = stream.exponential(lambda_max);
    while (t < config.duration_s) {
      // Skip the acceptance draw entirely in the homogeneous case so that
      // existing seeded schedules stay byte-identical.
      if (config.diurnal_amplitude <= 0.0 ||
          stream.uniform(0.0, 1.0 + config.diurnal_amplitude) <= rate_factor(t)) {
        JobRequest job;
        job.job_id = next_id++;
        job.type_name = type.name;
        job.submit_time_s = t;
        job.nodes = type.nodes;
        schedule.jobs.push_back(std::move(job));
      }
      t += stream.exponential(lambda_max);
    }
  }
  std::sort(schedule.jobs.begin(), schedule.jobs.end(),
            [](const JobRequest& a, const JobRequest& b) {
              return a.submit_time_s < b.submit_time_s;
            });
  // Re-number in submission order so IDs are stable across runs.
  for (std::size_t i = 0; i < schedule.jobs.size(); ++i) {
    schedule.jobs[i].job_id = static_cast<int>(i);
  }
  return schedule;
}

void misclassify(Schedule& schedule, const std::string& true_type,
                 const std::string& classified_as) {
  for (JobRequest& job : schedule.jobs) {
    if (job.type_name == true_type) job.classified_as = classified_as;
  }
}

}  // namespace anor::workload
