// Demand-response regulation signals and power-target series.
//
// The grid sends a regulation signal y(t) in [-1, 1]; the cluster's power
// target is P_target(t) = P_avg + R * y(t) where (P_avg, R) is the bid the
// cluster placed for the hour (paper Sec. 5.6).  New targets arrive every
// few seconds (4 s in the paper's real-cluster experiment, Sec. 6.3).
#pragma once

#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/time_series.hpp"

namespace anor::workload {

/// Abstract regulation signal.
class RegulationSignal {
 public:
  virtual ~RegulationSignal() = default;
  /// y(t) in [-1, 1].
  virtual double at(double t_s) const = 0;
};

/// Bounded random walk, piecewise-constant over `step_s` intervals, with
/// reflection at +/-1 — the texture of a frequency-regulation signal.
/// Deterministic in (seed, t): the walk is precomputed over the horizon.
class RandomWalkRegulation final : public RegulationSignal {
 public:
  RandomWalkRegulation(util::Rng rng, double horizon_s, double step_s = 4.0,
                       double volatility = 0.18);
  double at(double t_s) const override;

  double step_s() const { return step_s_; }

 private:
  double step_s_;
  std::vector<double> samples_;
};

/// Sum of two sinusoids; useful for tests that need a closed-form signal.
class SinusoidRegulation final : public RegulationSignal {
 public:
  SinusoidRegulation(double period1_s, double period2_s = 0.0, double weight2 = 0.0);
  double at(double t_s) const override;

 private:
  double period1_s_;
  double period2_s_;
  double weight2_;
};

/// A demand-response bid: mean power and symmetric reserve, in watts.
struct DemandResponseBid {
  double average_power_w = 0.0;
  double reserve_w = 0.0;

  double target_at(const RegulationSignal& signal, double t_s) const {
    return average_power_w + reserve_w * signal.at(t_s);
  }
};

/// Materialize the target series P_avg + R*y(t) on a uniform grid
/// (one sample per `update_period_s`, zero-order hold in between).
util::TimeSeries make_power_target_series(const DemandResponseBid& bid,
                                          const RegulationSignal& signal, double horizon_s,
                                          double update_period_s = 4.0);

}  // namespace anor::workload
