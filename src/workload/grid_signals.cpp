#include "workload/grid_signals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace anor::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586;
constexpr double kSecondsPerDay = 86400.0;
}  // namespace

CarbonIntensityProfile::CarbonIntensityProfile(util::Rng rng, double horizon_s, Config config)
    : config_(config), horizon_s_(horizon_s) {
  if (horizon_s <= 0.0) throw std::invalid_argument("CarbonIntensityProfile: bad horizon");
  const auto samples =
      static_cast<std::size_t>(std::ceil(horizon_s / config.noise_step_s)) + 1;
  noise_.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    noise_.push_back(rng.normal(0.0, config.noise_g_per_kwh));
  }
}

double CarbonIntensityProfile::at(double t_s) const {
  const double day_fraction = std::fmod(std::max(t_s, 0.0), kSecondsPerDay) / kSecondsPerDay;
  // Double-hump: a main diurnal cycle plus a second harmonic gives the
  // morning/evening peaks of a thermal-heavy grid.
  const double diurnal = 0.6 * std::sin(kTwoPi * (day_fraction - 0.25)) +
                         0.4 * std::sin(2.0 * kTwoPi * (day_fraction - 0.10));
  const auto noise_idx = std::min(
      static_cast<std::size_t>(std::max(t_s, 0.0) / config_.noise_step_s), noise_.size() - 1);
  const double intensity =
      config_.base_g_per_kwh + config_.swing_g_per_kwh * diurnal + noise_[noise_idx];
  return std::max(intensity, 0.0);
}

util::TimeSeries targets_from_carbon(const CarbonIntensityProfile& profile, double p_low_w,
                                     double p_high_w, double horizon_s, double period_s) {
  if (p_high_w < p_low_w) throw std::invalid_argument("targets_from_carbon: p_high < p_low");
  if (period_s <= 0.0) throw std::invalid_argument("targets_from_carbon: bad period");
  // Normalize against the intensity range actually seen over the horizon.
  double lo = profile.at(0.0);
  double hi = lo;
  for (double t = 0.0; t <= horizon_s; t += period_s) {
    lo = std::min(lo, profile.at(t));
    hi = std::max(hi, profile.at(t));
  }
  util::TimeSeries targets;
  for (double t = 0.0; t <= horizon_s + 1e-9; t += period_s) {
    const double frac = hi > lo ? (profile.at(t) - lo) / (hi - lo) : 0.0;
    targets.add(t, p_high_w - frac * (p_high_w - p_low_w));
  }
  return targets;
}

double carbon_emitted_g(const util::TimeSeries& power_w,
                        const CarbonIntensityProfile& profile) {
  double grams = 0.0;
  for (std::size_t i = 0; i + 1 < power_w.size(); ++i) {
    const double dt = power_w.times()[i + 1] - power_w.times()[i];
    const double kwh = util::kilowatts_from_watts(power_w.values()[i]) *
                       util::hours_from_seconds(dt);
    grams += kwh * profile.at(power_w.times()[i]);
  }
  return grams;
}

TouTariff::TouTariff(double off_peak_price_per_kwh, std::vector<Window> windows)
    : off_peak_(off_peak_price_per_kwh), windows_(std::move(windows)) {
  for (const Window& window : windows_) {
    if (window.end_hour <= window.start_hour || window.start_hour < 0.0 ||
        window.end_hour > 24.0) {
      throw std::invalid_argument("TouTariff: bad window");
    }
  }
}

double TouTariff::price_at(double t_s) const {
  const double hour = std::fmod(std::max(t_s, 0.0), kSecondsPerDay) / 3600.0;
  for (const Window& window : windows_) {
    if (hour >= window.start_hour && hour < window.end_hour) return window.price_per_kwh;
  }
  return off_peak_;
}

double TouTariff::cost_of(const util::TimeSeries& power_w) const {
  double dollars = 0.0;
  for (std::size_t i = 0; i + 1 < power_w.size(); ++i) {
    const double dt = power_w.times()[i + 1] - power_w.times()[i];
    const double kwh = util::kilowatts_from_watts(power_w.values()[i]) *
                       util::hours_from_seconds(dt);
    dollars += kwh * price_at(power_w.times()[i]);
  }
  return dollars;
}

TouTariff TouTariff::standard() {
  return TouTariff(0.08, {{7.0, 11.0, 0.14}, {17.0, 21.0, 0.24}});
}

util::TimeSeries targets_from_tariff(const TouTariff& tariff, double p_low_w, double p_high_w,
                                     double horizon_s, double period_s) {
  if (p_high_w < p_low_w) throw std::invalid_argument("targets_from_tariff: p_high < p_low");
  if (period_s <= 0.0) throw std::invalid_argument("targets_from_tariff: bad period");
  double lo = tariff.price_at(0.0);
  double hi = lo;
  for (double t = 0.0; t <= horizon_s; t += period_s) {
    lo = std::min(lo, tariff.price_at(t));
    hi = std::max(hi, tariff.price_at(t));
  }
  util::TimeSeries targets;
  for (double t = 0.0; t <= horizon_s + 1e-9; t += period_s) {
    const double frac = hi > lo ? (tariff.price_at(t) - lo) / (hi - lo) : 0.0;
    targets.add(t, p_high_w - frac * (p_high_w - p_low_w));
  }
  return targets;
}

}  // namespace anor::workload
