#include "workload/job_type.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace anor::workload {

double JobType::relative_time(double node_cap_w) const {
  // A cap at or above the job's own maximum draw does not slow it; the
  // curve spans [floor cap, max draw] so r(max_power) = 1 and
  // r(140) = 1 + k1 + k2 (the calibrated Fig. 3 floor slowdown).
  const double hi = std::max(max_power_w, kNodeMinCapW + 1.0);
  const double cap = std::clamp(node_cap_w, kNodeMinCapW, hi);
  const double x = (hi - cap) / (hi - kNodeMinCapW);
  return 1.0 + k1 * x + k2 * x * x;
}

double JobType::epoch_time_s(double node_cap_w) const {
  return base_epoch_s * relative_time(node_cap_w);
}

double JobType::exec_time_s(double node_cap_w) const {
  return epoch_time_s(node_cap_w) * epochs;
}

double JobType::power_at_cap_w(double node_cap_w) const {
  const double cap = std::clamp(node_cap_w, kNodeMinCapW, kNodeMaxCapW);
  if (cap >= max_power_w) return max_power_w;
  // Below the job's uncapped draw, consumption tracks the cap linearly
  // from the floor draw (at the floor cap) up to the uncapped draw.
  const double frac = (cap - kNodeMinCapW) / (max_power_w - kNodeMinCapW);
  return min_power_w + frac * (max_power_w - min_power_w);
}

double JobType::cap_for_relative_time(double target_relative) const {
  if (target_relative <= 1.0) return kNodeMaxCapW;
  const double max_rel = relative_time(kNodeMinCapW);
  if (target_relative >= max_rel) return kNodeMinCapW;
  // Solve 1 + k1*x + k2*x^2 = target for x in [0, 1].
  const double c = 1.0 - target_relative;
  double x;
  if (std::abs(k2) < 1e-12) {
    x = -c / k1;
  } else {
    const double disc = k1 * k1 - 4.0 * k2 * c;
    x = (-k1 + std::sqrt(std::max(disc, 0.0))) / (2.0 * k2);
  }
  x = std::clamp(x, 0.0, 1.0);
  const double hi = std::max(max_power_w, kNodeMinCapW + 1.0);
  return hi - x * (hi - kNodeMinCapW);
}

const std::vector<JobType>& nas_job_types() {
  // name, k1, k2, base_epoch_s, epochs, nodes, max_power_w, min_power_w.
  // Epoch counts x base epoch time give the uncapped durations in
  // DESIGN.md Sec. 5 (EP and IS intentionally < 30 s, paper Sec. 7.2).
  // Max draws sit near TDP — NPB class D keeps dual-socket Xeons busy —
  // with memory-/IO-leaning types (IS, SP, MG) a notch lower.
  static const std::vector<JobType> types = {
      {"bt.D.x", 0.50, 0.20, 0.90, 200, 2, 278.0, 140.0},
      {"cg.D.x", 0.30, 0.10, 1.20, 100, 1, 270.0, 140.0},
      {"ep.D.x", 0.55, 0.25, 0.25, 100, 1, 279.0, 140.0},
      {"ft.D.x", 0.38, 0.12, 0.90, 100, 2, 274.0, 140.0},
      {"is.D.x", 0.09, 0.03, 0.18, 100, 1, 252.0, 138.0},
      {"lu.D.x", 0.45, 0.15, 0.75, 200, 2, 277.0, 140.0},
      {"mg.D.x", 0.22, 0.08, 0.60, 100, 1, 266.0, 140.0},
      {"sp.D.x", 0.14, 0.06, 1.00, 200, 2, 262.0, 139.0},
  };
  return types;
}

const std::vector<JobType>& nas_long_job_types() {
  static const std::vector<JobType> types = [] {
    std::vector<JobType> longer;
    for (const JobType& t : nas_job_types()) {
      if (t.name != "is.D.x" && t.name != "ep.D.x") longer.push_back(t);
    }
    return longer;
  }();
  return types;
}

const JobType& find_job_type(const std::string& name) {
  for (const JobType& t : nas_job_types()) {
    if (t.name == name) return t;
  }
  throw util::ConfigError("unknown job type: " + name);
}

std::optional<JobType> try_find_job_type(const std::string& name) {
  for (const JobType& t : nas_job_types()) {
    if (t.name == name) return t;
  }
  return std::nullopt;
}

JobType scaled_job_type(const JobType& type, int node_scale) {
  JobType scaled = type;
  scaled.nodes = type.nodes * node_scale;
  return scaled;
}

}  // namespace anor::workload
