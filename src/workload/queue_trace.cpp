#include "workload/queue_trace.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace anor::workload {

std::vector<QueueTraceEntry> generate_queue_trace(const QueueTraceConfig& config,
                                                  util::Rng rng) {
  std::vector<QueueTraceEntry> trace;
  trace.reserve(config.job_count);
  util::Rng exec_rng = rng.child("exec");
  util::Rng wait_rng = rng.child("wait");
  for (std::size_t i = 0; i < config.job_count; ++i) {
    QueueTraceEntry entry;
    entry.exec_time_s = std::exp(exec_rng.normal(config.exec_log_mean, config.exec_log_sigma));
    entry.wait_time_s = std::exp(wait_rng.normal(config.wait_log_mean, config.wait_log_sigma));
    trace.push_back(entry);
  }
  return trace;
}

double p90_wait_exec_ratio(const std::vector<QueueTraceEntry>& trace) {
  std::vector<double> ratios;
  ratios.reserve(trace.size());
  for (const QueueTraceEntry& e : trace) ratios.push_back(e.wait_exec_ratio());
  return util::percentile(std::move(ratios), 90.0);
}

}  // namespace anor::workload
