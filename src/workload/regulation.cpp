#include "workload/regulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anor::workload {

RandomWalkRegulation::RandomWalkRegulation(util::Rng rng, double horizon_s, double step_s,
                                           double volatility)
    : step_s_(step_s) {
  if (step_s <= 0.0 || horizon_s <= 0.0) {
    throw std::invalid_argument("RandomWalkRegulation: bad step or horizon");
  }
  const auto count = static_cast<std::size_t>(std::ceil(horizon_s / step_s)) + 1;
  samples_.reserve(count);
  double y = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    samples_.push_back(y);
    y += rng.normal(0.0, volatility);
    // Reflect at the [-1, 1] boundary so the signal keeps its variance.
    if (y > 1.0) y = 2.0 - y;
    if (y < -1.0) y = -2.0 - y;
    y = std::clamp(y, -1.0, 1.0);
  }
}

double RandomWalkRegulation::at(double t_s) const {
  if (t_s <= 0.0) return samples_.front();
  const auto idx = static_cast<std::size_t>(t_s / step_s_);
  return samples_[std::min(idx, samples_.size() - 1)];
}

SinusoidRegulation::SinusoidRegulation(double period1_s, double period2_s, double weight2)
    : period1_s_(period1_s), period2_s_(period2_s), weight2_(weight2) {
  if (period1_s <= 0.0) throw std::invalid_argument("SinusoidRegulation: bad period");
}

double SinusoidRegulation::at(double t_s) const {
  constexpr double kTwoPi = 6.283185307179586;
  double y = (1.0 - weight2_) * std::sin(kTwoPi * t_s / period1_s_);
  if (period2_s_ > 0.0 && weight2_ > 0.0) {
    y += weight2_ * std::sin(kTwoPi * t_s / period2_s_);
  }
  return std::clamp(y, -1.0, 1.0);
}

util::TimeSeries make_power_target_series(const DemandResponseBid& bid,
                                          const RegulationSignal& signal, double horizon_s,
                                          double update_period_s) {
  if (update_period_s <= 0.0) {
    throw std::invalid_argument("make_power_target_series: bad update period");
  }
  util::TimeSeries series;
  for (double t = 0.0; t <= horizon_s + 1e-9; t += update_period_s) {
    series.add(t, bid.target_at(signal, t));
  }
  return series;
}

}  // namespace anor::workload
