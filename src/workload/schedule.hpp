// Job-submission schedules.
//
// The cluster-tier manager reads its job schedule from a file for
// experimental repeatability (paper Sec. 4.1).  Schedules are generated as
// Poisson processes whose per-type arrival rates hit a target node
// utilization eta:  sum_j lambda_j * T_j * n_j = eta * N   (paper Sec. 5.3,
// extended with the per-instance node count n_j so utilization is measured
// in node-seconds).
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/job_type.hpp"

namespace anor::workload {

struct JobRequest {
  int job_id = 0;
  std::string type_name;
  double submit_time_s = 0.0;
  /// Node count for this instance; 0 (the default) means "use the job
  /// type's default node count".
  int nodes = 0;
  /// What the cluster tier *believes* the job's type is.  Differs from
  /// type_name in misclassification experiments (e.g. BT submitted but
  /// classified as IS).  Empty means "classified correctly".
  std::string classified_as;
  /// User-provided walltime hint, seconds (the paper's "minimum execution
  /// time which may be provided at launch time, similar to setting a
  /// job's time limit", Sec. 4.4.2).  0 = none; backfill then falls back
  /// to the type estimate.
  double walltime_hint_s = 0.0;

  const std::string& effective_class() const {
    return classified_as.empty() ? type_name : classified_as;
  }
};

struct Schedule {
  std::vector<JobRequest> jobs;  // sorted by submit_time_s
  double duration_s = 0.0;       // generation horizon

  util::Json to_json() const;
  static Schedule from_json(const util::Json& json);
  void save(const std::string& path) const;
  static Schedule load(const std::string& path);
};

struct PoissonScheduleConfig {
  double duration_s = 3600.0;
  double utilization = 0.95;   // eta
  int cluster_nodes = 16;      // N
  /// Relative submission weights per type (defaults to uniform).
  std::vector<double> type_weights;

  /// Diurnal load modulation: arrival rates follow
  ///   lambda(t) = lambda_mean * (1 + A*sin(2*pi*(t/period - 0.25)))
  /// (peak mid-period, trough at the start), implemented by thinning an
  /// inhomogeneous Poisson process.  0 disables; A must be < 1.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 86400.0;
};

/// Generate a schedule over the given job types.  Rates are chosen so the
/// expected node-seconds demanded per second equals eta*N, split across
/// types by weight.
Schedule generate_poisson_schedule(const std::vector<JobType>& types,
                                   const PoissonScheduleConfig& config, util::Rng rng);

/// Mark every instance whose true type is `true_type` as classified as
/// `classified_as` (misclassification experiments, Fig. 10).
void misclassify(Schedule& schedule, const std::string& true_type,
                 const std::string& classified_as);

}  // namespace anor::workload
