// Multi-phase synthetic kernel (paper Sec. 8 future work: "some jobs may
// consist of multiple power-sensitivity profiles through the job's
// lifecycle").
//
// A PhasedKernel chains several power-sensitivity profiles; the epoch
// counter runs continuously across phases (the application's main loop
// does not restart, its per-iteration behavior changes).  When such a job
// crosses a phase boundary, the job tier's observed seconds-per-epoch
// shift away from whatever model it was serving — the feedback loop in
// cluster/JobEndpointProcess re-detects the divergence and re-publishes,
// which tests/workload/phased_kernel_test.cpp and the end-to-end suite
// exercise.
#pragma once

#include <memory>
#include <vector>

#include "workload/synthetic_kernel.hpp"

namespace anor::workload {

/// One phase: the profile's curve/power fields describe the phase; its
/// `epochs` field is how many main-loop iterations the phase lasts.
struct JobPhase {
  JobType profile;
};

class PhasedKernel final : public JobKernel {
 public:
  /// Setup runs before the first phase, teardown after the last; the
  /// config's noise settings apply to every phase.
  PhasedKernel(std::vector<JobPhase> phases, util::Rng rng, KernelConfig config = {});

  // platform::ComputeLoad
  double power_demand_w(double cap_w) const override;
  void advance(double dt_s, double cap_w) override;
  bool complete() const override;
  double progress() const override;

  // JobKernel
  long epoch_count() const override;
  double time_since_last_epoch_s() const override;
  double elapsed_s() const override;
  double compute_elapsed_s() const override;

  std::size_t phase_count() const { return kernels_.size(); }
  /// Index of the phase currently executing (== phase_count() when done).
  std::size_t current_phase() const;
  /// Total epochs across all phases.
  long total_epochs() const { return total_epochs_; }

 private:
  std::vector<std::unique_ptr<SyntheticKernel>> kernels_;
  std::vector<double> phase_weight_;  // uncapped seconds per phase
  long total_epochs_ = 0;
};

/// Convenience: a two-phase job that behaves like `first` for its first
/// half and like `second` for its second half (each phase keeps its own
/// epoch structure).
std::vector<JobPhase> two_phase(const JobType& first, const JobType& second);

}  // namespace anor::workload
