// Synthetic job-queue trace with realistic wait/execution-time ratios.
//
// The paper justifies its QoS constraint (Q = 5 with 90 % probability) by
// noting that in a month of real queue data [17] the 90th percentile of
// wait/exec exceeds 22.  We cannot ship that proprietary trace, so this
// generator produces a heavy-tailed synthetic queue whose wait/exec ratio
// distribution has the same property; bench/qos_trace_analysis verifies it.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace anor::workload {

struct QueueTraceEntry {
  double exec_time_s = 0.0;
  double wait_time_s = 0.0;

  double wait_exec_ratio() const {
    return exec_time_s > 0.0 ? wait_time_s / exec_time_s : 0.0;
  }
};

struct QueueTraceConfig {
  std::size_t job_count = 20000;
  /// Log-normal execution time parameters (seconds).
  double exec_log_mean = 5.5;   // median ~245 s
  double exec_log_sigma = 1.6;
  /// Log-normal wait time parameters (seconds).
  double wait_log_mean = 7.2;   // median ~1340 s
  double wait_log_sigma = 2.2;
};

std::vector<QueueTraceEntry> generate_queue_trace(const QueueTraceConfig& config,
                                                  util::Rng rng);

/// 90th percentile of wait/exec over a trace.
double p90_wait_exec_ratio(const std::vector<QueueTraceEntry>& trace);

}  // namespace anor::workload
