#include "workload/phased_kernel.hpp"

#include <numeric>
#include <stdexcept>

namespace anor::workload {

PhasedKernel::PhasedKernel(std::vector<JobPhase> phases, util::Rng rng,
                           KernelConfig config) {
  if (phases.empty()) throw std::invalid_argument("PhasedKernel: no phases");
  kernels_.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    KernelConfig phase_config = config;
    // Setup only before the first phase, teardown only after the last.
    if (i != 0) phase_config.setup_s = 0.0;
    if (i + 1 != phases.size()) phase_config.teardown_s = 0.0;
    kernels_.push_back(std::make_unique<SyntheticKernel>(
        phases[i].profile, rng.child(static_cast<std::uint64_t>(i)), phase_config));
    phase_weight_.push_back(phases[i].profile.min_exec_time_s());
    total_epochs_ += phases[i].profile.epochs;
  }
}

std::size_t PhasedKernel::current_phase() const {
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    if (!kernels_[i]->complete()) return i;
  }
  return kernels_.size();
}

double PhasedKernel::power_demand_w(double cap_w) const {
  const std::size_t phase = current_phase();
  if (phase >= kernels_.size()) return 0.0;
  return kernels_[phase]->power_demand_w(cap_w);
}

void PhasedKernel::advance(double dt_s, double cap_w) {
  // A step can cross a phase boundary: hand leftover time to the next
  // phase so no node-time is lost.  SyntheticKernel::advance consumes the
  // full dt when incomplete, so track elapsed before/after.
  double remaining = dt_s;
  while (remaining > 1e-12) {
    const std::size_t phase = current_phase();
    if (phase >= kernels_.size()) return;
    SyntheticKernel& kernel = *kernels_[phase];
    const double before = kernel.elapsed_s();
    kernel.advance(remaining, cap_w);
    const double used = kernel.elapsed_s() - before;
    remaining -= used;
    if (used <= 1e-12 && !kernel.complete()) return;  // defensive
  }
}

bool PhasedKernel::complete() const { return current_phase() >= kernels_.size(); }

double PhasedKernel::progress() const {
  const double total = std::accumulate(phase_weight_.begin(), phase_weight_.end(), 0.0);
  if (total <= 0.0) return complete() ? 1.0 : 0.0;
  double done = 0.0;
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    done += kernels_[i]->progress() * phase_weight_[i];
  }
  return done / total;
}

double PhasedKernel::time_since_last_epoch_s() const {
  // Walk back from the active phase: the current phase's value, plus the
  // full elapsed time of any later phases that have not produced an epoch
  // yet (e.g. right after a phase boundary).
  double since = 0.0;
  for (std::size_t i = kernels_.size(); i-- > 0;) {
    const SyntheticKernel& kernel = *kernels_[i];
    if (kernel.epoch_count() > 0) {
      return since + kernel.time_since_last_epoch_s();
    }
    since += kernel.elapsed_s();
  }
  return since;
}

long PhasedKernel::epoch_count() const {
  long epochs = 0;
  for (const auto& kernel : kernels_) epochs += kernel->epoch_count();
  return epochs;
}

double PhasedKernel::elapsed_s() const {
  double elapsed = 0.0;
  for (const auto& kernel : kernels_) elapsed += kernel->elapsed_s();
  return elapsed;
}

double PhasedKernel::compute_elapsed_s() const {
  double elapsed = 0.0;
  for (const auto& kernel : kernels_) elapsed += kernel->compute_elapsed_s();
  return elapsed;
}

std::vector<JobPhase> two_phase(const JobType& first, const JobType& second) {
  JobPhase a{first};
  a.profile.epochs = first.epochs / 2;
  JobPhase b{second};
  b.profile.epochs = second.epochs - second.epochs / 2;
  return {a, b};
}

}  // namespace anor::workload
