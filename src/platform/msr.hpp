// Model-specific register (MSR) emulation with RAPL semantics.
//
// The paper's GEOPM deployment reads PKG_ENERGY_STATUS and writes
// PKG_POWER_LIMIT through the msr-safe kernel module (Sec. 5.4).  We
// reproduce that interface: a per-package register file with an
// allowlist-gated accessor, RAPL fixed-point unit encoding, and a 32-bit
// wrapping energy counter.  The GEOPM-like runtime in src/geopm talks to
// hardware exclusively through this layer, so the same read/decode/
// accumulate logic a real deployment needs is exercised here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "util/error.hpp"

namespace anor::platform {

/// Architectural MSR addresses (Intel SDM names).
enum MsrAddress : std::uint32_t {
  kMsrRaplPowerUnit = 0x606,   // unit definitions for power/energy/time
  kMsrPkgPowerLimit = 0x610,   // package RAPL limit (PL1 fields modeled)
  kMsrPkgEnergyStatus = 0x611, // 32-bit wrapping energy counter
  kMsrPkgPowerInfo = 0x614,    // TDP / min / max power
};

/// Fixed-point RAPL units as encoded in MSR_RAPL_POWER_UNIT.
/// power unit = 1/2^pu W, energy unit = 1/2^esu J, time unit = 1/2^tu s.
struct RaplUnits {
  unsigned power_unit_bits = 3;    // 1/8 W
  unsigned energy_unit_bits = 14;  // ~61 uJ
  unsigned time_unit_bits = 10;    // ~977 us

  double power_unit_w() const { return 1.0 / static_cast<double>(1u << power_unit_bits); }
  double energy_unit_j() const { return 1.0 / static_cast<double>(1u << energy_unit_bits); }
  double time_unit_s() const { return 1.0 / static_cast<double>(1u << time_unit_bits); }

  std::uint64_t encode() const;
  static RaplUnits decode(std::uint64_t raw);
};

/// Encode/decode helpers for the PL1 fields of PKG_POWER_LIMIT.
struct PkgPowerLimit {
  double power_limit_w = 0.0;
  double time_window_s = 1.0;
  bool enabled = true;
  bool clamp = true;

  std::uint64_t encode(const RaplUnits& units) const;
  static PkgPowerLimit decode(std::uint64_t raw, const RaplUnits& units);
};

/// Encode/decode for PKG_POWER_INFO (TDP and the allowed cap range).
struct PkgPowerInfo {
  double tdp_w = 140.0;
  double min_power_w = 70.0;
  double max_power_w = 140.0;

  std::uint64_t encode(const RaplUnits& units) const;
  static PkgPowerInfo decode(std::uint64_t raw, const RaplUnits& units);
};

/// Per-package register file gated by an msr-safe-style allowlist.
///
/// Reads/writes of unlisted registers throw MsrAccessError, as msr-safe
/// would reject them.  The hardware model (CpuPackage) bypasses the
/// allowlist via raw_* accessors, exactly as silicon updates registers
/// regardless of the kernel's access policy.
class MsrFile {
 public:
  /// Constructs with the default allowlist (the four RAPL registers above;
  /// PKG_POWER_LIMIT is the only writable one, matching the paper's use).
  MsrFile();

  /// Gated accessors used by system software.
  std::uint64_t read(std::uint32_t address) const;
  void write(std::uint32_t address, std::uint64_t value);

  /// Ungated accessors used by the hardware model itself.
  std::uint64_t raw_read(std::uint32_t address) const;
  void raw_write(std::uint32_t address, std::uint64_t value);

  /// Allowlist management (tests exercise denial paths).
  void allow_read(std::uint32_t address) { readable_.insert(address); }
  void allow_write(std::uint32_t address) { writable_.insert(address); }
  void deny_all();
  bool read_allowed(std::uint32_t address) const { return readable_.count(address) != 0; }
  bool write_allowed(std::uint32_t address) const { return writable_.count(address) != 0; }

  /// Transient-fault hook, consulted on every *gated* access (raw_* is
  /// the silicon and never faults).  Returning true makes the access
  /// throw MsrAccessError — the EIO an msr-safe read can return under
  /// contention.  Fault injection installs this; nullptr disables.
  using FaultHook = std::function<bool(std::uint32_t address, bool is_write)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  std::map<std::uint32_t, std::uint64_t> registers_;
  std::set<std::uint32_t> readable_;
  std::set<std::uint32_t> writable_;
  FaultHook fault_hook_;
};

}  // namespace anor::platform
