#include "platform/cluster_hw.hpp"

#include <algorithm>

namespace anor::platform {

namespace {
// Two-sided 99 % quantile of the standard normal distribution.
constexpr double kZ99 = 2.5758293035489004;
}  // namespace

double sigma_from_band99(double band_half_width) {
  return band_half_width <= 0.0 ? 0.0 : band_half_width / kZ99;
}

ClusterHw::ClusterHw(const ClusterHwConfig& config, util::Rng rng) : config_(config) {
  nodes_.reserve(static_cast<std::size_t>(config.node_count));
  for (int i = 0; i < config.node_count; ++i) {
    NodeConfig node_config = config.node;
    if (config.perf_variation_sigma > 0.0) {
      node_config.perf_multiplier =
          rng.truncated_normal(1.0, config.perf_variation_sigma, 0.5, 1.5);
    }
    nodes_.push_back(std::make_unique<Node>(i, node_config));
  }
  if (config.step_workers > 1) {
    workers_ =
        std::make_unique<util::ShardWorkers>(static_cast<std::size_t>(config.step_workers));
  }
}

double ClusterHw::total_power_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->power_w();
  return total;
}

double ClusterHw::total_energy_j() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->total_energy_j();
  return total;
}

double ClusterHw::min_cap_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->min_cap_w();
  return total;
}

double ClusterHw::max_cap_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->max_cap_w();
  return total;
}

void ClusterHw::step(double dt_s) {
  if (workers_ == nullptr) {
    for (auto& n : nodes_) n->step(dt_s);
    return;
  }
  // Fixed shards derived from node count alone: which worker executes a
  // shard never affects what the shard computes, so any worker count
  // reproduces the serial sweep.  Each node's state is touched by exactly
  // one shard.  The persistent team makes the per-tick dispatch one
  // epoch bump instead of a queue lock + wake + join.
  constexpr std::size_t kShardNodes = 64;
  const std::size_t count = nodes_.size();
  const std::size_t shards = (count + kShardNodes - 1) / kShardNodes;
  const std::size_t lanes = workers_->worker_count();
  workers_->run([&](std::size_t lane) {
    const util::ShardWorkers::Slice s = util::ShardWorkers::slice(shards, lanes, lane);
    const std::size_t begin = s.begin * kShardNodes;
    const std::size_t end = std::min(count, s.end * kShardNodes);
    for (std::size_t i = begin; i < end; ++i) nodes_[i]->step(dt_s);
  });
}

std::vector<int> ClusterHw::idle_nodes() const {
  std::vector<int> idle;
  for (const auto& n : nodes_) {
    if (!n->busy()) idle.push_back(n->id());
  }
  return idle;
}

}  // namespace anor::platform
