#include "platform/cluster_hw.hpp"

namespace anor::platform {

namespace {
// Two-sided 99 % quantile of the standard normal distribution.
constexpr double kZ99 = 2.5758293035489004;
}  // namespace

double sigma_from_band99(double band_half_width) {
  return band_half_width <= 0.0 ? 0.0 : band_half_width / kZ99;
}

ClusterHw::ClusterHw(const ClusterHwConfig& config, util::Rng rng) : config_(config) {
  nodes_.reserve(static_cast<std::size_t>(config.node_count));
  for (int i = 0; i < config.node_count; ++i) {
    NodeConfig node_config = config.node;
    if (config.perf_variation_sigma > 0.0) {
      node_config.perf_multiplier =
          rng.truncated_normal(1.0, config.perf_variation_sigma, 0.5, 1.5);
    }
    nodes_.push_back(std::make_unique<Node>(i, node_config));
  }
}

double ClusterHw::total_power_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->power_w();
  return total;
}

double ClusterHw::total_energy_j() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->total_energy_j();
  return total;
}

double ClusterHw::min_cap_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->min_cap_w();
  return total;
}

double ClusterHw::max_cap_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->max_cap_w();
  return total;
}

void ClusterHw::step(double dt_s) {
  for (auto& n : nodes_) n->step(dt_s);
}

std::vector<int> ClusterHw::idle_nodes() const {
  std::vector<int> idle;
  for (const auto& n : nodes_) {
    if (!n->busy()) idle.push_back(n->id());
  }
  return idle;
}

}  // namespace anor::platform
