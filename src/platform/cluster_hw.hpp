// The emulated cluster's hardware: a set of nodes with per-node
// performance-variation multipliers and aggregate power measurement.
#pragma once

#include <memory>
#include <vector>

#include "platform/node.hpp"
#include "util/rng.hpp"
#include "util/shard_workers.hpp"

namespace anor::platform {

struct ClusterHwConfig {
  int node_count = 16;
  NodeConfig node;
  /// Standard deviation of the per-node performance multiplier (mean 1.0).
  /// 0 disables variation.  The paper's Fig. 11 sweeps this: "99 % of
  /// performance within ±x%" corresponds to sigma = x / 2.576.
  double perf_variation_sigma = 0.0;
  /// Shard step() across this many pool workers (<= 1 keeps the default
  /// serial sweep).  Opt-in: nodes step independently, but MSR fault
  /// hooks installed on nodes are user closures that the cluster cannot
  /// prove thread-safe, so callers enable sharding only when their hooks
  /// (if any) tolerate concurrent invocation.  Shard boundaries depend
  /// only on node count, so results match the serial sweep at any worker
  /// count.
  int step_workers = 0;
};

class ClusterHw {
 public:
  /// Builds node_count nodes; if perf_variation_sigma > 0, draws each
  /// node's multiplier from N(1, sigma) truncated to [0.5, 1.5] using the
  /// provided rng.
  ClusterHw(const ClusterHwConfig& config, util::Rng rng);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(int index) { return *nodes_.at(static_cast<std::size_t>(index)); }
  const Node& node(int index) const { return *nodes_.at(static_cast<std::size_t>(index)); }

  const ClusterHwConfig& config() const { return config_; }

  /// Total instantaneous CPU power across all nodes, watts.
  double total_power_w() const;

  /// Total lifetime CPU energy, joules.
  double total_energy_j() const;

  /// Sum of node cap ranges.
  double min_cap_w() const;
  double max_cap_w() const;

  /// Advance every node by dt_s.  Serial by default; sharded across a
  /// persistent worker team when config.step_workers > 1 (per-node state
  /// is independent, so sharding cannot change any node's trajectory).
  void step(double dt_s);

  /// Node indices currently without a load attached.
  std::vector<int> idle_nodes() const;

 private:
  ClusterHwConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<util::ShardWorkers> workers_;  // only when step_workers > 1
};

/// Convert a "99 % of performance within ±x" band half-width (fraction,
/// e.g. 0.15 for ±15 %) to the normal sigma that produces it.
double sigma_from_band99(double band_half_width);

}  // namespace anor::platform
