// Compute-node model: two CPU packages plus an attached compute load.
//
// The node is the unit the cluster tier budgets power to.  A node-level cap
// is split evenly across its packages (GEOPM's power_governor does the
// same); the node's measured CPU power is the sum of package powers read
// back through the energy counters.  Each node carries a performance
// multiplier to model node-to-node variation (paper Sec. 5.6/6.4).
#pragma once

#include <memory>
#include <vector>

#include "platform/compute_load.hpp"
#include "platform/package.hpp"

namespace anor::platform {

struct NodeConfig {
  PackageConfig package;
  int package_count = 2;
  /// Performance multiplier applied to this node's progress rate; 1.0 is
  /// nominal, > 1 means the node is slower (multiplies epoch time).
  double perf_multiplier = 1.0;
};

class Node {
 public:
  explicit Node(int node_id, const NodeConfig& config = {});

  int id() const { return id_; }
  const NodeConfig& config() const { return config_; }
  int package_count() const { return static_cast<int>(packages_.size()); }

  CpuPackage& package(int index) { return *packages_.at(static_cast<std::size_t>(index)); }
  const CpuPackage& package(int index) const {
    return *packages_.at(static_cast<std::size_t>(index));
  }

  /// Node-level cap limits (sum over packages).
  double min_cap_w() const;
  double max_cap_w() const;
  double tdp_w() const;

  /// Program a node-level power cap: split evenly across packages and
  /// written through the (allowlisted) PKG_POWER_LIMIT register.
  void set_power_cap(double node_cap_w);

  /// Sum of programmed package caps after hardware clamping.
  double effective_cap_w() const;

  /// Sum of instantaneous package power.
  double power_w() const;

  /// Lifetime CPU energy, joules.
  double total_energy_j() const;

  /// Attach/detach the load executing on this node (one job share).
  void attach_load(std::shared_ptr<ComputeLoad> load) { load_ = std::move(load); }
  void detach_load() { load_.reset(); }
  bool busy() const { return load_ != nullptr; }
  const std::shared_ptr<ComputeLoad>& load() const { return load_; }

  double perf_multiplier() const { return config_.perf_multiplier; }
  void set_perf_multiplier(double m) { config_.perf_multiplier = m; }

  /// Advance the node by dt_s: the load progresses under the effective cap
  /// (scaled by the node's performance multiplier) and the packages settle
  /// and integrate energy.
  void step(double dt_s);

 private:
  int id_;
  NodeConfig config_;
  std::vector<std::unique_ptr<CpuPackage>> packages_;
  std::shared_ptr<ComputeLoad> load_;
};

}  // namespace anor::platform
