#include "platform/msr.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.hpp"

namespace anor::platform {

namespace {

std::uint64_t encode_fixed(double value, double unit, std::uint64_t max_field) {
  if (value < 0.0) value = 0.0;
  const auto raw = static_cast<std::uint64_t>(std::llround(value / unit));
  return std::min(raw, max_field);
}

std::string hex_of(std::uint32_t address) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", address);
  return buf;
}

}  // namespace

std::uint64_t RaplUnits::encode() const {
  return (static_cast<std::uint64_t>(power_unit_bits) & 0xF) |
         ((static_cast<std::uint64_t>(energy_unit_bits) & 0x1F) << 8) |
         ((static_cast<std::uint64_t>(time_unit_bits) & 0xF) << 16);
}

RaplUnits RaplUnits::decode(std::uint64_t raw) {
  RaplUnits units;
  units.power_unit_bits = static_cast<unsigned>(raw & 0xF);
  units.energy_unit_bits = static_cast<unsigned>((raw >> 8) & 0x1F);
  units.time_unit_bits = static_cast<unsigned>((raw >> 16) & 0xF);
  return units;
}

std::uint64_t PkgPowerLimit::encode(const RaplUnits& units) const {
  // PL1 layout: bits 14:0 power limit, 15 enable, 16 clamp, 23:17 time window.
  // We model the time window with a simple fixed-point mantissa (no 2^y *
  // (1+z/4) encoding) — the control stack never relies on sub-second
  // windows.
  std::uint64_t raw = encode_fixed(power_limit_w, units.power_unit_w(), 0x7FFF);
  if (enabled) raw |= 1ULL << 15;
  if (clamp) raw |= 1ULL << 16;
  const std::uint64_t window = encode_fixed(time_window_s, 0.125, 0x7F);
  raw |= window << 17;
  return raw;
}

PkgPowerLimit PkgPowerLimit::decode(std::uint64_t raw, const RaplUnits& units) {
  PkgPowerLimit limit;
  limit.power_limit_w = static_cast<double>(raw & 0x7FFF) * units.power_unit_w();
  limit.enabled = (raw >> 15) & 1;
  limit.clamp = (raw >> 16) & 1;
  limit.time_window_s = static_cast<double>((raw >> 17) & 0x7F) * 0.125;
  return limit;
}

std::uint64_t PkgPowerInfo::encode(const RaplUnits& units) const {
  const double unit = units.power_unit_w();
  return encode_fixed(tdp_w, unit, 0x7FFF) |
         (encode_fixed(min_power_w, unit, 0x7FFF) << 16) |
         (encode_fixed(max_power_w, unit, 0x7FFF) << 32);
}

PkgPowerInfo PkgPowerInfo::decode(std::uint64_t raw, const RaplUnits& units) {
  const double unit = units.power_unit_w();
  PkgPowerInfo info;
  info.tdp_w = static_cast<double>(raw & 0x7FFF) * unit;
  info.min_power_w = static_cast<double>((raw >> 16) & 0x7FFF) * unit;
  info.max_power_w = static_cast<double>((raw >> 32) & 0x7FFF) * unit;
  return info;
}

MsrFile::MsrFile() {
  // Default msr-safe-style allowlist: all four RAPL registers readable,
  // only the power limit writable.
  readable_ = {kMsrRaplPowerUnit, kMsrPkgPowerLimit, kMsrPkgEnergyStatus, kMsrPkgPowerInfo};
  writable_ = {kMsrPkgPowerLimit};
  registers_[kMsrRaplPowerUnit] = RaplUnits{}.encode();
  registers_[kMsrPkgPowerLimit] = 0;
  registers_[kMsrPkgEnergyStatus] = 0;
  registers_[kMsrPkgPowerInfo] = 0;
}

std::uint64_t MsrFile::read(std::uint32_t address) const {
  static auto& reads = telemetry::MetricsRegistry::global().counter("node.msr.reads");
  static auto& denied = telemetry::MetricsRegistry::global().counter("node.msr.denied");
  static auto& faults = telemetry::MetricsRegistry::global().counter("node.msr.read_faults");
  if (readable_.count(address) == 0) {
    denied.inc();
    throw util::MsrAccessError("MSR read denied by allowlist: " + hex_of(address));
  }
  if (fault_hook_ && fault_hook_(address, false)) {
    faults.inc();
    throw util::MsrAccessError("transient MSR read fault: " + hex_of(address));
  }
  reads.inc();
  return raw_read(address);
}

void MsrFile::write(std::uint32_t address, std::uint64_t value) {
  static auto& writes = telemetry::MetricsRegistry::global().counter("node.msr.writes");
  static auto& denied = telemetry::MetricsRegistry::global().counter("node.msr.denied");
  static auto& faults = telemetry::MetricsRegistry::global().counter("node.msr.write_faults");
  if (writable_.count(address) == 0) {
    denied.inc();
    throw util::MsrAccessError("MSR write denied by allowlist: " + hex_of(address));
  }
  if (fault_hook_ && fault_hook_(address, true)) {
    faults.inc();
    throw util::MsrAccessError("transient MSR write fault: " + hex_of(address));
  }
  writes.inc();
  raw_write(address, value);
}

std::uint64_t MsrFile::raw_read(std::uint32_t address) const {
  const auto it = registers_.find(address);
  if (it == registers_.end()) {
    throw util::MsrAccessError("unknown MSR: " + hex_of(address));
  }
  return it->second;
}

void MsrFile::raw_write(std::uint32_t address, std::uint64_t value) {
  registers_[address] = value;
}

void MsrFile::deny_all() {
  readable_.clear();
  writable_.clear();
}

}  // namespace anor::platform
