// Interface between the hardware model and whatever is executing on a node.
//
// A ComputeLoad is one node's share of a job: it tells the node how much
// CPU power it wants to draw under the current cap and advances its own
// progress when the node steps.  The synthetic NPB-like kernels in
// src/workload implement this interface; the platform never needs to know
// what a "job" is.
#pragma once

namespace anor::platform {

class ComputeLoad {
 public:
  virtual ~ComputeLoad() = default;

  /// CPU power (watts, whole node) this load draws when the node-level
  /// effective power cap is `cap_w`.  Must not exceed cap_w.
  virtual double power_demand_w(double cap_w) const = 0;

  /// Advance execution by dt_s seconds of node time under the given
  /// node-level cap.  Implementations update epoch counters / progress.
  virtual void advance(double dt_s, double cap_w) = 0;

  /// True once the load has finished all of its work.
  virtual bool complete() const = 0;

  /// Fraction of total work finished, in [0, 1].
  virtual double progress() const = 0;
};

}  // namespace anor::platform
