#include "platform/package.hpp"

#include <algorithm>
#include <cmath>

namespace anor::platform {

CpuPackage::CpuPackage(const PackageConfig& config)
    : config_(config), power_w_(config.idle_power_w) {
  units_ = RaplUnits::decode(msr_.raw_read(kMsrRaplPowerUnit));
  const PkgPowerInfo info{config_.tdp_w, config_.min_cap_w, config_.max_cap_w};
  msr_.raw_write(kMsrPkgPowerInfo, info.encode(units_));
  // Power up with the limit at TDP, enabled — the common BIOS default.
  const PkgPowerLimit limit{config_.max_cap_w, 1.0, true, true};
  msr_.raw_write(kMsrPkgPowerLimit, limit.encode(units_));
}

double CpuPackage::effective_cap_w() const {
  const PkgPowerLimit limit = PkgPowerLimit::decode(msr_.raw_read(kMsrPkgPowerLimit), units_);
  if (!limit.enabled) return config_.max_cap_w;
  return std::clamp(limit.power_limit_w, config_.min_cap_w, config_.max_cap_w);
}

void CpuPackage::step(double dt_s, double demand_w) {
  if (dt_s <= 0.0) return;
  const double cap = effective_cap_w();
  const double floor = config_.idle_power_w;
  const double target = std::clamp(std::min(demand_w, cap), floor, config_.max_cap_w);
  // First-order settle toward the target power.
  const double tau = config_.response_tau_s;
  if (tau > 1e-9) {
    const double alpha = 1.0 - std::exp(-dt_s / tau);
    power_w_ += (target - power_w_) * alpha;
  } else {
    power_w_ = target;
  }
  // Integrate energy into the 32-bit wrapping counter in RAPL units.
  const double energy_j = power_w_ * dt_s;
  total_energy_j_ += energy_j;
  energy_accum_j_ += energy_j;
  const double unit = units_.energy_unit_j();
  const auto ticks = static_cast<std::uint64_t>(energy_accum_j_ / unit);
  if (ticks > 0) {
    energy_accum_j_ -= static_cast<double>(ticks) * unit;
    const std::uint64_t counter = msr_.raw_read(kMsrPkgEnergyStatus);
    msr_.raw_write(kMsrPkgEnergyStatus, (counter + ticks) & 0xFFFFFFFFULL);
  }
}

}  // namespace anor::platform
