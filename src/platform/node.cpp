#include "platform/node.hpp"

#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace anor::platform {

Node::Node(int node_id, const NodeConfig& config) : id_(node_id), config_(config) {
  if (config.package_count < 1) throw std::invalid_argument("Node: package_count < 1");
  packages_.reserve(static_cast<std::size_t>(config.package_count));
  for (int i = 0; i < config.package_count; ++i) {
    packages_.push_back(std::make_unique<CpuPackage>(config.package));
  }
}

double Node::min_cap_w() const {
  return config_.package.min_cap_w * package_count();
}

double Node::max_cap_w() const {
  return config_.package.max_cap_w * package_count();
}

double Node::tdp_w() const { return config_.package.tdp_w * package_count(); }

void Node::set_power_cap(double node_cap_w) {
  static auto& limit_writes =
      telemetry::MetricsRegistry::global().counter("node.rapl.limit_writes");
  static auto& clamped = telemetry::MetricsRegistry::global().counter("node.rapl.cap_clamped");
  const double per_package = node_cap_w / package_count();
  if (per_package < config_.package.min_cap_w || per_package > config_.package.max_cap_w) {
    clamped.inc();
    auto& tracer = telemetry::TraceRecorder::global();
    tracer.instant("node.rapl.cap_clamped", "platform", tracer.clock_now(), per_package);
  }
  for (auto& pkg : packages_) {
    const PkgPowerLimit limit{per_package, 1.0, true, true};
    pkg->msr().write(kMsrPkgPowerLimit, limit.encode(pkg->units()));
    limit_writes.inc();
  }
}

double Node::effective_cap_w() const {
  double total = 0.0;
  for (const auto& pkg : packages_) total += pkg->effective_cap_w();
  return total;
}

double Node::power_w() const {
  double total = 0.0;
  for (const auto& pkg : packages_) total += pkg->power_w();
  return total;
}

double Node::total_energy_j() const {
  double total = 0.0;
  for (const auto& pkg : packages_) total += pkg->total_energy_j();
  return total;
}

void Node::step(double dt_s) {
  if (dt_s <= 0.0) return;
  const double cap = effective_cap_w();
  double demand = 0.0;
  if (load_ != nullptr) {
    // A slower node (multiplier > 1) takes proportionally longer per unit
    // of work; we express that by shrinking its effective time step.
    const double rate_scale = config_.perf_multiplier > 0.0 ? 1.0 / config_.perf_multiplier : 0.0;
    load_->advance(dt_s * rate_scale, cap);
    demand = load_->power_demand_w(cap);
  }
  const double per_package_demand = demand / package_count();
  for (auto& pkg : packages_) pkg->step(dt_s, per_package_demand);
}

}  // namespace anor::platform
