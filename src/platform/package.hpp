// CPU package (socket) RAPL model.
//
// Mirrors the evaluation platform: Xeon Gold 6152, 140 W TDP per socket,
// RAPL caps settable between 70 W and 140 W.  The package integrates energy
// into a 32-bit wrapping counter (as PKG_ENERGY_STATUS does) and applies a
// first-order lag between a cap change and the settled power level, which
// is what the running-average power limiting of RAPL looks like from
// software.
#pragma once

#include <cstdint>

#include "platform/msr.hpp"

namespace anor::platform {

struct PackageConfig {
  double tdp_w = 140.0;
  double min_cap_w = 70.0;
  double max_cap_w = 140.0;
  double idle_power_w = 18.0;
  /// Time constant of the power response to cap/demand changes (seconds).
  double response_tau_s = 0.5;
};

class CpuPackage {
 public:
  explicit CpuPackage(const PackageConfig& config = {});

  /// System-software view of the registers (allowlist-gated).
  MsrFile& msr() { return msr_; }
  const MsrFile& msr() const { return msr_; }

  const PackageConfig& config() const { return config_; }

  /// Cap currently programmed in PKG_POWER_LIMIT, clamped by hardware to
  /// the [min_cap, max_cap] range (RAPL ignores out-of-range requests by
  /// clamping, it does not fault).
  double effective_cap_w() const;

  /// Instantaneous power draw (after the first-order response), watts.
  double power_w() const { return power_w_; }

  /// Lifetime energy in joules (unwrapped, for tests/diagnostics).
  double total_energy_j() const { return total_energy_j_; }

  /// Advance the hardware model: settle power toward min(demand, cap) and
  /// integrate energy into the wrapping counter.  `demand_w` is the power
  /// the load would draw on this package if uncapped.
  void step(double dt_s, double demand_w);

  /// Decoded RAPL units for this package.
  const RaplUnits& units() const { return units_; }

 private:
  PackageConfig config_;
  RaplUnits units_;
  MsrFile msr_;
  double power_w_;
  double total_energy_j_ = 0.0;
  double energy_accum_j_ = 0.0;  // sub-counter-unit remainder
};

}  // namespace anor::platform
