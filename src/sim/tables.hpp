// The simulator's state tables (paper Sec. 5.6).
//
// "The simulator is implemented as a collection of tables that store the
// current state of nodes and jobs in the cluster."  Structure-of-arrays
// layout: the per-second update sweeps every node, and SoA keeps those
// sweeps cache-friendly at 1000+ nodes.
//
// Beyond the raw columns, the node table caches derived per-node state
// (progress rate, power draw, owning job row) that changes only at
// assign/release/cap events — never mid-tick — so the per-tick sweep is a
// branch-light `progress += rate * dt` over contiguous arrays.  Nodes whose
// caps or ownership changed are queued in a pending-refresh list the
// simulator drains (serially) at the top of the next node-update phase;
// see DESIGN.md "Performance model of the simulator".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anor::sim {

/// Per-node state.  job_id < 0 means idle.
class NodeTable {
 public:
  explicit NodeTable(int node_count);

  /// Restore the exact state of a freshly constructed NodeTable(node_count)
  /// while reusing the column allocations — the warm-start path pools one
  /// table across sweep runs instead of reallocating eight columns per run.
  /// Bit-equivalence with fresh construction is load-bearing (warm runs
  /// must hash identically to cold ones) and pinned by WarmStart tests.
  void reset(int node_count);

  int size() const { return static_cast<int>(job_id_.size()); }

  int job_id(int node) const { return job_id_[idx(node)]; }
  double cap_w(int node) const { return cap_w_[idx(node)]; }
  double power_w(int node) const { return power_w_[idx(node)]; }
  double progress(int node) const { return progress_[idx(node)]; }
  double perf_multiplier(int node) const { return perf_mult_[idx(node)]; }
  bool idle(int node) const { return job_id_[idx(node)] < 0; }

  /// Cached progress per second under the current cap (0 while idle).
  /// Owned by the simulator's pending-refresh pass; stale between a cap
  /// write and the next refresh.
  double rate(int node) const { return rate_[idx(node)]; }
  void set_rate(int node, double rate) { rate_[idx(node)] = rate; }

  /// Row index of the owning job in the JobTable (-1 while idle).
  int job_row(int node) const { return job_row_[idx(node)]; }

  /// Precomputed 1 / perf_multiplier, kept alongside the multiplier so
  /// the refresh sweep multiplies instead of dividing per node.
  double inv_perf_multiplier(int node) const { return inv_perf_mult_[idx(node)]; }

  void set_perf_multiplier(int node, double m) {
    perf_mult_[idx(node)] = m;
    inv_perf_mult_[idx(node)] = 1.0 / m;
  }
  /// Writes the cap and queues the node for a rate/power refresh.  A
  /// write that does not change the value is a no-op (caps are rewritten
  /// every control period even when the budget is unchanged).
  void set_cap(int node, double cap_w);
  void set_power(int node, double power_w) {
    power_w_[idx(node)] = power_w;
    power_clean_ = false;
  }
  void add_progress(int node, double delta) { progress_[idx(node)] += delta; }

  /// progress[n] += rate[n] * dt for n in [begin, end).  Idle nodes have
  /// rate 0, so the sweep needs no busy test.  Writes only the progress
  /// column of its own range — shards over disjoint ranges never race.
  void advance_progress(int begin, int end, double dt_s);

  /// Apply `substeps` consecutive per-step sweeps in one pass: each node
  /// receives its additive updates in step order, so the result is
  /// bit-identical to calling advance_progress(begin, end, dt_s)
  /// `substeps` times — but the rate/progress columns are streamed once,
  /// not `substeps` times (the deferred-sweep flush in the simulator
  /// batches all steps between two rate-change events into one call).
  void advance_progress_batch(int begin, int end, double dt_s, long substeps);

  /// Direct access to the derived-state columns for the sharded refresh
  /// sweep: workers write disjoint [begin, end) ranges of rate/power, so
  /// no per-call bookkeeping is allowed here.  Callers that touch the
  /// power column must call mark_power_dirty() (once, from one thread)
  /// so total_power_w() recomputes.
  double* rate_data() { return rate_.data(); }
  double* power_data() { return power_w_.data(); }
  void mark_power_dirty() { power_clean_ = false; }

  void assign(int node, int job, int job_row = -1);
  void release(int node);

  std::vector<int> idle_nodes() const;
  /// O(1): maintained incrementally at assign/release.
  int idle_count() const { return idle_count_; }
  int busy_count() const { return size() - idle_count_; }

  /// Left-to-right sum over the power column, cached between power
  /// writes.  Power changes only at refresh/assign/release events, so
  /// steady-state ticks pay O(1) here.
  double total_power_w() const;

  /// Nodes with a cap/ownership change since the last clear, in event
  /// order (each node listed at most once).
  const std::vector<int>& pending_refresh() const { return pending_; }
  void clear_pending_refresh();

 private:
  static std::size_t idx(int node) { return static_cast<std::size_t>(node); }
  void mark_pending(int node);

  std::vector<int> job_id_;
  std::vector<double> cap_w_;
  std::vector<double> power_w_;
  std::vector<double> progress_;
  std::vector<double> perf_mult_;
  std::vector<double> inv_perf_mult_;
  std::vector<double> rate_;
  std::vector<int> job_row_;

  int idle_count_ = 0;
  std::vector<int> pending_;
  std::vector<std::uint8_t> pending_flag_;
  mutable double total_power_cache_ = 0.0;
  mutable bool power_clean_ = false;
};

/// Per-job lifecycle state.
struct JobRow {
  int job_id = 0;
  int type_index = 0;        // into SimConfig::job_types
  int classified_index = 0;  // what the policy believes (== type_index normally)
  double submit_s = 0.0;
  double start_s = -1.0;
  double end_s = -1.0;
  /// Earliest simulated time the job can possibly finish given the rates
  /// at the last cap event; the completion scan skips the job until then.
  double earliest_done_s = 0.0;
  std::vector<int> nodes;    // assigned node ids (empty while queued)

  bool started() const { return start_s >= 0.0; }
  bool finished() const { return end_s >= 0.0; }
};

class JobTable {
 public:
  /// Returns the row index.
  std::size_t add(JobRow row);

  JobRow& row(std::size_t index) { return rows_[index]; }
  const JobRow& row(std::size_t index) const { return rows_[index]; }
  std::size_t size() const { return rows_.size(); }

  JobRow& by_job_id(int job_id);
  const JobRow& by_job_id(int job_id) const;
  std::size_t index_of(int job_id) const;

  /// Record the start/end transition and maintain the running set.
  void mark_started(std::size_t index, double start_s);
  void mark_finished(std::size_t index, double end_s);

  /// Indices of running (started, unfinished) jobs, ascending.  Maintained
  /// incrementally at mark_started/mark_finished — no per-tick rebuild.
  const std::vector<std::size_t>& running() const { return running_; }

  const std::vector<JobRow>& rows() const { return rows_; }

 private:
  std::vector<JobRow> rows_;
  std::vector<std::size_t> by_id_;  // job_id -> row index
  std::vector<std::size_t> running_;
};

}  // namespace anor::sim
