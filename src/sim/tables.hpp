// The simulator's state tables (paper Sec. 5.6).
//
// "The simulator is implemented as a collection of tables that store the
// current state of nodes and jobs in the cluster."  Structure-of-arrays
// layout: the per-second update sweeps every node, and SoA keeps those
// sweeps cache-friendly at 1000+ nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anor::sim {

/// Per-node state.  job_id < 0 means idle.
class NodeTable {
 public:
  explicit NodeTable(int node_count);

  int size() const { return static_cast<int>(job_id_.size()); }

  int job_id(int node) const { return job_id_[idx(node)]; }
  double cap_w(int node) const { return cap_w_[idx(node)]; }
  double power_w(int node) const { return power_w_[idx(node)]; }
  double progress(int node) const { return progress_[idx(node)]; }
  double perf_multiplier(int node) const { return perf_mult_[idx(node)]; }
  bool idle(int node) const { return job_id_[idx(node)] < 0; }

  void set_perf_multiplier(int node, double m) { perf_mult_[idx(node)] = m; }
  void set_cap(int node, double cap_w) { cap_w_[idx(node)] = cap_w; }
  void set_power(int node, double power_w) { power_w_[idx(node)] = power_w; }
  void add_progress(int node, double delta) { progress_[idx(node)] += delta; }

  void assign(int node, int job);
  void release(int node);

  std::vector<int> idle_nodes() const;
  int idle_count() const;
  double total_power_w() const;

 private:
  static std::size_t idx(int node) { return static_cast<std::size_t>(node); }

  std::vector<int> job_id_;
  std::vector<double> cap_w_;
  std::vector<double> power_w_;
  std::vector<double> progress_;
  std::vector<double> perf_mult_;
};

/// Per-job lifecycle state.
struct JobRow {
  int job_id = 0;
  int type_index = 0;        // into SimConfig::job_types
  int classified_index = 0;  // what the policy believes (== type_index normally)
  double submit_s = 0.0;
  double start_s = -1.0;
  double end_s = -1.0;
  std::vector<int> nodes;    // assigned node ids (empty while queued)

  bool started() const { return start_s >= 0.0; }
  bool finished() const { return end_s >= 0.0; }
};

class JobTable {
 public:
  /// Returns the row index.
  std::size_t add(JobRow row);

  JobRow& row(std::size_t index) { return rows_[index]; }
  const JobRow& row(std::size_t index) const { return rows_[index]; }
  std::size_t size() const { return rows_.size(); }

  JobRow& by_job_id(int job_id);
  const JobRow& by_job_id(int job_id) const;

  /// Indices of running (started, unfinished) jobs.
  std::vector<std::size_t> running() const;

  const std::vector<JobRow>& rows() const { return rows_; }

 private:
  std::vector<JobRow> rows_;
  std::vector<std::size_t> by_id_;  // job_id -> row index
};

}  // namespace anor::sim
