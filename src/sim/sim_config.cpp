#include "sim/sim_config.hpp"

#include <algorithm>

namespace anor::sim {

SimJobType SimJobType::from_job_type(const workload::JobType& type, int node_scale) {
  SimJobType sim_type;
  sim_type.name = type.name;
  sim_type.nodes = type.nodes * node_scale;
  sim_type.p_max_w = type.max_power_w;
  sim_type.p_min_w = std::max(type.min_power_w, workload::kNodeMinCapW);
  sim_type.time_at_pmax_s = type.min_exec_time_s();
  sim_type.time_at_pmin_s = type.exec_time_s(workload::kNodeMinCapW);
  return sim_type;
}

double SimJobType::progress_rate(double cap_w) const {
  const double rate_max = 1.0 / time_at_pmax_s;
  const double rate_min = 1.0 / time_at_pmin_s;
  if (p_max_w <= p_min_w) return rate_max;
  const double cap = std::clamp(cap_w, p_min_w, p_max_w);
  const double frac = (cap - p_min_w) / (p_max_w - p_min_w);
  return rate_min + frac * (rate_max - rate_min);
}

double SimJobType::power_at(double cap_w) const {
  return std::clamp(cap_w, p_min_w, p_max_w);
}

int resolve_step_shard_nodes(int node_count, int step_workers, int configured) {
  if (configured > 0) return std::max(64, configured);
  const int workers = std::max(1, step_workers);
  const int target_shards = workers * 4;
  const int auto_size = (node_count + target_shards - 1) / target_shards;
  return std::max(64, auto_size);
}

model::PowerPerfModel SimJobType::budget_model() const {
  // Sample T(P) = 1/rate(P) and fit the quadratic family the budgeters
  // consume.  The fit is near-exact over the narrow cap range.
  std::vector<double> caps;
  std::vector<double> times;
  const int samples = 15;
  for (int i = 0; i < samples; ++i) {
    const double cap = p_min_w + (p_max_w - p_min_w) * i / (samples - 1);
    caps.push_back(cap);
    times.push_back(1.0 / progress_rate(cap));
  }
  return model::PowerPerfModel::fit(caps, times, p_min_w, p_max_w);
}

util::Json sim_config_to_json(const SimConfig& config) {
  util::JsonObject obj;
  obj["node_count"] = util::Json(config.node_count);
  obj["idle_power_w"] = util::Json(config.idle_power_w);
  obj["duration_s"] = util::Json(config.duration_s);
  obj["step_s"] = util::Json(config.step_s);
  obj["perf_variation_sigma"] = util::Json(config.perf_variation_sigma);
  obj["budgeter"] = util::Json(budget::to_string(config.budgeter));
  obj["power_aware_admission"] = util::Json(config.power_aware_admission);
  obj["backfill"] = util::Json(config.backfill);
  obj["single_queue"] = util::Json(config.single_queue);
  obj["protect_at_risk_jobs"] = util::Json(config.protect_at_risk_jobs);
  obj["at_risk_fraction"] = util::Json(config.at_risk_fraction);
  obj["bid_mean_w"] = util::Json(config.bid.average_power_w);
  obj["bid_reserve_w"] = util::Json(config.bid.reserve_w);
  obj["regulation_step_s"] = util::Json(config.regulation_step_s);
  obj["regulation_volatility"] = util::Json(config.regulation_volatility);
  if (!config.power_targets.empty()) {
    util::JsonArray t;
    util::JsonArray v;
    for (std::size_t i = 0; i < config.power_targets.size(); ++i) {
      t.push_back(util::Json(config.power_targets.times()[i]));
      v.push_back(util::Json(config.power_targets.values()[i]));
    }
    util::JsonObject targets;
    targets["t_s"] = util::Json(std::move(t));
    targets["power_w"] = util::Json(std::move(v));
    obj["power_targets"] = util::Json(std::move(targets));
  }
  obj["tracking_reserve_w"] = util::Json(config.tracking_reserve_w);
  obj["control_period_s"] = util::Json(config.control_period_s);
  obj["tracking_warmup_s"] = util::Json(config.tracking_warmup_s);
  obj["step_workers"] = util::Json(config.step_workers);
  obj["step_shard_nodes"] = util::Json(config.step_shard_nodes);

  util::JsonArray types;
  for (const SimJobType& t : config.job_types) {
    util::JsonObject type_obj;
    type_obj["name"] = util::Json(t.name);
    type_obj["nodes"] = util::Json(t.nodes);
    type_obj["p_max_w"] = util::Json(t.p_max_w);
    type_obj["p_min_w"] = util::Json(t.p_min_w);
    type_obj["time_at_pmax_s"] = util::Json(t.time_at_pmax_s);
    type_obj["time_at_pmin_s"] = util::Json(t.time_at_pmin_s);
    type_obj["qos_limit"] = util::Json(t.qos_limit);
    types.push_back(util::Json(std::move(type_obj)));
  }
  obj["job_types"] = util::Json(std::move(types));

  if (!config.queue_weights.empty()) {
    util::JsonObject weights;
    for (const auto& [name, weight] : config.queue_weights) {
      weights[name] = util::Json(weight);
    }
    obj["queue_weights"] = util::Json(std::move(weights));
  }
  return util::Json(std::move(obj));
}

SimConfig sim_config_from_json(const util::Json& json) {
  SimConfig config;
  config.node_count = static_cast<int>(json.number_or("node_count", config.node_count));
  config.idle_power_w = json.number_or("idle_power_w", config.idle_power_w);
  config.duration_s = json.number_or("duration_s", config.duration_s);
  config.step_s = json.number_or("step_s", config.step_s);
  config.perf_variation_sigma =
      json.number_or("perf_variation_sigma", config.perf_variation_sigma);
  const std::string budgeter = json.string_or("budgeter", "even-slowdown");
  config.budgeter = budgeter == "even-power" ? budget::BudgeterKind::kEvenPower
                                             : budget::BudgeterKind::kEvenSlowdown;
  config.power_aware_admission =
      json.bool_or("power_aware_admission", config.power_aware_admission);
  config.backfill = json.bool_or("backfill", config.backfill);
  config.single_queue = json.bool_or("single_queue", config.single_queue);
  config.protect_at_risk_jobs =
      json.bool_or("protect_at_risk_jobs", config.protect_at_risk_jobs);
  config.at_risk_fraction = json.number_or("at_risk_fraction", config.at_risk_fraction);
  config.bid.average_power_w = json.number_or("bid_mean_w", 0.0);
  config.bid.reserve_w = json.number_or("bid_reserve_w", 0.0);
  config.regulation_step_s = json.number_or("regulation_step_s", config.regulation_step_s);
  config.regulation_volatility =
      json.number_or("regulation_volatility", config.regulation_volatility);
  if (json.contains("power_targets")) {
    const util::Json& targets = json.at("power_targets");
    const util::JsonArray& t = targets.at("t_s").as_array();
    const util::JsonArray& v = targets.at("power_w").as_array();
    for (std::size_t i = 0; i < std::min(t.size(), v.size()); ++i) {
      config.power_targets.add(t[i].as_number(), v[i].as_number());
    }
  }
  config.tracking_reserve_w =
      json.number_or("tracking_reserve_w", config.tracking_reserve_w);
  config.control_period_s = json.number_or("control_period_s", config.control_period_s);
  config.tracking_warmup_s = json.number_or("tracking_warmup_s", config.tracking_warmup_s);
  config.step_workers =
      static_cast<int>(json.number_or("step_workers", config.step_workers));
  config.step_shard_nodes =
      static_cast<int>(json.number_or("step_shard_nodes", config.step_shard_nodes));

  if (json.contains("standard_types")) {
    const util::Json& standard = json.at("standard_types");
    config.job_types = standard_sim_types(standard.bool_or("long_only", true),
                                          static_cast<int>(standard.number_or("node_scale", 1)));
  } else if (json.contains("job_types")) {
    for (const util::Json& item : json.at("job_types").as_array()) {
      SimJobType type;
      type.name = item.at("name").as_string();
      type.nodes = static_cast<int>(item.number_or("nodes", 1));
      type.p_max_w = item.number_or("p_max_w", type.p_max_w);
      type.p_min_w = item.number_or("p_min_w", type.p_min_w);
      type.time_at_pmax_s = item.number_or("time_at_pmax_s", type.time_at_pmax_s);
      type.time_at_pmin_s = item.number_or("time_at_pmin_s", type.time_at_pmin_s);
      type.qos_limit = item.number_or("qos_limit", type.qos_limit);
      config.job_types.push_back(std::move(type));
    }
  }
  if (json.contains("queue_weights")) {
    for (const auto& [name, weight] : json.at("queue_weights").as_object()) {
      config.queue_weights[name] = weight.as_number();
    }
  }
  return config;
}

std::vector<SimJobType> standard_sim_types(bool long_types_only, int node_scale) {
  const auto& types =
      long_types_only ? workload::nas_long_job_types() : workload::nas_job_types();
  std::vector<SimJobType> sim_types;
  sim_types.reserve(types.size());
  for (const auto& t : types) sim_types.push_back(SimJobType::from_job_type(t, node_scale));
  return sim_types;
}

}  // namespace anor::sim
